//===- examples/exec_resources.cpp - Figure 1, printed ----------------------===//
//
// Reconstructs the execution resources of Figure 1 with the exec library
// and prints their formal notation, plus the sync-legality and
// disjointness queries the type system asks of them.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecResource.h"

#include <cstdio>

using namespace descend;

int main() {
  Nat Two = Nat::lit(2), One = Nat::lit(1), Four = Nat::lit(4);

  // Figure 1a: a 3D grid of 2x2x1 blocks, each 4x4x4 threads.
  ExecResource Grid = ExecResource::gpuGrid(
      "grd", Dim::makeXYZ(Two, Two, One), Dim::makeXYZ(Four, Four, Four));
  std::printf("Figure 1a: %s\n", Grid.str().c_str());

  // Figure 1b: scheduling over X and Z leaves groups of blocks along Y.
  ExecResource Blocks = *Grid.forall(Axis::X)->forall(Axis::Z);
  std::printf("Figure 1b: %s\n", Blocks.str().c_str());
  std::printf("           (a group of blocks; level() defined: %s)\n",
              Blocks.level() ? "yes" : "no");

  // Figure 1c: splitting the group at 1 along Y and taking the first part.
  ExecResource FstBlock = *Blocks.split(Axis::Y, One, /*TakeFst=*/true);
  ExecResource SndBlock = *Blocks.split(Axis::Y, One, /*TakeFst=*/false);
  std::printf("Figure 1c: %s\n", FstBlock.str().c_str());
  std::printf("           disjoint from its sibling: %s\n",
              ExecResource::disjoint(FstBlock, SndBlock) ? "yes" : "no");

  // The sync-legality ladder of Section 2.2.
  std::printf("\nsync legality along the hierarchy:\n");
  auto Show = [](const char *What, const ExecResource &E) {
    const char *Verdict = "ok";
    switch (E.syncLegality()) {
    case ExecResource::SyncLegality::Ok:
      Verdict = "allowed";
      break;
    case ExecResource::SyncLegality::NotInBlock:
      Verdict = "rejected: not inside a single block";
      break;
    case ExecResource::SyncLegality::InSplit:
      Verdict = "rejected: not all threads of the block reach it";
      break;
    }
    std::printf("  %-34s -> %s\n", What, Verdict);
  };
  ExecResource G1 = ExecResource::gpuGrid("grid", Dim::makeX(Nat::lit(16)),
                                          Dim::makeX(Nat::lit(256)));
  Show("at grid level", G1);
  ExecResource Block = *G1.forall(Axis::X);
  Show("inside a block", Block);
  ExecResource Thread = *Block.forall(Axis::X);
  Show("inside sched(thread)", Thread);
  ExecResource Arm = *Block.split(Axis::X, Nat::lit(32), true);
  Show("inside split(X) block at 32", Arm);
  return 0;
}
