//===- examples/safety_tour.cpp - The paper's bugs, caught ------------------===//
//
// Compiles each erroneous program from Sections 2 and 3.3 of the paper and
// prints the diagnostic Descend produces — the S1..S8 rows of the safety
// evaluation in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <cstdio>
#include <vector>

using namespace descend;

namespace {

struct Case {
  const char *Id;
  const char *Title;
  const char *Source;
};

const std::vector<Case> Cases = {
    {"S1", "data race: in-place reversal per block (Section 2.2)", R"(
fn rev_per_block(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<256>[[block]][[thread]] =
        arr.group::<256>[[block]].rev[[thread]]
    }
  }
}
)"},
    {"S2", "barrier not reached by all threads (Section 2.2)", R"(
fn kernel(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    split(X) block at 32 {
      first_32_threads => { sync },
      rest => { }
    }
  }
}
)"},
    {"S3", "swapped cudaMemcpy arguments (Section 2.3)", R"(
fn host() -[t: cpu.thread]-> () {
  let h_vec = CpuHeap::new([0.0; 1024]);
  let d_vec = GpuGlobal::alloc_copy(&h_vec);
  copy_mem_to_host(&uniq d_vec, &h_vec)
}
)"},
    {"S4", "dereferencing CPU memory on the GPU (Section 2.3)", R"(
fn init_kernel(vec: &uniq cpu.mem [f64; 1024])
-[grid: gpu.grid<X<1>, X<1024>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      (*vec)[[thread]] = 1.0
    }
  }
}
)"},
    {"S5", "launch with bytes instead of elements (Section 2.3)", R"(
fn scale_vec<n: nat>(vec: &uniq gpu.global [f64; n])
-[grid: gpu.grid<X<1>, X<n>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<n>[[block]][[thread]] =
        vec.group::<n>[[block]][[thread]] * 3.0
    }
  }
}
fn host() -[t: cpu.thread]-> () {
  let h = CpuHeap::new([0.0; 1024]);
  let d_vec = GpuGlobal::alloc_copy(&h);
  scale_vec::<<<X<1>, X<8192>>>>(&uniq d_vec)
}
)"},
    {"S6", "narrowing violated: block borrows whole array (Section 3.3)", R"(
fn kernel(arr: &uniq gpu.global [f32; 1024])
-[grid: gpu.grid<X<32>, X<32>>]-> () {
  sched(X) block in grid {
    let in_borrow = &uniq *arr
  }
}
)"},
    {"S7", "narrowing violated: selection without block narrowing", R"(
fn kernel(arr: &uniq gpu.global [f32; 1024])
-[grid: gpu.grid<X<32>, X<32>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      let grp = &uniq arr.group::<32>[[thread]]
    }
  }
}
)"},
    {"S8", "Listing 1's transpose bug: missing barrier variant", R"(
view group_by_row<row_size: nat, num_rows: nat> =
  group::<row_size/num_rows>.transpose.map(transpose)
view group_by_tile<th: nat, tw: nat> =
  group::<th>.map(map(group::<tw>)).map(transpose)
fn transpose(input: & gpu.global [[f64;2048];2048],
             output: &uniq gpu.global [[f64;2048];2048])
-[grid: gpu.grid<XY<64,64>,XY<32,8>>]-> () {
  sched(Y,X) block in grid {
    let tmp = alloc::<gpu.shared, [[f64; 32]; 32]>();
    sched(Y,X) thread in block {
      for i in [0..4] {
        tmp.group_by_row::<32,4>[[thread]][i] =
          input.group_by_tile::<32,32>.transpose[[block]]
            .group_by_row::<32,4>[[thread]][i] };
      for i in [0..4] {
        output.group_by_tile::<32,32>[[block]]
          .group_by_row::<32,4>[[thread]][i] =
          tmp.transpose.group_by_row::<32,4>[[thread]][i] }
    } } }
)"},
};

} // namespace

int main() {
  int Caught = 0;
  for (const Case &C : Cases) {
    std::printf("=== %s: %s ===\n", C.Id, C.Title);
    CompilerInvocation Inv;
    Inv.BufferName = std::string(C.Id) + ".descend";
    Inv.RunUntil = Stage::Typecheck;
    Session S(Inv);
    if (S.run(C.Source).Ok) {
      std::printf("UNEXPECTEDLY ACCEPTED\n\n");
      continue;
    }
    ++Caught;
    std::printf("%s\n", S.renderDiagnostics().c_str());
  }
  std::printf("summary: %d/%zu unsafe programs rejected at compile time\n",
              Caught, Cases.size());
  return Caught == static_cast<int>(Cases.size()) ? 0 : 1;
}
