//===- examples/reduction.cpp - Host API + generated reduce kernel ----------===//
//
// A realistic end-to-end application: sum 2^20 numbers on the "GPU" using
// the Descend-generated block reduction, driving it through the host
// runtime exactly as the paper's host code does (alloc_copy, launch,
// copy_mem_to_host). Also demonstrates the launch-configuration check the
// type system performs statically, enforced dynamically for handwritten
// hosts.
//
//===----------------------------------------------------------------------===//

#include "runtime/HostRuntime.h"

#include "gen_reduce_example.h"

#include <cstdio>
#include <numeric>

using namespace descend;

int main() {
  const unsigned NB = 4096; // blocks of 256 elements: 2^20 total
  const size_t N = static_cast<size_t>(NB) * 256;

  sim::GpuDevice Dev;
  rt::HostBuffer<double> Host(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    Host[I] = static_cast<double>(I % 1000) * 0.001;
  double Expected = std::accumulate(Host.data(), Host.data() + N, 0.0);

  // Host -> GPU, launch, partial sums -> host, final CPU sum.
  auto DIn = rt::allocCopy(Dev, Host);
  auto DOut = Dev.alloc<double>(NB);

  rt::checkLaunchConfig(sim::Dim3{NB}, sim::Dim3{256}, N); // would throw
  descend::gen::reduce(Dev, DIn, DOut);

  rt::HostBuffer<double> Partials(NB, 0.0);
  rt::copyToHost(Partials, DOut);
  double Sum = std::accumulate(Partials.data(), Partials.data() + NB, 0.0);

  std::printf("gpu sum  = %.6f\ncpu sum  = %.6f\n|delta|  = %.2e\n", Sum,
              Expected, std::abs(Sum - Expected));

  // What Descend rejects at compile time (S5), the runtime can only catch
  // at launch time for handwritten hosts:
  try {
    rt::checkLaunchConfig(sim::Dim3{1}, sim::Dim3{8192}, N);
  } catch (const std::exception &E) {
    std::printf("\nbad launch rejected at runtime: %s\n", E.what());
    std::printf("(the same bug is a *compile-time* error in Descend)\n");
  }
  return std::abs(Sum - Expected) < 1e-6 * Expected ? 0 : 1;
}
