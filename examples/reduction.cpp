//===- examples/reduction.cpp - Compiled host program + reduce kernel -------===//
//
// A realistic end-to-end application: sum 2^20 numbers on the "GPU" using
// the Descend-generated block reduction. The entire host side — staging
// transfers, the launch, the copy-back and the sequential CPU finish —
// is *compiled* from programs/reduction_host.descend (the generated
// `run`), then checked bit-for-bit against the handwritten equivalent.
// Also demonstrates the launch-configuration check the type system
// performs statically, enforced dynamically for handwritten hosts.
//
//===----------------------------------------------------------------------===//

#include "runtime/HostRuntime.h"

#include "gen_reduction_host.h" // reduce + run, generated at build time

#include <cstdio>
#include <cstring>
#include <numeric>

using namespace descend;

int main() {
  const unsigned NB = 4096; // blocks of 256 elements: 2^20 total
  const size_t N = static_cast<size_t>(NB) * 256;

  auto Fill = [N](rt::HostBuffer<double> &B) {
    for (size_t I = 0; I != N; ++I)
      B[I] = static_cast<double>(I % 1000) * 0.001;
  };

  // The compiled host program: transfers, launch, copy-back, CPU finish.
  sim::GpuDevice Dev;
  rt::HostBuffer<double> Data(N, 0.0), Partials(NB, 0.0), Total(1, 0.0);
  Fill(Data);
  descend::gen::run(Dev, Data, Partials, Total);

  double Expected = std::accumulate(Data.data(), Data.data() + N, 0.0);
  std::printf("gpu sum  = %.6f\ncpu sum  = %.6f\n|delta|  = %.2e\n",
              Total[0], Expected, std::abs(Total[0] - Expected));

  // The handwritten equivalent, step for step (what the paper's hosts do
  // by hand — including the runtime launch check Descend proves
  // statically).
  sim::GpuDevice DevRef;
  rt::HostBuffer<double> RData(N, 0.0), RPartials(NB, 0.0), RTotal(1, 0.0);
  Fill(RData);
  auto DIn = rt::allocCopy(DevRef, RData);
  auto DOut = rt::allocCopy(DevRef, RPartials);
  rt::checkLaunchConfig(sim::Dim3{NB}, sim::Dim3{256}, N); // would throw
  descend::gen::reduce(DevRef, DIn, DOut);
  rt::copyToHost(RPartials, DOut);
  RTotal[0] = 0.0;
  for (size_t I = 0; I != NB; ++I)
    RTotal[0] = RTotal[0] + RPartials[I];

  if (std::memcmp(Partials.data(), RPartials.data(),
                  NB * sizeof(double)) != 0 ||
      std::memcmp(Total.data(), RTotal.data(), sizeof(double)) != 0) {
    std::printf("MISMATCH between generated and handwritten host paths\n");
    return 1;
  }
  std::printf("generated host driver matches handwritten host code "
              "bit-for-bit. OK\n");

  // What Descend rejects at compile time (S5 / H3), the runtime can only
  // catch at launch time for handwritten hosts:
  try {
    rt::checkLaunchConfig(sim::Dim3{1}, sim::Dim3{8192}, N);
  } catch (const std::exception &E) {
    std::printf("\nbad launch rejected at runtime: %s\n", E.what());
    std::printf("(the same bug is a *compile-time* error in Descend — see "
                "programs/bad_launch_config.descend)\n");
  }
  return std::abs(Total[0] - Expected) < 1e-6 * Expected ? 0 : 1;
}
