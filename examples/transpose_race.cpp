//===- examples/transpose_race.cpp - Listing 1 vs Listing 2 ----------------===//
//
// The paper's motivating example, end to end:
//   1. the buggy CUDA transpose of Listing 1 (missing parentheses in the
//      shared-memory index) runs on the simulator and the dynamic race
//      detector catches the data race;
//   2. the same bug, expressed in Descend, is rejected at compile time;
//   3. the correct Descend transpose (Listing 2) was compiled by descendc
//      at build time, runs race-free and computes the right answer.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "sim/Sim.h"

#include "gen_transpose_example.h"

#include <cstdio>

using namespace descend;
using sim::BlockCtx;
using sim::Dim3;
using sim::GpuDevice;
using sim::ThreadCtx;

static const int N = 128;

/// Listing 1, bug included: `T.Y + J * 32 + T.X` instead of
/// `(T.Y + J) * 32 + T.X`.
static void buggyCudaTranspose(GpuDevice &Dev,
                               GpuDevice::Buffer<double> In,
                               GpuDevice::Buffer<double> Out) {
  sim::launchPhases(
      Dev, Dim3{N / 32, N / 32, 1}, Dim3{32, 8, 1},
      32 * 32 * sizeof(double),
      [=](BlockCtx &B, ThreadCtx &T) {
        for (unsigned J = 0; J != 32; J += 8)
          B.sharedStore<double>(
              0, T.Y + J * 32 + T.X, // <- the bug
              In.load(B, (size_t)(B.Y * 32 + T.Y + J) * N + B.X * 32 + T.X));
      },
      [=](BlockCtx &B, ThreadCtx &T) {
        for (unsigned J = 0; J != 32; J += 8)
          Out.store(B, (size_t)(B.X * 32 + T.Y + J) * N + B.Y * 32 + T.X,
                    B.sharedLoad<double>(0, T.X * 32 + T.Y + J));
      });
}

static const char *BuggyDescend = R"(
view rows_fused<a: nat, b: nat> = group::<a>.map(transpose)
fn transpose(input: & gpu.global [[f64;128];128],
             output: &uniq gpu.global [[f64;128];128])
-[grid: gpu.grid<XY<4,4>,XY<32,8>>]-> () {
  sched(Y,X) block in grid {
    let tmp = alloc::<gpu.shared, [[f64; 32]; 32]>();
    sched(Y,X) thread in block {
      for i in [0..4] {
        // The Listing 1 bug is an overlapping access pattern; in Descend
        // any view expression for it fails the conflict/shape checks.
        tmp.rows_fused::<8, 4>[[thread]][i] = 1.0
      }
    } } }
)";

int main() {
  std::printf("== 1. Buggy CUDA transpose (Listing 1) on the simulator ==\n");
  GpuDevice Dev;
  Dev.setRaceDetection(true);
  auto In = Dev.alloc<double>(N * N);
  auto Out = Dev.alloc<double>(N * N);
  for (int I = 0; I != N * N; ++I)
    In.data()[I] = I;
  buggyCudaTranspose(Dev, In, Out);
  auto Races = Dev.findRaces();
  std::printf("race detector: %zu conflicting locations\n", Races.size());
  if (!Races.empty())
    std::printf("first: %s\n", Races[0].str().c_str());
  std::printf("(CUDA compiles this silently; the behaviour is undefined)\n\n");

  std::printf("== 2. The same pattern in Descend is rejected statically ==\n");
  CompilerInvocation Inv;
  Inv.BufferName = "buggy.descend";
  Inv.RunUntil = Stage::Typecheck;
  Session S(Inv);
  if (!S.run(BuggyDescend).Ok)
    std::printf("%s\n", S.renderDiagnostics().c_str());
  else
    std::printf("unexpectedly accepted!\n");

  std::printf("== 3. Listing 2 (correct) compiled by descendc ==\n");
  GpuDevice Dev2;
  Dev2.setRaceDetection(true);
  auto In2 = Dev2.alloc<double>(N * N);
  auto Out2 = Dev2.alloc<double>(N * N);
  for (int I = 0; I != N * N; ++I)
    In2.data()[I] = I;
  descend::gen::transpose(Dev2, In2, Out2);
  bool Correct = true;
  for (int R = 0; R != N && Correct; ++R)
    for (int Col = 0; Col != N; ++Col)
      if (Out2.data()[Col * N + R] != In2.data()[R * N + Col]) {
        Correct = false;
        break;
      }
  std::printf("result correct: %s; races: %zu\n", Correct ? "yes" : "NO",
              Dev2.findRaces().size());
  return 0;
}
