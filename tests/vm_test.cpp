//===- tests/vm_test.cpp - VM backend vs generated simulator code -----------===//
//
// The acceptance gate for the vm backend: interpreting the compiled
// bytecode must be *bit-identical* to running the C++ the sim backend
// generated at build time — for every kernel in kernels/*.descend at the
// test footprints and for both host-bearing programs/*.descend drivers.
// Same inputs, same launch, memcmp over the raw output bytes: the two
// execution paths (text -> C++ -> compiler -> binary vs text -> bytecode
// -> interpreter) may not disagree in a single bit.
//
// Also covers the CompileService LRU cache semantics (hit/miss/eviction,
// and the key discipline: same source at a different -D binding is a
// distinct entry).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "runtime/HostRuntime.h"
#include "service/CompileService.h"
#include "vm/Interp.h"

#include "gen_matmul_small.h"         // matmul                   (nt=4)
#include "gen_quickstart_host.h"      // scale_vec + run          (nb=8)
#include "gen_reduce_small.h"         // reduce                   (nb=8)
#include "gen_reduction_host_small.h" // reduce_small + run_small (nb=8)
#include "gen_scan_small.h"           // scan_blocks + add_sums   (nb=8)
#include "gen_transpose_small.h"      // transpose                (n=128)

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

using namespace descend;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Compiles \p Path through the front end and vm::compile; fails the test
/// (and returns null) on any diagnostic.
std::shared_ptr<const vm::CompiledProgram>
compileVm(const std::string &Path,
          std::map<std::string, long long> Defines) {
  CompilerInvocation Inv;
  Inv.BufferName = Path;
  Inv.Defines = std::move(Defines);
  Inv.RunUntil = Stage::Typecheck;
  Session S(Inv);
  CompileResult R = S.run(readFile(Path));
  EXPECT_TRUE(R.Ok) << S.renderDiagnostics();
  if (!R.Ok)
    return nullptr;
  vm::CompileVmResult C = vm::compile(*S.module());
  EXPECT_TRUE(C.Ok) << C.Error;
  return C.Ok ? C.Program : nullptr;
}

/// Deterministic input data shared by both execution paths.
double fillVal(size_t I) {
  return static_cast<double>((I * 37) % 101) * 0.5 - 3.0;
}

double *devData(vm::DevBuf &B) {
  return reinterpret_cast<double *>(B.Data);
}

//===----------------------------------------------------------------------===//
// Kernel bit-equality: interpreter vs build-time generated sim code
//===----------------------------------------------------------------------===//

TEST(VmKernel, TransposeBitIdenticalToGeneratedSim) {
  const int N = 128;
  auto P = compileVm(DESCEND_KERNEL_DIR "/transpose.descend", {{"n", N}});
  ASSERT_TRUE(P);
  const vm::VmKernel *K = P->findKernel("transpose");
  ASSERT_NE(K, nullptr);

  sim::GpuDevice DG;
  auto In = DG.alloc<double>(N * N);
  auto Out = DG.alloc<double>(N * N);
  sim::GpuDevice DV;
  vm::DevBuf VIn = vm::allocDev(DV, ScalarKind::F64, N * N);
  vm::DevBuf VOut = vm::allocDev(DV, ScalarKind::F64, N * N);
  for (int I = 0; I != N * N; ++I)
    In.data()[I] = devData(VIn)[I] = fillVal(I);

  descend::gen::transpose(DG, In, Out);
  vm::RunStatus St = vm::launchKernel(DV, *K, {VIn, VOut});
  ASSERT_TRUE(St.Ok) << St.Error;

  EXPECT_EQ(0, std::memcmp(Out.data(), VOut.Data, N * N * sizeof(double)));
  // Sanity against a closed form, not just against the twin.
  EXPECT_EQ(devData(VOut)[3 * N + 5], fillVal(5 * N + 3));
}

TEST(VmKernel, ReduceBitIdenticalToGeneratedSim) {
  const int NB = 8, N = NB * 256;
  auto P = compileVm(DESCEND_KERNEL_DIR "/reduce.descend", {{"nb", NB}});
  ASSERT_TRUE(P);
  const vm::VmKernel *K = P->findKernel("reduce");
  ASSERT_NE(K, nullptr);

  sim::GpuDevice DG;
  auto In = DG.alloc<double>(N);
  auto Out = DG.alloc<double>(NB);
  sim::GpuDevice DV;
  vm::DevBuf VIn = vm::allocDev(DV, ScalarKind::F64, N);
  vm::DevBuf VOut = vm::allocDev(DV, ScalarKind::F64, NB);
  for (int I = 0; I != N; ++I)
    In.data()[I] = devData(VIn)[I] = fillVal(I);

  descend::gen::reduce(DG, In, Out);
  vm::RunStatus St = vm::launchKernel(DV, *K, {VIn, VOut});
  ASSERT_TRUE(St.Ok) << St.Error;

  // The tree reduction sums in a fixed association order; bit-equality
  // holds exactly because the interpreter replays the same order.
  EXPECT_EQ(0, std::memcmp(Out.data(), VOut.Data, NB * sizeof(double)));
}

TEST(VmKernel, ScanBothKernelsBitIdenticalToGeneratedSim) {
  const int NB = 8, N = NB * 256;
  auto P = compileVm(DESCEND_KERNEL_DIR "/scan.descend", {{"nb", NB}});
  ASSERT_TRUE(P);
  const vm::VmKernel *KScan = P->findKernel("scan_blocks");
  const vm::VmKernel *KAdd = P->findKernel("add_sums");
  ASSERT_NE(KScan, nullptr);
  ASSERT_NE(KAdd, nullptr);

  sim::GpuDevice DG;
  auto In = DG.alloc<double>(N);
  auto Out = DG.alloc<double>(N);
  auto Sums = DG.alloc<double>(NB);
  auto Offs = DG.alloc<double>(NB);
  sim::GpuDevice DV;
  vm::DevBuf VIn = vm::allocDev(DV, ScalarKind::F64, N);
  vm::DevBuf VOut = vm::allocDev(DV, ScalarKind::F64, N);
  vm::DevBuf VSums = vm::allocDev(DV, ScalarKind::F64, NB);
  vm::DevBuf VOffs = vm::allocDev(DV, ScalarKind::F64, NB);
  for (int I = 0; I != N; ++I)
    In.data()[I] = devData(VIn)[I] = fillVal(I);

  descend::gen::scan_blocks(DG, In, Out, Sums);
  ASSERT_TRUE(vm::launchKernel(DV, *KScan, {VIn, VOut, VSums}).Ok);
  EXPECT_EQ(0, std::memcmp(Out.data(), VOut.Data, N * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(Sums.data(), VSums.Data, NB * sizeof(double)));

  // The paper's two-kernel structure: the host scans the block totals
  // (inclusive), the second kernel adds the offsets. Same host math on
  // both paths.
  double Acc = 0.0, VAcc = 0.0;
  for (int B = 0; B != NB; ++B) {
    Acc += Sums.data()[B];
    Offs.data()[B] = Acc;
    VAcc += devData(VSums)[B];
    devData(VOffs)[B] = VAcc;
  }
  descend::gen::add_sums(DG, Out, Offs);
  ASSERT_TRUE(vm::launchKernel(DV, *KAdd, {VOut, VOffs}).Ok);
  EXPECT_EQ(0, std::memcmp(Out.data(), VOut.Data, N * sizeof(double)));
}

TEST(VmKernel, MatmulBitIdenticalToGeneratedSim) {
  const int NT = 4, N = NT * 16;
  auto P = compileVm(DESCEND_KERNEL_DIR "/matmul.descend", {{"nt", NT}});
  ASSERT_TRUE(P);
  const vm::VmKernel *K = P->findKernel("matmul");
  ASSERT_NE(K, nullptr);

  sim::GpuDevice DG;
  auto A = DG.alloc<double>(N * N);
  auto B = DG.alloc<double>(N * N);
  auto C = DG.alloc<double>(N * N);
  sim::GpuDevice DV;
  vm::DevBuf VA = vm::allocDev(DV, ScalarKind::F64, N * N);
  vm::DevBuf VB = vm::allocDev(DV, ScalarKind::F64, N * N);
  vm::DevBuf VC = vm::allocDev(DV, ScalarKind::F64, N * N);
  for (int I = 0; I != N * N; ++I) {
    A.data()[I] = devData(VA)[I] = fillVal(I);
    B.data()[I] = devData(VB)[I] = fillVal(I + 17);
  }

  descend::gen::matmul(DG, A, B, C);
  vm::RunStatus St = vm::launchKernel(DV, *K, {VA, VB, VC});
  ASSERT_TRUE(St.Ok) << St.Error;

  EXPECT_EQ(0, std::memcmp(C.data(), VC.Data, N * N * sizeof(double)));
}

TEST(VmKernel, ScaleVecBitIdenticalToGeneratedSim) {
  const int NB = 8, N = NB * 256;
  auto P = compileVm(DESCEND_KERNEL_DIR "/scale_vec.descend", {{"nb", NB}});
  ASSERT_TRUE(P);
  const vm::VmKernel *K = P->findKernel("scale_vec");
  ASSERT_NE(K, nullptr);

  sim::GpuDevice DG;
  auto Vec = DG.alloc<double>(N);
  sim::GpuDevice DV;
  vm::DevBuf VVec = vm::allocDev(DV, ScalarKind::F64, N);
  for (int I = 0; I != N; ++I)
    Vec.data()[I] = devData(VVec)[I] = fillVal(I);

  descend::gen::scale_vec(DG, Vec);
  ASSERT_TRUE(vm::launchKernel(DV, *K, {VVec}).Ok);
  EXPECT_EQ(0, std::memcmp(Vec.data(), VVec.Data, N * sizeof(double)));
}

TEST(VmKernel, HonorsRaceDetectorSequentialMode) {
  // The interpreter logs shared/global accesses through the same
  // BlockCtx/GpuDevice hooks as generated code, so a race-free kernel
  // must stay race-free under detection (which forces sequential
  // single-worker execution).
  const int NB = 8, N = NB * 256;
  auto P = compileVm(DESCEND_KERNEL_DIR "/reduce.descend", {{"nb", NB}});
  ASSERT_TRUE(P);
  const vm::VmKernel *K = P->findKernel("reduce");
  ASSERT_NE(K, nullptr);

  sim::GpuDevice DV;
  DV.setRaceDetection(true);
  vm::DevBuf VIn = vm::allocDev(DV, ScalarKind::F64, N);
  vm::DevBuf VOut = vm::allocDev(DV, ScalarKind::F64, NB);
  for (int I = 0; I != N; ++I)
    devData(VIn)[I] = fillVal(I);

  ASSERT_TRUE(vm::launchKernel(DV, *K, {VIn, VOut}).Ok);
  auto Races = DV.findRaces();
  EXPECT_TRUE(Races.empty())
      << Races.size() << " races; first: " << Races[0].str();
}

TEST(VmKernel, ReportsOutOfRangeLaunchArguments) {
  const int NB = 8;
  auto P = compileVm(DESCEND_KERNEL_DIR "/reduce.descend", {{"nb", NB}});
  ASSERT_TRUE(P);
  const vm::VmKernel *K = P->findKernel("reduce");
  ASSERT_NE(K, nullptr);

  sim::GpuDevice DV;
  vm::DevBuf Small = vm::allocDev(DV, ScalarKind::F64, 16); // wrong size
  vm::DevBuf VOut = vm::allocDev(DV, ScalarKind::F64, NB);
  vm::RunStatus St = vm::launchKernel(DV, *K, {Small, VOut});
  EXPECT_FALSE(St.Ok);
  EXPECT_NE(St.Error.find("input"), std::string::npos) << St.Error;
}

//===----------------------------------------------------------------------===//
// Negative group: corrupted bytecode must trap, never hit UB. Runs under
// ASan/UBSan in CI — any unchecked register/const/jump index would fire
// there.
//===----------------------------------------------------------------------===//

namespace {
/// One-straight-node kernel around \p Body, no parameters.
vm::VmKernel corruptKernel(std::vector<vm::Instr> Body, unsigned NumRegs) {
  vm::VmKernel K;
  K.Name = "corrupt";
  K.Grid = sim::Dim3{1};
  K.Block = sim::Dim3{1};
  K.StraightPhases = 1;
  vm::VmNode N;
  N.K = vm::VmNode::Straight;
  N.Body.Instrs = std::move(Body);
  N.Body.NumRegs = NumRegs;
  K.Nodes.push_back(std::move(N));
  return K;
}

vm::Instr instr(vm::Op O, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
                int32_t Imm = 0) {
  vm::Instr I;
  I.K = O;
  I.A = A;
  I.B = B;
  I.C = C;
  I.Imm = Imm;
  return I;
}
} // namespace

TEST(VmValidate, RejectsOutOfRangeRegisterIndices) {
  // r5 with a 1-register file — the dispatch loop would index past the
  // register vector.
  auto K = corruptKernel({instr(vm::Op::Move, /*A=*/5, /*B=*/0)},
                         /*NumRegs=*/1);
  vm::RunStatus V = vm::validateKernel(K);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("register"), std::string::npos) << V.Error;

  // launchKernel refuses it too (same check, before anything runs).
  sim::GpuDevice DV;
  vm::RunStatus St = vm::launchKernel(DV, K, {});
  EXPECT_FALSE(St.Ok);
  EXPECT_NE(St.Error.find("invalid bytecode"), std::string::npos)
      << St.Error;
  EXPECT_FALSE(DV.poisoned()) << "rejected bytecode must not poison";
}

TEST(VmValidate, RejectsBitFlippedOpcode) {
  auto K = corruptKernel({instr(static_cast<vm::Op>(0xEF))}, 1);
  vm::RunStatus V = vm::validateKernel(K);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("opcode"), std::string::npos) << V.Error;
}

TEST(VmValidate, RejectsTruncatedArtifactShapes) {
  // A constant pool shorter than the Const index refers to — what a
  // truncated artifact looks like after deserialization.
  auto Trunc = corruptKernel({instr(vm::Op::Const, 0, 0, 0, /*Imm=*/3)}, 1);
  vm::RunStatus V1 = vm::validateKernel(Trunc);
  EXPECT_FALSE(V1.Ok);
  EXPECT_NE(V1.Error.find("constant index"), std::string::npos) << V1.Error;

  // Jump past the instruction vector (backwards, via a negative Imm).
  auto BadJmp = corruptKernel({instr(vm::Op::Jmp, 0, 0, 0, /*Imm=*/-7)}, 1);
  vm::RunStatus V2 = vm::validateKernel(BadJmp);
  EXPECT_FALSE(V2.Ok);
  EXPECT_NE(V2.Error.find("jump target"), std::string::npos) << V2.Error;

  // A global access against a parameter the kernel does not have.
  auto BadBuf = corruptKernel(
      {instr(vm::Op::LoadGlobal, 0, 0,
             static_cast<uint16_t>(ScalarKind::F64), /*Imm=*/2)},
      1);
  vm::RunStatus V3 = vm::validateKernel(BadBuf);
  EXPECT_FALSE(V3.Ok);
  EXPECT_NE(V3.Error.find("buffer index"), std::string::npos) << V3.Error;

  // Wide ops implicitly use r[A+1]: A = NumRegs-1 is out of range.
  auto BadWide = corruptKernel(
      {instr(vm::Op::LoadShared2, /*A=*/1, 0,
             static_cast<uint16_t>(ScalarKind::F64), /*Imm=*/0)},
      /*NumRegs=*/2);
  vm::RunStatus V4 = vm::validateKernel(BadWide);
  EXPECT_FALSE(V4.Ok);
  EXPECT_NE(V4.Error.find("register"), std::string::npos) << V4.Error;

  // And the compiled kernels in this suite all pass validation.
  auto P = compileVm(DESCEND_KERNEL_DIR "/reduce.descend", {{"nb", 8}});
  ASSERT_TRUE(P);
  for (const vm::VmKernel &K : P->Kernels)
    EXPECT_TRUE(vm::validateKernel(K).Ok);
}

//===----------------------------------------------------------------------===//
// Host drivers: interpreted `main` vs generated driver, bit for bit
//===----------------------------------------------------------------------===//

TEST(VmHost, QuickstartDriverBitIdenticalToGenerated) {
  const size_t N = 8 * 256;
  auto P = compileVm(DESCEND_PROGRAM_DIR "/quickstart_host.descend",
                     {{"nb", 8}});
  ASSERT_TRUE(P);
  const vm::HostFnIR *Main = P->findHostFn("main");
  ASSERT_NE(Main, nullptr);

  // Generated path.
  sim::GpuDevice DG;
  rt::HostBuffer<double> Gen(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    Gen[I] = fillVal(I);
  descend::gen::run(DG, Gen);

  // Interpreted path: same fill, same driver logic out of the bytecode.
  sim::GpuDevice DV;
  auto Arr = vm::makeHostArray(ScalarKind::F64, N, 0.0);
  double *AD = reinterpret_cast<double *>(Arr->Bytes.data());
  for (size_t I = 0; I != N; ++I)
    AD[I] = fillVal(I);
  vm::RunStatus St =
      vm::runHostFn(DV, *P, *Main, {vm::HostVal::array(Arr)});
  ASSERT_TRUE(St.Ok) << St.Error;

  EXPECT_EQ(0, std::memcmp(Gen.data(), Arr->Bytes.data(),
                           N * sizeof(double)));
  EXPECT_EQ(AD[100], fillVal(100) * 3.0);
}

TEST(VmHost, ReductionDriverBitIdenticalToGenerated) {
  const unsigned NB = 8;
  const size_t N = static_cast<size_t>(NB) * 256;
  auto P = compileVm(DESCEND_PROGRAM_DIR "/reduction_host.descend",
                     {{"nb", NB}});
  ASSERT_TRUE(P);
  const vm::HostFnIR *Main = P->findHostFn("main");
  ASSERT_NE(Main, nullptr);

  // Generated path (the _small instantiation is the same nb=8 footprint).
  sim::GpuDevice DG;
  rt::HostBuffer<double> Data(N, 0.0), Partials(NB, 0.0), Total(1, 0.0);
  for (size_t I = 0; I != N; ++I)
    Data[I] = fillVal(I);
  descend::gen::run_small(DG, Data, Partials, Total);

  // Interpreted path.
  sim::GpuDevice DV;
  auto AData = vm::makeHostArray(ScalarKind::F64, N, 0.0);
  auto APart = vm::makeHostArray(ScalarKind::F64, NB, 0.0);
  auto ATotal = vm::makeHostArray(ScalarKind::F64, 1, 0.0);
  double *AD = reinterpret_cast<double *>(AData->Bytes.data());
  for (size_t I = 0; I != N; ++I)
    AD[I] = fillVal(I);
  vm::RunStatus St = vm::runHostFn(DV, *P, *Main,
                                   {vm::HostVal::array(AData),
                                    vm::HostVal::array(APart),
                                    vm::HostVal::array(ATotal)});
  ASSERT_TRUE(St.Ok) << St.Error;

  EXPECT_EQ(0, std::memcmp(Partials.data(), APart->Bytes.data(),
                           NB * sizeof(double)));
  EXPECT_EQ(0,
            std::memcmp(Total.data(), ATotal->Bytes.data(), sizeof(double)));

  // Sanity: the sequential CPU finish really summed the partials.
  double Expected = 0.0;
  for (size_t I = 0; I != N; ++I)
    Expected += fillVal(I);
  double Got;
  std::memcpy(&Got, ATotal->Bytes.data(), sizeof(double));
  EXPECT_NEAR(Got, Expected, 1e-9);
}

TEST(VmHost, ExecuteMainDigestsHostArrays) {
  // Session::executeMain is the `descendc --run` entry point: default
  // fill 1.0, RESULT digest per host-array parameter.
  Session S;
  ExecuteResult E = S.executeMain(
      readFile(DESCEND_PROGRAM_DIR "/quickstart_host.descend"), {});
  // Without -D nb=... the launch geometry is uninstantiated: a
  // diagnostic, not a crash.
  EXPECT_FALSE(E.Ok);

  CompilerInvocation Inv;
  Inv.Defines["nb"] = 8;
  Session S2(Inv);
  ExecuteResult E2 = S2.executeMain(
      readFile(DESCEND_PROGRAM_DIR "/quickstart_host.descend"), {2.0});
  ASSERT_TRUE(E2.Ok) << E2.Error << "\n" << S2.renderDiagnostics();
  // 2048 elements of 2.0 scaled by 3.0.
  EXPECT_NE(E2.Output.find("RESULT host_vec n=2048"), std::string::npos)
      << E2.Output;
  EXPECT_NE(E2.Output.find("sum=12288"), std::string::npos) << E2.Output;
}

//===----------------------------------------------------------------------===//
// CompileService cache semantics
//===----------------------------------------------------------------------===//

TEST(CompileServiceCache, HitMissEviction) {
  std::string Src =
      readFile(DESCEND_KERNEL_DIR "/scale_vec.descend");
  service::CompileService Svc(/*Capacity=*/2);

  service::CompileRequest Req;
  Req.Source = Src;
  Req.Defines["nb"] = 8;
  service::CompileReply R1 = Svc.compile(Req);
  ASSERT_TRUE(R1.Ok) << R1.Diagnostics;
  EXPECT_FALSE(R1.CacheHit);
  ASSERT_TRUE(R1.Program);
  EXPECT_NE(R1.Program->findKernel("scale_vec"), nullptr);

  service::CompileReply R2 = Svc.compile(Req);
  ASSERT_TRUE(R2.Ok);
  EXPECT_TRUE(R2.CacheHit);

  // Two more distinct sources evict the oldest entry (capacity 2).
  service::CompileRequest ReqB = Req;
  ReqB.Source = "// variant B\n" + Src;
  service::CompileRequest ReqC = Req;
  ReqC.Source = "// variant C\n" + Src;
  ASSERT_TRUE(Svc.compile(ReqB).Ok);
  ASSERT_TRUE(Svc.compile(ReqC).Ok); // evicts the original

  service::CompileReply R3 = Svc.compile(Req);
  ASSERT_TRUE(R3.Ok);
  EXPECT_FALSE(R3.CacheHit) << "evicted entry must recompile";

  service::ServiceStats St = Svc.stats();
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 4u);
  EXPECT_GE(St.Evictions, 2u);
  EXPECT_EQ(St.Entries, 2u);
  EXPECT_EQ(St.Failures, 0u);
}

TEST(CompileServiceCache, SameSourceDifferentDefinesAreDistinctEntries) {
  std::string Src =
      readFile(DESCEND_KERNEL_DIR "/scale_vec.descend");
  service::CompileService Svc;

  service::CompileRequest R8;
  R8.Source = Src;
  R8.Defines["nb"] = 8;
  service::CompileRequest R16 = R8;
  R16.Defines["nb"] = 16;

  EXPECT_FALSE(Svc.compile(R8).CacheHit);
  EXPECT_FALSE(Svc.compile(R16).CacheHit) << "-D nb=16 must not hit nb=8";
  EXPECT_TRUE(Svc.compile(R8).CacheHit);
  EXPECT_TRUE(Svc.compile(R16).CacheHit);

  service::ServiceStats St = Svc.stats();
  EXPECT_EQ(St.Entries, 2u);
  EXPECT_EQ(St.Hits, 2u);
  EXPECT_EQ(St.Misses, 2u);

  // And the two artifacts really are different specializations: the
  // launch grids differ.
  service::CompileReply A = Svc.compile(R8), B = Svc.compile(R16);
  ASSERT_TRUE(A.Program && B.Program);
  EXPECT_NE(A.Program->findKernel("scale_vec")->Grid.X,
            B.Program->findKernel("scale_vec")->Grid.X);
}

TEST(CompileServiceCache, ClearDropsEntriesKeepsStats) {
  std::string Src =
      readFile(DESCEND_KERNEL_DIR "/scale_vec.descend");
  service::CompileService Svc;
  service::CompileRequest Req;
  Req.Source = Src;
  Req.Defines["nb"] = 8;
  ASSERT_TRUE(Svc.compile(Req).Ok);
  EXPECT_TRUE(Svc.compile(Req).CacheHit);
  Svc.clear();
  EXPECT_EQ(Svc.stats().Entries, 0u);
  EXPECT_FALSE(Svc.compile(Req).CacheHit);
  EXPECT_EQ(Svc.stats().Hits, 1u);
}

} // namespace
