//===- tests/typeck_edge_test.cpp - Additional type-system coverage -------===//
//
// Edge cases beyond the paper's listings: tuples, multi-dimensional
// narrowing, view composition shapes, broadcast views, synchronization
// scoping across blocks, and flow-sensitivity corner cases.
//
//===----------------------------------------------------------------------===//

#include "typeck/TypeChecker.h"

#include "parser/Parser.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace descend;

namespace {

struct CheckResult {
  std::shared_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<Module> Mod;
  bool Ok = false;
};

CheckResult check(const std::string &Src) {
  CheckResult R;
  R.SM = std::make_shared<SourceManager>();
  uint32_t Id = R.SM->addBuffer("edge.descend", Src);
  R.Diags = std::make_unique<DiagnosticEngine>(*R.SM);
  Parser P(*R.SM, Id, *R.Diags);
  R.Mod = P.parseModule();
  EXPECT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  TypeChecker TC(*R.SM, *R.Diags);
  R.Ok = TC.check(*R.Mod);
  return R;
}

//===----------------------------------------------------------------------===//
// Multi-dimensional narrowing (2D blocks and threads)
//===----------------------------------------------------------------------===//

TEST(TypeckEdge, TwoDimSelectNarrowsBothAxes) {
  auto R = check(R"(
view tiles<th: nat, tw: nat> =
  group::<th>.map(map(group::<tw>)).map(transpose)
fn k(m: &uniq gpu.global [[f64; 64]; 64])
-[grid: gpu.grid<XY<4,4>, XY<16,16>>]-> () {
  sched(Y, X) block in grid {
    sched(Y, X) thread in block {
      m.tiles::<16,16>[[block]][[thread]] = 0.0
    }
  }
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(TypeckEdge, PartialSchedCannotWriteUniquely) {
  // Scheduling only X of a 2D block leaves 16 Y-instances sharing the
  // write: the 2D narrowing is incomplete.
  auto R = check(R"(
fn k(arr: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<4>, XY<16,16>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<16>[[block]][[thread]] = 0.0
    }
  }
}
)");
  // Either the shape check or narrowing must reject; per-thread writes
  // duplicated along Y are a race.
  EXPECT_FALSE(R.Ok) << "duplicated writes along Y must not check";
}

TEST(TypeckEdge, SchedAxisOrderMattersForSelect) {
  // sched(X, Y) consumes dims in X-then-Y order: the outer dim of the
  // 2D view must match the X extent.
  auto R = check(R"(
view tiles<th: nat, tw: nat> =
  group::<th>.map(map(group::<tw>)).map(transpose)
fn k(m: &uniq gpu.global [[f64; 32]; 16])
-[grid: gpu.grid<X<1>, XY<32,16>>]-> () {
  sched(X) block in grid {
    sched(Y, X) thread in block {
      m[[thread]] = 0.0
    }
  }
}
)");
  // m is [16 rows][32 cols]; sched(Y,X) selects rows with Y (16) then
  // cols with X (32): shapes line up.
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();

  auto Bad = check(R"(
fn k(m: &uniq gpu.global [[f64; 32]; 16])
-[grid: gpu.grid<X<1>, XY<32,16>>]-> () {
  sched(X) block in grid {
    sched(X, Y) thread in block {
      m[[thread]] = 0.0
    }
  }
}
)");
  EXPECT_FALSE(Bad.Ok);
  EXPECT_TRUE(Bad.Diags->contains(DiagCode::SelectShapeMismatch));
}

//===----------------------------------------------------------------------===//
// Views: composition and broadcasts
//===----------------------------------------------------------------------===//

TEST(TypeckEdge, WriteThroughBroadcastRejected) {
  auto R = check(R"(
view bcast<r: nat> = repeat::<r>
fn k(arr: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<1>, XY<256,4>>]-> () {
  sched(X) block in grid {
    sched(Y, X) thread in block {
      arr.bcast::<4>[[thread]] = 0.0
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::SharedWriteRejected))
      << R.Diags->renderAll();
}

TEST(TypeckEdge, ReadThroughBroadcastAccepted) {
  auto R = check(R"(
view bcast<r: nat> = repeat::<r>
fn k(arr: & gpu.global [f64; 256], out: &uniq gpu.global [f64; 1024])
-[grid: gpu.grid<X<1>, XY<256,4>>]-> () {
  sched(X) block in grid {
    sched(Y, X) thread in block {
      out.group::<256>[[thread]] = arr.bcast::<4>[[thread]]
    }
  }
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(TypeckEdge, ChainedSplitsSelectNestedParts) {
  auto R = check(R"(
fn k(arr: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<64>>]-> () {
  sched(X) block in grid {
    split(X) block at 32 {
      lo => {
        split(X) lo at 16 {
          lolo => {
            sched(X) t in lolo { arr.split::<16>.fst[[t]] = 1.0 }
          },
          lohi => { }
        }
      },
      hi => { }
    }
  }
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(TypeckEdge, GroupOfGroupComposes) {
  auto R = check(R"(
fn k(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<4>, X<16>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      for i in [0..64] {
        arr.group::<1024>[[block]].group::<64>[[thread]][i] = 0.0
      }
    }
  }
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

//===----------------------------------------------------------------------===//
// Synchronization scope
//===----------------------------------------------------------------------===//

TEST(TypeckEdge, SyncDoesNotLicenseCrossBlockConflicts) {
  // Block-level sync only clears this block's accesses; two blocks still
  // conflict on shared global memory.
  auto R = check(R"(
fn k(arr: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<2>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr[[thread]] = 1.0
    }
  }
}
)");
  EXPECT_FALSE(R.Ok) << "both blocks write the same 256 elements";
  EXPECT_TRUE(R.Diags->contains(DiagCode::NarrowingViolated))
      << R.Diags->renderAll();
}

TEST(TypeckEdge, SequentialWritesBySameThreadAreFine) {
  auto R = check(R"(
fn k(arr: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<1>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr[[thread]] = 1.0;
      arr[[thread]] = 2.0
    }
  }
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(TypeckEdge, SyncEnablesCommunicationThenNewConflictDetected) {
  // Write, sync, read another thread's slot: fine once. Writing again
  // after the read without a second sync conflicts.
  auto Good = check(R"(
fn k(out: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<1>, X<256>>]-> () {
  sched(X) block in grid {
    let tmp = alloc::<gpu.shared, [f64; 256]>();
    sched(X) thread in block {
      tmp[[thread]] = 1.0;
      sync;
      out[[thread]] = tmp.rev[[thread]]
    }
  }
}
)");
  EXPECT_TRUE(Good.Ok) << Good.Diags->renderAll();

  auto Bad = check(R"(
fn k(out: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<1>, X<256>>]-> () {
  sched(X) block in grid {
    let tmp = alloc::<gpu.shared, [f64; 256]>();
    sched(X) thread in block {
      tmp[[thread]] = 1.0;
      sync;
      out[[thread]] = tmp.rev[[thread]];
      tmp[[thread]] = 2.0
    }
  }
}
)");
  EXPECT_FALSE(Bad.Ok);
  EXPECT_TRUE(Bad.Diags->contains(DiagCode::ConflictingMemoryAccess))
      << Bad.Diags->renderAll();
}

//===----------------------------------------------------------------------===//
// Tuples and host-side flow sensitivity
//===----------------------------------------------------------------------===//

TEST(TypeckEdge, TupleProjectionTypes) {
  auto R = check(R"(
fn host(pair: (i32, f64)) -[t: cpu.thread]-> () {
  let a = pair.fst;
  let b = pair.snd;
  let c = a + 1;
  let d = b + 1.0
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();

  auto Bad = check(R"(
fn host(pair: (i32, f64)) -[t: cpu.thread]-> () {
  let c = pair.fst + 1.0
}
)");
  EXPECT_FALSE(Bad.Ok);
  EXPECT_TRUE(Bad.Diags->contains(DiagCode::MismatchedTypes));
}

TEST(TypeckEdge, ProjOfNonTupleRejected) {
  auto R = check(R"(
fn host(x: i32) -[t: cpu.thread]-> () {
  let a = x.fst
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::NotATuple));
}

TEST(TypeckEdge, ForEachOverArray) {
  auto R = check(R"(
fn host(arr: & cpu.mem [f64; 16]) -[t: cpu.thread]-> () {
  for x in *arr {
    let y = x * 2.0
  }
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();

  auto Bad = check(R"(
fn host(x: f64) -[t: cpu.thread]-> () {
  for v in x { }
}
)");
  EXPECT_FALSE(Bad.Ok);
  EXPECT_TRUE(Bad.Diags->contains(DiagCode::NotAnArray));
}

TEST(TypeckEdge, ShadowingCreatesDistinctPlaces) {
  auto R = check(R"(
fn host() -[t: cpu.thread]-> () {
  let a = CpuHeap::new([0; 4]);
  {
    let a = CpuHeap::new([1; 4]);
    let r = &uniq a
  };
  let r2 = &uniq a
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(TypeckEdge, MovedValueRestoredByNothing) {
  auto R = check(R"(
fn host() -[t: cpu.thread]-> () {
  let a = CpuHeap::new([0; 4]);
  let b = a;
  let c = &a
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::UseOfMovedValue));
}

TEST(TypeckEdge, GenericCallWithExplicitNats) {
  auto R = check(R"(
fn helper<n: nat>(x: & cpu.mem [f64; n]) -[t: cpu.thread]-> () { }
fn host(arr: & cpu.mem [f64; 32]) -[t: cpu.thread]-> () {
  helper::<32>(arr)
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();

  auto Bad = check(R"(
fn helper<n: nat>(x: & cpu.mem [f64; n]) -[t: cpu.thread]-> () { }
fn host(arr: & cpu.mem [f64; 32]) -[t: cpu.thread]-> () {
  helper::<64>(arr)
}
)");
  EXPECT_FALSE(Bad.Ok);
  EXPECT_TRUE(Bad.Diags->contains(DiagCode::MismatchedTypes));
}

TEST(TypeckEdge, WrongArgCountReported) {
  auto R = check(R"(
fn helper(x: i32) -[t: cpu.thread]-> () { }
fn host() -[t: cpu.thread]-> () {
  helper(1, 2)
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::WrongArgCount));
}

TEST(TypeckEdge, SplitTargetMustBeCurrentExec) {
  // Splitting the grid from inside a block's scope is out of scope.
  auto R = check(R"(
fn k(arr: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<2>, X<128>>]-> () {
  sched(X) block in grid {
    split(X) grid at 1 {
      a => { },
      b => { }
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::WrongExecutionContext))
      << R.Diags->renderAll();
}

} // namespace
