//===- tests/obs_test.cpp - Perf counters and trace exporter ----------------===//
//
// The acceptance gate for the observability subsystem. The counter half
// pins the matmul (nt=4) profile to exact values — every load, store,
// barrier and modeled bank conflict — and proves the numbers are
// bit-identical across every execution path that can run a kernel:
// sim-generated C++, the vm interpreter, graph replay, one worker or
// many, race detection on or off. The bank-conflict model itself is
// unit-tested on handwritten phases with known access patterns. The
// trace half checks the Chrome-trace-event JSON structure.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "kir/Schedule.h"
#include "obs/Trace.h"
#include "runtime/HostRuntime.h"
#include "vm/Interp.h"

#include "gen_matmul_small.h"    // matmul          (nt=4)
#include "gen_quickstart_host.h" // scale_vec + run (nb=8)

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace descend;
using sim::BlockCtx;
using sim::Dim3;
using sim::ThreadCtx;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::shared_ptr<const vm::CompiledProgram>
compileVm(const std::string &Path, std::map<std::string, long long> Defines,
          kir::PassConfig Passes = {}) {
  CompilerInvocation Inv;
  Inv.BufferName = Path;
  Inv.Defines = std::move(Defines);
  Inv.RunUntil = Stage::Typecheck;
  Session S(Inv);
  CompileResult R = S.run(readFile(Path));
  EXPECT_TRUE(R.Ok) << S.renderDiagnostics();
  if (!R.Ok)
    return nullptr;
  vm::CompileVmResult C = vm::compile(*S.module(), Passes);
  EXPECT_TRUE(C.Ok) << C.Error;
  return C.Ok ? C.Program : nullptr;
}

double fillVal(size_t I) {
  return static_cast<double>((I * 37) % 101) * 0.5 - 3.0;
}

/// Runs the generated matmul (nt=4, 64x64 doubles) on a device with
/// counters enabled and returns the launch's stats.
sim::LaunchStats countedMatmul(unsigned Workers, bool RaceDetection) {
  const int N = 64;
  sim::GpuDevice Dev;
  Dev.setWorkers(Workers);
  Dev.setRaceDetection(RaceDetection);
  Dev.setCounters(true);
  auto A = Dev.alloc<double>(N * N);
  auto B = Dev.alloc<double>(N * N);
  auto C = Dev.alloc<double>(N * N);
  for (int I = 0; I != N * N; ++I) {
    A.data()[I] = fillVal(I);
    B.data()[I] = fillVal(I + 17);
  }
  gen::matmul(Dev, A, B, C);
  return Dev.lastLaunchStats();
}

//===----------------------------------------------------------------------===//
// The pinned matmul profile (nt=4): exact counter values
//===----------------------------------------------------------------------===//

// matmul at nt=4: grid 4x4, block 16x16, 4 host-side tile iterations.
// Derivation: 16 blocks x 256 threads x 4 iterations x 2 tile loads give
// the global loads; each thread writes one C element; the inner k-loop
// reads 2 shared values 16 times per iteration. The conflict totals come
// from the 32-bank model over double-wide tiles (2-way on the stores,
// row-broadcast asub reads adding one serialization per group).
constexpr uint64_t MatmulGlobalLoads = 32768;
constexpr uint64_t MatmulGlobalStores = 4096;
constexpr uint64_t MatmulSharedLoads = 524288;
constexpr uint64_t MatmulSharedStores = 32768;
constexpr uint64_t MatmulSharedTransactions = 26624;
constexpr uint64_t MatmulBankConflicts = 9216;
constexpr uint64_t MatmulBarriers = 160;

TEST(ObsCounters, MatmulPinnedValues) {
  sim::LaunchStats S = countedMatmul(/*Workers=*/1, /*RaceDetection=*/false);

  EXPECT_EQ(S.Launches, 1u);
  EXPECT_EQ(S.Blocks, 16u);
  EXPECT_EQ(S.ThreadsPerBlock, 256u);
  EXPECT_EQ(S.ArenaBytesPerBlock, 6144u); // 2 double tiles + spill slots
  EXPECT_EQ(S.ArenaBytesTotal, 6144u * 16);
  EXPECT_EQ(S.Traps, 0u);
  EXPECT_EQ(S.RaceLogEntries, 0u);

  EXPECT_EQ(S.globalLoads(), MatmulGlobalLoads);
  EXPECT_EQ(S.globalStores(), MatmulGlobalStores);
  EXPECT_EQ(S.sharedLoads(), MatmulSharedLoads);
  EXPECT_EQ(S.sharedStores(), MatmulSharedStores);
  EXPECT_EQ(S.sharedTransactions(), MatmulSharedTransactions);
  EXPECT_EQ(S.bankConflicts(), MatmulBankConflicts);
  EXPECT_EQ(S.barriers(), MatmulBarriers);

  // Static phase identity: one row per barrier-delimited source section
  // (init, tile-fill, inner product, write-back), not one per dynamic
  // iteration of the host-side tile loop.
  ASSERT_EQ(S.Phases.size(), 4u);

  const obs::PhaseCounters &Init = S.Phases[0];
  EXPECT_EQ(Init.GlobalLoads, 0u);
  EXPECT_EQ(Init.SharedStores, 0u);
  EXPECT_EQ(Init.Barriers, 16u); // once per block

  const obs::PhaseCounters &Fill = S.Phases[1];
  EXPECT_EQ(Fill.GlobalLoads, 32768u);
  EXPECT_EQ(Fill.GlobalStores, 0u);
  EXPECT_EQ(Fill.SharedLoads, 0u);
  EXPECT_EQ(Fill.SharedStores, 32768u);
  EXPECT_EQ(Fill.SharedTransactions, 2048u);
  EXPECT_EQ(Fill.BankConflicts, 1024u); // double-wide: 2-way
  EXPECT_EQ(Fill.Barriers, 64u);        // 16 blocks x 4 tile iterations

  const obs::PhaseCounters &Inner = S.Phases[2];
  EXPECT_EQ(Inner.GlobalLoads, 0u);
  EXPECT_EQ(Inner.SharedLoads, 524288u);
  EXPECT_EQ(Inner.SharedStores, 0u);
  EXPECT_EQ(Inner.SharedTransactions, 24576u);
  EXPECT_EQ(Inner.BankConflicts, 8192u);
  EXPECT_EQ(Inner.Barriers, 64u);

  const obs::PhaseCounters &Write = S.Phases[3];
  EXPECT_EQ(Write.GlobalLoads, 0u);
  EXPECT_EQ(Write.GlobalStores, 4096u);
  EXPECT_EQ(Write.SharedLoads, 0u);
  EXPECT_EQ(Write.Barriers, 16u);
}

TEST(ObsCounters, MatmulWorkerCountInvariance) {
  // Totals must be bit-identical no matter how blocks were distributed
  // over workers — every merge is a commutative sum. Only the excluded
  // execution-shape fields (ChunkClaims, Workers) may differ.
  sim::LaunchStats One = countedMatmul(1, false);
  sim::LaunchStats Four = countedMatmul(4, false);
  EXPECT_EQ(One, Four);
  EXPECT_EQ(Four.Workers, 4u);
}

TEST(ObsCounters, RaceDetectionModeAgreesAndLogsAccesses) {
  // Race detection forces sequential execution and logs every access; the
  // counters must not drift, and the race-log total must equal the counted
  // (non-arena) accesses — the two observers see the same traffic.
  sim::LaunchStats Plain = countedMatmul(1, false);
  sim::LaunchStats Raced = countedMatmul(1, true);
  EXPECT_EQ(Plain.Phases, Raced.Phases);
  EXPECT_EQ(Raced.RaceLogEntries,
            Raced.globalLoads() + Raced.globalStores() + Raced.sharedLoads() +
                Raced.sharedStores());
}

TEST(ObsCounters, VmInterpreterMatchesGeneratedSim) {
  const int NT = 4, N = NT * 16;
  auto P = compileVm(DESCEND_KERNEL_DIR "/matmul.descend", {{"nt", NT}});
  ASSERT_TRUE(P);
  const vm::VmKernel *K = P->findKernel("matmul");
  ASSERT_NE(K, nullptr);

  sim::GpuDevice DV;
  DV.setWorkers(1);
  DV.setCounters(true);
  vm::DevBuf VA = vm::allocDev(DV, ScalarKind::F64, N * N);
  vm::DevBuf VB = vm::allocDev(DV, ScalarKind::F64, N * N);
  vm::DevBuf VC = vm::allocDev(DV, ScalarKind::F64, N * N);
  for (int I = 0; I != N * N; ++I) {
    reinterpret_cast<double *>(VA.Data)[I] = fillVal(I);
    reinterpret_cast<double *>(VB.Data)[I] = fillVal(I + 17);
  }
  ASSERT_TRUE(vm::launchKernel(DV, *K, {VA, VB, VC}).Ok);

  sim::LaunchStats Vm = DV.lastLaunchStats();
  sim::LaunchStats Gen = countedMatmul(1, false);

  // The two execution paths (generated C++ vs bytecode interpreter) must
  // count identically, phase by phase; only the interpreter knows the
  // kernel's name.
  EXPECT_EQ(Gen, Vm);
  EXPECT_EQ(Vm.Label, "matmul");
  EXPECT_EQ(Vm.globalLoads(), MatmulGlobalLoads);
  EXPECT_EQ(Vm.bankConflicts(), MatmulBankConflicts);
}

TEST(ObsCounters, TunedMatmulEliminatesInnerConflictsBitIdentically) {
  // The schedule-pass acceptance pin: --pad-shared=1 (the config the
  // autotuner selects for matmul) must drive the inner-product phase's
  // bank conflicts to exactly zero, leaving only the tile-fill phase's
  // unavoidable 2-way store conflicts — with the C output bit-identical
  // to the default lowering.
  const int NT = 4, N = NT * 16;
  auto Run = [&](kir::PassConfig Passes, sim::LaunchStats &Stats) {
    auto P =
        compileVm(DESCEND_KERNEL_DIR "/matmul.descend", {{"nt", NT}}, Passes);
    if (!P)
      return std::vector<double>();
    const vm::VmKernel *K = P->findKernel("matmul");
    EXPECT_NE(K, nullptr);
    sim::GpuDevice Dev;
    Dev.setWorkers(1);
    Dev.setCounters(true);
    vm::DevBuf A = vm::allocDev(Dev, ScalarKind::F64, N * N);
    vm::DevBuf B = vm::allocDev(Dev, ScalarKind::F64, N * N);
    vm::DevBuf C = vm::allocDev(Dev, ScalarKind::F64, N * N);
    for (int I = 0; I != N * N; ++I) {
      reinterpret_cast<double *>(A.Data)[I] = fillVal(I);
      reinterpret_cast<double *>(B.Data)[I] = fillVal(I + 17);
    }
    EXPECT_TRUE(vm::launchKernel(Dev, *K, {A, B, C}).Ok);
    Stats = Dev.lastLaunchStats();
    const double *Out = reinterpret_cast<const double *>(C.Data);
    return std::vector<double>(Out, Out + N * N);
  };

  sim::LaunchStats Def, Tuned;
  std::vector<double> DefOut = Run({}, Def);
  std::vector<double> TunedOut = Run(kir::PassConfig{1, false}, Tuned);
  ASSERT_EQ(DefOut.size(), (size_t)N * N);
  ASSERT_EQ(TunedOut.size(), (size_t)N * N);

  // Bit-identical result: padding only moves bytes around shared memory.
  EXPECT_EQ(DefOut, TunedOut);

  // Default profile: the pinned 9216 conflicts (1024 fill + 8192 inner).
  EXPECT_EQ(Def.bankConflicts(), MatmulBankConflicts);

  // Tuned profile: the inner-product phase is conflict-free; the total is
  // the fill phase's 1024 alone, and shared transactions drop with it.
  // The padded 16x17 tiles grow the per-block arena by 2*16 doubles.
  ASSERT_EQ(Tuned.Phases.size(), 4u);
  EXPECT_EQ(Tuned.Phases[2].BankConflicts, 0u);
  EXPECT_EQ(Tuned.bankConflicts(), 1024u);
  EXPECT_EQ(Tuned.sharedTransactions(), 18432u);
  EXPECT_EQ(Tuned.ArenaBytesPerBlock, 6400u);

  // The access *counts* are untouched — padding changes layout, never how
  // many loads and stores the kernel issues.
  EXPECT_EQ(Tuned.globalLoads(), Def.globalLoads());
  EXPECT_EQ(Tuned.globalStores(), Def.globalStores());
  EXPECT_EQ(Tuned.sharedLoads(), Def.sharedLoads());
  EXPECT_EQ(Tuned.sharedStores(), Def.sharedStores());
  EXPECT_EQ(Tuned.barriers(), Def.barriers());
}

TEST(ObsCounters, GraphReplayMatchesSyncLaunch) {
  const size_t N = 2048;

  sim::GpuDevice SyncDev;
  SyncDev.setCounters(true);
  rt::HostBuffer<double> SyncHost(N, 1.0);
  gen::run(SyncDev, SyncHost);
  sim::LaunchStats Sync = SyncDev.lastLaunchStats();
  EXPECT_EQ(Sync.globalLoads(), N);
  EXPECT_EQ(Sync.globalStores(), N);
  EXPECT_EQ(Sync.Blocks, 8u);
  EXPECT_EQ(Sync.barriers(), 8u);

  sim::GpuDevice GraphDev;
  GraphDev.setCounters(true);
  sim::Stream S(GraphDev);
  sim::GraphExec Graph;
  rt::HostBuffer<double> GraphHost(N, 1.0);
  gen::run(S, Graph, GraphHost); // first call: capture + instantiate
  gen::run(S, Graph, GraphHost); // second call: pure replay
  EXPECT_EQ(GraphHost[0], 9.0);  // scaled by 3.0 twice

  // The replayed launch counts exactly like the synchronous one.
  sim::LaunchStats Replay = GraphDev.lastLaunchStats();
  EXPECT_EQ(Sync, Replay);
  EXPECT_EQ(GraphDev.totalStats().Launches, 2u);
  ASSERT_EQ(GraphDev.launchLog().size(), 2u);
  EXPECT_EQ(GraphDev.launchLog()[0], GraphDev.launchLog()[1]);
}

TEST(ObsCounters, CountersOffByDefaultAndCostNothingToSkip) {
  sim::GpuDevice Dev;
  EXPECT_FALSE(Dev.countersEnabled());
  rt::HostBuffer<double> Host(2048, 1.0);
  gen::run(Dev, Host);
  EXPECT_TRUE(Dev.launchLog().empty());
  EXPECT_EQ(Dev.lastLaunchStats().Launches, 0u);
  EXPECT_EQ(Dev.totalStats().Launches, 0u);
  EXPECT_EQ(Dev.droppedLaunchStats(), 0u);
}

TEST(ObsCounters, TotalStatsAccumulateAcrossLaunches) {
  sim::GpuDevice Dev;
  Dev.setCounters(true);
  rt::HostBuffer<double> Host(2048, 1.0);
  gen::run(Dev, Host);
  gen::run(Dev, Host);
  sim::LaunchStats Total = Dev.totalStats();
  EXPECT_EQ(Total.Launches, 2u);
  EXPECT_EQ(Total.globalLoads(), 4096u);
  Dev.resetStats();
  EXPECT_TRUE(Dev.launchLog().empty());
  EXPECT_EQ(Dev.totalStats().Launches, 0u);
}

//===----------------------------------------------------------------------===//
// The 32-bank shared-memory conflict model, on known access patterns
//===----------------------------------------------------------------------===//

/// Runs one single-block phase over \p Threads threads with counters on
/// and returns the launch stats.
template <typename Phase>
sim::LaunchStats countedPhase(unsigned Threads, size_t SharedBytes,
                              Phase &&P) {
  sim::GpuDevice Dev;
  Dev.setWorkers(1);
  Dev.setCounters(true);
  sim::launchPhases(Dev, Dim3{1, 1, 1}, Dim3{Threads, 1, 1}, SharedBytes,
                    std::forward<Phase>(P));
  return Dev.lastLaunchStats();
}

TEST(ObsBankModel, UnitStrideFloatsAreConflictFree) {
  // 32 consecutive 4-byte words: one word per bank, one transaction.
  sim::LaunchStats S =
      countedPhase(32, 32 * 4, [](BlockCtx &B, ThreadCtx &T) {
        B.sharedStore<float>(0, T.X, 1.0f);
      });
  EXPECT_EQ(S.sharedStores(), 32u);
  EXPECT_EQ(S.sharedTransactions(), 1u);
  EXPECT_EQ(S.bankConflicts(), 0u);
}

TEST(ObsBankModel, SameWordBroadcastsForFree) {
  sim::LaunchStats S =
      countedPhase(32, 4, [](BlockCtx &B, ThreadCtx &T) {
        (void)T;
        (void)B.sharedLoad<float>(0, 0);
      });
  EXPECT_EQ(S.sharedLoads(), 32u);
  EXPECT_EQ(S.sharedTransactions(), 1u);
  EXPECT_EQ(S.bankConflicts(), 0u);
}

TEST(ObsBankModel, Stride32WordsFullySerializes) {
  // Word index 32*t: every access lands in bank 0 at a distinct word —
  // the classic worst case, 32 transactions and 31 conflicts.
  sim::LaunchStats S =
      countedPhase(32, 32 * 32 * 4, [](BlockCtx &B, ThreadCtx &T) {
        B.sharedStore<float>(0, T.X * 32, 1.0f);
      });
  EXPECT_EQ(S.sharedStores(), 32u);
  EXPECT_EQ(S.sharedTransactions(), 32u);
  EXPECT_EQ(S.bankConflicts(), 31u);
}

TEST(ObsBankModel, UnitStrideDoublesAreTwoWayConflicted) {
  // 8-byte elements: thread t's double starts at word 2t, so each bank
  // holds two distinct words per warp group.
  sim::LaunchStats S =
      countedPhase(32, 32 * 8, [](BlockCtx &B, ThreadCtx &T) {
        B.sharedStore<double>(0, T.X, 1.0);
      });
  EXPECT_EQ(S.sharedStores(), 32u);
  EXPECT_EQ(S.sharedTransactions(), 2u);
  EXPECT_EQ(S.bankConflicts(), 1u);
}

TEST(ObsBankModel, WarpsOfThirtyTwoAreGroupedSeparately) {
  // 64 threads = 2 warps; each warp's unit-stride access is one
  // transaction of its own.
  sim::LaunchStats S =
      countedPhase(64, 64 * 4, [](BlockCtx &B, ThreadCtx &T) {
        B.sharedStore<float>(0, T.X, 1.0f);
      });
  EXPECT_EQ(S.sharedStores(), 64u);
  EXPECT_EQ(S.sharedTransactions(), 2u);
  EXPECT_EQ(S.bankConflicts(), 0u);
}

TEST(ObsBankModel, OrdinalsSeparateAccessesWithinAThread) {
  // Each thread issues two accesses: ordinal 0 is unit-stride (1
  // transaction), ordinal 1 is stride-32 (32 transactions). The model
  // must not fuse them into one 64-access group.
  sim::LaunchStats S =
      countedPhase(32, 32 * 32 * 4, [](BlockCtx &B, ThreadCtx &T) {
        B.sharedStore<float>(0, T.X, 1.0f);
        B.sharedStore<float>(0, T.X * 32, 2.0f);
      });
  EXPECT_EQ(S.sharedStores(), 64u);
  EXPECT_EQ(S.sharedTransactions(), 33u);
  EXPECT_EQ(S.bankConflicts(), 31u);
}

//===----------------------------------------------------------------------===//
// LaunchStats rendering
//===----------------------------------------------------------------------===//

TEST(ObsStats, JsonAndHumanRenderings) {
  sim::LaunchStats S = countedMatmul(1, false);
  S.Label = "matmul";
  std::string H = S.str();
  EXPECT_NE(H.find("matmul"), std::string::npos) << H;
  EXPECT_NE(H.find("32768 loads"), std::string::npos) << H;
  EXPECT_NE(H.find("9216 bank conflicts"), std::string::npos) << H;

  std::string J = S.json();
  EXPECT_EQ(J.front(), '{');
  EXPECT_EQ(J.back(), '}');
  EXPECT_NE(J.find("\"label\":\"matmul\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"bank_conflicts\":9216"), std::string::npos) << J;
  EXPECT_NE(J.find("\"phases\":["), std::string::npos) << J;
}

//===----------------------------------------------------------------------===//
// Trace exporter: Chrome-trace-event JSON structure
//===----------------------------------------------------------------------===//

TEST(ObsTrace, SpansRenderAsChromeTraceEvents) {
  obs::TraceCollector &C = obs::TraceCollector::global();
  C.resetForTest();
  C.enable(::testing::TempDir() + "obs_test_trace.json");

  { obs::Span S("sim", "launch", "{\"blocks\":8}"); }
  C.addInstant("stream", "eventRecord");

  EXPECT_EQ(C.eventCount(), 2u);
  std::string J = C.renderJson();
  EXPECT_NE(J.find("\"traceEvents\":["), std::string::npos) << J;
  EXPECT_NE(J.find("\"name\":\"launch\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"cat\":\"sim\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"ph\":\"X\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"args\":{\"blocks\":8}"), std::string::npos) << J;
  EXPECT_NE(J.find("\"ph\":\"i\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"s\":\"t\""), std::string::npos) << J;

  C.resetForTest(); // nothing left for the exit-time flush
}

TEST(ObsTrace, DisabledCollectorRecordsNothing) {
  obs::TraceCollector &C = obs::TraceCollector::global();
  C.resetForTest();
  EXPECT_FALSE(C.enabled());
  { obs::Span S("sim", "launch"); }
  C.addInstant("stream", "eventRecord");
  EXPECT_EQ(C.eventCount(), 0u);
}

TEST(ObsTrace, TracedLaunchEmitsSimSpan) {
  obs::TraceCollector &C = obs::TraceCollector::global();
  C.resetForTest();
  C.enable(::testing::TempDir() + "obs_test_trace2.json");

  sim::GpuDevice Dev;
  rt::HostBuffer<double> Host(2048, 1.0);
  gen::run(Dev, Host);

  std::string J = C.renderJson();
  C.resetForTest();
  EXPECT_NE(J.find("\"cat\":\"sim\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"name\":\"launch\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"blocks\":8"), std::string::npos) << J;
}

} // namespace
