//===- tests/generated_host_test.cpp - Generated host drivers, executed -----===//
//
// Executes the build-time generated host drivers (programs/*.descend
// compiled by descendc --emit=sim) and checks them bit-for-bit against the
// equivalent handwritten host code over runtime/HostRuntime.h — the
// acceptance gate for the host-program subsystem: the driver Descend
// generates must be indistinguishable from the driver a careful human
// writes.
//
//===----------------------------------------------------------------------===//

#include "runtime/HostRuntime.h"

#include "gen_quickstart_host.h"      // scale_vec + run          (nb=8)
#include "gen_reduction_host_small.h" // reduce_small + run_small (nb=8)

#include <gtest/gtest.h>

#include <cstring>

using namespace descend;

namespace {

TEST(GeneratedHost, QuickstartDriverBitIdenticalToHandwritten) {
  const size_t N = 8 * 256;

  // Generated path: one call into the emitted driver.
  sim::GpuDevice DevGen;
  rt::HostBuffer<double> Gen(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    Gen[I] = static_cast<double>(I) * 0.25;
  descend::gen::run(DevGen, Gen);

  // Handwritten path: the same host logic spelled by hand.
  sim::GpuDevice DevRef;
  rt::HostBuffer<double> Ref(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    Ref[I] = static_cast<double>(I) * 0.25;
  auto DVec = rt::allocCopy(DevRef, Ref);
  descend::gen::scale_vec(DevRef, DVec);
  rt::copyToHost(Ref, DVec);

  EXPECT_EQ(0, std::memcmp(Gen.data(), Ref.data(), N * sizeof(double)));
  // And both actually computed the kernel.
  EXPECT_EQ(Gen[100], 100.0 * 0.25 * 3.0);
}

TEST(GeneratedHost, ReductionDriverBitIdenticalToHandwritten) {
  const unsigned NB = 8;
  const size_t N = static_cast<size_t>(NB) * 256;

  auto Fill = [N](rt::HostBuffer<double> &B) {
    for (size_t I = 0; I != N; ++I)
      B[I] = static_cast<double>(I % 1000) * 0.001;
  };

  // Generated path: transfers, launch, copy-back and the sequential CPU
  // finish all come out of the compiled host function.
  sim::GpuDevice DevGen;
  rt::HostBuffer<double> Data(N, 0.0), Partials(NB, 0.0), Total(1, 0.0);
  Fill(Data);
  descend::gen::run_small(DevGen, Data, Partials, Total);

  // Handwritten path, step for step.
  sim::GpuDevice DevRef;
  rt::HostBuffer<double> RData(N, 0.0), RPartials(NB, 0.0), RTotal(1, 0.0);
  Fill(RData);
  auto DIn = rt::allocCopy(DevRef, RData);
  auto DOut = rt::allocCopy(DevRef, RPartials);
  descend::gen::reduce_small(DevRef, DIn, DOut);
  rt::copyToHost(RPartials, DOut);
  RTotal[0] = 0.0;
  for (size_t I = 0; I != NB; ++I)
    RTotal[0] = RTotal[0] + RPartials[I];

  EXPECT_EQ(0,
            std::memcmp(Partials.data(), RPartials.data(),
                        NB * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(Total.data(), RTotal.data(), sizeof(double)));

  // Sanity: the reduction really reduced.
  double Expected = 0.0;
  for (size_t I = 0; I != N; ++I)
    Expected += static_cast<double>(I % 1000) * 0.001;
  EXPECT_NEAR(Total[0], Expected, 1e-9);
}

TEST(GeneratedHost, DriverIsRerunnable) {
  // The driver owns no global state: running it twice on fresh devices
  // gives identical results.
  const size_t N = 8 * 256;
  rt::HostBuffer<double> A(N, 1.5), B(N, 1.5);
  sim::GpuDevice D1, D2;
  descend::gen::run(D1, A);
  descend::gen::run(D2, B);
  EXPECT_EQ(0, std::memcmp(A.data(), B.data(), N * sizeof(double)));
  EXPECT_EQ(A[0], 4.5);
}

//===----------------------------------------------------------------------===//
// Graph-mode overloads: capture on the first call, replay afterwards —
// bit-identical to the synchronous GpuDevice& driver on every call (the
// ISSUE 7 acceptance pin).
//===----------------------------------------------------------------------===//

TEST(GeneratedHost, GraphDriverBitIdenticalToSyncAcrossReplays) {
  const size_t N = 8 * 256;
  sim::GpuDevice DevGraph, DevSync;
  DevGraph.setWorkers(4);
  sim::Stream S(DevGraph);
  sim::GraphExec G; // capture happens on the first run() call
  for (int Round = 0; Round != 5; ++Round) {
    rt::HostBuffer<double> Graph(N, 0.0), Sync(N, 0.0);
    for (size_t I = 0; I != N; ++I)
      Graph[I] = Sync[I] = static_cast<double>((I * 31 + Round) % 977) * 0.5;
    descend::gen::run(S, G, Graph);
    descend::gen::run(DevSync, Sync);
    ASSERT_EQ(0, std::memcmp(Graph.data(), Sync.data(), N * sizeof(double)))
        << "replay " << Round;
  }
  EXPECT_TRUE(G.instantiated());
  EXPECT_EQ(G.opCount(), 3u); // H2D, launch, D2H
}

TEST(GeneratedHost, GraphReductionDriverMatchesSyncIncludingHostTail) {
  // run_small has a CPU finish loop after the captured prefix: the tail
  // must re-execute per call against the replayed D2H results.
  const unsigned NB = 8;
  const size_t N = static_cast<size_t>(NB) * 256;
  sim::GpuDevice DevGraph, DevSync;
  DevGraph.setWorkers(4);
  sim::Stream S(DevGraph);
  sim::GraphExec G;
  for (int Round = 0; Round != 4; ++Round) {
    rt::HostBuffer<double> Data(N, 0.0), Partials(NB, 0.0), Total(1, 0.0);
    rt::HostBuffer<double> SData(N, 0.0), SPartials(NB, 0.0), STotal(1, 0.0);
    for (size_t I = 0; I != N; ++I)
      Data[I] = SData[I] = static_cast<double>((I + Round * 7) % 1000) * 0.001;
    descend::gen::run_small(S, G, Data, Partials, Total);
    descend::gen::run_small(DevSync, SData, SPartials, STotal);
    ASSERT_EQ(0, std::memcmp(Partials.data(), SPartials.data(),
                             NB * sizeof(double)))
        << "replay " << Round;
    ASSERT_EQ(0, std::memcmp(Total.data(), STotal.data(), sizeof(double)))
        << "replay " << Round;
  }
  EXPECT_EQ(G.opCount(), 4u); // 2x H2D, launch, D2H
}

TEST(GeneratedHost, GraphDriverRebindsFreshBuffersPerCall) {
  // Distinct host buffers per request against one captured graph: each
  // call's results land in that call's buffer.
  const size_t N = 8 * 256;
  sim::GpuDevice Dev;
  Dev.setWorkers(2);
  sim::Stream S(Dev);
  sim::GraphExec G;
  rt::HostBuffer<double> A(N, 2.0), B(N, 5.0);
  descend::gen::run(S, G, A);
  descend::gen::run(S, G, B);
  EXPECT_EQ(A[0], 6.0);
  EXPECT_EQ(B[0], 15.0);
}

TEST(GeneratedHost, GraphDriverRejectsWrongSizedRebind) {
  // The capture pins byte sizes; a later call with a differently sized
  // buffer must fail the bind eagerly (same contract as rt:: copies).
  const size_t N = 8 * 256;
  sim::GpuDevice Dev;
  Dev.setWorkers(2);
  sim::Stream S(Dev);
  sim::GraphExec G;
  rt::HostBuffer<double> Right(N, 1.0);
  descend::gen::run(S, G, Right);
  rt::HostBuffer<double> Wrong(N / 2, 1.0);
  EXPECT_THROW(descend::gen::run(S, G, Wrong), std::invalid_argument);
}

} // namespace
