//===- tests/generated_host_test.cpp - Generated host drivers, executed -----===//
//
// Executes the build-time generated host drivers (programs/*.descend
// compiled by descendc --emit=sim) and checks them bit-for-bit against the
// equivalent handwritten host code over runtime/HostRuntime.h — the
// acceptance gate for the host-program subsystem: the driver Descend
// generates must be indistinguishable from the driver a careful human
// writes.
//
//===----------------------------------------------------------------------===//

#include "runtime/HostRuntime.h"

#include "gen_quickstart_host.h"      // scale_vec + run          (nb=8)
#include "gen_reduction_host_small.h" // reduce_small + run_small (nb=8)

#include <gtest/gtest.h>

#include <cstring>

using namespace descend;

namespace {

TEST(GeneratedHost, QuickstartDriverBitIdenticalToHandwritten) {
  const size_t N = 8 * 256;

  // Generated path: one call into the emitted driver.
  sim::GpuDevice DevGen;
  rt::HostBuffer<double> Gen(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    Gen[I] = static_cast<double>(I) * 0.25;
  descend::gen::run(DevGen, Gen);

  // Handwritten path: the same host logic spelled by hand.
  sim::GpuDevice DevRef;
  rt::HostBuffer<double> Ref(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    Ref[I] = static_cast<double>(I) * 0.25;
  auto DVec = rt::allocCopy(DevRef, Ref);
  descend::gen::scale_vec(DevRef, DVec);
  rt::copyToHost(Ref, DVec);

  EXPECT_EQ(0, std::memcmp(Gen.data(), Ref.data(), N * sizeof(double)));
  // And both actually computed the kernel.
  EXPECT_EQ(Gen[100], 100.0 * 0.25 * 3.0);
}

TEST(GeneratedHost, ReductionDriverBitIdenticalToHandwritten) {
  const unsigned NB = 8;
  const size_t N = static_cast<size_t>(NB) * 256;

  auto Fill = [N](rt::HostBuffer<double> &B) {
    for (size_t I = 0; I != N; ++I)
      B[I] = static_cast<double>(I % 1000) * 0.001;
  };

  // Generated path: transfers, launch, copy-back and the sequential CPU
  // finish all come out of the compiled host function.
  sim::GpuDevice DevGen;
  rt::HostBuffer<double> Data(N, 0.0), Partials(NB, 0.0), Total(1, 0.0);
  Fill(Data);
  descend::gen::run_small(DevGen, Data, Partials, Total);

  // Handwritten path, step for step.
  sim::GpuDevice DevRef;
  rt::HostBuffer<double> RData(N, 0.0), RPartials(NB, 0.0), RTotal(1, 0.0);
  Fill(RData);
  auto DIn = rt::allocCopy(DevRef, RData);
  auto DOut = rt::allocCopy(DevRef, RPartials);
  descend::gen::reduce_small(DevRef, DIn, DOut);
  rt::copyToHost(RPartials, DOut);
  RTotal[0] = 0.0;
  for (size_t I = 0; I != NB; ++I)
    RTotal[0] = RTotal[0] + RPartials[I];

  EXPECT_EQ(0,
            std::memcmp(Partials.data(), RPartials.data(),
                        NB * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(Total.data(), RTotal.data(), sizeof(double)));

  // Sanity: the reduction really reduced.
  double Expected = 0.0;
  for (size_t I = 0; I != N; ++I)
    Expected += static_cast<double>(I % 1000) * 0.001;
  EXPECT_NEAR(Total[0], Expected, 1e-9);
}

TEST(GeneratedHost, DriverIsRerunnable) {
  // The driver owns no global state: running it twice on fresh devices
  // gives identical results.
  const size_t N = 8 * 256;
  rt::HostBuffer<double> A(N, 1.5), B(N, 1.5);
  sim::GpuDevice D1, D2;
  descend::gen::run(D1, A);
  descend::gen::run(D2, B);
  EXPECT_EQ(0, std::memcmp(A.data(), B.data(), N * sizeof(double)));
  EXPECT_EQ(A[0], 4.5);
}

} // namespace
