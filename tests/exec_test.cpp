//===- tests/exec_test.cpp - Unit tests for src/exec ----------------------===//

#include "exec/ExecResource.h"

#include <gtest/gtest.h>

using namespace descend;

namespace {

Nat n(long long V) { return Nat::lit(V); }

/// The Figure 1 grid: 2x2x1 blocks of 4x4x4 threads.
ExecResource figure1Grid() {
  return ExecResource::gpuGrid("grd", Dim::makeXYZ(n(2), n(2), n(1)),
                               Dim::makeXYZ(n(4), n(4), n(4)));
}

TEST(ExecResource, CpuThread) {
  ExecResource E = ExecResource::cpuThread();
  EXPECT_TRUE(E.isCpu());
  ASSERT_TRUE(E.level().has_value());
  EXPECT_EQ(E.level()->Kind, ExecLevelKind::CpuThread);
  EXPECT_EQ(E.str(), "cpu.thread");
}

TEST(ExecResource, GridLevelAndPrinting) {
  ExecResource G = figure1Grid();
  ASSERT_TRUE(G.level().has_value());
  EXPECT_EQ(G.level()->Kind, ExecLevelKind::GpuGrid);
  EXPECT_EQ(G.str(), "gpu.grid<XYZ<2, 2, 1>, XYZ<4, 4, 4>>");
  EXPECT_EQ(G.currentStage(), 0u);
}

TEST(ExecResource, Figure1SchedulingChain) {
  // Figure 1b: grd.forall(X).forall(Z).
  ExecResource G = figure1Grid();
  auto FX = G.forall(Axis::X);
  ASSERT_TRUE(FX.has_value());
  auto FXZ = FX->forall(Axis::Z);
  ASSERT_TRUE(FXZ.has_value());
  EXPECT_EQ(FXZ->str(),
            "gpu.grid<XYZ<2, 2, 1>, XYZ<4, 4, 4>>.forall(X).forall(Z)");
  // Y remains unscheduled at stage 0.
  EXPECT_EQ(FXZ->currentStage(), 0u);
  EXPECT_FALSE(FXZ->level().has_value()) << "a group of blocks has no level";

  // Figure 1c: .split(1, Y).fst.
  auto Split = FXZ->split(Axis::Y, n(1), /*TakeFst=*/true);
  ASSERT_TRUE(Split.has_value());
  EXPECT_EQ(Split->str(), "gpu.grid<XYZ<2, 2, 1>, XYZ<4, 4, 4>>"
                          ".forall(X).forall(Z).split(1, Y).fst");
  EXPECT_TRUE(Nat::proveEq(Split->remainingExtent(0, Axis::Y), n(1)));
}

TEST(ExecResource, BlockAndThreadLevels) {
  ExecResource G = ExecResource::gpuGrid("grid", Dim::makeXY(n(64), n(64)),
                                         Dim::makeXY(n(32), n(8)));
  auto Block = G.forall(Axis::Y)->forall(Axis::X);
  ASSERT_TRUE(Block.has_value());
  ASSERT_TRUE(Block->level().has_value());
  EXPECT_EQ(Block->level()->Kind, ExecLevelKind::GpuBlock);
  EXPECT_EQ(Block->currentStage(), 1u);

  auto Thread = Block->forall(Axis::Y)->forall(Axis::X);
  ASSERT_TRUE(Thread.has_value());
  ASSERT_TRUE(Thread->level().has_value());
  EXPECT_EQ(Thread->level()->Kind, ExecLevelKind::GpuThread);
  EXPECT_EQ(Thread->currentStage(), 2u);
}

TEST(ExecResource, SchedOverMissingDimensionFails) {
  ExecResource G = ExecResource::gpuGrid("g", Dim::makeX(n(16)),
                                         Dim::makeX(n(256)));
  std::string Err;
  EXPECT_FALSE(G.forall(Axis::Y, &Err).has_value());
  EXPECT_NE(Err.find("dimension Y does not exist"), std::string::npos);
}

TEST(ExecResource, SchedInsideThreadFails) {
  ExecResource G = ExecResource::gpuGrid("g", Dim::makeX(n(2)),
                                         Dim::makeX(n(4)));
  auto T = G.forall(Axis::X)->forall(Axis::X);
  ASSERT_TRUE(T.has_value());
  std::string Err;
  EXPECT_FALSE(T->forall(Axis::X, &Err).has_value());
}

TEST(ExecResource, SplitBoundsChecked) {
  ExecResource G = ExecResource::gpuGrid("g", Dim::makeX(n(2)),
                                         Dim::makeX(n(64)));
  auto Block = G.forall(Axis::X);
  ASSERT_TRUE(Block.has_value());
  std::string Err;
  EXPECT_TRUE(Block->split(Axis::X, n(32), true, &Err).has_value()) << Err;
  EXPECT_TRUE(Block->split(Axis::X, n(64), true).has_value());
  EXPECT_FALSE(Block->split(Axis::X, n(65), true, &Err).has_value());
}

TEST(ExecResource, SyncLegality) {
  ExecResource G = ExecResource::gpuGrid("g", Dim::makeX(n(2)),
                                         Dim::makeX(n(64)));
  // At grid level: not inside a block.
  EXPECT_EQ(G.syncLegality(), ExecResource::SyncLegality::NotInBlock);

  auto Block = G.forall(Axis::X);
  EXPECT_EQ(Block->syncLegality(), ExecResource::SyncLegality::Ok);

  auto Thread = Block->forall(Axis::X);
  EXPECT_EQ(Thread->syncLegality(), ExecResource::SyncLegality::Ok);

  // Inside a thread-stage split: the Section 2.2 error case.
  auto SplitArm = Block->split(Axis::X, n(32), true);
  ASSERT_TRUE(SplitArm.has_value());
  EXPECT_EQ(SplitArm->syncLegality(), ExecResource::SyncLegality::InSplit);
  auto SplitThread = SplitArm->forall(Axis::X);
  ASSERT_TRUE(SplitThread.has_value());
  EXPECT_EQ(SplitThread->syncLegality(), ExecResource::SyncLegality::InSplit);

  // A block-stage split is fine: blocks synchronize independently.
  auto GridHalf =
      ExecResource::gpuGrid("g", Dim::makeX(n(4)), Dim::makeX(n(64)))
          .split(Axis::X, n(2), false);
  ASSERT_TRUE(GridHalf.has_value());
  auto BlockInHalf = GridHalf->forall(Axis::X);
  ASSERT_TRUE(BlockInHalf.has_value());
  EXPECT_EQ(BlockInHalf->syncLegality(), ExecResource::SyncLegality::Ok);
}

TEST(ExecResource, Disjointness) {
  ExecResource G = ExecResource::gpuGrid("g", Dim::makeX(n(2)),
                                         Dim::makeX(n(64)));
  auto Block = G.forall(Axis::X);
  auto Fst = Block->split(Axis::X, n(32), true);
  auto Snd = Block->split(Axis::X, n(32), false);
  ASSERT_TRUE(Fst && Snd);
  EXPECT_TRUE(ExecResource::disjoint(*Fst, *Snd));
  EXPECT_FALSE(ExecResource::disjoint(*Fst, *Fst));
  EXPECT_FALSE(ExecResource::disjoint(*Fst, *Block));
  // Different positions: not provably disjoint.
  auto Other = Block->split(Axis::X, n(16), false);
  EXPECT_FALSE(ExecResource::disjoint(*Fst, *Other));
}

TEST(ExecResource, PrefixAndEquality) {
  ExecResource G = ExecResource::gpuGrid("g", Dim::makeX(n(2)),
                                         Dim::makeX(n(4)));
  auto B = G.forall(Axis::X);
  auto T = B->forall(Axis::X);
  EXPECT_TRUE(ExecResource::isPrefixOf(G, *B));
  EXPECT_TRUE(ExecResource::isPrefixOf(*B, *T));
  EXPECT_FALSE(ExecResource::isPrefixOf(*T, *B));
  EXPECT_TRUE(ExecResource::equal(*B, *B));
  EXPECT_FALSE(ExecResource::equal(*B, *T));
}

TEST(ExecResource, PolymorphicExtents) {
  // Grids with symbolic sizes: gpu.grid<X<m/256>, X<256>>.
  Nat M = Nat::var("m");
  ExecResource G = ExecResource::gpuGrid("g", Dim::makeX(M / n(256)),
                                         Dim::makeX(n(256)));
  auto Block = G.forall(Axis::X);
  ASSERT_TRUE(Block.has_value());
  EXPECT_TRUE(Nat::proveEq(Block->remainingExtent(1, Axis::X), n(256)));
  std::string Err;
  auto Split = Block->split(Axis::X, n(128), true, &Err);
  ASSERT_TRUE(Split.has_value()) << Err;
}

} // namespace
