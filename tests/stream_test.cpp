//===- tests/stream_test.cpp - Worker pool and stream tests -----------------===//
//
// Exercises the persistent execution engine: the worker pool reused
// across launches, chunked block claiming on large grids, setWorkers
// resizing, and the CUDA-style streams — in-order execution per stream,
// overlap across streams, synchronize/deviceSynchronize joins, and the
// sequential determinism race detection relies on. The stress tests here
// are what the ThreadSanitizer CI job hammers.
//
//===----------------------------------------------------------------------===//

#include "runtime/HostRuntime.h"
#include "sim/Sim.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace descend::sim;

namespace {

/// The per-stream workload of the stress tests: Rounds ping-pong rounds
/// of "scale by 2, then add the block index", each round one launch that
/// reads Buf and writes it back. In-order per-stream execution is what
/// makes the result well-defined.
void pingPongRounds(GpuDevice &Dev, GpuDevice::Buffer<double> Buf,
                    unsigned Blocks, unsigned Threads, int Rounds,
                    Stream *S) {
  for (int R = 0; R != Rounds; ++R) {
    auto Launch = [&Dev, Buf, Blocks, Threads] {
      launchPhases(Dev, Dim3{Blocks}, Dim3{Threads}, 0,
                   [Buf](BlockCtx &B, ThreadCtx &T) {
                     size_t I = B.X * B.BlockDim.X + T.X;
                     Buf.store(B, I, Buf.load(B, I) * 2.0 + B.X);
                   });
    };
    if (S)
      S->enqueue(Launch);
    else
      Launch();
  }
}

TEST(WorkerPool, ReusedAcrossManyLaunches) {
  // Thousands of small launches on one device: every launch must run
  // every block, with the pool persisting in between (this is the
  // bench_throughput hot path).
  GpuDevice Dev;
  Dev.setWorkers(4);
  const unsigned Blocks = 8, Threads = 16;
  auto Buf = Dev.alloc<long long>(Blocks * Threads);
  const int Launches = 2000;
  for (int L = 0; L != Launches; ++L)
    launchPhases(Dev, Dim3{Blocks}, Dim3{Threads}, 0,
                 [Buf](BlockCtx &B, ThreadCtx &T) {
                   size_t I = B.X * B.BlockDim.X + T.X;
                   Buf.store(B, I, Buf.load(B, I) + 1);
                 });
  for (size_t I = 0; I != Blocks * Threads; ++I)
    EXPECT_EQ(Buf.data()[I], Launches);
}

TEST(WorkerPool, ChunkedClaimingCoversEveryBlockOfALargeGrid) {
  // A grid big enough that claims happen in chunks: every block must run
  // exactly once (each writes its own slot once).
  GpuDevice Dev;
  Dev.setWorkers(8);
  const unsigned Blocks = 10000;
  auto Out = Dev.alloc<unsigned>(Blocks);
  launchPhases(Dev, Dim3{Blocks}, Dim3{1}, 0,
               [Out](BlockCtx &B, ThreadCtx &) {
                 Out.store(B, B.linear(), Out.load(B, B.linear()) + 1);
               });
  for (size_t I = 0; I != Blocks; ++I)
    EXPECT_EQ(Out.data()[I], 1u) << "block " << I;
}

TEST(WorkerPool, SetWorkersResizesBetweenLaunches) {
  GpuDevice Dev;
  auto Buf = Dev.alloc<double>(256);
  for (unsigned W : {1u, 2u, 4u, 2u}) {
    Dev.setWorkers(W);
    launchPhases(Dev, Dim3{8}, Dim3{32}, 0,
                 [Buf](BlockCtx &B, ThreadCtx &T) {
                   size_t I = B.X * 32 + T.X;
                   Buf.store(B, I, Buf.load(B, I) + 1.0);
                 });
  }
  for (size_t I = 0; I != 256; ++I)
    EXPECT_EQ(Buf.data()[I], 4.0);
}

TEST(WorkerPool, SharedMemoryArenasStayPerBlock) {
  // Per-worker cached arenas must still behave as per-*block* shared
  // memory: zeroed on entry, private while the block runs.
  GpuDevice Dev;
  Dev.setWorkers(4);
  const unsigned Blocks = 64;
  auto Out = Dev.alloc<int>(Blocks);
  for (int Round = 0; Round != 50; ++Round)
    launchPhases(
        Dev, Dim3{Blocks}, Dim3{1}, sizeof(int),
        [](BlockCtx &B, ThreadCtx &) {
          EXPECT_EQ(B.sharedLoad<int>(0, 0), 0) << "arena not zeroed";
          B.sharedStore<int>(0, 0, static_cast<int>(B.X) + 1);
        },
        [Out](BlockCtx &B, ThreadCtx &) {
          Out.store(B, B.X, B.sharedLoad<int>(0, 0));
        });
  for (unsigned I = 0; I != Blocks; ++I)
    EXPECT_EQ(Out.data()[I], static_cast<int>(I) + 1);
}

TEST(Stream, OpsRunInOrderWithinAStream) {
  // Launch 1 writes, launch 2 reads what launch 1 wrote, the copy reads
  // what launch 2 wrote: only in-order execution gives the final value.
  GpuDevice Dev;
  Dev.setWorkers(4);
  auto Buf = Dev.alloc<double>(128);
  descend::rt::HostBuffer<double> Host(128, 0.0);
  {
    Stream S(Dev);
    S.enqueue([&Dev, Buf] {
      launchPhases(Dev, Dim3{4}, Dim3{32}, 0,
                   [Buf](BlockCtx &B, ThreadCtx &T) {
                     Buf.store(B, B.X * 32 + T.X, 3.0);
                   });
    });
    S.enqueue([&Dev, Buf] {
      launchPhases(Dev, Dim3{4}, Dim3{32}, 0,
                   [Buf](BlockCtx &B, ThreadCtx &T) {
                     size_t I = B.X * 32 + T.X;
                     Buf.store(B, I, Buf.load(B, I) * 7.0);
                   });
    });
    descend::rt::copyToHostAsync(S, Host, Buf);
    S.synchronize();
  }
  for (size_t I = 0; I != 128; ++I)
    EXPECT_EQ(Host[I], 21.0);
}

TEST(Stream, LaunchEnqueuesPhasePrograms) {
  GpuDevice Dev;
  Dev.setWorkers(4);
  auto Out = Dev.alloc<long long>(64);
  Stream S(Dev);
  for (int R = 0; R != 3; ++R) {
    PhaseProgram Prog;
    Prog.loopBegin(0, 0, 5);
    Prog.straight([Out](BlockCtx &B, ThreadCtx &T) {
      size_t I = B.X * 32 + T.X;
      Out.store(B, I, Out.load(B, I) + B.loopVar(0));
    });
    Prog.loopEnd();
    S.launch(Dim3{2}, Dim3{32}, 0, std::move(Prog));
  }
  S.synchronize();
  for (int I = 0; I != 64; ++I)
    EXPECT_EQ(Out.data()[I], 3 * (0 + 1 + 2 + 3 + 4));
}

TEST(Stream, DestructorSynchronizes) {
  GpuDevice Dev;
  Dev.setWorkers(4);
  auto Buf = Dev.alloc<int>(32);
  {
    Stream S(Dev);
    S.enqueue([&Dev, Buf] {
      launchPhases(Dev, Dim3{1}, Dim3{32}, 0,
                   [Buf](BlockCtx &B, ThreadCtx &T) {
                     Buf.store(B, T.X, 9);
                   });
    });
  } // ~Stream joins
  for (size_t I = 0; I != 32; ++I)
    EXPECT_EQ(Buf.data()[I], 9);
}

TEST(Stream, DeviceSynchronizeJoinsAllStreams) {
  GpuDevice Dev;
  Dev.setWorkers(4);
  auto A = Dev.alloc<int>(64);
  auto B2 = Dev.alloc<int>(64);
  Stream SA(Dev), SB(Dev);
  auto Fill = [&Dev](GpuDevice::Buffer<int> Buf, int V) {
    return [&Dev, Buf, V] {
      launchPhases(Dev, Dim3{2}, Dim3{32}, 0,
                   [Buf, V](BlockCtx &B, ThreadCtx &T) {
                     Buf.store(B, B.X * 32 + T.X, V);
                   });
    };
  };
  SA.enqueue(Fill(A, 1));
  SB.enqueue(Fill(B2, 2));
  Dev.deviceSynchronize();
  for (size_t I = 0; I != 64; ++I) {
    EXPECT_EQ(A.data()[I], 1);
    EXPECT_EQ(B2.data()[I], 2);
  }
}

TEST(Stream, AsyncHostRuntimeRoundTrip) {
  GpuDevice Dev;
  Dev.setWorkers(4);
  descend::rt::HostBuffer<double> In(256, 0.0), Out(256, -1.0);
  for (size_t I = 0; I != 256; ++I)
    In[I] = static_cast<double>(I);
  Stream S(Dev);
  auto Buf = descend::rt::allocCopyAsync(S, In);
  S.enqueue([&Dev, Buf] {
    launchPhases(Dev, Dim3{8}, Dim3{32}, 0,
                 [Buf](BlockCtx &B, ThreadCtx &T) {
                   size_t I = B.X * 32 + T.X;
                   Buf.store(B, I, Buf.load(B, I) + 0.5);
                 });
  });
  descend::rt::copyToHostAsync(S, Out, Buf);
  S.synchronize();
  for (size_t I = 0; I != 256; ++I)
    EXPECT_EQ(Out[I], static_cast<double>(I) + 0.5);
}

TEST(Stream, AsyncCopySizeMismatchThrowsAtEnqueue) {
  GpuDevice Dev;
  Dev.setWorkers(2);
  auto Buf = Dev.alloc<double>(16);
  descend::rt::HostBuffer<double> Wrong(8, 0.0);
  Stream S(Dev);
  EXPECT_THROW(descend::rt::copyToHostAsync(S, Wrong, Buf),
               std::runtime_error);
  EXPECT_THROW(descend::rt::copyToGpuAsync(S, Buf, Wrong),
               std::runtime_error);
}

TEST(Stream, InterleavedMultiStreamStressMatchesSequential) {
  // The satellite stress test: four streams hammer one device with
  // interleaved launches (each stream owns its buffer; streams only
  // order their own work), then the results are checked against the
  // sequential, stream-less reference.
  const unsigned Blocks = 16, Threads = 32;
  const size_t N = Blocks * Threads;
  const int Rounds = 64;
  const int NumStreams = 4;

  auto Fill = [N](double *P, int SIdx) {
    for (size_t I = 0; I != N; ++I)
      P[I] = static_cast<double>((I * 13 + SIdx * 7) % 101) * 0.125;
  };

  // Sequential reference.
  GpuDevice Ref;
  Ref.setWorkers(1);
  std::vector<GpuDevice::Buffer<double>> RefBufs;
  for (int SI = 0; SI != NumStreams; ++SI) {
    RefBufs.push_back(Ref.alloc<double>(N));
    Fill(RefBufs.back().data(), SI);
    pingPongRounds(Ref, RefBufs.back(), Blocks, Threads, Rounds, nullptr);
  }

  // Stressed device: interleave the enqueues round-robin across streams
  // from several host threads, so enqueue-side locking is exercised too.
  GpuDevice Dev;
  Dev.setWorkers(4);
  std::vector<GpuDevice::Buffer<double>> Bufs;
  for (int SI = 0; SI != NumStreams; ++SI) {
    Bufs.push_back(Dev.alloc<double>(N));
    Fill(Bufs.back().data(), SI);
  }
  {
    std::vector<std::unique_ptr<Stream>> Streams;
    for (int SI = 0; SI != NumStreams; ++SI)
      Streams.push_back(std::make_unique<Stream>(Dev));
    std::atomic<bool> ScratchOk{true};
    std::vector<std::thread> Issuers;
    for (int SI = 0; SI != NumStreams; ++SI)
      Issuers.emplace_back([&, SI] {
        // Host threads also allocate against the shared device while
        // other streams are in flight (allocRaw must be thread-safe).
        descend::rt::HostBuffer<double> Scratch(64, SI + 0.5);
        auto DScratch = descend::rt::allocCopyAsync(*Streams[SI], Scratch);
        pingPongRounds(Dev, Bufs[SI], Blocks, Threads, Rounds,
                       Streams[SI].get());
        descend::rt::copyToHostAsync(*Streams[SI], Scratch, DScratch);
        Streams[SI]->synchronize();
        for (size_t I = 0; I != Scratch.size(); ++I)
          if (Scratch[I] != SI + 0.5)
            ScratchOk = false;
      });
    for (std::thread &T : Issuers)
      T.join();
    for (auto &S : Streams)
      S->synchronize();
    EXPECT_TRUE(ScratchOk.load());
  }

  for (int SI = 0; SI != NumStreams; ++SI)
    for (size_t I = 0; I != N; ++I)
      ASSERT_EQ(Bufs[SI].data()[I], RefBufs[SI].data()[I])
          << "stream " << SI << " index " << I;
}

TEST(Stream, RaceDetectionKeepsSequentialDeterminism) {
  // With race detection on, the device forces one worker and stream ops
  // run inline: findRaces() must see exactly what a synchronous launch
  // produces (the H1-H4-style fixtures depend on this determinism).
  auto RunRacy = [](GpuDevice &Dev, bool ViaStream) {
    auto Buf = Dev.alloc<double>(256);
    auto Racy = [&Dev, Buf] {
      launchPhases(Dev, Dim3{1}, Dim3{256}, 0,
                   [Buf](BlockCtx &B, ThreadCtx &T) {
                     Buf.store(B, T.X, Buf.load(B, 255 - T.X));
                   });
    };
    if (ViaStream) {
      Stream S(Dev);
      S.enqueue(Racy);
      S.synchronize();
    } else {
      Racy();
    }
    return Dev.findRaces();
  };
  GpuDevice Direct, Streamed;
  Direct.setRaceDetection(true);
  Streamed.setRaceDetection(true);
  auto RacesDirect = RunRacy(Direct, false);
  auto RacesStreamed = RunRacy(Streamed, true);
  ASSERT_FALSE(RacesDirect.empty());
  ASSERT_EQ(RacesDirect.size(), RacesStreamed.size());
  for (size_t I = 0; I != RacesDirect.size(); ++I)
    EXPECT_EQ(RacesDirect[I].str(), RacesStreamed[I].str());
}

TEST(Stream, GeneratedStyleStreamDriverMatchesSyncDriver) {
  // The shape hostgen emits for stream drivers, spelled by hand: async
  // transfers, an enqueued launch, a single join — must be bit-identical
  // to the synchronous rt:: sequence.
  const size_t N = 8 * 32;
  auto Kernel = [](GpuDevice &Dev, GpuDevice::Buffer<double> Buf) {
    launchPhases(Dev, Dim3{8}, Dim3{32}, 0,
                 [Buf](BlockCtx &B, ThreadCtx &T) {
                   size_t I = B.X * 32 + T.X;
                   Buf.store(B, I, Buf.load(B, I) * 3.0);
                 });
  };

  GpuDevice DevSync;
  DevSync.setWorkers(4);
  descend::rt::HostBuffer<double> HostSync(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    HostSync[I] = static_cast<double>(I) * 0.5;
  auto DSync = descend::rt::allocCopy(DevSync, HostSync);
  Kernel(DevSync, DSync);
  descend::rt::copyToHost(HostSync, DSync);

  GpuDevice DevStream;
  DevStream.setWorkers(4);
  descend::rt::HostBuffer<double> HostStream(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    HostStream[I] = static_cast<double>(I) * 0.5;
  {
    Stream S(DevStream);
    auto D = descend::rt::allocCopyAsync(S, HostStream);
    S.enqueue([&DevStream, D, &Kernel] { Kernel(DevStream, D); });
    descend::rt::copyToHostAsync(S, HostStream, D);
    S.synchronize();
  }

  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(HostSync[I], HostStream[I]);
}

TEST(Stream, QueryPollsCompletionWithoutJoining) {
  // Satellite: non-blocking completion probes. A fresh stream is idle; a
  // stream with a gated op in flight reports busy without blocking the
  // poller; after release + synchronize it reports idle again.
  GpuDevice Dev;
  Dev.setWorkers(4);
  Stream S(Dev);
  EXPECT_TRUE(S.query()) << "fresh stream must be idle";

  std::atomic<bool> Release{false};
  Event Done;
  S.enqueue([&Release] {
    while (!Release.load())
      std::this_thread::yield();
  });
  S.record(Done);
  EXPECT_FALSE(S.query()) << "gated op still pending";
  EXPECT_FALSE(Done.query()) << "event records after the gated op";
  Release = true;
  S.synchronize();
  EXPECT_TRUE(S.query());
  EXPECT_TRUE(Done.query());

  // Poll-until-done is the intended use.
  std::atomic<bool> Release2{false};
  S.enqueue([&Release2] {
    while (!Release2.load())
      std::this_thread::yield();
  });
  EXPECT_FALSE(S.query());
  Release2 = true;
  while (!S.query())
    std::this_thread::yield();
  EXPECT_TRUE(S.query());
}

TEST(Stream, QueryIsAlwaysTrueOnSequentialDevices) {
  // Inline execution never leaves ops pending (the race-detector mode).
  GpuDevice Dev;
  Dev.setRaceDetection(true);
  Stream S(Dev);
  auto Buf = Dev.alloc<int>(32);
  S.enqueue([&Dev, Buf] {
    launchPhases(Dev, Dim3{1}, Dim3{32}, 0,
                 [Buf](BlockCtx &B, ThreadCtx &T) { Buf.store(B, T.X, 3); });
  });
  EXPECT_TRUE(S.query());
  Event E;
  S.record(E);
  EXPECT_TRUE(E.query());
}

TEST(SharedIds, GlobalAllocationsNeverEnterTheSharedIdRange) {
  // Satellite: shared-memory logical ids live in a reserved range; a
  // long-lived device allocating many buffers must never produce a
  // global id that aliases a shared id in the race log.
  GpuDevice Dev;
  std::vector<GpuDevice::Buffer<char>> Keep;
  for (int I = 0; I != 4096; ++I) {
    Keep.push_back(Dev.alloc<char>(1));
    ASSERT_LT(Keep.back().id(), detail::FirstSharedBufferId);
  }
  // And the detector keeps shared accesses of high-linear blocks apart
  // from every global buffer: no cross-aliased false race.
  Dev.setRaceDetection(true);
  auto Out = Dev.alloc<int>(4096);
  launchPhases(
      Dev, Dim3{4096}, Dim3{1}, sizeof(int),
      [](BlockCtx &B, ThreadCtx &) {
        B.sharedStore<int>(0, 0, static_cast<int>(B.X));
      },
      [Out](BlockCtx &B, ThreadCtx &) {
        Out.store(B, B.X, B.sharedLoad<int>(0, 0));
      });
  EXPECT_TRUE(Dev.findRaces().empty());
}

} // namespace
