//===- tests/kir_test.cpp - Typed kernel IR unit tests --------------------===//
//
// Builder/printer round-trips over hand-built KIR, the kir::verify()
// structural checker rejecting malformed IR, and unit tests for the pass
// pipeline (index CSE, redundant-barrier elimination, dead spill-pair
// elision, pow-of-2 shift emission) plus the opt-in schedule passes
// (shared-memory padding, load/store vectorization — kir/Schedule.h).
//
//===----------------------------------------------------------------------===//

#include "kir/KIR.h"
#include "kir/Passes.h"
#include "kir/Schedule.h"

#include <gtest/gtest.h>

using namespace descend;
using namespace descend::kir;

namespace {

MemRef globalBuf(const std::string &Name,
                 ScalarKind Elem = ScalarKind::F64) {
  MemRef R;
  R.Space = MemSpace::Global;
  R.Name = Name;
  R.Elem = Elem;
  return R;
}

MemRef sharedBuf(const std::string &Name, size_t ByteBase = 0,
                 ScalarKind Elem = ScalarKind::F64) {
  MemRef R;
  R.Space = MemSpace::Shared;
  R.Name = Name;
  R.Elem = Elem;
  R.ByteBase = ByteBase;
  return R;
}

Nat tid() { return Nat::var("_tx"); }

VerifyOptions kernelCtx() {
  VerifyOptions Opts;
  Opts.DefinedVars = {"_bx", "_by", "_bz", "_tx", "_ty", "_tz", "_lin"};
  Opts.Buffers = {{"arr", MemSpace::Global}, {"tmp", MemSpace::Shared}};
  Opts.CheckBuffers = true;
  return Opts;
}

//===----------------------------------------------------------------------===//
// Builders and printers
//===----------------------------------------------------------------------===//

TEST(KirPrint, CudaSpellingOfLoadsAndStores) {
  std::vector<Stmt> S;
  S.push_back(Stmt::store(
      globalBuf("arr"), Nat::var("_bx") * Nat::lit(256) + tid(),
      Expr::binary(BinOp::Mul, Expr::load(globalBuf("arr"), tid()),
                   Expr::floatLit(3.0, ScalarKind::F64))));
  std::string Out, Err;
  ASSERT_TRUE(printStmts(S, CudaStyle(), 1, Out, Err)) << Err;
  EXPECT_EQ(Out, "  arr[blockIdx.x * 256 + threadIdx.x] = "
                 "(arr[threadIdx.x] * 3.0);\n");
}

TEST(KirPrint, SimSpellingOfLoadsAndStores) {
  std::vector<Stmt> S;
  S.push_back(Stmt::store(sharedBuf("tmp"), tid(),
                          Expr::load(globalBuf("arr"), tid())));
  std::string Out, Err;
  ASSERT_TRUE(printStmts(S, SimStyle(), 3, Out, Err)) << Err;
  EXPECT_EQ(Out,
            "      _b.sharedStore<double>(0, _tx, arr.load(_b, _tx));\n");
}

TEST(KirPrint, ArenaSpillSpelling) {
  MemRef Slot;
  Slot.Space = MemSpace::Arena;
  Slot.Name = "acc_0";
  Slot.Elem = ScalarKind::F64;
  Slot.ByteBase = 0;
  std::vector<Stmt> S;
  S.push_back(Stmt::store(Slot, Nat::var("_lin"), Expr::varRef("acc_0"),
                          /*SpillReload=*/true));
  S.push_back(Stmt::let("acc_0", ScalarKind::F64,
                        Expr::load(Slot, Nat::var("_lin")),
                        /*SpillReload=*/true));
  std::string Out, Err;
  ASSERT_TRUE(printStmts(S, SimStyle(), 1, Out, Err)) << Err;
  EXPECT_EQ(Out,
            "  _b.shared<double>(_locals_base + 0)[_lin] = acc_0;\n"
            "  double acc_0 = _b.shared<double>(_locals_base + 0)[_lin];\n");
  // Arena slots do not exist on real hardware: the CUDA printer refuses.
  std::string CudaOut, CudaErr;
  EXPECT_FALSE(printStmts(S, CudaStyle(), 1, CudaOut, CudaErr));
  EXPECT_NE(CudaErr.find("arena"), std::string::npos) << CudaErr;
}

TEST(KirPrint, ControlFlowAndBarriers) {
  std::vector<Stmt> S;
  Stmt If = Stmt::ifLt(tid(), Nat::lit(32));
  If.Then.push_back(Stmt::store(globalBuf("arr"), tid(),
                                Expr::floatLit(0.0, ScalarKind::F64)));
  S.push_back(std::move(If));
  Stmt For = Stmt::forLoop("t", Nat::lit(0), Nat::lit(4));
  For.Body.push_back(Stmt::barrier());
  S.push_back(std::move(For));
  std::string Out, Err;
  ASSERT_TRUE(printStmts(S, CudaStyle(), 1, Out, Err)) << Err;
  EXPECT_NE(Out.find("  if (threadIdx.x < 32) {\n"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("  for (long long t = 0; t < 4; ++t) {\n"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("    __syncthreads();\n"), std::string::npos) << Out;
}

TEST(KirPrint, PowOfTwoEmitsAsShift) {
  // 2^s strides print as shifts instead of forcing loop unrolling.
  Nat N = Nat::lit(256) / Nat::pow(Nat::lit(2), Nat::var("s") + Nat::lit(1));
  std::string Err;
  EXPECT_EQ(natToCpp(N, SimStyle(), &Err), "256 / (1ll << (1 + s))");
  EXPECT_TRUE(Err.empty()) << Err;
  EXPECT_EQ(natToCpp(Nat::pow(Nat::lit(2), Nat::var("s")), SimStyle()),
            "(1ll << s)");
  EXPECT_FALSE(containsNonShiftablePow(N));
  // Non-2 bases stay unprintable.
  Nat Bad = Nat::pow(Nat::lit(3), Nat::var("s"));
  EXPECT_TRUE(containsNonShiftablePow(Bad));
  std::string BadErr;
  natToCpp(Bad, SimStyle(), &BadErr);
  EXPECT_NE(BadErr.find("non-2 base"), std::string::npos) << BadErr;
}

TEST(KirDump, RoundTripMentionsEveryStmt) {
  std::vector<Stmt> S;
  S.push_back(Stmt::letIndex("_i0", Nat::var("_bx") * Nat::lit(16) + tid()));
  S.push_back(Stmt::let("x_0", ScalarKind::F64,
                        Expr::load(globalBuf("arr"), Nat::var("_i0"))));
  S.push_back(Stmt::assign("x_0", Expr::unary(UnOp::Neg,
                                              Expr::varRef("x_0"))));
  S.push_back(Stmt::store(sharedBuf("tmp"), Nat::var("_i0"),
                          Expr::varRef("x_0")));
  std::string D = dump(S);
  EXPECT_NE(D.find("idx _i0 = _bx * 16 + _tx"), std::string::npos) << D;
  EXPECT_NE(D.find("let double x_0 = ld global arr[_i0]"),
            std::string::npos)
      << D;
  EXPECT_NE(D.find("x_0 = -x_0"), std::string::npos) << D;
  EXPECT_NE(D.find("st shared tmp[_i0] = x_0"), std::string::npos) << D;
}

//===----------------------------------------------------------------------===//
// verify()
//===----------------------------------------------------------------------===//

TEST(KirVerify, AcceptsWellFormedKernelBody) {
  std::vector<Stmt> S;
  S.push_back(Stmt::let("x_0", ScalarKind::F64,
                        Expr::load(globalBuf("arr"), tid())));
  S.push_back(Stmt::store(sharedBuf("tmp"), tid(), Expr::varRef("x_0")));
  std::string Err;
  EXPECT_TRUE(verify(S, kernelCtx(), Err)) << Err;
}

TEST(KirVerify, RejectsStoreToIndexVariable) {
  // A "buffer" that is actually a Nat/index variable is not memory.
  std::vector<Stmt> S;
  S.push_back(Stmt::letIndex("i", tid() * Nat::lit(2)));
  S.push_back(Stmt::store(globalBuf("i"), Nat::lit(0),
                          Expr::floatLit(1.0, ScalarKind::F64)));
  std::string Err;
  EXPECT_FALSE(verify(S, kernelCtx(), Err));
  EXPECT_NE(Err.find("non-memory name `i`"), std::string::npos) << Err;
}

TEST(KirVerify, RejectsBarrierInDivergentBranch) {
  VerifyOptions Opts = kernelCtx();
  Opts.AllowBarriers = true;
  std::vector<Stmt> S;
  Stmt If = Stmt::ifLt(tid(), Nat::lit(32));
  If.Then.push_back(Stmt::barrier());
  S.push_back(std::move(If));
  std::string Err;
  EXPECT_FALSE(verify(S, Opts, Err));
  EXPECT_NE(Err.find("thread-divergent"), std::string::npos) << Err;
}

TEST(KirVerify, RejectsBarrierInPhaseBody) {
  // Sim phase bodies carry no barriers: the phase boundary is the barrier.
  std::vector<Stmt> S;
  S.push_back(Stmt::barrier());
  std::string Err;
  EXPECT_FALSE(verify(S, kernelCtx(), Err));
  EXPECT_NE(Err.find("does not admit barriers"), std::string::npos) << Err;
}

TEST(KirVerify, RejectsUndefinedVariablesAndBuffers) {
  std::vector<Stmt> S;
  S.push_back(Stmt::assign("nope", Expr::floatLit(1.0, ScalarKind::F64)));
  std::string Err;
  EXPECT_FALSE(verify(S, kernelCtx(), Err));
  EXPECT_NE(Err.find("undefined variable `nope`"), std::string::npos) << Err;

  std::vector<Stmt> S2;
  S2.push_back(Stmt::store(globalBuf("ghost"), tid(),
                           Expr::floatLit(0.0, ScalarKind::F64)));
  EXPECT_FALSE(verify(S2, kernelCtx(), Err));
  EXPECT_NE(Err.find("unknown buffer `ghost`"), std::string::npos) << Err;

  std::vector<Stmt> S3;
  S3.push_back(Stmt::store(globalBuf("arr"), Nat::var("q"),
                           Expr::floatLit(0.0, ScalarKind::F64)));
  EXPECT_FALSE(verify(S3, kernelCtx(), Err));
  EXPECT_NE(Err.find("undefined variable `q`"), std::string::npos) << Err;
}

TEST(KirVerify, RejectsSpaceMismatchAndRedefinition) {
  std::vector<Stmt> S;
  S.push_back(Stmt::store(sharedBuf("arr"), tid(),
                          Expr::floatLit(0.0, ScalarKind::F64)));
  std::string Err;
  EXPECT_FALSE(verify(S, kernelCtx(), Err));
  EXPECT_NE(Err.find("accessed as shared"), std::string::npos) << Err;

  std::vector<Stmt> S2;
  S2.push_back(Stmt::let("x_0", ScalarKind::F64,
                         Expr::floatLit(0.0, ScalarKind::F64)));
  S2.push_back(Stmt::let("x_0", ScalarKind::F64,
                         Expr::floatLit(1.0, ScalarKind::F64)));
  EXPECT_FALSE(verify(S2, kernelCtx(), Err));
  EXPECT_NE(Err.find("redefinition"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Passes
//===----------------------------------------------------------------------===//

TEST(KirPasses, CseHoistsRepeatedIndexes) {
  std::vector<Stmt> S;
  Nat Idx = Nat::var("_bx") * Nat::lit(256) + tid();
  S.push_back(Stmt::store(
      globalBuf("arr"), Idx,
      Expr::binary(BinOp::Mul, Expr::load(globalBuf("arr"), Idx),
                   Expr::floatLit(3.0, ScalarKind::F64))));
  EXPECT_EQ(cseIndexes(S), 1u);
  ASSERT_EQ(S.size(), 2u);
  EXPECT_EQ(S[0].K, StmtKind::LetIndex);
  EXPECT_EQ(S[0].Name, "_i0");
  EXPECT_TRUE(Nat::proveEq(S[1].Index, Nat::var("_i0")));
  std::string Out, Err;
  ASSERT_TRUE(printStmts(S, CudaStyle(), 1, Out, Err)) << Err;
  EXPECT_EQ(Out,
            "  const long long _i0 = blockIdx.x * 256 + threadIdx.x;\n"
            "  arr[_i0] = (arr[_i0] * 3.0);\n");
}

TEST(KirPasses, CseSkipsTrivialAndSingleUseIndexes) {
  std::vector<Stmt> S;
  S.push_back(Stmt::store(globalBuf("arr"), tid(),
                          Expr::load(globalBuf("arr"), tid())));
  S.push_back(Stmt::store(globalBuf("arr"), Nat::var("_bx") * Nat::lit(2),
                          Expr::floatLit(0.0, ScalarKind::F64)));
  // `_tx` is a lone variable, and the nontrivial index occurs once.
  EXPECT_EQ(cseIndexes(S), 0u);
  EXPECT_EQ(S.size(), 2u);
}

TEST(KirPasses, CseRespectsLoopRegions) {
  // The repeated index mentions the loop variable: it must be hoisted
  // inside the loop body, not above the loop.
  std::vector<Stmt> S;
  Stmt For = Stmt::forLoop("k", Nat::lit(0), Nat::lit(16));
  Nat Idx = Nat::var("k") * Nat::lit(16) + tid();
  For.Body.push_back(Stmt::store(
      globalBuf("arr"), Idx, Expr::load(globalBuf("arr"), Idx)));
  S.push_back(std::move(For));
  EXPECT_EQ(cseIndexes(S), 1u);
  ASSERT_EQ(S.size(), 1u);
  ASSERT_EQ(S[0].Body.size(), 2u);
  EXPECT_EQ(S[0].Body[0].K, StmtKind::LetIndex);
}

TEST(KirPasses, CseStopsAtShadowingLoops) {
  // An inner for that rebinds `s` makes the textually identical index
  // mean a different value: the hoisted outer `_i0` must not leak in.
  std::vector<Stmt> S;
  Nat Idx = Nat::var("s") * Nat::lit(2) + Nat::lit(1);
  S.push_back(Stmt::store(globalBuf("arr"), Idx,
                          Expr::load(globalBuf("arr"), Idx)));
  Stmt Inner = Stmt::forLoop("s", Nat::lit(0), Nat::lit(2));
  Inner.Body.push_back(Stmt::store(globalBuf("arr"), Idx,
                                   Expr::load(globalBuf("arr"), Idx)));
  S.push_back(std::move(Inner));
  // Outer region hoists its pair; the shadowed inner region hoists its
  // own pair under a distinct name.
  EXPECT_EQ(cseIndexes(S), 2u);
  ASSERT_EQ(S.size(), 3u);
  ASSERT_EQ(S[0].K, StmtKind::LetIndex);
  const Stmt &InnerFor = S[2];
  ASSERT_EQ(InnerFor.K, StmtKind::For);
  ASSERT_EQ(InnerFor.Body.size(), 2u);
  EXPECT_EQ(InnerFor.Body[0].K, StmtKind::LetIndex);
  EXPECT_NE(InnerFor.Body[0].Name, S[0].Name);
  EXPECT_TRUE(Nat::proveEq(InnerFor.Body[1].Index,
                           Nat::var(InnerFor.Body[0].Name)));
}

TEST(KirPrint, SimStyleRefusesBarriers) {
  std::vector<Stmt> S;
  S.push_back(Stmt::barrier());
  std::string Out, Err;
  EXPECT_FALSE(printStmts(S, SimStyle(), 1, Out, Err));
  EXPECT_NE(Err.find("barrier"), std::string::npos) << Err;
}

TEST(KirPasses, BarrierElimDropsAdjacentAndTrailing) {
  std::vector<Stmt> S;
  S.push_back(Stmt::store(sharedBuf("tmp"), tid(),
                          Expr::floatLit(1.0, ScalarKind::F64)));
  S.push_back(Stmt::barrier());
  S.push_back(Stmt::barrier()); // nothing since the previous barrier
  S.push_back(Stmt::store(sharedBuf("tmp"), tid(),
                          Expr::floatLit(2.0, ScalarKind::F64)));
  S.push_back(Stmt::barrier()); // trailing at kernel end
  EXPECT_EQ(elideRedundantBarriers(S, /*IsKernelTopLevel=*/true), 2u);
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[1].K, StmtKind::Barrier);
}

TEST(KirPasses, BarrierElimKeepsLoopCarriedBarriers) {
  // The matmul shape: barriers inside a loop body guard the tile reuse
  // across iterations; with shared accesses in between both must stay,
  // and a loop-trailing barrier is NOT a kernel-trailing one.
  std::vector<Stmt> S;
  Stmt For = Stmt::forLoop("t", Nat::lit(0), Nat::lit(4));
  For.Body.push_back(Stmt::store(sharedBuf("tmp"), tid(),
                                 Expr::load(globalBuf("arr"), tid())));
  For.Body.push_back(Stmt::barrier());
  For.Body.push_back(Stmt::let(
      "x_0", ScalarKind::F64, Expr::load(sharedBuf("tmp"), tid())));
  For.Body.push_back(Stmt::barrier());
  S.push_back(std::move(For));
  EXPECT_EQ(elideRedundantBarriers(S, /*IsKernelTopLevel=*/true), 0u);
  EXPECT_EQ(S[0].Body.size(), 4u);
}

TEST(KirPasses, DeadSpillPairsAreElided) {
  MemRef Slot;
  Slot.Space = MemSpace::Arena;
  Slot.Name = "acc_0";
  Slot.Elem = ScalarKind::F64;
  std::vector<Stmt> Phase;
  Phase.push_back(Stmt::let("acc_0", ScalarKind::F64,
                            Expr::load(Slot, Nat::var("_lin")),
                            /*SpillReload=*/true));
  Phase.push_back(Stmt::store(sharedBuf("tmp"), tid(),
                              Expr::floatLit(0.0, ScalarKind::F64)));
  Phase.push_back(Stmt::store(Slot, Nat::var("_lin"),
                              Expr::varRef("acc_0"),
                              /*SpillReload=*/true));
  // The phase never touches acc_0 outside the pair: both go.
  EXPECT_EQ(elideDeadSpillPairs(Phase), 2u);
  ASSERT_EQ(Phase.size(), 1u);
  EXPECT_EQ(Phase[0].K, StmtKind::Store);

  // A phase that really uses the local keeps the pair.
  std::vector<Stmt> Live;
  Live.push_back(Stmt::let("acc_0", ScalarKind::F64,
                           Expr::load(Slot, Nat::var("_lin")),
                           /*SpillReload=*/true));
  Live.push_back(Stmt::assign(
      "acc_0", Expr::binary(BinOp::Add, Expr::varRef("acc_0"),
                            Expr::load(sharedBuf("tmp"), tid()))));
  Live.push_back(Stmt::store(Slot, Nat::var("_lin"),
                             Expr::varRef("acc_0"),
                             /*SpillReload=*/true));
  EXPECT_EQ(elideDeadSpillPairs(Live), 0u);
  EXPECT_EQ(Live.size(), 3u);
}

//===----------------------------------------------------------------------===//
// Schedule passes (kir/Schedule.h)
//===----------------------------------------------------------------------===//

TEST(KirSchedule, PaddingRewritesRowMajorIndexes) {
  // A 16x16 f64 tile accessed as `_ty*16 + _tx`: padding by 1 must turn
  // the index into `_ty*17 + _tx` and grow the allocation by one element
  // per row.
  std::vector<Stmt> S;
  Nat Idx = Nat::var("_ty") * Nat::lit(16) + tid();
  S.push_back(Stmt::store(sharedBuf("tmp"), Idx,
                          Expr::load(globalBuf("arr"), tid())));
  S.push_back(Stmt::let("x_0", ScalarKind::F64,
                        Expr::load(sharedBuf("tmp"), Idx)));

  std::vector<ScheduleSharedBuffer> Bufs = {
      {"tmp", ScalarKind::F64, 256, 0, 16}};
  size_t SharedBytes = 2048;
  VarBounds Bounds = {{"_tx", 16}, {"_ty", 16}};
  ScheduleStats Stats;
  std::vector<BodyRef> Bodies = {{&S, {}}};
  EXPECT_EQ(padSharedBuffers(Bodies, Bufs, SharedBytes, 1, Bounds, &Stats),
            1u);
  EXPECT_EQ(Stats.PaddedBuffers, 1u);
  EXPECT_EQ(Stats.RewrittenAccesses, 2u);
  EXPECT_EQ(Bufs[0].Elems, 272u); // 16 rows of 16+1
  EXPECT_EQ(SharedBytes, 272u * 8u);
  Nat Want = Nat::var("_ty") * Nat::lit(17) + tid();
  EXPECT_TRUE(Nat::proveEq(S[0].Index, Want)) << S[0].Index.str();
  EXPECT_TRUE(Nat::proveEq(S[1].Value->Index, Want))
      << S[1].Value->Index.str();
  // The rewritten body still verifies.
  std::string Err;
  EXPECT_TRUE(verify(S, kernelCtx(), Err)) << Err;
}

TEST(KirSchedule, PaddingSkipsUndecomposableAccesses) {
  // `_lin` ranges over [0, 256): it does not provably decompose as
  // q*16 + r with r < 16, so the buffer must stay untouched.
  std::vector<Stmt> S;
  S.push_back(Stmt::store(sharedBuf("tmp"), Nat::var("_lin"),
                          Expr::floatLit(0.0, ScalarKind::F64)));
  std::vector<ScheduleSharedBuffer> Bufs = {
      {"tmp", ScalarKind::F64, 256, 0, 16}};
  size_t SharedBytes = 2048;
  VarBounds Bounds = {{"_lin", 256}};
  std::vector<BodyRef> Bodies = {{&S, {}}};
  EXPECT_EQ(padSharedBuffers(Bodies, Bufs, SharedBytes, 1, Bounds, nullptr),
            0u);
  EXPECT_EQ(Bufs[0].Elems, 256u);
  EXPECT_EQ(SharedBytes, 2048u);
  EXPECT_TRUE(Nat::proveEq(S[0].Index, Nat::var("_lin")));
}

TEST(KirSchedule, PaddingUsesForLoopBoundsAndRelaysByteBases) {
  // The remainder variable is a `for` loop counter, not an entry bound,
  // and a second shared buffer behind the padded one must have its
  // ByteBase pushed back (and every access re-pointed at it).
  std::vector<Stmt> S;
  Stmt For = Stmt::forLoop("k", Nat::lit(0), Nat::lit(16));
  For.Body.push_back(Stmt::store(sharedBuf("tmp"),
                                 Nat::var("_ty") * Nat::lit(16) +
                                     Nat::var("k"),
                                 Expr::floatLit(1.0, ScalarKind::F64)));
  For.Body.push_back(Stmt::store(sharedBuf("aux", 2048), tid(),
                                 Expr::floatLit(2.0, ScalarKind::F64)));
  S.push_back(std::move(For));

  std::vector<ScheduleSharedBuffer> Bufs = {
      {"tmp", ScalarKind::F64, 256, 0, 16},
      {"aux", ScalarKind::F64, 16, 2048, 0}}; // no row structure: skipped
  size_t SharedBytes = 2048 + 128;
  VarBounds Bounds = {{"_tx", 16}, {"_ty", 16}};
  std::vector<BodyRef> Bodies = {{&S, {}}};
  EXPECT_EQ(padSharedBuffers(Bodies, Bufs, SharedBytes, 1, Bounds, nullptr),
            1u);
  EXPECT_EQ(Bufs[0].Elems, 272u);
  EXPECT_EQ(Bufs[1].Elems, 16u);
  EXPECT_EQ(Bufs[1].ByteBase, 272u * 8u); // already 8-byte aligned
  EXPECT_EQ(SharedBytes, 272u * 8u + 128u);
  EXPECT_EQ(S[0].Body[1].Ref.ByteBase, 272u * 8u);
}

TEST(KirSchedule, VectorizeFusesContiguousAlignedPairs) {
  // Thread _tx owns the even-based adjacent pair (2*_tx, 2*_tx + 1):
  // both the store pair and the load-let pair fuse to Width = 2.
  Nat Even = tid() * Nat::lit(2);
  Nat Odd = tid() * Nat::lit(2) + Nat::lit(1);
  std::vector<Stmt> S;
  S.push_back(Stmt::let("x_0", ScalarKind::F64,
                        Expr::load(globalBuf("arr"), Even)));
  S.push_back(Stmt::let("x_1", ScalarKind::F64,
                        Expr::load(globalBuf("arr"), Odd)));
  S.push_back(Stmt::store(globalBuf("arr"), Even, Expr::varRef("x_0")));
  S.push_back(Stmt::store(globalBuf("arr"), Odd, Expr::varRef("x_1")));

  ScheduleStats Stats;
  std::vector<BodyRef> Bodies = {{&S, {}}};
  EXPECT_EQ(vectorizeAccesses(Bodies, {}, &Stats), 2u);
  EXPECT_EQ(Stats.FusedLoadPairs, 1u);
  EXPECT_EQ(Stats.FusedStorePairs, 1u);
  EXPECT_EQ(Stats.RejectedPairs, 0u);
  ASSERT_EQ(S.size(), 2u);
  EXPECT_EQ(S[0].K, StmtKind::Let);
  EXPECT_EQ(S[0].Width, 2u);
  EXPECT_EQ(S[0].Name2, "x_1");
  EXPECT_EQ(S[1].K, StmtKind::Store);
  EXPECT_EQ(S[1].Width, 2u);
  ASSERT_TRUE(S[1].Value2);
  EXPECT_EQ(S[1].Value2->Name, "x_1");
  // The fused body still verifies, and the sim printer spells the wide
  // accesses as the runtime's *2 entry points.
  std::string Err;
  EXPECT_TRUE(verify(S, kernelCtx(), Err)) << Err;
  std::string Out;
  ASSERT_TRUE(printStmts(S, SimStyle(), 1, Out, Err)) << Err;
  EXPECT_NE(Out.find("arr.load2(_b, _tx * 2, x_0, x_1);"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("arr.store2(_b, _tx * 2, x_0, x_1);"),
            std::string::npos)
      << Out;
}

TEST(KirSchedule, VectorizeRejectsIllegalPairs) {
  Nat Even = tid() * Nat::lit(2);
  // Not contiguous: stride-2 partners.
  std::vector<Stmt> Gap;
  Gap.push_back(Stmt::store(globalBuf("arr"), Even,
                            Expr::floatLit(0.0, ScalarKind::F64)));
  Gap.push_back(Stmt::store(globalBuf("arr"), Even + Nat::lit(2),
                            Expr::floatLit(1.0, ScalarKind::F64)));
  ScheduleStats Stats;
  std::vector<BodyRef> GapBodies = {{&Gap, {}}};
  EXPECT_EQ(vectorizeAccesses(GapBodies, {}, &Stats), 0u);
  EXPECT_EQ(Gap.size(), 2u);
  EXPECT_EQ(Stats.RejectedPairs, 1u);

  // Contiguous but the first index is odd: the wide access would be
  // misaligned.
  std::vector<Stmt> Odd;
  Odd.push_back(Stmt::store(globalBuf("arr"), Even + Nat::lit(1),
                            Expr::floatLit(0.0, ScalarKind::F64)));
  Odd.push_back(Stmt::store(globalBuf("arr"), Even + Nat::lit(2),
                            Expr::floatLit(1.0, ScalarKind::F64)));
  std::vector<BodyRef> OddBodies = {{&Odd, {}}};
  EXPECT_EQ(vectorizeAccesses(OddBodies, {}, nullptr), 0u);
  EXPECT_EQ(Odd.size(), 2u);

  // The second store's value reads the first store's cell: fusing would
  // reorder that read before the write.
  std::vector<Stmt> Hazard;
  Hazard.push_back(Stmt::store(globalBuf("arr"), Even,
                               Expr::floatLit(0.0, ScalarKind::F64)));
  Hazard.push_back(Stmt::store(globalBuf("arr"), Even + Nat::lit(1),
                               Expr::load(globalBuf("arr"), Even)));
  std::vector<BodyRef> HazardBodies = {{&Hazard, {}}};
  EXPECT_EQ(vectorizeAccesses(HazardBodies, {}, nullptr), 0u);
  EXPECT_EQ(Hazard.size(), 2u);

  // Different element types never fuse, even at contiguous indices.
  std::vector<Stmt> Mixed;
  Mixed.push_back(Stmt::store(globalBuf("arr", ScalarKind::I64), Even,
                              Expr::intLit(0, ScalarKind::I64)));
  Mixed.push_back(Stmt::store(globalBuf("arr", ScalarKind::I64),
                              Even + Nat::lit(1),
                              Expr::intLit(1, ScalarKind::I64)));
  std::vector<BodyRef> MixedBodies = {{&Mixed, {}}};
  EXPECT_EQ(vectorizeAccesses(MixedBodies, {}, nullptr), 0u);
  EXPECT_EQ(Mixed.size(), 2u);
}

TEST(KirVerify, WideAccessRules) {
  Nat Even = tid() * Nat::lit(2);
  std::string Err;

  // Wide store without a second value.
  std::vector<Stmt> S;
  S.push_back(Stmt::store(globalBuf("arr"), Even,
                          Expr::floatLit(0.0, ScalarKind::F64)));
  S[0].Width = 2;
  EXPECT_FALSE(verify(S, kernelCtx(), Err));
  EXPECT_NE(Err.find("wide store without a second value"),
            std::string::npos)
      << Err;

  // Wide let whose initializer is not a load.
  std::vector<Stmt> S2;
  S2.push_back(Stmt::let("x_0", ScalarKind::F64,
                         Expr::floatLit(0.0, ScalarKind::F64)));
  S2[0].Width = 2;
  EXPECT_FALSE(verify(S2, kernelCtx(), Err));
  EXPECT_NE(Err.find("initializer is not a load"), std::string::npos)
      << Err;

  // Wide let without a second target name.
  std::vector<Stmt> S2b;
  S2b.push_back(Stmt::let("x_0", ScalarKind::F64,
                          Expr::load(globalBuf("arr"), Even)));
  S2b[0].Width = 2;
  EXPECT_FALSE(verify(S2b, kernelCtx(), Err));
  EXPECT_NE(Err.find("without a second target"), std::string::npos) << Err;

  // Wide access to the per-thread arena.
  MemRef Slot;
  Slot.Space = MemSpace::Arena;
  Slot.Name = "acc_0";
  Slot.Elem = ScalarKind::F64;
  std::vector<Stmt> S3;
  S3.push_back(Stmt::store(Slot, Nat::var("_lin"),
                           Expr::floatLit(0.0, ScalarKind::F64)));
  S3[0].Width = 2;
  S3[0].Value2 = Expr::floatLit(1.0, ScalarKind::F64);
  EXPECT_FALSE(verify(S3, kernelCtx(), Err));
  EXPECT_NE(Err.find("wide store to the per-thread arena"),
            std::string::npos)
      << Err;

  // Any width other than 1 or 2.
  std::vector<Stmt> S4;
  S4.push_back(Stmt::store(globalBuf("arr"), Even,
                           Expr::floatLit(0.0, ScalarKind::F64)));
  S4[0].Width = 4;
  EXPECT_FALSE(verify(S4, kernelCtx(), Err));
  EXPECT_NE(Err.find("unsupported width"), std::string::npos) << Err;
}

TEST(KirExpr, CloneIsDeep) {
  ExprPtr E = Expr::binary(BinOp::Add, Expr::varRef("a"),
                           Expr::load(globalBuf("arr"), tid()));
  ExprPtr C = E->clone();
  E->Lhs->Name = "b";
  EXPECT_EQ(C->Lhs->Name, "a");
  EXPECT_EQ(C->Rhs->Ref.Name, "arr");
}

} // namespace
