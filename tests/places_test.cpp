//===- tests/places_test.cpp - Place overlap analysis tests ---------------===//

#include "places/PlacePath.h"

#include <gtest/gtest.h>

using namespace descend;

namespace {

PlacePath path(std::string Root, std::vector<PlaceStep> Steps,
               unsigned Binding = 1) {
  PlacePath P;
  P.Root = std::move(Root);
  P.RootBindingId = Binding;
  P.Steps = std::move(Steps);
  return P;
}

TEST(Places, DifferentRootsAreDisjoint) {
  EXPECT_EQ(comparePlaces(path("a", {}), path("b", {})),
            PlaceRelation::Disjoint);
  // Same name, different binding (shadowing) is a different place.
  EXPECT_EQ(comparePlaces(path("a", {}, 1), path("a", {}, 2)),
            PlaceRelation::Disjoint);
}

TEST(Places, IdenticalPathsAreEqual) {
  auto P1 = path("arr", {PlaceStep::deref(), PlaceStep::view("group::<32>"),
                         PlaceStep::select("t", "E", 1, 2)});
  auto P2 = path("arr", {PlaceStep::deref(), PlaceStep::view("group::<32>"),
                         PlaceStep::select("t", "E", 1, 2)});
  EXPECT_EQ(comparePlaces(P1, P2), PlaceRelation::Equal);
}

TEST(Places, ProjectionsDisjoint) {
  auto Fst = path("p", {PlaceStep::proj(0)});
  auto Snd = path("p", {PlaceStep::proj(1)});
  EXPECT_EQ(comparePlaces(Fst, Snd), PlaceRelation::Disjoint);
}

TEST(Places, DistinctConstantIndicesDisjoint) {
  auto A = path("p", {PlaceStep::index(Nat::lit(0), "0")});
  auto B = path("p", {PlaceStep::index(Nat::lit(1), "1")});
  EXPECT_EQ(comparePlaces(A, B), PlaceRelation::Disjoint);
  // Same symbolic index: equal.
  auto I1 = path("p", {PlaceStep::index(Nat::var("i"), "i")});
  auto I2 = path("p", {PlaceStep::index(Nat::var("i"), "i")});
  EXPECT_EQ(comparePlaces(I1, I2), PlaceRelation::Equal);
  // i vs i+1: provably distinct.
  auto I3 = path("p", {PlaceStep::index(Nat::var("i") + Nat::lit(1), "")});
  EXPECT_EQ(comparePlaces(I1, I3), PlaceRelation::Disjoint);
  // i vs j: unknown -> overlap.
  auto J = path("p", {PlaceStep::index(Nat::var("j"), "j")});
  EXPECT_EQ(comparePlaces(I1, J), PlaceRelation::Overlap);
}

TEST(Places, DifferentViewChainsOverlap) {
  // The rev_per_block pattern: arr[[t]] vs arr.rev[[t]].
  auto Plain = path("arr", {PlaceStep::select("t", "E", 0, 1)});
  auto Rev = path("arr", {PlaceStep::view("reverse"),
                          PlaceStep::select("t", "E", 0, 1)});
  EXPECT_EQ(comparePlaces(Plain, Rev), PlaceRelation::Overlap);
}

TEST(Places, SelectsByDifferentResourcesOverlap) {
  auto A = path("arr", {PlaceStep::select("t", "...fst.forall(X)", 2, 3)});
  auto B = path("arr", {PlaceStep::select("t", "...snd.forall(X)", 2, 3)});
  EXPECT_EQ(comparePlaces(A, B), PlaceRelation::Overlap);
}

TEST(Places, PrefixOverlapsWhole) {
  auto Whole = path("arr", {});
  auto Part = path("arr", {PlaceStep::index(Nat::lit(3), "3")});
  EXPECT_EQ(comparePlaces(Whole, Part), PlaceRelation::Overlap);
}

TEST(Places, ProvablyDistinct) {
  EXPECT_TRUE(provablyDistinct(Nat::lit(3), Nat::lit(4)));
  EXPECT_FALSE(provablyDistinct(Nat::lit(3), Nat::lit(3)));
  Nat I = Nat::var("i");
  EXPECT_TRUE(provablyDistinct(I, I + Nat::lit(2)));
  EXPECT_FALSE(provablyDistinct(I, Nat::var("j")));
}

TEST(Places, PathRendering) {
  auto P = path("arr", {PlaceStep::deref(), PlaceStep::view("group::<8>"),
                        PlaceStep::select("t", "E", 0, 1),
                        PlaceStep::index(Nat::lit(2), "2")});
  EXPECT_EQ(P.str(), "(*arr).group::<8>[[t]][2]");
}

} // namespace
