//===- tests/lexer_test.cpp - Unit tests for src/lexer --------------------===//

#include "lexer/Lexer.h"

#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace descend;

namespace {

std::vector<Token> lex(const std::string &Src, unsigned ExpectedErrors = 0) {
  static SourceManager SM; // buffers must outlive returned string_views
  DiagnosticEngine Diags(SM);
  uint32_t Id = SM.addBuffer("test", Src);
  Lexer L(SM, Id, Diags);
  auto Tokens = L.lexAll();
  EXPECT_EQ(Diags.errorCount(), ExpectedErrors);
  return Tokens;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Out;
  for (const Token &T : Tokens)
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, Keywords) {
  auto T = lex("fn let for in sched split at sync view uniq true false");
  std::vector<TokenKind> Expected = {
      TokenKind::KwFn,    TokenKind::KwLet,  TokenKind::KwFor,
      TokenKind::KwIn,    TokenKind::KwSched, TokenKind::KwSplit,
      TokenKind::KwAt,    TokenKind::KwSync, TokenKind::KwView,
      TokenKind::KwUniq,  TokenKind::KwTrue, TokenKind::KwFalse,
      TokenKind::Eof};
  EXPECT_EQ(kinds(T), Expected);
}

TEST(Lexer, IdentifiersAreNotKeywords) {
  auto T = lex("fnx viewer synchronize");
  EXPECT_EQ(T[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[2].Kind, TokenKind::Identifier);
}

TEST(Lexer, NumbersAndSuffixes) {
  auto T = lex("123 1.5 2.0f32 7i64 9u32 3f32");
  EXPECT_EQ(T[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(T[1].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(T[2].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(T[2].Text, "2.0f32");
  EXPECT_EQ(T[3].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(T[3].Text, "7i64");
  EXPECT_EQ(T[4].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(T[5].Kind, TokenKind::FloatLiteral) << "3f32 is a float";
}

TEST(Lexer, RangeDotsDoNotMergeIntoFloat) {
  auto T = lex("[0..4]");
  std::vector<TokenKind> Expected = {TokenKind::LBracket, TokenKind::IntLiteral,
                                     TokenKind::DotDot, TokenKind::IntLiteral,
                                     TokenKind::RBracket, TokenKind::Eof};
  EXPECT_EQ(kinds(T), Expected);
}

TEST(Lexer, AngleBracketsStaySingle) {
  // Launch configurations rely on single '<'/'>' tokens.
  auto T = lex("f::<<<X<32>, X<32>>>>(v)");
  unsigned LessCount = 0, GreaterCount = 0;
  for (const Token &Tok : T) {
    if (Tok.is(TokenKind::Less))
      ++LessCount;
    if (Tok.is(TokenKind::Greater))
      ++GreaterCount;
  }
  EXPECT_EQ(LessCount, 5u);
  EXPECT_EQ(GreaterCount, 5u);
}

TEST(Lexer, OperatorsAndArrows) {
  auto T = lex("-> => == != <= >= && || :: .. = < > ! & . @");
  std::vector<TokenKind> Expected = {
      TokenKind::ThinArrow,    TokenKind::FatArrow, TokenKind::EqualEqual,
      TokenKind::NotEqual,     TokenKind::LessEqual, TokenKind::GreaterEqual,
      TokenKind::AmpAmp,       TokenKind::PipePipe, TokenKind::ColonColon,
      TokenKind::DotDot,       TokenKind::Equal,    TokenKind::Less,
      TokenKind::Greater,      TokenKind::Not,      TokenKind::Amp,
      TokenKind::Dot,          TokenKind::AtSign,   TokenKind::Eof};
  EXPECT_EQ(kinds(T), Expected);
}

TEST(Lexer, ExecAnnotationTokens) {
  auto T = lex("-[grid: gpu.grid<XY<64,64>,XY<32,8>>]-> ()");
  EXPECT_EQ(T[0].Kind, TokenKind::Minus);
  EXPECT_EQ(T[1].Kind, TokenKind::LBracket);
  // ... ]->
  bool SawCloseArrow = false;
  for (size_t I = 0; I + 1 < T.size(); ++I)
    if (T[I].is(TokenKind::RBracket) && T[I + 1].is(TokenKind::ThinArrow))
      SawCloseArrow = true;
  EXPECT_TRUE(SawCloseArrow);
}

TEST(Lexer, Comments) {
  auto T = lex("a // line comment\n b /* block\n comment */ c");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::Identifier,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(kinds(T), Expected);
}

TEST(Lexer, UnterminatedCommentReported) {
  auto T = lex("a /* never closed", 1);
  EXPECT_EQ(T.back().Kind, TokenKind::Eof);
}

TEST(Lexer, UnknownCharacterReported) {
  auto T = lex("a $ b", 1);
  // Lexing continues after the error.
  EXPECT_EQ(T[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[1].Kind, TokenKind::Identifier);
}

TEST(Lexer, SourceRangesAreAccurate) {
  auto T = lex("let foo");
  EXPECT_EQ(T[1].Range.Begin.Offset, 4u);
  EXPECT_EQ(T[1].Range.End.Offset, 7u);
}

TEST(Lexer, SelectBracketsLexAsTwoPairs) {
  auto T = lex("arr[[thread]]");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::LBracket, TokenKind::LBracket,
      TokenKind::Identifier, TokenKind::RBracket, TokenKind::RBracket,
      TokenKind::Eof};
  EXPECT_EQ(kinds(T), Expected);
}

} // namespace
