//===- tests/service_test.cpp - CompileService robustness -------------------===//
//
// The compile service is a long-lived boundary: whatever arrives — every
// negative fixture in programs/bad_*.descend, truncated sources, binary
// garbage — must come back as a reply with structured diagnostics, never
// as an exception across compile(), and must never be cached (a failure
// must not poison the LRU). Also exercises concurrent compile requests
// from many threads (the TSan job runs this test) including coalescing of
// identical in-flight requests.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace descend;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<std::string> badFixtures() {
  std::vector<std::string> Paths;
  for (const auto &Entry :
       std::filesystem::directory_iterator(DESCEND_PROGRAM_DIR)) {
    std::string Name = Entry.path().filename().string();
    if (Name.rfind("bad_", 0) == 0 &&
        Entry.path().extension() == ".descend")
      Paths.push_back(Entry.path().string());
  }
  return Paths;
}

TEST(ServiceRobustness, EveryBadFixtureYieldsDiagnosticsAndNoCacheEntry) {
  std::vector<std::string> Fixtures = badFixtures();
  ASSERT_FALSE(Fixtures.empty())
      << "no programs/bad_*.descend fixtures found";

  service::CompileService Svc;
  uint64_t ExpectedFailures = 0;
  for (const std::string &Path : Fixtures) {
    service::CompileRequest Req;
    Req.Source = readFile(Path);
    Req.Defines["nb"] = 8;
    Req.BufferName = Path;
    service::CompileReply Rep;
    ASSERT_NO_THROW(Rep = Svc.compile(Req)) << Path;
    EXPECT_FALSE(Rep.Ok) << Path << " unexpectedly compiled";
    EXPECT_FALSE(Rep.Diagnostics.empty())
        << Path << " failed without diagnostics";
    EXPECT_FALSE(Rep.Program) << Path;
    ++ExpectedFailures;

    // A failure is never cached: the identical retry recompiles and the
    // cache stays empty.
    service::CompileReply Retry = Svc.compile(Req);
    EXPECT_FALSE(Retry.Ok);
    EXPECT_FALSE(Retry.CacheHit);
    ++ExpectedFailures;
  }

  service::ServiceStats St = Svc.stats();
  EXPECT_EQ(St.Failures, ExpectedFailures);
  EXPECT_EQ(St.Entries, 0u) << "a failure poisoned the cache";
  EXPECT_EQ(St.Hits, 0u);
  EXPECT_EQ(St.Misses, 0u);
}

TEST(ServiceRobustness, HostileInputsNeverThrow) {
  // Truncated and garbage inputs of every stripe; compile() must reply
  // with diagnostics for each of them.
  std::string Good = "fn scale<nb: nat>(v: &uniq gpu.global [f64; nb*256])\n"
                     "-[grid: gpu.grid<X<nb>, X<256>>]-> () {\n"
                     "  sched(X) block in grid {\n"
                     "    sched(X) thread in block {\n"
                     "      v.group::<256>[[block]][[thread]] = 1.0\n"
                     "    }\n"
                     "  }\n"
                     "}\n";
  std::vector<std::string> Hostile;
  Hostile.push_back("");                          // empty
  Hostile.push_back(std::string("\0\0\0\x7f", 4) + Good); // leading NULs
  Hostile.push_back(std::string(4096, '('));      // deep nonsense nesting
  Hostile.push_back("fn fn fn fn <<<<>>>> [f64; ]"); // token soup
  for (size_t Cut = 1; Cut < Good.size(); Cut += 29)
    Hostile.push_back(Good.substr(0, Cut));       // every truncation stride

  service::CompileService Svc;
  for (const std::string &Src : Hostile) {
    service::CompileRequest Req;
    Req.Source = Src;
    Req.Defines["nb"] = 4;
    service::CompileReply Rep;
    ASSERT_NO_THROW(Rep = Svc.compile(Req));
    if (!Rep.Ok)
      EXPECT_FALSE(Rep.Diagnostics.empty());
  }
  // Nothing above may have poisoned the service for real work.
  service::CompileRequest Req;
  Req.Source = Good;
  Req.Defines["nb"] = 4;
  service::CompileReply Rep = Svc.compile(Req);
  EXPECT_TRUE(Rep.Ok) << Rep.Diagnostics;
}

std::string tinyKernel(const char *Rhs) {
  return std::string("fn scale<nb: nat>(v: &uniq gpu.global "
                     "[f64; nb*256])\n"
                     "-[grid: gpu.grid<X<nb>, X<256>>]-> () {\n"
                     "  sched(X) block in grid {\n"
                     "    sched(X) thread in block {\n"
                     "      v.group::<256>[[block]][[thread]] = ") +
         Rhs + "\n    }\n  }\n}\n";
}

TEST(ServiceRobustness, UnknownBackendIsADiagnosticNotACrash) {
  service::CompileService Svc;
  service::CompileRequest Req;
  Req.Source = tinyKernel("4.0");
  Req.Defines["nb"] = 2;
  Req.Backend = "no-such-backend";
  service::CompileReply Rep = Svc.compile(Req);
  EXPECT_FALSE(Rep.Ok);
  EXPECT_NE(Rep.Diagnostics.find("no-such-backend"), std::string::npos)
      << Rep.Diagnostics;
  EXPECT_EQ(Svc.stats().Entries, 0u);
}

TEST(ServiceConcurrency, ParallelMixedRequestsAreThreadSafe) {
  // Many threads hammer the service with a mix of distinct
  // specializations (distinct keys compile in parallel), repeats (cache
  // hits) and bad sources (failures) — the TSan job runs this.
  std::string Good = "fn scale<nb: nat>(v: &uniq gpu.global [f64; nb*256])\n"
                     "-[grid: gpu.grid<X<nb>, X<256>>]-> () {\n"
                     "  sched(X) block in grid {\n"
                     "    sched(X) thread in block {\n"
                     "      v.group::<256>[[block]][[thread]] = 2.0\n"
                     "    }\n"
                     "  }\n"
                     "}\n";
  service::CompileService Svc(/*Capacity=*/8);

  const int Threads = 8, PerThread = 12;
  std::vector<std::thread> Pool;
  std::vector<int> OkCounts(Threads, 0), FailCounts(Threads, 0);
  for (int T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      for (int I = 0; I != PerThread; ++I) {
        service::CompileRequest Req;
        if (I % 4 == 3) {
          // Unique per (thread, iteration): failures never coalesce, so
          // the per-reply failure count below matches Stats.Failures.
          Req.Source = "garbage ##### " + std::to_string(T * 100 + I);
        } else {
          Req.Source = Good;
          // Only a handful of distinct keys: threads collide on purpose,
          // exercising both the cache-hit path and in-flight coalescing.
          Req.Defines["nb"] = 1 + (T + I) % 3;
        }
        service::CompileReply Rep = Svc.compile(Req);
        if (Rep.Ok) {
          ++OkCounts[T];
          EXPECT_TRUE(Rep.Program);
        } else {
          ++FailCounts[T];
          EXPECT_FALSE(Rep.Diagnostics.empty());
        }
      }
    });
  for (std::thread &Th : Pool)
    Th.join();

  int Ok = 0, Fail = 0;
  for (int T = 0; T != Threads; ++T) {
    Ok += OkCounts[T];
    Fail += FailCounts[T];
  }
  EXPECT_EQ(Ok, Threads * PerThread * 3 / 4);
  EXPECT_EQ(Fail, Threads * PerThread / 4);

  service::ServiceStats St = Svc.stats();
  EXPECT_EQ(St.Hits + St.Misses + St.Coalesced,
            static_cast<uint64_t>(Ok));
  EXPECT_EQ(St.Failures, static_cast<uint64_t>(Fail));
  EXPECT_LE(St.Entries, 8u);
}

TEST(ServiceConcurrency, IdenticalConcurrentRequestsCoalesce) {
  // All threads ask for the same cold key at once: exactly one compiles,
  // the rest either coalesce onto it or (having arrived later) hit the
  // cache. Every reply must carry the same artifact.
  std::string Src = tinyKernel("5.0");
  service::CompileService Svc;

  const int Threads = 8;
  std::vector<std::thread> Pool;
  std::vector<service::CompileReply> Replies(Threads);
  for (int T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      service::CompileRequest Req;
      Req.Source = Src;
      Req.Defines["nb"] = 2;
      Replies[T] = Svc.compile(Req);
    });
  for (std::thread &Th : Pool)
    Th.join();

  for (int T = 0; T != Threads; ++T) {
    EXPECT_TRUE(Replies[T].Ok) << Replies[T].Diagnostics;
    EXPECT_EQ(Replies[T].Artifact, Replies[0].Artifact);
  }
  service::ServiceStats St = Svc.stats();
  EXPECT_EQ(St.Misses, 1u) << "exactly one cold compile";
  EXPECT_EQ(St.Hits + St.Coalesced, static_cast<uint64_t>(Threads - 1));
}

TEST(ServiceRobustness, SchedulePassesAreDistinctCacheKeys) {
  // Same source, same defines, different PassConfig: each config is its
  // own cache entry (the autotuner depends on this — a padded candidate
  // must never be served the default artifact), and re-requesting any of
  // them is a hit.
  service::CompileService Svc;
  service::CompileRequest Plain;
  Plain.Source = tinyKernel("7.0");
  Plain.Defines["nb"] = 2;
  service::CompileRequest Padded = Plain;
  Padded.Passes.SharedPad = 1;
  service::CompileRequest Vectorized = Plain;
  Vectorized.Passes.Vectorize = true;

  EXPECT_FALSE(Svc.compile(Plain).CacheHit);
  EXPECT_FALSE(Svc.compile(Padded).CacheHit);
  EXPECT_FALSE(Svc.compile(Vectorized).CacheHit);
  service::ServiceStats St = Svc.stats();
  EXPECT_EQ(St.Misses, 3u);
  EXPECT_EQ(St.Entries, 3u);

  EXPECT_TRUE(Svc.compile(Plain).CacheHit);
  EXPECT_TRUE(Svc.compile(Padded).CacheHit);
  EXPECT_TRUE(Svc.compile(Vectorized).CacheHit);
  EXPECT_EQ(Svc.stats().Hits, 3u);
}

//===----------------------------------------------------------------------===//
// Serve-latency histogram (descendd METRICS)
//===----------------------------------------------------------------------===//

TEST(ServiceLatency, EmptyHistogramReportsZeroes) {
  service::LatencyHistogram H;
  EXPECT_EQ(H.Total, 0u);
  EXPECT_EQ(H.quantileUpperMs(0.5), 0.0);
  EXPECT_EQ(H.quantileUpperMs(0.95), 0.0);
  EXPECT_EQ(H.MaxMs, 0.0);
}

TEST(ServiceLatency, BucketsAreLog2WithOpenEnd) {
  EXPECT_DOUBLE_EQ(service::LatencyHistogram::bucketUpperMs(0), 0.25);
  EXPECT_DOUBLE_EQ(service::LatencyHistogram::bucketUpperMs(1), 0.5);
  EXPECT_DOUBLE_EQ(service::LatencyHistogram::bucketUpperMs(2), 1.0);
  EXPECT_TRUE(std::isinf(service::LatencyHistogram::bucketUpperMs(
      service::LatencyHistogram::NumBuckets - 1)));
}

TEST(ServiceLatency, QuantilesReturnConservativeBucketBounds) {
  service::LatencyHistogram H;
  for (int I = 0; I != 9; ++I)
    H.record(0.1); // bucket 0 (< 0.25 ms)
  H.record(100.0); // bucket [64, 128)
  EXPECT_EQ(H.Total, 10u);
  EXPECT_DOUBLE_EQ(H.MaxMs, 100.0);
  EXPECT_DOUBLE_EQ(H.quantileUpperMs(0.5), 0.25);
  // Conservative: the tail sample reports its bucket's upper bound.
  EXPECT_DOUBLE_EQ(H.quantileUpperMs(0.95), 128.0);

  // A sample in the open-ended last bucket reports the observed maximum
  // instead of infinity.
  service::LatencyHistogram Tail;
  Tail.record(1000.0);
  EXPECT_DOUBLE_EQ(Tail.quantileUpperMs(0.95), 1000.0);
}

TEST(ServiceLatency, EveryServedRequestIsRecorded) {
  service::CompileService Svc;
  service::CompileRequest Req;
  Req.Source = tinyKernel("4.0");
  Req.Defines["nb"] = 2;
  ASSERT_TRUE(Svc.compile(Req).Ok);
  service::CompileReply Hit = Svc.compile(Req);
  ASSERT_TRUE(Hit.Ok);
  EXPECT_TRUE(Hit.CacheHit);

  service::LatencyHistogram H = Svc.latency();
  EXPECT_EQ(H.Total, 2u) << "hits are recorded too";
  EXPECT_GT(H.MaxMs, 0.0);
  EXPECT_EQ(Svc.stats().InFlight, 0u) << "no compile left running";
}

//===----------------------------------------------------------------------===//
// descendd protocol: METRICS and STATS answer even on an idle daemon
//===----------------------------------------------------------------------===//

/// Pipes \p Input into the descendd binary and returns its stdout.
/// \p EnvPrefix (e.g. "DESCEND_FAULTS=compile:fail=1 ") and \p Flags are
/// spliced into the shell command; the daemon must always exit 0 — EOF,
/// QUIT and even a truncated payload are orderly shutdowns.
std::string runDescendd(const std::string &Input,
                        const std::string &EnvPrefix = "",
                        const std::string &Flags = "") {
  static int Counter = 0;
  std::string Base = ::testing::TempDir() + "descendd_io_" +
                     std::to_string(Counter++);
  std::string InFile = Base + ".in", OutFile = Base + ".out";
  {
    std::ofstream Out(InFile);
    Out << Input;
  }
  std::string Cmd = EnvPrefix + std::string(DESCENDD_BIN) + Flags + " < " +
                    InFile + " > " + OutFile + " 2>/dev/null";
  EXPECT_EQ(std::system(Cmd.c_str()), 0) << Cmd;
  std::string Result = readFile(OutFile);
  std::remove(InFile.c_str());
  std::remove(OutFile.c_str());
  return Result;
}

TEST(DescenddProtocol, MetricsBeforeAnyCompileIsOneCompleteLine) {
  std::string Out = runDescendd("METRICS\nQUIT\n");
  // One complete, newline-terminated line — never silence on an empty
  // cache.
  ASSERT_FALSE(Out.empty());
  EXPECT_EQ(Out.back(), '\n') << Out;
  EXPECT_EQ(Out.rfind("METRICS ", 0), 0u) << Out;
  EXPECT_NE(Out.find("requests=0"), std::string::npos) << Out;
  EXPECT_NE(Out.find("inflight=0"), std::string::npos) << Out;
  EXPECT_NE(Out.find("hit_rate=0.000"), std::string::npos) << Out;
  EXPECT_NE(Out.find("latency_count=0"), std::string::npos) << Out;
  EXPECT_NE(Out.find("latency_p95_ms=0.000"), std::string::npos) << Out;
}

TEST(DescenddProtocol, StatsBeforeAnyCompileIsOneCompleteLine) {
  std::string Out = runDescendd("STATS\nQUIT\n");
  ASSERT_FALSE(Out.empty());
  EXPECT_EQ(Out.back(), '\n') << Out;
  EXPECT_EQ(Out.rfind("STATS ", 0), 0u) << Out;
  EXPECT_NE(Out.find("hit_rate=0.000"), std::string::npos) << Out;
}

TEST(DescenddProtocol, MetricsReflectsServedCompiles) {
  std::string Src = tinyKernel("4.0");
  std::string Req = "COMPILE vm " + std::to_string(Src.size()) + " nb=2\n";
  std::string Out =
      runDescendd(Req + Src + Req + Src + "METRICS\nQUIT\n");
  size_t M = Out.find("METRICS ");
  ASSERT_NE(M, std::string::npos) << Out;
  std::string Line = Out.substr(M);
  EXPECT_NE(Line.find("requests=2"), std::string::npos) << Line;
  EXPECT_NE(Line.find("hits=1"), std::string::npos) << Line;
  EXPECT_NE(Line.find("misses=1"), std::string::npos) << Line;
  EXPECT_NE(Line.find("hit_rate=0.500"), std::string::npos) << Line;
  EXPECT_NE(Line.find("latency_count=2"), std::string::npos) << Line;
}

TEST(DescenddProtocol, MetricsIncludesHardeningCounters) {
  std::string Out = runDescendd("METRICS\nQUIT\n");
  EXPECT_NE(Out.find("timeouts=0"), std::string::npos) << Out;
  EXPECT_NE(Out.find("retries=0"), std::string::npos) << Out;
  EXPECT_NE(Out.find("sheds=0"), std::string::npos) << Out;
}

TEST(DescenddProtocol, PingIsALivenessProbe) {
  // PONG comes back without touching the compile service — and the
  // daemon keeps serving afterwards (METRICS still answers).
  std::string Out = runDescendd("PING\nMETRICS\nPING\nQUIT\n");
  EXPECT_EQ(Out.rfind("PONG\n", 0), 0u) << Out;
  EXPECT_NE(Out.find("METRICS requests=0"), std::string::npos) << Out;
  // Two PONGs: one before, one after the METRICS line.
  size_t First = Out.find("PONG\n");
  EXPECT_NE(Out.find("PONG\n", First + 1), std::string::npos) << Out;
}

TEST(DescenddProtocol, TruncatedPayloadAnswersErrAndExitsCleanly) {
  // The header promises 4096 bytes but stdin ends after a few: the
  // client died mid-request. The daemon must answer ERR (the client may
  // still be reading) and exit 0 — runDescendd asserts the exit status.
  std::string Out = runDescendd("COMPILE vm 4096 nb=2\nshort");
  EXPECT_EQ(Out.rfind("ERR ", 0), 0u) << Out;
  EXPECT_NE(Out.find("truncated payload"), std::string::npos) << Out;
  EXPECT_NE(Out.find("shutting down"), std::string::npos) << Out;
}

TEST(DescenddProtocol, EofWithoutQuitIsACleanExit) {
  // A client that just closes the pipe (no QUIT) is an orderly shutdown:
  // exit 0, and everything requested before the EOF was answered.
  std::string Src = tinyKernel("4.0");
  std::string Out = runDescendd("COMPILE vm " + std::to_string(Src.size()) +
                                " nb=2\n" + Src);
  EXPECT_EQ(Out.rfind("OK hit=0", 0), 0u) << Out.substr(0, 80);
}

TEST(DescenddProtocol, TransientCompileFailureIsRetriedToSuccess) {
  // DESCEND_FAULTS=compile:fail=1 fails the first cold compile
  // transiently; descendd's bounded retry recompiles and the client
  // still sees OK. METRICS owns up to the retry.
  std::string Src = tinyKernel("4.0");
  std::string Out = runDescendd("COMPILE vm " + std::to_string(Src.size()) +
                                    " nb=2\n" + Src + "METRICS\nQUIT\n",
                                "DESCEND_FAULTS=compile:fail=1 ");
  EXPECT_EQ(Out.rfind("OK hit=0", 0), 0u)
      << "transient failure leaked to the client: " << Out.substr(0, 120);
  size_t M = Out.find("METRICS ");
  ASSERT_NE(M, std::string::npos) << Out;
  std::string Line = Out.substr(M);
  EXPECT_NE(Line.find("retries=1"), std::string::npos) << Line;
  EXPECT_NE(Line.find("failures=1"), std::string::npos)
      << "the failed attempt is visible in the service stats: " << Line;
}

TEST(DescenddProtocol, RequestTimeoutNeverHangsTheProtocol) {
  // A per-request timeout must never wedge the daemon: whether the
  // compile beats the budget (OK) or not (ERR "request timeout" while it
  // finishes in the background), the reply is one structured line and
  // the loop keeps serving — METRICS answers and QUIT exits 0. Which
  // branch fires is timing-dependent, so only invariants are pinned; the
  // deterministic timeout path runs in the CI fault smoke.
  std::string Src = tinyKernel("4.0");
  std::string Out = runDescendd("COMPILE vm " + std::to_string(Src.size()) +
                                    " nb=2\n" + Src + "METRICS\nQUIT\n",
                                "", " --request-timeout-ms=1");
  bool TimedOut = Out.rfind("ERR ", 0) == 0;
  if (TimedOut)
    EXPECT_NE(Out.find("request timeout"), std::string::npos) << Out;
  else
    EXPECT_EQ(Out.rfind("OK hit=0", 0), 0u) << Out.substr(0, 120);
  size_t M = Out.find("METRICS ");
  ASSERT_NE(M, std::string::npos) << "daemon wedged after a timed request: "
                                  << Out;
  EXPECT_NE(Out.find(TimedOut ? "timeouts=1" : "timeouts=0", M),
            std::string::npos)
      << Out.substr(M);
}

} // namespace
