//===- tests/nat_test.cpp - Unit & property tests for src/nat -------------===//

#include "nat/Nat.h"

#include <gtest/gtest.h>

#include <random>

using namespace descend;

namespace {

Nat n(long long V) { return Nat::lit(V); }
Nat v(const char *Name) { return Nat::var(Name); }

TEST(Nat, LiteralFolding) {
  EXPECT_EQ((n(2) + n(3)).litValue(), 5);
  EXPECT_EQ((n(2) * n(3)).litValue(), 6);
  EXPECT_EQ((n(7) - n(3)).litValue(), 4);
  EXPECT_EQ((n(7) / n(2)).litValue(), 3);
  EXPECT_EQ((n(7) % n(2)).litValue(), 1);
}

TEST(Nat, NeutralElements) {
  Nat X = v("x");
  EXPECT_EQ((X + n(0)).node(), X.node());
  EXPECT_EQ((n(0) + X).node(), X.node());
  EXPECT_EQ((X * n(1)).node(), X.node());
  EXPECT_EQ((n(1) * X).node(), X.node());
  EXPECT_TRUE((X * n(0)).isLit());
  EXPECT_EQ((X * n(0)).litValue(), 0);
  EXPECT_EQ((X / n(1)).node(), X.node());
  EXPECT_EQ((X % n(1)).litValue(), 0);
}

TEST(Nat, Printing) {
  Nat E = (v("a") + n(1)) * n(32);
  EXPECT_EQ(E.str(), "(a + 1) * 32");
  EXPECT_EQ((v("a") - (v("b") - v("c"))).str(), "a - (b - c)");
  EXPECT_EQ((v("a") * v("b") + v("c")).str(), "a * b + c");
}

TEST(Nat, Evaluate) {
  NatEnv Env{{"n", 10}, {"k", 3}};
  EXPECT_EQ((v("n") * v("k") + n(1)).evaluate(Env), 31);
  EXPECT_EQ((v("n") / v("k")).evaluate(Env), 3);
  EXPECT_EQ((v("n") % v("k")).evaluate(Env), 1);
  EXPECT_FALSE((v("m") + n(1)).evaluate(Env).has_value());
  EXPECT_FALSE((v("n") / (v("k") - n(3))).evaluate(Env).has_value());
}

TEST(Nat, SubstituteThenEvaluate) {
  Nat E = v("n") * n(2) + v("m");
  Nat S = E.substitute({{"n", v("k") + n(1)}});
  EXPECT_EQ(S.evaluate({{"k", 4}, {"m", 7}}), 17);
}

TEST(Nat, CollectVars) {
  std::vector<std::string> Vars;
  (v("a") * v("b") + v("a") % v("c")).collectVars(Vars);
  EXPECT_EQ(Vars.size(), 3u);
}

TEST(Nat, ProveEqBasicAlgebra) {
  // (a + b)^2 == a^2 + 2ab + b^2
  Nat A = v("a"), B = v("b");
  Nat L = (A + B) * (A + B);
  Nat R = A * A + n(2) * A * B + B * B;
  EXPECT_TRUE(Nat::proveEq(L, R));
  EXPECT_FALSE(Nat::proveEq(L, R + n(1)));
}

TEST(Nat, ProveEqDistribution) {
  Nat X = v("x");
  EXPECT_TRUE(Nat::proveEq(X * n(3) + X, X * n(4)));
  EXPECT_TRUE(Nat::proveEq((X + n(1)) * n(32) - n(32), X * n(32)));
}

TEST(Nat, DivisionSimplification) {
  Nat N = v("n");
  // (n * 4) / 2 == n * 2
  EXPECT_TRUE(Nat::proveEq((N * n(4)) / n(2), N * n(2)));
  // n / n == 1
  EXPECT_TRUE(Nat::proveEq(N / N, n(1)));
  // (n * 2 + 4) / 2 == n + 2
  EXPECT_TRUE(Nat::proveEq((N * n(2) + n(4)) / n(2), N + n(2)));
}

TEST(Nat, ModuloSimplification) {
  Nat N = v("n");
  EXPECT_TRUE(Nat::proveEq((N * n(6)) % n(3), n(0)));
  EXPECT_TRUE(Nat::proveEq((N * n(4) + n(5)) % n(2), n(1)));
  EXPECT_TRUE(Nat::proveEq(N % N, n(0)));
}

TEST(Nat, OpaqueDivisionAtomsCompareStructurally) {
  Nat N = v("n"), K = v("k");
  EXPECT_TRUE(Nat::proveEq(N / K, N / K));
  EXPECT_FALSE(Nat::proveEq(N / K, K / N));
  // (n/k) * 2 == 2 * (n/k)
  EXPECT_TRUE(Nat::proveEq((N / K) * n(2), n(2) * (N / K)));
}

TEST(Nat, ProveLe) {
  Nat N = v("n");
  EXPECT_EQ(Nat::proveLe(N, N + n(1)), std::optional(true));
  EXPECT_EQ(Nat::proveLe(N, N), std::optional(true));
  EXPECT_EQ(Nat::proveLe(N + n(1), N), std::optional(false));
  EXPECT_EQ(Nat::proveLe(n(32), n(1024)), std::optional(true));
  // Unknown: cannot compare n and m.
  EXPECT_EQ(Nat::proveLe(v("n"), v("m")), std::nullopt);
  // n <= n * k is not provable without k >= 1 knowledge.
  EXPECT_EQ(Nat::proveLe(N, N * v("k")), std::nullopt);
}

TEST(Nat, ProveLt) {
  EXPECT_EQ(Nat::proveLt(n(31), n(32)), std::optional(true));
  EXPECT_EQ(Nat::proveLt(n(32), n(32)), std::optional(false));
  EXPECT_EQ(Nat::proveLt(v("i"), v("i") + n(1)), std::optional(true));
}

TEST(Nat, ProveDivides) {
  Nat N = v("n");
  EXPECT_EQ(Nat::proveDivides(32, N * n(64)), std::optional(true));
  EXPECT_EQ(Nat::proveDivides(32, N * n(64) + n(16)), std::optional(false));
  EXPECT_EQ(Nat::proveDivides(32, N), std::nullopt);
  EXPECT_EQ(Nat::proveDivides(1, N), std::optional(true));
  EXPECT_EQ(Nat::proveDivides(4, n(1024)), std::optional(true));
  EXPECT_EQ(Nat::proveDivides(3, n(1024)), std::optional(false));
}

TEST(Nat, SimplifiedCanonicalizesIndexExpressions) {
  // The transpose index of Listing 1: (ty + j) * 32 + tx, built the "view"
  // way, must simplify to the handwritten polynomial.
  Nat Ty = v("ty"), Tx = v("tx"), J = v("j");
  Nat ViewBuilt = ((Ty + J) * n(32)) + Tx;
  Nat Hand = Ty * n(32) + J * n(32) + Tx;
  EXPECT_TRUE(Nat::proveEq(ViewBuilt, Hand));
  EXPECT_EQ(ViewBuilt.simplified().str(), Hand.simplified().str());
}

TEST(Nat, SimplifiedIsStable) {
  Nat E = (v("b") + v("a")) * n(2) + v("a");
  std::string S1 = E.simplified().str();
  std::string S2 = E.simplified().simplified().str();
  EXPECT_EQ(S1, S2);
}

//===----------------------------------------------------------------------===//
// Property tests: random expressions, simplified() preserves evaluation.
//===----------------------------------------------------------------------===//

class NatPropertyTest : public ::testing::TestWithParam<unsigned> {};

Nat randomNat(std::mt19937 &Rng, int Depth) {
  std::uniform_int_distribution<int> KindDist(0, Depth <= 0 ? 1 : 6);
  switch (KindDist(Rng)) {
  case 0:
    return Nat::lit(std::uniform_int_distribution<int>(0, 9)(Rng));
  case 1: {
    const char *Names[] = {"x", "y", "z"};
    return Nat::var(Names[std::uniform_int_distribution<int>(0, 2)(Rng)]);
  }
  case 2:
    return randomNat(Rng, Depth - 1) + randomNat(Rng, Depth - 1);
  case 3:
    return randomNat(Rng, Depth - 1) * randomNat(Rng, Depth - 1);
  case 4:
    return randomNat(Rng, Depth - 1) - randomNat(Rng, Depth - 1);
  case 5:
    return Nat::div(randomNat(Rng, Depth - 1),
                    Nat::lit(std::uniform_int_distribution<int>(1, 4)(Rng)));
  default:
    return Nat::mod(randomNat(Rng, Depth - 1),
                    Nat::lit(std::uniform_int_distribution<int>(1, 4)(Rng)));
  }
}

TEST_P(NatPropertyTest, SimplifiedPreservesEvaluation) {
  std::mt19937 Rng(GetParam());
  for (int Iter = 0; Iter != 50; ++Iter) {
    Nat E = randomNat(Rng, 4);
    Nat S = E.simplified();
    NatEnv Env{{"x", 3}, {"y", 5}, {"z", 7}};
    auto VE = E.evaluate(Env);
    auto VS = S.evaluate(Env);
    ASSERT_TRUE(VE.has_value());
    ASSERT_TRUE(VS.has_value());
    EXPECT_EQ(*VE, *VS) << "expr: " << E.str() << "\nsimplified: " << S.str();
  }
}

TEST_P(NatPropertyTest, ProveEqImpliesEqualEvaluation) {
  std::mt19937 Rng(GetParam() + 1000);
  for (int Iter = 0; Iter != 50; ++Iter) {
    Nat A = randomNat(Rng, 3);
    Nat B = randomNat(Rng, 3);
    if (!Nat::proveEq(A, B))
      continue;
    for (long long X = 0; X != 4; ++X) {
      NatEnv Env{{"x", X}, {"y", X + 2}, {"z", 2 * X + 1}};
      EXPECT_EQ(A.evaluate(Env), B.evaluate(Env))
          << A.str() << " vs " << B.str();
    }
  }
}

TEST_P(NatPropertyTest, ProveLeIsSoundOnSamples) {
  std::mt19937 Rng(GetParam() + 2000);
  for (int Iter = 0; Iter != 50; ++Iter) {
    Nat A = randomNat(Rng, 3);
    Nat B = randomNat(Rng, 3);
    auto Proof = Nat::proveLe(A, B);
    if (!Proof)
      continue;
    for (long long X = 0; X != 4; ++X) {
      NatEnv Env{{"x", X}, {"y", 3 * X}, {"z", X * X}};
      auto VA = A.evaluate(Env);
      auto VB = B.evaluate(Env);
      if (!VA || !VB)
        continue;
      EXPECT_EQ(*VA <= *VB, *Proof)
          << A.str() << " <= " << B.str() << " at x=" << X;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NatPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

} // namespace
