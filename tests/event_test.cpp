//===- tests/event_test.cpp - Event and launch-graph tests ------------------===//
//
// Exercises the cross-stream dependency primitives and the capture/replay
// subsystem: Stream::record / Stream::wait fan-out-and-rejoin (including
// the parked-pump resumption under real parallelism — part of the
// ThreadSanitizer CI stress set), the CUDA-matching event edge cases
// (wait-before-record, re-record re-arming, reuse across streams,
// destruction with pending waiters), graph capture -> instantiate ->
// bind -> replay with slot validation, and the hardened DESCEND_WORKERS
// and DESCEND_TRACE parses (the same strictness discipline).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "runtime/HostRuntime.h"
#include "sim/Sim.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace descend::sim;

namespace {

/// One enqueued launch adding \p V to every element of \p Buf.
void enqueueAdd(Stream &S, GpuDevice &Dev, GpuDevice::Buffer<double> Buf,
                double V, unsigned Blocks = 4, unsigned Threads = 32) {
  S.enqueue([&Dev, Buf, V, Blocks, Threads] {
    launchPhases(Dev, Dim3{Blocks}, Dim3{Threads}, 0,
                 [Buf, V](BlockCtx &B, ThreadCtx &T) {
                   size_t I = B.X * B.BlockDim.X + T.X;
                   Buf.store(B, I, Buf.load(B, I) + V);
                 });
  });
}

//===----------------------------------------------------------------------===//
// Events
//===----------------------------------------------------------------------===//

TEST(Event, FanOutAndRejoinOrdersAcrossStreams) {
  // Producer writes, records; consumer waits on the event, then reads —
  // without either stream draining the device. Only the event edge makes
  // the final value well-defined.
  GpuDevice Dev;
  Dev.setWorkers(4);
  auto Buf = Dev.alloc<double>(128);
  for (int Round = 0; Round != 50; ++Round) {
    Stream Producer(Dev), Consumer(Dev);
    Event Done;
    enqueueAdd(Producer, Dev, Buf, 1.0);
    Producer.record(Done);
    Consumer.wait(Done);
    enqueueAdd(Consumer, Dev, Buf, 1.0);
    Consumer.synchronize();
    Producer.synchronize();
  }
  for (size_t I = 0; I != 128; ++I)
    EXPECT_EQ(Buf.data()[I], 100.0);
}

TEST(Event, WaitBeforeRecordIsANoOp) {
  // CUDA semantics: waiting on a never-recorded event does not block.
  GpuDevice Dev;
  Dev.setWorkers(2);
  Stream S(Dev);
  Event Never;
  EXPECT_TRUE(Never.query());
  S.wait(Never); // must not deadlock
  auto Buf = Dev.alloc<int>(32);
  S.enqueue([&Dev, Buf] {
    launchPhases(Dev, Dim3{1}, Dim3{32}, 0,
                 [Buf](BlockCtx &B, ThreadCtx &T) { Buf.store(B, T.X, 7); });
  });
  S.synchronize();
  for (size_t I = 0; I != 32; ++I)
    EXPECT_EQ(Buf.data()[I], 7);
}

TEST(Event, DoubleRecordReArmsToTheLatestSnapshot) {
  // Re-recording moves the event forward: a wait targets the latest
  // record at wait time, and synchronize() joins the newest generation.
  GpuDevice Dev;
  Dev.setWorkers(2);
  Stream S(Dev);
  Event E;
  std::atomic<int> Stage{0};
  S.enqueue([&Stage] { Stage = 1; });
  S.record(E);
  E.synchronize();
  EXPECT_EQ(Stage.load(), 1);
  EXPECT_TRUE(E.query());
  S.enqueue([&Stage] { Stage = 2; });
  S.record(E); // re-arm
  E.synchronize();
  EXPECT_EQ(Stage.load(), 2);
  EXPECT_TRUE(E.query());
  S.synchronize();
}

TEST(Event, ReusedAcrossStreamsAndCopies) {
  // An Event is a shared handle: copies observe the same state, and one
  // event can gate several consumer streams at once.
  GpuDevice Dev;
  Dev.setWorkers(4);
  auto Buf = Dev.alloc<double>(128);
  Stream Producer(Dev);
  enqueueAdd(Producer, Dev, Buf, 5.0);
  Event Done;
  Producer.record(Done);
  Event Copy = Done; // same underlying state
  std::vector<double> Seen(3, 0.0);
  {
    std::vector<std::unique_ptr<Stream>> Consumers;
    for (int I = 0; I != 3; ++I)
      Consumers.push_back(std::make_unique<Stream>(Dev));
    for (int I = 0; I != 3; ++I) {
      Consumers[I]->wait(I % 2 ? Copy : Done);
      double *Slot = &Seen[I];
      Consumers[I]->enqueue([Buf, Slot] { *Slot = Buf.data()[0]; });
    }
    for (auto &C : Consumers)
      C->synchronize();
  }
  for (int I = 0; I != 3; ++I)
    EXPECT_EQ(Seen[I], 5.0) << "consumer " << I;
  Producer.synchronize();
  EXPECT_TRUE(Copy.query());
}

TEST(Event, StreamDestructionWithPendingWaitersJoins) {
  // A stream destroyed while parked on an event must block in its
  // destructor until the event fires, then run its remaining ops — no
  // dropped work, no use-after-free of the stream's queue.
  GpuDevice Dev;
  Dev.setWorkers(4);
  auto Buf = Dev.alloc<int>(32);
  for (int Round = 0; Round != 50; ++Round) {
    Stream Producer(Dev);
    Event Gate;
    std::atomic<bool> Released{false};
    Producer.enqueue([&Released] {
      while (!Released.load())
        std::this_thread::yield();
    });
    Producer.record(Gate);
    {
      Stream Waiter(Dev);
      Waiter.wait(Gate);
      Waiter.enqueue([&Dev, Buf, Round] {
        launchPhases(Dev, Dim3{1}, Dim3{32}, 0,
                     [Buf, Round](BlockCtx &B, ThreadCtx &T) {
                       Buf.store(B, T.X, Round + 1);
                     });
      });
      Released = true;
    } // ~Waiter: must wait out the parked event edge, then launch
    Producer.synchronize();
    for (size_t I = 0; I != 32; ++I)
      ASSERT_EQ(Buf.data()[I], Round + 1) << "round " << Round;
  }
}

TEST(Event, RaceDetectionStaysInlineAndDeterministic) {
  // Under race detection the device forces one worker; record/wait must
  // keep executing inline so findRaces() sees the sequential log.
  auto RunRacy = [](GpuDevice &Dev, bool WithEvents) {
    auto Buf = Dev.alloc<double>(256);
    Stream A(Dev), B(Dev);
    Event E;
    auto Racy = [&Dev, Buf] {
      launchPhases(Dev, Dim3{1}, Dim3{256}, 0,
                   [Buf](BlockCtx &Blk, ThreadCtx &T) {
                     Buf.store(Blk, T.X, Buf.load(Blk, 255 - T.X));
                   });
    };
    if (WithEvents) {
      A.enqueue(Racy);
      A.record(E);
      EXPECT_TRUE(E.query()) << "inline record must complete immediately";
      B.wait(E); // must not deadlock on the sequential device
    } else {
      A.enqueue(Racy);
    }
    A.synchronize();
    B.synchronize();
    return Dev.findRaces();
  };
  GpuDevice Plain, Evented;
  Plain.setRaceDetection(true);
  Evented.setRaceDetection(true);
  auto RPlain = RunRacy(Plain, false);
  auto REvented = RunRacy(Evented, true);
  ASSERT_FALSE(RPlain.empty());
  ASSERT_EQ(RPlain.size(), REvented.size());
  for (size_t I = 0; I != RPlain.size(); ++I)
    EXPECT_EQ(RPlain[I].str(), REvented[I].str());
}

TEST(Event, CrossDeviceWaitFromSequentialConsumer) {
  // A sequential (1-worker) stream waiting on an event recorded by a
  // multi-worker device must block the calling thread until the recorder
  // finishes — the inline path cannot park.
  GpuDevice Producer, Consumer;
  Producer.setWorkers(4);
  Consumer.setWorkers(1);
  auto Buf = Producer.alloc<double>(64);
  Stream P(Producer), C(Consumer);
  enqueueAdd(P, Producer, Buf, 2.5, 2, 32);
  Event Done;
  P.record(Done);
  C.wait(Done);
  double Seen = -1.0;
  C.enqueue([Buf, &Seen] { Seen = Buf.data()[0]; });
  C.synchronize();
  EXPECT_EQ(Seen, 2.5);
  P.synchronize();
}

//===----------------------------------------------------------------------===//
// Launch graphs
//===----------------------------------------------------------------------===//

TEST(Graph, CaptureReplayMatchesDirectExecution) {
  GpuDevice Dev;
  Dev.setWorkers(4);
  const size_t N = 4 * 32;
  descend::rt::HostBuffer<double> Host(N, 0.0);
  Stream S(Dev);
  S.beginCapture();
  EXPECT_TRUE(S.capturing());
  auto D = descend::rt::allocCopyCapture<double>(S, 0, N);
  S.enqueue([&Dev, D] {
    launchPhases(Dev, Dim3{4}, Dim3{32}, 0, [D](BlockCtx &B, ThreadCtx &T) {
      size_t I = B.X * 32 + T.X;
      D.store(B, I, D.load(B, I) * 2.0 + 1.0);
    });
  });
  descend::rt::copyToHostCapture(S, 0, D);
  Graph G = S.endCapture();
  EXPECT_FALSE(S.capturing());
  EXPECT_EQ(G.opCount(), 3u);
  EXPECT_EQ(G.slotCount(), 1u);

  GraphExec Exec = G.instantiate();
  ASSERT_TRUE(Exec.instantiated());
  for (int Round = 0; Round != 4; ++Round) {
    for (size_t I = 0; I != N; ++I)
      Host[I] = static_cast<double>(I + Round);
    Exec.bind(0, Host);
    Exec.launch(S);
    S.synchronize();
    for (size_t I = 0; I != N; ++I)
      ASSERT_EQ(Host[I], static_cast<double>(I + Round) * 2.0 + 1.0)
          << "round " << Round << " index " << I;
  }
}

TEST(Graph, RebindServesDifferentBuffersPerReplay) {
  GpuDevice Dev;
  Dev.setWorkers(2);
  const size_t N = 64;
  Stream S(Dev);
  S.beginCapture();
  auto D = descend::rt::allocCopyCapture<double>(S, 0, N);
  S.enqueue([&Dev, D] {
    launchPhases(Dev, Dim3{2}, Dim3{32}, 0, [D](BlockCtx &B, ThreadCtx &T) {
      size_t I = B.X * 32 + T.X;
      D.store(B, I, D.load(B, I) + 10.0);
    });
  });
  descend::rt::copyToHostCapture(S, 0, D);
  GraphExec Exec = S.endCapture().instantiate();

  descend::rt::HostBuffer<double> A(N, 1.0), B(N, 2.0);
  Exec.bind(0, A);
  Exec.launch(S);
  S.synchronize();
  Exec.bind(0, B);
  Exec.launch(S);
  S.synchronize();
  for (size_t I = 0; I != N; ++I) {
    EXPECT_EQ(A[I], 11.0);
    EXPECT_EQ(B[I], 12.0);
  }
}

TEST(Graph, BindValidatesSlotAndSize) {
  GpuDevice Dev;
  Dev.setWorkers(2);
  Stream S(Dev);
  S.beginCapture();
  auto D = descend::rt::allocCopyCapture<double>(S, 0, 64);
  (void)D;
  GraphExec Exec = S.endCapture().instantiate();
  descend::rt::HostBuffer<double> Right(64, 0.0), Wrong(32, 0.0);
  // The structured texts name the slot, the sizes, and the binding so a
  // failed launch is diagnosable without a debugger — pin them.
  try {
    Exec.bind(1, Right, "Right"); // unknown slot
    FAIL() << "expected invalid_argument for an undeclared slot";
  } catch (const std::invalid_argument &E) {
    EXPECT_NE(std::string(E.what())
                  .find("graph slot 1: not declared by the capture "
                        "(binding `Right`)"),
              std::string::npos)
        << E.what();
  }
  try {
    Exec.bind(0, Wrong, "Wrong"); // wrong size: 256 bytes vs 512 captured
    FAIL() << "expected invalid_argument for a size mismatch";
  } catch (const std::invalid_argument &E) {
    std::string What = E.what();
    EXPECT_NE(What.find("graph slot 0"), std::string::npos) << What;
    EXPECT_NE(What.find("bound 256 bytes from `Wrong`, captured 512"),
              std::string::npos)
        << What;
  }
  try {
    Exec.launch(S); // slot unbound
    FAIL() << "expected logic_error for an unbound slot";
  } catch (const std::logic_error &E) {
    std::string What = E.what();
    EXPECT_NE(What.find("GraphExec::launch: slot 0"), std::string::npos)
        << What;
    EXPECT_NE(What.find("is unbound"), std::string::npos) << What;
    EXPECT_NE(What.find("bind() every declared slot"), std::string::npos)
        << What;
  }
  Exec.bind(0, Right);
  Exec.launch(S);
  S.synchronize();
}

TEST(Graph, CaptureApiMisuseThrows) {
  GpuDevice Dev;
  Dev.setWorkers(2);
  Stream S(Dev);
  EXPECT_THROW(S.endCapture(), std::logic_error); // no beginCapture
  EXPECT_THROW(S.captureNode([](const GraphExec &) {}), std::logic_error);
  EXPECT_THROW(S.declareCaptureSlot(0, 8), std::logic_error);
  S.beginCapture();
  EXPECT_THROW(S.beginCapture(), std::logic_error); // nested capture
  S.declareCaptureSlot(0, 16);
  S.declareCaptureSlot(0, 16); // re-declaring the same size is fine
  EXPECT_THROW(S.declareCaptureSlot(0, 8), std::invalid_argument);
  Graph G = S.endCapture();
  EXPECT_EQ(G.opCount(), 0u);
  EXPECT_THROW(Graph().instantiate(), std::logic_error); // empty handle
  EXPECT_THROW(GraphExec().launch(S), std::logic_error); // uninstantiated
}

TEST(Graph, EventsInsideACaptureReplayPerLaunch) {
  // record inside a capture re-arms the event at every replay (the
  // generation is minted when the node runs, not at capture time).
  GpuDevice Dev;
  Dev.setWorkers(2);
  Stream S(Dev);
  Event E;
  S.beginCapture();
  S.enqueue([] {});
  S.record(E);
  GraphExec Exec = S.endCapture().instantiate();
  EXPECT_TRUE(E.query()) << "capture must not arm the event";
  for (int Round = 0; Round != 3; ++Round) {
    Exec.launch(S);
    S.synchronize();
    EXPECT_TRUE(E.query()) << "round " << Round;
  }
}

TEST(Graph, CaptureUnderRaceDetectionStillReplays) {
  // Race detection forces sequential execution; capture must still
  // record (not execute inline) and the replay must produce the same
  // result as everywhere else.
  GpuDevice Dev;
  Dev.setRaceDetection(true);
  const size_t N = 32;
  Stream S(Dev);
  S.beginCapture();
  auto D = descend::rt::allocCopyCapture<double>(S, 0, N);
  S.enqueue([&Dev, D] {
    launchPhases(Dev, Dim3{1}, Dim3{32}, 0, [D](BlockCtx &B, ThreadCtx &T) {
      D.store(B, T.X, D.load(B, T.X) * 3.0);
    });
  });
  descend::rt::copyToHostCapture(S, 0, D);
  GraphExec Exec = S.endCapture().instantiate();
  descend::rt::HostBuffer<double> Host(N, 2.0);
  Exec.bind(0, Host);
  Exec.launch(S);
  S.synchronize();
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Host[I], 6.0);
  EXPECT_TRUE(Dev.findRaces().empty());
}

//===----------------------------------------------------------------------===//
// DESCEND_WORKERS parsing (hardened env handling)
//===----------------------------------------------------------------------===//

TEST(WorkerEnv, ValidCountsParse) {
  std::string W;
  EXPECT_EQ(detail::parseWorkerCount("1", &W), 1u);
  EXPECT_TRUE(W.empty());
  EXPECT_EQ(detail::parseWorkerCount("8", &W), 8u);
  EXPECT_TRUE(W.empty());
  EXPECT_EQ(detail::parseWorkerCount("4096", &W), 4096u);
  EXPECT_TRUE(W.empty());
}

TEST(WorkerEnv, UnsetMeansDefaultWithoutWarning) {
  std::string W;
  EXPECT_EQ(detail::parseWorkerCount(nullptr, &W), 0u);
  EXPECT_TRUE(W.empty());
}

TEST(WorkerEnv, GarbageFallsBackWithWarning) {
  for (const char *Bad : {"", "abc", "4x", "x4", "1.5", " 2", "2 "}) {
    std::string W;
    EXPECT_EQ(detail::parseWorkerCount(Bad, &W), 0u) << "input: " << Bad;
    EXPECT_NE(W.find("is not a number"), std::string::npos)
        << "input: " << Bad << " warning: " << W;
    EXPECT_NE(W.find("DESCEND_WORKERS"), std::string::npos);
  }
}

TEST(WorkerEnv, ZeroNegativeAndHugeFallBackWithWarning) {
  for (const char *Bad : {"0", "-1", "-4096", "4097", "99999999999999999999"}) {
    std::string W;
    EXPECT_EQ(detail::parseWorkerCount(Bad, &W), 0u) << "input: " << Bad;
    EXPECT_NE(W.find("out of range"), std::string::npos)
        << "input: " << Bad << " warning: " << W;
  }
}

//===----------------------------------------------------------------------===//
// DESCEND_TRACE parsing (the DESCEND_WORKERS strictness discipline)
//===----------------------------------------------------------------------===//

TEST(TraceEnv, UnsetAndExplicitOffAreSilent) {
  std::string Path, W = "sentinel";
  EXPECT_FALSE(descend::obs::parseTraceEnv(nullptr, &Path, &W));
  EXPECT_TRUE(W.empty());
  EXPECT_FALSE(descend::obs::parseTraceEnv("0", &Path, &W));
  EXPECT_TRUE(W.empty());
  EXPECT_FALSE(descend::obs::parseTraceEnv("off", &Path, &W));
  EXPECT_TRUE(W.empty());
}

TEST(TraceEnv, OnSelectsTheDefaultPath) {
  for (const char *On : {"1", "on"}) {
    std::string Path, W;
    EXPECT_TRUE(descend::obs::parseTraceEnv(On, &Path, &W)) << On;
    EXPECT_EQ(Path, descend::obs::DefaultTracePath) << On;
    EXPECT_TRUE(W.empty()) << On;
  }
}

TEST(TraceEnv, CleanTokenIsTheOutputPath) {
  std::string Path, W;
  EXPECT_TRUE(descend::obs::parseTraceEnv("/tmp/my_trace.json", &Path, &W));
  EXPECT_EQ(Path, "/tmp/my_trace.json");
  EXPECT_TRUE(W.empty());
}

TEST(TraceEnv, GarbageDisablesWithWarning) {
  for (const char *Bad : {"", " ", "a b", "x\ty", "p\nq", " on", "on "}) {
    std::string Path, W;
    EXPECT_FALSE(descend::obs::parseTraceEnv(Bad, &Path, &W))
        << "input: '" << Bad << "'";
    EXPECT_NE(W.find("DESCEND_TRACE"), std::string::npos)
        << "input: '" << Bad << "' warning: " << W;
    EXPECT_NE(W.find("tracing is off"), std::string::npos) << W;
  }
}

} // namespace
