//===- tests/runtime_test.cpp - Host runtime API tests ----------------------===//
//
// Dedicated tests for runtime/HostRuntime.h: the checked CPU<->GPU
// transfer and launch-configuration API that handwritten host code uses
// (and that the hostgen-generated sim drivers call into). The checks here
// are the *runtime* mirror of what the type checker proves statically for
// .descend host programs.
//
//===----------------------------------------------------------------------===//

#include "runtime/HostRuntime.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace descend;

namespace {

TEST(HostRuntime, HostBufferConstructionAndAccess) {
  rt::HostBuffer<double> Fill(16, 2.5);
  EXPECT_EQ(Fill.size(), 16u);
  EXPECT_EQ(Fill[15], 2.5);

  rt::HostBuffer<int> FromVec(std::vector<int>{1, 2, 3});
  EXPECT_EQ(FromVec.size(), 3u);
  EXPECT_EQ(FromVec[2], 3);

  FromVec[0] = 7;
  EXPECT_EQ(FromVec.data()[0], 7);
}

TEST(HostRuntime, HostBufferIndexIsBoundsChecked) {
  rt::HostBuffer<double> B(4, 0.0);
  EXPECT_THROW(B[4], std::out_of_range);
}

TEST(HostRuntime, AllocCopyRoundTrips) {
  sim::GpuDevice Dev;
  rt::HostBuffer<double> Host(64, 0.0);
  for (size_t I = 0; I != Host.size(); ++I)
    Host[I] = static_cast<double>(I);

  auto Buf = rt::allocCopy(Dev, Host);
  ASSERT_EQ(Buf.size(), Host.size());
  EXPECT_EQ(Buf.data()[63], 63.0);

  rt::HostBuffer<double> Back(64, -1.0);
  rt::copyToHost(Back, Buf);
  for (size_t I = 0; I != Back.size(); ++I)
    EXPECT_EQ(Back[I], static_cast<double>(I));
}

TEST(HostRuntime, CopyToGpuHappyPath) {
  sim::GpuDevice Dev;
  auto Buf = Dev.alloc<double>(8);
  rt::HostBuffer<double> Host(8, 3.25);
  rt::copyToGpu(Buf, Host);
  EXPECT_EQ(Buf.data()[7], 3.25);
}

TEST(HostRuntime, CopyToHostSizeMismatchThrows) {
  sim::GpuDevice Dev;
  auto Buf = Dev.alloc<double>(32);
  rt::HostBuffer<double> TooSmall(16, 0.0);
  EXPECT_THROW(rt::copyToHost(TooSmall, Buf), std::runtime_error);
  rt::HostBuffer<double> TooBig(64, 0.0);
  EXPECT_THROW(rt::copyToHost(TooBig, Buf), std::runtime_error);
  // The structured form: an rt::Error classified CopyFailed whose text
  // names both buffers and their element counts. Generated drivers pass
  // the host variable names, so the diagnostic reads like the source.
  try {
    rt::copyToHost(TooSmall, Buf, "host_out", "d_data");
    FAIL() << "expected rt::Error for a size mismatch";
  } catch (const rt::Error &E) {
    EXPECT_EQ(E.code(), sim::ErrorCode::CopyFailed);
    EXPECT_NE(std::string(E.what())
                  .find("copy_mem_to_host: size mismatch: destination "
                        "`host_out` holds 16 elements, source `d_data` "
                        "holds 32"),
              std::string::npos)
        << E.what();
  }
}

TEST(HostRuntime, CopyToGpuSizeMismatchThrows) {
  sim::GpuDevice Dev;
  auto Buf = Dev.alloc<double>(16);
  rt::HostBuffer<double> Host(32, 0.0);
  EXPECT_THROW(rt::copyToGpu(Buf, Host), std::runtime_error);
  try {
    rt::copyToGpu(Buf, Host, "d_data", "host_in");
    FAIL() << "expected rt::Error for a size mismatch";
  } catch (const rt::Error &E) {
    EXPECT_EQ(E.code(), sim::ErrorCode::CopyFailed);
    EXPECT_NE(std::string(E.what())
                  .find("copy_to_gpu: size mismatch: destination `d_data` "
                        "holds 16 elements, source `host_in` holds 32"),
              std::string::npos)
        << E.what();
  }
  // Unnamed call sites degrade to `?`, never to garbage.
  try {
    rt::copyToGpu(Buf, Host);
    FAIL() << "expected rt::Error for a size mismatch";
  } catch (const rt::Error &E) {
    EXPECT_NE(std::string(E.what()).find("destination `?`"),
              std::string::npos)
        << E.what();
  }
}

TEST(HostRuntime, CheckLaunchConfigAcceptsExactCover) {
  EXPECT_NO_THROW(
      rt::checkLaunchConfig(sim::Dim3{16}, sim::Dim3{256}, 16 * 256));
  EXPECT_NO_THROW(
      rt::checkLaunchConfig(sim::Dim3{4, 4}, sim::Dim3{8, 8}, 1024));
}

TEST(HostRuntime, CheckLaunchConfigRejectsMismatch) {
  // The Section 2.3 bug: 1 block of 8192 threads for 2^20 elements.
  EXPECT_THROW(rt::checkLaunchConfig(sim::Dim3{1}, sim::Dim3{8192}, 1u << 20),
               std::runtime_error);
  try {
    rt::checkLaunchConfig(sim::Dim3{2}, sim::Dim3{128}, 512);
    FAIL() << "expected launch configuration mismatch";
  } catch (const std::runtime_error &E) {
    EXPECT_NE(std::string(E.what()).find("launch configuration mismatch"),
              std::string::npos);
    EXPECT_NE(std::string(E.what()).find("256 threads for 512 elements"),
              std::string::npos);
  }
}

TEST(HostRuntime, TransfersComposeIntoAWorkingPipeline) {
  // The handwritten equivalent of a generated driver: stage, "launch"
  // (host-side transform standing in for a kernel), copy back.
  sim::GpuDevice Dev;
  rt::HostBuffer<double> Host(128, 1.0);
  auto Buf = rt::allocCopy(Dev, Host);
  for (size_t I = 0; I != Buf.size(); ++I)
    Buf.data()[I] *= 2.0;
  rt::copyToHost(Host, Buf);
  double Sum = std::accumulate(Host.data(), Host.data() + Host.size(), 0.0);
  EXPECT_EQ(Sum, 256.0);
}

} // namespace
