//===- tests/sim_test.cpp - Tests for the GPU simulator substrate ---------===//

#include "sim/Sim.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace descend::sim;

namespace {

TEST(Sim, VectorScaleAllThreads) {
  GpuDevice Dev;
  auto Buf = Dev.alloc<double>(1024);
  for (size_t I = 0; I != 1024; ++I)
    Buf.data()[I] = static_cast<double>(I);

  launchPhases(Dev, Dim3{4}, Dim3{256}, 0,
               [&](BlockCtx &B, ThreadCtx &T) {
                 size_t I = B.X * 256 + T.X;
                 Buf.store(B, I, Buf.load(B, I) * 3.0);
               });

  for (size_t I = 0; I != 1024; ++I)
    EXPECT_EQ(Buf.data()[I], 3.0 * I);
}

TEST(Sim, PhasesActAsBarriers) {
  // Phase 1 reverses into shared memory, phase 2 writes back: correct only
  // if the barrier semantics hold within each block.
  GpuDevice Dev;
  auto Buf = Dev.alloc<int>(512);
  for (int I = 0; I != 512; ++I)
    Buf.data()[I] = I;

  launchPhases(
      Dev, Dim3{2}, Dim3{256}, 256 * sizeof(int),
      [&](BlockCtx &B, ThreadCtx &T) {
        B.sharedStore<int>(0, 255 - T.X, Buf.load(B, B.X * 256 + T.X));
      },
      [&](BlockCtx &B, ThreadCtx &T) {
        Buf.store(B, B.X * 256 + T.X, B.sharedLoad<int>(0, T.X));
      });

  for (int Blk = 0; Blk != 2; ++Blk)
    for (int I = 0; I != 256; ++I)
      EXPECT_EQ(Buf.data()[Blk * 256 + I], Blk * 256 + (255 - I));
}

TEST(Sim, SharedMemoryIsPerBlock) {
  GpuDevice Dev;
  auto Out = Dev.alloc<int>(8);
  launchPhases(
      Dev, Dim3{8}, Dim3{1}, sizeof(int),
      [&](BlockCtx &B, ThreadCtx &) {
        B.sharedStore<int>(0, 0, static_cast<int>(B.X) + 1);
      },
      [&](BlockCtx &B, ThreadCtx &) {
        Out.store(B, B.X, B.sharedLoad<int>(0, 0));
      });
  for (int I = 0; I != 8; ++I)
    EXPECT_EQ(Out.data()[I], I + 1);
}

TEST(Sim, MultiDimensionalCoordinates) {
  GpuDevice Dev;
  auto Out = Dev.alloc<unsigned>(2 * 3 * 4 * 5);
  launchPhases(Dev, Dim3{2, 3}, Dim3{4, 5}, 0,
               [&](BlockCtx &B, ThreadCtx &T) {
                 unsigned Idx = ((B.Y * 2 + B.X) * 5 + T.Y) * 4 + T.X;
                 Out.store(B, Idx, B.X + 10 * B.Y + 100 * T.X + 1000 * T.Y);
               });
  // Spot-check a few coordinates.
  EXPECT_EQ(Out.data()[0], 0u);
  unsigned Idx = ((2u * 2 + 1) * 5 + 4) * 4 + 3;
  EXPECT_EQ(Out.data()[Idx], 1u + 20u + 300u + 4000u);
}

TEST(Sim, RaceDetectorFindsListing1Bug) {
  // The Listing 1 transpose bug: tmp[ty + j*32 + tx] instead of
  // tmp[(ty+j)*32 + tx] makes multiple threads write the same location.
  GpuDevice Dev;
  Dev.setRaceDetection(true);
  auto In = Dev.alloc<double>(64 * 64);
  auto Out = Dev.alloc<double>(64 * 64);

  launchPhases(
      Dev, Dim3{2, 2}, Dim3{32, 8}, 32 * 32 * sizeof(double),
      [&](BlockCtx &B, ThreadCtx &T) {
        for (unsigned J = 0; J != 32; J += 8) {
          size_t Src = (B.Y * 32 + T.Y + J) * 64 + B.X * 32 + T.X;
          // BUG (intentional): missing parentheses around (T.Y + J).
          B.sharedStore<double>(0, T.Y + J * 32 + T.X, In.load(B, Src));
        }
      },
      [&](BlockCtx &B, ThreadCtx &T) {
        for (unsigned J = 0; J != 32; J += 8) {
          size_t Dst = (B.X * 32 + T.Y + J) * 64 + B.Y * 32 + T.X;
          Out.store(B, Dst, B.sharedLoad<double>(0, T.X * 32 + T.Y + J));
        }
      });

  auto Races = Dev.findRaces();
  EXPECT_FALSE(Races.empty()) << "the Listing 1 bug must be detected";
}

TEST(Sim, FixedTransposeIsRaceFree) {
  GpuDevice Dev;
  Dev.setRaceDetection(true);
  auto In = Dev.alloc<double>(64 * 64);
  auto Out = Dev.alloc<double>(64 * 64);
  for (int I = 0; I != 64 * 64; ++I)
    In.data()[I] = I;

  launchPhases(
      Dev, Dim3{2, 2}, Dim3{32, 8}, 32 * 32 * sizeof(double),
      [&](BlockCtx &B, ThreadCtx &T) {
        for (unsigned J = 0; J != 32; J += 8) {
          size_t Src = (B.Y * 32 + T.Y + J) * 64 + B.X * 32 + T.X;
          B.sharedStore<double>(0, (T.Y + J) * 32 + T.X, In.load(B, Src));
        }
      },
      [&](BlockCtx &B, ThreadCtx &T) {
        for (unsigned J = 0; J != 32; J += 8) {
          size_t Dst = (B.X * 32 + T.Y + J) * 64 + B.Y * 32 + T.X;
          Out.store(B, Dst, B.sharedLoad<double>(0, T.X * 32 + T.Y + J));
        }
      });

  EXPECT_TRUE(Dev.findRaces().empty());
  // And it really is the transpose.
  for (int R = 0; R != 64; ++R)
    for (int C = 0; C != 64; ++C)
      EXPECT_EQ(Out.data()[C * 64 + R], In.data()[R * 64 + C]);
}

TEST(Sim, RaceAcrossPhaseIsNotReported) {
  // Write in phase 0, read by a different thread in phase 1: ordered by
  // the barrier, hence no race.
  GpuDevice Dev;
  Dev.setRaceDetection(true);
  auto Buf = Dev.alloc<int>(256);
  launchPhases(
      Dev, Dim3{1}, Dim3{256}, 0,
      [&](BlockCtx &B, ThreadCtx &T) { Buf.store(B, T.X, (int)T.X); },
      [&](BlockCtx &B, ThreadCtx &T) {
        (void)Buf.load(B, 255 - T.X);
      });
  EXPECT_TRUE(Dev.findRaces().empty());
}

TEST(Sim, RaceWithinPhaseIsReported) {
  // rev_per_block from Section 2.2: in-place reversal in a single phase.
  GpuDevice Dev;
  Dev.setRaceDetection(true);
  auto Buf = Dev.alloc<double>(256);
  launchPhases(Dev, Dim3{1}, Dim3{256}, 0,
               [&](BlockCtx &B, ThreadCtx &T) {
                 Buf.store(B, T.X, Buf.load(B, 255 - T.X));
               });
  EXPECT_FALSE(Dev.findRaces().empty());
}

TEST(Sim, CrossBlockRaceIsReported) {
  // Two blocks write the same global location: never safe in one kernel.
  GpuDevice Dev;
  Dev.setRaceDetection(true);
  auto Buf = Dev.alloc<int>(4);
  launchPhases(Dev, Dim3{2}, Dim3{1}, 0,
               [&](BlockCtx &B, ThreadCtx &) { Buf.store(B, 0, (int)B.X); });
  EXPECT_FALSE(Dev.findRaces().empty());
}

TEST(Sim, ReadsAloneDoNotRace) {
  GpuDevice Dev;
  Dev.setRaceDetection(true);
  auto Buf = Dev.alloc<int>(1);
  launchPhases(Dev, Dim3{4}, Dim3{64}, 0,
               [&](BlockCtx &B, ThreadCtx &) { (void)Buf.load(B, 0); });
  EXPECT_TRUE(Dev.findRaces().empty());
}

TEST(Sim, BoundsCheckingCatchesOverrun) {
  // The Section 2.3 bug: launching with more threads than elements.
  GpuDevice Dev;
  Dev.setBoundsChecking(true);
  auto Buf = Dev.alloc<double>(100);
  launchPhases(Dev, Dim3{1}, Dim3{256}, 0,
               [&](BlockCtx &B, ThreadCtx &T) { Buf.store(B, T.X, 1.0); });
  EXPECT_EQ(Dev.boundsViolations().size(), 156u);
  EXPECT_EQ(Dev.boundsViolations()[0].Size, 100u);
}

TEST(Sim, ParallelBlockExecutionMatchesSequential) {
  // Histogram-free reduction: each block sums its slice.
  const size_t N = 1 << 16;
  std::vector<double> Expected(64, 0);
  GpuDevice Seq, Par;
  Seq.setWorkers(1);
  Par.setWorkers(8);
  for (GpuDevice *Dev : {&Seq, &Par}) {
    auto In = Dev->alloc<double>(N);
    auto Out = Dev->alloc<double>(64);
    for (size_t I = 0; I != N; ++I)
      In.data()[I] = static_cast<double>(I % 97);
    launchPhases(*Dev, Dim3{64}, Dim3{1}, 0,
                 [&](BlockCtx &B, ThreadCtx &) {
                   double Sum = 0;
                   for (size_t I = 0; I != N / 64; ++I)
                     Sum += In.load(B, B.X * (N / 64) + I);
                   Out.store(B, B.X, Sum);
                 });
    if (Dev == &Seq)
      for (int I = 0; I != 64; ++I)
        Expected[I] = Out.data()[I];
    else
      for (int I = 0; I != 64; ++I)
        EXPECT_EQ(Out.data()[I], Expected[I]);
  }
}

TEST(Sim, ProgramLoopBindsLoopVarPerIteration) {
  // Accumulate the loop variable per thread: loopVar(0) must be bound
  // before each iteration's phases run.
  GpuDevice Dev;
  auto Out = Dev.alloc<long long>(64);
  PhaseProgram Prog;
  Prog.loopBegin(0, 0, 5);
  Prog.straight([&](BlockCtx &B, ThreadCtx &T) {
    size_t I = B.X * 32 + T.X;
    Out.store(B, I, Out.load(B, I) + B.loopVar(0));
  });
  Prog.loopEnd();
  launchProgram(Dev, Dim3{2}, Dim3{32}, 0, Prog);
  for (int I = 0; I != 64; ++I)
    EXPECT_EQ(Out.data()[I], 0 + 1 + 2 + 3 + 4);
}

TEST(Sim, ProgramLoopBoundsReadOuterLoopVars) {
  // Triangular nest: inner bound = outer var + 1; total iterations of a
  // [0..4) outer loop are 1+2+3+4 = 10.
  GpuDevice Dev;
  auto Out = Dev.alloc<int>(1);
  PhaseProgram Prog;
  Prog.loopBegin(0, 0, 4);
  Prog.loopBegin(
      1, [](const BlockCtx &) -> long long { return 0; },
      [](const BlockCtx &B) -> long long { return B.loopVar(0) + 1; });
  Prog.straight([&](BlockCtx &B, ThreadCtx &) {
    Out.store(B, 0, Out.load(B, 0) + 1);
  });
  Prog.loopEnd();
  Prog.loopEnd();
  launchProgram(Dev, Dim3{1}, Dim3{1}, 0, Prog);
  EXPECT_EQ(Out.data()[0], 10);
}

TEST(Sim, ProgramPhasesActAsBarriersAcrossIterations) {
  // Ping-pong through shared memory inside a program loop: phase
  // boundaries must order iterations exactly like unrolled phases, and
  // the race detector must see distinct phases per iteration.
  GpuDevice Dev;
  Dev.setRaceDetection(true);
  auto Buf = Dev.alloc<int>(256);
  for (int I = 0; I != 256; ++I)
    Buf.data()[I] = I;
  PhaseProgram Prog;
  Prog.loopBegin(0, 0, 3);
  Prog.straight([&](BlockCtx &B, ThreadCtx &T) {
    B.sharedStore<int>(0, 255 - T.X, Buf.load(B, T.X));
  });
  Prog.straight([&](BlockCtx &B, ThreadCtx &T) {
    Buf.store(B, T.X, B.sharedLoad<int>(0, T.X));
  });
  Prog.loopEnd();
  launchProgram(Dev, Dim3{1}, Dim3{256}, 256 * sizeof(int), Prog);
  // Three reversals = one reversal.
  for (int I = 0; I != 256; ++I)
    EXPECT_EQ(Buf.data()[I], 255 - I);
  EXPECT_TRUE(Dev.findRaces().empty());
}

TEST(Sim, ProgramMatchesEquivalentUnrolledPhases) {
  // The same kernel as launchPhases straight-line phases and as a
  // PhaseProgram loop must produce identical memory.
  auto Run = [](GpuDevice &Dev, GpuDevice::Buffer<double> Buf, bool Loop) {
    if (!Loop) {
      auto Phase = [&](BlockCtx &B, ThreadCtx &T) {
        size_t I = B.X * 64 + T.X;
        Buf.store(B, I, Buf.load(B, I) * 2.0 + 1.0);
      };
      launchPhases(Dev, Dim3{2}, Dim3{64}, 0, Phase, Phase, Phase);
      return;
    }
    PhaseProgram Prog;
    Prog.loopBegin(0, 0, 3);
    Prog.straight([&](BlockCtx &B, ThreadCtx &T) {
      size_t I = B.X * 64 + T.X;
      Buf.store(B, I, Buf.load(B, I) * 2.0 + 1.0);
    });
    Prog.loopEnd();
    launchProgram(Dev, Dim3{2}, Dim3{64}, 0, Prog);
  };
  GpuDevice DevA, DevB;
  auto BufA = DevA.alloc<double>(128);
  auto BufB = DevB.alloc<double>(128);
  for (int I = 0; I != 128; ++I)
    BufA.data()[I] = BufB.data()[I] = I * 0.25;
  Run(DevA, BufA, false);
  Run(DevB, BufB, true);
  for (int I = 0; I != 128; ++I)
    EXPECT_EQ(BufA.data()[I], BufB.data()[I]);
}

TEST(Sim, ClearLogsResets) {
  GpuDevice Dev;
  Dev.setRaceDetection(true);
  auto Buf = Dev.alloc<int>(1);
  launchPhases(Dev, Dim3{2}, Dim3{1}, 0,
               [&](BlockCtx &B, ThreadCtx &) { Buf.store(B, 0, 1); });
  EXPECT_FALSE(Dev.findRaces().empty());
  Dev.clearLogs();
  EXPECT_TRUE(Dev.findRaces().empty());
}

} // namespace
