//===- tests/kernels_test.cpp - The shipped benchmark kernels -------------===//
//
// Integration tests over the kernels/ directory: each shipped Descend
// source must parse, type-check (generically and instantiated), and emit
// both backends without errors; mutated variants must fail.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace descend;

namespace {

std::string readKernel(const std::string &Name) {
  std::ifstream In(std::string(DESCEND_KERNEL_DIR "/") + Name);
  EXPECT_TRUE(In.good()) << "missing kernel " << Name;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

struct KernelCase {
  const char *File;
  const char *DefineName;
  long long DefineValue;
  /// Whether the kernel checks with the size left symbolic. Kernels whose
  /// side conditions (n % 32 == 0, nb >= 1) are unprovable for free
  /// variables require instantiation — Descend's static-only discipline.
  bool GenericOk;
};

class ShippedKernelTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(ShippedKernelTest, GenericCheckMatchesProvability) {
  KernelCase K = GetParam();
  Compiler C;
  bool Ok = C.compile(K.File, readKernel(K.File));
  EXPECT_EQ(Ok, K.GenericOk) << C.renderDiagnostics();
}

TEST_P(ShippedKernelTest, ChecksAndEmitsInstantiated) {
  KernelCase K = GetParam();
  Compiler C;
  CompileOptions Options;
  Options.Defines[K.DefineName] = K.DefineValue;
  ASSERT_TRUE(C.compile(K.File, readKernel(K.File), Options))
      << C.renderDiagnostics();
  std::string Error;
  std::string Cuda = C.emitCudaCode(&Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_FALSE(Cuda.empty());
  std::string Sim = C.emitSimCode(&Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_FALSE(Sim.empty());
  // Generated code carries no view machinery and no unfolded powers.
  EXPECT_EQ(Sim.find("group"), Sim.find("group_by") /* only in comments */);
  EXPECT_EQ(Cuda.find(" ^ "), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, ShippedKernelTest,
    ::testing::Values(
        KernelCase{"transpose.descend", "n", 256, false}, // needs n % 32 == 0
        KernelCase{"reduce.descend", "nb", 8, true},
        KernelCase{"scan.descend", "nb", 8, false}, // needs nb >= 1
        KernelCase{"matmul.descend", "nt", 4, true},
        KernelCase{"scale_vec.descend", "nb", 4, true}));

TEST(ShippedKernels, TransposeWithoutSyncFails) {
  std::string Src = readKernel("transpose.descend");
  size_t Pos = Src.find("sync;");
  ASSERT_NE(Pos, std::string::npos);
  Src.erase(Pos, 5);
  Compiler C;
  CompileOptions Options;
  Options.Defines["n"] = 256;
  EXPECT_FALSE(C.compile("transpose.descend", Src, Options));
  EXPECT_TRUE(C.diagnostics().contains(DiagCode::ConflictingMemoryAccess))
      << C.renderDiagnostics();
}

TEST(ShippedKernels, ReduceWithWrongSplitFails) {
  // Splitting at the full width instead of half makes fst/snd overlap the
  // read region boundary: the shape checks reject the snd-of-snd select.
  std::string Src = readKernel("reduce.descend");
  std::string From = "split(X) block at 256 / 2^(s+1)";
  size_t Pos = Src.find(From);
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, From.size(), "split(X) block at 256 / 2^s");
  Compiler C;
  CompileOptions Options;
  Options.Defines["nb"] = 8;
  EXPECT_FALSE(C.compile("reduce.descend", Src, Options))
      << "overlapping reduction halves must be rejected";
}

TEST(ShippedKernels, MatmulNeedsBothSyncs) {
  std::string Src = readKernel("matmul.descend");
  // Remove the barrier between the tile load and the accumulation.
  size_t Pos = Src.find("sync;");
  ASSERT_NE(Pos, std::string::npos);
  Src.erase(Pos, 5);
  Compiler C;
  CompileOptions Options;
  Options.Defines["nt"] = 2;
  EXPECT_FALSE(C.compile("matmul.descend", Src, Options));
  EXPECT_TRUE(C.diagnostics().contains(DiagCode::ConflictingMemoryAccess))
      << C.renderDiagnostics();
}

} // namespace
