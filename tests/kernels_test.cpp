//===- tests/kernels_test.cpp - The shipped benchmark kernels -------------===//
//
// Integration tests over the kernels/ directory: each shipped Descend
// source must parse, type-check (generically and instantiated), and emit
// both backends without errors; mutated variants must fail. The matmul
// kernel additionally executes through the phase-program runtime
// (sim::launchProgram, via its build-time generated header) and must be
// bit-identical to the handwritten baseline.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "bench/handwritten.h"
#include "gen_matmul_small.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace descend;

namespace {

/// Type-checks \p Source with \p Defines through the staged pipeline.
bool checks(const std::string &File, const std::string &Source,
            std::map<std::string, long long> Defines, std::string *Rendered) {
  CompilerInvocation Inv;
  Inv.BufferName = File;
  Inv.Defines = std::move(Defines);
  Inv.RunUntil = Stage::Typecheck;
  Session S(Inv);
  bool Ok = S.run(Source).Ok;
  if (Rendered)
    *Rendered = S.renderDiagnostics();
  return Ok;
}

std::string readKernel(const std::string &Name) {
  std::ifstream In(std::string(DESCEND_KERNEL_DIR "/") + Name);
  EXPECT_TRUE(In.good()) << "missing kernel " << Name;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

struct KernelCase {
  const char *File;
  const char *DefineName;
  long long DefineValue;
  /// Whether the kernel checks with the size left symbolic. Kernels whose
  /// side conditions (n % 32 == 0, nb >= 1) are unprovable for free
  /// variables require instantiation — Descend's static-only discipline.
  bool GenericOk;
};

class ShippedKernelTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(ShippedKernelTest, GenericCheckMatchesProvability) {
  KernelCase K = GetParam();
  std::string Rendered;
  bool Ok = checks(K.File, readKernel(K.File), {}, &Rendered);
  EXPECT_EQ(Ok, K.GenericOk) << Rendered;
}

TEST_P(ShippedKernelTest, ChecksAndEmitsInstantiated) {
  KernelCase K = GetParam();
  CompilerInvocation Inv;
  Inv.BufferName = K.File;
  Inv.Defines[K.DefineName] = K.DefineValue;
  Inv.RunUntil = Stage::Typecheck;
  Session S(Inv);
  ASSERT_TRUE(S.run(readKernel(K.File)).Ok) << S.renderDiagnostics();

  const codegen::BackendRegistry &R = codegen::BackendRegistry::instance();
  codegen::GenResult Cuda =
      R.lookup("cuda")->emit(*S.module(), codegen::BackendOptions());
  EXPECT_TRUE(Cuda.Ok) << Cuda.Error;
  EXPECT_FALSE(Cuda.Code.empty());
  codegen::GenResult Sim =
      R.lookup("sim")->emit(*S.module(), codegen::BackendOptions());
  EXPECT_TRUE(Sim.Ok) << Sim.Error;
  EXPECT_FALSE(Sim.Code.empty());
  // Generated code carries no view machinery and no unfolded powers.
  EXPECT_EQ(Sim.Code.find("group"),
            Sim.Code.find("group_by") /* only in comments */);
  EXPECT_EQ(Cuda.Code.find(" ^ "), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, ShippedKernelTest,
    ::testing::Values(
        KernelCase{"transpose.descend", "n", 256, false}, // needs n % 32 == 0
        KernelCase{"reduce.descend", "nb", 8, true},
        KernelCase{"scan.descend", "nb", 8, false}, // needs nb >= 1
        KernelCase{"matmul.descend", "nt", 4, true},
        KernelCase{"scale_vec.descend", "nb", 4, true}));

TEST(ShippedKernels, TransposeWithoutSyncFails) {
  std::string Src = readKernel("transpose.descend");
  size_t Pos = Src.find("sync;");
  ASSERT_NE(Pos, std::string::npos);
  Src.erase(Pos, 5);
  CompilerInvocation Inv;
  Inv.BufferName = "transpose.descend";
  Inv.Defines["n"] = 256;
  Inv.RunUntil = Stage::Typecheck;
  Session S(Inv);
  EXPECT_FALSE(S.run(Src).Ok);
  EXPECT_TRUE(S.diagnostics().contains(DiagCode::ConflictingMemoryAccess))
      << S.renderDiagnostics();
}

TEST(ShippedKernels, ReduceWithWrongSplitFails) {
  // Splitting at the full width instead of half makes fst/snd overlap the
  // read region boundary: the shape checks reject the snd-of-snd select.
  std::string Src = readKernel("reduce.descend");
  std::string From = "split(X) block at 256 / 2^(s+1)";
  size_t Pos = Src.find(From);
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, From.size(), "split(X) block at 256 / 2^s");
  EXPECT_FALSE(checks("reduce.descend", Src, {{"nb", 8}}, nullptr))
      << "overlapping reduction halves must be rejected";
}

TEST(ShippedKernels, MatmulThroughLaunchProgramMatchesHandwritten) {
  // The generated matmul runs its tile loop host-side through
  // sim::launchProgram (one PhaseLoop, constant phase count). Same tile
  // order and same accumulation order as the handwritten kernel, so the
  // results must be bit-identical, not merely close.
  const unsigned NT = 4, N = NT * 16;
  sim::GpuDevice Dev;
  auto A = Dev.alloc<double>((size_t)N * N);
  auto B = Dev.alloc<double>((size_t)N * N);
  auto CHand = Dev.alloc<double>((size_t)N * N);
  auto CGen = Dev.alloc<double>((size_t)N * N);
  for (size_t I = 0; I != (size_t)N * N; ++I) {
    A.data()[I] = static_cast<double>((I * 7) % 13) - 6.0 + 1.0 / (1 + I % 5);
    B.data()[I] = static_cast<double>((I * 11) % 9) - 4.0 + 1.0 / (2 + I % 3);
  }

  hand::matmul(Dev, A, B, CHand, NT);
  gen::matmul(Dev, A, B, CGen);

  for (size_t I = 0; I != (size_t)N * N; ++I)
    ASSERT_EQ(CHand.data()[I], CGen.data()[I])
        << "bitwise mismatch at " << I;
}

TEST(ShippedKernels, MatmulNeedsBothSyncs) {
  std::string Src = readKernel("matmul.descend");
  // Remove the barrier between the tile load and the accumulation.
  size_t Pos = Src.find("sync;");
  ASSERT_NE(Pos, std::string::npos);
  Src.erase(Pos, 5);
  CompilerInvocation Inv;
  Inv.BufferName = "matmul.descend";
  Inv.Defines["nt"] = 2;
  Inv.RunUntil = Stage::Typecheck;
  Session S(Inv);
  EXPECT_FALSE(S.run(Src).Ok);
  EXPECT_TRUE(S.diagnostics().contains(DiagCode::ConflictingMemoryAccess))
      << S.renderDiagnostics();
}

} // namespace
