//===- tests/driver_test.cpp - Driver-level Session tests -----------------===//
//
// Driver-level expectations over the Session API: instantiation
// behaviour, symbolic checking, diagnostics rendering and the fn-suffix
// plumbing. These pins predate the staged pipeline (they covered the
// removed `Compiler` facade) and were migrated 1:1 to Session so the
// behaviour the facade guaranteed stays guaranteed. Pipeline-shape
// coverage (stage order, timings, registry) lives in pipeline_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace descend;

namespace {

const char *PolyKernel = R"(
fn scale<nb: nat>(vec: &uniq gpu.global [f64; nb*256])
-[grid: gpu.grid<X<nb>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<256>[[block]][[thread]] =
        vec.group::<256>[[block]][[thread]] * 2.0
    }
  }
}
)";

/// Type-checks \p Source with \p Defines; the session is returned through
/// \p S for inspection.
bool check(Session &S, const std::string &BufferName,
           const std::string &Source,
           std::map<std::string, long long> Defines = {}) {
  S.invocation().BufferName = BufferName;
  S.invocation().Defines = std::move(Defines);
  S.invocation().RunUntil = Stage::Typecheck;
  return S.run(Source).Ok;
}

TEST(Driver, CompileAndInstantiate) {
  Session S;
  ASSERT_TRUE(check(S, "k.descend", PolyKernel, {{"nb", 4}}))
      << S.renderDiagnostics();
  const FnDef *Fn = S.module()->findFn("scale");
  ASSERT_NE(Fn, nullptr);
  EXPECT_TRUE(Fn->Generics.empty()) << "nb should be instantiated away";
  EXPECT_TRUE(Nat::proveEq(Fn->Exec.GridDim.X, Nat::lit(4)));
  // The parameter type was substituted: [f64; 1024].
  const auto *Ref = cast<RefType>(Fn->Params[0].Ty.get());
  const auto *Arr = cast<ArrayType>(Ref->Pointee.get());
  EXPECT_TRUE(Nat::proveEq(Arr->Size, Nat::lit(1024)));
}

TEST(Driver, GenericKernelChecksSymbolically) {
  // Without defines, the polymorphic kernel still checks (Section 3.5:
  // polymorphism over grid sizes).
  Session S;
  EXPECT_TRUE(check(S, "k.descend", PolyKernel)) << S.renderDiagnostics();
}

TEST(Driver, DiagnosticsRenderWithSource) {
  Session S;
  EXPECT_FALSE(check(S, "bad.descend", R"(
fn k(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<256>[[block]][[thread]] =
        arr.group::<256>[[block]].rev[[thread]]
    }
  }
}
)"));
  std::string R = S.renderDiagnostics();
  EXPECT_NE(R.find("error: conflicting memory access"), std::string::npos);
  EXPECT_NE(R.find("bad.descend:"), std::string::npos);
  EXPECT_NE(R.find("rev[[thread]]"), std::string::npos) << R;
}

TEST(Driver, SimSuffixAppendsToNames) {
  CompilerInvocation Inv;
  Inv.BufferName = "k.descend";
  Inv.Defines["nb"] = 2;
  Inv.BackendName = "sim";
  Inv.FnSuffix = "_tiny";
  Session S(Inv);
  CompileResult R = S.run(PolyKernel);
  ASSERT_TRUE(R.Ok) << S.renderDiagnostics();
  EXPECT_NE(R.Artifact.find("inline void scale_tiny("), std::string::npos);
}

TEST(Driver, InstantiateNatsHandlesAllPositions) {
  const char *Src = R"(
fn k<n: nat>(arr: &uniq gpu.global [f64; n*64])
-[grid: gpu.grid<X<n>, X<64>>]-> () {
  sched(X) block in grid {
    let tmp = alloc::<gpu.shared, [f64; 64]>();
    sched(X) thread in block {
      for i in [0..n] {
        tmp[[thread]] = arr.group::<64>[[block]][[thread]]
      }
    }
  }
}
)";
  CompilerInvocation Inv;
  Inv.BufferName = "k.descend";
  Inv.Defines["n"] = 3;
  Inv.BackendName = "sim";
  Session S(Inv);
  CompileResult R = S.run(Src);
  ASSERT_TRUE(R.Ok) << S.renderDiagnostics();
  // Loop bound and view arguments were substituted: emitting sim code
  // succeeds with fully concrete dimensions.
  EXPECT_NE(R.Artifact.find("i < 3"), std::string::npos) << R.Artifact;
}

TEST(Driver, ParseErrorsShortCircuit) {
  Session S;
  EXPECT_FALSE(check(S, "broken.descend", "fn ("));
  EXPECT_TRUE(S.diagnostics().hasErrors());
}

} // namespace
