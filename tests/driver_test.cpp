//===- tests/driver_test.cpp - Compiler facade tests ----------------------===//
//
// Exercises the DEPRECATED Compiler facade on purpose: it is kept as a
// shim over the staged pipeline (driver/Pipeline.h) for out-of-tree users,
// and these expectations pin down that the shim keeps behaving exactly
// like the original facade. New-API coverage lives in pipeline_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace descend;

namespace {

const char *PolyKernel = R"(
fn scale<nb: nat>(vec: &uniq gpu.global [f64; nb*256])
-[grid: gpu.grid<X<nb>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<256>[[block]][[thread]] =
        vec.group::<256>[[block]][[thread]] * 2.0
    }
  }
}
)";

TEST(Driver, CompileAndInstantiate) {
  Compiler C;
  CompileOptions Options;
  Options.Defines["nb"] = 4;
  ASSERT_TRUE(C.compile("k.descend", PolyKernel, Options))
      << C.renderDiagnostics();
  const FnDef *Fn = C.module()->findFn("scale");
  ASSERT_NE(Fn, nullptr);
  EXPECT_TRUE(Fn->Generics.empty()) << "nb should be instantiated away";
  EXPECT_TRUE(Nat::proveEq(Fn->Exec.GridDim.X, Nat::lit(4)));
  // The parameter type was substituted: [f64; 1024].
  const auto *Ref = cast<RefType>(Fn->Params[0].Ty.get());
  const auto *Arr = cast<ArrayType>(Ref->Pointee.get());
  EXPECT_TRUE(Nat::proveEq(Arr->Size, Nat::lit(1024)));
}

TEST(Driver, GenericKernelChecksSymbolically) {
  // Without defines, the polymorphic kernel still checks (Section 3.5:
  // polymorphism over grid sizes).
  Compiler C;
  EXPECT_TRUE(C.compile("k.descend", PolyKernel)) << C.renderDiagnostics();
}

TEST(Driver, DiagnosticsRenderWithSource) {
  Compiler C;
  EXPECT_FALSE(C.compile("bad.descend", R"(
fn k(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<256>[[block]][[thread]] =
        arr.group::<256>[[block]].rev[[thread]]
    }
  }
}
)"));
  std::string R = C.renderDiagnostics();
  EXPECT_NE(R.find("error: conflicting memory access"), std::string::npos);
  EXPECT_NE(R.find("bad.descend:"), std::string::npos);
  EXPECT_NE(R.find("rev[[thread]]"), std::string::npos) << R;
}

TEST(Driver, SimSuffixAppendsToNames) {
  Compiler C;
  CompileOptions Options;
  Options.Defines["nb"] = 2;
  ASSERT_TRUE(C.compile("k.descend", PolyKernel, Options));
  std::string Code = C.emitSimCode(nullptr, "_tiny");
  EXPECT_NE(Code.find("inline void scale_tiny("), std::string::npos);
}

TEST(Driver, InstantiateNatsHandlesAllPositions) {
  const char *Src = R"(
fn k<n: nat>(arr: &uniq gpu.global [f64; n*64])
-[grid: gpu.grid<X<n>, X<64>>]-> () {
  sched(X) block in grid {
    let tmp = alloc::<gpu.shared, [f64; 64]>();
    sched(X) thread in block {
      for i in [0..n] {
        tmp[[thread]] = arr.group::<64>[[block]][[thread]]
      }
    }
  }
}
)";
  Compiler C;
  CompileOptions Options;
  Options.Defines["n"] = 3;
  ASSERT_TRUE(C.compile("k.descend", Src, Options))
      << C.renderDiagnostics();
  // Loop bound and view arguments were substituted: emitting sim code
  // succeeds with fully concrete dimensions.
  std::string Error;
  std::string Code = C.emitSimCode(&Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_NE(Code.find("i < 3"), std::string::npos) << Code;
}

TEST(Driver, ParseErrorsShortCircuit) {
  Compiler C;
  EXPECT_FALSE(C.compile("broken.descend", "fn ("));
  EXPECT_TRUE(C.diagnostics().hasErrors());
}

} // namespace
