//===- tests/ast_test.cpp - Unit tests for src/ast -------------------------===//

#include "ast/Expr.h"
#include "ast/Item.h"
#include "ast/Type.h"

#include <gtest/gtest.h>

using namespace descend;

namespace {

Nat n(long long V) { return Nat::lit(V); }

//===----------------------------------------------------------------------===//
// Memory, Dim, ExecLevel
//===----------------------------------------------------------------------===//

TEST(AstMemory, PrintingAndPredicates) {
  EXPECT_EQ(Memory::cpuMem().str(), "cpu.mem");
  EXPECT_EQ(Memory::gpuGlobal().str(), "gpu.global");
  EXPECT_EQ(Memory::gpuShared().str(), "gpu.shared");
  EXPECT_EQ(Memory::var("m").str(), "m");
  EXPECT_TRUE(Memory::gpuGlobal().isGpu());
  EXPECT_TRUE(Memory::cpuMem().isCpu());
  EXPECT_TRUE(Memory::var("m").isVar());
  EXPECT_TRUE(Memory::cpuMem() == Memory::cpuMem());
  EXPECT_FALSE(Memory::cpuMem() == Memory::gpuShared());
}

TEST(AstDim, AxesAndTotals) {
  Dim D = Dim::makeXY(n(64), n(32));
  EXPECT_TRUE(D.hasAxis(Axis::X));
  EXPECT_TRUE(D.hasAxis(Axis::Y));
  EXPECT_FALSE(D.hasAxis(Axis::Z));
  EXPECT_EQ(D.rank(), 2u);
  EXPECT_TRUE(Nat::proveEq(D.total(), n(2048)));
  EXPECT_EQ(D.str(), "XY<64, 32>");
  Dim D3 = Dim::makeXYZ(n(2), n(2), n(1));
  EXPECT_EQ(D3.str(), "XYZ<2, 2, 1>");
  EXPECT_TRUE(Nat::proveEq(D3.total(), n(4)));
}

TEST(AstDim, SubstitutionAndEquality) {
  Dim D = Dim::makeX(Nat::var("n") / n(256));
  Dim S = D.substitute({{"n", n(4096)}});
  EXPECT_TRUE(Nat::proveEq(S.X, n(16)));
  EXPECT_TRUE(Dim::makeX(n(16)) == S);
  EXPECT_FALSE(Dim::makeX(n(16)) == Dim::makeXY(n(16), n(1)));
}

TEST(AstExecLevel, PrintingAndSubstitution) {
  ExecLevel G = ExecLevel::gpuGrid(Dim::makeX(Nat::var("n")),
                                   Dim::makeX(n(256)));
  EXPECT_EQ(G.str(), "gpu.grid<X<n>, X<256>>");
  ExecLevel S = G.substitute({{"n", n(8)}});
  EXPECT_TRUE(Nat::proveEq(S.GridDim.X, n(8)));
  EXPECT_EQ(ExecLevel::cpuThread().str(), "cpu.thread");
  EXPECT_TRUE(ExecLevel::gpuThread().isGpu());
  EXPECT_FALSE(ExecLevel::cpuThread().isGpu());
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TEST(AstTypes, PrintingMatchesSurfaceSyntax) {
  TypeRef T = makeRef(Ownership::Uniq, Memory::gpuGlobal(),
                      makeArray(makeArray(makeScalar(ScalarKind::F64),
                                          n(2048)),
                                n(2048)));
  EXPECT_EQ(T->str(), "&uniq gpu.global [[f64; 2048]; 2048]");
  EXPECT_EQ(makeTuple({makeScalar(ScalarKind::I32),
                       makeScalar(ScalarKind::Bool)})
                ->str(),
            "(i32, bool)");
  EXPECT_EQ(makeBox(makeArray(makeScalar(ScalarKind::I32), n(4)),
                    Memory::cpuMem())
                ->str(),
            "[i32; 4] @ cpu.mem");
  EXPECT_EQ(makeArrayView(makeScalar(ScalarKind::F32), n(8))->str(),
            "[[f32; 8]]");
}

TEST(AstTypes, StructuralEqualityUsesNatProver) {
  Nat N = Nat::var("n");
  TypeRef A = makeArray(makeScalar(ScalarKind::F64), N * n(2));
  TypeRef B = makeArray(makeScalar(ScalarKind::F64), n(2) * N);
  EXPECT_TRUE(DataType::equal(A, B));
  TypeRef C = makeArray(makeScalar(ScalarKind::F64), N * n(3));
  EXPECT_FALSE(DataType::equal(A, C));
  EXPECT_FALSE(DataType::equal(A, makeScalar(ScalarKind::F64)));
}

TEST(AstTypes, Copyability) {
  EXPECT_TRUE(makeScalar(ScalarKind::F64)->isCopyable());
  EXPECT_TRUE(makeTuple({makeScalar(ScalarKind::I32),
                         makeScalar(ScalarKind::Bool)})
                  ->isCopyable());
  EXPECT_FALSE(makeArray(makeScalar(ScalarKind::I32), n(4))->isCopyable());
  EXPECT_FALSE(
      makeBox(makeScalar(ScalarKind::I32), Memory::cpuMem())->isCopyable());
  TypeRef Shrd = makeRef(Ownership::Shrd, Memory::cpuMem(),
                         makeScalar(ScalarKind::I32));
  TypeRef Uniq = makeRef(Ownership::Uniq, Memory::cpuMem(),
                         makeScalar(ScalarKind::I32));
  EXPECT_TRUE(Shrd->isCopyable());
  EXPECT_FALSE(Uniq->isCopyable());
}

TEST(AstTypes, Concreteness) {
  EXPECT_TRUE(makeArray(makeScalar(ScalarKind::I32), n(4))->isConcrete());
  EXPECT_FALSE(
      makeArray(makeScalar(ScalarKind::I32), Nat::var("n"))->isConcrete());
  EXPECT_FALSE(makeTypeVar("d")->isConcrete());
  EXPECT_FALSE(makeRef(Ownership::Shrd, Memory::var("m"),
                       makeScalar(ScalarKind::I32))
                   ->isConcrete());
}

TEST(AstTypes, Substitution) {
  TypeSubst S;
  S.Nats["n"] = n(64);
  S.Mems["m"] = Memory::gpuShared();
  S.Types["d"] = makeScalar(ScalarKind::F32);
  TypeRef T = makeRef(Ownership::Uniq, Memory::var("m"),
                      makeArray(makeTypeVar("d"), Nat::var("n")));
  TypeRef R = substituteType(T, S);
  EXPECT_EQ(R->str(), "&uniq gpu.shared [f32; 64]");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

PlacePtr varPlace(const char *Name) {
  return std::make_unique<PlaceVar>(Name);
}

TEST(AstExpr, PlaceConstructionAndPrinting) {
  // arr.group::<8>[[t]][i]
  PlacePtr P = varPlace("arr");
  P = std::make_unique<PlaceView>(std::move(P), "group",
                                  std::vector<Nat>{n(8)});
  P = std::make_unique<PlaceSelect>(std::move(P), "t");
  ExprPtr Idx = std::make_unique<PlaceVar>("i");
  P = std::make_unique<PlaceIndex>(std::move(P),
                                   std::move(Idx));
  EXPECT_EQ(P->str(), "arr.group::<8>[[t]][i]");
  EXPECT_EQ(P->rootVar(), "arr");
}

TEST(AstExpr, BasePlaceWalks) {
  PlacePtr P = varPlace("x");
  const PlaceExpr *Root = P.get();
  EXPECT_EQ(basePlace(Root), nullptr);
  PlacePtr D = std::make_unique<PlaceDeref>(std::move(P));
  EXPECT_EQ(basePlace(D.get())->kind(), ExprKind::PlaceVar);
}

TEST(AstExpr, LiteralFactories) {
  ExprPtr I = LiteralExpr::makeInt(42);
  EXPECT_EQ(cast<LiteralExpr>(I.get())->IntValue, 42);
  EXPECT_EQ(exprToString(*I), "42");
  ExprPtr F = LiteralExpr::makeFloat(2.5);
  EXPECT_EQ(cast<LiteralExpr>(F.get())->Scalar, ScalarKind::F64);
  ExprPtr B = LiteralExpr::makeBool(true);
  EXPECT_EQ(exprToString(*B), "true");
  EXPECT_EQ(exprToString(*LiteralExpr::makeUnit()), "()");
}

TEST(AstExpr, ForEachChildVisitsAll) {
  // (1 + 2) visits two children.
  ExprPtr E = std::make_unique<BinaryExpr>(
      BinOpKind::Add, LiteralExpr::makeInt(1), LiteralExpr::makeInt(2));
  int Count = 0;
  forEachChild(*E, [&](Expr &) { ++Count; });
  EXPECT_EQ(Count, 2);

  std::vector<ExprPtr> Stmts;
  Stmts.push_back(LiteralExpr::makeInt(1));
  Stmts.push_back(LiteralExpr::makeInt(2));
  Stmts.push_back(LiteralExpr::makeInt(3));
  ExprPtr Blk = std::make_unique<BlockExpr>(std::move(Stmts));
  Count = 0;
  forEachChild(*Blk, [&](Expr &) { ++Count; });
  EXPECT_EQ(Count, 3);
}

TEST(AstExpr, FnSignatureRendering) {
  FnDef Fn;
  Fn.Name = "scale_vec";
  Fn.Generics.push_back(GenericParam{"n", ParamKind::Nat, SourceRange()});
  FnParam P;
  P.Name = "vec";
  P.Ty = makeRef(Ownership::Uniq, Memory::gpuGlobal(),
                 makeArray(makeScalar(ScalarKind::F64), Nat::var("n")));
  Fn.Params.push_back(std::move(P));
  Fn.ExecName = "grid";
  Fn.Exec = ExecLevel::gpuGrid(Dim::makeX(n(1)), Dim::makeX(Nat::var("n")));
  Fn.RetTy = makeUnit();
  EXPECT_EQ(Fn.signature(),
            "fn scale_vec<n: nat>(vec: &uniq gpu.global [f64; n]) "
            "-[grid: gpu.grid<X<1>, X<n>>]-> unit");
}

TEST(AstExpr, ModuleLookup) {
  Module M;
  auto Fn = std::make_unique<FnDef>();
  Fn->Name = "f";
  M.Fns.push_back(std::move(Fn));
  auto V = std::make_unique<ViewDef>();
  V->Name = "v";
  M.Views.push_back(std::move(V));
  EXPECT_NE(M.findFn("f"), nullptr);
  EXPECT_EQ(M.findFn("g"), nullptr);
  EXPECT_NE(M.findView("v"), nullptr);
  EXPECT_EQ(M.findView("w"), nullptr);
}

TEST(AstExpr, BinOpSpellings) {
  EXPECT_STREQ(binOpSpelling(BinOpKind::Add), "+");
  EXPECT_STREQ(binOpSpelling(BinOpKind::Le), "<=");
  EXPECT_STREQ(binOpSpelling(BinOpKind::And), "&&");
  EXPECT_STREQ(binOpSpelling(BinOpKind::Mod), "%");
}

} // namespace
