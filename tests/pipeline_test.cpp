//===- tests/pipeline_test.cpp - Session/Backend API tests ----------------===//
//
// Covers the staged pipeline (CompilerInvocation/Session/CompileResult)
// and the pluggable backend registry: stage short-circuiting, per-stage
// timings, backend lookup (including the unknown-name diagnostic) and the
// ast backend.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace descend;

namespace {

const char *ScaleVec = R"(
fn scale_vec<nb: nat>(vec: &uniq gpu.global [f64; nb*256])
-[grid: gpu.grid<X<nb>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<256>[[block]][[thread]] =
        vec.group::<256>[[block]][[thread]] * 2.0
    }
  }
}
)";

CompilerInvocation scaleVecInvocation(const std::string &Backend) {
  CompilerInvocation Inv;
  Inv.BufferName = "k.descend";
  Inv.Defines["nb"] = 4;
  Inv.BackendName = Backend;
  return Inv;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(BackendRegistry, BuiltinsRegisteredSorted) {
  std::vector<std::string> Names =
      codegen::BackendRegistry::instance().names();
  EXPECT_EQ(Names, (std::vector<std::string>{"ast", "cuda", "sim", "vm"}));
  for (const std::string &N : Names) {
    const codegen::Backend *B =
        codegen::BackendRegistry::instance().lookup(N);
    ASSERT_NE(B, nullptr);
    EXPECT_EQ(N, B->name());
    EXPECT_NE(std::string(B->description()), "");
  }
}

TEST(BackendRegistry, UnknownLookupReturnsNull) {
  EXPECT_EQ(codegen::BackendRegistry::instance().lookup("ptx"), nullptr);
  EXPECT_EQ(codegen::BackendRegistry::instance().lookup(""), nullptr);
}

TEST(BackendRegistry, UnknownBackendYieldsDiagnosticNotCrash) {
  Session S(scaleVecInvocation("ptx"));
  CompileResult R = S.run(ScaleVec);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Reached, Stage::Typecheck) << "codegen must not be reached";
  EXPECT_TRUE(S.diagnostics().contains(DiagCode::UnknownBackend))
      << S.renderDiagnostics();
  // The message names the registered alternatives.
  EXPECT_NE(S.renderDiagnostics().find("ast cuda sim"), std::string::npos)
      << S.renderDiagnostics();
}

TEST(BackendRegistry, PrivateRegistryPluggable) {
  struct NullBackend final : codegen::Backend {
    const char *name() const override { return "null"; }
    const char *description() const override { return "emits nothing"; }
    codegen::GenResult emit(const Module &,
                            const codegen::BackendOptions &) const override {
      codegen::GenResult R;
      R.Ok = true;
      R.Code = "// null backend\n";
      return R;
    }
  };
  codegen::BackendRegistry Registry;
  Registry.registerBackend(std::make_unique<NullBackend>());
  EXPECT_EQ(Registry.names(), std::vector<std::string>{"null"});

  CompilerInvocation Inv = scaleVecInvocation("null");
  Session S(Inv);
  ASSERT_TRUE(S.parse(ScaleVec));
  ASSERT_TRUE(S.instantiate());
  ASSERT_TRUE(S.typecheck());
  codegen::GenResult R = S.emit(Registry);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Code, "// null backend\n");
  EXPECT_EQ(S.reached(), Stage::Codegen);
}

//===----------------------------------------------------------------------===//
// Stages
//===----------------------------------------------------------------------===//

TEST(Pipeline, ParseErrorShortCircuits) {
  Session S(scaleVecInvocation("cuda"));
  CompileResult R = S.run("fn (");
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Reached, Stage::None);
  EXPECT_GT(R.Errors, 0u);
  // Only the parse stage ran (and was timed): no typecheck after a parse
  // error.
  ASSERT_EQ(R.Timings.size(), 1u);
  EXPECT_EQ(R.Timings[0].S, Stage::Parse);
}

TEST(Pipeline, TypeErrorStopsBeforeCodegen) {
  CompilerInvocation Inv;
  Inv.BufferName = "bad.descend";
  Inv.BackendName = "cuda";
  Session S(Inv);
  CompileResult R = S.run(R"(
fn k(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<256>[[block]][[thread]] =
        arr.group::<256>[[block]].rev[[thread]]
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Reached, Stage::Instantiate);
  EXPECT_TRUE(S.diagnostics().contains(DiagCode::ConflictingMemoryAccess));
  EXPECT_TRUE(R.Artifact.empty());
  ASSERT_EQ(R.Timings.size(), 3u);
  EXPECT_EQ(R.Timings.back().S, Stage::Typecheck);
}

TEST(Pipeline, StageCutoffRespected) {
  CompilerInvocation Inv = scaleVecInvocation("cuda");
  Inv.RunUntil = Stage::Parse;
  Session S(Inv);
  CompileResult R = S.run(ScaleVec);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Reached, Stage::Parse);
  ASSERT_EQ(R.Timings.size(), 1u);

  // The generic parameter survives when the run stops before
  // instantiation.
  const FnDef *Fn = S.module()->findFn("scale_vec");
  ASSERT_NE(Fn, nullptr);
  EXPECT_FALSE(Fn->Generics.empty());
}

TEST(Pipeline, TimingsCoverAllFourStages) {
  Session S(scaleVecInvocation("cuda"));
  CompileResult R = S.run(ScaleVec);
  ASSERT_TRUE(R.Ok) << S.renderDiagnostics();
  ASSERT_EQ(R.Timings.size(), 4u);
  EXPECT_EQ(R.Timings[0].S, Stage::Parse);
  EXPECT_EQ(R.Timings[1].S, Stage::Instantiate);
  EXPECT_EQ(R.Timings[2].S, Stage::Typecheck);
  EXPECT_EQ(R.Timings[3].S, Stage::Codegen);
  for (const StageTiming &T : R.Timings)
    EXPECT_GE(T.Millis, 0.0);
  EXPECT_STREQ(stageName(R.Timings[2].S), "typecheck");
  EXPECT_FALSE(R.Artifact.empty());
  EXPECT_EQ(R.Errors, 0u);
}

TEST(Pipeline, RerunDoesNotReportStaleState) {
  // Long-lived sessions recompile in place; a second run must not
  // inherit the first run's stage/timings.
  Session S(scaleVecInvocation("cuda"));
  CompileResult First = S.run(ScaleVec);
  ASSERT_TRUE(First.Ok);
  ASSERT_EQ(First.Reached, Stage::Codegen);

  CompileResult Second = S.run("fn (");
  EXPECT_FALSE(Second.Ok);
  EXPECT_EQ(Second.Reached, Stage::None);
  ASSERT_EQ(Second.Timings.size(), 1u);
  EXPECT_EQ(Second.Timings[0].S, Stage::Parse);
}

TEST(Pipeline, StagesRunIndividually) {
  Session S(scaleVecInvocation("sim"));
  ASSERT_TRUE(S.parse(ScaleVec));
  EXPECT_EQ(S.reached(), Stage::Parse);
  ASSERT_TRUE(S.instantiate());
  // Instantiation replaced nb: the grid dimension is now a literal.
  const FnDef *Fn = S.module()->findFn("scale_vec");
  ASSERT_NE(Fn, nullptr);
  EXPECT_TRUE(Fn->Generics.empty());
  EXPECT_TRUE(Nat::proveEq(Fn->Exec.GridDim.X, Nat::lit(4)));
  ASSERT_TRUE(S.typecheck());
  codegen::GenResult R = S.emit();
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_NE(R.Code.find("inline void scale_vec("), std::string::npos);
  EXPECT_EQ(S.reached(), Stage::Codegen);
}

//===----------------------------------------------------------------------===//
// Backends through the Session
//===----------------------------------------------------------------------===//

TEST(Pipeline, AstBackendDumpsInstantiatedModule) {
  Session S(scaleVecInvocation("ast"));
  CompileResult R = S.run(ScaleVec);
  ASSERT_TRUE(R.Ok) << S.renderDiagnostics();
  // The dump is surface syntax of the *instantiated* module.
  EXPECT_NE(R.Artifact.find("fn scale_vec"), std::string::npos) << R.Artifact;
  EXPECT_NE(R.Artifact.find("sched(X) thread in block"), std::string::npos);
  EXPECT_NE(R.Artifact.find("[f64; 1024]"), std::string::npos)
      << "nb*256 must have been instantiated to 1024:\n"
      << R.Artifact;
}

TEST(Pipeline, FnSuffixReachesBackend) {
  CompilerInvocation Inv = scaleVecInvocation("sim");
  Inv.FnSuffix = "_tiny";
  Session S(Inv);
  CompileResult R = S.run(ScaleVec);
  ASSERT_TRUE(R.Ok) << S.renderDiagnostics();
  EXPECT_NE(R.Artifact.find("inline void scale_vec_tiny("),
            std::string::npos);
}

TEST(Pipeline, BackendFailureIsDiagnosed) {
  // Generic block dimensions cannot be lowered; the sim backend error is
  // reported through the session diagnostics.
  CompilerInvocation Inv;
  Inv.BufferName = "generic.descend";
  Inv.BackendName = "sim";
  Session S(Inv);
  CompileResult R = S.run(R"(
fn k<n: nat>(arr: &uniq gpu.global [f64; n])
-[grid: gpu.grid<X<1>, X<n>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<n>[[block]][[thread]] = 0.0
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Reached, Stage::Typecheck);
  EXPECT_TRUE(S.diagnostics().contains(DiagCode::BackendFailed))
      << S.renderDiagnostics();
}

} // namespace
