//===- tests/parser_test.cpp - Unit tests for src/parser ------------------===//

#include "parser/Parser.h"

#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace descend;

namespace {

struct ParseResult {
  std::unique_ptr<Module> Mod;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::shared_ptr<SourceManager> SM;
};

ParseResult parse(const std::string &Src) {
  ParseResult R;
  R.SM = std::make_shared<SourceManager>();
  uint32_t Id = R.SM->addBuffer("test.descend", Src);
  R.Diags = std::make_unique<DiagnosticEngine>(*R.SM);
  Parser P(*R.SM, Id, *R.Diags);
  R.Mod = P.parseModule();
  return R;
}

/// The matrix transposition function of Listing 2 (verbatim).
const char *Listing2 = R"(
fn transpose(input: & gpu.global [[f64;2048];2048],
             output: &uniq gpu.global [[f64;2048];2048])
-[grid: gpu.grid<XY<64,64>,XY<32,8>>]-> () {
  sched(Y,X) block in grid {
    let tmp = alloc::<gpu.shared, [[f64; 32]; 32]>();
    sched(Y,X) thread in block {
      for i in [0..4] {
        tmp.group_by_row::<32,4>[[thread]][i] =
          input.group_by_tile::<32,32>.transpose[[block]]
            .group_by_row::<32,4>[[thread]][i] };
      sync;
      for i in [0..4] {
        output.group_by_tile::<32,32>[[block]]
          .group_by_row::<32,4>[[thread]][i] =
          tmp.group_by_row::<32,4>[[thread]][i] }
    } } }
)";

TEST(Parser, Listing2Parses) {
  auto R = parse(Listing2);
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  ASSERT_EQ(R.Mod->Fns.size(), 1u);
  const FnDef &Fn = *R.Mod->Fns[0];
  EXPECT_EQ(Fn.Name, "transpose");
  ASSERT_EQ(Fn.Params.size(), 2u);

  // input: & gpu.global [[f64;2048];2048] — shared ref to nested array.
  const auto *InRef = dyn_cast<RefType>(Fn.Params[0].Ty.get());
  ASSERT_NE(InRef, nullptr);
  EXPECT_EQ(InRef->Own, Ownership::Shrd);
  EXPECT_EQ(InRef->Mem.Kind, MemoryKind::GpuGlobal);
  const auto *Outer = dyn_cast<ArrayType>(InRef->Pointee.get());
  ASSERT_NE(Outer, nullptr);
  EXPECT_TRUE(Nat::proveEq(Outer->Size, Nat::lit(2048)));
  const auto *Inner = dyn_cast<ArrayType>(Outer->Elem.get());
  ASSERT_NE(Inner, nullptr);
  EXPECT_TRUE(Nat::proveEq(Inner->Size, Nat::lit(2048)));

  // output is a unique reference.
  const auto *OutRef = dyn_cast<RefType>(Fn.Params[1].Ty.get());
  ASSERT_NE(OutRef, nullptr);
  EXPECT_EQ(OutRef->Own, Ownership::Uniq);

  // Exec annotation.
  EXPECT_EQ(Fn.ExecName, "grid");
  EXPECT_EQ(Fn.Exec.Kind, ExecLevelKind::GpuGrid);
  EXPECT_TRUE(Nat::proveEq(Fn.Exec.GridDim.X, Nat::lit(64)));
  EXPECT_TRUE(Nat::proveEq(Fn.Exec.BlockDim.Y, Nat::lit(8)));
  EXPECT_FALSE(Fn.Exec.GridDim.hasAxis(Axis::Z));

  // Body structure: sched > { let, sched > { for, sync, for } }.
  const auto *Body = dyn_cast<BlockExpr>(Fn.Body.get());
  ASSERT_NE(Body, nullptr);
  ASSERT_EQ(Body->Stmts.size(), 1u);
  const auto *SchedBlocks = dyn_cast<SchedExpr>(Body->Stmts[0].get());
  ASSERT_NE(SchedBlocks, nullptr);
  EXPECT_EQ(SchedBlocks->Binder, "block");
  EXPECT_EQ(SchedBlocks->Target, "grid");
  ASSERT_EQ(SchedBlocks->Axes.size(), 2u);
  EXPECT_EQ(SchedBlocks->Axes[0], Axis::Y);
  EXPECT_EQ(SchedBlocks->Axes[1], Axis::X);

  const auto *BlockBody = cast<BlockExpr>(SchedBlocks->Body.get());
  ASSERT_EQ(BlockBody->Stmts.size(), 2u);
  const auto *Let = dyn_cast<LetExpr>(BlockBody->Stmts[0].get());
  ASSERT_NE(Let, nullptr);
  EXPECT_EQ(Let->Name, "tmp");
  const auto *Alloc = dyn_cast<AllocExpr>(Let->Init.get());
  ASSERT_NE(Alloc, nullptr);
  EXPECT_EQ(Alloc->Mem.Kind, MemoryKind::GpuShared);

  const auto *SchedThreads = dyn_cast<SchedExpr>(BlockBody->Stmts[1].get());
  ASSERT_NE(SchedThreads, nullptr);
  const auto *ThreadBody = cast<BlockExpr>(SchedThreads->Body.get());
  ASSERT_EQ(ThreadBody->Stmts.size(), 3u);
  EXPECT_TRUE(isa<ForNatExpr>(ThreadBody->Stmts[0].get()));
  EXPECT_TRUE(isa<SyncExpr>(ThreadBody->Stmts[1].get()));
  EXPECT_TRUE(isa<ForNatExpr>(ThreadBody->Stmts[2].get()));

  // First loop body: one assignment with view/select/index place on both
  // sides.
  const auto *Loop = cast<ForNatExpr>(ThreadBody->Stmts[0].get());
  EXPECT_TRUE(Nat::proveEq(Loop->Lo, Nat::lit(0)));
  EXPECT_TRUE(Nat::proveEq(Loop->Hi, Nat::lit(4)));
  const auto *LoopBody = cast<BlockExpr>(Loop->Body.get());
  ASSERT_EQ(LoopBody->Stmts.size(), 1u);
  const auto *Asn = dyn_cast<AssignExpr>(LoopBody->Stmts[0].get());
  ASSERT_NE(Asn, nullptr);
  EXPECT_EQ(Asn->Lhs->str(), "tmp.group_by_row::<32, 4>[[thread]][i]");
  EXPECT_EQ(cast<PlaceExpr>(Asn->Rhs.get())->str(),
            "input.group_by_tile::<32, 32>.transpose[[block]]"
            ".group_by_row::<32, 4>[[thread]][i]");
}

TEST(Parser, ViewDefinition) {
  auto R = parse("view group_by_row<row_size: nat, num_rows: nat> = "
                 "group::<row_size/num_rows>.map(transpose)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  ASSERT_EQ(R.Mod->Views.size(), 1u);
  const ViewDef &V = *R.Mod->Views[0];
  EXPECT_EQ(V.Name, "group_by_row");
  ASSERT_EQ(V.Generics.size(), 2u);
  EXPECT_EQ(V.Generics[0].Kind, ParamKind::Nat);
  ASSERT_EQ(V.Body.size(), 2u);
  EXPECT_EQ(V.Body[0].Name, "group");
  ASSERT_EQ(V.Body[0].NatArgs.size(), 1u);
  EXPECT_EQ(V.Body[1].Name, "map");
  ASSERT_EQ(V.Body[1].ViewArgs.size(), 1u);
  EXPECT_EQ(V.Body[1].ViewArgs[0][0].Name, "transpose");
}

TEST(Parser, KernelLaunch) {
  auto R = parse(R"(
fn main() -[t: cpu.thread]-> () {
  scale_vec::<<<X<32>, X<32>>>>(&uniq vec)
}
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto *Body = cast<BlockExpr>(R.Mod->Fns[0]->Body.get());
  const auto *Call = dyn_cast<CallExpr>(Body->Stmts[0].get());
  ASSERT_NE(Call, nullptr);
  EXPECT_TRUE(Call->IsLaunch);
  EXPECT_EQ(Call->Callee, "scale_vec");
  EXPECT_TRUE(Nat::proveEq(Call->LaunchGrid.X, Nat::lit(32)));
  EXPECT_TRUE(Nat::proveEq(Call->LaunchBlock.X, Nat::lit(32)));
  ASSERT_EQ(Call->Args.size(), 1u);
  const auto *B = dyn_cast<BorrowExpr>(Call->Args[0].get());
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->Own, Ownership::Uniq);
}

TEST(Parser, LaunchWithPolymorphicSizes) {
  auto R = parse(R"(
fn main() -[t: cpu.thread]-> () {
  scale_vec::<<<X<n/256>, X<256>>>>(&uniq vec)
}
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
}

TEST(Parser, HostMemoryApi) {
  auto R = parse(R"(
fn host() -[t: cpu.thread]-> () {
  let cpu_array: [i32; n] @ cpu.mem = CpuHeap::new([0; n]);
  let global_array: [i32; n] @ gpu.global = GpuGlobal::alloc_copy(&cpu_array);
  copy_mem_to_host(&uniq cpu_array, &global_array)
}
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto *Body = cast<BlockExpr>(R.Mod->Fns[0]->Body.get());
  ASSERT_EQ(Body->Stmts.size(), 3u);
  const auto *Let = cast<LetExpr>(Body->Stmts[0].get());
  const auto *Box = dyn_cast<BoxType>(Let->Annotation.get());
  ASSERT_NE(Box, nullptr);
  EXPECT_EQ(Box->Mem.Kind, MemoryKind::CpuMem);
  const auto *Call = cast<CallExpr>(Let->Init.get());
  EXPECT_EQ(Call->Callee, "CpuHeap::new");
  EXPECT_TRUE(isa<ArrayInitExpr>(Call->Args[0].get()));
}

TEST(Parser, SplitWithSyncArms) {
  auto R = parse(R"(
fn k(arr: &uniq gpu.shared [f64; 64]) -[block: gpu.block<X<64>>]-> () {
  split(X) block at 32 {
    active => { sync },
    inactive => { }
  }
}
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto *Body = cast<BlockExpr>(R.Mod->Fns[0]->Body.get());
  const auto *S = dyn_cast<SplitExpr>(Body->Stmts[0].get());
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->SplitAxis, Axis::X);
  EXPECT_EQ(S->Target, "block");
  EXPECT_TRUE(Nat::proveEq(S->Position, Nat::lit(32)));
  EXPECT_EQ(S->FstName, "active");
  EXPECT_EQ(S->SndName, "inactive");
  EXPECT_TRUE(isa<SyncExpr>(cast<BlockExpr>(S->FstBody.get())->Stmts[0].get()));
  EXPECT_TRUE(cast<BlockExpr>(S->SndBody.get())->Stmts.empty());
}

TEST(Parser, DerefPlaceWithSelect) {
  auto R = parse(R"(
fn k(vec: & cpu.mem [f64; 1024]) -[grid: gpu.grid<X<1>, X<1024>>]-> () {
  sched(X) thread in grid {
    (*vec)[[thread]] = 1.0
  }
}
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto *Sched = cast<SchedExpr>(
      cast<BlockExpr>(R.Mod->Fns[0]->Body.get())->Stmts[0].get());
  const auto *Asn =
      cast<AssignExpr>(cast<BlockExpr>(Sched->Body.get())->Stmts[0].get());
  EXPECT_EQ(Asn->Lhs->str(), "(*vec)[[thread]]");
  EXPECT_EQ(Asn->Lhs->rootVar(), "vec");
}

TEST(Parser, GenericFunctionHeader) {
  auto R = parse(R"(
fn scale<n: nat, m: mem, d: dty>(v: &uniq m [d; n])
-[grid: gpu.grid<X<n/256>, X<256>>]-> () { }
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const FnDef &Fn = *R.Mod->Fns[0];
  ASSERT_EQ(Fn.Generics.size(), 3u);
  EXPECT_EQ(Fn.Generics[0].Kind, ParamKind::Nat);
  EXPECT_EQ(Fn.Generics[1].Kind, ParamKind::Memory);
  EXPECT_EQ(Fn.Generics[2].Kind, ParamKind::DataType);
  const auto *Ref = cast<RefType>(Fn.Params[0].Ty.get());
  EXPECT_TRUE(Ref->Mem.isVar());
  const auto *Arr = cast<ArrayType>(Ref->Pointee.get());
  EXPECT_TRUE(isa<TypeVarType>(Arr->Elem.get()));
}

TEST(Parser, TuplesAndProjections) {
  auto R = parse(R"(
fn f(pair: ([f64; 16], [f64; 48])) -[t: cpu.thread]-> () {
  let a = pair.fst;
  let b = pair.snd
}
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto *Body = cast<BlockExpr>(R.Mod->Fns[0]->Body.get());
  const auto *LetA = cast<LetExpr>(Body->Stmts[0].get());
  const auto *Proj = dyn_cast<PlaceProj>(LetA->Init.get());
  ASSERT_NE(Proj, nullptr);
  EXPECT_EQ(Proj->Which, 0u);
}

TEST(Parser, ExpressionPrecedence) {
  auto R = parse(R"(
fn f() -[t: cpu.thread]-> () {
  let x = 1 + 2 * 3 - 4 / 2;
  let b = x < 5 && true || false
}
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto *Body = cast<BlockExpr>(R.Mod->Fns[0]->Body.get());
  const auto *Let = cast<LetExpr>(Body->Stmts[0].get());
  EXPECT_EQ(exprToString(*Let->Init), "((1 + (2 * 3)) - (4 / 2))");
  const auto *LetB = cast<LetExpr>(Body->Stmts[1].get());
  EXPECT_EQ(exprToString(*LetB->Init),
            "(((x < 5) && true) || false)");
}

TEST(Parser, ErrorRecoverySkipsBadItem) {
  auto R = parse(R"(
fn broken( -[t: cpu.thread]-> () { }
fn good() -[t: cpu.thread]-> () { }
)");
  EXPECT_TRUE(R.Diags->hasErrors());
  // The good function is still parsed.
  bool FoundGood = false;
  for (const auto &F : R.Mod->Fns)
    if (F->Name == "good")
      FoundGood = true;
  EXPECT_TRUE(FoundGood);
}

TEST(Parser, ReportsExpectedToken) {
  auto R = parse("fn f() -[t: cpu.thread]-> () { let = 3; }");
  EXPECT_TRUE(R.Diags->hasErrors());
  EXPECT_TRUE(R.Diags->contains(DiagCode::ParseExpected));
}

TEST(Parser, RevPerBlockExample) {
  // The data-race example of Section 2.2 in Descend syntax.
  auto R = parse(R"(
fn rev_per_block(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<256>[[block]][[thread]] =
        arr.group::<256>[[block]].rev[[thread]]
    }
  }
}
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->renderAll();
  const auto *G = cast<SchedExpr>(
      cast<BlockExpr>(R.Mod->Fns[0]->Body.get())->Stmts[0].get());
  const auto *T = cast<SchedExpr>(cast<BlockExpr>(G->Body.get())->Stmts[0].get());
  const auto *A =
      cast<AssignExpr>(cast<BlockExpr>(T->Body.get())->Stmts[0].get());
  EXPECT_EQ(A->Lhs->str(), "arr.group::<256>[[block]][[thread]]");
}

TEST(Parser, StandaloneTypes) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  uint32_t Id = SM.addBuffer("t", "&uniq gpu.global [[f64; 32]; 32]");
  Parser P(SM, Id, Diags);
  TypeRef T = P.parseStandaloneType();
  ASSERT_TRUE(T);
  EXPECT_EQ(T->str(), "&uniq gpu.global [[f64; 32]; 32]");
}

TEST(Parser, ViewArrayTypeSyntax) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  // [[f64; 32]] with nothing after the inner array is a view type.
  uint32_t Id = SM.addBuffer("t", "[[f64; 32]]");
  Parser P(SM, Id, Diags);
  TypeRef T = P.parseStandaloneType();
  ASSERT_TRUE(T);
  EXPECT_TRUE(isa<ArrayViewType>(T.get()));
  EXPECT_FALSE(Diags.hasErrors());
}

} // namespace
