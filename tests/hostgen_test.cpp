//===- tests/hostgen_test.cpp - Host-program subsystem tests ----------------===//
//
// Exercises the host-program compilation subsystem end to end at the
// artifact level: the programs/*.descend fixtures typecheck (or are
// rejected with the targeted host diagnostics), the sim backend emits a
// runnable host driver against runtime/HostRuntime.h, and the cuda
// backend's host output matches the checked-in golden .cu.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "hostgen/HostGen.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace descend;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string programPath(const std::string &Name) {
  return std::string(DESCEND_PROGRAM_DIR) + "/" + Name;
}

struct Outcome {
  bool Ok = false;
  std::string Artifact;
  std::string Rendered;
  std::unique_ptr<Session> S;
};

Outcome compileProgram(const std::string &FileName,
                       const std::string &Backend,
                       std::map<std::string, long long> Defines = {},
                       const std::string &FnSuffix = "") {
  Outcome O;
  CompilerInvocation Inv;
  Inv.BufferName = FileName;
  Inv.Defines = std::move(Defines);
  Inv.FnSuffix = FnSuffix;
  if (Backend.empty())
    Inv.RunUntil = Stage::Typecheck;
  else
    Inv.BackendName = Backend;
  O.S = std::make_unique<Session>(Inv);
  CompileResult R = O.S->run(readFile(programPath(FileName)));
  O.Ok = R.Ok;
  O.Artifact = R.Artifact;
  O.Rendered = O.S->renderDiagnostics();
  return O;
}

//===----------------------------------------------------------------------===//
// Positive programs: typecheck and emit a sim host driver
//===----------------------------------------------------------------------===//

TEST(HostGen, QuickstartSimDriver) {
  Outcome O = compileProgram("quickstart_host.descend", "sim", {{"nb", 8}});
  ASSERT_TRUE(O.Ok) << O.Rendered;
  // The generated header drives the host runtime...
  EXPECT_NE(O.Artifact.find("#include \"runtime/HostRuntime.h\""),
            std::string::npos)
      << O.Artifact;
  // ...with `main` emitted as the `run` entry point...
  EXPECT_NE(O.Artifact.find(
                "inline void run(descend::sim::GpuDevice &_dev"),
            std::string::npos)
      << O.Artifact;
  EXPECT_NE(O.Artifact.find("descend::rt::HostBuffer<double> &host_vec"),
            std::string::npos)
      << O.Artifact;
  // ...performing the statically checked transfer/launch sequence.
  EXPECT_NE(O.Artifact.find(
                "auto d_vec = descend::rt::allocCopy(_dev, host_vec);"),
            std::string::npos)
      << O.Artifact;
  EXPECT_NE(O.Artifact.find("scale_vec(_dev, d_vec);"), std::string::npos)
      << O.Artifact;
  EXPECT_NE(O.Artifact.find("descend::rt::copyToHost(host_vec, d_vec, "
                            "\"host_vec\", \"d_vec\");"),
            std::string::npos)
      << O.Artifact;
  // Synchronous launches are followed by a device check so sticky errors
  // surface as structured rt::Errors at the failing step.
  EXPECT_NE(O.Artifact.find("descend::rt::checkDevice(_dev, \"launch "
                            "scale_vec\");"),
            std::string::npos)
      << O.Artifact;
}

TEST(HostGen, ReductionSimDriverLowersHostLoop) {
  Outcome O = compileProgram("reduction_host.descend", "sim", {{"nb", 8}});
  ASSERT_TRUE(O.Ok) << O.Rendered;
  // The sequential CPU finish compiles to a real host loop.
  EXPECT_NE(O.Artifact.find("for (long long i = 0; i != 8; ++i)"),
            std::string::npos)
      << O.Artifact;
  EXPECT_NE(O.Artifact.find("total[0] = (total[0] + partials[i]);"),
            std::string::npos)
      << O.Artifact;
  // Two transfers in, one out.
  EXPECT_NE(O.Artifact.find("allocCopy(_dev, data)"), std::string::npos);
  EXPECT_NE(O.Artifact.find("allocCopy(_dev, partials)"), std::string::npos);
  EXPECT_NE(O.Artifact.find(
                "copyToHost(partials, d_out, \"partials\", \"d_out\")"),
            std::string::npos);
}

TEST(HostGen, FnSuffixAppliesToDriverAndLaunches) {
  Outcome O = compileProgram("quickstart_host.descend", "sim", {{"nb", 8}},
                             "_tiny");
  ASSERT_TRUE(O.Ok) << O.Rendered;
  EXPECT_NE(O.Artifact.find("inline void run_tiny("), std::string::npos)
      << O.Artifact;
  // The launch resolves against the suffixed kernel in the same header.
  EXPECT_NE(O.Artifact.find("scale_vec_tiny(_dev, d_vec);"),
            std::string::npos)
      << O.Artifact;
}

TEST(HostGen, SymbolicHostProgramTypechecks) {
  // Without -D the whole program stays polymorphic in nb; the transfer
  // and launch checks go through the Nat solver.
  Outcome O = compileProgram("reduction_host.descend", "");
  EXPECT_TRUE(O.Ok) << O.Rendered;
}

TEST(HostGen, KernelOnlyModulesStayRuntimeFree) {
  CompilerInvocation Inv;
  Inv.BufferName = "k.descend";
  Inv.Defines["nb"] = 2;
  Inv.BackendName = "sim";
  Session S(Inv);
  CompileResult R = S.run(R"(
fn scale_vec<nb: nat>(vec: &uniq gpu.global [f64; nb*256])
-[grid: gpu.grid<X<nb>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<256>[[block]][[thread]] =
        vec.group::<256>[[block]][[thread]] * 3.0
    }
  }
}
)");
  ASSERT_TRUE(R.Ok) << S.renderDiagnostics();
  EXPECT_EQ(R.Artifact.find("HostRuntime"), std::string::npos)
      << "kernel-only headers must not pull in the host runtime";
}

//===----------------------------------------------------------------------===//
// Stream overloads (the asynchronous sim drivers)
//===----------------------------------------------------------------------===//

TEST(HostGenStream, EmitsAsyncOverloadWithSingleJoin) {
  Outcome O = compileProgram("reduction_host.descend", "sim", {{"nb", 8}});
  ASSERT_TRUE(O.Ok) << O.Rendered;
  // The stream overload sits next to the synchronous driver...
  EXPECT_NE(O.Artifact.find("inline void run(descend::sim::Stream &_stream"),
            std::string::npos)
      << O.Artifact;
  // ...transfers enqueue, the launch is a stream operation...
  EXPECT_NE(O.Artifact.find("descend::rt::allocCopyAsync(_stream, data)"),
            std::string::npos)
      << O.Artifact;
  EXPECT_NE(O.Artifact.find("_stream.enqueue([=, &_dev] { reduce(_dev, "
                            "d_in, d_out); });"),
            std::string::npos)
      << O.Artifact;
  EXPECT_NE(
      O.Artifact.find("descend::rt::copyToHostAsync(_stream, partials"),
      std::string::npos)
      << O.Artifact;
  // ...and exactly one join sits before the CPU finish reads partials.
  // (The graph overload follows with the same signature prefix; bound the
  // stream overload at its start.)
  size_t StreamStart =
      O.Artifact.find("inline void run(descend::sim::Stream &_stream");
  size_t GraphStart = O.Artifact.find(
      "inline void run(descend::sim::Stream &_stream", StreamStart + 1);
  ASSERT_NE(GraphStart, std::string::npos) << O.Artifact;
  std::string StreamPart =
      O.Artifact.substr(StreamStart, GraphStart - StreamStart);
  size_t FirstSync = StreamPart.find("_stream.synchronize();");
  ASSERT_NE(FirstSync, std::string::npos) << StreamPart;
  EXPECT_LT(FirstSync, StreamPart.find("total[0] = 0.0;")) << StreamPart;
  EXPECT_EQ(StreamPart.find("_stream.synchronize();", FirstSync + 1),
            std::string::npos)
      << "expected a single join in the reduction stream driver\n"
      << StreamPart;
}

TEST(HostGenStream, LoopBodyMixingHostAndDeviceOpsJoinsPerIteration) {
  // A host loop whose body touches host memory *and* enqueues device
  // work must join at the end of every iteration: otherwise iteration
  // N+1's host write races with iteration N's still-pending async copy.
  CompilerInvocation Inv;
  Inv.BufferName = "pipeline.descend";
  Inv.Defines["nb"] = 4;
  Inv.BackendName = "sim";
  Session S(Inv);
  CompileResult R = S.run(R"(
fn scale<nb: nat>(vec: &uniq gpu.global [f64; nb*256])
-[grid: gpu.grid<X<nb>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<256>[[block]][[thread]] =
        vec.group::<256>[[block]][[thread]] * 3.0
    }
  }
}
fn main<nb: nat>(staging: &uniq cpu.mem [f64; nb*256],
                 ticks: &uniq cpu.mem [f64; 4])
-[t: cpu.thread]-> () {
  let d = GpuGlobal::alloc_copy(&*staging);
  for r in [0..3] {
    (*ticks)[0] = 1.0;
    copy_to_gpu(&uniq d, &*staging);
    scale::<<<X<nb>, X<256>>>>(&uniq d)
  }
}
)");
  ASSERT_TRUE(R.Ok) << S.renderDiagnostics();
  // Inside the loop of the stream overload: the host store must be
  // preceded (via the back-edge join) by a synchronize, i.e. the loop
  // body ends with one.
  size_t StreamFn =
      R.Artifact.find("inline void run(descend::sim::Stream &_stream");
  ASSERT_NE(StreamFn, std::string::npos) << R.Artifact;
  std::string StreamPart = R.Artifact.substr(StreamFn);
  size_t Loop = StreamPart.find("for (long long r = 0; r != 3; ++r) {");
  ASSERT_NE(Loop, std::string::npos) << StreamPart;
  size_t LoopEnd = StreamPart.find("  }\n", Loop);
  ASSERT_NE(LoopEnd, std::string::npos);
  std::string Body = StreamPart.substr(Loop, LoopEnd - Loop);
  size_t LastSync = Body.rfind("_stream.synchronize();");
  ASSERT_NE(LastSync, std::string::npos)
      << "loop body must join before its back edge\n"
      << Body;
  EXPECT_GT(LastSync, Body.find("scale(_dev, d)"))
      << "the join must come after the enqueued launch\n"
      << Body;
}

//===----------------------------------------------------------------------===//
// Graph overloads (capture on first call, replay + rebind after)
//===----------------------------------------------------------------------===//

TEST(HostGenGraph, EmitsCaptureReplayOverload) {
  Outcome O = compileProgram("quickstart_host.descend", "sim", {{"nb", 8}});
  ASSERT_TRUE(O.Ok) << O.Rendered;
  // The third overload takes the stream plus a GraphExec...
  size_t GraphFn = O.Artifact.find(
      "inline void run(descend::sim::Stream &_stream,\n"
      "    descend::sim::GraphExec &_graph");
  ASSERT_NE(GraphFn, std::string::npos) << O.Artifact;
  std::string GraphPart = O.Artifact.substr(GraphFn);
  // ...captures the transfer/launch sequence on the first call only...
  EXPECT_NE(GraphPart.find("if (!_graph.instantiated()) {"),
            std::string::npos)
      << GraphPart;
  EXPECT_NE(GraphPart.find("_stream.beginCapture();"), std::string::npos)
      << GraphPart;
  EXPECT_NE(GraphPart.find("descend::rt::allocCopyCapture<double>(_stream, "
                           "0, host_vec.size(), \"host_vec\")"),
            std::string::npos)
      << GraphPart;
  EXPECT_NE(GraphPart.find("descend::rt::copyToHostCapture(_stream, 0, "
                           "d_vec, \"host_vec\");"),
            std::string::npos)
      << GraphPart;
  EXPECT_NE(GraphPart.find("_graph = _stream.endCapture().instantiate();"),
            std::string::npos)
      << GraphPart;
  // ...and rebinds + replays on every call.
  EXPECT_NE(GraphPart.find("_graph.bind(0, host_vec, \"host_vec\");"),
            std::string::npos)
      << GraphPart;
  EXPECT_NE(GraphPart.find("_graph.launch(_stream);"), std::string::npos)
      << GraphPart;
  EXPECT_NE(GraphPart.find("_stream.synchronize();"), std::string::npos)
      << GraphPart;
}

TEST(HostGenGraph, ReductionCapturesPrefixAndKeepsHostTail) {
  Outcome O = compileProgram("reduction_host.descend", "sim", {{"nb", 8}});
  ASSERT_TRUE(O.Ok) << O.Rendered;
  size_t GraphFn = O.Artifact.find("descend::sim::GraphExec &_graph");
  ASSERT_NE(GraphFn, std::string::npos) << O.Artifact;
  std::string GraphPart = O.Artifact.substr(GraphFn);
  // data and partials each get a slot, in first-use order...
  EXPECT_NE(GraphPart.find("allocCopyCapture<double>(_stream, 0, "
                           "data.size(), \"data\")"),
            std::string::npos)
      << GraphPart;
  EXPECT_NE(GraphPart.find("allocCopyCapture<double>(_stream, 1, "
                           "partials.size(), \"partials\")"),
            std::string::npos)
      << GraphPart;
  EXPECT_NE(GraphPart.find("_graph.bind(0, data, \"data\");"),
            std::string::npos)
      << GraphPart;
  EXPECT_NE(GraphPart.find("_graph.bind(1, partials, \"partials\");"),
            std::string::npos)
      << GraphPart;
  // ...the D2H copy reuses partials' slot...
  EXPECT_NE(GraphPart.find("copyToHostCapture(_stream, 1, d_out, "
                           "\"partials\");"),
            std::string::npos)
      << GraphPart;
  // ...and the CPU finish loop emits as a plain host tail after the
  // replay, behind a join.
  size_t Launch = GraphPart.find("_graph.launch(_stream);");
  size_t Sync = GraphPart.find("_stream.synchronize();");
  size_t Tail = GraphPart.find("total[0] = 0.0;");
  ASSERT_NE(Launch, std::string::npos) << GraphPart;
  ASSERT_NE(Sync, std::string::npos) << GraphPart;
  ASSERT_NE(Tail, std::string::npos) << GraphPart;
  EXPECT_LT(Launch, Sync) << GraphPart;
  EXPECT_LT(Sync, Tail) << GraphPart;
}

TEST(HostGenGraph, UncapturableShapeFallsBackToStreamBody) {
  // The loop re-transfers into the capture-produced buffer `d`, so the
  // prefix is unusable (post-prefix statements reach into a capture
  // local): the graph overload must degrade to the plain stream body
  // instead of failing the compile.
  CompilerInvocation Inv;
  Inv.BufferName = "pipeline.descend";
  Inv.Defines["nb"] = 4;
  Inv.BackendName = "sim";
  Session S(Inv);
  CompileResult R = S.run(R"(
fn scale<nb: nat>(vec: &uniq gpu.global [f64; nb*256])
-[grid: gpu.grid<X<nb>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<256>[[block]][[thread]] =
        vec.group::<256>[[block]][[thread]] * 3.0
    }
  }
}
fn main<nb: nat>(staging: &uniq cpu.mem [f64; nb*256],
                 ticks: &uniq cpu.mem [f64; 4])
-[t: cpu.thread]-> () {
  let d = GpuGlobal::alloc_copy(&*staging);
  for r in [0..3] {
    (*ticks)[0] = 1.0;
    copy_to_gpu(&uniq d, &*staging);
    scale::<<<X<nb>, X<256>>>>(&uniq d)
  }
}
)");
  ASSERT_TRUE(R.Ok) << S.renderDiagnostics();
  size_t GraphFn = R.Artifact.find("descend::sim::GraphExec &_graph");
  ASSERT_NE(GraphFn, std::string::npos) << R.Artifact;
  std::string GraphPart = R.Artifact.substr(GraphFn);
  EXPECT_NE(GraphPart.find("(void)_graph;"), std::string::npos) << GraphPart;
  EXPECT_EQ(GraphPart.find("beginCapture"), std::string::npos) << GraphPart;
  // The stream-mode body still emits in full.
  EXPECT_NE(GraphPart.find("descend::rt::allocCopyAsync(_stream, staging)"),
            std::string::npos)
      << GraphPart;
}

//===----------------------------------------------------------------------===//
// The cuda host golden
//===----------------------------------------------------------------------===//

TEST(HostGen, CudaDriverMatchesGolden) {
  Outcome O = compileProgram("quickstart_host.descend", "cuda", {{"nb", 8}});
  ASSERT_TRUE(O.Ok) << O.Rendered;
  std::string Golden =
      readFile(std::string(DESCEND_GOLDEN_DIR) + "/quickstart_host.cu");
  EXPECT_EQ(O.Artifact, Golden)
      << "regenerate with: descendc programs/quickstart_host.descend "
         "--emit=cuda -D nb=8 -o tests/goldens/quickstart_host.cu";
}

TEST(HostGen, CudaLaunchKeepsAxisSlots) {
  // A Y-leading grid must land in dim3's .y slot, not be packed into .x.
  CompilerInvocation Inv;
  Inv.BufferName = "ygrid.descend";
  Inv.BackendName = "cuda";
  Session S(Inv);
  CompileResult R = S.run(R"(
fn scale_y(vec: &uniq gpu.global [f64; 2048])
-[grid: gpu.grid<Y<8>, X<256>>]-> () {
  sched(Y) block in grid {
    sched(X) thread in block {
      vec.group::<256>[[block]][[thread]] =
        vec.group::<256>[[block]][[thread]] * 3.0
    }
  }
}
fn main() -[t: cpu.thread]-> () {
  let h = CpuHeap::new([0.0; 2048]);
  let d = GpuGlobal::alloc_copy(&h);
  scale_y::<<<Y<8>, X<256>>>>(&uniq d)
}
)");
  ASSERT_TRUE(R.Ok) << S.renderDiagnostics();
  EXPECT_NE(R.Artifact.find(
                "scale_y<<<dim3(1, 8, 1), dim3(256, 1, 1)>>>(d);"),
            std::string::npos)
      << R.Artifact;
}

TEST(HostGen, CudaDriverFreesDeviceBuffers) {
  Outcome O = compileProgram("reduction_host.descend", "cuda", {{"nb", 8}});
  ASSERT_TRUE(O.Ok) << O.Rendered;
  EXPECT_NE(O.Artifact.find("cudaFree(d_in);"), std::string::npos)
      << O.Artifact;
  EXPECT_NE(O.Artifact.find("cudaFree(d_out);"), std::string::npos)
      << O.Artifact;
  // Byte counts are computed from the statically proven element counts.
  EXPECT_NE(O.Artifact.find("sizeof(double) * (2048)"), std::string::npos)
      << O.Artifact;
}

//===----------------------------------------------------------------------===//
// Negative programs: compile-time rejection with targeted diagnostics
//===----------------------------------------------------------------------===//

TEST(HostGenDiagnostics, SwappedCopyDirectionRejected) {
  Outcome O = compileProgram("bad_swapped_copy.descend", "");
  EXPECT_FALSE(O.Ok);
  EXPECT_TRUE(
      O.S->diagnostics().contains(DiagCode::TransferDirectionMismatch))
      << O.Rendered;
}

TEST(HostGenDiagnostics, SizeMismatchedTransferRejected) {
  Outcome O = compileProgram("bad_size_mismatch.descend", "");
  EXPECT_FALSE(O.Ok);
  EXPECT_TRUE(O.S->diagnostics().contains(DiagCode::TransferSizeMismatch))
      << O.Rendered;
}

TEST(HostGenDiagnostics, WrongLaunchConfigRejected) {
  Outcome O = compileProgram("bad_launch_config.descend", "");
  EXPECT_FALSE(O.Ok);
  EXPECT_TRUE(O.S->diagnostics().contains(DiagCode::LaunchConfigMismatch))
      << O.Rendered;
}

TEST(HostGenDiagnostics, DevicePointerDerefOnHostRejected) {
  Outcome O = compileProgram("bad_host_deref.descend", "");
  EXPECT_FALSE(O.Ok);
  EXPECT_TRUE(O.S->diagnostics().contains(DiagCode::CannotDereference))
      << O.Rendered;
}

//===----------------------------------------------------------------------===//
// hostgen API details
//===----------------------------------------------------------------------===//

TEST(HostGenApi, EmitNameMapsMainToRun) {
  FnDef Fn;
  Fn.Name = "main";
  EXPECT_EQ(hostgen::hostFnEmitName(Fn, ""), "run");
  EXPECT_EQ(hostgen::hostFnEmitName(Fn, "_small"), "run_small");
  Fn.Name = "stage_inputs";
  EXPECT_EQ(hostgen::hostFnEmitName(Fn, ""), "stage_inputs");
}

TEST(HostGenApi, HasHostFnsDistinguishesModules) {
  CompilerInvocation Inv;
  Inv.RunUntil = Stage::Typecheck;
  Session S(Inv);
  ASSERT_TRUE(S.run("fn host() -[t: cpu.thread]-> () { }").Ok)
      << S.renderDiagnostics();
  EXPECT_TRUE(hostgen::hasHostFns(*S.module()));

  Session S2(Inv);
  ASSERT_TRUE(S2.run(R"(
fn k(v: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<64>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block { v.group::<64>[[block]][[thread]] = 1.0 }
  }
}
)")
                  .Ok)
      << S2.renderDiagnostics();
  EXPECT_FALSE(hostgen::hasHostFns(*S2.module()));
}

TEST(HostGenApi, HostFunctionsCanCallEachOther) {
  CompilerInvocation Inv;
  Inv.BufferName = "chain.descend";
  Inv.BackendName = "sim";
  Session S(Inv);
  CompileResult R = S.run(R"(
fn prepare(buf: &uniq cpu.mem [f64; 16]) -[t: cpu.thread]-> () {
  for i in [0..16] { (*buf)[i] = 2.0 }
}
fn main(buf: &uniq cpu.mem [f64; 16]) -[t: cpu.thread]-> () {
  prepare(&uniq *buf)
}
)");
  ASSERT_TRUE(R.Ok) << S.renderDiagnostics();
  EXPECT_NE(R.Artifact.find("inline void prepare("), std::string::npos)
      << R.Artifact;
  EXPECT_NE(R.Artifact.find("prepare(_dev, buf);"), std::string::npos)
      << R.Artifact;
}

TEST(HostGenApi, UnsupportedHostConstructIsReported) {
  // Tuples are not part of the host fragment; the emitter reports a
  // descriptive error instead of emitting garbage.
  CompilerInvocation Inv;
  Inv.BufferName = "bad.descend";
  Inv.BackendName = "sim";
  Session S(Inv);
  CompileResult R = S.run(R"(
fn main(pair: &uniq cpu.mem (f64, f64)) -[t: cpu.thread]-> () { }
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(S.diagnostics().contains(DiagCode::BackendFailed))
      << S.renderDiagnostics();
}

} // namespace
