//===- tests/typeck_test.cpp - Tests for Descend's type system ------------===//
//
// Each negative test reproduces one of the erroneous programs from the
// paper (Sections 2 and 3.3) and asserts the diagnostic the paper shows.
// The positive tests check that the paper's correct listings type-check.
//
//===----------------------------------------------------------------------===//

#include "typeck/TypeChecker.h"

#include "parser/Parser.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace descend;

namespace {

struct CheckResult {
  std::shared_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<Module> Mod;
  bool Ok = false;
};

CheckResult checkProgram(const std::string &Src) {
  CheckResult R;
  R.SM = std::make_shared<SourceManager>();
  uint32_t Id = R.SM->addBuffer("test.descend", Src);
  R.Diags = std::make_unique<DiagnosticEngine>(*R.SM);
  Parser P(*R.SM, Id, *R.Diags);
  R.Mod = P.parseModule();
  EXPECT_FALSE(R.Diags->hasErrors())
      << "parse errors:\n"
      << R.Diags->renderAll();
  TypeChecker TC(*R.SM, *R.Diags);
  R.Ok = TC.check(*R.Mod);
  return R;
}

//===----------------------------------------------------------------------===//
// Positive cases: the paper's correct programs
//===----------------------------------------------------------------------===//

const char *Prelude = R"(
view group_by_row<row_size: nat, num_rows: nat> =
  group::<row_size/num_rows>.transpose.map(transpose)
view group_by_tile<th: nat, tw: nat> =
  group::<th>.map(map(group::<tw>)).map(transpose)
)";

TEST(Typeck, Listing2TransposeChecks) {
  std::string Src = std::string(Prelude) + R"(
fn transpose(input: & gpu.global [[f64;2048];2048],
             output: &uniq gpu.global [[f64;2048];2048])
-[grid: gpu.grid<XY<64,64>,XY<32,8>>]-> () {
  sched(Y,X) block in grid {
    let tmp = alloc::<gpu.shared, [[f64; 32]; 32]>();
    sched(Y,X) thread in block {
      for i in [0..4] {
        tmp.group_by_row::<32,4>[[thread]][i] =
          input.group_by_tile::<32,32>.transpose[[block]]
            .group_by_row::<32,4>[[thread]][i] };
      sync;
      for i in [0..4] {
        output.group_by_tile::<32,32>[[block]]
          .group_by_row::<32,4>[[thread]][i] =
          tmp.transpose.group_by_row::<32,4>[[thread]][i] }
    } } }
)";
  auto R = checkProgram(Src);
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(Typeck, Listing2WithoutSyncIsRejected) {
  // Removing the barrier makes the second tmp access (through a different
  // view chain) conflict with the first: exactly why sync cannot be
  // forgotten (Section 3.3).
  std::string Src = std::string(Prelude) + R"(
fn transpose(input: & gpu.global [[f64;2048];2048],
             output: &uniq gpu.global [[f64;2048];2048])
-[grid: gpu.grid<XY<64,64>,XY<32,8>>]-> () {
  sched(Y,X) block in grid {
    let tmp = alloc::<gpu.shared, [[f64; 32]; 32]>();
    sched(Y,X) thread in block {
      for i in [0..4] {
        tmp.group_by_row::<32,4>[[thread]][i] =
          input.group_by_tile::<32,32>.transpose[[block]]
            .group_by_row::<32,4>[[thread]][i] };
      for i in [0..4] {
        output.group_by_tile::<32,32>[[block]]
          .group_by_row::<32,4>[[thread]][i] =
          tmp.transpose.group_by_row::<32,4>[[thread]][i] }
    } } }
)";
  auto R = checkProgram(Src);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::ConflictingMemoryAccess))
      << R.Diags->renderAll();
}

TEST(Typeck, ScaleVecChecks) {
  auto R = checkProgram(R"(
fn scale_vec(vec: &uniq gpu.global [f64; 1024])
-[grid: gpu.grid<X<4>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<256>[[block]][[thread]] =
        vec.group::<256>[[block]][[thread]] * 3.0
    }
  }
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

//===----------------------------------------------------------------------===//
// S1: the rev_per_block data race (Section 2.2)
//===----------------------------------------------------------------------===//

TEST(Typeck, S1RevPerBlockDataRace) {
  auto R = checkProgram(R"(
fn rev_per_block(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<256>[[block]][[thread]] =
        arr.group::<256>[[block]].rev[[thread]]
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  ASSERT_TRUE(R.Diags->contains(DiagCode::ConflictingMemoryAccess))
      << R.Diags->renderAll();
  // The rendered message matches the paper's wording.
  std::string Msg = R.Diags->renderAll();
  EXPECT_NE(Msg.find("conflicting memory access"), std::string::npos);
  EXPECT_NE(Msg.find("conflicting prior selection"), std::string::npos);
}

TEST(Typeck, RevPerBlockWithSyncStillRacy) {
  // sync cannot fix rev_per_block: the read and write happen in the same
  // phase. Here read and write are separated by sync, which is fine.
  auto R = checkProgram(R"(
fn rev_ok(arr: &uniq gpu.global [f64; 4096],
          out: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      out.group::<256>[[block]][[thread]] =
        arr.group::<256>[[block]].rev[[thread]]
    }
  }
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

//===----------------------------------------------------------------------===//
// S2: barrier under split (Section 2.2)
//===----------------------------------------------------------------------===//

TEST(Typeck, S2BarrierUnderSplitRejected) {
  auto R = checkProgram(R"(
fn kernel(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    split(X) block at 32 {
      first_32_threads => { sync },
      rest => { }
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  ASSERT_TRUE(R.Diags->contains(DiagCode::BarrierNotAllowed))
      << R.Diags->renderAll();
  std::string Msg = R.Diags->renderAll();
  EXPECT_NE(Msg.find("barrier not allowed here"), std::string::npos);
  EXPECT_NE(Msg.find("not be performed by all threads"), std::string::npos);
}

TEST(Typeck, SyncAtGridLevelRejected) {
  auto R = checkProgram(R"(
fn kernel(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sync
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::BarrierNotAllowed));
}

TEST(Typeck, SyncInsideBlockAllowed) {
  auto R = checkProgram(R"(
fn kernel(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block { sync }
  }
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

//===----------------------------------------------------------------------===//
// S3: swapped copy direction (Section 2.3)
//===----------------------------------------------------------------------===//

TEST(Typeck, S3SwappedMemcpyArguments) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  let h_vec = CpuHeap::new([0.0; 1024]);
  let d_vec = GpuGlobal::alloc_copy(&h_vec);
  copy_mem_to_host(&uniq d_vec, &h_vec)
}
)");
  EXPECT_FALSE(R.Ok);
  ASSERT_TRUE(R.Diags->contains(DiagCode::TransferDirectionMismatch))
      << R.Diags->renderAll();
  std::string Msg = R.Diags->renderAll();
  EXPECT_NE(Msg.find("arguments to `copy_mem_to_host` are swapped"),
            std::string::npos)
      << Msg;
  EXPECT_NE(Msg.find("destination must live in `cpu.mem`"),
            std::string::npos)
      << Msg;
}

TEST(Typeck, TransferSizeMismatchIsTargeted) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  let h_big = CpuHeap::new([1.0; 2048]);
  let d_vec = GpuGlobal::alloc_copy(&h_big);
  let h_small = CpuHeap::new([0.0; 1024]);
  copy_mem_to_host(&uniq h_small, &d_vec)
}
)");
  EXPECT_FALSE(R.Ok);
  ASSERT_TRUE(R.Diags->contains(DiagCode::TransferSizeMismatch))
      << R.Diags->renderAll();
  std::string Msg = R.Diags->renderAll();
  EXPECT_NE(Msg.find("cannot transfer `2048` elements"), std::string::npos)
      << Msg;
}

TEST(Typeck, CopyToGpuDirectionChecked) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  let h_vec = CpuHeap::new([0.0; 1024]);
  let d_vec = GpuGlobal::alloc_copy(&h_vec);
  copy_to_gpu(&uniq h_vec, &d_vec)
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::TransferDirectionMismatch))
      << R.Diags->renderAll();
}

TEST(Typeck, CorrectMemcpyChecks) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  let h_vec = CpuHeap::new([0.0; 1024]);
  let d_vec = GpuGlobal::alloc_copy(&h_vec);
  copy_mem_to_host(&uniq h_vec, &d_vec)
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

//===----------------------------------------------------------------------===//
// S4: dereferencing CPU memory on the GPU (Section 2.3)
//===----------------------------------------------------------------------===//

TEST(Typeck, S4CpuPointerOnGpu) {
  auto R = checkProgram(R"(
fn init_kernel(vec: &uniq cpu.mem [f64; 1024])
-[grid: gpu.grid<X<1>, X<1024>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      (*vec)[[thread]] = 1.0
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  ASSERT_TRUE(R.Diags->contains(DiagCode::CannotDereference))
      << R.Diags->renderAll();
  std::string Msg = R.Diags->renderAll();
  EXPECT_NE(Msg.find("cannot dereference"), std::string::npos);
  EXPECT_NE(Msg.find("cpu.mem"), std::string::npos);
}

TEST(Typeck, GpuPointerOnCpuRejected) {
  auto R = checkProgram(R"(
fn host(vec: &uniq gpu.global [f64; 16]) -[t: cpu.thread]-> () {
  (*vec)[0] = 1.0
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::CannotDereference));
}

//===----------------------------------------------------------------------===//
// S5: wrong launch configuration (Sections 2.3 / 3.5)
//===----------------------------------------------------------------------===//

const char *ScaleVecPoly = R"(
fn scale_vec<n: nat>(vec: &uniq gpu.global [f64; n])
-[grid: gpu.grid<X<1>, X<n>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<n>[[block]][[thread]] =
        vec.group::<n>[[block]][[thread]] * 3.0
    }
  }
}
)";

TEST(Typeck, S5LaunchWithWrongThreadCount) {
  // SIZE (bytes) vs ELEMS: launching with 8192 threads for 1024 elements.
  std::string Src = std::string(ScaleVecPoly) + R"(
fn host() -[t: cpu.thread]-> () {
  let h = CpuHeap::new([0.0; 1024]);
  let d_vec = GpuGlobal::alloc_copy(&h);
  scale_vec::<<<X<1>, X<8192>>>>(&uniq d_vec)
}
)";
  auto R = checkProgram(Src);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::LaunchConfigMismatch) ||
              R.Diags->contains(DiagCode::MismatchedTypes))
      << R.Diags->renderAll();
}

TEST(Typeck, S5CorrectLaunchChecks) {
  std::string Src = std::string(ScaleVecPoly) + R"(
fn host() -[t: cpu.thread]-> () {
  let h = CpuHeap::new([0.0; 1024]);
  let d_vec = GpuGlobal::alloc_copy(&h);
  scale_vec::<<<X<1>, X<1024>>>>(&uniq d_vec)
}
)";
  auto R = checkProgram(Src);
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(Typeck, LaunchWithWrongDimensionality) {
  std::string Src = std::string(ScaleVecPoly) + R"(
fn host() -[t: cpu.thread]-> () {
  let h = CpuHeap::new([0.0; 1024]);
  let d_vec = GpuGlobal::alloc_copy(&h);
  scale_vec::<<<XY<1,1>, X<1024>>>>(&uniq d_vec)
}
)";
  auto R = checkProgram(Src);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::LaunchConfigMismatch));
}

TEST(Typeck, LaunchFromGpuRejected) {
  std::string Src = std::string(ScaleVecPoly) + R"(
fn kernel(vec: &uniq gpu.global [f64; 1024])
-[grid: gpu.grid<X<1>, X<1024>>]-> () {
  scale_vec::<<<X<1>, X<1024>>>>(vec)
}
)";
  auto R = checkProgram(Src);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::WrongExecutionContext));
}

//===----------------------------------------------------------------------===//
// S6/S7: narrowing violations (Section 3.3)
//===----------------------------------------------------------------------===//

TEST(Typeck, S6BorrowWholeArrayAfterSched) {
  auto R = checkProgram(R"(
fn kernel(arr: &uniq gpu.global [f32; 1024])
-[grid: gpu.grid<X<32>, X<32>>]-> () {
  sched(X) block in grid {
    let in_borrow = &uniq *arr
  }
}
)");
  EXPECT_FALSE(R.Ok);
  ASSERT_TRUE(R.Diags->contains(DiagCode::NarrowingViolated))
      << R.Diags->renderAll();
}

TEST(Typeck, S7SelectWithoutBlockNarrowing) {
  auto R = checkProgram(R"(
fn kernel(arr: &uniq gpu.global [f32; 1024])
-[grid: gpu.grid<X<32>, X<32>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      let grp = &uniq arr.group::<32>[[thread]]
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  ASSERT_TRUE(R.Diags->contains(DiagCode::NarrowingViolated))
      << R.Diags->renderAll();
}

TEST(Typeck, S7CorrectNarrowingAccepted) {
  // Line 8 of the Section 3.3 example: group per block, then per thread.
  auto R = checkProgram(R"(
fn kernel(arr: &uniq gpu.global [f32; 1024])
-[grid: gpu.grid<X<32>, X<32>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<32>[[block]][[thread]] = 1.0f32
    }
  }
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(Typeck, SharedReadNeedsNoNarrowing) {
  // All threads may read the same location concurrently.
  auto R = checkProgram(R"(
fn kernel(arr: & gpu.global [f32; 1024],
          out: &uniq gpu.global [f32; 1024])
-[grid: gpu.grid<X<32>, X<32>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      out.group::<32>[[block]][[thread]] = arr[0]
    }
  }
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

//===----------------------------------------------------------------------===//
// Further borrow / move / write checks
//===----------------------------------------------------------------------===//

TEST(Typeck, WriteThroughSharedRefRejected) {
  auto R = checkProgram(R"(
fn kernel(input: & gpu.global [f64; 1024])
-[grid: gpu.grid<X<32>, X<32>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      input.group::<32>[[block]][[thread]] = 1.0
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::SharedWriteRejected))
      << R.Diags->renderAll();
}

TEST(Typeck, UseAfterMoveRejected) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  let a = CpuHeap::new([0; 16]);
  let b = a;
  let c = a
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::UseOfMovedValue))
      << R.Diags->renderAll();
}

TEST(Typeck, CopyableTypesDoNotMove) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  let a = 3;
  let b = a;
  let c = a
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(Typeck, ConflictingUniqueBorrows) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  let a = CpuHeap::new([0; 16]);
  let r1 = &uniq a;
  let r2 = &uniq a
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::ConflictingBorrow))
      << R.Diags->renderAll();
}

TEST(Typeck, SharedBorrowsCoexist) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  let a = CpuHeap::new([0; 16]);
  let r1 = &a;
  let r2 = &a
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(Typeck, BorrowsExpireWithScope) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  let a = CpuHeap::new([0; 16]);
  { let r1 = &uniq a };
  let r2 = &uniq a
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(Typeck, IndexOutOfBoundsRejected) {
  auto R = checkProgram(R"(
fn host(arr: &uniq cpu.mem [f64; 8]) -[t: cpu.thread]-> () {
  (*arr)[8] = 1.0
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::NatCannotProve))
      << R.Diags->renderAll();
}

TEST(Typeck, LoopIndexBoundsChecked) {
  auto Ok = checkProgram(R"(
fn host(arr: &uniq cpu.mem [f64; 8]) -[t: cpu.thread]-> () {
  for i in [0..8] { (*arr)[i] = 1.0 }
}
)");
  EXPECT_TRUE(Ok.Ok) << Ok.Diags->renderAll();

  auto Bad = checkProgram(R"(
fn host(arr: &uniq cpu.mem [f64; 8]) -[t: cpu.thread]-> () {
  for i in [0..9] { (*arr)[i] = 1.0 }
}
)");
  EXPECT_FALSE(Bad.Ok);
}

TEST(Typeck, SchedOverMissingDimension) {
  auto R = checkProgram(R"(
fn kernel(arr: &uniq gpu.global [f64; 1024])
-[grid: gpu.grid<X<32>, X<32>>]-> () {
  sched(Y) block in grid { }
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::SchedOverMissingDim))
      << R.Diags->renderAll();
}

TEST(Typeck, SelectShapeMismatchRejected) {
  // 32 threads selecting from 16 elements.
  auto R = checkProgram(R"(
fn kernel(arr: &uniq gpu.global [f64; 512])
-[grid: gpu.grid<X<32>, X<32>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<16>[[block]][[thread]] = 1.0
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::SelectShapeMismatch))
      << R.Diags->renderAll();
}

TEST(Typeck, SplitArmsAccessDisjointParts) {
  auto R = checkProgram(R"(
fn kernel(arr: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<64>>]-> () {
  sched(X) block in grid {
    split(X) block at 32 {
      lo => {
        sched(X) t in lo {
          arr.split::<32>.fst[[t]] = 0.0
        }
      },
      hi => {
        sched(X) t in hi {
          arr.split::<32>.snd[[t]] = 1.0
        }
      }
    }
  }
}
)");
  EXPECT_TRUE(R.Ok) << R.Diags->renderAll();
}

TEST(Typeck, SplitArmsConflictOnSamePart) {
  auto R = checkProgram(R"(
fn kernel(arr: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<64>>]-> () {
  sched(X) block in grid {
    split(X) block at 32 {
      lo => {
        sched(X) t in lo {
          arr.split::<32>.fst[[t]] = 0.0
        }
      },
      hi => {
        sched(X) t in hi {
          arr.split::<32>.fst[[t]] = 1.0
        }
      }
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::ConflictingMemoryAccess))
      << R.Diags->renderAll();
}

TEST(Typeck, UnknownViewRejected) {
  auto R = checkProgram(R"(
fn kernel(arr: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<64>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.zigzag[[thread]] = 0.0
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::UnknownView));
}

TEST(Typeck, GroupDivisibilityEnforced) {
  auto R = checkProgram(R"(
fn kernel(arr: &uniq gpu.global [f64; 100])
-[grid: gpu.grid<X<1>, X<32>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<32>[[thread]][0] = 0.0
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::ViewSideConditionFailed))
      << R.Diags->renderAll();
}

TEST(Typeck, UnknownVariableAndFunction) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  frobnicate(x)
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::UnknownVariable));
}

TEST(Typeck, RedefinitionRejected) {
  auto R = checkProgram(R"(
fn f() -[t: cpu.thread]-> () { }
fn f() -[t: cpu.thread]-> () { }
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::Redefinition));
}

TEST(Typeck, GridFnCallableOnlyAsLaunch) {
  std::string Src = std::string(ScaleVecPoly) + R"(
fn host(v: &uniq gpu.global [f64; 64]) -[t: cpu.thread]-> () {
  scale_vec::<64>(v)
}
)";
  auto R = checkProgram(Src);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::WrongExecutionContext))
      << R.Diags->renderAll();
}

TEST(Typeck, TypeAnnotationMismatch) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  let x: f64 = 1
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::MismatchedTypes));
}

TEST(Typeck, BinaryOperatorTypeMismatch) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  let x = 1 + 2.0
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::MismatchedTypes));
}

TEST(Typeck, SharedAllocOnCpuRejected) {
  auto R = checkProgram(R"(
fn host() -[t: cpu.thread]-> () {
  let tmp = alloc::<gpu.shared, [f64; 32]>()
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags->contains(DiagCode::WrongExecutionContext));
}

} // namespace
