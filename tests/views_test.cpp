//===- tests/views_test.cpp - Unit & property tests for src/views ---------===//

#include "views/IndexSpace.h"
#include "views/View.h"

#include "parser/Parser.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

#include <set>

using namespace descend;

namespace {

Nat n(long long V) { return Nat::lit(V); }

TypeRef f64Array(long long N) {
  return makeArray(makeScalar(ScalarKind::F64), n(N));
}

TypeRef f64Array2D(long long M, long long N) {
  return makeArray(makeArray(makeScalar(ScalarKind::F64), n(N)), n(M));
}

//===----------------------------------------------------------------------===//
// Shape checking (the Listing 3 types)
//===----------------------------------------------------------------------===//

TEST(ViewTypes, GroupShape) {
  std::string Err;
  TypeRef Out = ViewRegistry::applyToType(View::group(n(8)), f64Array(32),
                                          &Err);
  ASSERT_TRUE(Out) << Err;
  EXPECT_EQ(Out->str(), "[[[[f64; 8]]; 4]]");
}

TEST(ViewTypes, GroupRequiresDivisibility) {
  std::string Err;
  TypeRef Out = ViewRegistry::applyToType(View::group(n(7)), f64Array(32),
                                          &Err);
  EXPECT_FALSE(Out);
  EXPECT_NE(Err.find("% 7 == 0"), std::string::npos);
}

TEST(ViewTypes, GroupSymbolicDivisibility) {
  // group<k> on [d; k*m] is provable for symbolic k, m.
  Nat K = Nat::var("k"), M = Nat::var("m");
  TypeRef In = makeArray(makeScalar(ScalarKind::F64), K * M);
  std::string Err;
  TypeRef Out = ViewRegistry::applyToType(View::group(K), In, &Err);
  ASSERT_TRUE(Out) << Err;
  const auto *Outer = cast<ArrayViewType>(Out.get());
  EXPECT_TRUE(Nat::proveEq(Outer->Size, M));
}

TEST(ViewTypes, SplitShape) {
  std::string Err;
  TypeRef Out = ViewRegistry::applyToType(View::splitAt(n(12)), f64Array(32),
                                          &Err);
  ASSERT_TRUE(Out) << Err;
  const auto *T = dyn_cast<TupleType>(Out.get());
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Elems[0]->str(), "[[f64; 12]]");
  EXPECT_EQ(T->Elems[1]->str(), "[[f64; 20]]");
}

TEST(ViewTypes, SplitRequiresBound) {
  std::string Err;
  EXPECT_FALSE(
      ViewRegistry::applyToType(View::splitAt(n(33)), f64Array(32), &Err));
}

TEST(ViewTypes, TransposeShape) {
  std::string Err;
  TypeRef Out = ViewRegistry::applyToType(View::transpose(),
                                          f64Array2D(8, 32), &Err);
  ASSERT_TRUE(Out) << Err;
  EXPECT_EQ(Out->str(), "[[[[f64; 8]]; 32]]");
}

TEST(ViewTypes, TransposeRequires2D) {
  std::string Err;
  EXPECT_FALSE(
      ViewRegistry::applyToType(View::transpose(), f64Array(32), &Err));
  EXPECT_NE(Err.find("two-dimensional"), std::string::npos);
}

TEST(ViewTypes, ReverseKeepsShape) {
  std::string Err;
  TypeRef Out = ViewRegistry::applyToType(View::reverse(), f64Array(32),
                                          &Err);
  ASSERT_TRUE(Out) << Err;
  EXPECT_EQ(Out->str(), "[[f64; 32]]");
}

TEST(ViewTypes, MapAppliesToElements) {
  std::string Err;
  View M = View::map({View::group(n(4))});
  TypeRef Out = ViewRegistry::applyToType(M, f64Array2D(8, 32), &Err);
  ASSERT_TRUE(Out) << Err;
  EXPECT_EQ(Out->str(), "[[[[[[f64; 4]]; 8]]; 8]]");
}

TEST(ViewTypes, ViewOnNonArrayFails) {
  std::string Err;
  EXPECT_FALSE(ViewRegistry::applyToType(View::reverse(),
                                         makeScalar(ScalarKind::F64), &Err));
}

//===----------------------------------------------------------------------===//
// Registry resolution
//===----------------------------------------------------------------------===//

TEST(ViewRegistry, ResolvesBuiltins) {
  ViewRegistry R;
  EXPECT_TRUE(R.isKnownView("group"));
  EXPECT_TRUE(R.isKnownView("rev"));
  EXPECT_FALSE(R.isKnownView("group_by_row"));
  auto C = R.resolve("group", {n(8)});
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(viewChainStr(*C), "group::<8>");
  std::string Err;
  EXPECT_FALSE(R.resolve("group", {}, &Err).has_value());
  EXPECT_FALSE(R.resolve("transpose", {n(2)}, &Err).has_value());
  EXPECT_FALSE(R.resolve("nope", {}, &Err).has_value());
}

TEST(ViewRegistry, ResolvesUserComposites) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  uint32_t Id = SM.addBuffer(
      "v", "view group_by_row<row_size: nat, num_rows: nat> = "
           "group::<row_size/num_rows>.transpose.map(transpose)");
  Parser P(SM, Id, Diags);
  auto Mod = P.parseModule();
  ASSERT_FALSE(Diags.hasErrors()) << Diags.renderAll();

  ViewRegistry R;
  R.addModuleViews(*Mod);
  ASSERT_TRUE(R.isKnownView("group_by_row"));
  std::string Err;
  auto C = R.resolve("group_by_row", {n(32), n(4)}, &Err);
  ASSERT_TRUE(C.has_value()) << Err;
  EXPECT_EQ(viewChainStr(*C), "group::<8>.transpose.map(transpose)");
  // Arity checked.
  EXPECT_FALSE(R.resolve("group_by_row", {n(32)}, &Err).has_value());
}

//===----------------------------------------------------------------------===//
// Index lowering
//===----------------------------------------------------------------------===//

TEST(IndexSpace, IdentityFlatten) {
  IndexSpace S = IndexSpace::fromDims({n(8), n(32)});
  std::string Err;
  ASSERT_TRUE(S.bindOuter(Nat::var("r"), &Err)) << Err;
  ASSERT_TRUE(S.bindOuter(Nat::var("c"), &Err)) << Err;
  Nat Flat = S.flatten(&Err);
  ASSERT_FALSE(Flat.isNull()) << Err;
  EXPECT_TRUE(Nat::proveEq(Flat, Nat::var("r") * n(32) + Nat::var("c")));
}

TEST(IndexSpace, GroupIndexing) {
  // group::<8> of [32]: element (g, r) is original 8g + r.
  IndexSpace S = IndexSpace::fromDims({n(32)});
  std::string Err;
  ASSERT_TRUE(S.applyView(View::group(n(8)), &Err)) << Err;
  EXPECT_EQ(S.rank(), 2u);
  EXPECT_TRUE(Nat::proveEq(S.logicalDim(0), n(4)));
  EXPECT_TRUE(Nat::proveEq(S.logicalDim(1), n(8)));
  ASSERT_TRUE(S.bindOuter(Nat::var("g"), &Err));
  ASSERT_TRUE(S.bindOuter(Nat::var("r"), &Err));
  Nat Flat = S.flatten(&Err);
  EXPECT_TRUE(Nat::proveEq(Flat, Nat::var("g") * n(8) + Nat::var("r")));
}

TEST(IndexSpace, ReverseIndexing) {
  IndexSpace S = IndexSpace::fromDims({n(32)});
  std::string Err;
  ASSERT_TRUE(S.applyView(View::reverse(), &Err));
  ASSERT_TRUE(S.bindOuter(Nat::var("i"), &Err));
  Nat Flat = S.flatten(&Err);
  EXPECT_TRUE(Nat::proveEq(Flat, n(31) - Nat::var("i")));
}

TEST(IndexSpace, TransposeIndexing) {
  IndexSpace S = IndexSpace::fromDims({n(8), n(32)});
  std::string Err;
  ASSERT_TRUE(S.applyView(View::transpose(), &Err));
  ASSERT_TRUE(S.bindOuter(Nat::var("c"), &Err));
  ASSERT_TRUE(S.bindOuter(Nat::var("r"), &Err));
  Nat Flat = S.flatten(&Err);
  EXPECT_TRUE(Nat::proveEq(Flat, Nat::var("r") * n(32) + Nat::var("c")));
}

TEST(IndexSpace, SplitParts) {
  IndexSpace Fst = IndexSpace::fromDims({n(32)});
  std::string Err;
  ASSERT_TRUE(Fst.takeSplitPart(n(12), true, &Err));
  EXPECT_TRUE(Nat::proveEq(Fst.logicalDim(0), n(12)));
  ASSERT_TRUE(Fst.bindOuter(Nat::var("i"), &Err));
  EXPECT_TRUE(Nat::proveEq(Fst.flatten(&Err), Nat::var("i")));

  IndexSpace Snd = IndexSpace::fromDims({n(32)});
  ASSERT_TRUE(Snd.takeSplitPart(n(12), false, &Err));
  EXPECT_TRUE(Nat::proveEq(Snd.logicalDim(0), n(20)));
  ASSERT_TRUE(Snd.bindOuter(Nat::var("i"), &Err));
  EXPECT_TRUE(Nat::proveEq(Snd.flatten(&Err), Nat::var("i") + n(12)));
}

TEST(IndexSpace, GroupByRowMatchesListing1) {
  // The Listing 2 access tmp.group_by_row::<32,4>[[thread]][i] must lower
  // to the (fixed) Listing 1 index (ty + 8*i) * 32 + tx.
  IndexSpace S = IndexSpace::fromDims({n(32), n(32)});
  std::string Err;
  // group_by_row<32,4> = group::<8>.transpose.map(transpose)
  ASSERT_TRUE(S.applyView(View::group(n(8)), &Err)) << Err;
  ASSERT_TRUE(S.applyView(View::transpose(), &Err)) << Err;
  ASSERT_TRUE(S.applyView(View::map({View::transpose()}), &Err)) << Err;
  // Shape must be [8][32][4]: thread-Y, thread-X, loop i.
  ASSERT_EQ(S.rank(), 3u);
  EXPECT_TRUE(Nat::proveEq(S.logicalDim(0), n(8)));
  EXPECT_TRUE(Nat::proveEq(S.logicalDim(1), n(32)));
  EXPECT_TRUE(Nat::proveEq(S.logicalDim(2), n(4)));
  // Select (ty, tx) then index i.
  ASSERT_TRUE(S.bindOuter(Nat::var("ty"), &Err));
  ASSERT_TRUE(S.bindOuter(Nat::var("tx"), &Err));
  ASSERT_TRUE(S.bindOuter(Nat::var("i"), &Err));
  Nat Flat = S.flatten(&Err);
  ASSERT_FALSE(Flat.isNull()) << Err;
  Nat Expected = (Nat::var("ty") + n(8) * Nat::var("i")) * n(32) +
                 Nat::var("tx");
  EXPECT_TRUE(Nat::proveEq(Flat, Expected))
      << "got " << Flat.str() << ", want " << Expected.simplified().str();
}

TEST(IndexSpace, ViewBeyondRankFails) {
  IndexSpace S = IndexSpace::fromDims({n(8)});
  std::string Err;
  EXPECT_FALSE(S.applyView(View::map({View::transpose()}), &Err));
}

TEST(IndexSpace, FlattenRequiresScalar) {
  IndexSpace S = IndexSpace::fromDims({n(8)});
  std::string Err;
  EXPECT_TRUE(S.flatten(&Err).isNull());
}

//===----------------------------------------------------------------------===//
// Property tests: views are permutations (injectivity is the safety basis)
//===----------------------------------------------------------------------===//

struct ViewCase {
  const char *Name;
  std::vector<long long> Dims;
  ViewChain Chain;
};

class ViewPermutationTest : public ::testing::TestWithParam<int> {};

std::vector<ViewCase> permutationCases() {
  return {
      {"group8", {32}, {View::group(n(8))}},
      {"reverse", {64}, {View::reverse()}},
      {"transpose", {8, 32}, {View::transpose()}},
      {"group_rev", {24}, {View::group(n(6)), View::map({View::reverse()})}},
      {"group_by_row",
       {32, 32},
       {View::group(n(8)), View::transpose(), View::map({View::transpose()})}},
      {"tile",
       {16, 16},
       {View::group(n(4)), View::map({View::map({View::group(n(4))})}),
        View::map({View::transpose()})}},
      {"rev_of_group", {30}, {View::group(n(5)), View::reverse()}},
      {"double_transpose", {6, 10}, {View::transpose(), View::transpose()}},
  };
}

TEST_P(ViewPermutationTest, EveryElementReachedExactlyOnce) {
  ViewCase C = permutationCases()[GetParam()];
  std::vector<Nat> Dims;
  long long Total = 1;
  for (long long D : C.Dims) {
    Dims.push_back(n(D));
    Total *= D;
  }
  IndexSpace Base = IndexSpace::fromDims(Dims);
  std::string Err;
  for (const View &V : C.Chain)
    ASSERT_TRUE(Base.applyView(V, &Err)) << C.Name << ": " << Err;

  // Enumerate the full logical index space and collect flat indices.
  std::vector<long long> Extents;
  for (unsigned I = 0; I != Base.rank(); ++I) {
    auto E = Base.logicalDim(I).evaluate({});
    ASSERT_TRUE(E.has_value());
    Extents.push_back(*E);
  }
  long long LogicalTotal = 1;
  for (long long E : Extents)
    LogicalTotal *= E;
  ASSERT_EQ(LogicalTotal, Total) << C.Name << ": views must preserve size";

  std::set<long long> Seen;
  std::vector<long long> Idx(Extents.size(), 0);
  for (long long Count = 0; Count != LogicalTotal; ++Count) {
    IndexSpace S = Base;
    for (unsigned I = 0; I != Idx.size(); ++I)
      ASSERT_TRUE(S.bindOuter(n(Idx[I]), &Err));
    Nat Flat = S.flatten(&Err);
    ASSERT_FALSE(Flat.isNull()) << Err;
    auto V = Flat.evaluate({});
    ASSERT_TRUE(V.has_value());
    EXPECT_GE(*V, 0) << C.Name;
    EXPECT_LT(*V, Total) << C.Name;
    EXPECT_TRUE(Seen.insert(*V).second)
        << C.Name << ": duplicate flat index " << *V;
    // Advance the multi-index.
    for (int I = Idx.size() - 1; I >= 0; --I) {
      if (++Idx[I] < Extents[I])
        break;
      Idx[I] = 0;
    }
  }
  EXPECT_EQ(Seen.size(), static_cast<size_t>(Total)) << C.Name;
}

INSTANTIATE_TEST_SUITE_P(AllViews, ViewPermutationTest,
                         ::testing::Range(0, 8));

} // namespace
