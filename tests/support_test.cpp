//===- tests/support_test.cpp - Unit tests for src/support ----------------===//

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace descend;

namespace {

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

struct Animal {
  enum class Kind { Dog, Cat, Sphynx };
  Kind K;
  explicit Animal(Kind K) : K(K) {}
};
struct Dog : Animal {
  Dog() : Animal(Kind::Dog) {}
  static bool classof(const Animal *A) { return A->K == Kind::Dog; }
};
struct Cat : Animal {
  explicit Cat(Kind K = Kind::Cat) : Animal(K) {}
  static bool classof(const Animal *A) {
    return A->K == Kind::Cat || A->K == Kind::Sphynx;
  }
};
struct Sphynx : Cat {
  Sphynx() : Cat(Kind::Sphynx) {}
  static bool classof(const Animal *A) { return A->K == Kind::Sphynx; }
};

TEST(Casting, IsaMatchesDynamicKind) {
  Dog D;
  Sphynx S;
  Animal *AD = &D, *AS = &S;
  EXPECT_TRUE(isa<Dog>(AD));
  EXPECT_FALSE(isa<Cat>(AD));
  EXPECT_TRUE(isa<Cat>(AS));
  EXPECT_TRUE(isa<Sphynx>(AS));
  EXPECT_TRUE((isa<Dog, Cat>(AS)));
  EXPECT_FALSE((isa<Dog, Sphynx>(static_cast<Animal *>(&D))) == false);
}

TEST(Casting, DynCastReturnsNullOnMismatch) {
  Dog D;
  Animal *A = &D;
  EXPECT_EQ(dyn_cast<Cat>(A), nullptr);
  EXPECT_NE(dyn_cast<Dog>(A), nullptr);
  EXPECT_EQ(dyn_cast_if_present<Dog>(static_cast<Animal *>(nullptr)), nullptr);
  EXPECT_FALSE(isa_and_present<Dog>(static_cast<Animal *>(nullptr)));
}

TEST(Casting, CastPreservesConstness) {
  const Sphynx S;
  const Animal *A = &S;
  const Cat *C = cast<Cat>(A);
  EXPECT_EQ(C, &S);
}

//===----------------------------------------------------------------------===//
// SourceManager
//===----------------------------------------------------------------------===//

TEST(SourceManager, LineColumnResolution) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("a.descend", "fn foo() {\n  let x = 1;\n}\n");
  EXPECT_EQ(Id, 1u);
  PresumedLoc P = SM.presumed(SourceLoc(Id, 0));
  EXPECT_EQ(P.Line, 1u);
  EXPECT_EQ(P.Column, 1u);
  // Offset of 'l' in "let".
  P = SM.presumed(SourceLoc(Id, 13));
  EXPECT_EQ(P.Line, 2u);
  EXPECT_EQ(P.Column, 3u);
  EXPECT_EQ(SM.lineContaining(SourceLoc(Id, 13)), "  let x = 1;");
}

TEST(SourceManager, MultipleBuffers) {
  SourceManager SM;
  uint32_t A = SM.addBuffer("a", "aaa");
  uint32_t B = SM.addBuffer("b", "b\nbb");
  EXPECT_EQ(SM.bufferName(A), "a");
  EXPECT_EQ(SM.bufferText(B), "b\nbb");
  EXPECT_EQ(SM.presumed(SourceLoc(B, 2)).Line, 2u);
}

TEST(SourceManager, LastLineWithoutNewline) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("x", "one\ntwo");
  EXPECT_EQ(SM.lineContaining(SourceLoc(Id, 5)), "two");
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diagnostics, CountsErrorsAndFindsCodes) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("k.descend", "arr[[thread]] = arr.rev[[thread]];");
  DiagnosticEngine DE(SM);
  EXPECT_FALSE(DE.hasErrors());
  DE.error(DiagCode::ConflictingMemoryAccess,
           SourceRange(SourceLoc(Id, 0), SourceLoc(Id, 13)),
           "conflicting memory access")
      .note(SourceRange(SourceLoc(Id, 16), SourceLoc(Id, 33)),
            "cannot select memory because of a conflicting prior selection "
            "here");
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.errorCount(), 1u);
  EXPECT_TRUE(DE.contains(DiagCode::ConflictingMemoryAccess));
  EXPECT_FALSE(DE.contains(DiagCode::BarrierNotAllowed));
}

TEST(Diagnostics, RenderShowsSnippetAndCarets) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("k.descend", "arr[[thread]] = arr.rev[[thread]];");
  DiagnosticEngine DE(SM);
  DE.error(DiagCode::ConflictingMemoryAccess,
           SourceRange(SourceLoc(Id, 0), SourceLoc(Id, 13)),
           "conflicting memory access");
  std::string R = DE.renderAll();
  EXPECT_NE(R.find("error: conflicting memory access"), std::string::npos);
  EXPECT_NE(R.find("k.descend:1:1"), std::string::npos);
  EXPECT_NE(R.find("^^^^^^^^^^^^^"), std::string::npos);
}

TEST(Diagnostics, WarningsAreNotErrors) {
  SourceManager SM;
  DiagnosticEngine DE(SM);
  DE.warning(DiagCode::NatCannotProve, SourceRange(), "might not hold");
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_EQ(DE.all().size(), 1u);
}

TEST(Diagnostics, HeadlinesMatchPaperErrorMessages) {
  EXPECT_STREQ(diagCodeHeadline(DiagCode::ConflictingMemoryAccess),
               "conflicting memory access");
  EXPECT_STREQ(diagCodeHeadline(DiagCode::BarrierNotAllowed),
               "barrier not allowed here");
  EXPECT_STREQ(diagCodeHeadline(DiagCode::MismatchedTypes),
               "mismatched types");
  EXPECT_STREQ(diagCodeHeadline(DiagCode::CannotDereference),
               "cannot dereference");
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtils, Strfmt) {
  EXPECT_EQ(strfmt("%d + %s", 3, "x"), "3 + x");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(StringUtils, JoinSplitTrimReplace) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(trim("  x \n"), "x");
  EXPECT_EQ(replaceAll("aXbXc", "X", "__"), "a__b__c");
}

} // namespace
