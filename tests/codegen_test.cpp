//===- tests/codegen_test.cpp - CUDA/sim backend tests --------------------===//

#include "codegen/Backend.h"

#include "codegen/PhaseIR.h"
#include "driver/Pipeline.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace descend;

namespace {

struct Gen {
  std::string Cuda, Sim, Error;
  bool Ok = false;
};

Gen generate(const std::string &Src,
             std::map<std::string, long long> Defines = {}) {
  Gen G;
  CompilerInvocation Inv;
  Inv.BufferName = "t.descend";
  Inv.Defines = std::move(Defines);
  Inv.RunUntil = Stage::Typecheck;
  Session S(Inv);
  if (!S.run(Src).Ok) {
    G.Error = S.renderDiagnostics();
    return G;
  }
  const codegen::BackendRegistry &R = codegen::BackendRegistry::instance();
  codegen::GenResult Cuda =
      R.lookup("cuda")->emit(*S.module(), codegen::BackendOptions());
  if (!Cuda.Ok) {
    G.Error = Cuda.Error;
    return G;
  }
  G.Cuda = std::move(Cuda.Code);
  codegen::GenResult Sim =
      R.lookup("sim")->emit(*S.module(), codegen::BackendOptions());
  if (!Sim.Ok) {
    G.Error = Sim.Error;
    return G;
  }
  G.Sim = std::move(Sim.Code);
  G.Ok = true;
  return G;
}

const char *ScaleVec = R"(
fn scale_vec(vec: &uniq gpu.global [f64; 1024])
-[grid: gpu.grid<X<4>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<256>[[block]][[thread]] =
        vec.group::<256>[[block]][[thread]] * 3.0
    }
  }
}
)";

TEST(CudaGen, ScaleVecKernel) {
  Gen G = generate(ScaleVec);
  ASSERT_TRUE(G.Ok) << G.Error;
  // The kernel signature and the fully simplified selection index.
  EXPECT_NE(G.Cuda.find("__global__ void scale_vec(double *vec)"),
            std::string::npos)
      << G.Cuda;
  // The fully simplified selection index is computed once (index CSE)
  // and reused by the load and the store.
  EXPECT_NE(G.Cuda.find("const long long _i0 = blockIdx.x * 256 + "
                        "threadIdx.x;"),
            std::string::npos)
      << G.Cuda;
  EXPECT_NE(G.Cuda.find("vec[_i0] = (vec[_i0] * 3.0);"), std::string::npos)
      << G.Cuda;
  // No view machinery survives into the generated code.
  EXPECT_EQ(G.Cuda.find("group"), std::string::npos);
}

TEST(CudaGen, SharedRefBecomesConstPointer) {
  Gen G = generate(R"(
fn copy(src: & gpu.global [f64; 256], dst: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<1>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      dst.group::<256>[[block]][[thread]] =
        src.group::<256>[[block]][[thread]]
    }
  }
}
)");
  ASSERT_TRUE(G.Ok) << G.Error;
  EXPECT_NE(G.Cuda.find("const double *src, double *dst"),
            std::string::npos)
      << G.Cuda;
}

TEST(CudaGen, TransposeMatchesListing1Indexing) {
  Gen G = generate(R"(
view group_by_row<row_size: nat, num_rows: nat> =
  group::<row_size/num_rows>.transpose.map(transpose)
view group_by_tile<th: nat, tw: nat> =
  group::<th>.map(map(group::<tw>)).map(transpose)
fn transpose<n: nat>(input: & gpu.global [[f64; n]; n],
                     output: &uniq gpu.global [[f64; n]; n])
-[grid: gpu.grid<XY<n/32, n/32>, XY<32, 8>>]-> () {
  sched(Y, X) block in grid {
    let tmp = alloc::<gpu.shared, [[f64; 32]; 32]>();
    sched(Y, X) thread in block {
      for i in [0..4] {
        tmp.group_by_row::<32, 4>[[thread]][i] =
          input.group_by_tile::<32, 32>.transpose[[block]]
            .group_by_row::<32, 4>[[thread]][i]
      };
      sync;
      for i in [0..4] {
        output.group_by_tile::<32, 32>[[block]]
          .group_by_row::<32, 4>[[thread]][i] =
          tmp.transpose.group_by_row::<32, 4>[[thread]][i]
      }
    }
  }
}
)",
                   {{"n", 2048}});
  ASSERT_TRUE(G.Ok) << G.Error;
  EXPECT_NE(G.Cuda.find("__shared__ double tmp[1024];"), std::string::npos)
      << G.Cuda;
  EXPECT_NE(G.Cuda.find("__syncthreads();"), std::string::npos);
  // The store into tmp is the fixed Listing 1 index (ty + 8i) * 32 + tx,
  // in canonical polynomial order (coordinates sort before the loop
  // variable since lowering spells them _tx/_ty).
  EXPECT_NE(G.Cuda.find("tmp[threadIdx.x + threadIdx.y * 32 + i * 256]"),
            std::string::npos)
      << G.Cuda;
  // The input read matches (32 bx + ty + 8i) * 2048 + 32 by + tx.
  EXPECT_NE(G.Cuda.find("input[blockIdx.x * 65536 + blockIdx.y * 32 + "
                        "threadIdx.x + threadIdx.y * 2048 + i * 16384]"),
            std::string::npos)
      << G.Cuda;
}

TEST(CudaGen, SplitBecomesIfElse) {
  Gen G = generate(R"(
fn k(arr: &uniq gpu.global [f64; 64])
-[grid: gpu.grid<X<1>, X<64>>]-> () {
  sched(X) block in grid {
    split(X) block at 32 {
      lo => { sched(X) t in lo { arr.split::<32>.fst[[t]] = 0.0 } },
      hi => { sched(X) t in hi { arr.split::<32>.snd[[t]] = 1.0 } }
    }
  }
}
)");
  ASSERT_TRUE(G.Ok) << G.Error;
  EXPECT_NE(G.Cuda.find("if (threadIdx.x < 32) {"), std::string::npos)
      << G.Cuda;
  // snd-arm coordinates are rebased: local t = threadIdx.x - 32, and the
  // split view adds the 32 back: the two cancel.
  EXPECT_NE(G.Cuda.find("arr[threadIdx.x] = 1.0;"), std::string::npos)
      << G.Cuda;
}

TEST(CudaGen, HostFunctionUsesCudaApi) {
  Gen G = generate(R"(
fn scale_vec(vec: &uniq gpu.global [f64; 1024])
-[grid: gpu.grid<X<4>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<256>[[block]][[thread]] =
        vec.group::<256>[[block]][[thread]] * 3.0
    }
  }
}
fn host() -[t: cpu.thread]-> () {
  let h = CpuHeap::new([1.0; 1024]);
  let d = GpuGlobal::alloc_copy(&h);
  scale_vec::<<<X<4>, X<256>>>>(&uniq d);
  copy_mem_to_host(&uniq h, &d)
}
)");
  ASSERT_TRUE(G.Ok) << G.Error;
  EXPECT_NE(G.Cuda.find("std::vector<double> h(1024, 1"), std::string::npos)
      << G.Cuda;
  EXPECT_NE(G.Cuda.find("cudaMalloc(&d, sizeof(double) * (1024));"),
            std::string::npos)
      << G.Cuda;
  EXPECT_NE(G.Cuda.find("cudaMemcpyHostToDevice"), std::string::npos);
  EXPECT_NE(G.Cuda.find("scale_vec<<<dim3(4, 1, 1), dim3(256, 1, 1)>>>(d);"),
            std::string::npos)
      << G.Cuda;
  EXPECT_NE(G.Cuda.find("cudaMemcpy(h.data(), d"), std::string::npos);
  EXPECT_NE(G.Cuda.find("cudaDeviceSynchronize();"), std::string::npos);
  // hostgen releases every device allocation before returning.
  EXPECT_NE(G.Cuda.find("cudaFree(d);"), std::string::npos) << G.Cuda;
}

TEST(SimGen, PhasesSplitAtSync) {
  Gen G = generate(R"(
fn k(arr: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<1>, X<256>>]-> () {
  sched(X) block in grid {
    let tmp = alloc::<gpu.shared, [f64; 256]>();
    sched(X) thread in block {
      tmp[[thread]] = arr.group::<256>[[block]][[thread]];
      sync;
      arr.group::<256>[[block]][[thread]] = tmp.rev[[thread]]
    }
  }
}
)");
  ASSERT_TRUE(G.Ok) << G.Error;
  // Two phases (two lambdas) and a reversed shared read in the second.
  size_t First = G.Sim.find("[&](BlockCtx &_b, ThreadCtx &_t)");
  ASSERT_NE(First, std::string::npos);
  size_t Second =
      G.Sim.find("[&](BlockCtx &_b, ThreadCtx &_t)", First + 1);
  EXPECT_NE(Second, std::string::npos) << G.Sim;
  EXPECT_NE(G.Sim.find("255 - _tx"), std::string::npos) << G.Sim;
  // No __syncthreads in the sim backend.
  EXPECT_EQ(G.Sim.find("__syncthreads"), std::string::npos);
}

TEST(SimGen, LocalsSpillAcrossPhases) {
  Gen G = generate(R"(
fn k(arr: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<1>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      let acc = 1.5;
      sync;
      arr.group::<256>[[block]][[thread]] = acc
    }
  }
}
)");
  ASSERT_TRUE(G.Ok) << G.Error;
  // Spill before the phase boundary, reload after.
  EXPECT_NE(G.Sim.find("_b.shared<double>(_locals_base + 0)[_lin] = acc_0;"),
            std::string::npos)
      << G.Sim;
  EXPECT_NE(G.Sim.find(
                "double acc_0 = _b.shared<double>(_locals_base + 0)[_lin];"),
            std::string::npos)
      << G.Sim;
}

TEST(SimGen, RequiresConcreteDimensions) {
  CompilerInvocation Inv;
  Inv.BufferName = "t.descend";
  Inv.BackendName = "sim";
  Session S(Inv);
  CompileResult R = S.run(R"(
fn k<n: nat>(arr: &uniq gpu.global [f64; n])
-[grid: gpu.grid<X<1>, X<n>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<n>[[block]][[thread]] = 0.0
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Reached, Stage::Typecheck);
  EXPECT_TRUE(R.Artifact.empty());
  EXPECT_NE(S.renderDiagnostics().find("--define"), std::string::npos)
      << S.renderDiagnostics();
}

/// Counts the phase lambdas of a generated sim artifact.
size_t phaseLambdaCount(const std::string &Sim) {
  size_t Count = 0, Pos = 0;
  while ((Pos = Sim.find("[&](BlockCtx", Pos)) != std::string::npos) {
    ++Count;
    ++Pos;
  }
  return Count;
}

TEST(SimGen, SyncLoopsBecomePhaseLoops) {
  Gen G = generate(R"(
fn k(arr: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<1>, X<256>>]-> () {
  sched(X) block in grid {
    let tmp = alloc::<gpu.shared, [f64; 256]>();
    sched(X) thread in block {
      for s in [0..3] {
        tmp[[thread]] = arr.group::<256>[[block]][[thread]];
        sync
      }
    }
  }
}
)");
  ASSERT_TRUE(G.Ok) << G.Error;
  // The loop survives as host-side structure: one phase lambda inside a
  // loopBegin/loopEnd pair, not three unrolled copies.
  EXPECT_EQ(phaseLambdaCount(G.Sim), 1u) << G.Sim;
  EXPECT_NE(G.Sim.find("_prog.loopBegin(0"), std::string::npos) << G.Sim;
  EXPECT_NE(G.Sim.find("return 3; }"), std::string::npos) << G.Sim;
  EXPECT_NE(G.Sim.find("_prog.loopEnd();"), std::string::npos) << G.Sim;
  EXPECT_NE(G.Sim.find("launchProgram"), std::string::npos) << G.Sim;
}

TEST(SimGen, LoopFreeKernelsKeepVariadicLaunch) {
  // Straight-line kernels stay on the direct launchPhases path (no type
  // erasure in the per-thread calls).
  Gen G = generate(R"(
fn k(arr: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<1>, X<256>>]-> () {
  sched(X) block in grid {
    let tmp = alloc::<gpu.shared, [f64; 256]>();
    sched(X) thread in block {
      tmp[[thread]] = arr.group::<256>[[block]][[thread]];
      sync;
      arr.group::<256>[[block]][[thread]] = tmp.rev[[thread]]
    }
  }
}
)");
  ASSERT_TRUE(G.Ok) << G.Error;
  EXPECT_NE(G.Sim.find("launchPhases"), std::string::npos) << G.Sim;
  EXPECT_EQ(G.Sim.find("PhaseProgram"), std::string::npos) << G.Sim;
}

TEST(SimGen, IterationDependentBoundsAreLegal) {
  // The inner bound depends on the outer loop variable: impossible to
  // unroll, lowered as nested PhaseLoops with the bound read from the
  // block's loop-variable slots at runtime.
  Gen G = generate(R"(
fn k(arr: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<1>, X<256>>]-> () {
  sched(X) block in grid {
    let tmp = alloc::<gpu.shared, [f64; 256]>();
    sched(X) thread in block {
      for s in [0..4] {
        for u in [0..s+1] {
          tmp[[thread]] = arr.group::<256>[[block]][[thread]];
          sync
        }
      }
    }
  }
}
)");
  ASSERT_TRUE(G.Ok) << G.Error;
  EXPECT_NE(G.Sim.find("_prog.loopBegin(1"), std::string::npos) << G.Sim;
  EXPECT_NE(G.Sim.find("const long long s = _b.loopVar(0); (void)s; "
                       "return 1 + s;"),
            std::string::npos)
      << G.Sim;
}

TEST(SimGen, SplitLoopsKeepPreciseStaticBoundsDiagnostic) {
  // Split positions (and part shapes) change per iteration, so loops
  // containing split are genuinely static: symbolic bounds stay an error,
  // now with a diagnostic naming the reason.
  CompilerInvocation Inv;
  Inv.BufferName = "t.descend";
  Inv.BackendName = "sim";
  Session S(Inv);
  CompileResult R = S.run(R"(
fn k<m: nat>(arr: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<1>, X<256>>]-> () {
  sched(X) block in grid {
    for s in [0..m] {
      split(X) block at 128 {
        lo => { sched(X) t in lo { arr.split::<128>.fst[[t]] = 0.0 } },
        hi => { sched(X) t in hi { arr.split::<128>.snd[[t]] = 1.0 } }
      }
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  std::string Rendered = S.renderDiagnostics();
  EXPECT_NE(Rendered.find("loops containing split need static bounds"),
            std::string::npos)
      << Rendered;
  EXPECT_NE(Rendered.find("[0..m]"), std::string::npos) << Rendered;
}

TEST(SimGen, UninstantiatedLoopBoundIsDiagnosed) {
  // A free size variable in a sync-loop bound cannot be emitted (nothing
  // declares it in the generated code): it must be a clean diagnostic
  // pointing at --define, not silently uncompilable output.
  CompilerInvocation Inv;
  Inv.BufferName = "t.descend";
  Inv.BackendName = "sim";
  Session S(Inv);
  CompileResult R = S.run(R"(
fn k<m: nat>(arr: &uniq gpu.global [f64; 256])
-[grid: gpu.grid<X<1>, X<256>>]-> () {
  sched(X) block in grid {
    let tmp = alloc::<gpu.shared, [f64; 256]>();
    sched(X) thread in block {
      for s in [0..m] {
        tmp[[thread]] = arr.group::<256>[[block]][[thread]];
        sync
      }
    }
  }
}
)");
  EXPECT_FALSE(R.Ok);
  std::string Rendered = S.renderDiagnostics();
  EXPECT_NE(Rendered.find("uninstantiated size variable `m`"),
            std::string::npos)
      << Rendered;
  EXPECT_NE(Rendered.find("--define"), std::string::npos) << Rendered;
}

//===----------------------------------------------------------------------===//
// The Figure 8 matmul through the phase-program IR
//===----------------------------------------------------------------------===//

std::string readKernelFile(const std::string &Name) {
  std::ifstream In(std::string(DESCEND_KERNEL_DIR "/") + Name);
  EXPECT_TRUE(In.good()) << "missing kernel " << Name;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Compiles kernels/matmul.descend at tile count \p Nt and returns the
/// sim artifact.
std::string matmulSim(long long Nt) {
  Gen G = generate(readKernelFile("matmul.descend"), {{"nt", Nt}});
  EXPECT_TRUE(G.Ok) << G.Error;
  return G.Sim;
}

TEST(SimGen, MatmulPhaseCountIndependentOfNt) {
  std::string Small = matmulSim(4);
  std::string Large = matmulSim(32);
  // Constant number of phase lambdas (init, tile load, mac, write back)
  // regardless of the tile count; only the loop bound differs.
  EXPECT_EQ(phaseLambdaCount(Small), 4u) << Small;
  EXPECT_EQ(phaseLambdaCount(Large), 4u) << Large;
  EXPECT_NE(Small.find("return 4; }"), std::string::npos) << Small;
  EXPECT_NE(Large.find("return 32; }"), std::string::npos) << Large;
}

TEST(PhaseIR, DumpPrintsLoopBounds) {
  CompilerInvocation Inv;
  Inv.BufferName = "matmul.descend";
  Inv.Defines["nt"] = 4;
  Inv.RunUntil = Stage::Typecheck;
  Session S(Inv);
  ASSERT_TRUE(S.run(readKernelFile("matmul.descend")).Ok)
      << S.renderDiagnostics();
  std::string Dump, Error;
  ASSERT_TRUE(codegen::dumpPhasePrograms(*S.module(), Dump, Error)) << Error;
  EXPECT_NE(Dump.find("straight phases: 4"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("max loop depth: 1"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("loop t in [0..4) slot 0"), std::string::npos) << Dump;
}

TEST(CudaGen, MatmulMatchesGolden) {
  // tests/goldens/matmul.cu pins the emitted CUDA matmul byte for byte:
  // it was captured before the KIR refactor and updated intentionally
  // with the index-CSE/naming changes, so any emission drift is a
  // deliberate, reviewed golden update.
  std::ifstream In(DESCEND_GOLDEN_DIR "/matmul.cu");
  ASSERT_TRUE(In.good()) << "missing golden matmul.cu";
  std::stringstream SS;
  SS << In.rdbuf();
  Gen G = generate(readKernelFile("matmul.descend"), {{"nt", 4}});
  ASSERT_TRUE(G.Ok) << G.Error;
  EXPECT_EQ(G.Cuda, SS.str());
}

TEST(CudaGen, MatmulTileLoopKeepsSyncthreads) {
  Gen G = generate(readKernelFile("matmul.descend"), {{"nt", 4}});
  ASSERT_TRUE(G.Ok) << G.Error;
  // The tile loop survives as a real for with the barriers inside, the
  // way a CUDA programmer writes it — no unrolled copies.
  size_t LoopPos = G.Cuda.find("for (long long t = 0; t < 4; ++t) {");
  ASSERT_NE(LoopPos, std::string::npos) << G.Cuda;
  size_t SyncPos = G.Cuda.find("__syncthreads();", LoopPos);
  size_t ClosePos = G.Cuda.find("\n  }", LoopPos);
  ASSERT_NE(SyncPos, std::string::npos) << G.Cuda;
  ASSERT_NE(ClosePos, std::string::npos) << G.Cuda;
  EXPECT_LT(SyncPos, ClosePos) << "__syncthreads() must sit inside the "
                                  "tile loop:\n"
                               << G.Cuda;
}

} // namespace
