//===- tests/descendc_cli_test.cpp - descendc command-line behaviour --------===//
//
// Drives the installed descendc binary as a subprocess and checks the
// command-line contract: exit code 0 for successful compilations, 1 for
// rejected programs / IO failures, 2 for driver misuse (unknown flags,
// malformed -D arguments), each with a diagnostic naming the offending
// argument.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Stderr;
  std::string Stdout;
};

/// Runs `descendc <args>`, capturing both streams.
RunResult runDescendc(const std::string &Args) {
  static int Counter = 0;
  std::string Base = ::testing::TempDir() + "descendc_cli_" +
                     std::to_string(Counter++);
  std::string OutFile = Base + ".out", ErrFile = Base + ".err";
  std::string Cmd = std::string(DESCENDC_BIN) + " " + Args + " > " + OutFile +
                    " 2> " + ErrFile;
  int Status = std::system(Cmd.c_str());

  RunResult R;
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  auto Slurp = [](const std::string &Path) {
    std::ifstream In(Path);
    std::stringstream SS;
    SS << In.rdbuf();
    return SS.str();
  };
  R.Stdout = Slurp(OutFile);
  R.Stderr = Slurp(ErrFile);
  std::remove(OutFile.c_str());
  std::remove(ErrFile.c_str());
  return R;
}

std::string kernel(const std::string &Name) {
  return std::string(DESCEND_KERNEL_DIR) + "/" + Name;
}
std::string program(const std::string &Name) {
  return std::string(DESCEND_PROGRAM_DIR) + "/" + Name;
}

TEST(DescendcCli, HelpPrintsUsageToStdoutAndExitsZero) {
  for (const char *Flag : {"--help", "-h"}) {
    RunResult R = runDescendc(Flag);
    EXPECT_EQ(R.ExitCode, 0) << Flag;
    EXPECT_NE(R.Stdout.find("usage: descendc"), std::string::npos)
        << R.Stdout;
    EXPECT_NE(R.Stdout.find("backends:"), std::string::npos) << R.Stdout;
    EXPECT_TRUE(R.Stderr.empty()) << R.Stderr;
  }
}

TEST(DescendcCli, TimePassesMarksFailedStage) {
  // Codegen on the uninstantiated matmul fails (unfolded sizes); the
  // timing table must not present the codegen row as having been
  // reached.
  RunResult R = runDescendc(kernel("matmul.descend") +
                            " --emit=cuda --time-passes -o /dev/null");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Stderr.find("stage reached: typecheck"), std::string::npos)
      << R.Stderr;
  EXPECT_NE(R.Stderr.find("codegen"), std::string::npos) << R.Stderr;
  EXPECT_NE(R.Stderr.find("(failed)"), std::string::npos) << R.Stderr;
}

TEST(DescendcCli, TimePassesHasNoFailedMarkOnSuccess) {
  RunResult R = runDescendc(kernel("matmul.descend") +
                            " --emit=cuda --time-passes -D nt=4 "
                            "-o /dev/null");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_NE(R.Stderr.find("stage reached: codegen"), std::string::npos)
      << R.Stderr;
  EXPECT_EQ(R.Stderr.find("(failed)"), std::string::npos) << R.Stderr;
}

TEST(DescendcCli, SuccessfulCheckExitsZero) {
  RunResult R = runDescendc(kernel("scale_vec.descend") + " --emit=check");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
}

TEST(DescendcCli, HostProgramEmitsSimDriver) {
  RunResult R =
      runDescendc(program("quickstart_host.descend") + " --emit=sim -D nb=4");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_NE(R.Stdout.find("inline void run("), std::string::npos)
      << R.Stdout;
}

TEST(DescendcCli, RejectedProgramExitsOne) {
  RunResult R = runDescendc(program("bad_swapped_copy.descend"));
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Stderr.find("arguments to `copy_mem_to_host` are swapped"),
            std::string::npos)
      << R.Stderr;
}

TEST(DescendcCli, MissingInputFileExitsOne) {
  RunResult R = runDescendc("/nonexistent/no_such_file.descend");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Stderr.find("cannot open"), std::string::npos) << R.Stderr;
}

TEST(DescendcCli, UnknownFlagExitsTwoWithDiagnostic) {
  RunResult R =
      runDescendc(kernel("scale_vec.descend") + " --frobnicate");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("unrecognized option '--frobnicate'"),
            std::string::npos)
      << R.Stderr;
}

TEST(DescendcCli, MalformedDefineMissingValueExitsTwo) {
  RunResult R = runDescendc(kernel("scale_vec.descend") + " -D nb");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("malformed -D argument 'nb'"), std::string::npos)
      << R.Stderr;
}

TEST(DescendcCli, MalformedDefineNonIntegerExitsTwo) {
  RunResult R = runDescendc(kernel("scale_vec.descend") + " -D nb=eight");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("'eight' is not an integer"), std::string::npos)
      << R.Stderr;
}

TEST(DescendcCli, InlineDefineFormIsValidatedToo) {
  RunResult R = runDescendc(kernel("scale_vec.descend") + " -Dnb=");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("malformed -D"), std::string::npos) << R.Stderr;

  RunResult Ok = runDescendc(kernel("scale_vec.descend") +
                             " -Dnb=4 --emit=check");
  EXPECT_EQ(Ok.ExitCode, 0) << Ok.Stderr;
}

TEST(DescendcCli, ExtraPositionalArgumentExitsTwo) {
  RunResult R = runDescendc(kernel("scale_vec.descend") + " " +
                            kernel("reduce.descend"));
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("unexpected extra input"), std::string::npos)
      << R.Stderr;
}

TEST(DescendcCli, MissingInputArgumentExitsTwo) {
  RunResult R = runDescendc("--emit=check");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("no input file"), std::string::npos) << R.Stderr;
}

TEST(DescendcCli, DumpKirPrintsKernelStatements) {
  RunResult R = runDescendc(kernel("matmul.descend") + " --dump-kir -D nt=4");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_NE(R.Stdout.find("kir for `matmul`"), std::string::npos)
      << R.Stdout;
  EXPECT_NE(R.Stdout.find("loop t in [0..4) slot 0"), std::string::npos)
      << R.Stdout;
  // Full statements, not just phase counts: typed stores with a memory
  // space and the spill/reload markers.
  EXPECT_NE(R.Stdout.find("st shared "), std::string::npos) << R.Stdout;
  EXPECT_NE(R.Stdout.find("st.spill arena "), std::string::npos)
      << R.Stdout;
  EXPECT_NE(R.Stdout.find("ld global "), std::string::npos) << R.Stdout;
}

TEST(DescendcCli, DumpKirRejectsEmitCombination) {
  RunResult R = runDescendc(kernel("matmul.descend") +
                            " --dump-kir --emit=cuda -D nt=4");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--dump-kir cannot be combined"),
            std::string::npos)
      << R.Stderr;
}

TEST(DescendcCli, ListBackendsPrintsRegistry) {
  RunResult R = runDescendc("--list-backends");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Stdout.find("cuda"), std::string::npos);
  EXPECT_NE(R.Stdout.find("sim"), std::string::npos);
  EXPECT_NE(R.Stdout.find("ast"), std::string::npos);
  EXPECT_NE(R.Stdout.find("vm"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// --run: end-to-end execution through the vm backend
//===----------------------------------------------------------------------===//

TEST(DescendcCli, RunExecutesQuickstartHostProgram) {
  RunResult R = runDescendc("--run " + program("quickstart_host.descend") +
                            " -D nb=8");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  // Default fill 1.0, scaled by 3.0 over nb*256 = 2048 elements.
  EXPECT_NE(R.Stdout.find("RESULT host_vec n=2048 sum=6144"),
            std::string::npos)
      << R.Stdout;
}

TEST(DescendcCli, RunExecutesReductionHostProgramWithArgs) {
  RunResult R = runDescendc("--run " + program("reduction_host.descend") +
                            " -D nb=8 --args 0.5 0 0");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  // 2048 elements of 0.5: the partials sum to 1024, the total matches.
  EXPECT_NE(R.Stdout.find("RESULT partials n=8 sum=1024"),
            std::string::npos)
      << R.Stdout;
  EXPECT_NE(R.Stdout.find("RESULT total n=1 sum=1024"), std::string::npos)
      << R.Stdout;
}

TEST(DescendcCli, RunOnRejectedProgramExitsOne) {
  RunResult R =
      runDescendc("--run " + program("bad_swapped_copy.descend") + " -D nb=8");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Stderr.find("arguments to `copy_mem_to_host` are swapped"),
            std::string::npos)
      << R.Stderr;
}

TEST(DescendcCli, RunWithoutDefinesReportsUninstantiatedGeometry) {
  RunResult R = runDescendc("--run " + program("quickstart_host.descend"));
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Stderr.find("descendc: error:"), std::string::npos)
      << R.Stderr;
}

TEST(DescendcCli, RunRejectsEmitCombination) {
  RunResult R = runDescendc("--run " + program("quickstart_host.descend") +
                            " --emit=sim -D nb=8");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--run cannot be combined with --emit"),
            std::string::npos)
      << R.Stderr;
}

TEST(DescendcCli, RunRejectsOutputAndDumpFlags) {
  RunResult R = runDescendc("--run " + program("quickstart_host.descend") +
                            " -o /dev/null -D nb=8");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--run cannot be combined with -o"),
            std::string::npos)
      << R.Stderr;

  RunResult D = runDescendc("--run " + program("quickstart_host.descend") +
                            " --dump-kir -D nb=8");
  EXPECT_EQ(D.ExitCode, 2);
}

TEST(DescendcCli, RunRejectsNonNumericArgs) {
  RunResult R = runDescendc("--run " + program("quickstart_host.descend") +
                            " -D nb=8 --args banana");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--args expects numbers, got 'banana'"),
            std::string::npos)
      << R.Stderr;
}

TEST(DescendcCli, ArgsWithoutRunExitsTwo) {
  RunResult R = runDescendc(program("quickstart_host.descend") +
                            " --args 1.0");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--args requires --run"), std::string::npos)
      << R.Stderr;
}

//===----------------------------------------------------------------------===//
// Observability flags: --time-passes=json, --kernel-stats, --trace-json
//===----------------------------------------------------------------------===//

TEST(DescendcCli, TimePassesJsonPrintsOneObjectOnStdout) {
  RunResult R = runDescendc(kernel("scale_vec.descend") +
                            " --emit=check -D nb=4 --time-passes=json");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_EQ(R.Stdout.front(), '{') << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"reached\":\"typecheck\""), std::string::npos)
      << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"name\":\"parse\""), std::string::npos)
      << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"failed\":false"), std::string::npos)
      << R.Stdout;
  // The JSON mode replaces the stderr table, not the diagnostics stream.
  EXPECT_EQ(R.Stderr.find("pass timings"), std::string::npos) << R.Stderr;
}

TEST(DescendcCli, TimePassesJsonKeepsTheExitCodeContract) {
  // Codegen on the uninstantiated matmul fails; JSON mode still reports
  // the failed stage and the process still exits 1.
  RunResult R = runDescendc(kernel("matmul.descend") +
                            " --emit=cuda --time-passes=json -o /dev/null");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Stdout.find("\"reached\":\"typecheck\""), std::string::npos)
      << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"name\":\"codegen\",\"ms\":"), std::string::npos)
      << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"failed\":true"), std::string::npos) << R.Stdout;
}

TEST(DescendcCli, TimePassesUnknownModeExitsTwo) {
  RunResult R = runDescendc(kernel("scale_vec.descend") +
                            " --time-passes=xml");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("unknown --time-passes mode 'xml'"),
            std::string::npos)
      << R.Stderr;
}

TEST(DescendcCli, KernelStatsReportsCountersAndResults) {
  RunResult R = runDescendc("--kernel-stats " +
                            program("quickstart_host.descend") + " -D nb=8");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_NE(R.Stdout.find("scale_vec:"), std::string::npos) << R.Stdout;
  EXPECT_NE(R.Stdout.find("global: 2048 loads, 2048 stores"),
            std::string::npos)
      << R.Stdout;
  // The RESULT digest still prints in human mode.
  EXPECT_NE(R.Stdout.find("RESULT host_vec n=2048 sum=6144"),
            std::string::npos)
      << R.Stdout;
}

TEST(DescendcCli, KernelStatsJsonIsOneObject) {
  RunResult R = runDescendc("--kernel-stats=json " +
                            program("quickstart_host.descend") + " -D nb=8");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_EQ(R.Stdout.front(), '{') << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"launches\":["), std::string::npos) << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"label\":\"scale_vec\""), std::string::npos)
      << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"global_loads\":2048"), std::string::npos)
      << R.Stdout;
  // One JSON object only: no RESULT lines in the machine-readable mode.
  EXPECT_EQ(R.Stdout.find("RESULT"), std::string::npos) << R.Stdout;
}

TEST(DescendcCli, KernelStatsInheritsRunConflictRules) {
  RunResult R = runDescendc("--kernel-stats " +
                            program("quickstart_host.descend") +
                            " --emit=sim -D nb=8");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--kernel-stats cannot be combined with --emit"),
            std::string::npos)
      << R.Stderr;
}

TEST(DescendcCli, TraceJsonWritesALoadableTraceFile) {
  std::string Trace = ::testing::TempDir() + "descendc_cli_trace.json";
  std::remove(Trace.c_str());
  RunResult R = runDescendc("--trace-json=" + Trace + " --run " +
                            program("quickstart_host.descend") + " -D nb=8");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  std::ifstream In(Trace);
  ASSERT_TRUE(In.good()) << "trace file not written: " << Trace;
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Doc = SS.str();
  EXPECT_NE(Doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Doc.find("\"cat\":\"pipeline\""), std::string::npos);
  EXPECT_NE(Doc.find("\"cat\":\"sim\""), std::string::npos);
  std::remove(Trace.c_str());
}

//===----------------------------------------------------------------------===//
// Schedule passes and the autotuner: --pad-shared, --vectorize,
// --dump-kir=pre|post, --autotune
//===----------------------------------------------------------------------===//

TEST(DescendcCli, PadSharedRewritesDumpedIndexesPostOnly) {
  std::string Base = kernel("matmul.descend") + " -D nt=4 --pad-shared=1";
  RunResult Plain =
      runDescendc(kernel("matmul.descend") + " -D nt=4 --dump-kir");
  RunResult Pre = runDescendc(Base + " --dump-kir=pre");
  RunResult Post = runDescendc(Base + " --dump-kir=post");
  ASSERT_EQ(Plain.ExitCode, 0) << Plain.Stderr;
  ASSERT_EQ(Pre.ExitCode, 0) << Pre.Stderr;
  ASSERT_EQ(Post.ExitCode, 0) << Post.Stderr;
  // =pre shows the IR before the schedule passes run: byte-identical to
  // the dump without any passes requested.
  EXPECT_EQ(Pre.Stdout, Plain.Stdout);
  // =post shows the padded 16x17 tiles.
  EXPECT_EQ(Pre.Stdout.find("* 17"), std::string::npos) << Pre.Stdout;
  EXPECT_NE(Post.Stdout.find("* 17"), std::string::npos) << Post.Stdout;
}

TEST(DescendcCli, VectorizeFusesDumpedStores) {
  std::string Base = kernel("scale2.descend") + " -D nb=2 --vectorize";
  RunResult Pre = runDescendc(Base + " --dump-kir=pre");
  RunResult Post = runDescendc(Base + " --dump-kir=post");
  ASSERT_EQ(Pre.ExitCode, 0) << Pre.Stderr;
  ASSERT_EQ(Post.ExitCode, 0) << Post.Stderr;
  EXPECT_EQ(Pre.Stdout.find("st2 "), std::string::npos) << Pre.Stdout;
  EXPECT_NE(Post.Stdout.find("st2 global "), std::string::npos)
      << Post.Stdout;
}

TEST(DescendcCli, PadSharedRunKeepsResultsBitIdentical) {
  std::string Base = "--run " + program("matmul_host.descend") + " -D nt=4";
  RunResult Def = runDescendc(Base);
  RunResult Padded = runDescendc(Base + " --pad-shared=1");
  ASSERT_EQ(Def.ExitCode, 0) << Def.Stderr;
  ASSERT_EQ(Padded.ExitCode, 0) << Padded.Stderr;
  EXPECT_NE(Def.Stdout.find("RESULT c n=4096"), std::string::npos)
      << Def.Stdout;
  // Padding is layout-only: the RESULT digests (sum/first/last to 17
  // significant digits) must agree exactly.
  EXPECT_EQ(Def.Stdout, Padded.Stdout);
}

TEST(DescendcCli, AutotuneSelectsThePaddedMatmul) {
  RunResult R = runDescendc("--autotune " + program("matmul_host.descend") +
                            " -D nt=4");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_NE(R.Stdout.find("best: -D nt=4 --pad-shared=1"),
            std::string::npos)
      << R.Stdout;
}

TEST(DescendcCli, AutotuneJsonIsOneObjectWithRankedCandidates) {
  RunResult R = runDescendc("--autotune=json " +
                            program("matmul_host.descend") + " -D nt=4");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_EQ(R.Stdout.front(), '{') << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"best\":"), std::string::npos) << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"pad\":1"), std::string::npos) << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"bit_identical\":true"), std::string::npos)
      << R.Stdout;
  // One JSON object only: no table rows in the machine-readable mode.
  EXPECT_EQ(R.Stdout.find("best: "), std::string::npos) << R.Stdout;
}

TEST(DescendcCli, AutotuneFlagConflictsExitTwo) {
  RunResult E = runDescendc("--autotune " + program("matmul_host.descend") +
                            " --emit=sim -D nt=4");
  EXPECT_EQ(E.ExitCode, 2);
  EXPECT_NE(E.Stderr.find("--autotune cannot be combined"),
            std::string::npos)
      << E.Stderr;

  // Explicit pass flags contradict the sweep.
  RunResult P = runDescendc("--autotune " + program("matmul_host.descend") +
                            " --pad-shared=1 -D nt=4");
  EXPECT_EQ(P.ExitCode, 2);
  EXPECT_NE(P.Stderr.find("sweeps the schedule passes itself"),
            std::string::npos)
      << P.Stderr;

  RunResult T = runDescendc(program("matmul_host.descend") +
                            " --tune nt=4,8");
  EXPECT_EQ(T.ExitCode, 2);
  EXPECT_NE(T.Stderr.find("--tune requires --autotune"), std::string::npos)
      << T.Stderr;
}

TEST(DescendcCli, MalformedScheduleFlagsExitTwo) {
  RunResult P = runDescendc(kernel("scale_vec.descend") + " --pad-shared=x");
  EXPECT_EQ(P.ExitCode, 2);
  EXPECT_NE(P.Stderr.find("--pad-shared expects a non-negative integer"),
            std::string::npos)
      << P.Stderr;

  RunResult D = runDescendc(kernel("matmul.descend") +
                            " --dump-kir=sideways -D nt=4");
  EXPECT_EQ(D.ExitCode, 2);
  EXPECT_NE(D.Stderr.find("unknown --dump-kir mode 'sideways'"),
            std::string::npos)
      << D.Stderr;
}

TEST(DescendcCli, TraceJsonWithoutPathExitsTwo) {
  RunResult R = runDescendc("--trace-json " + kernel("scale_vec.descend"));
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--trace-json expects a file path"),
            std::string::npos)
      << R.Stderr;
}

} // namespace
