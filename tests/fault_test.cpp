//===- tests/fault_test.cpp - Sticky errors, fault injection, watchdogs ---===//
//
// The acceptance gate for the robustness layer: a forced kernel trap at
// launch N poisons exactly the affected stream, getLastError stays
// sticky until GpuDevice::reset(), an infinite-loop kernel is cancelled
// within the watchdog budget instead of hanging the suite, and every
// DESCEND_FAULTS / DESCEND_WATCHDOG clause parses strictly (all-or-
// nothing, like DESCEND_SIM_WORKERS). Runs under ASan and TSan in CI —
// the injection seams sit on pool-worker code paths.
//
//===----------------------------------------------------------------------===//

#include "runtime/HostRuntime.h"
#include "service/CompileService.h"
#include "sim/Fault.h"
#include "sim/Sim.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace descend;
using namespace descend::sim;

namespace {

/// Every test arming the global FaultInjector must disarm it on exit —
/// the injector outlives the test, the plan must not.
struct FaultGuard {
  FaultGuard() { FaultInjector::global().setPlanForTest(FaultPlan{}); }
  ~FaultGuard() { FaultInjector::global().setPlanForTest(FaultPlan{}); }
  void arm(const std::string &Text) {
    FaultPlan P;
    std::string Err;
    ASSERT_TRUE(FaultPlan::parse(Text, P, &Err)) << Err;
    FaultInjector::global().setPlanForTest(P);
  }
};

//===----------------------------------------------------------------------===//
// Plan / watchdog parsing
//===----------------------------------------------------------------------===//

TEST(FaultPlan, ParsesFullGrammarAndRoundTrips) {
  FaultPlan P;
  std::string Err;
  ASSERT_TRUE(FaultPlan::parse(
      "alloc:3,trap:launch=5,delay:worker=2:ms=10,drop:event=1,"
      "compile:fail=4",
      P, &Err))
      << Err;
  EXPECT_EQ(P.AllocFailAt, 3u);
  EXPECT_EQ(P.TrapAtLaunch, 5u);
  EXPECT_EQ(P.DelayWorker, 2u);
  EXPECT_EQ(P.DelayMs, 10u);
  EXPECT_EQ(P.DropEventAt, 1u);
  EXPECT_EQ(P.CompileFailAt, 4u);
  EXPECT_TRUE(P.armed());
  // str() renders the canonical spelling, which re-parses to the same
  // plan.
  FaultPlan Q;
  ASSERT_TRUE(FaultPlan::parse(P.str(), Q, &Err)) << Err;
  EXPECT_EQ(Q.str(), P.str());

  FaultPlan Empty;
  ASSERT_TRUE(FaultPlan::parse("", Empty, &Err));
  EXPECT_FALSE(Empty.armed());
  EXPECT_EQ(Empty.str(), "off");
}

TEST(FaultPlan, RejectsMalformedPlansWholesale) {
  const char *Bad[] = {
      "alloc",           // missing ordinal
      "alloc:",          // empty ordinal
      "alloc:0",         // ordinals are 1-based
      "alloc:-1",        // no signs
      "alloc:3x",        // trailing garbage
      " alloc:3",        // no whitespace
      "alloc:3,",        // empty clause
      "trap:5",          // trap wants launch=N
      "trap:launch=",    // empty ordinal
      "delay:worker=1",  // delay wants both worker= and ms=
      "drop:3",          // drop wants event=N
      "compile:3",       // compile wants fail=N
      "bogus:3",         // unknown kind
      "alloc:3,bogus:1", // one bad clause poisons the whole plan
  };
  for (const char *Text : Bad) {
    FaultPlan P;
    std::string Err;
    EXPECT_FALSE(FaultPlan::parse(Text, P, &Err)) << Text;
    EXPECT_FALSE(Err.empty()) << Text;
  }
}

TEST(Watchdog, ParsesConfigStrictly) {
  GpuDevice::WatchdogConfig W;
  std::string Err;
  ASSERT_TRUE(detail::parseWatchdogConfig("steps=1000,ms=50", W, &Err))
      << Err;
  EXPECT_EQ(W.StepBudget, 1000u);
  EXPECT_EQ(W.LaunchTimeoutMs, 50u);

  GpuDevice::WatchdogConfig StepsOnly;
  ASSERT_TRUE(detail::parseWatchdogConfig("steps=7", StepsOnly, &Err));
  EXPECT_EQ(StepsOnly.StepBudget, 7u);
  EXPECT_EQ(StepsOnly.LaunchTimeoutMs, 0u);

  const char *Bad[] = {"steps=0", "ms=", "steps=1,steps=2", "budget=3",
                       "steps=1x", ""};
  for (const char *Text : Bad) {
    GpuDevice::WatchdogConfig Out;
    EXPECT_FALSE(detail::parseWatchdogConfig(Text, Out, &Err)) << Text;
  }
}

TEST(Watchdog, SetWatchdogRoundTrips) {
  GpuDevice Dev;
  GpuDevice::WatchdogConfig W;
  W.StepBudget = 123;
  W.LaunchTimeoutMs = 456;
  Dev.setWatchdog(W);
  EXPECT_EQ(Dev.watchdog().StepBudget, 123u);
  EXPECT_EQ(Dev.watchdog().LaunchTimeoutMs, 456u);
}

//===----------------------------------------------------------------------===//
// Sticky device errors
//===----------------------------------------------------------------------===//

TEST(StickyError, FirstErrorWinsAndResetRestores) {
  GpuDevice Dev;
  EXPECT_FALSE(Dev.poisoned());
  EXPECT_EQ(Dev.getLastError(), ErrorCode::Ok);

  const uint64_t Seq0 = Dev.errorSeq();
  Dev.setDeviceError(ErrorCode::KernelTrap, "first fault");
  Dev.setDeviceError(ErrorCode::AllocFailed, "second fault");
  EXPECT_TRUE(Dev.poisoned());
  EXPECT_EQ(Dev.errorSeq(), Seq0 + 2); // both recorded for attribution

  std::string Msg;
  EXPECT_EQ(Dev.getLastError(&Msg), ErrorCode::KernelTrap);
  EXPECT_EQ(Msg, "first fault");
  // Sticky: reading does not clear.
  EXPECT_EQ(Dev.peekLastError(), ErrorCode::KernelTrap);
  EXPECT_EQ(Dev.getLastError(), ErrorCode::KernelTrap);

  Dev.reset();
  EXPECT_FALSE(Dev.poisoned());
  EXPECT_EQ(Dev.getLastError(), ErrorCode::Ok);
}

TEST(StickyError, AllocInjectionFailsNthAllocationOnly) {
  FaultGuard G;
  G.arm("alloc:2");
  GpuDevice Dev;
  auto First = Dev.alloc<double>(16); // allocation #1 succeeds
  (void)First;
  try {
    auto Second = Dev.alloc<double>(16); // #2 is the injected failure
    FAIL() << "allocation #2 should have thrown";
  } catch (const DeviceError &E) {
    EXPECT_EQ(E.code(), ErrorCode::AllocFailed);
    EXPECT_NE(std::string(E.what()).find("fault injection"),
              std::string::npos)
        << E.what();
  }
  EXPECT_EQ(Dev.getLastError(), ErrorCode::AllocFailed);
  // The plan fired once; after reset() the device allocates again.
  Dev.reset();
  auto Third = Dev.alloc<double>(16);
  EXPECT_NE(Third.data(), nullptr);
  EXPECT_EQ(Dev.getLastError(), ErrorCode::Ok);
}

TEST(StickyError, TrapAtLaunchPoisonsExactlyTheAffectedStream) {
  FaultGuard G;
  G.arm("trap:launch=1");
  GpuDevice Dev;
  Dev.setWorkers(2);
  auto Buf = Dev.alloc<double>(64);

  Stream Victim(Dev), Bystander(Dev);
  Victim.enqueue([&] {
    launchPhases(Dev, Dim3{1}, Dim3{64}, 0, [&](BlockCtx &B, ThreadCtx &T) {
      Buf.store(B, T.X, 1.0);
    });
  });
  Victim.synchronize(); // never throws, even on a poisoned stream

  // The trapped launch poisons its stream and the device...
  EXPECT_EQ(Victim.error(), ErrorCode::KernelTrap);
  EXPECT_EQ(Dev.getLastError(), ErrorCode::KernelTrap);
  EXPECT_THROW(Victim.enqueue([] {}), DeviceError);
  EXPECT_THROW(Victim.query(), DeviceError);
  try {
    Victim.enqueue([] {});
    FAIL();
  } catch (const DeviceError &E) {
    EXPECT_EQ(E.code(), ErrorCode::KernelTrap);
    EXPECT_NE(std::string(E.what()).find("stream poisoned"),
              std::string::npos)
        << E.what();
  }

  // ...but ONLY that stream: the bystander keeps working (its launch is
  // past the armed ordinal, so it runs clean).
  EXPECT_EQ(Bystander.error(), ErrorCode::Ok);
  Bystander.enqueue([&] {
    launchPhases(Dev, Dim3{1}, Dim3{64}, 0, [&](BlockCtx &B, ThreadCtx &T) {
      Buf.store(B, T.X, 2.0);
    });
  });
  Bystander.synchronize();
  EXPECT_EQ(Bystander.error(), ErrorCode::Ok);
  EXPECT_EQ(Buf.data()[0], 2.0);

  // reset() heals the device; already-poisoned streams stay poisoned,
  // fresh streams work.
  Dev.reset();
  EXPECT_EQ(Dev.getLastError(), ErrorCode::Ok);
  EXPECT_THROW(Victim.enqueue([] {}), DeviceError);
  Stream Fresh(Dev);
  Fresh.enqueue([&] {
    launchPhases(Dev, Dim3{1}, Dim3{64}, 0, [&](BlockCtx &B, ThreadCtx &T) {
      Buf.store(B, T.X, 3.0);
    });
  });
  Fresh.synchronize();
  EXPECT_EQ(Fresh.error(), ErrorCode::Ok);
  EXPECT_EQ(Buf.data()[0], 3.0);
}

TEST(StickyError, DropEventReportsButStillCompletesGeneration) {
  FaultGuard G;
  G.arm("drop:event=1");
  GpuDevice Dev;
  Dev.setWorkers(2);
  Stream S(Dev);
  Event E;
  S.enqueue([] {});
  S.record(E);
  // The detected fault must never become an undetectable hang: the
  // generation still completes, so synchronize() returns...
  E.synchronize();
  S.synchronize();
  // ...and the drop is reported as the device's sticky error.
  EXPECT_EQ(Dev.getLastError(), ErrorCode::EventDropped);
  Dev.reset();
}

TEST(StickyError, WorkerDelayInjectionOnlySlowsExecution) {
  // delay:worker=K:ms=M must perturb timing, never results — this is
  // the clause the TSan stress job runs the whole suite under.
  FaultGuard G;
  G.arm("delay:worker=1:ms=1");
  GpuDevice Dev;
  Dev.setWorkers(4);
  auto Buf = Dev.alloc<double>(512);
  launchPhases(Dev, Dim3{8}, Dim3{64}, 0, [&](BlockCtx &B, ThreadCtx &T) {
    size_t I = B.X * 64 + T.X;
    Buf.store(B, I, static_cast<double>(I) * 2.0);
  });
  for (size_t I = 0; I != 512; ++I)
    ASSERT_EQ(Buf.data()[I], static_cast<double>(I) * 2.0);
  EXPECT_EQ(Dev.getLastError(), ErrorCode::Ok);
}

//===----------------------------------------------------------------------===//
// Watchdogs
//===----------------------------------------------------------------------===//

TEST(Watchdog, WallClockBudgetCancelsRunawayLaunch) {
  GpuDevice Dev;
  GpuDevice::WatchdogConfig W;
  W.LaunchTimeoutMs = 25;
  Dev.setWatchdog(W);

  // A phase-program loop that would run for ~100 seconds unchecked; the
  // watchdog must cancel it at a phase boundary within the budget.
  PhaseProgram Prog;
  Prog.loopBegin(0, 0, 100000);
  Prog.straight([](BlockCtx &, ThreadCtx &) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  Prog.loopEnd();

  auto T0 = std::chrono::steady_clock::now();
  launchProgram(Dev, Dim3{1}, Dim3{1}, 0, Prog);
  auto ElapsedMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - T0)
                       .count();

  std::string Msg;
  EXPECT_EQ(Dev.getLastError(&Msg), ErrorCode::KernelTimeout);
  EXPECT_NE(Msg.find("watchdog"), std::string::npos) << Msg;
  // Generous bound: cancellation plus drain must be near the budget,
  // nowhere near the 100 s the loop wanted.
  EXPECT_LT(ElapsedMs, 5000.0);
  Dev.reset();
  EXPECT_EQ(Dev.getLastError(), ErrorCode::Ok);
}

TEST(Watchdog, VmStepBudgetTrapsInfiniteLoop) {
  GpuDevice Dev;
  GpuDevice::WatchdogConfig W;
  W.StepBudget = 10000;
  Dev.setWatchdog(W);

  // A hand-built bytecode kernel that spins forever: `0: Jmp 0`.
  vm::VmKernel Spin;
  Spin.Name = "spin_forever";
  Spin.Grid = Dim3{1};
  Spin.Block = Dim3{1};
  Spin.StraightPhases = 1;
  vm::VmNode N;
  N.K = vm::VmNode::Straight;
  vm::Instr Jmp;
  Jmp.K = vm::Op::Jmp;
  Jmp.Imm = 0;
  N.Body.Instrs = {Jmp};
  N.Body.NumRegs = 0;
  Spin.Nodes.push_back(std::move(N));

  vm::RunStatus St = vm::launchKernel(Dev, Spin, {});
  EXPECT_FALSE(St.Ok);
  EXPECT_NE(St.Error.find("step budget"), std::string::npos) << St.Error;
  EXPECT_EQ(Dev.getLastError(), ErrorCode::KernelTimeout);

  // Sticky: the next launch fails fast without running...
  vm::VmKernel Trivial;
  Trivial.Name = "trivial";
  Trivial.Grid = Dim3{1};
  Trivial.Block = Dim3{1};
  Trivial.StraightPhases = 1;
  vm::VmNode T;
  T.K = vm::VmNode::Straight;
  T.Body.Instrs = {vm::Instr{}}; // Ret
  T.Body.NumRegs = 0;
  Trivial.Nodes.push_back(std::move(T));
  vm::RunStatus Blocked = vm::launchKernel(Dev, Trivial, {});
  EXPECT_FALSE(Blocked.Ok);
  EXPECT_NE(Blocked.Error.find("device in error state"), std::string::npos)
      << Blocked.Error;

  // ...and reset() restores a working device.
  Dev.reset();
  EXPECT_TRUE(vm::launchKernel(Dev, Trivial, {}).Ok);
}

//===----------------------------------------------------------------------===//
// Transient compile failures feed the service retry path
//===----------------------------------------------------------------------===//

TEST(FaultService, InjectedCompileFailureIsTransientAndUncached) {
  FaultGuard G;
  G.arm("compile:fail=1");
  service::CompileService Service(8);
  service::CompileRequest Req;
  Req.Backend = "vm";
  Req.Defines["nb"] = 2;
  Req.Source = R"(
fn scale_vec<nb: nat>(vec: &uniq gpu.global [f64; nb*256])
-[grid: gpu.grid<X<nb>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<256>[[block]][[thread]] =
        vec.group::<256>[[block]][[thread]] * 3.0
    }
  }
}
)";

  service::CompileReply First = Service.compile(Req);
  EXPECT_FALSE(First.Ok);
  EXPECT_TRUE(First.Transient);
  EXPECT_NE(First.Diagnostics.find("fault injection"), std::string::npos)
      << First.Diagnostics;

  // Failures are never cached; the identical retry compiles cleanly and
  // a genuine source error stays non-transient.
  service::CompileReply Second = Service.compile(Req);
  EXPECT_TRUE(Second.Ok) << Second.Diagnostics;
  EXPECT_FALSE(Second.Transient);

  service::CompileRequest Broken = Req;
  Broken.Source = "fn nonsense(";
  service::CompileReply Bad = Service.compile(Broken);
  EXPECT_FALSE(Bad.Ok);
  EXPECT_FALSE(Bad.Transient);
}

} // namespace
