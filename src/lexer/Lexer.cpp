//===- lexer/Lexer.cpp ------------------------------------------------------===//

#include "lexer/Lexer.h"

#include "support/SourceManager.h"

#include <cctype>
#include <unordered_map>

using namespace descend;

const char *descend::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::KwFn:
    return "'fn'";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwSched:
    return "'sched'";
  case TokenKind::KwSplit:
    return "'split'";
  case TokenKind::KwAt:
    return "'at'";
  case TokenKind::KwSync:
    return "'sync'";
  case TokenKind::KwView:
    return "'view'";
  case TokenKind::KwUniq:
    return "'uniq'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::ColonColon:
    return "'::'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::DotDot:
    return "'..'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::NotEqual:
    return "'!='";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::FatArrow:
    return "'=>'";
  case TokenKind::ThinArrow:
    return "'->'";
  case TokenKind::AtSign:
    return "'@'";
  case TokenKind::Caret:
    return "'^'";
  }
  return "<token>";
}

Lexer::Lexer(const SourceManager &SM, uint32_t BufferId,
             DiagnosticEngine &Diags)
    : Text(SM.bufferText(BufferId)), BufferId(BufferId), Diags(Diags) {}

bool Lexer::atEnd() const { return Pos >= Text.size(); }

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Text.size() ? Text[Pos + Ahead] : '\0';
}

SourceLoc Lexer::loc() const { return SourceLoc(BufferId, Pos); }

Token Lexer::make(TokenKind Kind, uint32_t Begin) const {
  Token T;
  T.Kind = Kind;
  T.Text = Text.substr(Begin, Pos - Begin);
  T.Range = SourceRange(SourceLoc(BufferId, Begin), SourceLoc(BufferId, Pos));
  return T;
}

static TokenKind keywordKind(std::string_view S) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"fn", TokenKind::KwFn},       {"let", TokenKind::KwLet},
      {"for", TokenKind::KwFor},     {"in", TokenKind::KwIn},
      {"sched", TokenKind::KwSched}, {"split", TokenKind::KwSplit},
      {"at", TokenKind::KwAt},       {"sync", TokenKind::KwSync},
      {"view", TokenKind::KwView},   {"uniq", TokenKind::KwUniq},
      {"true", TokenKind::KwTrue},   {"false", TokenKind::KwFalse},
  };
  auto It = Keywords.find(S);
  return It == Keywords.end() ? TokenKind::Identifier : It->second;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = next();
    Tokens.push_back(T);
    if (T.is(TokenKind::Eof))
      return Tokens;
  }
}

Token Lexer::next() {
  // Skip whitespace and comments.
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      uint32_t Begin = Pos;
      Pos += 2;
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        ++Pos;
      if (atEnd()) {
        Diags.error(DiagCode::LexUnterminatedComment,
                    SourceRange(SourceLoc(BufferId, Begin), loc()),
                    "unterminated block comment");
        return make(TokenKind::Eof, Pos);
      }
      Pos += 2;
      continue;
    }
    break;
  }

  uint32_t Begin = Pos;
  if (atEnd())
    return make(TokenKind::Eof, Begin);

  char C = peek();

  // Identifiers and keywords.
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      ++Pos;
    Token T = make(TokenKind::Identifier, Begin);
    T.Kind = keywordKind(T.Text);
    return T;
  }

  // Numbers: 123, 123i64, 1.5, 2.0f32. A '.' is part of the number only
  // when followed by a digit ("[0..4]" must lex as 0 .. 4).
  if (std::isdigit(static_cast<unsigned char>(C))) {
    bool IsFloat = false;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      ++Pos;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    // Optional type suffix: i32, u32, i64, u64, f32, f64.
    if (peek() == 'i' || peek() == 'u' || peek() == 'f') {
      char S = peek();
      if ((peek(1) == '3' && peek(2) == '2') ||
          (peek(1) == '6' && peek(2) == '4')) {
        if (S == 'f' && peek(1) == '3' && !IsFloat)
          IsFloat = true; // 2f32 is a float literal
        if (S == 'f' && peek(1) == '6' && !IsFloat)
          IsFloat = true;
        Pos += 3;
      }
    }
    return make(IsFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                Begin);
  }

  ++Pos; // consume C
  switch (C) {
  case '(':
    return make(TokenKind::LParen, Begin);
  case ')':
    return make(TokenKind::RParen, Begin);
  case '{':
    return make(TokenKind::LBrace, Begin);
  case '}':
    return make(TokenKind::RBrace, Begin);
  case '[':
    return make(TokenKind::LBracket, Begin);
  case ']':
    return make(TokenKind::RBracket, Begin);
  case ',':
    return make(TokenKind::Comma, Begin);
  case ';':
    return make(TokenKind::Semicolon, Begin);
  case '.':
    if (peek() == '.') {
      ++Pos;
      return make(TokenKind::DotDot, Begin);
    }
    return make(TokenKind::Dot, Begin);
  case ':':
    if (peek() == ':') {
      ++Pos;
      return make(TokenKind::ColonColon, Begin);
    }
    return make(TokenKind::Colon, Begin);
  case '<':
    if (peek() == '=') {
      ++Pos;
      return make(TokenKind::LessEqual, Begin);
    }
    return make(TokenKind::Less, Begin);
  case '>':
    if (peek() == '=') {
      ++Pos;
      return make(TokenKind::GreaterEqual, Begin);
    }
    return make(TokenKind::Greater, Begin);
  case '&':
    if (peek() == '&') {
      ++Pos;
      return make(TokenKind::AmpAmp, Begin);
    }
    return make(TokenKind::Amp, Begin);
  case '|':
    if (peek() == '|') {
      ++Pos;
      return make(TokenKind::PipePipe, Begin);
    }
    Diags.error(DiagCode::LexUnknownCharacter,
                SourceRange(SourceLoc(BufferId, Begin), loc()),
                "unknown character '|'");
    return next();
  case '*':
    return make(TokenKind::Star, Begin);
  case '+':
    return make(TokenKind::Plus, Begin);
  case '-':
    if (peek() == '>') {
      ++Pos;
      return make(TokenKind::ThinArrow, Begin);
    }
    return make(TokenKind::Minus, Begin);
  case '/':
    return make(TokenKind::Slash, Begin);
  case '%':
    return make(TokenKind::Percent, Begin);
  case '@':
    return make(TokenKind::AtSign, Begin);
  case '^':
    return make(TokenKind::Caret, Begin);
  case '=':
    if (peek() == '=') {
      ++Pos;
      return make(TokenKind::EqualEqual, Begin);
    }
    if (peek() == '>') {
      ++Pos;
      return make(TokenKind::FatArrow, Begin);
    }
    return make(TokenKind::Equal, Begin);
  case '!':
    if (peek() == '=') {
      ++Pos;
      return make(TokenKind::NotEqual, Begin);
    }
    return make(TokenKind::Not, Begin);
  default:
    Diags.error(DiagCode::LexUnknownCharacter,
                SourceRange(SourceLoc(BufferId, Begin), loc()),
                std::string("unknown character '") + C + "'");
    return next();
  }
}
