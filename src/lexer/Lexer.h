//===- lexer/Lexer.h - Descend tokenizer ------------------------*- C++ -*-===//
//
// Part of the Descend reproduction.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_LEXER_LEXER_H
#define DESCEND_LEXER_LEXER_H

#include "lexer/Token.h"
#include "support/Diagnostics.h"

#include <vector>

namespace descend {

class SourceManager;

/// Tokenizes one buffer. Errors are reported to the DiagnosticEngine and
/// lexing continues where possible.
class Lexer {
public:
  Lexer(const SourceManager &SM, uint32_t BufferId, DiagnosticEngine &Diags);

  /// Lexes the whole buffer; the result always ends with an Eof token.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  bool atEnd() const;
  SourceLoc loc() const;
  Token make(TokenKind Kind, uint32_t Begin) const;

  std::string_view Text;
  uint32_t BufferId;
  uint32_t Pos = 0;
  DiagnosticEngine &Diags;
};

} // namespace descend

#endif // DESCEND_LEXER_LEXER_H
