//===- lexer/Token.h - Descend tokens ---------------------------*- C++ -*-===//
//
// Part of the Descend reproduction. Tokens for the surface syntax used in
// the paper's listings. Angle brackets are always lexed as single '<'/'>'
// so that launch configurations (f::<<<X<32>, X<32>>>>) and nested generic
// argument lists compose; the parser counts brackets.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_LEXER_TOKEN_H
#define DESCEND_LEXER_TOKEN_H

#include "support/SourceLocation.h"

#include <string>
#include <string_view>

namespace descend {

enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords.
  KwFn,
  KwLet,
  KwFor,
  KwIn,
  KwSched,
  KwSplit,
  KwAt,
  KwSync,
  KwView,
  KwUniq,
  KwTrue,
  KwFalse,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Less,
  Greater,
  Comma,
  Semicolon,
  Colon,
  ColonColon,
  Dot,
  DotDot,
  Amp,
  Star,
  Plus,
  Minus,
  Slash,
  Percent,
  Equal,
  EqualEqual,
  NotEqual,
  LessEqual,
  GreaterEqual,
  AmpAmp,
  PipePipe,
  Not,
  FatArrow,   // =>
  ThinArrow,  // ->
  AtSign,     // @
  Caret,      // ^ (nat exponentiation)
};

const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string_view Text;
  SourceRange Range;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
  /// True for an identifier with exactly this spelling (contextual
  /// keywords such as axis names and "fst"/"snd").
  bool isIdent(std::string_view S) const {
    return Kind == TokenKind::Identifier && Text == S;
  }
  std::string text() const { return std::string(Text); }
};

} // namespace descend

#endif // DESCEND_LEXER_TOKEN_H
