//===- runtime/HostRuntime.h - Host-side runtime API ------------*- C++ -*-===//
//
// Part of the Descend reproduction. The host API of Section 3.4/3.5 as a
// C++ library over the simulator: heap allocation, CPU<->GPU transfer with
// direction checking and kernel-launch configuration checking — each in a
// synchronous form, an asynchronous form over sim::Stream (the
// cudaMemcpyAsync analogue the generated stream drivers call), and a
// graph-capture form recording rebindable transfer nodes (what the
// generated graph-mode drivers call).
//
// In Descend these mistakes are compile-time errors; this runtime is the
// substrate equivalent for *handwritten* host code (and for demonstrating,
// in the examples, what the type system prevents).
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_RUNTIME_HOSTRUNTIME_H
#define DESCEND_RUNTIME_HOSTRUNTIME_H

#include "obs/Trace.h"
#include "sim/Fault.h"
#include "sim/Sim.h"

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace descend::rt {

/// The structured error type every rt:: failure and every generated
/// hostgen driver surfaces: sim::DeviceError, carrying the
/// machine-readable sim::ErrorCode alongside the text. Callers switch on
/// code() instead of parsing messages.
using Error = sim::DeviceError;

/// Fail-fast check the generated drivers emit after every synchronous
/// launch and every stream synchronize: throws the device's sticky error
/// as a structured rt::Error (naming the failed step) instead of letting
/// a half-completed driver return as if it had succeeded. Free when the
/// device is healthy — one relaxed atomic load.
inline void checkDevice(sim::GpuDevice &Dev, const char *What = nullptr) {
  if (!Dev.poisoned()) [[likely]]
    return;
  std::string Msg;
  const sim::ErrorCode Code = Dev.getLastError(&Msg);
  throw Error(Code, std::string(What ? What : "device operation") +
                        " failed: " + Msg);
}

namespace detail {
/// Structured size-mismatch text: keeps the historical
/// "<op>: size mismatch" prefix (callers grep for it) and appends the
/// offending buffers by name and element count.
inline std::string sizeMismatch(const char *Op, const char *DstName,
                                size_t DstCount, const char *SrcName,
                                size_t SrcCount) {
  return std::string(Op) + ": size mismatch: destination `" +
         (DstName ? DstName : "?") + "` holds " + std::to_string(DstCount) +
         " elements, source `" + (SrcName ? SrcName : "?") + "` holds " +
         std::to_string(SrcCount);
}
} // namespace detail

/// CpuHeap::new — host heap allocation (the paper's `[T; n] @ cpu.mem`).
template <typename T> class HostBuffer {
public:
  HostBuffer(size_t Count, T Fill) : Data(Count, Fill) {}
  explicit HostBuffer(std::vector<T> Init) : Data(std::move(Init)) {}

  size_t size() const { return Data.size(); }
  T *data() { return Data.data(); }
  const T *data() const { return Data.data(); }
  T &operator[](size_t I) { return Data.at(I); }
  const T &operator[](size_t I) const { return Data.at(I); }

private:
  std::vector<T> Data;
};

/// GpuGlobal::alloc_copy — allocates global memory and copies host data.
template <typename T>
sim::GpuDevice::Buffer<T> allocCopy(sim::GpuDevice &Dev,
                                    const HostBuffer<T> &Host) {
  auto Buf = Dev.alloc<T>(Host.size());
  std::memcpy(Buf.data(), Host.data(), Host.size() * sizeof(T));
  return Buf;
}

/// copy_mem_to_host — checked direction and size (what cudaMemcpy does not
/// verify; Section 2.3's swapped-arguments bug surfaces here at runtime
/// instead of compile time). \p DstName / \p SrcName (the generated
/// drivers pass the host-program variable names) make the mismatch text
/// name the offending buffers; the throw is a structured rt::Error with
/// code CopyFailed.
template <typename T>
void copyToHost(HostBuffer<T> &Dst, const sim::GpuDevice::Buffer<T> &Src,
                const char *DstName = nullptr, const char *SrcName = nullptr) {
  if (Dst.size() != Src.size())
    throw Error(sim::ErrorCode::CopyFailed,
                detail::sizeMismatch("copy_mem_to_host", DstName, Dst.size(),
                                     SrcName, Src.size()));
  std::memcpy(Dst.data(), Src.data(), Src.size() * sizeof(T));
}

template <typename T>
void copyToGpu(sim::GpuDevice::Buffer<T> &Dst, const HostBuffer<T> &Src,
               const char *DstName = nullptr, const char *SrcName = nullptr) {
  if (Dst.size() != Src.size())
    throw Error(sim::ErrorCode::CopyFailed,
                detail::sizeMismatch("copy_to_gpu", DstName, Dst.size(),
                                     SrcName, Src.size()));
  std::memcpy(Dst.data(), Src.data(), Src.size() * sizeof(T));
}

//===----------------------------------------------------------------------===//
// Stream (asynchronous) variants — the cudaMemcpyAsync analogues. Sizes
// are validated eagerly at enqueue time (same exceptions, same messages
// as the synchronous calls); only the byte transfer itself is deferred
// onto the stream, ordered after everything enqueued before it. The host
// buffer must stay alive until the stream synchronizes.
//===----------------------------------------------------------------------===//

/// GpuGlobal::alloc_copy on a stream: the allocation happens immediately
/// (the handle is usable in subsequently enqueued launches), the
/// populating copy is enqueued.
template <typename T>
sim::GpuDevice::Buffer<T> allocCopyAsync(sim::Stream &S,
                                         const HostBuffer<T> &Host) {
  auto Buf = S.device().alloc<T>(Host.size());
  T *Dst = Buf.data();
  const T *Src = Host.data();
  const size_t Bytes = Host.size() * sizeof(T);
  S.enqueue([Dst, Src, Bytes] {
    obs::Span CopySpan("stream", "allocCopy");
    std::memcpy(Dst, Src, Bytes);
  });
  return Buf;
}

template <typename T>
void copyToHostAsync(sim::Stream &S, HostBuffer<T> &Dst,
                     const sim::GpuDevice::Buffer<T> &Src,
                     const char *DstName = nullptr,
                     const char *SrcName = nullptr) {
  if (Dst.size() != Src.size())
    throw Error(sim::ErrorCode::CopyFailed,
                detail::sizeMismatch("copy_mem_to_host", DstName, Dst.size(),
                                     SrcName, Src.size()));
  T *D = Dst.data();
  const T *So = Src.data();
  const size_t Bytes = Src.size() * sizeof(T);
  S.enqueue([D, So, Bytes] {
    obs::Span CopySpan("stream", "copyToHost");
    std::memcpy(D, So, Bytes);
  });
}

template <typename T>
void copyToGpuAsync(sim::Stream &S, sim::GpuDevice::Buffer<T> &Dst,
                    const HostBuffer<T> &Src, const char *DstName = nullptr,
                    const char *SrcName = nullptr) {
  if (Dst.size() != Src.size())
    throw Error(sim::ErrorCode::CopyFailed,
                detail::sizeMismatch("copy_to_gpu", DstName, Dst.size(),
                                     SrcName, Src.size()));
  T *D = Dst.data();
  const T *So = Src.data();
  const size_t Bytes = Src.size() * sizeof(T);
  S.enqueue([D, So, Bytes] {
    obs::Span CopySpan("stream", "copyToGpu");
    std::memcpy(D, So, Bytes);
  });
}

//===----------------------------------------------------------------------===//
// Graph-capture variants — what the generated graph-mode drivers call
// between Stream::beginCapture()/endCapture(). Device allocation still
// happens eagerly, ONCE, at capture time (the buffer is reused by every
// replay); the transfer records a graph node that reads its *host*
// pointer from the GraphExec's slot table at replay time, so one
// captured graph serves many requests' buffers via GraphExec::bind.
// Sizes are pinned at capture: bind() rejects buffers of a different
// byte size, preserving the eager-validation contract.
//===----------------------------------------------------------------------===//

/// GpuGlobal::alloc_copy under capture: allocates the device buffer now,
/// declares host slot \p Slot (named \p Name for diagnostics) and
/// records the populating H2D copy.
template <typename T>
sim::GpuDevice::Buffer<T> allocCopyCapture(sim::Stream &S, unsigned Slot,
                                           size_t Count,
                                           const char *Name = nullptr) {
  auto Buf = S.device().alloc<T>(Count);
  const size_t Bytes = Count * sizeof(T);
  S.declareCaptureSlot(Slot, Bytes, Name ? Name : "");
  T *Dst = Buf.data();
  S.captureNode([Dst, Slot, Bytes](const sim::GraphExec &G) {
    obs::Span CopySpan("stream", "allocCopyReplay");
    std::memcpy(Dst, G.slotPtr(Slot), Bytes);
  });
  return Buf;
}

/// copy_mem_to_host under capture: records a D2H copy into whatever host
/// memory is bound to \p Slot at replay time.
template <typename T>
void copyToHostCapture(sim::Stream &S, unsigned Slot,
                       const sim::GpuDevice::Buffer<T> &Src,
                       const char *Name = nullptr) {
  const size_t Bytes = Src.size() * sizeof(T);
  S.declareCaptureSlot(Slot, Bytes, Name ? Name : "");
  const T *So = Src.data();
  S.captureNode([So, Slot, Bytes](const sim::GraphExec &G) {
    obs::Span CopySpan("stream", "copyToHostReplay");
    std::memcpy(G.slotPtr(Slot), So, Bytes);
  });
}

/// copy_to_gpu under capture: records an H2D copy from whatever host
/// memory is bound to \p Slot at replay time.
template <typename T>
void copyToGpuCapture(sim::Stream &S, unsigned Slot,
                      sim::GpuDevice::Buffer<T> &Dst,
                      const char *Name = nullptr) {
  const size_t Bytes = Dst.size() * sizeof(T);
  S.declareCaptureSlot(Slot, Bytes, Name ? Name : "");
  T *D = Dst.data();
  S.captureNode([D, Slot, Bytes](const sim::GraphExec &G) {
    obs::Span CopySpan("stream", "copyToGpuReplay");
    std::memcpy(D, G.slotPtr(Slot), Bytes);
  });
}

/// Checks a launch configuration against the element count a kernel
/// expects (one element per thread). Descend proves this statically
/// (Section 3.5); handwritten host code can at best assert it here.
inline void checkLaunchConfig(sim::Dim3 Grid, sim::Dim3 Block,
                              size_t Elements) {
  size_t Threads = static_cast<size_t>(Grid.total()) * Block.total();
  if (Threads != Elements)
    throw std::runtime_error(
        "launch configuration mismatch: " + std::to_string(Threads) +
        " threads for " + std::to_string(Elements) + " elements");
}

} // namespace descend::rt

#endif // DESCEND_RUNTIME_HOSTRUNTIME_H
