//===- nat/Nat.h - Symbolic natural-number expressions ----------*- C++ -*-===//
//
// Part of the Descend reproduction. Implements the `nat` (η) expression
// language of the paper (Fig. 2 and Fig. 6): constants, variables and
// arithmetic over natural numbers. Sizes of arrays, grid dimensions, view
// parameters and lowered memory indices are all Nat expressions.
//
// Nats are immutable values with structural sharing. A polynomial normal
// form (sum of integer-weighted monomials over atoms) powers:
//   * proveEq   - definitional equality of sizes,
//   * proveLe   - side conditions such as n >= k for split,
//   * proveDivides - side conditions such as n % k == 0 for group,
//   * simplified   - canonical minimal form, used to erase view overhead
//                    from generated index expressions (paper Section 5).
//
// The provers are sound but incomplete: "unknown" makes the type checker
// reject, mirroring Descend's static-only checking discipline.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_NAT_NAT_H
#define DESCEND_NAT_NAT_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace descend {

enum class NatKind { Lit, Var, Add, Sub, Mul, Div, Mod, Pow };

class NatExpr;

/// Variable bindings used when evaluating a Nat to a concrete integer.
using NatEnv = std::map<std::string, long long>;

/// Value-semantics handle to an immutable Nat expression node. A
/// default-constructed Nat is null and only valid for equality tests.
class Nat {
public:
  Nat() = default;

  static Nat lit(long long Value);
  static Nat var(std::string Name);

  /// Binary constructors perform cheap local folds (constant folding,
  /// neutral elements); full normalization is simplified().
  static Nat add(Nat L, Nat R);
  static Nat sub(Nat L, Nat R);
  static Nat mul(Nat L, Nat R);
  static Nat div(Nat L, Nat R);
  static Nat mod(Nat L, Nat R);
  /// Exponentiation, e.g. 2^i strides in tree reductions. Folds when the
  /// exponent is a literal.
  static Nat pow(Nat Base, Nat Exp);

  friend Nat operator+(const Nat &L, const Nat &R) { return add(L, R); }
  friend Nat operator-(const Nat &L, const Nat &R) { return sub(L, R); }
  friend Nat operator*(const Nat &L, const Nat &R) { return mul(L, R); }
  friend Nat operator/(const Nat &L, const Nat &R) { return div(L, R); }
  friend Nat operator%(const Nat &L, const Nat &R) { return mod(L, R); }

  bool isNull() const { return !Node; }
  explicit operator bool() const { return !isNull(); }

  NatKind kind() const;
  bool isLit() const { return Node && kind() == NatKind::Lit; }
  /// Literal value; only valid when isLit().
  long long litValue() const;
  /// Variable name; only valid for Var nodes.
  const std::string &varName() const;
  /// Children of binary nodes.
  Nat lhs() const;
  Nat rhs() const;

  /// Renders with standard precedence, e.g. "(n + 1) * 32".
  std::string str() const;

  /// Evaluates under \p Env using C integer division semantics. Returns
  /// nullopt if a variable is unbound or a division by zero occurs.
  std::optional<long long> evaluate(const NatEnv &Env) const;

  /// Substitutes variables by Nats.
  Nat substitute(const std::map<std::string, Nat> &Subst) const;

  /// Collects the free variable names into \p Out (deduplicated).
  void collectVars(std::vector<std::string> &Out) const;

  /// Canonical simplified form via polynomial normalization.
  Nat simplified() const;

  /// Structural equality after normalization. Always sound.
  static bool proveEq(const Nat &L, const Nat &R);

  /// Tri-state order proofs assuming all variables range over naturals.
  static std::optional<bool> proveLe(const Nat &L, const Nat &R);
  static std::optional<bool> proveLt(const Nat &L, const Nat &R);

  /// Proof that \p Divisor (a positive literal) divides \p E.
  static std::optional<bool> proveDivides(long long Divisor, const Nat &E);

  const NatExpr *node() const { return Node.get(); }

  friend bool operator==(const Nat &L, const Nat &R) {
    return L.Node == R.Node || proveEqOrBothNull(L, R);
  }

  /// Internal: wraps an existing node. Only the Nat implementation uses it.
  static Nat fromNodeInternal(std::shared_ptr<const NatExpr> Node) {
    return Nat(std::move(Node));
  }

private:
  explicit Nat(std::shared_ptr<const NatExpr> Node) : Node(std::move(Node)) {}
  static bool proveEqOrBothNull(const Nat &L, const Nat &R);

  std::shared_ptr<const NatExpr> Node;
};

/// Immutable expression node. Use the Nat factories; nodes are not created
/// directly.
class NatExpr {
public:
  NatKind Kind;
  long long Value = 0;     // Lit
  std::string Name;        // Var
  Nat Lhs, Rhs;            // binary nodes

  explicit NatExpr(long long Value) : Kind(NatKind::Lit), Value(Value) {}
  explicit NatExpr(std::string Name)
      : Kind(NatKind::Var), Name(std::move(Name)) {}
  NatExpr(NatKind Kind, Nat L, Nat R)
      : Kind(Kind), Lhs(std::move(L)), Rhs(std::move(R)) {}
};

} // namespace descend

#endif // DESCEND_NAT_NAT_H
