//===- nat/Nat.cpp - Symbolic naturals and their normal form --------------===//
//
// Normalization maps a Nat onto an integer-coefficient polynomial over
// "atoms". Atoms are variables plus opaque division/modulo subterms that
// cannot be expanded. The normal form is canonical, so structural identity
// of polynomials decides equality, and sign analysis of coefficients (all
// atoms denote naturals, hence every monomial is non-negative) yields sound
// order and divisibility proofs.
//
//===----------------------------------------------------------------------===//

#include "nat/Nat.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace descend;

//===----------------------------------------------------------------------===//
// Construction with local folds
//===----------------------------------------------------------------------===//

static Nat makeNode(NatKind Kind, Nat L, Nat R) {
  return Nat::fromNodeInternal(
      std::make_shared<const NatExpr>(Kind, std::move(L), std::move(R)));
}

Nat Nat::lit(long long Value) {
  return Nat(std::make_shared<const NatExpr>(Value));
}

Nat Nat::var(std::string Name) {
  return Nat(std::make_shared<const NatExpr>(std::move(Name)));
}

NatKind Nat::kind() const {
  assert(Node && "kind() of null Nat");
  return Node->Kind;
}

long long Nat::litValue() const {
  assert(isLit() && "litValue() of non-literal");
  return Node->Value;
}

const std::string &Nat::varName() const {
  assert(kind() == NatKind::Var && "varName() of non-variable");
  return Node->Name;
}

Nat Nat::lhs() const { return Node->Lhs; }
Nat Nat::rhs() const { return Node->Rhs; }

Nat Nat::add(Nat L, Nat R) {
  assert(L && R && "add() of null Nat");
  if (L.isLit() && R.isLit())
    return lit(L.litValue() + R.litValue());
  if (L.isLit() && L.litValue() == 0)
    return R;
  if (R.isLit() && R.litValue() == 0)
    return L;
  return makeNode(NatKind::Add, std::move(L), std::move(R));
}

Nat Nat::sub(Nat L, Nat R) {
  assert(L && R && "sub() of null Nat");
  if (L.isLit() && R.isLit())
    return lit(L.litValue() - R.litValue());
  if (R.isLit() && R.litValue() == 0)
    return L;
  return makeNode(NatKind::Sub, std::move(L), std::move(R));
}

Nat Nat::mul(Nat L, Nat R) {
  assert(L && R && "mul() of null Nat");
  if (L.isLit() && R.isLit())
    return lit(L.litValue() * R.litValue());
  if (L.isLit() && L.litValue() == 1)
    return R;
  if (R.isLit() && R.litValue() == 1)
    return L;
  if ((L.isLit() && L.litValue() == 0) || (R.isLit() && R.litValue() == 0))
    return lit(0);
  return makeNode(NatKind::Mul, std::move(L), std::move(R));
}

Nat Nat::div(Nat L, Nat R) {
  assert(L && R && "div() of null Nat");
  if (L.isLit() && R.isLit() && R.litValue() != 0)
    return lit(L.litValue() / R.litValue());
  if (R.isLit() && R.litValue() == 1)
    return L;
  return makeNode(NatKind::Div, std::move(L), std::move(R));
}

Nat Nat::mod(Nat L, Nat R) {
  assert(L && R && "mod() of null Nat");
  if (L.isLit() && R.isLit() && R.litValue() != 0)
    return lit(L.litValue() % R.litValue());
  if (R.isLit() && R.litValue() == 1)
    return lit(0);
  return makeNode(NatKind::Mod, std::move(L), std::move(R));
}

static long long ipow(long long B, long long E) {
  long long Out = 1;
  for (long long I = 0; I < E; ++I)
    Out *= B;
  return Out;
}

Nat Nat::pow(Nat Base, Nat Exp) {
  assert(Base && Exp && "pow() of null Nat");
  if (Base.isLit() && Exp.isLit() && Exp.litValue() >= 0 &&
      Exp.litValue() < 63)
    return lit(ipow(Base.litValue(), Exp.litValue()));
  if (Exp.isLit() && Exp.litValue() == 0)
    return lit(1);
  if (Exp.isLit() && Exp.litValue() == 1)
    return Base;
  return makeNode(NatKind::Pow, std::move(Base), std::move(Exp));
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {
/// Precedence: additive = 1, multiplicative = 2, atoms = 3.
unsigned precedence(NatKind K) {
  switch (K) {
  case NatKind::Lit:
  case NatKind::Var:
    return 3;
  case NatKind::Mul:
  case NatKind::Div:
  case NatKind::Mod:
    return 2;
  case NatKind::Add:
  case NatKind::Sub:
    return 1;
  case NatKind::Pow:
    return 3;
  }
  return 3;
}

void printNat(const Nat &N, unsigned ParentPrec, std::ostringstream &OS) {
  unsigned Prec = precedence(N.kind());
  bool Paren = Prec < ParentPrec;
  if (Paren)
    OS << '(';
  switch (N.kind()) {
  case NatKind::Lit:
    OS << N.litValue();
    break;
  case NatKind::Var:
    OS << N.varName();
    break;
  case NatKind::Add:
    printNat(N.lhs(), Prec, OS);
    OS << " + ";
    printNat(N.rhs(), Prec, OS);
    break;
  case NatKind::Sub:
    printNat(N.lhs(), Prec, OS);
    OS << " - ";
    // Right operand of '-' needs parens at equal precedence.
    printNat(N.rhs(), Prec + 1, OS);
    break;
  case NatKind::Mul:
    printNat(N.lhs(), Prec, OS);
    OS << " * ";
    printNat(N.rhs(), Prec, OS);
    break;
  case NatKind::Div:
    printNat(N.lhs(), Prec, OS);
    OS << " / ";
    printNat(N.rhs(), Prec + 1, OS);
    break;
  case NatKind::Mod:
    printNat(N.lhs(), Prec, OS);
    OS << " % ";
    printNat(N.rhs(), Prec + 1, OS);
    break;
  case NatKind::Pow:
    printNat(N.lhs(), Prec + 1, OS);
    OS << " ^ ";
    printNat(N.rhs(), Prec + 1, OS);
    break;
  }
  if (Paren)
    OS << ')';
}
} // namespace

std::string Nat::str() const {
  if (!Node)
    return "<null>";
  std::ostringstream OS;
  printNat(*this, 0, OS);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Evaluation / substitution / variable collection
//===----------------------------------------------------------------------===//

std::optional<long long> Nat::evaluate(const NatEnv &Env) const {
  assert(Node && "evaluate() of null Nat");
  switch (kind()) {
  case NatKind::Lit:
    return litValue();
  case NatKind::Var: {
    auto It = Env.find(varName());
    if (It == Env.end())
      return std::nullopt;
    return It->second;
  }
  default: {
    auto L = lhs().evaluate(Env);
    auto R = rhs().evaluate(Env);
    if (!L || !R)
      return std::nullopt;
    switch (kind()) {
    case NatKind::Add:
      return *L + *R;
    case NatKind::Sub:
      return *L - *R;
    case NatKind::Mul:
      return *L * *R;
    case NatKind::Div:
      if (*R == 0)
        return std::nullopt;
      return *L / *R;
    case NatKind::Mod:
      if (*R == 0)
        return std::nullopt;
      return *L % *R;
    case NatKind::Pow:
      if (*R < 0 || *R > 62)
        return std::nullopt;
      return ipow(*L, *R);
    default:
      return std::nullopt;
    }
  }
  }
}

Nat Nat::substitute(const std::map<std::string, Nat> &Subst) const {
  assert(Node && "substitute() of null Nat");
  switch (kind()) {
  case NatKind::Lit:
    return *this;
  case NatKind::Var: {
    auto It = Subst.find(varName());
    return It == Subst.end() ? *this : It->second;
  }
  case NatKind::Add:
    return add(lhs().substitute(Subst), rhs().substitute(Subst));
  case NatKind::Sub:
    return sub(lhs().substitute(Subst), rhs().substitute(Subst));
  case NatKind::Mul:
    return mul(lhs().substitute(Subst), rhs().substitute(Subst));
  case NatKind::Div:
    return div(lhs().substitute(Subst), rhs().substitute(Subst));
  case NatKind::Mod:
    return mod(lhs().substitute(Subst), rhs().substitute(Subst));
  case NatKind::Pow:
    return pow(lhs().substitute(Subst), rhs().substitute(Subst));
  }
  return *this;
}

void Nat::collectVars(std::vector<std::string> &Out) const {
  assert(Node && "collectVars() of null Nat");
  switch (kind()) {
  case NatKind::Lit:
    return;
  case NatKind::Var:
    if (std::find(Out.begin(), Out.end(), varName()) == Out.end())
      Out.push_back(varName());
    return;
  default:
    lhs().collectVars(Out);
    rhs().collectVars(Out);
  }
}

//===----------------------------------------------------------------------===//
// Polynomial normal form
//===----------------------------------------------------------------------===//

namespace {

/// A product of atoms with powers; sorted by atom key. Empty == constant.
struct Monomial {
  std::vector<std::pair<std::string, unsigned>> Factors;

  bool operator<(const Monomial &O) const { return Factors < O.Factors; }
  bool operator==(const Monomial &O) const { return Factors == O.Factors; }
};

struct Poly {
  std::map<Monomial, long long> Terms;       // coefficient per monomial
  std::map<std::string, Nat> Atoms;          // atom key -> representative

  void addTerm(Monomial M, long long Coeff) {
    if (Coeff == 0)
      return;
    auto [It, Inserted] = Terms.try_emplace(std::move(M), Coeff);
    if (!Inserted) {
      It->second += Coeff;
      if (It->second == 0)
        Terms.erase(It);
    }
  }

  void addAtoms(const Poly &O) {
    for (const auto &[K, V] : O.Atoms)
      Atoms.emplace(K, V);
  }

  bool isConstant() const {
    return Terms.empty() ||
           (Terms.size() == 1 && Terms.begin()->first.Factors.empty());
  }

  long long constantTerm() const {
    auto It = Terms.find(Monomial{});
    return It == Terms.end() ? 0 : It->second;
  }
};

Poly constantPoly(long long C) {
  Poly P;
  P.addTerm(Monomial{}, C);
  return P;
}

Poly atomPoly(const std::string &Key, Nat Rep) {
  Poly P;
  Monomial M;
  M.Factors.emplace_back(Key, 1);
  P.addTerm(std::move(M), 1);
  P.Atoms.emplace(Key, std::move(Rep));
  return P;
}

Poly addPoly(const Poly &A, const Poly &B, long long Sign) {
  Poly Out = A;
  for (const auto &[M, C] : B.Terms)
    Out.addTerm(M, Sign * C);
  Out.addAtoms(B);
  return Out;
}

Monomial mulMonomial(const Monomial &A, const Monomial &B) {
  Monomial Out;
  size_t I = 0, J = 0;
  while (I < A.Factors.size() && J < B.Factors.size()) {
    if (A.Factors[I].first < B.Factors[J].first)
      Out.Factors.push_back(A.Factors[I++]);
    else if (B.Factors[J].first < A.Factors[I].first)
      Out.Factors.push_back(B.Factors[J++]);
    else {
      Out.Factors.emplace_back(A.Factors[I].first,
                               A.Factors[I].second + B.Factors[J].second);
      ++I;
      ++J;
    }
  }
  for (; I < A.Factors.size(); ++I)
    Out.Factors.push_back(A.Factors[I]);
  for (; J < B.Factors.size(); ++J)
    Out.Factors.push_back(B.Factors[J]);
  return Out;
}

Poly mulPoly(const Poly &A, const Poly &B) {
  Poly Out;
  for (const auto &[MA, CA] : A.Terms)
    for (const auto &[MB, CB] : B.Terms)
      Out.addTerm(mulMonomial(MA, MB), CA * CB);
  Out.addAtoms(A);
  Out.addAtoms(B);
  return Out;
}

Nat polyToNat(const Poly &P);

/// Tries to divide \p L exactly by a single-term polynomial \p R (e.g.
/// (k*m + 2*k) / k). On success returns the quotient.
std::optional<Poly> dividePolyByMonomial(const Poly &L, const Poly &R) {
  if (R.Terms.size() != 1)
    return std::nullopt;
  const auto &[RM, RC] = *R.Terms.begin();
  if (RC == 0)
    return std::nullopt;
  Poly Out;
  for (const auto &[M, C] : L.Terms) {
    if (C % RC != 0)
      return std::nullopt;
    // Subtract RM's factor powers from M.
    Monomial Q = M;
    for (const auto &[Key, Power] : RM.Factors) {
      bool Found = false;
      for (auto &F : Q.Factors) {
        if (F.first != Key)
          continue;
        if (F.second < Power)
          return std::nullopt;
        F.second -= Power;
        Found = true;
        break;
      }
      if (!Found)
        return std::nullopt;
    }
    std::erase_if(Q.Factors, [](const auto &F) { return F.second == 0; });
    Out.addTerm(std::move(Q), C / RC);
  }
  Out.addAtoms(L);
  return Out;
}

/// Rebuilds the canonical Nat for an opaque Div/Mod atom over normalized
/// children, and returns its polynomial (a fresh atom).
Poly opaqueAtom(NatKind Kind, const Poly &L, const Poly &R) {
  Nat LN = polyToNat(L);
  Nat RN = polyToNat(R);
  Nat Rep = Kind == NatKind::Div  ? Nat::div(LN, RN)
            : Kind == NatKind::Pow ? Nat::pow(LN, RN)
                                   : Nat::mod(LN, RN);
  // Folding in div/mod may have produced a literal (e.g. 7 / 2).
  if (Rep.isLit())
    return constantPoly(Rep.litValue());
  return atomPoly(Rep.str(), Rep);
}

Poly normalizePoly(const Nat &N) {
  switch (N.kind()) {
  case NatKind::Lit:
    return constantPoly(N.litValue());
  case NatKind::Var:
    return atomPoly(N.varName(), N);
  case NatKind::Add:
    return addPoly(normalizePoly(N.lhs()), normalizePoly(N.rhs()), 1);
  case NatKind::Sub:
    return addPoly(normalizePoly(N.lhs()), normalizePoly(N.rhs()), -1);
  case NatKind::Mul:
    return mulPoly(normalizePoly(N.lhs()), normalizePoly(N.rhs()));
  case NatKind::Div: {
    Poly L = normalizePoly(N.lhs());
    Poly R = normalizePoly(N.rhs());
    if (R.isConstant() && R.constantTerm() > 0) {
      long long D = R.constantTerm();
      bool AllDivisible = true;
      for (const auto &[M, C] : L.Terms)
        if (C % D != 0) {
          AllDivisible = false;
          break;
        }
      if (AllDivisible) {
        Poly Out;
        for (const auto &[M, C] : L.Terms)
          Out.addTerm(M, C / D);
        Out.addAtoms(L);
        return Out;
      }
    }
    // x / x == 1 for positive x; sizes in Descend are positive.
    if (L.Terms == R.Terms)
      return constantPoly(1);
    // Exact division by a single-term divisor, e.g. (k*m)/k == m.
    if (auto Q = dividePolyByMonomial(L, R))
      return *Q;
    return opaqueAtom(NatKind::Div, L, R);
  }
  case NatKind::Pow: {
    Poly B = normalizePoly(N.lhs());
    Poly E = normalizePoly(N.rhs());
    if (B.isConstant() && E.isConstant() && E.constantTerm() >= 0 &&
        E.constantTerm() < 63)
      return constantPoly(ipow(B.constantTerm(), E.constantTerm()));
    return opaqueAtom(NatKind::Pow, B, E);
  }
  case NatKind::Mod: {
    Poly L = normalizePoly(N.lhs());
    Poly R = normalizePoly(N.rhs());
    if (R.isConstant() && R.constantTerm() > 0) {
      long long D = R.constantTerm();
      bool NonConstDivisible = true;
      for (const auto &[M, C] : L.Terms)
        if (!M.Factors.empty() && C % D != 0) {
          NonConstDivisible = false;
          break;
        }
      if (NonConstDivisible) {
        long long Rem = ((L.constantTerm() % D) + D) % D;
        return constantPoly(Rem);
      }
    }
    if (L.Terms == R.Terms)
      return constantPoly(0);
    // (k*m) % k == 0 when the division is exact.
    if (dividePolyByMonomial(L, R).has_value())
      return constantPoly(0);
    return opaqueAtom(NatKind::Mod, L, R);
  }
  }
  return constantPoly(0);
}

/// Renders a polynomial back into a Nat with deterministic term order.
Nat polyToNat(const Poly &P) {
  if (P.Terms.empty())
    return Nat::lit(0);
  Nat Acc;
  // Emit positive terms first so the expression starts without a negation.
  for (int Pass = 0; Pass != 2; ++Pass) {
    for (const auto &[M, C] : P.Terms) {
      bool Negative = C < 0;
      if ((Pass == 0) == Negative)
        continue;
      long long AbsC = Negative ? -C : C;
      Nat Term;
      for (const auto &[Key, Power] : M.Factors) {
        auto It = P.Atoms.find(Key);
        assert(It != P.Atoms.end() && "atom without representative");
        for (unsigned I = 0; I != Power; ++I)
          Term = Term ? Nat::mul(Term, It->second) : It->second;
      }
      if (!Term)
        Term = Nat::lit(AbsC);
      else if (AbsC != 1)
        Term = Nat::mul(Term, Nat::lit(AbsC));
      if (!Acc)
        Acc = Negative ? Nat::sub(Nat::lit(0), Term) : Term;
      else
        Acc = Negative ? Nat::sub(Acc, Term) : Nat::add(Acc, Term);
    }
  }
  return Acc;
}

} // namespace

Nat Nat::simplified() const {
  assert(Node && "simplified() of null Nat");
  return polyToNat(normalizePoly(*this));
}

bool Nat::proveEq(const Nat &L, const Nat &R) {
  assert(L && R && "proveEq() of null Nat");
  if (L.node() == R.node())
    return true;
  Poly PL = normalizePoly(L);
  Poly PR = normalizePoly(R);
  return PL.Terms == PR.Terms;
}

bool Nat::proveEqOrBothNull(const Nat &L, const Nat &R) {
  if (L.isNull() || R.isNull())
    return L.isNull() && R.isNull();
  return proveEq(L, R);
}

std::optional<bool> Nat::proveLe(const Nat &L, const Nat &R) {
  assert(L && R && "proveLe() of null Nat");
  Poly D = addPoly(normalizePoly(R), normalizePoly(L), -1); // R - L
  bool AllNonNeg = true, AllNonPos = true;
  for (const auto &[M, C] : D.Terms) {
    if (C < 0)
      AllNonNeg = false;
    if (C > 0)
      AllNonPos = false;
  }
  if (AllNonNeg)
    return true; // every monomial is a product of naturals
  if (AllNonPos && D.constantTerm() < 0)
    return false;
  return std::nullopt;
}

std::optional<bool> Nat::proveLt(const Nat &L, const Nat &R) {
  assert(L && R && "proveLt() of null Nat");
  return proveLe(add(L, lit(1)), R);
}

std::optional<bool> Nat::proveDivides(long long Divisor, const Nat &E) {
  assert(E && "proveDivides() of null Nat");
  assert(Divisor > 0 && "divisor must be positive");
  if (Divisor == 1)
    return true;
  Poly P = normalizePoly(E);
  bool AllDivisible = true, NonConstDivisible = true;
  for (const auto &[M, C] : P.Terms) {
    if (C % Divisor != 0) {
      AllDivisible = false;
      if (!M.Factors.empty())
        NonConstDivisible = false;
    }
  }
  if (AllDivisible)
    return true;
  // All variable terms divisible but the constant is not: provably not
  // divisible.
  if (NonConstDivisible)
    return false;
  return std::nullopt;
}
