//===- codegen/PhaseIR.h - Structured phase-program IR ----------*- C++ -*-===//
//
// Part of the Descend reproduction. The phase-program IR is the structured
// result of lowering one GPU grid function for the simulator backend
// (Section 5, Fig. 5): a kernel becomes a tree of
//
//   StraightPhase  one barrier-delimited phase body — a vector of typed
//                  kernel-IR statements (kir::Stmt), run for every thread
//                  of a block before the next node starts;
//   PhaseLoop      a host-side loop (variable, lo/hi Nat bounds, slot)
//                  whose children run once per iteration.
//
// A `for` loop whose body synchronizes therefore keeps its loop structure
// (one PhaseLoop, O(1) phase bodies) instead of being unrolled into O(n)
// distinct phases, and loop bounds no longer need to be literals: the
// simulator runtime (sim::PhaseProgram / sim::launchProgram) walks the
// same shape host-side, binding the loop variable per iteration, while
// the CUDA backend emits a real `for` with __syncthreads() inside.
//
// Since the phase-bodies-are-typed-IR refactor, nothing in here is a
// string: backends print the same kir::Stmt vectors with their own
// spelling (kir::CppStyle), and passes (kir/Passes.h) rewrite them before
// any printing happens.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_CODEGEN_PHASEIR_H
#define DESCEND_CODEGEN_PHASEIR_H

#include "kir/KIR.h"
#include "kir/Schedule.h"
#include "nat/Nat.h"

#include <string>
#include <vector>

namespace descend {

class Module;

namespace codegen {

/// One node of a phase program.
struct PhaseNode {
  enum Kind { Straight, Loop };
  Kind K = Straight;

  // Straight: the phase body as typed kernel-IR statements, referencing
  // the coordinate variables (_bx/_tx/..., _lin) and any enclosing
  // PhaseLoop variables.
  std::vector<kir::Stmt> Body;

  // Loop:
  std::string Var;  ///< source loop-variable name (spelled in bodies)
  unsigned Slot = 0;///< runtime loop-variable slot (= nesting depth)
  Nat Lo, Hi;       ///< half-open bounds [Lo..Hi); need not be literals
  std::vector<PhaseNode> Children;

  static PhaseNode straight(std::vector<kir::Stmt> Body) {
    PhaseNode N;
    N.K = Straight;
    N.Body = std::move(Body);
    return N;
  }
  static PhaseNode loop(std::string Var, unsigned Slot, Nat Lo, Nat Hi) {
    PhaseNode N;
    N.K = Loop;
    N.Var = std::move(Var);
    N.Slot = Slot;
    N.Lo = std::move(Lo);
    N.Hi = std::move(Hi);
    return N;
  }
};

/// The phase program of one lowered kernel: a sequence of nodes executed
/// in order within every block.
struct PhaseProgramIR {
  std::vector<PhaseNode> Nodes;

  /// Number of StraightPhase nodes in the whole tree — the number of
  /// distinct phase bodies the backend emits. Independent of loop trip
  /// counts (the point of the IR).
  unsigned straightCount() const;

  /// Deepest PhaseLoop nesting (0 = no loops).
  unsigned maxLoopDepth() const;

  /// Human-readable tree, e.g.
  ///   phase #0 (3 stmts)
  ///   loop t in [0..nt) slot 0
  ///     phase #1 (5 stmts)
  /// Used by `descendc --dump-phase-ir`.
  std::string dump() const;

  /// Like dump(), but every phase body is rendered statement by statement
  /// in the backend-neutral kir::dump spelling. Used by `--dump-kir` and
  /// the ast backend's `// kir:` block.
  std::string dumpStmts() const;

  void clear() { Nodes.clear(); }
};

/// Lowers every GPU grid function of \p M (which must have passed the
/// type checker) and renders the phase-program IR of each, separated by
/// blank lines. On failure returns false with the lowering error in
/// \p Error. Backs `descendc --dump-phase-ir`. \p Passes selects the
/// opt-in schedule passes to run before dumping (none by default, so
/// `--dump-kir=pre` and the historical output are identical).
bool dumpPhasePrograms(const Module &M, std::string &Out, std::string &Error,
                       const kir::PassConfig &Passes = {});

/// Like dumpPhasePrograms, but renders every phase body of the
/// phase-structured (sim-target) lowering as the backend-neutral
/// kernel-IR statement dump. Backs `descendc --dump-kir[=pre|post]`.
bool dumpKernelIRs(const Module &M, std::string &Out, std::string &Error,
                   const kir::PassConfig &Passes = {});

} // namespace codegen
} // namespace descend

#endif // DESCEND_CODEGEN_PHASEIR_H
