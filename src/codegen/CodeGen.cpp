//===- codegen/CodeGen.cpp - CUDA and simulator backends --------------------===//

#include "codegen/CodeGen.h"

#include "exec/ExecResource.h"
#include "support/StringUtils.h"
#include "views/IndexSpace.h"
#include "views/View.h"

#include <cassert>
#include <sstream>

using namespace descend;

namespace {

const char *cppScalarType(ScalarKind K) {
  switch (K) {
  case ScalarKind::I32:
    return "int32_t";
  case ScalarKind::I64:
    return "int64_t";
  case ScalarKind::U32:
    return "uint32_t";
  case ScalarKind::U64:
    return "uint64_t";
  case ScalarKind::F32:
    return "float";
  case ScalarKind::F64:
    return "double";
  case ScalarKind::Bool:
    return "bool";
  case ScalarKind::Unit:
    return "void";
  }
  return "void";
}

/// True when the Nat contains an unfolded Pow node (cannot be printed as
/// C++; '^' means xor there).
bool containsPow(const Nat &N) {
  if (N.isNull())
    return false;
  if (N.kind() == NatKind::Pow)
    return true;
  switch (N.kind()) {
  case NatKind::Lit:
  case NatKind::Var:
    return false;
  default:
    return containsPow(N.lhs()) || containsPow(N.rhs());
  }
}

std::string floatLiteral(double V, ScalarKind K) {
  std::string S = strfmt("%.17g", V);
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  if (K == ScalarKind::F32)
    S += "f";
  return S;
}

/// Extracts the array-nest dimensions and element scalar type of a kernel
/// parameter / allocation type.
bool arrayNest(const TypeRef &T, std::vector<Nat> &Dims, ScalarKind &Elem) {
  const DataType *Cur = T.get();
  while (true) {
    if (const auto *A = dyn_cast<ArrayType>(Cur)) {
      Dims.push_back(A->Size);
      Cur = A->Elem.get();
      continue;
    }
    if (const auto *A = dyn_cast<ArrayViewType>(Cur)) {
      Dims.push_back(A->Size);
      Cur = A->Elem.get();
      continue;
    }
    if (const auto *S = dyn_cast<ScalarType>(Cur)) {
      Elem = S->Scalar;
      return true;
    }
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Lowerer
//===----------------------------------------------------------------------===//

enum class Backend { Cuda, Sim };

struct Sym {
  enum Kind { GlobalBuf, SharedBuf, Local, ExecVar, NatVar } K = Local;
  std::string CppName;
  ScalarKind Elem = ScalarKind::F64;
  std::vector<Nat> Dims;    // GlobalBuf / SharedBuf
  size_t ByteBase = 0;      // SharedBuf: offset in the shared arena
  size_t LocalOff = 0;      // Local: offset in the per-thread arena region
  bool Uniq = false;        // GlobalBuf: unique reference?
  // ExecVar:
  ExecResource Exec = ExecResource::cpuThread();
  unsigned OpsBegin = 0, OpsEnd = 0;
  // NatVar:
  Nat ConstVal; // set while unrolled
};

class Lowerer {
public:
  Lowerer(const Module &Mod, Backend B) : Mod(Mod), B(B) {
    Views.addModuleViews(Mod);
  }

  // Results for the kernel just lowered.
  std::vector<std::string> Phases;      // sim: per-phase body lines
  std::string CudaBody;                 // cuda: linear body
  size_t SharedBytes = 0;               // shared allocations
  size_t LocalBytesPerThread = 0;       // per-thread register arena
  std::string Error;

private:
  const Module &Mod;
  Backend B;
  ViewRegistry Views;

  std::map<std::string, std::vector<Sym>> Syms;
  std::vector<std::vector<std::string>> Scopes;
  ExecResource CurExec = ExecResource::cpuThread();
  unsigned ThreadsPerBlock = 1;
  unsigned NextLocalUid = 0;
  /// Live phase-spanning locals: (C++ name, element type, arena offset).
  struct LiveLocal {
    std::string CppName;
    ScalarKind Elem;
    size_t Off;
    unsigned ScopeDepth;
  };
  std::vector<LiveLocal> LiveLocals;

  std::ostringstream Out; // current phase (sim) or whole body (cuda)
  unsigned Indent = 1;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  void line(const std::string &S) {
    for (unsigned I = 0; I != Indent; ++I)
      Out << "  ";
    Out << S << "\n";
  }

  void pushScope() { Scopes.emplace_back(); }
  void popScope() {
    for (const std::string &N : Scopes.back())
      Syms[N].pop_back();
    while (!LiveLocals.empty() && LiveLocals.back().ScopeDepth >= Scopes.size())
      LiveLocals.pop_back();
    Scopes.pop_back();
  }
  Sym &bind(const std::string &Name, Sym S) {
    Scopes.back().push_back(Name);
    auto &Stack = Syms[Name];
    Stack.push_back(std::move(S));
    return Stack.back();
  }
  Sym *lookup(const std::string &Name) {
    auto It = Syms.find(Name);
    if (It == Syms.end() || It->second.empty())
      return nullptr;
    return &It->second.back();
  }

  /// Raw coordinate variable for (stage, axis).
  std::string axisVarName(unsigned Stage, Axis A) const {
    if (B == Backend::Cuda) {
      std::string Base = Stage == 0 ? "blockIdx." : "threadIdx.";
      return Base + (A == Axis::X ? "x" : A == Axis::Y ? "y" : "z");
    }
    std::string Base = Stage == 0 ? "_b" : "_t";
    return Base + (A == Axis::X ? "x" : A == Axis::Y ? "y" : "z");
  }

  /// Local coordinate of the forall at op index \p OpIdx in \p Exec: the
  /// raw coordinate minus the snd-split offsets accumulated before it.
  Nat coordinateFor(const ExecResource &Exec, unsigned OpIdx) {
    const ExecOp &Op = Exec.ops()[OpIdx];
    Nat Coord = Nat::var(axisVarName(Op.Stage, Op.Ax));
    for (unsigned I = 0; I != OpIdx; ++I) {
      const ExecOp &Prev = Exec.ops()[I];
      if (Prev.Stage == Op.Stage && Prev.Ax == Op.Ax &&
          Prev.Kind == ExecOpKind::SplitSnd)
        Coord = Coord - Prev.Pos;
    }
    return Coord;
  }

  Nat exprToNat(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Literal: {
      const auto *L = cast<LiteralExpr>(&E);
      return Nat::lit(L->IntValue);
    }
    case ExprKind::PlaceVar: {
      const auto *V = cast<PlaceVar>(&E);
      if (Sym *S = lookup(V->Name); S && S->K == Sym::NatVar)
        return S->ConstVal ? S->ConstVal : Nat::var(V->Name);
      return Nat();
    }
    case ExprKind::Binary: {
      const auto *Bin = cast<BinaryExpr>(&E);
      Nat L = exprToNat(*Bin->Lhs);
      Nat R = exprToNat(*Bin->Rhs);
      if (!L || !R)
        return Nat();
      switch (Bin->Op) {
      case BinOpKind::Add:
        return L + R;
      case BinOpKind::Sub:
        return L - R;
      case BinOpKind::Mul:
        return L * R;
      case BinOpKind::Div:
        return L / R;
      case BinOpKind::Mod:
        return L % R;
      default:
        return Nat();
      }
    }
    default:
      return Nat();
    }
  }

  /// Substitutes unrolled loop constants into a nat from the source.
  Nat substLoopConsts(Nat N) {
    if (!N)
      return N;
    std::vector<std::string> Vars;
    N.collectVars(Vars);
    std::map<std::string, Nat> Subst;
    for (const std::string &V : Vars)
      if (Sym *S = lookup(V); S && S->K == Sym::NatVar && S->ConstVal)
        Subst[V] = S->ConstVal;
    return Subst.empty() ? N : N.substitute(Subst);
  }

  std::string natToCpp(const Nat &N) {
    Nat S = N.simplified();
    if (containsPow(S)) {
      fail("internal: unfolded 2^i expression reached code generation: " +
           S.str());
      return "0";
    }
    return S.str();
  }

  //===--------------------------------------------------------------------===//
  // Places
  //===--------------------------------------------------------------------===//

  struct LPlace {
    enum Kind { Global, Shared, Local, NatValue } K = Global;
    const Sym *Root = nullptr;
    Nat Index;   // flat element index
    Nat NatVal;  // NatValue
  };

  std::optional<LPlace> lowerPlace(const PlaceExpr &P) {
    // Collect root-to-leaf chain.
    std::vector<const PlaceExpr *> Chain;
    for (const PlaceExpr *Cur = &P; Cur; Cur = basePlace(Cur))
      Chain.push_back(Cur);
    std::reverse(Chain.begin(), Chain.end());

    const auto *RootVar = dyn_cast<PlaceVar>(Chain[0]);
    assert(RootVar && "place chain must start at a variable");
    Sym *Root = lookup(RootVar->Name);
    if (!Root) {
      fail("internal: unknown symbol `" + RootVar->Name + "`");
      return std::nullopt;
    }

    LPlace Result;
    if (Root->K == Sym::NatVar) {
      Result.K = LPlace::NatValue;
      Result.NatVal = Root->ConstVal ? Root->ConstVal
                                     : Nat::var(RootVar->Name);
      return Result;
    }
    if (Root->K == Sym::Local) {
      Result.K = LPlace::Local;
      Result.Root = Root;
      return Result;
    }
    if (Root->K == Sym::ExecVar) {
      fail("internal: execution resource used as value");
      return std::nullopt;
    }

    Result.K = Root->K == Sym::GlobalBuf ? LPlace::Global : LPlace::Shared;
    Result.Root = Root;

    IndexSpace Space = IndexSpace::fromDims(Root->Dims);
    // Pending split view: a split must be followed by .fst/.snd.
    std::optional<Nat> PendingSplit;

    for (size_t I = 1; I != Chain.size(); ++I) {
      const PlaceExpr *Step = Chain[I];
      std::string Err;
      switch (Step->kind()) {
      case ExprKind::PlaceDeref:
        break; // references were resolved to buffers
      case ExprKind::PlaceView: {
        const auto *V = cast<PlaceView>(Step);
        std::vector<Nat> Args;
        for (const Nat &A : V->NatArgs)
          Args.push_back(substLoopConsts(A).simplified());
        auto Resolved = Views.resolve(V->ViewName, Args, &Err);
        if (!Resolved) {
          fail(Err);
          return std::nullopt;
        }
        for (const View &Prim : *Resolved) {
          if (Prim.Kind == ViewKind::SplitView) {
            if (PendingSplit) {
              fail("internal: split view without projection");
              return std::nullopt;
            }
            PendingSplit = Prim.Arg;
            continue;
          }
          if (PendingSplit) {
            fail("internal: split view without projection");
            return std::nullopt;
          }
          if (!Space.applyView(Prim, &Err)) {
            fail(Err);
            return std::nullopt;
          }
        }
        break;
      }
      case ExprKind::PlaceProj: {
        const auto *Proj = cast<PlaceProj>(Step);
        if (!PendingSplit) {
          fail("tuple projections outside split views are not supported in "
               "kernels");
          return std::nullopt;
        }
        if (!Space.takeSplitPart(*PendingSplit, Proj->Which == 0, &Err)) {
          fail(Err);
          return std::nullopt;
        }
        PendingSplit.reset();
        break;
      }
      case ExprKind::PlaceSelect: {
        const auto *Sel = cast<PlaceSelect>(Step);
        Sym *ExecSym = lookup(Sel->ExecName);
        if (!ExecSym || ExecSym->K != Sym::ExecVar) {
          fail("internal: unknown execution resource `" + Sel->ExecName +
               "`");
          return std::nullopt;
        }
        for (unsigned OpIdx = ExecSym->OpsBegin; OpIdx != ExecSym->OpsEnd;
             ++OpIdx) {
          Nat Coord = coordinateFor(ExecSym->Exec, OpIdx);
          if (!Space.bindOuter(Coord, &Err)) {
            fail(Err);
            return std::nullopt;
          }
        }
        break;
      }
      case ExprKind::PlaceIndex: {
        const auto *Idx = cast<PlaceIndex>(Step);
        Nat N = exprToNat(*Idx->Index);
        if (!N) {
          fail("kernel indices must be static or loop-variable expressions: "
               + exprToString(*Idx->Index));
          return std::nullopt;
        }
        if (!Space.bindOuter(substLoopConsts(N), &Err)) {
          fail(Err);
          return std::nullopt;
        }
        break;
      }
      default:
        fail("unsupported place step in kernel");
        return std::nullopt;
      }
    }

    std::string Err;
    Result.Index = Space.flatten(&Err);
    if (Result.Index.isNull()) {
      fail(Err);
      return std::nullopt;
    }
    return Result;
  }

  std::string placeLoad(const LPlace &P) {
    switch (P.K) {
    case LPlace::NatValue:
      return natToCpp(P.NatVal);
    case LPlace::Local:
      return P.Root->CppName;
    case LPlace::Global:
      if (B == Backend::Cuda)
        return P.Root->CppName + "[" + natToCpp(P.Index) + "]";
      return P.Root->CppName + ".load(_b, " + natToCpp(P.Index) + ")";
    case LPlace::Shared:
      if (B == Backend::Cuda)
        return P.Root->CppName + "[" + natToCpp(P.Index) + "]";
      return strfmt("_b.sharedLoad<%s>(%zu, %s)",
                    cppScalarType(P.Root->Elem), P.Root->ByteBase,
                    natToCpp(P.Index).c_str());
    }
    return "0";
  }

  bool placeStore(const LPlace &P, const std::string &Value) {
    switch (P.K) {
    case LPlace::NatValue:
      return fail("cannot assign to a loop variable");
    case LPlace::Local:
      line(P.Root->CppName + " = " + Value + ";");
      return true;
    case LPlace::Global:
      if (B == Backend::Cuda)
        line(P.Root->CppName + "[" + natToCpp(P.Index) + "] = " + Value +
             ";");
      else
        line(P.Root->CppName + ".store(_b, " + natToCpp(P.Index) + ", " +
             Value + ");");
      return true;
    case LPlace::Shared:
      if (B == Backend::Cuda)
        line(P.Root->CppName + "[" + natToCpp(P.Index) + "] = " + Value +
             ";");
      else
        line(strfmt("_b.sharedStore<%s>(%zu, %s, %s);",
                    cppScalarType(P.Root->Elem), P.Root->ByteBase,
                    natToCpp(P.Index).c_str(), Value.c_str()));
      return true;
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Expressions & statements
  //===--------------------------------------------------------------------===//

  std::optional<std::string> genExpr(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Literal: {
      const auto *L = cast<LiteralExpr>(&E);
      switch (L->Scalar) {
      case ScalarKind::Bool:
        return std::string(L->BoolValue ? "true" : "false");
      case ScalarKind::F32:
      case ScalarKind::F64:
        return floatLiteral(L->FloatValue, L->Scalar);
      case ScalarKind::Unit:
        return std::string("/*unit*/0");
      default:
        return std::to_string(L->IntValue);
      }
    }
    case ExprKind::Binary: {
      const auto *Bin = cast<BinaryExpr>(&E);
      auto L = genExpr(*Bin->Lhs);
      auto R = genExpr(*Bin->Rhs);
      if (!L || !R)
        return std::nullopt;
      return "(" + *L + " " + binOpSpelling(Bin->Op) + " " + *R + ")";
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      auto S = genExpr(*U->Sub);
      if (!S)
        return std::nullopt;
      return std::string(U->Op == UnOpKind::Neg ? "-" : "!") + *S;
    }
    default:
      if (const auto *P = dyn_cast<PlaceExpr>(&E)) {
        auto LP = lowerPlace(*P);
        if (!LP)
          return std::nullopt;
        return placeLoad(*LP);
      }
      fail("unsupported expression in kernel: " + exprToString(E));
      return std::nullopt;
    }
  }

  static bool containsSyncOrSplit(const Expr &E) {
    if (isa<SyncExpr>(&E) || isa<SplitExpr>(&E))
      return true;
    bool Found = false;
    forEachChild(const_cast<Expr &>(E),
                 [&](Expr &C) { Found = Found || containsSyncOrSplit(C); });
    return Found;
  }

  void phaseBreak() {
    if (B == Backend::Cuda) {
      line("__syncthreads();");
      return;
    }
    // Registers do not survive the phase boundary: spill phase-spanning
    // locals to their per-thread arena slot and reload at the start of the
    // next phase (one load/store per local per phase, as a handwritten
    // kernel would do).
    for (const LiveLocal &L : LiveLocals)
      line(strfmt("_b.shared<%s>(_locals_base + %zu)[_lin] = %s;",
                  cppScalarType(L.Elem), L.Off, L.CppName.c_str()));
    Phases.push_back(Out.str());
    Out.str("");
    for (const LiveLocal &L : LiveLocals)
      line(strfmt("%s %s = _b.shared<%s>(_locals_base + %zu)[_lin];",
                  cppScalarType(L.Elem), L.CppName.c_str(),
                  cppScalarType(L.Elem), L.Off));
  }

  bool genStmt(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Block: {
      const auto *Blk = cast<BlockExpr>(&E);
      pushScope();
      for (const ExprPtr &S : Blk->Stmts)
        if (!genStmt(*S))
          return false;
      popScope();
      return true;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(&E);
      if (const auto *A = dyn_cast<AllocExpr>(L->Init.get())) {
        std::vector<Nat> Dims;
        ScalarKind Elem = ScalarKind::F64;
        if (!arrayNest(A->AllocTy, Dims, Elem))
          return fail("alloc type must be an array of scalars");
        size_t Bytes = 1;
        for (const Nat &D : Dims) {
          auto V = D.evaluate({});
          if (!V)
            return fail("shared allocation sizes must be concrete");
          Bytes *= *V;
        }
        size_t ElemSize = Elem == ScalarKind::F32 ? 4
                          : Elem == ScalarKind::Bool ? 1
                                                     : 8;
        Bytes *= ElemSize;
        Sym S;
        S.K = Sym::SharedBuf;
        S.CppName = L->Name;
        S.Elem = Elem;
        S.Dims = Dims;
        S.ByteBase = (SharedBytes + 7) & ~size_t(7);
        SharedBytes = S.ByteBase + Bytes;
        if (B == Backend::Cuda) {
          size_t Total = Bytes / ElemSize;
          line(strfmt("__shared__ %s %s[%zu];", cppScalarType(Elem),
                      L->Name.c_str(), Total));
        }
        bind(L->Name, std::move(S));
        return true;
      }
      // Scalar thread-local binding.
      const auto *Scalar = dyn_cast_if_present<ScalarType>(
          L->Init->Ty ? L->Init->Ty.get()
                      : (L->Annotation ? L->Annotation.get() : nullptr));
      if (!Scalar)
        return fail("only scalar lets and shared allocations are supported "
                    "inside kernels: let " +
                    L->Name);
      auto Init = genExpr(*L->Init);
      if (!Init)
        return false;
      Sym S;
      S.K = Sym::Local;
      S.CppName = B == Backend::Cuda
                      ? L->Name
                      : strfmt("%s_%u", L->Name.c_str(), NextLocalUid++);
      S.Elem = Scalar->Scalar;
      // Per-thread arena region for phase-spanning state (sim): each var
      // gets 8 * ThreadsPerBlock bytes after the shared allocations.
      S.LocalOff = ((LocalBytesPerThread + 7) & ~size_t(7));
      LocalBytesPerThread = S.LocalOff + 8;
      S.LocalOff = S.LocalOff * ThreadsPerBlock;
      const Sym &Bound = bind(L->Name, std::move(S));
      line(strfmt("%s %s = %s;", cppScalarType(Bound.Elem),
                  Bound.CppName.c_str(), Init->c_str()));
      if (B == Backend::Sim)
        LiveLocals.push_back(LiveLocal{Bound.CppName, Bound.Elem,
                                       Bound.LocalOff,
                                       (unsigned)Scopes.size()});
      return true;
    }
    case ExprKind::Assign: {
      const auto *A = cast<AssignExpr>(&E);
      auto Value = genExpr(*A->Rhs);
      if (!Value)
        return false;
      auto LP = lowerPlace(*A->Lhs);
      if (!LP)
        return false;
      return placeStore(*LP, *Value);
    }
    case ExprKind::Sched: {
      const auto *S = cast<SchedExpr>(&E);
      Sym *Target = lookup(S->Target);
      if (!Target || Target->K != Sym::ExecVar)
        return fail("internal: unknown sched target");
      ExecResource Child = Target->Exec;
      for (Axis A : S->Axes) {
        auto Next = Child.forall(A);
        if (!Next)
          return fail("internal: invalid sched");
        Child = *Next;
      }
      pushScope();
      Sym Binder;
      Binder.K = Sym::ExecVar;
      Binder.CppName = S->Binder;
      Binder.Exec = Child;
      Binder.OpsBegin = Target->Exec.numOps();
      Binder.OpsEnd = Child.numOps();
      bind(S->Binder, std::move(Binder));
      ExecResource Saved = CurExec;
      CurExec = Child;
      bool Ok = genStmt(*S->Body);
      CurExec = Saved;
      popScope();
      return Ok;
    }
    case ExprKind::Split: {
      const auto *S = cast<SplitExpr>(&E);
      Sym *Target = lookup(S->Target);
      if (!Target || Target->K != Sym::ExecVar)
        return fail("internal: unknown split target");
      Nat Pos = substLoopConsts(S->Position).simplified();
      auto Fst = Target->Exec.split(S->SplitAxis, Pos, true);
      auto Snd = Target->Exec.split(S->SplitAxis, Pos, false);
      if (!Fst || !Snd)
        return fail("internal: invalid split");
      // Guard: local coordinate along the split axis at the split's stage.
      unsigned Stage = Fst->ops().back().Stage;
      Nat Coord = Nat::var(axisVarName(Stage, S->SplitAxis));
      for (const ExecOp &Op : Target->Exec.ops())
        if (Op.Stage == Stage && Op.Ax == S->SplitAxis &&
            Op.Kind == ExecOpKind::SplitSnd)
          Coord = Coord - Op.Pos;
      line("if (" + natToCpp(Coord) + " < " + natToCpp(Pos) + ") {");
      ++Indent;
      {
        pushScope();
        Sym Binder;
        Binder.K = Sym::ExecVar;
        Binder.CppName = S->FstName;
        Binder.Exec = *Fst;
        Binder.OpsBegin = Target->Exec.numOps();
        Binder.OpsEnd = Fst->numOps();
        bind(S->FstName, std::move(Binder));
        ExecResource Saved = CurExec;
        CurExec = *Fst;
        bool Ok = genStmt(*S->FstBody);
        CurExec = Saved;
        popScope();
        if (!Ok)
          return false;
      }
      --Indent;
      line("} else {");
      ++Indent;
      {
        pushScope();
        Sym Binder;
        Binder.K = Sym::ExecVar;
        Binder.CppName = S->SndName;
        Binder.Exec = *Snd;
        Binder.OpsBegin = Target->Exec.numOps();
        Binder.OpsEnd = Snd->numOps();
        bind(S->SndName, std::move(Binder));
        ExecResource Saved = CurExec;
        CurExec = *Snd;
        bool Ok = genStmt(*S->SndBody);
        CurExec = Saved;
        popScope();
        if (!Ok)
          return false;
      }
      --Indent;
      line("}");
      return true;
    }
    case ExprKind::Sync:
      phaseBreak();
      return true;
    case ExprKind::ForNat: {
      const auto *F = cast<ForNatExpr>(&E);
      Nat Lo = substLoopConsts(F->Lo).simplified();
      Nat Hi = substLoopConsts(F->Hi).simplified();
      // Loops whose body synchronizes (sim: phase boundaries) or splits
      // the hierarchy (iteration-dependent split positions like n/2^s)
      // are unrolled; their ranges are statically evaluated (Fig. 5).
      bool NeedUnroll = containsSyncOrSplit(*F->Body);
      if (NeedUnroll) {
        if (!Lo.isLit() || !Hi.isLit())
          return fail("loops containing sync or split need static bounds, "
                      "got [" +
                      Lo.str() + ".." + Hi.str() + "]");
        for (long long V = Lo.litValue(); V < Hi.litValue(); ++V) {
          pushScope();
          Sym S;
          S.K = Sym::NatVar;
          S.CppName = F->Var;
          S.ConstVal = Nat::lit(V);
          bind(F->Var, std::move(S));
          bool Ok = genStmt(*F->Body);
          popScope();
          if (!Ok)
            return false;
        }
        return true;
      }
      line(strfmt("for (long long %s = %s; %s < %s; ++%s) {",
                  F->Var.c_str(), natToCpp(Lo).c_str(), F->Var.c_str(),
                  natToCpp(Hi).c_str(), F->Var.c_str()));
      ++Indent;
      pushScope();
      Sym S;
      S.K = Sym::NatVar;
      S.CppName = F->Var;
      bind(F->Var, std::move(S));
      bool Ok = genStmt(*F->Body);
      popScope();
      --Indent;
      line("}");
      return Ok;
    }
    default:
      return fail("unsupported statement in kernel: " + exprToString(E));
    }
  }

public:
  bool runKernel(const FnDef &Fn) {
    Phases.clear();
    CudaBody.clear();
    SharedBytes = 0;
    LocalBytesPerThread = 0;
    Out.str("");
    Syms.clear();
    Scopes.clear();

    auto Threads = Fn.Exec.BlockDim.total().evaluate({});
    if (!Threads)
      return fail("kernel block dimensions must be concrete; instantiate "
                  "generic sizes first (--define)");
    ThreadsPerBlock = *Threads;

    pushScope();
    ExecResource Grid =
        ExecResource::gpuGrid(Fn.ExecName, Fn.Exec.GridDim, Fn.Exec.BlockDim);
    Sym ExecSym;
    ExecSym.K = Sym::ExecVar;
    ExecSym.CppName = Fn.ExecName;
    ExecSym.Exec = Grid;
    bind(Fn.ExecName, std::move(ExecSym));
    CurExec = Grid;

    for (const FnParam &P : Fn.Params) {
      const auto *Ref = dyn_cast<RefType>(P.Ty.get());
      if (!Ref)
        return fail("kernel parameters must be references to global "
                    "memory: " +
                    P.Name);
      std::vector<Nat> Dims;
      ScalarKind Elem = ScalarKind::F64;
      if (!arrayNest(Ref->Pointee, Dims, Elem))
        return fail("kernel parameter must reference an array of scalars: " +
                    P.Name);
      Sym S;
      S.K = Sym::GlobalBuf;
      S.CppName = P.Name;
      S.Elem = Elem;
      S.Dims = std::move(Dims);
      S.Uniq = Ref->Own == Ownership::Uniq;
      bind(P.Name, std::move(S));
    }

    bool Ok = Fn.Body ? genStmt(*Fn.Body) : true;
    popScope();
    if (!Ok)
      return false;

    if (B == Backend::Sim)
      Phases.push_back(Out.str());
    else
      CudaBody = Out.str();
    return true;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Sim backend assembly
//===----------------------------------------------------------------------===//

GenResult descend::emitSim(const Module &M, const std::string &FnSuffix) {
  GenResult R;
  std::ostringstream OS;
  OS << "// Generated by descendc --emit=sim. Do not edit.\n";
  OS << "#pragma once\n\n#include \"sim/Sim.h\"\n\n#include <cstdint>\n\n";
  OS << "namespace descend::gen {\n";

  for (const auto &FnPtr : M.Fns) {
    const FnDef &Fn = *FnPtr;
    if (!Fn.isGpuFn())
      continue;
    Lowerer L(M, Backend::Sim);
    if (!L.runKernel(Fn)) {
      R.Error = "while lowering `" + Fn.Name + "`: " + L.Error;
      return R;
    }

    auto GridOf = [](const Dim &D) {
      auto Get = [&](Axis A) -> unsigned {
        if (!D.hasAxis(A))
          return 1;
        auto V = D.extent(A).evaluate({});
        return V ? static_cast<unsigned>(*V) : 1;
      };
      return strfmt("descend::sim::Dim3{%u, %u, %u}", Get(Axis::X),
                    Get(Axis::Y), Get(Axis::Z));
    };

    unsigned Threads = 1;
    if (auto T = Fn.Exec.BlockDim.total().evaluate({}))
      Threads = *T;
    size_t SharedTotal = (L.SharedBytes + 7) & ~size_t(7);
    size_t ArenaBytes = SharedTotal + L.LocalBytesPerThread * Threads;

    OS << "\n/// " << Fn.signature() << "\n";
    OS << "inline void " << Fn.Name << FnSuffix
       << "(descend::sim::GpuDevice &_dev";
    for (const FnParam &P : Fn.Params) {
      std::vector<Nat> Dims;
      ScalarKind Elem = ScalarKind::F64;
      const auto *Ref = cast<RefType>(P.Ty.get());
      arrayNest(Ref->Pointee, Dims, Elem);
      OS << ",\n    descend::sim::GpuDevice::Buffer<" << cppScalarType(Elem)
         << "> " << P.Name;
    }
    OS << ") {\n";
    OS << "  using descend::sim::BlockCtx;\n";
    OS << "  using descend::sim::ThreadCtx;\n";
    OS << "  constexpr size_t _locals_base = " << SharedTotal << ";\n";
    OS << "  (void)_locals_base;\n";
    OS << "  descend::sim::launchPhases(_dev, " << GridOf(Fn.Exec.GridDim)
       << ", " << GridOf(Fn.Exec.BlockDim) << ", " << ArenaBytes;
    for (const std::string &Phase : L.Phases) {
      OS << ",\n    [&](BlockCtx &_b, ThreadCtx &_t) {\n";
      OS << "      const long long _bx = _b.X, _by = _b.Y, _bz = _b.Z;\n";
      OS << "      const long long _tx = _t.X, _ty = _t.Y, _tz = _t.Z;\n";
      OS << "      const size_t _lin = _b.CurThread;\n";
      OS << "      (void)_bx; (void)_by; (void)_bz; (void)_tx; (void)_ty; "
            "(void)_tz; (void)_lin;\n";
      // Indent the phase body two extra levels.
      std::istringstream Body(Phase);
      std::string LineStr;
      while (std::getline(Body, LineStr))
        OS << "    " << LineStr << "\n";
      OS << "    }";
    }
    OS << ");\n}\n";
  }
  OS << "\n} // namespace descend::gen\n";
  R.Ok = true;
  R.Code = OS.str();
  return R;
}

//===----------------------------------------------------------------------===//
// CUDA backend assembly
//===----------------------------------------------------------------------===//

namespace {

/// Minimal host-side emitter for cpu.thread functions: covers the memory
/// API of Section 3.4 and kernel launches of Section 3.5.
class HostEmitter {
public:
  HostEmitter(const Module &M, std::ostringstream &OS) : M(M), OS(OS) {}

  bool emit(const FnDef &Fn) {
    OS << "void " << Fn.Name << "(";
    for (size_t I = 0; I != Fn.Params.size(); ++I) {
      if (I)
        OS << ", ";
      emitParam(Fn.Params[I]);
    }
    OS << ") {\n";
    bool Ok = emitBlock(*cast<BlockExpr>(Fn.Body.get()), 1);
    OS << "}\n";
    return Ok;
  }

  std::string Error;

private:
  const Module &M;
  std::ostringstream &OS;
  std::map<std::string, std::string> VarTypes; // host vars -> C type

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  void indent(unsigned N) {
    for (unsigned I = 0; I != N; ++I)
      OS << "  ";
  }

  void emitParam(const FnParam &P) {
    std::vector<Nat> Dims;
    ScalarKind Elem = ScalarKind::F64;
    if (const auto *Ref = dyn_cast<RefType>(P.Ty.get());
        Ref && arrayNest(Ref->Pointee, Dims, Elem)) {
      OS << (Ref->Own == Ownership::Shrd ? "const " : "")
         << cppScalarType(Elem) << " *" << P.Name;
      return;
    }
    if (const auto *S = dyn_cast<ScalarType>(P.Ty.get())) {
      OS << cppScalarType(S->Scalar) << " " << P.Name;
      return;
    }
    OS << "/*unsupported*/ int " << P.Name;
  }

  bool emitBlock(const BlockExpr &Blk, unsigned Depth) {
    for (const ExprPtr &S : Blk.Stmts)
      if (!emitStmt(*S, Depth))
        return false;
    return true;
  }

  bool emitStmt(const Expr &E, unsigned Depth) {
    switch (E.kind()) {
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(&E);
      return emitLet(*L, Depth);
    }
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(&E);
      return emitCall(*C, Depth, /*LetName=*/"");
    }
    case ExprKind::Block:
      indent(Depth);
      OS << "{\n";
      if (!emitBlock(*cast<BlockExpr>(&E), Depth + 1))
        return false;
      indent(Depth);
      OS << "}\n";
      return true;
    default:
      return fail("unsupported host statement: " + exprToString(E));
    }
  }

  bool emitLet(const LetExpr &L, unsigned Depth) {
    const auto *C = dyn_cast<CallExpr>(L.Init.get());
    if (C)
      return emitCall(*C, Depth, L.Name);
    return fail("unsupported host let initializer: " +
                exprToString(*L.Init));
  }

  std::string argName(const Expr &E) {
    if (const auto *B = dyn_cast<BorrowExpr>(&E))
      return cast<PlaceExpr>(B->Place.get())->rootVar();
    if (const auto *P = dyn_cast<PlaceExpr>(&E))
      return P->rootVar();
    return "";
  }

  bool emitCall(const CallExpr &C, unsigned Depth, const std::string &Let) {
    if (C.Callee == "CpuHeap::new") {
      const auto *Init = dyn_cast<ArrayInitExpr>(C.Args[0].get());
      if (!Init)
        return fail("CpuHeap::new expects an array initializer");
      const auto *ElemTy =
          dyn_cast_if_present<ScalarType>(Init->Elem->Ty.get());
      std::string CT = ElemTy ? cppScalarType(ElemTy->Scalar) : "double";
      indent(Depth);
      OS << "std::vector<" << CT << "> " << Let << "("
         << Init->Count.simplified().str() << ", "
         << exprToString(*Init->Elem) << ");\n";
      VarTypes[Let] = CT;
      return true;
    }
    if (C.Callee == "GpuGlobal::alloc_copy") {
      std::string Src = argName(*C.Args[0]);
      std::string CT = VarTypes.count(Src) ? VarTypes[Src] : "double";
      indent(Depth);
      OS << CT << " *" << Let << ";\n";
      indent(Depth);
      OS << "cudaMalloc(&" << Let << ", " << Src << ".size() * sizeof(" << CT
         << "));\n";
      indent(Depth);
      OS << "cudaMemcpy(" << Let << ", " << Src << ".data(), " << Src
         << ".size() * sizeof(" << CT << "), cudaMemcpyHostToDevice);\n";
      VarTypes[Let] = CT;
      return true;
    }
    if (C.Callee == "copy_mem_to_host" || C.Callee == "copy_to_gpu") {
      bool ToHost = C.Callee == "copy_mem_to_host";
      std::string Dst = argName(*C.Args[0]);
      std::string Src = argName(*C.Args[1]);
      std::string CT = VarTypes.count(ToHost ? Dst : Src)
                           ? VarTypes[ToHost ? Dst : Src]
                           : "double";
      indent(Depth);
      if (ToHost)
        OS << "cudaMemcpy(" << Dst << ".data(), " << Src << ", " << Dst
           << ".size() * sizeof(" << CT << "), cudaMemcpyDeviceToHost);\n";
      else
        OS << "cudaMemcpy(" << Dst << ", " << Src << ".data(), " << Src
           << ".size() * sizeof(" << CT << "), cudaMemcpyHostToDevice);\n";
      return true;
    }
    if (C.IsLaunch) {
      auto DimOf = [&](const Dim &D) {
        auto Get = [&](Axis A) -> std::string {
          return D.hasAxis(A) ? D.extent(A).simplified().str() : "1";
        };
        return "dim3(" + Get(Axis::X) + ", " + Get(Axis::Y) + ", " +
               Get(Axis::Z) + ")";
      };
      indent(Depth);
      OS << C.Callee << "<<<" << DimOf(C.LaunchGrid) << ", "
         << DimOf(C.LaunchBlock) << ">>>(";
      for (size_t I = 0; I != C.Args.size(); ++I) {
        if (I)
          OS << ", ";
        OS << argName(*C.Args[I]);
      }
      OS << ");\n";
      indent(Depth);
      OS << "cudaDeviceSynchronize();\n";
      return true;
    }
    return fail("unsupported host call: " + C.Callee);
  }
};

} // namespace

GenResult descend::emitCuda(const Module &M) {
  GenResult R;
  std::ostringstream OS;
  OS << "// Generated by descendc --emit=cuda. Do not edit.\n";
  OS << "#include <cstdint>\n#include <cstdio>\n#include <vector>\n";
  OS << "#include <cuda_runtime.h>\n\n";

  for (const auto &FnPtr : M.Fns) {
    const FnDef &Fn = *FnPtr;
    if (!Fn.isGpuFn())
      continue;
    Lowerer L(M, Backend::Cuda);
    if (!L.runKernel(Fn)) {
      R.Error = "while lowering `" + Fn.Name + "`: " + L.Error;
      return R;
    }
    OS << "/// " << Fn.signature() << "\n";
    OS << "__global__ void " << Fn.Name << "(";
    for (size_t I = 0; I != Fn.Params.size(); ++I) {
      if (I)
        OS << ", ";
      const auto *Ref = cast<RefType>(Fn.Params[I].Ty.get());
      std::vector<Nat> Dims;
      ScalarKind Elem = ScalarKind::F64;
      arrayNest(Ref->Pointee, Dims, Elem);
      OS << (Ref->Own == Ownership::Shrd ? "const " : "")
         << cppScalarType(Elem) << " *" << Fn.Params[I].Name;
    }
    OS << ") {\n" << L.CudaBody << "}\n\n";
  }

  for (const auto &FnPtr : M.Fns) {
    const FnDef &Fn = *FnPtr;
    if (!Fn.isCpuFn())
      continue;
    HostEmitter H(M, OS);
    if (!H.emit(Fn)) {
      R.Error = "while emitting host `" + Fn.Name + "`: " + H.Error;
      return R;
    }
    OS << "\n";
  }

  R.Ok = true;
  R.Code = OS.str();
  return R;
}
