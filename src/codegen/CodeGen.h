//===- codegen/CodeGen.h - Descend code generation --------------*- C++ -*-===//
//
// Part of the Descend reproduction. Translates well-typed Descend modules
// (Section 5):
//
//  * CUDA backend: GPU grid functions become __global__ kernels; sched
//    disappears (the bound execution resource becomes blockIdx/threadIdx),
//    selections and views compile to raw indices (lowered through
//    views/IndexSpace and normalized by the nat simplifier), split becomes
//    an if/else over coordinates, sync becomes __syncthreads(). CPU
//    functions become host C++ using the CUDA runtime API.
//
//  * Sim backend: the same lowering, but kernels are emitted as
//    phase-structured C++ against sim/Sim.h, with sync compiled into a
//    phase boundary. for-nat loops containing sync are unrolled (their
//    ranges are statically evaluated). This is the backend the Figure 8
//    reproduction compiles and measures.
//
// Code generation assumes the module already passed the TypeChecker and
// that generic functions were instantiated (Driver::defineNat); remaining
// inconsistencies are internal errors.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_CODEGEN_CODEGEN_H
#define DESCEND_CODEGEN_CODEGEN_H

#include "ast/Item.h"

#include <optional>
#include <string>

namespace descend {

class DiagnosticEngine;

/// Result of a code generation run.
struct GenResult {
  bool Ok = false;
  std::string Code;
  std::string Error; // set when !Ok
};

/// Emits CUDA C++ for the whole module (kernels + host functions).
GenResult emitCuda(const Module &M);

/// Emits simulator C++ (one inline launch function per GPU grid function)
/// into a self-contained header. \p FnSuffix is appended to every emitted
/// function name so multiple instantiations can coexist in one binary.
GenResult emitSim(const Module &M, const std::string &FnSuffix = "");

} // namespace descend

#endif // DESCEND_CODEGEN_CODEGEN_H
