//===- codegen/CodeGen.h - Deprecated code-generation entry points -*- C++ -*-===//
//
// Part of the Descend reproduction. DEPRECATED: this header predates the
// pluggable backend registry and is kept so out-of-tree users of the
// original two-function API keep compiling. New code should resolve a
// backend through codegen::BackendRegistry (codegen/Backend.h) or drive
// the whole pipeline through driver::Session (driver/Pipeline.h).
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_CODEGEN_CODEGEN_H
#define DESCEND_CODEGEN_CODEGEN_H

#include "codegen/Backend.h"

#include <string>

namespace descend {

class Module;

/// Result of a code generation run (now codegen::GenResult).
using GenResult = codegen::GenResult;

/// Emits CUDA C++ for the whole module (kernels + host functions).
/// Deprecated: use BackendRegistry::instance().lookup("cuda").
GenResult emitCuda(const Module &M);

/// Emits simulator C++ (one inline launch function per GPU grid function)
/// into a self-contained header. \p FnSuffix is appended to every emitted
/// function name so multiple instantiations can coexist in one binary.
/// Deprecated: use BackendRegistry::instance().lookup("sim").
GenResult emitSim(const Module &M, const std::string &FnSuffix = "");

} // namespace descend

#endif // DESCEND_CODEGEN_CODEGEN_H
