//===- codegen/Lowerer.cpp - Shared kernel lowering --------------------------===//

#include "codegen/Lowerer.h"

#include "kir/Passes.h"
#include "support/StringUtils.h"
#include "views/IndexSpace.h"

#include <cassert>

using namespace descend;
using namespace descend::codegen;

bool descend::codegen::arrayNest(const TypeRef &T, std::vector<Nat> &Dims,
                                 ScalarKind &Elem) {
  const DataType *Cur = T.get();
  while (true) {
    if (const auto *A = dyn_cast<ArrayType>(Cur)) {
      Dims.push_back(A->Size);
      Cur = A->Elem.get();
      continue;
    }
    if (const auto *A = dyn_cast<ArrayViewType>(Cur)) {
      Dims.push_back(A->Size);
      Cur = A->Elem.get();
      continue;
    }
    if (const auto *S = dyn_cast<ScalarType>(Cur)) {
      Elem = S->Scalar;
      return true;
    }
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Scopes and small helpers
//===----------------------------------------------------------------------===//

bool Lowerer::fail(const std::string &Msg) {
  if (Error.empty())
    Error = Msg;
  return false;
}

void Lowerer::emit(kir::Stmt S) { ListStack.back()->push_back(std::move(S)); }

void Lowerer::pushScope() { Scopes.emplace_back(); }

void Lowerer::popScope() {
  for (const std::string &N : Scopes.back())
    Syms[N].pop_back();
  while (!LiveLocals.empty() && LiveLocals.back().ScopeDepth >= Scopes.size())
    LiveLocals.pop_back();
  Scopes.pop_back();
}

Sym &Lowerer::bind(const std::string &Name, Sym S) {
  Scopes.back().push_back(Name);
  auto &Stack = Syms[Name];
  Stack.push_back(std::move(S));
  return Stack.back();
}

Sym *Lowerer::lookup(const std::string &Name) {
  auto It = Syms.find(Name);
  if (It == Syms.end() || It->second.empty())
    return nullptr;
  return &It->second.back();
}

/// Raw coordinate variable for (stage, axis). Target-independent: the
/// CUDA printer maps _bx/_tx/... to blockIdx/threadIdx spelling.
std::string Lowerer::axisVarName(unsigned Stage, Axis A) const {
  std::string Base = Stage == 0 ? "_b" : "_t";
  return Base + (A == Axis::X ? "x" : A == Axis::Y ? "y" : "z");
}

/// Local coordinate of the forall at op index \p OpIdx in \p Exec: the
/// raw coordinate minus the snd-split offsets accumulated before it.
Nat Lowerer::coordinateFor(const ExecResource &Exec, unsigned OpIdx) {
  const ExecOp &Op = Exec.ops()[OpIdx];
  Nat Coord = Nat::var(axisVarName(Op.Stage, Op.Ax));
  for (unsigned I = 0; I != OpIdx; ++I) {
    const ExecOp &Prev = Exec.ops()[I];
    if (Prev.Stage == Op.Stage && Prev.Ax == Op.Ax &&
        Prev.Kind == ExecOpKind::SplitSnd)
      Coord = Coord - Prev.Pos;
  }
  return Coord;
}

Nat Lowerer::exprToNat(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Literal: {
    const auto *L = cast<LiteralExpr>(&E);
    return Nat::lit(L->IntValue);
  }
  case ExprKind::PlaceVar: {
    const auto *V = cast<PlaceVar>(&E);
    if (Sym *S = lookup(V->Name); S && S->K == Sym::NatVar)
      return S->ConstVal ? S->ConstVal : Nat::var(V->Name);
    return Nat();
  }
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(&E);
    Nat L = exprToNat(*Bin->Lhs);
    Nat R = exprToNat(*Bin->Rhs);
    if (!L || !R)
      return Nat();
    switch (Bin->Op) {
    case BinOpKind::Add:
      return L + R;
    case BinOpKind::Sub:
      return L - R;
    case BinOpKind::Mul:
      return L * R;
    case BinOpKind::Div:
      return L / R;
    case BinOpKind::Mod:
      return L % R;
    default:
      return Nat();
    }
  }
  default:
    return Nat();
  }
}

/// Substitutes unrolled loop constants into a nat from the source.
Nat Lowerer::substLoopConsts(Nat N) {
  if (!N)
    return N;
  std::vector<std::string> Vars;
  N.collectVars(Vars);
  std::map<std::string, Nat> Subst;
  for (const std::string &V : Vars)
    if (Sym *S = lookup(V); S && S->K == Sym::NatVar && S->ConstVal)
      Subst[V] = S->ConstVal;
  return Subst.empty() ? N : N.substitute(Subst);
}

//===----------------------------------------------------------------------===//
// Places
//===----------------------------------------------------------------------===//

std::optional<Lowerer::LPlace> Lowerer::lowerPlace(const PlaceExpr &P) {
  // Collect root-to-leaf chain.
  std::vector<const PlaceExpr *> Chain;
  for (const PlaceExpr *Cur = &P; Cur; Cur = basePlace(Cur))
    Chain.push_back(Cur);
  std::reverse(Chain.begin(), Chain.end());

  const auto *RootVar = dyn_cast<PlaceVar>(Chain[0]);
  assert(RootVar && "place chain must start at a variable");
  Sym *Root = lookup(RootVar->Name);
  if (!Root) {
    fail("internal: unknown symbol `" + RootVar->Name + "`");
    return std::nullopt;
  }

  LPlace Result;
  if (Root->K == Sym::NatVar) {
    Result.K = LPlace::NatValue;
    Result.NatVal = Root->ConstVal ? Root->ConstVal
                                   : Nat::var(RootVar->Name);
    return Result;
  }
  if (Root->K == Sym::Local) {
    Result.K = LPlace::Local;
    Result.Root = Root;
    return Result;
  }
  if (Root->K == Sym::ExecVar) {
    fail("internal: execution resource used as value");
    return std::nullopt;
  }

  Result.K = Root->K == Sym::GlobalBuf ? LPlace::Global : LPlace::Shared;
  Result.Root = Root;

  IndexSpace Space = IndexSpace::fromDims(Root->Dims);
  // Pending split view: a split must be followed by .fst/.snd.
  std::optional<Nat> PendingSplit;

  for (size_t I = 1; I != Chain.size(); ++I) {
    const PlaceExpr *Step = Chain[I];
    std::string Err;
    switch (Step->kind()) {
    case ExprKind::PlaceDeref:
      break; // references were resolved to buffers
    case ExprKind::PlaceView: {
      const auto *V = cast<PlaceView>(Step);
      std::vector<Nat> Args;
      for (const Nat &A : V->NatArgs)
        Args.push_back(substLoopConsts(A).simplified());
      auto Resolved = Views.resolve(V->ViewName, Args, &Err);
      if (!Resolved) {
        fail(Err);
        return std::nullopt;
      }
      for (const View &Prim : *Resolved) {
        if (Prim.Kind == ViewKind::SplitView) {
          if (PendingSplit) {
            fail("internal: split view without projection");
            return std::nullopt;
          }
          PendingSplit = Prim.Arg;
          continue;
        }
        if (PendingSplit) {
          fail("internal: split view without projection");
          return std::nullopt;
        }
        if (!Space.applyView(Prim, &Err)) {
          fail(Err);
          return std::nullopt;
        }
      }
      break;
    }
    case ExprKind::PlaceProj: {
      const auto *Proj = cast<PlaceProj>(Step);
      if (!PendingSplit) {
        fail("tuple projections outside split views are not supported in "
             "kernels");
        return std::nullopt;
      }
      if (!Space.takeSplitPart(*PendingSplit, Proj->Which == 0, &Err)) {
        fail(Err);
        return std::nullopt;
      }
      PendingSplit.reset();
      break;
    }
    case ExprKind::PlaceSelect: {
      const auto *Sel = cast<PlaceSelect>(Step);
      Sym *ExecSym = lookup(Sel->ExecName);
      if (!ExecSym || ExecSym->K != Sym::ExecVar) {
        fail("internal: unknown execution resource `" + Sel->ExecName +
             "`");
        return std::nullopt;
      }
      for (unsigned OpIdx = ExecSym->OpsBegin; OpIdx != ExecSym->OpsEnd;
           ++OpIdx) {
        Nat Coord = coordinateFor(ExecSym->Exec, OpIdx);
        if (!Space.bindOuter(Coord, &Err)) {
          fail(Err);
          return std::nullopt;
        }
      }
      break;
    }
    case ExprKind::PlaceIndex: {
      const auto *Idx = cast<PlaceIndex>(Step);
      Nat N = exprToNat(*Idx->Index);
      if (!N) {
        fail("kernel indices must be static or loop-variable expressions: "
             + exprToString(*Idx->Index));
        return std::nullopt;
      }
      if (!Space.bindOuter(substLoopConsts(N), &Err)) {
        fail(Err);
        return std::nullopt;
      }
      break;
    }
    default:
      fail("unsupported place step in kernel");
      return std::nullopt;
    }
  }

  std::string Err;
  Result.Index = Space.flatten(&Err);
  if (Result.Index.isNull()) {
    fail(Err);
    return std::nullopt;
  }
  return Result;
}

kir::MemRef Lowerer::memRefFor(const Sym &Root) const {
  kir::MemRef Ref;
  Ref.Space = Root.K == Sym::GlobalBuf ? kir::MemSpace::Global
                                       : kir::MemSpace::Shared;
  Ref.Name = Root.CppName;
  Ref.Elem = Root.Elem;
  Ref.ByteBase = Root.ByteBase;
  return Ref;
}

kir::ExprPtr Lowerer::placeLoad(const LPlace &P) {
  switch (P.K) {
  case LPlace::NatValue:
    return kir::Expr::natVal(P.NatVal);
  case LPlace::Local:
    return kir::Expr::varRef(P.Root->CppName);
  case LPlace::Global:
  case LPlace::Shared:
    return kir::Expr::load(memRefFor(*P.Root), P.Index);
  }
  return nullptr;
}

bool Lowerer::placeStore(const LPlace &P, kir::ExprPtr Value) {
  switch (P.K) {
  case LPlace::NatValue:
    return fail("cannot assign to a loop variable");
  case LPlace::Local:
    emit(kir::Stmt::assign(P.Root->CppName, std::move(Value)));
    return true;
  case LPlace::Global:
  case LPlace::Shared:
    emit(kir::Stmt::store(memRefFor(*P.Root), P.Index, std::move(Value)));
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Expressions & statements
//===----------------------------------------------------------------------===//

namespace {

kir::BinOp mapBinOp(BinOpKind K) {
  switch (K) {
  case BinOpKind::Add:
    return kir::BinOp::Add;
  case BinOpKind::Sub:
    return kir::BinOp::Sub;
  case BinOpKind::Mul:
    return kir::BinOp::Mul;
  case BinOpKind::Div:
    return kir::BinOp::Div;
  case BinOpKind::Mod:
    return kir::BinOp::Mod;
  case BinOpKind::Eq:
    return kir::BinOp::Eq;
  case BinOpKind::Ne:
    return kir::BinOp::Ne;
  case BinOpKind::Lt:
    return kir::BinOp::Lt;
  case BinOpKind::Le:
    return kir::BinOp::Le;
  case BinOpKind::Gt:
    return kir::BinOp::Gt;
  case BinOpKind::Ge:
    return kir::BinOp::Ge;
  case BinOpKind::And:
    return kir::BinOp::And;
  case BinOpKind::Or:
    return kir::BinOp::Or;
  }
  return kir::BinOp::Add;
}

} // namespace

kir::ExprPtr Lowerer::genExpr(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Literal: {
    const auto *L = cast<LiteralExpr>(&E);
    switch (L->Scalar) {
    case ScalarKind::Bool:
      return kir::Expr::boolLit(L->BoolValue);
    case ScalarKind::F32:
    case ScalarKind::F64:
      return kir::Expr::floatLit(L->FloatValue, L->Scalar);
    case ScalarKind::Unit:
      return kir::Expr::unitLit();
    default:
      return kir::Expr::intLit(L->IntValue, L->Scalar);
    }
  }
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(&E);
    kir::ExprPtr L = genExpr(*Bin->Lhs);
    kir::ExprPtr R = genExpr(*Bin->Rhs);
    if (!L || !R)
      return nullptr;
    return kir::Expr::binary(mapBinOp(Bin->Op), std::move(L), std::move(R));
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    kir::ExprPtr S = genExpr(*U->Sub);
    if (!S)
      return nullptr;
    return kir::Expr::unary(U->Op == UnOpKind::Neg ? kir::UnOp::Neg
                                                   : kir::UnOp::Not,
                            std::move(S));
  }
  default:
    if (const auto *P = dyn_cast<PlaceExpr>(&E)) {
      auto LP = lowerPlace(*P);
      if (!LP)
        return nullptr;
      return placeLoad(*LP);
    }
    fail("unsupported expression in kernel: " + exprToString(E));
    return nullptr;
  }
}

bool Lowerer::containsKind(const Expr &E, ExprKind K) {
  if (E.kind() == K)
    return true;
  bool Found = false;
  forEachChild(const_cast<Expr &>(E),
               [&](Expr &C) { Found = Found || containsKind(C, K); });
  return Found;
}

/// True when \p N contains a Pow node mentioning \p Var that cannot be
/// printed as a shift (base is not the literal 2). Such nats only fold to
/// printable C++ once the variable is a known constant; `2^i` strides
/// print as `(1ll << i)` and stay symbolic.
static bool nonShiftablePowMentionsVar(const Nat &N, const std::string &Var) {
  if (N.isNull())
    return false;
  switch (N.kind()) {
  case NatKind::Lit:
  case NatKind::Var:
    return false;
  case NatKind::Pow: {
    if (N.lhs().isLit() && N.lhs().litValue() == 2)
      return nonShiftablePowMentionsVar(N.rhs(), Var);
    std::vector<std::string> Vars;
    N.collectVars(Vars);
    for (const std::string &V : Vars)
      if (V == Var)
        return true;
    return false;
  }
  default:
    return nonShiftablePowMentionsVar(N.lhs(), Var) ||
           nonShiftablePowMentionsVar(N.rhs(), Var);
  }
}

/// True when any nat inside \p E (view arguments, split positions, loop
/// bounds) raises a non-2 base to a power of \p Var. A nested for-nat
/// that rebinds the same name shadows it.
static bool usesNonShiftablePowOfVar(const Expr &E, const std::string &Var) {
  if (const auto *V = dyn_cast<PlaceView>(&E)) {
    for (const Nat &A : V->NatArgs)
      if (nonShiftablePowMentionsVar(A, Var))
        return true;
  } else if (const auto *S = dyn_cast<SplitExpr>(&E)) {
    if (nonShiftablePowMentionsVar(S->Position, Var))
      return true;
  } else if (const auto *F = dyn_cast<ForNatExpr>(&E)) {
    if (nonShiftablePowMentionsVar(F->Lo, Var) ||
        nonShiftablePowMentionsVar(F->Hi, Var))
      return true;
    if (F->Var == Var)
      return false; // shadowed in the body
  }
  bool Found = false;
  forEachChild(const_cast<Expr &>(E),
               [&](Expr &C) { Found = Found || usesNonShiftablePowOfVar(C, Var); });
  return Found;
}

//===----------------------------------------------------------------------===//
// Phase construction (sim)
//===----------------------------------------------------------------------===//

/// True when the pending phase has statements beyond the spill/reload
/// preamble.
bool Lowerer::phaseHasContent() const {
  for (const kir::Stmt &S : PhaseBuf)
    if (!S.SpillReload)
      return true;
  return false;
}

/// Closes the pending phase: elides dead spill/reload pairs and appends
/// the body as a StraightPhase to the innermost open node list — unless
/// the body came out empty (a trailing or doubled sync orders nothing, so
/// the no-op phase is dropped; \p KeepEmpty forces a node for otherwise
/// empty kernels).
void Lowerer::closePhase(bool KeepEmpty) {
  kir::elideDeadSpillPairs(PhaseBuf);
  if (!PhaseBuf.empty() || KeepEmpty)
    NodeStack.back()->push_back(PhaseNode::straight(std::move(PhaseBuf)));
  PhaseBuf.clear();
}

void Lowerer::phaseBreak() {
  if (B == LowerTarget::Cuda) {
    emit(kir::Stmt::barrier());
    return;
  }
  if (ListStack.size() != 1) {
    fail("internal: sync inside a divergent or structured context");
    return;
  }
  // Registers do not survive the phase boundary: spill phase-spanning
  // locals to their per-thread arena slot and reload at the start of the
  // next phase (one load/store per local per phase, as a handwritten
  // kernel would do). Phases that never touch a local get the pair
  // elided again in closePhase.
  auto ArenaRef = [&](const LiveLocal &L) {
    kir::MemRef Ref;
    Ref.Space = kir::MemSpace::Arena;
    Ref.Name = L.CppName;
    Ref.Elem = L.Elem;
    Ref.ByteBase = L.Off;
    return Ref;
  };
  for (const LiveLocal &L : LiveLocals)
    emit(kir::Stmt::store(ArenaRef(L), Nat::var("_lin"),
                          kir::Expr::varRef(L.CppName),
                          /*SpillReload=*/true));
  closePhase();
  for (const LiveLocal &L : LiveLocals)
    emit(kir::Stmt::let(L.CppName, L.Elem,
                        kir::Expr::load(ArenaRef(L), Nat::var("_lin")),
                        /*SpillReload=*/true));
}

/// Phase boundary at a PhaseLoop edge: a barrier is only needed when the
/// pending phase has real content beyond the reload preamble; a bare
/// preamble flows into whatever phase starts next.
void Lowerer::softPhaseBreak() {
  if (phaseHasContent())
    phaseBreak();
}

bool Lowerer::genStmt(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Block: {
    const auto *Blk = cast<BlockExpr>(&E);
    pushScope();
    for (const ExprPtr &S : Blk->Stmts)
      if (!genStmt(*S))
        return false;
    popScope();
    return true;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(&E);
    if (const auto *A = dyn_cast<AllocExpr>(L->Init.get())) {
      std::vector<Nat> Dims;
      ScalarKind Elem = ScalarKind::F64;
      if (!arrayNest(A->AllocTy, Dims, Elem))
        return fail("alloc type must be an array of scalars");
      size_t Elems = 1;
      for (const Nat &D : Dims) {
        auto V = D.evaluate({});
        if (!V)
          return fail("shared allocation sizes must be concrete");
        Elems *= *V;
      }
      size_t ElemSize = Elem == ScalarKind::F32 ? 4
                        : Elem == ScalarKind::Bool ? 1
                                                   : 8;
      size_t Bytes = Elems * ElemSize;
      Sym S;
      S.K = Sym::SharedBuf;
      S.CppName = L->Name;
      S.Elem = Elem;
      S.Dims = Dims;
      S.ByteBase = (SharedBytes + 7) & ~size_t(7);
      SharedBytes = S.ByteBase + Bytes;
      // Innermost row width: elements per slice of the outermost
      // dimension. The padding pass needs it to recognize `row*W + col`.
      size_t RowWidth = 0;
      if (Dims.size() > 1) {
        auto Outer = Dims.front().evaluate({});
        if (Outer && *Outer > 0)
          RowWidth = Elems / *Outer;
      }
      SharedDecls.push_back(
          SharedDecl{L->Name, Elem, Elems, RowWidth, S.ByteBase});
      BufferSpaces[L->Name] = kir::MemSpace::Shared;
      bind(L->Name, std::move(S));
      return true;
    }
    // Scalar thread-local binding.
    const auto *Scalar = dyn_cast_if_present<ScalarType>(
        L->Init->Ty ? L->Init->Ty.get()
                    : (L->Annotation ? L->Annotation.get() : nullptr));
    if (!Scalar)
      return fail("only scalar lets and shared allocations are supported "
                  "inside kernels: let " +
                  L->Name);
    kir::ExprPtr Init = genExpr(*L->Init);
    if (!Init)
      return false;
    Sym S;
    S.K = Sym::Local;
    S.CppName = strfmt("%s_%u", L->Name.c_str(), NextLocalUid++);
    S.Elem = Scalar->Scalar;
    // Per-thread arena region for phase-spanning state (sim): each var
    // gets 8 * ThreadsPerBlock bytes after the shared allocations.
    S.LocalOff = ((LocalBytesPerThread + 7) & ~size_t(7));
    LocalBytesPerThread = S.LocalOff + 8;
    S.LocalOff = S.LocalOff * ThreadsPerBlock;
    const Sym &Bound = bind(L->Name, std::move(S));
    emit(kir::Stmt::let(Bound.CppName, Bound.Elem, std::move(Init)));
    if (B == LowerTarget::Sim)
      LiveLocals.push_back(LiveLocal{Bound.CppName, Bound.Elem,
                                     Bound.LocalOff,
                                     (unsigned)Scopes.size()});
    return true;
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(&E);
    kir::ExprPtr Value = genExpr(*A->Rhs);
    if (!Value)
      return false;
    auto LP = lowerPlace(*A->Lhs);
    if (!LP)
      return false;
    return placeStore(*LP, std::move(Value));
  }
  case ExprKind::Sched: {
    const auto *S = cast<SchedExpr>(&E);
    Sym *Target = lookup(S->Target);
    if (!Target || Target->K != Sym::ExecVar)
      return fail("internal: unknown sched target");
    ExecResource Child = Target->Exec;
    for (Axis A : S->Axes) {
      auto Next = Child.forall(A);
      if (!Next)
        return fail("internal: invalid sched");
      Child = *Next;
    }
    pushScope();
    Sym Binder;
    Binder.K = Sym::ExecVar;
    Binder.CppName = S->Binder;
    Binder.Exec = Child;
    Binder.OpsBegin = Target->Exec.numOps();
    Binder.OpsEnd = Child.numOps();
    bind(S->Binder, std::move(Binder));
    ExecResource Saved = CurExec;
    CurExec = Child;
    bool Ok = genStmt(*S->Body);
    CurExec = Saved;
    popScope();
    return Ok;
  }
  case ExprKind::Split: {
    const auto *S = cast<SplitExpr>(&E);
    Sym *Target = lookup(S->Target);
    if (!Target || Target->K != Sym::ExecVar)
      return fail("internal: unknown split target");
    Nat Pos = substLoopConsts(S->Position).simplified();
    auto Fst = Target->Exec.split(S->SplitAxis, Pos, true);
    auto Snd = Target->Exec.split(S->SplitAxis, Pos, false);
    if (!Fst || !Snd)
      return fail("internal: invalid split");
    // Guard: local coordinate along the split axis at the split's stage.
    unsigned Stage = Fst->ops().back().Stage;
    Nat Coord = Nat::var(axisVarName(Stage, S->SplitAxis));
    for (const ExecOp &Op : Target->Exec.ops())
      if (Op.Stage == Stage && Op.Ax == S->SplitAxis &&
          Op.Kind == ExecOpKind::SplitSnd)
        Coord = Coord - Op.Pos;
    emit(kir::Stmt::ifLt(Coord.simplified(), Pos));
    kir::Stmt &IfStmt = ListStack.back()->back();
    {
      ListStack.push_back(&IfStmt.Then);
      pushScope();
      Sym Binder;
      Binder.K = Sym::ExecVar;
      Binder.CppName = S->FstName;
      Binder.Exec = *Fst;
      Binder.OpsBegin = Target->Exec.numOps();
      Binder.OpsEnd = Fst->numOps();
      bind(S->FstName, std::move(Binder));
      ExecResource Saved = CurExec;
      CurExec = *Fst;
      bool Ok = genStmt(*S->FstBody);
      CurExec = Saved;
      popScope();
      ListStack.pop_back();
      if (!Ok)
        return false;
    }
    {
      ListStack.push_back(&IfStmt.Else);
      pushScope();
      Sym Binder;
      Binder.K = Sym::ExecVar;
      Binder.CppName = S->SndName;
      Binder.Exec = *Snd;
      Binder.OpsBegin = Target->Exec.numOps();
      Binder.OpsEnd = Snd->numOps();
      bind(S->SndName, std::move(Binder));
      ExecResource Saved = CurExec;
      CurExec = *Snd;
      bool Ok = genStmt(*S->SndBody);
      CurExec = Saved;
      popScope();
      ListStack.pop_back();
      if (!Ok)
        return false;
    }
    return true;
  }
  case ExprKind::Sync:
    phaseBreak();
    return Error.empty();
  case ExprKind::ForNat: {
    const auto *F = cast<ForNatExpr>(&E);
    Nat Lo = substLoopConsts(F->Lo).simplified();
    Nat Hi = substLoopConsts(F->Hi).simplified();
    // Only loops whose nat arithmetic must fold iteration by iteration
    // are unrolled (their ranges are statically evaluated, Fig. 5): a
    // body that splits the hierarchy (split positions like n/2^(s+1)
    // change shape per iteration) or raises a non-2 base to a power of
    // the loop variable. A loop that merely synchronizes — or strides
    // views by 2^i, which prints as a shift — keeps its structure: a
    // PhaseLoop in the simulator's phase program, a plain `for` with
    // __syncthreads() inside for CUDA, so its bounds stay symbolic.
    bool HasSplit = containsKind(*F->Body, ExprKind::Split);
    bool NeedUnroll = HasSplit || usesNonShiftablePowOfVar(*F->Body, F->Var);
    if (NeedUnroll) {
      if (!Lo.isLit() || !Hi.isLit())
        return fail(std::string(HasSplit
                        ? "loops containing split need static bounds "
                          "(split positions change per iteration)"
                        : "loops raising a non-2 base to a power of " +
                              F->Var + " need static bounds") +
                    ", got [" + Lo.str() + ".." + Hi.str() + "]");
      for (long long V = Lo.litValue(); V < Hi.litValue(); ++V) {
        pushScope();
        Sym S;
        S.K = Sym::NatVar;
        S.CppName = F->Var;
        S.ConstVal = Nat::lit(V);
        bind(F->Var, std::move(S));
        bool Ok = genStmt(*F->Body);
        popScope();
        if (!Ok)
          return false;
      }
      return true;
    }
    if (!checkLoopBounds(Lo, Hi))
      return false;
    if (B == LowerTarget::Sim && containsKind(*F->Body, ExprKind::Sync))
      return genPhaseLoop(*F, std::move(Lo), std::move(Hi));
    emit(kir::Stmt::forLoop(F->Var, std::move(Lo), std::move(Hi)));
    kir::Stmt &ForStmt = ListStack.back()->back();
    ListStack.push_back(&ForStmt.Body);
    pushScope();
    Sym S;
    S.K = Sym::NatVar;
    S.CppName = F->Var;
    bind(F->Var, std::move(S));
    bool Ok = genStmt(*F->Body);
    popScope();
    ListStack.pop_back();
    return Ok;
  }
  default:
    return fail("unsupported statement in kernel: " + exprToString(E));
  }
}

/// A symbolic loop bound may only reference enclosing loop variables
/// (which the emitted code declares); a free size variable or a pow that
/// cannot print as a shift means the kernel was not fully instantiated.
bool Lowerer::checkLoopBounds(const Nat &Lo, const Nat &Hi) {
  if (kir::containsNonShiftablePow(Lo) || kir::containsNonShiftablePow(Hi))
    return fail("loop bounds contain an unprintable pow expression: [" +
                Lo.str() + ".." + Hi.str() + "]; instantiate generic sizes "
                "first (--define)");
  std::vector<std::string> Vars;
  Lo.collectVars(Vars);
  Hi.collectVars(Vars);
  for (const std::string &V : Vars) {
    Sym *S = lookup(V);
    if (!S || S->K != Sym::NatVar)
      return fail("loop bounds reference the uninstantiated size variable "
                  "`" + V + "`: [" + Lo.str() + ".." + Hi.str() +
                  "]; instantiate generic sizes first (--define)");
  }
  return true;
}

/// Lowers a sync-containing for-nat into a PhaseLoop node (sim target):
/// the pending phase is closed, the body's phases are collected as the
/// loop's children with the loop variable left symbolic, and the runtime
/// binds it per iteration through BlockCtx::loopVar(Slot).
bool Lowerer::genPhaseLoop(const ForNatExpr &F, Nat Lo, Nat Hi) {
  if (ListStack.size() != 1)
    return fail("internal: sync-containing loop inside a divergent or "
                "structured context");
  softPhaseBreak();
  PhaseNode LoopNode = PhaseNode::loop(F.Var, LoopDepth, std::move(Lo),
                                       std::move(Hi));
  NodeStack.push_back(&LoopNode.Children);
  ++LoopDepth;
  pushScope();
  Sym S;
  S.K = Sym::NatVar;
  S.CppName = F.Var; // no ConstVal: the variable stays symbolic
  bind(F.Var, std::move(S));
  bool Ok = genStmt(*F.Body);
  popScope();
  --LoopDepth;
  if (Ok)
    softPhaseBreak(); // close a trailing partial phase inside the loop
  NodeStack.pop_back();
  NodeStack.back()->push_back(std::move(LoopNode));
  return Ok;
}

//===----------------------------------------------------------------------===//
// Pass pipeline & verification
//===----------------------------------------------------------------------===//

std::vector<kir::BodyRef> Lowerer::scheduleBodies() {
  std::vector<kir::BodyRef> Bodies;
  if (B == LowerTarget::Cuda) {
    Bodies.push_back(kir::BodyRef{&Body, {}});
    return Bodies;
  }
  // Straight phases, each seeing the (literal) bounds of its enclosing
  // phase loops. Non-literal bounds map to -1, "unbounded".
  std::function<void(std::vector<PhaseNode> &, const kir::VarBounds &)> Walk =
      [&](std::vector<PhaseNode> &Nodes, const kir::VarBounds &Enclosing) {
        for (PhaseNode &N : Nodes) {
          if (N.K == PhaseNode::Straight) {
            Bodies.push_back(kir::BodyRef{&N.Body, Enclosing});
            continue;
          }
          kir::VarBounds Inner = Enclosing;
          Nat Hi = N.Hi.isNull() ? N.Hi : N.Hi.simplified();
          Inner[N.Var] = (!Hi.isNull() && Hi.isLit()) ? Hi.litValue() : -1;
          Walk(N.Children, Inner);
        }
      };
  Walk(Program.Nodes, {});
  return Bodies;
}

bool Lowerer::runSchedulePasses() {
  if (!Passes.any())
    return true;
  std::vector<kir::BodyRef> Bodies = scheduleBodies();

  if (Passes.SharedPad != 0) {
    std::vector<kir::ScheduleSharedBuffer> Bufs;
    for (const SharedDecl &D : SharedDecls)
      Bufs.push_back(kir::ScheduleSharedBuffer{D.Name, D.Elem, D.Elems,
                                               D.ByteBase, D.RowWidth});
    if (kir::padSharedBuffers(Bodies, Bufs, SharedBytes, Passes.SharedPad,
                              CoordBounds, &SchedStats)) {
      for (size_t I = 0; I != Bufs.size(); ++I) {
        SharedDecls[I].Elems = Bufs[I].Elems;
        SharedDecls[I].ByteBase = Bufs[I].ByteBase;
      }
    }
    if (!verifyKernel())
      return fail("after shared-padding pass: " + Error);
  }

  if (Passes.Vectorize) {
    kir::vectorizeAccesses(Bodies, CoordBounds, &SchedStats);
    if (!verifyKernel())
      return fail("after vectorize pass: " + Error);
  }
  return true;
}

bool Lowerer::runPasses() {
  // Opt-in schedule passes first: they match raw `row*W + col` indices
  // and adjacent accesses, which index CSE would hoist out of sight.
  if (!runSchedulePasses())
    return false;
  if (B == LowerTarget::Cuda) {
    kir::elideRedundantBarriers(Body, /*IsKernelTopLevel=*/true);
    kir::cseIndexes(Body);
    return true;
  }
  // Dead spill pairs and empty phases were already handled per phase at
  // closePhase(); CSE runs per straight phase (each is its own scope).
  std::function<void(std::vector<PhaseNode> &)> Walk =
      [&](std::vector<PhaseNode> &Nodes) {
        for (PhaseNode &N : Nodes) {
          if (N.K == PhaseNode::Straight)
            kir::cseIndexes(N.Body);
          else
            Walk(N.Children);
        }
      };
  Walk(Program.Nodes);
  return true;
}

bool Lowerer::verifyKernel() {
  kir::VerifyOptions Opts;
  Opts.DefinedVars = {"_bx", "_by", "_bz", "_tx", "_ty", "_tz", "_lin"};
  Opts.Buffers = BufferSpaces;
  Opts.CheckBuffers = true;

  std::string Err;
  if (B == LowerTarget::Cuda) {
    Opts.AllowBarriers = true;
    if (!kir::verify(Body, Opts, Err))
      return fail("internal: kir verify: " + Err);
    return true;
  }
  // Phase bodies carry no barriers (the boundary is the barrier); phases
  // under a PhaseLoop additionally see the loop variables.
  Opts.AllowBarriers = false;
  std::function<bool(const std::vector<PhaseNode> &,
                     std::vector<std::string> &)>
      Walk = [&](const std::vector<PhaseNode> &Nodes,
                 std::vector<std::string> &Enclosing) -> bool {
    for (const PhaseNode &N : Nodes) {
      if (N.K == PhaseNode::Straight) {
        kir::VerifyOptions PhaseOpts = Opts;
        PhaseOpts.DefinedVars.insert(PhaseOpts.DefinedVars.end(),
                                     Enclosing.begin(), Enclosing.end());
        if (!kir::verify(N.Body, PhaseOpts, Err))
          return fail("internal: kir verify: " + Err);
        continue;
      }
      Enclosing.push_back(N.Var);
      bool Ok = Walk(N.Children, Enclosing);
      Enclosing.pop_back();
      if (!Ok)
        return false;
    }
    return true;
  };
  std::vector<std::string> Enclosing;
  return Walk(Program.Nodes, Enclosing);
}

bool Lowerer::runKernel(const FnDef &Fn) {
  Program.clear();
  Body.clear();
  SharedDecls.clear();
  SharedBytes = 0;
  LocalBytesPerThread = 0;
  Syms.clear();
  Scopes.clear();
  LiveLocals.clear();
  NextLocalUid = 0;
  ListStack.clear();
  PhaseBuf.clear();
  NodeStack.clear();
  NodeStack.push_back(&Program.Nodes);
  ListStack.push_back(B == LowerTarget::Sim ? &PhaseBuf : &Body);
  LoopDepth = 0;
  BufferSpaces.clear();

  auto Threads = Fn.Exec.BlockDim.total().evaluate({});
  if (!Threads)
    return fail("kernel block dimensions must be concrete; instantiate "
                "generic sizes first (--define)");
  ThreadsPerBlock = *Threads;

  // Coordinate bounds for the schedule passes: each raw coordinate ranges
  // over [0, extent) of its axis.
  CoordBounds.clear();
  SchedStats = kir::ScheduleStats{};
  auto NoteAxis = [&](const char *Var, const Nat &Extent) {
    if (Extent.isNull())
      return;
    if (auto V = Extent.evaluate({}))
      CoordBounds[Var] = *V;
  };
  NoteAxis("_bx", Fn.Exec.GridDim.X);
  NoteAxis("_by", Fn.Exec.GridDim.Y);
  NoteAxis("_bz", Fn.Exec.GridDim.Z);
  NoteAxis("_tx", Fn.Exec.BlockDim.X);
  NoteAxis("_ty", Fn.Exec.BlockDim.Y);
  NoteAxis("_tz", Fn.Exec.BlockDim.Z);
  CoordBounds["_lin"] = (long long)ThreadsPerBlock;

  pushScope();
  ExecResource Grid =
      ExecResource::gpuGrid(Fn.ExecName, Fn.Exec.GridDim, Fn.Exec.BlockDim);
  Sym ExecSym;
  ExecSym.K = Sym::ExecVar;
  ExecSym.CppName = Fn.ExecName;
  ExecSym.Exec = Grid;
  bind(Fn.ExecName, std::move(ExecSym));
  CurExec = Grid;

  for (const FnParam &P : Fn.Params) {
    const auto *Ref = dyn_cast<RefType>(P.Ty.get());
    if (!Ref)
      return fail("kernel parameters must be references to global "
                  "memory: " +
                  P.Name);
    std::vector<Nat> Dims;
    ScalarKind Elem = ScalarKind::F64;
    if (!arrayNest(Ref->Pointee, Dims, Elem))
      return fail("kernel parameter must reference an array of scalars: " +
                  P.Name);
    Sym S;
    S.K = Sym::GlobalBuf;
    S.CppName = P.Name;
    S.Elem = Elem;
    S.Dims = std::move(Dims);
    S.Uniq = Ref->Own == Ownership::Uniq;
    BufferSpaces[P.Name] = kir::MemSpace::Global;
    bind(P.Name, std::move(S));
  }

  bool Ok = Fn.Body ? genStmt(*Fn.Body) : true;
  popScope();
  if (!Ok)
    return false;

  if (B == LowerTarget::Sim) {
    // Close the trailing phase; a bare reload preamble left over from a
    // loop edge is dead at kernel end. Keep at least one phase so an
    // empty kernel still launches with a well-formed (no-op) program.
    if (phaseHasContent())
      closePhase();
    PhaseBuf.clear();
    if (Program.Nodes.empty())
      closePhase(/*KeepEmpty=*/true);
  }

  return runPasses() && verifyKernel();
}
