//===- codegen/Lowerer.cpp - Shared kernel lowering --------------------------===//

#include "codegen/Lowerer.h"

#include "support/StringUtils.h"
#include "views/IndexSpace.h"

#include <cassert>

using namespace descend;
using namespace descend::codegen;

const char *descend::codegen::cppScalarType(ScalarKind K) {
  switch (K) {
  case ScalarKind::I32:
    return "int32_t";
  case ScalarKind::I64:
    return "int64_t";
  case ScalarKind::U32:
    return "uint32_t";
  case ScalarKind::U64:
    return "uint64_t";
  case ScalarKind::F32:
    return "float";
  case ScalarKind::F64:
    return "double";
  case ScalarKind::Bool:
    return "bool";
  case ScalarKind::Unit:
    return "void";
  }
  return "void";
}

bool descend::codegen::containsPow(const Nat &N) {
  if (N.isNull())
    return false;
  if (N.kind() == NatKind::Pow)
    return true;
  switch (N.kind()) {
  case NatKind::Lit:
  case NatKind::Var:
    return false;
  default:
    return containsPow(N.lhs()) || containsPow(N.rhs());
  }
}

std::string descend::codegen::floatLiteral(double V, ScalarKind K) {
  std::string S = strfmt("%.17g", V);
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  if (K == ScalarKind::F32)
    S += "f";
  return S;
}

bool descend::codegen::arrayNest(const TypeRef &T, std::vector<Nat> &Dims,
                                 ScalarKind &Elem) {
  const DataType *Cur = T.get();
  while (true) {
    if (const auto *A = dyn_cast<ArrayType>(Cur)) {
      Dims.push_back(A->Size);
      Cur = A->Elem.get();
      continue;
    }
    if (const auto *A = dyn_cast<ArrayViewType>(Cur)) {
      Dims.push_back(A->Size);
      Cur = A->Elem.get();
      continue;
    }
    if (const auto *S = dyn_cast<ScalarType>(Cur)) {
      Elem = S->Scalar;
      return true;
    }
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Scopes and small helpers
//===----------------------------------------------------------------------===//

bool Lowerer::fail(const std::string &Msg) {
  if (Error.empty())
    Error = Msg;
  return false;
}

void Lowerer::line(const std::string &S) {
  for (unsigned I = 0; I != Indent; ++I)
    Out << "  ";
  Out << S << "\n";
}

void Lowerer::pushScope() { Scopes.emplace_back(); }

void Lowerer::popScope() {
  for (const std::string &N : Scopes.back())
    Syms[N].pop_back();
  while (!LiveLocals.empty() && LiveLocals.back().ScopeDepth >= Scopes.size())
    LiveLocals.pop_back();
  Scopes.pop_back();
}

Sym &Lowerer::bind(const std::string &Name, Sym S) {
  Scopes.back().push_back(Name);
  auto &Stack = Syms[Name];
  Stack.push_back(std::move(S));
  return Stack.back();
}

Sym *Lowerer::lookup(const std::string &Name) {
  auto It = Syms.find(Name);
  if (It == Syms.end() || It->second.empty())
    return nullptr;
  return &It->second.back();
}

/// Raw coordinate variable for (stage, axis).
std::string Lowerer::axisVarName(unsigned Stage, Axis A) const {
  if (B == LowerTarget::Cuda) {
    std::string Base = Stage == 0 ? "blockIdx." : "threadIdx.";
    return Base + (A == Axis::X ? "x" : A == Axis::Y ? "y" : "z");
  }
  std::string Base = Stage == 0 ? "_b" : "_t";
  return Base + (A == Axis::X ? "x" : A == Axis::Y ? "y" : "z");
}

/// Local coordinate of the forall at op index \p OpIdx in \p Exec: the
/// raw coordinate minus the snd-split offsets accumulated before it.
Nat Lowerer::coordinateFor(const ExecResource &Exec, unsigned OpIdx) {
  const ExecOp &Op = Exec.ops()[OpIdx];
  Nat Coord = Nat::var(axisVarName(Op.Stage, Op.Ax));
  for (unsigned I = 0; I != OpIdx; ++I) {
    const ExecOp &Prev = Exec.ops()[I];
    if (Prev.Stage == Op.Stage && Prev.Ax == Op.Ax &&
        Prev.Kind == ExecOpKind::SplitSnd)
      Coord = Coord - Prev.Pos;
  }
  return Coord;
}

Nat Lowerer::exprToNat(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Literal: {
    const auto *L = cast<LiteralExpr>(&E);
    return Nat::lit(L->IntValue);
  }
  case ExprKind::PlaceVar: {
    const auto *V = cast<PlaceVar>(&E);
    if (Sym *S = lookup(V->Name); S && S->K == Sym::NatVar)
      return S->ConstVal ? S->ConstVal : Nat::var(V->Name);
    return Nat();
  }
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(&E);
    Nat L = exprToNat(*Bin->Lhs);
    Nat R = exprToNat(*Bin->Rhs);
    if (!L || !R)
      return Nat();
    switch (Bin->Op) {
    case BinOpKind::Add:
      return L + R;
    case BinOpKind::Sub:
      return L - R;
    case BinOpKind::Mul:
      return L * R;
    case BinOpKind::Div:
      return L / R;
    case BinOpKind::Mod:
      return L % R;
    default:
      return Nat();
    }
  }
  default:
    return Nat();
  }
}

/// Substitutes unrolled loop constants into a nat from the source.
Nat Lowerer::substLoopConsts(Nat N) {
  if (!N)
    return N;
  std::vector<std::string> Vars;
  N.collectVars(Vars);
  std::map<std::string, Nat> Subst;
  for (const std::string &V : Vars)
    if (Sym *S = lookup(V); S && S->K == Sym::NatVar && S->ConstVal)
      Subst[V] = S->ConstVal;
  return Subst.empty() ? N : N.substitute(Subst);
}

std::string Lowerer::natToCpp(const Nat &N) {
  Nat S = N.simplified();
  if (containsPow(S)) {
    fail("internal: unfolded 2^i expression reached code generation: " +
         S.str());
    return "0";
  }
  return S.str();
}

//===----------------------------------------------------------------------===//
// Places
//===----------------------------------------------------------------------===//

std::optional<Lowerer::LPlace> Lowerer::lowerPlace(const PlaceExpr &P) {
  // Collect root-to-leaf chain.
  std::vector<const PlaceExpr *> Chain;
  for (const PlaceExpr *Cur = &P; Cur; Cur = basePlace(Cur))
    Chain.push_back(Cur);
  std::reverse(Chain.begin(), Chain.end());

  const auto *RootVar = dyn_cast<PlaceVar>(Chain[0]);
  assert(RootVar && "place chain must start at a variable");
  Sym *Root = lookup(RootVar->Name);
  if (!Root) {
    fail("internal: unknown symbol `" + RootVar->Name + "`");
    return std::nullopt;
  }

  LPlace Result;
  if (Root->K == Sym::NatVar) {
    Result.K = LPlace::NatValue;
    Result.NatVal = Root->ConstVal ? Root->ConstVal
                                   : Nat::var(RootVar->Name);
    return Result;
  }
  if (Root->K == Sym::Local) {
    Result.K = LPlace::Local;
    Result.Root = Root;
    return Result;
  }
  if (Root->K == Sym::ExecVar) {
    fail("internal: execution resource used as value");
    return std::nullopt;
  }

  Result.K = Root->K == Sym::GlobalBuf ? LPlace::Global : LPlace::Shared;
  Result.Root = Root;

  IndexSpace Space = IndexSpace::fromDims(Root->Dims);
  // Pending split view: a split must be followed by .fst/.snd.
  std::optional<Nat> PendingSplit;

  for (size_t I = 1; I != Chain.size(); ++I) {
    const PlaceExpr *Step = Chain[I];
    std::string Err;
    switch (Step->kind()) {
    case ExprKind::PlaceDeref:
      break; // references were resolved to buffers
    case ExprKind::PlaceView: {
      const auto *V = cast<PlaceView>(Step);
      std::vector<Nat> Args;
      for (const Nat &A : V->NatArgs)
        Args.push_back(substLoopConsts(A).simplified());
      auto Resolved = Views.resolve(V->ViewName, Args, &Err);
      if (!Resolved) {
        fail(Err);
        return std::nullopt;
      }
      for (const View &Prim : *Resolved) {
        if (Prim.Kind == ViewKind::SplitView) {
          if (PendingSplit) {
            fail("internal: split view without projection");
            return std::nullopt;
          }
          PendingSplit = Prim.Arg;
          continue;
        }
        if (PendingSplit) {
          fail("internal: split view without projection");
          return std::nullopt;
        }
        if (!Space.applyView(Prim, &Err)) {
          fail(Err);
          return std::nullopt;
        }
      }
      break;
    }
    case ExprKind::PlaceProj: {
      const auto *Proj = cast<PlaceProj>(Step);
      if (!PendingSplit) {
        fail("tuple projections outside split views are not supported in "
             "kernels");
        return std::nullopt;
      }
      if (!Space.takeSplitPart(*PendingSplit, Proj->Which == 0, &Err)) {
        fail(Err);
        return std::nullopt;
      }
      PendingSplit.reset();
      break;
    }
    case ExprKind::PlaceSelect: {
      const auto *Sel = cast<PlaceSelect>(Step);
      Sym *ExecSym = lookup(Sel->ExecName);
      if (!ExecSym || ExecSym->K != Sym::ExecVar) {
        fail("internal: unknown execution resource `" + Sel->ExecName +
             "`");
        return std::nullopt;
      }
      for (unsigned OpIdx = ExecSym->OpsBegin; OpIdx != ExecSym->OpsEnd;
           ++OpIdx) {
        Nat Coord = coordinateFor(ExecSym->Exec, OpIdx);
        if (!Space.bindOuter(Coord, &Err)) {
          fail(Err);
          return std::nullopt;
        }
      }
      break;
    }
    case ExprKind::PlaceIndex: {
      const auto *Idx = cast<PlaceIndex>(Step);
      Nat N = exprToNat(*Idx->Index);
      if (!N) {
        fail("kernel indices must be static or loop-variable expressions: "
             + exprToString(*Idx->Index));
        return std::nullopt;
      }
      if (!Space.bindOuter(substLoopConsts(N), &Err)) {
        fail(Err);
        return std::nullopt;
      }
      break;
    }
    default:
      fail("unsupported place step in kernel");
      return std::nullopt;
    }
  }

  std::string Err;
  Result.Index = Space.flatten(&Err);
  if (Result.Index.isNull()) {
    fail(Err);
    return std::nullopt;
  }
  return Result;
}

std::string Lowerer::placeLoad(const LPlace &P) {
  switch (P.K) {
  case LPlace::NatValue:
    return natToCpp(P.NatVal);
  case LPlace::Local:
    return P.Root->CppName;
  case LPlace::Global:
    if (B == LowerTarget::Cuda)
      return P.Root->CppName + "[" + natToCpp(P.Index) + "]";
    return P.Root->CppName + ".load(_b, " + natToCpp(P.Index) + ")";
  case LPlace::Shared:
    if (B == LowerTarget::Cuda)
      return P.Root->CppName + "[" + natToCpp(P.Index) + "]";
    return strfmt("_b.sharedLoad<%s>(%zu, %s)",
                  cppScalarType(P.Root->Elem), P.Root->ByteBase,
                  natToCpp(P.Index).c_str());
  }
  return "0";
}

bool Lowerer::placeStore(const LPlace &P, const std::string &Value) {
  switch (P.K) {
  case LPlace::NatValue:
    return fail("cannot assign to a loop variable");
  case LPlace::Local:
    line(P.Root->CppName + " = " + Value + ";");
    return true;
  case LPlace::Global:
    if (B == LowerTarget::Cuda)
      line(P.Root->CppName + "[" + natToCpp(P.Index) + "] = " + Value +
           ";");
    else
      line(P.Root->CppName + ".store(_b, " + natToCpp(P.Index) + ", " +
           Value + ");");
    return true;
  case LPlace::Shared:
    if (B == LowerTarget::Cuda)
      line(P.Root->CppName + "[" + natToCpp(P.Index) + "] = " + Value +
           ";");
    else
      line(strfmt("_b.sharedStore<%s>(%zu, %s, %s);",
                  cppScalarType(P.Root->Elem), P.Root->ByteBase,
                  natToCpp(P.Index).c_str(), Value.c_str()));
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Expressions & statements
//===----------------------------------------------------------------------===//

std::optional<std::string> Lowerer::genExpr(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Literal: {
    const auto *L = cast<LiteralExpr>(&E);
    switch (L->Scalar) {
    case ScalarKind::Bool:
      return std::string(L->BoolValue ? "true" : "false");
    case ScalarKind::F32:
    case ScalarKind::F64:
      return floatLiteral(L->FloatValue, L->Scalar);
    case ScalarKind::Unit:
      return std::string("/*unit*/0");
    default:
      return std::to_string(L->IntValue);
    }
  }
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(&E);
    auto L = genExpr(*Bin->Lhs);
    auto R = genExpr(*Bin->Rhs);
    if (!L || !R)
      return std::nullopt;
    return "(" + *L + " " + binOpSpelling(Bin->Op) + " " + *R + ")";
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    auto S = genExpr(*U->Sub);
    if (!S)
      return std::nullopt;
    return std::string(U->Op == UnOpKind::Neg ? "-" : "!") + *S;
  }
  default:
    if (const auto *P = dyn_cast<PlaceExpr>(&E)) {
      auto LP = lowerPlace(*P);
      if (!LP)
        return std::nullopt;
      return placeLoad(*LP);
    }
    fail("unsupported expression in kernel: " + exprToString(E));
    return std::nullopt;
  }
}

bool Lowerer::containsSyncOrSplit(const Expr &E) {
  if (isa<SyncExpr>(&E) || isa<SplitExpr>(&E))
    return true;
  bool Found = false;
  forEachChild(const_cast<Expr &>(E),
               [&](Expr &C) { Found = Found || containsSyncOrSplit(C); });
  return Found;
}

void Lowerer::phaseBreak() {
  if (B == LowerTarget::Cuda) {
    line("__syncthreads();");
    return;
  }
  // Registers do not survive the phase boundary: spill phase-spanning
  // locals to their per-thread arena slot and reload at the start of the
  // next phase (one load/store per local per phase, as a handwritten
  // kernel would do).
  for (const LiveLocal &L : LiveLocals)
    line(strfmt("_b.shared<%s>(_locals_base + %zu)[_lin] = %s;",
                cppScalarType(L.Elem), L.Off, L.CppName.c_str()));
  Phases.push_back(Out.str());
  Out.str("");
  for (const LiveLocal &L : LiveLocals)
    line(strfmt("%s %s = _b.shared<%s>(_locals_base + %zu)[_lin];",
                cppScalarType(L.Elem), L.CppName.c_str(),
                cppScalarType(L.Elem), L.Off));
}

bool Lowerer::genStmt(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Block: {
    const auto *Blk = cast<BlockExpr>(&E);
    pushScope();
    for (const ExprPtr &S : Blk->Stmts)
      if (!genStmt(*S))
        return false;
    popScope();
    return true;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(&E);
    if (const auto *A = dyn_cast<AllocExpr>(L->Init.get())) {
      std::vector<Nat> Dims;
      ScalarKind Elem = ScalarKind::F64;
      if (!arrayNest(A->AllocTy, Dims, Elem))
        return fail("alloc type must be an array of scalars");
      size_t Bytes = 1;
      for (const Nat &D : Dims) {
        auto V = D.evaluate({});
        if (!V)
          return fail("shared allocation sizes must be concrete");
        Bytes *= *V;
      }
      size_t ElemSize = Elem == ScalarKind::F32 ? 4
                        : Elem == ScalarKind::Bool ? 1
                                                   : 8;
      Bytes *= ElemSize;
      Sym S;
      S.K = Sym::SharedBuf;
      S.CppName = L->Name;
      S.Elem = Elem;
      S.Dims = Dims;
      S.ByteBase = (SharedBytes + 7) & ~size_t(7);
      SharedBytes = S.ByteBase + Bytes;
      if (B == LowerTarget::Cuda) {
        size_t Total = Bytes / ElemSize;
        line(strfmt("__shared__ %s %s[%zu];", cppScalarType(Elem),
                    L->Name.c_str(), Total));
      }
      bind(L->Name, std::move(S));
      return true;
    }
    // Scalar thread-local binding.
    const auto *Scalar = dyn_cast_if_present<ScalarType>(
        L->Init->Ty ? L->Init->Ty.get()
                    : (L->Annotation ? L->Annotation.get() : nullptr));
    if (!Scalar)
      return fail("only scalar lets and shared allocations are supported "
                  "inside kernels: let " +
                  L->Name);
    auto Init = genExpr(*L->Init);
    if (!Init)
      return false;
    Sym S;
    S.K = Sym::Local;
    S.CppName = B == LowerTarget::Cuda
                    ? L->Name
                    : strfmt("%s_%u", L->Name.c_str(), NextLocalUid++);
    S.Elem = Scalar->Scalar;
    // Per-thread arena region for phase-spanning state (sim): each var
    // gets 8 * ThreadsPerBlock bytes after the shared allocations.
    S.LocalOff = ((LocalBytesPerThread + 7) & ~size_t(7));
    LocalBytesPerThread = S.LocalOff + 8;
    S.LocalOff = S.LocalOff * ThreadsPerBlock;
    const Sym &Bound = bind(L->Name, std::move(S));
    line(strfmt("%s %s = %s;", cppScalarType(Bound.Elem),
                Bound.CppName.c_str(), Init->c_str()));
    if (B == LowerTarget::Sim)
      LiveLocals.push_back(LiveLocal{Bound.CppName, Bound.Elem,
                                     Bound.LocalOff,
                                     (unsigned)Scopes.size()});
    return true;
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(&E);
    auto Value = genExpr(*A->Rhs);
    if (!Value)
      return false;
    auto LP = lowerPlace(*A->Lhs);
    if (!LP)
      return false;
    return placeStore(*LP, *Value);
  }
  case ExprKind::Sched: {
    const auto *S = cast<SchedExpr>(&E);
    Sym *Target = lookup(S->Target);
    if (!Target || Target->K != Sym::ExecVar)
      return fail("internal: unknown sched target");
    ExecResource Child = Target->Exec;
    for (Axis A : S->Axes) {
      auto Next = Child.forall(A);
      if (!Next)
        return fail("internal: invalid sched");
      Child = *Next;
    }
    pushScope();
    Sym Binder;
    Binder.K = Sym::ExecVar;
    Binder.CppName = S->Binder;
    Binder.Exec = Child;
    Binder.OpsBegin = Target->Exec.numOps();
    Binder.OpsEnd = Child.numOps();
    bind(S->Binder, std::move(Binder));
    ExecResource Saved = CurExec;
    CurExec = Child;
    bool Ok = genStmt(*S->Body);
    CurExec = Saved;
    popScope();
    return Ok;
  }
  case ExprKind::Split: {
    const auto *S = cast<SplitExpr>(&E);
    Sym *Target = lookup(S->Target);
    if (!Target || Target->K != Sym::ExecVar)
      return fail("internal: unknown split target");
    Nat Pos = substLoopConsts(S->Position).simplified();
    auto Fst = Target->Exec.split(S->SplitAxis, Pos, true);
    auto Snd = Target->Exec.split(S->SplitAxis, Pos, false);
    if (!Fst || !Snd)
      return fail("internal: invalid split");
    // Guard: local coordinate along the split axis at the split's stage.
    unsigned Stage = Fst->ops().back().Stage;
    Nat Coord = Nat::var(axisVarName(Stage, S->SplitAxis));
    for (const ExecOp &Op : Target->Exec.ops())
      if (Op.Stage == Stage && Op.Ax == S->SplitAxis &&
          Op.Kind == ExecOpKind::SplitSnd)
        Coord = Coord - Op.Pos;
    line("if (" + natToCpp(Coord) + " < " + natToCpp(Pos) + ") {");
    ++Indent;
    {
      pushScope();
      Sym Binder;
      Binder.K = Sym::ExecVar;
      Binder.CppName = S->FstName;
      Binder.Exec = *Fst;
      Binder.OpsBegin = Target->Exec.numOps();
      Binder.OpsEnd = Fst->numOps();
      bind(S->FstName, std::move(Binder));
      ExecResource Saved = CurExec;
      CurExec = *Fst;
      bool Ok = genStmt(*S->FstBody);
      CurExec = Saved;
      popScope();
      if (!Ok)
        return false;
    }
    --Indent;
    line("} else {");
    ++Indent;
    {
      pushScope();
      Sym Binder;
      Binder.K = Sym::ExecVar;
      Binder.CppName = S->SndName;
      Binder.Exec = *Snd;
      Binder.OpsBegin = Target->Exec.numOps();
      Binder.OpsEnd = Snd->numOps();
      bind(S->SndName, std::move(Binder));
      ExecResource Saved = CurExec;
      CurExec = *Snd;
      bool Ok = genStmt(*S->SndBody);
      CurExec = Saved;
      popScope();
      if (!Ok)
        return false;
    }
    --Indent;
    line("}");
    return true;
  }
  case ExprKind::Sync:
    phaseBreak();
    return true;
  case ExprKind::ForNat: {
    const auto *F = cast<ForNatExpr>(&E);
    Nat Lo = substLoopConsts(F->Lo).simplified();
    Nat Hi = substLoopConsts(F->Hi).simplified();
    // Loops whose body synchronizes (sim: phase boundaries) or splits
    // the hierarchy (iteration-dependent split positions like n/2^s)
    // are unrolled; their ranges are statically evaluated (Fig. 5).
    bool NeedUnroll = containsSyncOrSplit(*F->Body);
    if (NeedUnroll) {
      if (!Lo.isLit() || !Hi.isLit())
        return fail("loops containing sync or split need static bounds, "
                    "got [" +
                    Lo.str() + ".." + Hi.str() + "]");
      for (long long V = Lo.litValue(); V < Hi.litValue(); ++V) {
        pushScope();
        Sym S;
        S.K = Sym::NatVar;
        S.CppName = F->Var;
        S.ConstVal = Nat::lit(V);
        bind(F->Var, std::move(S));
        bool Ok = genStmt(*F->Body);
        popScope();
        if (!Ok)
          return false;
      }
      return true;
    }
    line(strfmt("for (long long %s = %s; %s < %s; ++%s) {",
                F->Var.c_str(), natToCpp(Lo).c_str(), F->Var.c_str(),
                natToCpp(Hi).c_str(), F->Var.c_str()));
    ++Indent;
    pushScope();
    Sym S;
    S.K = Sym::NatVar;
    S.CppName = F->Var;
    bind(F->Var, std::move(S));
    bool Ok = genStmt(*F->Body);
    popScope();
    --Indent;
    line("}");
    return Ok;
  }
  default:
    return fail("unsupported statement in kernel: " + exprToString(E));
  }
}

bool Lowerer::runKernel(const FnDef &Fn) {
  Phases.clear();
  CudaBody.clear();
  SharedBytes = 0;
  LocalBytesPerThread = 0;
  Out.str("");
  Syms.clear();
  Scopes.clear();

  auto Threads = Fn.Exec.BlockDim.total().evaluate({});
  if (!Threads)
    return fail("kernel block dimensions must be concrete; instantiate "
                "generic sizes first (--define)");
  ThreadsPerBlock = *Threads;

  pushScope();
  ExecResource Grid =
      ExecResource::gpuGrid(Fn.ExecName, Fn.Exec.GridDim, Fn.Exec.BlockDim);
  Sym ExecSym;
  ExecSym.K = Sym::ExecVar;
  ExecSym.CppName = Fn.ExecName;
  ExecSym.Exec = Grid;
  bind(Fn.ExecName, std::move(ExecSym));
  CurExec = Grid;

  for (const FnParam &P : Fn.Params) {
    const auto *Ref = dyn_cast<RefType>(P.Ty.get());
    if (!Ref)
      return fail("kernel parameters must be references to global "
                  "memory: " +
                  P.Name);
    std::vector<Nat> Dims;
    ScalarKind Elem = ScalarKind::F64;
    if (!arrayNest(Ref->Pointee, Dims, Elem))
      return fail("kernel parameter must reference an array of scalars: " +
                  P.Name);
    Sym S;
    S.K = Sym::GlobalBuf;
    S.CppName = P.Name;
    S.Elem = Elem;
    S.Dims = std::move(Dims);
    S.Uniq = Ref->Own == Ownership::Uniq;
    bind(P.Name, std::move(S));
  }

  bool Ok = Fn.Body ? genStmt(*Fn.Body) : true;
  popScope();
  if (!Ok)
    return false;

  if (B == LowerTarget::Sim)
    Phases.push_back(Out.str());
  else
    CudaBody = Out.str();
  return true;
}
