//===- codegen/Lowerer.cpp - Shared kernel lowering --------------------------===//

#include "codegen/Lowerer.h"

#include "support/StringUtils.h"
#include "views/IndexSpace.h"

#include <cassert>
#include <cctype>

using namespace descend;
using namespace descend::codegen;

const char *descend::codegen::cppScalarType(ScalarKind K) {
  switch (K) {
  case ScalarKind::I32:
    return "int32_t";
  case ScalarKind::I64:
    return "int64_t";
  case ScalarKind::U32:
    return "uint32_t";
  case ScalarKind::U64:
    return "uint64_t";
  case ScalarKind::F32:
    return "float";
  case ScalarKind::F64:
    return "double";
  case ScalarKind::Bool:
    return "bool";
  case ScalarKind::Unit:
    return "void";
  }
  return "void";
}

bool descend::codegen::containsPow(const Nat &N) {
  if (N.isNull())
    return false;
  if (N.kind() == NatKind::Pow)
    return true;
  switch (N.kind()) {
  case NatKind::Lit:
  case NatKind::Var:
    return false;
  default:
    return containsPow(N.lhs()) || containsPow(N.rhs());
  }
}

std::string descend::codegen::floatLiteral(double V, ScalarKind K) {
  std::string S = strfmt("%.17g", V);
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  if (K == ScalarKind::F32)
    S += "f";
  return S;
}

bool descend::codegen::arrayNest(const TypeRef &T, std::vector<Nat> &Dims,
                                 ScalarKind &Elem) {
  const DataType *Cur = T.get();
  while (true) {
    if (const auto *A = dyn_cast<ArrayType>(Cur)) {
      Dims.push_back(A->Size);
      Cur = A->Elem.get();
      continue;
    }
    if (const auto *A = dyn_cast<ArrayViewType>(Cur)) {
      Dims.push_back(A->Size);
      Cur = A->Elem.get();
      continue;
    }
    if (const auto *S = dyn_cast<ScalarType>(Cur)) {
      Elem = S->Scalar;
      return true;
    }
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Scopes and small helpers
//===----------------------------------------------------------------------===//

bool Lowerer::fail(const std::string &Msg) {
  if (Error.empty())
    Error = Msg;
  return false;
}

void Lowerer::line(const std::string &S) { Out << renderLine(S); }

void Lowerer::pushScope() { Scopes.emplace_back(); }

void Lowerer::popScope() {
  for (const std::string &N : Scopes.back())
    Syms[N].pop_back();
  while (!LiveLocals.empty() && LiveLocals.back().ScopeDepth >= Scopes.size())
    LiveLocals.pop_back();
  Scopes.pop_back();
}

Sym &Lowerer::bind(const std::string &Name, Sym S) {
  Scopes.back().push_back(Name);
  auto &Stack = Syms[Name];
  Stack.push_back(std::move(S));
  return Stack.back();
}

Sym *Lowerer::lookup(const std::string &Name) {
  auto It = Syms.find(Name);
  if (It == Syms.end() || It->second.empty())
    return nullptr;
  return &It->second.back();
}

/// Raw coordinate variable for (stage, axis).
std::string Lowerer::axisVarName(unsigned Stage, Axis A) const {
  if (B == LowerTarget::Cuda) {
    std::string Base = Stage == 0 ? "blockIdx." : "threadIdx.";
    return Base + (A == Axis::X ? "x" : A == Axis::Y ? "y" : "z");
  }
  std::string Base = Stage == 0 ? "_b" : "_t";
  return Base + (A == Axis::X ? "x" : A == Axis::Y ? "y" : "z");
}

/// Local coordinate of the forall at op index \p OpIdx in \p Exec: the
/// raw coordinate minus the snd-split offsets accumulated before it.
Nat Lowerer::coordinateFor(const ExecResource &Exec, unsigned OpIdx) {
  const ExecOp &Op = Exec.ops()[OpIdx];
  Nat Coord = Nat::var(axisVarName(Op.Stage, Op.Ax));
  for (unsigned I = 0; I != OpIdx; ++I) {
    const ExecOp &Prev = Exec.ops()[I];
    if (Prev.Stage == Op.Stage && Prev.Ax == Op.Ax &&
        Prev.Kind == ExecOpKind::SplitSnd)
      Coord = Coord - Prev.Pos;
  }
  return Coord;
}

Nat Lowerer::exprToNat(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Literal: {
    const auto *L = cast<LiteralExpr>(&E);
    return Nat::lit(L->IntValue);
  }
  case ExprKind::PlaceVar: {
    const auto *V = cast<PlaceVar>(&E);
    if (Sym *S = lookup(V->Name); S && S->K == Sym::NatVar)
      return S->ConstVal ? S->ConstVal : Nat::var(V->Name);
    return Nat();
  }
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(&E);
    Nat L = exprToNat(*Bin->Lhs);
    Nat R = exprToNat(*Bin->Rhs);
    if (!L || !R)
      return Nat();
    switch (Bin->Op) {
    case BinOpKind::Add:
      return L + R;
    case BinOpKind::Sub:
      return L - R;
    case BinOpKind::Mul:
      return L * R;
    case BinOpKind::Div:
      return L / R;
    case BinOpKind::Mod:
      return L % R;
    default:
      return Nat();
    }
  }
  default:
    return Nat();
  }
}

/// Substitutes unrolled loop constants into a nat from the source.
Nat Lowerer::substLoopConsts(Nat N) {
  if (!N)
    return N;
  std::vector<std::string> Vars;
  N.collectVars(Vars);
  std::map<std::string, Nat> Subst;
  for (const std::string &V : Vars)
    if (Sym *S = lookup(V); S && S->K == Sym::NatVar && S->ConstVal)
      Subst[V] = S->ConstVal;
  return Subst.empty() ? N : N.substitute(Subst);
}

std::string Lowerer::natToCpp(const Nat &N) {
  Nat S = N.simplified();
  if (containsPow(S)) {
    fail("internal: unfolded 2^i expression reached code generation: " +
         S.str());
    return "0";
  }
  return S.str();
}

//===----------------------------------------------------------------------===//
// Places
//===----------------------------------------------------------------------===//

std::optional<Lowerer::LPlace> Lowerer::lowerPlace(const PlaceExpr &P) {
  // Collect root-to-leaf chain.
  std::vector<const PlaceExpr *> Chain;
  for (const PlaceExpr *Cur = &P; Cur; Cur = basePlace(Cur))
    Chain.push_back(Cur);
  std::reverse(Chain.begin(), Chain.end());

  const auto *RootVar = dyn_cast<PlaceVar>(Chain[0]);
  assert(RootVar && "place chain must start at a variable");
  Sym *Root = lookup(RootVar->Name);
  if (!Root) {
    fail("internal: unknown symbol `" + RootVar->Name + "`");
    return std::nullopt;
  }

  LPlace Result;
  if (Root->K == Sym::NatVar) {
    Result.K = LPlace::NatValue;
    Result.NatVal = Root->ConstVal ? Root->ConstVal
                                   : Nat::var(RootVar->Name);
    return Result;
  }
  if (Root->K == Sym::Local) {
    Result.K = LPlace::Local;
    Result.Root = Root;
    return Result;
  }
  if (Root->K == Sym::ExecVar) {
    fail("internal: execution resource used as value");
    return std::nullopt;
  }

  Result.K = Root->K == Sym::GlobalBuf ? LPlace::Global : LPlace::Shared;
  Result.Root = Root;

  IndexSpace Space = IndexSpace::fromDims(Root->Dims);
  // Pending split view: a split must be followed by .fst/.snd.
  std::optional<Nat> PendingSplit;

  for (size_t I = 1; I != Chain.size(); ++I) {
    const PlaceExpr *Step = Chain[I];
    std::string Err;
    switch (Step->kind()) {
    case ExprKind::PlaceDeref:
      break; // references were resolved to buffers
    case ExprKind::PlaceView: {
      const auto *V = cast<PlaceView>(Step);
      std::vector<Nat> Args;
      for (const Nat &A : V->NatArgs)
        Args.push_back(substLoopConsts(A).simplified());
      auto Resolved = Views.resolve(V->ViewName, Args, &Err);
      if (!Resolved) {
        fail(Err);
        return std::nullopt;
      }
      for (const View &Prim : *Resolved) {
        if (Prim.Kind == ViewKind::SplitView) {
          if (PendingSplit) {
            fail("internal: split view without projection");
            return std::nullopt;
          }
          PendingSplit = Prim.Arg;
          continue;
        }
        if (PendingSplit) {
          fail("internal: split view without projection");
          return std::nullopt;
        }
        if (!Space.applyView(Prim, &Err)) {
          fail(Err);
          return std::nullopt;
        }
      }
      break;
    }
    case ExprKind::PlaceProj: {
      const auto *Proj = cast<PlaceProj>(Step);
      if (!PendingSplit) {
        fail("tuple projections outside split views are not supported in "
             "kernels");
        return std::nullopt;
      }
      if (!Space.takeSplitPart(*PendingSplit, Proj->Which == 0, &Err)) {
        fail(Err);
        return std::nullopt;
      }
      PendingSplit.reset();
      break;
    }
    case ExprKind::PlaceSelect: {
      const auto *Sel = cast<PlaceSelect>(Step);
      Sym *ExecSym = lookup(Sel->ExecName);
      if (!ExecSym || ExecSym->K != Sym::ExecVar) {
        fail("internal: unknown execution resource `" + Sel->ExecName +
             "`");
        return std::nullopt;
      }
      for (unsigned OpIdx = ExecSym->OpsBegin; OpIdx != ExecSym->OpsEnd;
           ++OpIdx) {
        Nat Coord = coordinateFor(ExecSym->Exec, OpIdx);
        if (!Space.bindOuter(Coord, &Err)) {
          fail(Err);
          return std::nullopt;
        }
      }
      break;
    }
    case ExprKind::PlaceIndex: {
      const auto *Idx = cast<PlaceIndex>(Step);
      Nat N = exprToNat(*Idx->Index);
      if (!N) {
        fail("kernel indices must be static or loop-variable expressions: "
             + exprToString(*Idx->Index));
        return std::nullopt;
      }
      if (!Space.bindOuter(substLoopConsts(N), &Err)) {
        fail(Err);
        return std::nullopt;
      }
      break;
    }
    default:
      fail("unsupported place step in kernel");
      return std::nullopt;
    }
  }

  std::string Err;
  Result.Index = Space.flatten(&Err);
  if (Result.Index.isNull()) {
    fail(Err);
    return std::nullopt;
  }
  return Result;
}

std::string Lowerer::placeLoad(const LPlace &P) {
  switch (P.K) {
  case LPlace::NatValue:
    return natToCpp(P.NatVal);
  case LPlace::Local:
    return P.Root->CppName;
  case LPlace::Global:
    if (B == LowerTarget::Cuda)
      return P.Root->CppName + "[" + natToCpp(P.Index) + "]";
    return P.Root->CppName + ".load(_b, " + natToCpp(P.Index) + ")";
  case LPlace::Shared:
    if (B == LowerTarget::Cuda)
      return P.Root->CppName + "[" + natToCpp(P.Index) + "]";
    return strfmt("_b.sharedLoad<%s>(%zu, %s)",
                  cppScalarType(P.Root->Elem), P.Root->ByteBase,
                  natToCpp(P.Index).c_str());
  }
  return "0";
}

bool Lowerer::placeStore(const LPlace &P, const std::string &Value) {
  switch (P.K) {
  case LPlace::NatValue:
    return fail("cannot assign to a loop variable");
  case LPlace::Local:
    line(P.Root->CppName + " = " + Value + ";");
    return true;
  case LPlace::Global:
    if (B == LowerTarget::Cuda)
      line(P.Root->CppName + "[" + natToCpp(P.Index) + "] = " + Value +
           ";");
    else
      line(P.Root->CppName + ".store(_b, " + natToCpp(P.Index) + ", " +
           Value + ");");
    return true;
  case LPlace::Shared:
    if (B == LowerTarget::Cuda)
      line(P.Root->CppName + "[" + natToCpp(P.Index) + "] = " + Value +
           ";");
    else
      line(strfmt("_b.sharedStore<%s>(%zu, %s, %s);",
                  cppScalarType(P.Root->Elem), P.Root->ByteBase,
                  natToCpp(P.Index).c_str(), Value.c_str()));
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Expressions & statements
//===----------------------------------------------------------------------===//

std::optional<std::string> Lowerer::genExpr(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Literal: {
    const auto *L = cast<LiteralExpr>(&E);
    switch (L->Scalar) {
    case ScalarKind::Bool:
      return std::string(L->BoolValue ? "true" : "false");
    case ScalarKind::F32:
    case ScalarKind::F64:
      return floatLiteral(L->FloatValue, L->Scalar);
    case ScalarKind::Unit:
      return std::string("/*unit*/0");
    default:
      return std::to_string(L->IntValue);
    }
  }
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(&E);
    auto L = genExpr(*Bin->Lhs);
    auto R = genExpr(*Bin->Rhs);
    if (!L || !R)
      return std::nullopt;
    return "(" + *L + " " + binOpSpelling(Bin->Op) + " " + *R + ")";
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    auto S = genExpr(*U->Sub);
    if (!S)
      return std::nullopt;
    return std::string(U->Op == UnOpKind::Neg ? "-" : "!") + *S;
  }
  default:
    if (const auto *P = dyn_cast<PlaceExpr>(&E)) {
      auto LP = lowerPlace(*P);
      if (!LP)
        return std::nullopt;
      return placeLoad(*LP);
    }
    fail("unsupported expression in kernel: " + exprToString(E));
    return std::nullopt;
  }
}

bool Lowerer::containsKind(const Expr &E, ExprKind K) {
  if (E.kind() == K)
    return true;
  bool Found = false;
  forEachChild(const_cast<Expr &>(E),
               [&](Expr &C) { Found = Found || containsKind(C, K); });
  return Found;
}

/// True when \p N contains an unfolded Pow node mentioning \p Var (e.g.
/// 2^(s+1) for loop variable s). Such nats only fold to printable C++
/// once the variable is a known constant.
static bool powMentionsVar(const Nat &N, const std::string &Var) {
  if (N.isNull())
    return false;
  switch (N.kind()) {
  case NatKind::Lit:
  case NatKind::Var:
    return false;
  case NatKind::Pow: {
    std::vector<std::string> Vars;
    N.collectVars(Vars);
    for (const std::string &V : Vars)
      if (V == Var)
        return true;
    return false;
  }
  default:
    return powMentionsVar(N.lhs(), Var) || powMentionsVar(N.rhs(), Var);
  }
}

/// True when any nat inside \p E (view arguments, split positions, loop
/// bounds) raises to a power of \p Var. A nested for-nat that rebinds the
/// same name shadows it.
static bool usesPowOfVar(const Expr &E, const std::string &Var) {
  if (const auto *V = dyn_cast<PlaceView>(&E)) {
    for (const Nat &A : V->NatArgs)
      if (powMentionsVar(A, Var))
        return true;
  } else if (const auto *S = dyn_cast<SplitExpr>(&E)) {
    if (powMentionsVar(S->Position, Var))
      return true;
  } else if (const auto *F = dyn_cast<ForNatExpr>(&E)) {
    if (powMentionsVar(F->Lo, Var) || powMentionsVar(F->Hi, Var))
      return true;
    if (F->Var == Var)
      return false; // shadowed in the body
  }
  bool Found = false;
  forEachChild(const_cast<Expr &>(E),
               [&](Expr &C) { Found = Found || usesPowOfVar(C, Var); });
  return Found;
}

/// Counts occurrences of identifier \p Name in \p S (token boundaries on
/// both sides).
static size_t countIdent(const std::string &S, const std::string &Name) {
  auto IsIdent = [](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
  };
  size_t Count = 0;
  for (size_t Pos = S.find(Name); Pos != std::string::npos;
       Pos = S.find(Name, Pos + 1)) {
    bool LeftOk = Pos == 0 || !IsIdent(S[Pos - 1]);
    bool RightOk =
        Pos + Name.size() == S.size() || !IsIdent(S[Pos + Name.size()]);
    Count += LeftOk && RightOk;
  }
  return Count;
}

/// The exact text line() emits for \p S, including indentation — line()
/// delegates here, so recorded reload/spill lines (localLine) match the
/// emitted text byte for byte.
std::string Lowerer::renderLine(const std::string &S) const {
  std::string R;
  for (unsigned I = 0; I != Indent; ++I)
    R += "  ";
  R += S;
  R += "\n";
  return R;
}

/// Emits a reload/spill line for the local \p CppName and records its
/// exact text so pushStraightPhase can elide it if the phase turns out
/// never to touch the local.
void Lowerer::localLine(const std::string &S, const std::string &CppName) {
  PhaseLocalLines[CppName].push_back(renderLine(S));
  line(S);
}

/// Removes the reload/spill lines of any phase-spanning local the phase
/// never touches: the arena slot already holds the right value, so
/// round-tripping it is dead work (the handwritten kernels only touch a
/// spilled accumulator in the phases that use it). Lines are identified
/// by exact match against what localLine recorded for this phase.
std::string Lowerer::elideDeadSpills(std::string Phase) const {
  for (const auto &[Name, Recorded] : PhaseLocalLines) {
    // Usage = identifier occurrences outside the recorded lines. Each
    // recorded line mentions the name exactly once.
    size_t RecordedUses = 0;
    for (const std::string &L : Recorded)
      if (Phase.find(L) != std::string::npos)
        ++RecordedUses;
    if (countIdent(Phase, Name) != RecordedUses)
      continue; // really used somewhere
    for (const std::string &L : Recorded) {
      size_t Pos = Phase.find(L);
      if (Pos != std::string::npos)
        Phase.erase(Pos, L.size());
    }
  }
  return Phase;
}

/// Closes the current phase body and appends it as a StraightPhase to the
/// innermost open node list.
void Lowerer::pushStraightPhase() {
  NodeStack.back()->push_back(PhaseNode::straight(elideDeadSpills(Out.str())));
  Out.str("");
  PhaseLocalLines.clear();
}

void Lowerer::phaseBreak() {
  if (B == LowerTarget::Cuda) {
    line("__syncthreads();");
    return;
  }
  // Registers do not survive the phase boundary: spill phase-spanning
  // locals to their per-thread arena slot and reload at the start of the
  // next phase (one load/store per local per phase, as a handwritten
  // kernel would do). Phases that never touch a local get the pair
  // elided again in pushStraightPhase.
  for (const LiveLocal &L : LiveLocals)
    localLine(strfmt("_b.shared<%s>(_locals_base + %zu)[_lin] = %s;",
                     cppScalarType(L.Elem), L.Off, L.CppName.c_str()),
              L.CppName);
  pushStraightPhase();
  for (const LiveLocal &L : LiveLocals)
    localLine(strfmt("%s %s = _b.shared<%s>(_locals_base + %zu)[_lin];",
                     cppScalarType(L.Elem), L.CppName.c_str(),
                     cppScalarType(L.Elem), L.Off),
              L.CppName);
  PhaseContentMark = Out.str().size();
}

/// Phase boundary at a PhaseLoop edge: a barrier is only needed when the
/// pending phase has real content beyond the reload preamble; a bare
/// preamble flows into whatever phase starts next.
void Lowerer::softPhaseBreak() {
  if (Out.str().size() > PhaseContentMark)
    phaseBreak();
}

bool Lowerer::genStmt(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Block: {
    const auto *Blk = cast<BlockExpr>(&E);
    pushScope();
    for (const ExprPtr &S : Blk->Stmts)
      if (!genStmt(*S))
        return false;
    popScope();
    return true;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(&E);
    if (const auto *A = dyn_cast<AllocExpr>(L->Init.get())) {
      std::vector<Nat> Dims;
      ScalarKind Elem = ScalarKind::F64;
      if (!arrayNest(A->AllocTy, Dims, Elem))
        return fail("alloc type must be an array of scalars");
      size_t Bytes = 1;
      for (const Nat &D : Dims) {
        auto V = D.evaluate({});
        if (!V)
          return fail("shared allocation sizes must be concrete");
        Bytes *= *V;
      }
      size_t ElemSize = Elem == ScalarKind::F32 ? 4
                        : Elem == ScalarKind::Bool ? 1
                                                   : 8;
      Bytes *= ElemSize;
      Sym S;
      S.K = Sym::SharedBuf;
      S.CppName = L->Name;
      S.Elem = Elem;
      S.Dims = Dims;
      S.ByteBase = (SharedBytes + 7) & ~size_t(7);
      SharedBytes = S.ByteBase + Bytes;
      if (B == LowerTarget::Cuda) {
        size_t Total = Bytes / ElemSize;
        line(strfmt("__shared__ %s %s[%zu];", cppScalarType(Elem),
                    L->Name.c_str(), Total));
      }
      bind(L->Name, std::move(S));
      return true;
    }
    // Scalar thread-local binding.
    const auto *Scalar = dyn_cast_if_present<ScalarType>(
        L->Init->Ty ? L->Init->Ty.get()
                    : (L->Annotation ? L->Annotation.get() : nullptr));
    if (!Scalar)
      return fail("only scalar lets and shared allocations are supported "
                  "inside kernels: let " +
                  L->Name);
    auto Init = genExpr(*L->Init);
    if (!Init)
      return false;
    Sym S;
    S.K = Sym::Local;
    S.CppName = B == LowerTarget::Cuda
                    ? L->Name
                    : strfmt("%s_%u", L->Name.c_str(), NextLocalUid++);
    S.Elem = Scalar->Scalar;
    // Per-thread arena region for phase-spanning state (sim): each var
    // gets 8 * ThreadsPerBlock bytes after the shared allocations.
    S.LocalOff = ((LocalBytesPerThread + 7) & ~size_t(7));
    LocalBytesPerThread = S.LocalOff + 8;
    S.LocalOff = S.LocalOff * ThreadsPerBlock;
    const Sym &Bound = bind(L->Name, std::move(S));
    line(strfmt("%s %s = %s;", cppScalarType(Bound.Elem),
                Bound.CppName.c_str(), Init->c_str()));
    if (B == LowerTarget::Sim)
      LiveLocals.push_back(LiveLocal{Bound.CppName, Bound.Elem,
                                     Bound.LocalOff,
                                     (unsigned)Scopes.size()});
    return true;
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(&E);
    auto Value = genExpr(*A->Rhs);
    if (!Value)
      return false;
    auto LP = lowerPlace(*A->Lhs);
    if (!LP)
      return false;
    return placeStore(*LP, *Value);
  }
  case ExprKind::Sched: {
    const auto *S = cast<SchedExpr>(&E);
    Sym *Target = lookup(S->Target);
    if (!Target || Target->K != Sym::ExecVar)
      return fail("internal: unknown sched target");
    ExecResource Child = Target->Exec;
    for (Axis A : S->Axes) {
      auto Next = Child.forall(A);
      if (!Next)
        return fail("internal: invalid sched");
      Child = *Next;
    }
    pushScope();
    Sym Binder;
    Binder.K = Sym::ExecVar;
    Binder.CppName = S->Binder;
    Binder.Exec = Child;
    Binder.OpsBegin = Target->Exec.numOps();
    Binder.OpsEnd = Child.numOps();
    bind(S->Binder, std::move(Binder));
    ExecResource Saved = CurExec;
    CurExec = Child;
    bool Ok = genStmt(*S->Body);
    CurExec = Saved;
    popScope();
    return Ok;
  }
  case ExprKind::Split: {
    const auto *S = cast<SplitExpr>(&E);
    Sym *Target = lookup(S->Target);
    if (!Target || Target->K != Sym::ExecVar)
      return fail("internal: unknown split target");
    Nat Pos = substLoopConsts(S->Position).simplified();
    auto Fst = Target->Exec.split(S->SplitAxis, Pos, true);
    auto Snd = Target->Exec.split(S->SplitAxis, Pos, false);
    if (!Fst || !Snd)
      return fail("internal: invalid split");
    // Guard: local coordinate along the split axis at the split's stage.
    unsigned Stage = Fst->ops().back().Stage;
    Nat Coord = Nat::var(axisVarName(Stage, S->SplitAxis));
    for (const ExecOp &Op : Target->Exec.ops())
      if (Op.Stage == Stage && Op.Ax == S->SplitAxis &&
          Op.Kind == ExecOpKind::SplitSnd)
        Coord = Coord - Op.Pos;
    line("if (" + natToCpp(Coord) + " < " + natToCpp(Pos) + ") {");
    ++Indent;
    {
      pushScope();
      Sym Binder;
      Binder.K = Sym::ExecVar;
      Binder.CppName = S->FstName;
      Binder.Exec = *Fst;
      Binder.OpsBegin = Target->Exec.numOps();
      Binder.OpsEnd = Fst->numOps();
      bind(S->FstName, std::move(Binder));
      ExecResource Saved = CurExec;
      CurExec = *Fst;
      bool Ok = genStmt(*S->FstBody);
      CurExec = Saved;
      popScope();
      if (!Ok)
        return false;
    }
    --Indent;
    line("} else {");
    ++Indent;
    {
      pushScope();
      Sym Binder;
      Binder.K = Sym::ExecVar;
      Binder.CppName = S->SndName;
      Binder.Exec = *Snd;
      Binder.OpsBegin = Target->Exec.numOps();
      Binder.OpsEnd = Snd->numOps();
      bind(S->SndName, std::move(Binder));
      ExecResource Saved = CurExec;
      CurExec = *Snd;
      bool Ok = genStmt(*S->SndBody);
      CurExec = Saved;
      popScope();
      if (!Ok)
        return false;
    }
    --Indent;
    line("}");
    return true;
  }
  case ExprKind::Sync:
    phaseBreak();
    return true;
  case ExprKind::ForNat: {
    const auto *F = cast<ForNatExpr>(&E);
    Nat Lo = substLoopConsts(F->Lo).simplified();
    Nat Hi = substLoopConsts(F->Hi).simplified();
    // Only loops whose nat arithmetic must fold iteration by iteration
    // are unrolled (their ranges are statically evaluated, Fig. 5): a
    // body that splits the hierarchy (split positions like n/2^(s+1)
    // change shape per iteration) or strides views by 2^i of the loop
    // variable. A loop that merely synchronizes keeps its structure — a
    // PhaseLoop in the simulator's phase program, a plain `for` with
    // __syncthreads() inside for CUDA — so its bounds stay symbolic.
    bool HasSplit = containsKind(*F->Body, ExprKind::Split);
    bool NeedUnroll = HasSplit || usesPowOfVar(*F->Body, F->Var);
    if (NeedUnroll) {
      if (!Lo.isLit() || !Hi.isLit())
        return fail(std::string(HasSplit
                        ? "loops containing split need static bounds "
                          "(split positions change per iteration)"
                        : "loops striding views by 2^" + F->Var +
                              " need static bounds") +
                    ", got [" + Lo.str() + ".." + Hi.str() + "]");
      for (long long V = Lo.litValue(); V < Hi.litValue(); ++V) {
        pushScope();
        Sym S;
        S.K = Sym::NatVar;
        S.CppName = F->Var;
        S.ConstVal = Nat::lit(V);
        bind(F->Var, std::move(S));
        bool Ok = genStmt(*F->Body);
        popScope();
        if (!Ok)
          return false;
      }
      return true;
    }
    if (!checkLoopBounds(Lo, Hi))
      return false;
    if (B == LowerTarget::Sim && containsKind(*F->Body, ExprKind::Sync))
      return genPhaseLoop(*F, std::move(Lo), std::move(Hi));
    line(strfmt("for (long long %s = %s; %s < %s; ++%s) {",
                F->Var.c_str(), natToCpp(Lo).c_str(), F->Var.c_str(),
                natToCpp(Hi).c_str(), F->Var.c_str()));
    ++Indent;
    pushScope();
    Sym S;
    S.K = Sym::NatVar;
    S.CppName = F->Var;
    bind(F->Var, std::move(S));
    bool Ok = genStmt(*F->Body);
    popScope();
    --Indent;
    line("}");
    return Ok;
  }
  default:
    return fail("unsupported statement in kernel: " + exprToString(E));
  }
}

/// A symbolic loop bound may only reference enclosing loop variables
/// (which the emitted code declares); a free size variable or an
/// unfolded 2^i means the kernel was not fully instantiated.
bool Lowerer::checkLoopBounds(const Nat &Lo, const Nat &Hi) {
  if (containsPow(Lo) || containsPow(Hi))
    return fail("loop bounds contain an uninstantiated 2^i expression: [" +
                Lo.str() + ".." + Hi.str() + "]; instantiate generic sizes "
                "first (--define)");
  std::vector<std::string> Vars;
  Lo.collectVars(Vars);
  Hi.collectVars(Vars);
  for (const std::string &V : Vars) {
    Sym *S = lookup(V);
    if (!S || S->K != Sym::NatVar)
      return fail("loop bounds reference the uninstantiated size variable "
                  "`" + V + "`: [" + Lo.str() + ".." + Hi.str() +
                  "]; instantiate generic sizes first (--define)");
  }
  return true;
}

/// Lowers a sync-containing for-nat into a PhaseLoop node (sim target):
/// the pending phase is closed, the body's phases are collected as the
/// loop's children with the loop variable left symbolic, and the runtime
/// binds it per iteration through BlockCtx::loopVar(Slot).
bool Lowerer::genPhaseLoop(const ForNatExpr &F, Nat Lo, Nat Hi) {
  softPhaseBreak();
  PhaseNode LoopNode = PhaseNode::loop(F.Var, LoopDepth, std::move(Lo),
                                       std::move(Hi));
  NodeStack.push_back(&LoopNode.Children);
  ++LoopDepth;
  pushScope();
  Sym S;
  S.K = Sym::NatVar;
  S.CppName = F.Var; // no ConstVal: the variable stays symbolic
  bind(F.Var, std::move(S));
  bool Ok = genStmt(*F.Body);
  popScope();
  --LoopDepth;
  if (Ok)
    softPhaseBreak(); // close a trailing partial phase inside the loop
  NodeStack.pop_back();
  NodeStack.back()->push_back(std::move(LoopNode));
  return Ok;
}

bool Lowerer::runKernel(const FnDef &Fn) {
  Program.clear();
  CudaBody.clear();
  SharedBytes = 0;
  LocalBytesPerThread = 0;
  Out.str("");
  Syms.clear();
  Scopes.clear();
  NodeStack.clear();
  NodeStack.push_back(&Program.Nodes);
  LoopDepth = 0;
  PhaseContentMark = 0;
  PhaseLocalLines.clear();

  auto Threads = Fn.Exec.BlockDim.total().evaluate({});
  if (!Threads)
    return fail("kernel block dimensions must be concrete; instantiate "
                "generic sizes first (--define)");
  ThreadsPerBlock = *Threads;

  pushScope();
  ExecResource Grid =
      ExecResource::gpuGrid(Fn.ExecName, Fn.Exec.GridDim, Fn.Exec.BlockDim);
  Sym ExecSym;
  ExecSym.K = Sym::ExecVar;
  ExecSym.CppName = Fn.ExecName;
  ExecSym.Exec = Grid;
  bind(Fn.ExecName, std::move(ExecSym));
  CurExec = Grid;

  for (const FnParam &P : Fn.Params) {
    const auto *Ref = dyn_cast<RefType>(P.Ty.get());
    if (!Ref)
      return fail("kernel parameters must be references to global "
                  "memory: " +
                  P.Name);
    std::vector<Nat> Dims;
    ScalarKind Elem = ScalarKind::F64;
    if (!arrayNest(Ref->Pointee, Dims, Elem))
      return fail("kernel parameter must reference an array of scalars: " +
                  P.Name);
    Sym S;
    S.K = Sym::GlobalBuf;
    S.CppName = P.Name;
    S.Elem = Elem;
    S.Dims = std::move(Dims);
    S.Uniq = Ref->Own == Ownership::Uniq;
    bind(P.Name, std::move(S));
  }

  bool Ok = Fn.Body ? genStmt(*Fn.Body) : true;
  popScope();
  if (!Ok)
    return false;

  if (B == LowerTarget::Sim) {
    // Close the trailing phase; keep at least one so an empty kernel
    // still launches with a well-formed (no-op) program.
    if (Out.str().size() > PhaseContentMark || Program.Nodes.empty())
      pushStraightPhase();
  } else {
    CudaBody = Out.str();
  }
  return true;
}
