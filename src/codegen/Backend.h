//===- codegen/Backend.h - Pluggable code-generation backends ---*- C++ -*-===//
//
// Part of the Descend reproduction. The code-generation stage of the
// compilation pipeline is pluggable: a Backend translates a well-typed
// (and, for concrete code, nat-instantiated) module into one textual
// artifact. Backends are registered by name in a BackendRegistry; the
// driver resolves `--emit=<name>` against it, so adding a backend is one
// class + one registration call (see docs/architecture.md).
//
// Builtin backends:
//   cuda  CUDA C++ (kernels + host functions, Section 5)
//   sim   phase-structured simulator C++ against sim/Sim.h
//   ast   type-checked surface-syntax dump of the module
//   vm    register bytecode for the in-process interpreter (vm/Interp.h)
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_CODEGEN_BACKEND_H
#define DESCEND_CODEGEN_BACKEND_H

#include "kir/Schedule.h"

#include <memory>
#include <string>
#include <vector>

namespace descend {

class Module;

namespace codegen {

/// Result of a code generation run.
struct GenResult {
  bool Ok = false;
  std::string Code;
  std::string Error; // set when !Ok
};

/// Per-invocation backend options.
struct BackendOptions {
  /// Appended to every emitted function name so multiple instantiations of
  /// the same kernel can coexist in one binary (sim backend).
  std::string FnSuffix;

  /// Opt-in schedule passes to run over the lowered kernel IR before
  /// printing (kir/Schedule.h). Default: none.
  kir::PassConfig Passes;
};

/// Abstract code-generation backend. Implementations must be stateless
/// across emit() calls (one registry instance serves every Session).
class Backend {
public:
  virtual ~Backend() = default;

  /// The registry key, e.g. "cuda". Lowercase, no spaces.
  virtual const char *name() const = 0;

  /// One-line human-readable description (usage/help output).
  virtual const char *description() const = 0;

  /// Translates \p M. The module must have passed the type checker.
  virtual GenResult emit(const Module &M, const BackendOptions &Opts) const = 0;
};

/// Name-keyed backend collection. The process-wide instance() comes with
/// the builtin backends (ast, cuda, sim) pre-registered; tests may build
/// private registries.
class BackendRegistry {
public:
  /// Registry with no backends registered.
  BackendRegistry() = default;

  /// The process-wide registry holding the builtin backends.
  static BackendRegistry &instance();

  /// Registers \p B under B->name(). Replaces an existing backend with the
  /// same name (last registration wins, enabling out-of-tree overrides).
  void registerBackend(std::unique_ptr<Backend> B);

  /// Looks up a backend by name; null if unknown (callers turn this into a
  /// diagnostic, never a crash).
  const Backend *lookup(const std::string &Name) const;

  /// All registered names, sorted alphabetically.
  std::vector<std::string> names() const;

private:
  struct Entry {
    std::string Name;
    std::unique_ptr<Backend> Impl;
  };
  std::vector<Entry> Backends; // sorted by name
};

/// Registers the builtin backends into \p R (idempotent per registry).
void registerBuiltinBackends(BackendRegistry &R);

} // namespace codegen
} // namespace descend

#endif // DESCEND_CODEGEN_BACKEND_H
