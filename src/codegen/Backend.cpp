//===- codegen/Backend.cpp - Backend registry --------------------------------===//

#include "codegen/Backend.h"

#include <algorithm>

using namespace descend;
using namespace descend::codegen;

namespace descend::codegen {
// Factories defined in the per-backend translation units.
std::unique_ptr<Backend> createAstBackend();
std::unique_ptr<Backend> createCudaBackend();
std::unique_ptr<Backend> createSimBackend();
std::unique_ptr<Backend> createVmBackend();

void registerBuiltinBackends(BackendRegistry &R) {
  R.registerBackend(createAstBackend());
  R.registerBackend(createCudaBackend());
  R.registerBackend(createSimBackend());
  R.registerBackend(createVmBackend());
}
} // namespace descend::codegen

BackendRegistry &BackendRegistry::instance() {
  static BackendRegistry Registry = [] {
    BackendRegistry R;
    registerBuiltinBackends(R);
    return R;
  }();
  return Registry;
}

void BackendRegistry::registerBackend(std::unique_ptr<Backend> B) {
  Entry E;
  E.Name = B->name();
  E.Impl = std::move(B);
  auto It = std::lower_bound(
      Backends.begin(), Backends.end(), E.Name,
      [](const Entry &A, const std::string &N) { return A.Name < N; });
  if (It != Backends.end() && It->Name == E.Name)
    *It = std::move(E); // last registration wins
  else
    Backends.insert(It, std::move(E));
}

const Backend *BackendRegistry::lookup(const std::string &Name) const {
  auto It = std::lower_bound(
      Backends.begin(), Backends.end(), Name,
      [](const Entry &A, const std::string &N) { return A.Name < N; });
  if (It == Backends.end() || It->Name != Name)
    return nullptr;
  return It->Impl.get();
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> Out;
  Out.reserve(Backends.size());
  for (const Entry &E : Backends)
    Out.push_back(E.Name);
  return Out;
}
