//===- codegen/PhaseIR.cpp - Structured phase-program IR ---------------------===//

#include "codegen/PhaseIR.h"

#include "ast/Item.h"
#include "codegen/Lowerer.h"
#include "support/StringUtils.h"

#include <sstream>

using namespace descend;
using namespace descend::codegen;

namespace {

unsigned countStraight(const std::vector<PhaseNode> &Nodes) {
  unsigned N = 0;
  for (const PhaseNode &Node : Nodes) {
    if (Node.K == PhaseNode::Straight)
      ++N;
    else
      N += countStraight(Node.Children);
  }
  return N;
}

unsigned depthOf(const std::vector<PhaseNode> &Nodes) {
  unsigned D = 0;
  for (const PhaseNode &Node : Nodes)
    if (Node.K == PhaseNode::Loop)
      D = std::max(D, 1 + depthOf(Node.Children));
  return D;
}

void dumpNodes(const std::vector<PhaseNode> &Nodes, unsigned Indent,
               unsigned &PhaseIdx, bool FullStmts, std::ostringstream &OS) {
  auto Pad = [&] {
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
  };
  for (const PhaseNode &Node : Nodes) {
    Pad();
    if (Node.K == PhaseNode::Straight) {
      if (FullStmts) {
        OS << "phase #" << PhaseIdx++ << ":\n";
        OS << kir::dump(Node.Body, Indent + 1);
      } else {
        OS << "phase #" << PhaseIdx++ << " (" << Node.Body.size()
           << " stmts)\n";
      }
      continue;
    }
    OS << "loop " << Node.Var << " in [" << Node.Lo.simplified().str()
       << ".." << Node.Hi.simplified().str() << ") slot " << Node.Slot
       << "\n";
    dumpNodes(Node.Children, Indent + 1, PhaseIdx, FullStmts, OS);
  }
}

} // namespace

unsigned PhaseProgramIR::straightCount() const { return countStraight(Nodes); }

unsigned PhaseProgramIR::maxLoopDepth() const { return depthOf(Nodes); }

std::string PhaseProgramIR::dump() const {
  std::ostringstream OS;
  unsigned PhaseIdx = 0;
  dumpNodes(Nodes, 0, PhaseIdx, /*FullStmts=*/false, OS);
  return OS.str();
}

std::string PhaseProgramIR::dumpStmts() const {
  std::ostringstream OS;
  unsigned PhaseIdx = 0;
  dumpNodes(Nodes, 0, PhaseIdx, /*FullStmts=*/true, OS);
  return OS.str();
}

bool codegen::dumpPhasePrograms(const Module &M, std::string &Out,
                                std::string &Error,
                                const kir::PassConfig &Passes) {
  std::ostringstream OS;
  for (const auto &FnPtr : M.Fns) {
    const FnDef &Fn = *FnPtr;
    if (!Fn.isGpuFn())
      continue;
    Lowerer L(M, LowerTarget::Sim, Passes);
    if (!L.runKernel(Fn)) {
      Error = "while lowering `" + Fn.Name + "`: " + L.Error;
      return false;
    }
    OS << "phase program for `" << Fn.Name << "` (straight phases: "
       << L.Program.straightCount() << ", max loop depth: "
       << L.Program.maxLoopDepth() << ")\n";
    OS << L.Program.dump() << "\n";
  }
  Out = OS.str();
  return true;
}

bool codegen::dumpKernelIRs(const Module &M, std::string &Out,
                            std::string &Error,
                            const kir::PassConfig &Passes) {
  std::ostringstream OS;
  for (const auto &FnPtr : M.Fns) {
    const FnDef &Fn = *FnPtr;
    if (!Fn.isGpuFn())
      continue;
    // The phase-structured (sim-target) lowering: the canonical KIR view.
    Lowerer L(M, LowerTarget::Sim, Passes);
    if (!L.runKernel(Fn)) {
      Error = "while lowering `" + Fn.Name + "`: " + L.Error;
      return false;
    }
    OS << "kir for `" << Fn.Name << "` (straight phases: "
       << L.Program.straightCount() << ", max loop depth: "
       << L.Program.maxLoopDepth() << ", shared bytes: " << L.SharedBytes
       << ", local bytes/thread: " << L.LocalBytesPerThread << ")\n";
    OS << L.Program.dumpStmts() << "\n";
  }
  Out = OS.str();
  return true;
}
