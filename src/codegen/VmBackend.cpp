//===- codegen/VmBackend.cpp - Bytecode interpreter backend -----------------===//
//
// The fourth backend: `--emit=vm` compiles every kernel to register
// bytecode and every cpu.thread function to host IR (vm/Bytecode.h) and
// emits the human-readable disassembly as its textual artifact. The
// executable artifact itself — the CompiledProgram — is produced by the
// same vm::compile call; Session::executeMain and the compile service
// invoke it directly and run the result on a sim::GpuDevice with no C++
// compiler in the loop.
//
//===----------------------------------------------------------------------===//

#include "codegen/Backend.h"
#include "vm/Bytecode.h"

using namespace descend;
using namespace descend::codegen;

namespace {

class VmBackend : public Backend {
public:
  const char *name() const override { return "vm"; }
  const char *description() const override {
    return "register bytecode for the in-process interpreter "
           "(directly executable; artifact is the disassembly)";
  }

  GenResult emit(const Module &M, const BackendOptions &Opts) const override {
    // Bytecode is never linked, so FnSuffix has no effect — but the
    // opt-in schedule passes do change the emitted code.
    GenResult R;
    vm::CompileVmResult C = vm::compile(M, Opts.Passes);
    if (!C.Ok) {
      R.Error = C.Error;
      return R;
    }
    R.Ok = true;
    R.Code = vm::disassemble(*C.Program);
    return R;
  }
};

} // namespace

namespace descend::codegen {

std::unique_ptr<Backend> createVmBackend() {
  return std::make_unique<VmBackend>();
}

} // namespace descend::codegen
