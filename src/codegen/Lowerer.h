//===- codegen/Lowerer.h - Shared kernel lowering ---------------*- C++ -*-===//
//
// Part of the Descend reproduction. The lowering core shared by the CUDA
// and simulator backends (Section 5): sched disappears into coordinate
// variables, selections and views compile to raw indices (through
// views/IndexSpace, normalized by the nat simplifier), split becomes an
// if/else over coordinates, sync becomes a barrier (CUDA) or a phase
// boundary (sim). The result is *typed kernel IR* (kir::Stmt), never
// text: the backends print the same IR with their own access spelling
// (kir::CppStyle), and coordinates are the target-independent variables
// _bx/_by/_bz/_tx/_ty/_tz (the CUDA printer maps them to
// blockIdx/threadIdx).
//
// For the simulator the result is a structured phase program
// (codegen/PhaseIR.h): a `for` whose body synchronizes becomes one
// PhaseLoop with a constant number of StraightPhase children instead of
// O(trip count) unrolled phase bodies, and its bounds need not be
// literals. Only loops whose nat arithmetic must fold per iteration —
// split positions mentioning the loop variable, or pow strides that
// cannot print as shifts — are still unrolled (and those genuinely
// require static bounds). `2^i` strides of the loop variable print as
// `(1ll << i)` and no longer force unrolling.
//
// After building, runKernel() runs the KIR pass pipeline (kir/Passes.h:
// index CSE, redundant-barrier and dead-spill elision, empty phases
// dropped at construction) and structurally checks the result with
// kir::verify().
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_CODEGEN_LOWERER_H
#define DESCEND_CODEGEN_LOWERER_H

#include "ast/Item.h"
#include "codegen/PhaseIR.h"
#include "exec/ExecResource.h"
#include "kir/KIR.h"
#include "kir/Schedule.h"
#include "views/View.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace descend {
namespace codegen {

/// Which backend the Lowerer emits for.
enum class LowerTarget { Cuda, Sim };

/// C++ spelling of a Descend scalar type.
inline const char *cppScalarType(ScalarKind K) {
  return kir::cppScalarType(K);
}

/// C++ literal for a float value of kind \p K (F32 gets the 'f' suffix).
inline std::string floatLiteral(double V, ScalarKind K) {
  return kir::floatLiteral(V, K);
}

/// True when the Nat contains any unfolded Pow node (hostgen sizes must
/// be fully folded; kernel indices print 2^i as shifts instead).
inline bool containsPow(const Nat &N) { return kir::containsPow(N); }

/// Extracts the array-nest dimensions and element scalar type of a kernel
/// parameter / allocation type.
bool arrayNest(const TypeRef &T, std::vector<Nat> &Dims, ScalarKind &Elem);

/// A lowering-time symbol.
struct Sym {
  enum Kind { GlobalBuf, SharedBuf, Local, ExecVar, NatVar } K = Local;
  std::string CppName;
  ScalarKind Elem = ScalarKind::F64;
  std::vector<Nat> Dims;    // GlobalBuf / SharedBuf
  size_t ByteBase = 0;      // SharedBuf: offset in the shared arena
  size_t LocalOff = 0;      // Local: offset in the per-thread arena region
  bool Uniq = false;        // GlobalBuf: unique reference?
  // ExecVar:
  ExecResource Exec = ExecResource::cpuThread();
  unsigned OpsBegin = 0, OpsEnd = 0;
  // NatVar:
  Nat ConstVal; // set while unrolled
};

/// One gpu.shared allocation of the kernel, printed by the CUDA backend
/// as a `__shared__` declaration in the function shell.
struct SharedDecl {
  std::string Name;
  ScalarKind Elem = ScalarKind::F64;
  size_t Elems = 0;
  /// Innermost row width in elements (product of every dimension but the
  /// first); 0 for a 1-D allocation. Feeds the shared-padding pass.
  size_t RowWidth = 0;
  /// Byte offset inside the shared arena (8-aligned; may move when the
  /// padding pass grows an earlier allocation).
  size_t ByteBase = 0;
};

/// Lowers one GPU grid function into typed kernel IR: a linear statement
/// body (CUDA) or a phase program (sim).
class Lowerer {
public:
  Lowerer(const Module &Mod, LowerTarget B, kir::PassConfig Passes = {})
      : Mod(Mod), B(B), Passes(Passes) {
    Views.addModuleViews(Mod);
  }

  bool runKernel(const FnDef &Fn);

  // Results for the kernel just lowered.
  PhaseProgramIR Program;               // sim: structured phase program
  std::vector<kir::Stmt> Body;          // cuda: linear kernel body
  std::vector<SharedDecl> SharedDecls;  // cuda shell: __shared__ decls
  size_t SharedBytes = 0;               // shared allocations
  size_t LocalBytesPerThread = 0;       // per-thread register arena
  kir::ScheduleStats SchedStats;        // what the schedule passes did
  std::string Error;

private:
  const Module &Mod;
  LowerTarget B;
  kir::PassConfig Passes;
  ViewRegistry Views;

  std::map<std::string, std::vector<Sym>> Syms;
  std::vector<std::vector<std::string>> Scopes;
  ExecResource CurExec = ExecResource::cpuThread();
  unsigned ThreadsPerBlock = 1;
  unsigned NextLocalUid = 0;
  /// Live phase-spanning locals: (C++ name, element type, arena offset).
  struct LiveLocal {
    std::string CppName;
    ScalarKind Elem;
    size_t Off;
    unsigned ScopeDepth;
  };
  std::vector<LiveLocal> LiveLocals;

  /// Statement-list construction: the innermost open list (the current
  /// phase body for sim / the kernel body for cuda at the bottom, then
  /// the Then/Else/Body of each open if or for).
  std::vector<std::vector<kir::Stmt> *> ListStack;
  std::vector<kir::Stmt> PhaseBuf; // sim: phase body under construction

  /// Phase-program construction (sim): the innermost node list under
  /// construction (Program.Nodes at the bottom, then the Children of each
  /// open PhaseLoop) and the PhaseLoop nesting depth (= next slot).
  std::vector<std::vector<PhaseNode> *> NodeStack;
  unsigned LoopDepth = 0;

  /// Buffers the lowered kernel may touch, for kir::verify().
  std::map<std::string, kir::MemSpace> BufferSpaces;

  bool fail(const std::string &Msg);
  void emit(kir::Stmt S);

  void pushScope();
  void popScope();
  Sym &bind(const std::string &Name, Sym S);
  Sym *lookup(const std::string &Name);

  std::string axisVarName(unsigned Stage, Axis A) const;
  Nat coordinateFor(const ExecResource &Exec, unsigned OpIdx);
  Nat exprToNat(const Expr &E);
  Nat substLoopConsts(Nat N);

  struct LPlace {
    enum Kind { Global, Shared, Local, NatValue } K = Global;
    const Sym *Root = nullptr;
    Nat Index;   // flat element index
    Nat NatVal;  // NatValue
  };

  std::optional<LPlace> lowerPlace(const PlaceExpr &P);
  kir::ExprPtr placeLoad(const LPlace &P);
  bool placeStore(const LPlace &P, kir::ExprPtr Value);
  kir::MemRef memRefFor(const Sym &Root) const;

  kir::ExprPtr genExpr(const Expr &E);
  static bool containsKind(const Expr &E, ExprKind K);
  bool phaseHasContent() const;
  void closePhase(bool KeepEmpty = false);
  void phaseBreak();
  void softPhaseBreak();
  bool checkLoopBounds(const Nat &Lo, const Nat &Hi);
  bool genPhaseLoop(const ForNatExpr &F, Nat Lo, Nat Hi);
  bool genStmt(const Expr &E);
  /// Exclusive upper bounds of the coordinate variables of the kernel
  /// being lowered (from its grid/block dims), for the schedule passes.
  kir::VarBounds CoordBounds;
  /// The statement lists the schedule passes rewrite: the CUDA body, or
  /// every straight phase with its enclosing literal loop bounds.
  std::vector<kir::BodyRef> scheduleBodies();
  bool runSchedulePasses();
  bool runPasses();
  bool verifyKernel();
};

} // namespace codegen
} // namespace descend

#endif // DESCEND_CODEGEN_LOWERER_H
