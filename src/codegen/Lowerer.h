//===- codegen/Lowerer.h - Shared kernel lowering ---------------*- C++ -*-===//
//
// Part of the Descend reproduction. The lowering core shared by the CUDA
// and simulator backends (Section 5): sched disappears into coordinate
// variables, selections and views compile to raw indices (through
// views/IndexSpace, normalized by the nat simplifier), split becomes an
// if/else over coordinates, sync becomes a barrier (CUDA) or a phase
// boundary (sim). Backends differ only in how memory accesses and the
// surrounding function shells are spelled, which the LowerTarget selects.
//
// For the simulator the result is a structured phase program
// (codegen/PhaseIR.h): a `for` whose body synchronizes becomes one
// PhaseLoop with a constant number of StraightPhase children instead of
// O(trip count) unrolled phase bodies, and its bounds need not be
// literals. Only loops whose nat arithmetic must fold per iteration —
// split positions or 2^i strides mentioning the loop variable — are
// still unrolled (and those genuinely require static bounds).
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_CODEGEN_LOWERER_H
#define DESCEND_CODEGEN_LOWERER_H

#include "ast/Item.h"
#include "codegen/PhaseIR.h"
#include "exec/ExecResource.h"
#include "views/View.h"

#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace descend {
namespace codegen {

/// Which backend the Lowerer emits for.
enum class LowerTarget { Cuda, Sim };

/// C++ spelling of a Descend scalar type.
const char *cppScalarType(ScalarKind K);

/// True when the Nat contains an unfolded Pow node (cannot be printed as
/// C++; '^' means xor there).
bool containsPow(const Nat &N);

/// C++ literal for a float value of kind \p K (F32 gets the 'f' suffix).
std::string floatLiteral(double V, ScalarKind K);

/// Extracts the array-nest dimensions and element scalar type of a kernel
/// parameter / allocation type.
bool arrayNest(const TypeRef &T, std::vector<Nat> &Dims, ScalarKind &Elem);

/// A lowering-time symbol.
struct Sym {
  enum Kind { GlobalBuf, SharedBuf, Local, ExecVar, NatVar } K = Local;
  std::string CppName;
  ScalarKind Elem = ScalarKind::F64;
  std::vector<Nat> Dims;    // GlobalBuf / SharedBuf
  size_t ByteBase = 0;      // SharedBuf: offset in the shared arena
  size_t LocalOff = 0;      // Local: offset in the per-thread arena region
  bool Uniq = false;        // GlobalBuf: unique reference?
  // ExecVar:
  ExecResource Exec = ExecResource::cpuThread();
  unsigned OpsBegin = 0, OpsEnd = 0;
  // NatVar:
  Nat ConstVal; // set while unrolled
};

/// Lowers one GPU grid function into a linear CUDA body or a sequence of
/// simulator phases.
class Lowerer {
public:
  Lowerer(const Module &Mod, LowerTarget B) : Mod(Mod), B(B) {
    Views.addModuleViews(Mod);
  }

  bool runKernel(const FnDef &Fn);

  // Results for the kernel just lowered.
  PhaseProgramIR Program;               // sim: structured phase program
  std::string CudaBody;                 // cuda: linear body
  size_t SharedBytes = 0;               // shared allocations
  size_t LocalBytesPerThread = 0;       // per-thread register arena
  std::string Error;

private:
  const Module &Mod;
  LowerTarget B;
  ViewRegistry Views;

  std::map<std::string, std::vector<Sym>> Syms;
  std::vector<std::vector<std::string>> Scopes;
  ExecResource CurExec = ExecResource::cpuThread();
  unsigned ThreadsPerBlock = 1;
  unsigned NextLocalUid = 0;
  /// Live phase-spanning locals: (C++ name, element type, arena offset).
  struct LiveLocal {
    std::string CppName;
    ScalarKind Elem;
    size_t Off;
    unsigned ScopeDepth;
  };
  std::vector<LiveLocal> LiveLocals;

  std::ostringstream Out; // current phase (sim) or whole body (cuda)
  unsigned Indent = 1;

  /// Phase-program construction (sim): the innermost node list under
  /// construction (Program.Nodes at the bottom, then the Children of each
  /// open PhaseLoop), the PhaseLoop nesting depth (= next slot), and the
  /// Out length right after the current phase's reload preamble (content
  /// beyond the mark means the phase is non-empty).
  std::vector<std::vector<PhaseNode> *> NodeStack;
  unsigned LoopDepth = 0;
  size_t PhaseContentMark = 0;
  /// The exact reload/spill lines emitted into the current phase, per
  /// local C++ name — recorded by the emitter itself so dead pairs can be
  /// elided by exact-line match (no pattern matching on generated text).
  std::map<std::string, std::vector<std::string>> PhaseLocalLines;

  bool fail(const std::string &Msg);
  void line(const std::string &S);

  void pushScope();
  void popScope();
  Sym &bind(const std::string &Name, Sym S);
  Sym *lookup(const std::string &Name);

  std::string axisVarName(unsigned Stage, Axis A) const;
  Nat coordinateFor(const ExecResource &Exec, unsigned OpIdx);
  Nat exprToNat(const Expr &E);
  Nat substLoopConsts(Nat N);
  std::string natToCpp(const Nat &N);

  struct LPlace {
    enum Kind { Global, Shared, Local, NatValue } K = Global;
    const Sym *Root = nullptr;
    Nat Index;   // flat element index
    Nat NatVal;  // NatValue
  };

  std::optional<LPlace> lowerPlace(const PlaceExpr &P);
  std::string placeLoad(const LPlace &P);
  bool placeStore(const LPlace &P, const std::string &Value);

  std::optional<std::string> genExpr(const Expr &E);
  static bool containsKind(const Expr &E, ExprKind K);
  std::string renderLine(const std::string &S) const;
  void localLine(const std::string &S, const std::string &CppName);
  std::string elideDeadSpills(std::string Phase) const;
  void pushStraightPhase();
  void phaseBreak();
  void softPhaseBreak();
  bool checkLoopBounds(const Nat &Lo, const Nat &Hi);
  bool genPhaseLoop(const ForNatExpr &F, Nat Lo, Nat Hi);
  bool genStmt(const Expr &E);
};

} // namespace codegen
} // namespace descend

#endif // DESCEND_CODEGEN_LOWERER_H
