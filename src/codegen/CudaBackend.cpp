//===- codegen/CudaBackend.cpp - CUDA backend --------------------------------===//
//
// The `cuda` backend (Section 5): GPU grid functions become __global__
// kernels; sched disappears (the bound execution resource becomes
// blockIdx/threadIdx), selections and views compile to raw indices, split
// becomes an if/else over coordinates, sync becomes __syncthreads(). A
// for-nat whose body merely synchronizes keeps its loop structure — a
// real `for` with __syncthreads() inside — and only split-containing or
// 2^i-striding loops are unrolled (see codegen/Lowerer.h). CPU functions
// become host C++ using the CUDA runtime API.
//
//===----------------------------------------------------------------------===//

#include "codegen/Backend.h"
#include "codegen/Lowerer.h"

#include "support/StringUtils.h"

#include <sstream>

using namespace descend;
using namespace descend::codegen;

namespace {

/// Minimal host-side emitter for cpu.thread functions: covers the memory
/// API of Section 3.4 and kernel launches of Section 3.5.
class HostEmitter {
public:
  HostEmitter(const Module &M, std::ostringstream &OS) : M(M), OS(OS) {}

  bool emit(const FnDef &Fn) {
    OS << "void " << Fn.Name << "(";
    for (size_t I = 0; I != Fn.Params.size(); ++I) {
      if (I)
        OS << ", ";
      emitParam(Fn.Params[I]);
    }
    OS << ") {\n";
    bool Ok = emitBlock(*cast<BlockExpr>(Fn.Body.get()), 1);
    OS << "}\n";
    return Ok;
  }

  std::string Error;

private:
  const Module &M;
  std::ostringstream &OS;
  std::map<std::string, std::string> VarTypes; // host vars -> C type

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  void indent(unsigned N) {
    for (unsigned I = 0; I != N; ++I)
      OS << "  ";
  }

  void emitParam(const FnParam &P) {
    std::vector<Nat> Dims;
    ScalarKind Elem = ScalarKind::F64;
    if (const auto *Ref = dyn_cast<RefType>(P.Ty.get());
        Ref && arrayNest(Ref->Pointee, Dims, Elem)) {
      OS << (Ref->Own == Ownership::Shrd ? "const " : "")
         << cppScalarType(Elem) << " *" << P.Name;
      return;
    }
    if (const auto *S = dyn_cast<ScalarType>(P.Ty.get())) {
      OS << cppScalarType(S->Scalar) << " " << P.Name;
      return;
    }
    OS << "/*unsupported*/ int " << P.Name;
  }

  bool emitBlock(const BlockExpr &Blk, unsigned Depth) {
    for (const ExprPtr &S : Blk.Stmts)
      if (!emitStmt(*S, Depth))
        return false;
    return true;
  }

  bool emitStmt(const Expr &E, unsigned Depth) {
    switch (E.kind()) {
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(&E);
      return emitLet(*L, Depth);
    }
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(&E);
      return emitCall(*C, Depth, /*LetName=*/"");
    }
    case ExprKind::Block:
      indent(Depth);
      OS << "{\n";
      if (!emitBlock(*cast<BlockExpr>(&E), Depth + 1))
        return false;
      indent(Depth);
      OS << "}\n";
      return true;
    default:
      return fail("unsupported host statement: " + exprToString(E));
    }
  }

  bool emitLet(const LetExpr &L, unsigned Depth) {
    const auto *C = dyn_cast<CallExpr>(L.Init.get());
    if (C)
      return emitCall(*C, Depth, L.Name);
    return fail("unsupported host let initializer: " +
                exprToString(*L.Init));
  }

  std::string argName(const Expr &E) {
    if (const auto *B = dyn_cast<BorrowExpr>(&E))
      return cast<PlaceExpr>(B->Place.get())->rootVar();
    if (const auto *P = dyn_cast<PlaceExpr>(&E))
      return P->rootVar();
    return "";
  }

  bool emitCall(const CallExpr &C, unsigned Depth, const std::string &Let) {
    if (C.Callee == "CpuHeap::new") {
      const auto *Init = dyn_cast<ArrayInitExpr>(C.Args[0].get());
      if (!Init)
        return fail("CpuHeap::new expects an array initializer");
      const auto *ElemTy =
          dyn_cast_if_present<ScalarType>(Init->Elem->Ty.get());
      std::string CT = ElemTy ? cppScalarType(ElemTy->Scalar) : "double";
      indent(Depth);
      OS << "std::vector<" << CT << "> " << Let << "("
         << Init->Count.simplified().str() << ", "
         << exprToString(*Init->Elem) << ");\n";
      VarTypes[Let] = CT;
      return true;
    }
    if (C.Callee == "GpuGlobal::alloc_copy") {
      std::string Src = argName(*C.Args[0]);
      std::string CT = VarTypes.count(Src) ? VarTypes[Src] : "double";
      indent(Depth);
      OS << CT << " *" << Let << ";\n";
      indent(Depth);
      OS << "cudaMalloc(&" << Let << ", " << Src << ".size() * sizeof(" << CT
         << "));\n";
      indent(Depth);
      OS << "cudaMemcpy(" << Let << ", " << Src << ".data(), " << Src
         << ".size() * sizeof(" << CT << "), cudaMemcpyHostToDevice);\n";
      VarTypes[Let] = CT;
      return true;
    }
    if (C.Callee == "copy_mem_to_host" || C.Callee == "copy_to_gpu") {
      bool ToHost = C.Callee == "copy_mem_to_host";
      std::string Dst = argName(*C.Args[0]);
      std::string Src = argName(*C.Args[1]);
      std::string CT = VarTypes.count(ToHost ? Dst : Src)
                           ? VarTypes[ToHost ? Dst : Src]
                           : "double";
      indent(Depth);
      if (ToHost)
        OS << "cudaMemcpy(" << Dst << ".data(), " << Src << ", " << Dst
           << ".size() * sizeof(" << CT << "), cudaMemcpyDeviceToHost);\n";
      else
        OS << "cudaMemcpy(" << Dst << ", " << Src << ".data(), " << Src
           << ".size() * sizeof(" << CT << "), cudaMemcpyHostToDevice);\n";
      return true;
    }
    if (C.IsLaunch) {
      auto DimOf = [&](const Dim &D) {
        auto Get = [&](Axis A) -> std::string {
          return D.hasAxis(A) ? D.extent(A).simplified().str() : "1";
        };
        return "dim3(" + Get(Axis::X) + ", " + Get(Axis::Y) + ", " +
               Get(Axis::Z) + ")";
      };
      indent(Depth);
      OS << C.Callee << "<<<" << DimOf(C.LaunchGrid) << ", "
         << DimOf(C.LaunchBlock) << ">>>(";
      for (size_t I = 0; I != C.Args.size(); ++I) {
        if (I)
          OS << ", ";
        OS << argName(*C.Args[I]);
      }
      OS << ");\n";
      indent(Depth);
      OS << "cudaDeviceSynchronize();\n";
      return true;
    }
    return fail("unsupported host call: " + C.Callee);
  }
};

class CudaBackend final : public Backend {
public:
  const char *name() const override { return "cuda"; }
  const char *description() const override {
    return "CUDA C++ (__global__ kernels + host functions)";
  }
  GenResult emit(const Module &M, const BackendOptions &Opts) const override;
};

GenResult CudaBackend::emit(const Module &M, const BackendOptions &) const {
  GenResult R;
  std::ostringstream OS;
  OS << "// Generated by descendc --emit=cuda. Do not edit.\n";
  OS << "#include <cstdint>\n#include <cstdio>\n#include <vector>\n";
  OS << "#include <cuda_runtime.h>\n\n";

  for (const auto &FnPtr : M.Fns) {
    const FnDef &Fn = *FnPtr;
    if (!Fn.isGpuFn())
      continue;
    Lowerer L(M, LowerTarget::Cuda);
    if (!L.runKernel(Fn)) {
      R.Error = "while lowering `" + Fn.Name + "`: " + L.Error;
      return R;
    }
    OS << "/// " << Fn.signature() << "\n";
    OS << "__global__ void " << Fn.Name << "(";
    for (size_t I = 0; I != Fn.Params.size(); ++I) {
      if (I)
        OS << ", ";
      const auto *Ref = cast<RefType>(Fn.Params[I].Ty.get());
      std::vector<Nat> Dims;
      ScalarKind Elem = ScalarKind::F64;
      arrayNest(Ref->Pointee, Dims, Elem);
      OS << (Ref->Own == Ownership::Shrd ? "const " : "")
         << cppScalarType(Elem) << " *" << Fn.Params[I].Name;
    }
    OS << ") {\n" << L.CudaBody << "}\n\n";
  }

  for (const auto &FnPtr : M.Fns) {
    const FnDef &Fn = *FnPtr;
    if (!Fn.isCpuFn())
      continue;
    HostEmitter H(M, OS);
    if (!H.emit(Fn)) {
      R.Error = "while emitting host `" + Fn.Name + "`: " + H.Error;
      return R;
    }
    OS << "\n";
  }

  R.Ok = true;
  R.Code = OS.str();
  return R;
}

} // namespace

namespace descend::codegen {
std::unique_ptr<Backend> createCudaBackend() {
  return std::make_unique<CudaBackend>();
}
} // namespace descend::codegen
