//===- typeck/TypeChecker.h - Descend's extended type system ----*- C++ -*-===//
//
// Part of the Descend reproduction. Implements the typing judgement of
// Section 4:
//
//   Δ ; Γg ; Γl ; Θ | e_f : ε ; e | A  ⊢  t : δ  ⊣  Γl' | A'
//
// with flow-sensitive local environments (moves, borrows) and the access
// environment A mapping execution resources to accessed place expressions.
// The crucial access_safety_check of Fig. 7 performs, in order:
//
//   1. Narrowing check  — a uniquely accessed place must select a distinct
//      part for every `forall` level between the owner's scope and the
//      accessing execution resource (Section 3.3).
//   2. Access conflict check — the new access must not overlap a prior
//      access by another execution resource recorded in A (data races).
//   3. Borrow checking  — standard Rust rules: no use of moved values, no
//      conflicting unique borrows, writes only through unique access.
//
// Synchronization (sync) clears the accesses of the synchronized block's
// threads from A, which is both how barriers *permit* subsequent
// communication and how missing barriers are detected (the stale access
// conflicts).
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_TYPECK_TYPECHECKER_H
#define DESCEND_TYPECK_TYPECHECKER_H

#include "ast/Item.h"
#include "exec/ExecResource.h"
#include "places/PlacePath.h"
#include "support/Diagnostics.h"
#include "views/View.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace descend {

class SourceManager;

/// Side table the checker fills in for later phases (code generation):
/// resolved execution resources for sched/split nodes and selects, and the
/// view chains of PlaceView nodes.
struct TypeCheckInfo {
  /// Exec resource for each sched/split binder occurrence (keyed by the
  /// SchedExpr/SplitExpr node and arm).
  std::map<const Expr *, ExecResource> SchedExec;
  std::map<const Expr *, ExecResource> SplitFstExec;
  std::map<const Expr *, ExecResource> SplitSndExec;
  /// Resolved primitive chains for each PlaceView node.
  std::map<const PlaceView *, ViewChain> Views;
  /// Sched axes for each select's exec variable occurrence.
  std::map<const PlaceSelect *, std::vector<Axis>> SelectAxes;
  /// Stage (0 blocks / 1 threads) for each select.
  std::map<const PlaceSelect *, unsigned> SelectStage;
};

/// Checks a module. Reports user errors through the DiagnosticEngine;
/// check() returns false if any error was produced.
class TypeChecker {
public:
  TypeChecker(const SourceManager &SM, DiagnosticEngine &Diags);
  ~TypeChecker();

  bool check(Module &M);

  const TypeCheckInfo &info() const { return Info; }

private:
  struct Impl;
  std::unique_ptr<Impl> P;
  TypeCheckInfo Info;
};

} // namespace descend

#endif // DESCEND_TYPECK_TYPECHECKER_H
