//===- typeck/TypeChecker.cpp - Flow-sensitive checking ---------------------===//

#include "typeck/TypeChecker.h"

#include "support/SourceManager.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace descend;

namespace {

/// A local binding: program variables, sched/split execution-resource
/// binders and for-nat loop variables share the scope mechanism.
struct VarInfo {
  std::string Name;
  unsigned BindingId = 0;
  unsigned ScopeDepth = 0;
  TypeRef Ty;
  bool Moved = false;

  // Execution resource at the binding site: determines which foralls a
  // unique access must discharge by selection (narrowing).
  ExecResource OwnerExec = ExecResource::cpuThread();

  // Exec binders (sched/split arms, the function's grid).
  bool IsExecVar = false;
  ExecResource Exec = ExecResource::cpuThread();
  // Ops the binder added relative to its sched target (selections over
  // this binder discharge exactly these).
  unsigned OpsBegin = 0, OpsEnd = 0;
  std::vector<Axis> SchedAxes;       // in sched order
  std::vector<Nat> SelectExtents;    // extent per sched axis

  // For-nat loop variables.
  bool IsNatVar = false;
  Nat LoopLo, LoopHi; // i in [LoopLo, LoopHi)
  Nat ConstVal;       // set while the loop is unrolled iteration by iteration
};

/// One entry of the access environment A (plus active borrows, which are
/// the Γl borrow part folded into the same conflict check).
struct AccessRecord {
  ExecResource Exec = ExecResource::cpuThread();
  PlacePath Path;
  Ownership Mode = Ownership::Shrd;
  SourceRange Range;
  bool IsBorrow = false;
  bool StatementTemporary = false; // borrow for the duration of a call
  unsigned ScopeDepth = 0;
};

} // namespace

struct TypeChecker::Impl {
  const SourceManager &SM;
  DiagnosticEngine &Diags;
  TypeCheckInfo &Info;

  Module *Mod = nullptr;
  ViewRegistry Views;

  // Scoping.
  std::map<std::string, std::vector<VarInfo>> VarStacks;
  std::vector<std::vector<std::string>> Scopes;
  unsigned NextBindingId = 1;

  // Access environment A + borrows.
  std::vector<AccessRecord> Accesses;

  // Current function context.
  const FnDef *CurFn = nullptr;
  ExecResource CurExec = ExecResource::cpuThread();

  Impl(const SourceManager &SM, DiagnosticEngine &Diags, TypeCheckInfo &Info)
      : SM(SM), Diags(Diags), Info(Info) {}

  //===--------------------------------------------------------------------===//
  // Scope helpers
  //===--------------------------------------------------------------------===//

  void pushScope() { Scopes.emplace_back(); }

  void popScope() {
    assert(!Scopes.empty());
    unsigned Depth = Scopes.size();
    for (const std::string &Name : Scopes.back()) {
      auto &Stack = VarStacks[Name];
      assert(!Stack.empty());
      Stack.pop_back();
    }
    // Borrows created in this scope expire with it.
    std::erase_if(Accesses, [&](const AccessRecord &R) {
      return R.IsBorrow && R.ScopeDepth >= Depth;
    });
    Scopes.pop_back();
  }

  VarInfo &bind(VarInfo Info) {
    assert(!Scopes.empty());
    Info.BindingId = NextBindingId++;
    Info.ScopeDepth = Scopes.size();
    Scopes.back().push_back(Info.Name);
    auto &Stack = VarStacks[Info.Name];
    Stack.push_back(std::move(Info));
    return Stack.back();
  }

  VarInfo *lookup(const std::string &Name) {
    auto It = VarStacks.find(Name);
    if (It == VarStacks.end() || It->second.empty())
      return nullptr;
    return &It->second.back();
  }

  //===--------------------------------------------------------------------===//
  // Small utilities
  //===--------------------------------------------------------------------===//

  bool isIntegerType(const TypeRef &T) const {
    const auto *S = dyn_cast_if_present<ScalarType>(T.get());
    if (!S)
      return false;
    switch (S->Scalar) {
    case ScalarKind::I32:
    case ScalarKind::I64:
    case ScalarKind::U32:
    case ScalarKind::U64:
      return true;
    default:
      return false;
    }
  }

  bool isNumericType(const TypeRef &T) const {
    const auto *S = dyn_cast_if_present<ScalarType>(T.get());
    if (!S)
      return false;
    return S->Scalar != ScalarKind::Bool && S->Scalar != ScalarKind::Unit;
  }

  /// Converts an index expression into a Nat when it is built from
  /// literals, for-nat loop variables and arithmetic. Null otherwise.
  Nat exprToNat(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Literal: {
      const auto *L = cast<LiteralExpr>(&E);
      if (L->Scalar == ScalarKind::F32 || L->Scalar == ScalarKind::F64 ||
          L->Scalar == ScalarKind::Bool || L->Scalar == ScalarKind::Unit)
        return Nat();
      return Nat::lit(L->IntValue);
    }
    case ExprKind::PlaceVar: {
      const auto *V = cast<PlaceVar>(&E);
      if (const VarInfo *I = lookup(V->Name); I && I->IsNatVar)
        return I->ConstVal ? I->ConstVal : Nat::var(V->Name);
      return Nat();
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(&E);
      Nat L = exprToNat(*B->Lhs);
      Nat R = exprToNat(*B->Rhs);
      if (!L || !R)
        return Nat();
      switch (B->Op) {
      case BinOpKind::Add:
        return L + R;
      case BinOpKind::Sub:
        return L - R;
      case BinOpKind::Mul:
        return L * R;
      case BinOpKind::Div:
        return L / R;
      case BinOpKind::Mod:
        return L % R;
      default:
        return Nat();
      }
    }
    default:
      return Nat();
    }
  }

  /// Substitutes in-scope unrolled loop constants (iteration values) into
  /// \p N: split positions and view arguments become concrete per
  /// iteration.
  Nat resolveNat(Nat N) {
    if (!N)
      return N;
    std::vector<std::string> Vars;
    N.collectVars(Vars);
    std::map<std::string, Nat> Subst;
    for (const std::string &V : Vars)
      if (const VarInfo *I = lookup(V); I && I->IsNatVar && I->ConstVal)
        Subst[V] = I->ConstVal;
    return Subst.empty() ? N : N.substitute(Subst).simplified();
  }

  /// Substitutes every in-scope for-nat loop variable by its maximal value
  /// (Hi - 1). Used for conservative upper-bound reasoning.
  Nat substituteLoopMaxima(Nat N) {
    std::vector<std::string> Vars;
    N.collectVars(Vars);
    std::map<std::string, Nat> Subst;
    for (const std::string &V : Vars)
      if (const VarInfo *I = lookup(V); I && I->IsNatVar && I->LoopHi)
        Subst[V] = Nat::sub(I->LoopHi, Nat::lit(1));
    return Subst.empty() ? N : N.substitute(Subst);
  }

  //===--------------------------------------------------------------------===//
  // access_safety_check (Fig. 7)
  //===--------------------------------------------------------------------===//

  /// Step 1: narrowing. A unique access must select a distinct part for
  /// every forall level between the owner's exec and the current exec.
  /// Additionally, on the GPU every axis of the hierarchy must actually be
  /// scheduled (or have extent 1): an axis never descended over means the
  /// same instruction executes once per instance along it, so a unique
  /// access would be duplicated.
  bool narrowingCheck(const PlacePath &Path, const VarInfo &Root,
                      SourceRange Range) {
    if (CurExec.isGpu()) {
      for (unsigned Stage = 0; Stage != 2; ++Stage) {
        const Dim &D = Stage == 0 ? CurExec.gridDim() : CurExec.blockDim();
        for (Axis A : {Axis::X, Axis::Y, Axis::Z}) {
          if (!D.hasAxis(A))
            continue;
          Nat Remaining = CurExec.remainingExtent(Stage, A);
          if (Remaining.isNull()) // consumed by forall
            continue;
          if (Nat::proveEq(Remaining, Nat::lit(1)))
            continue;
          Diags
              .error(DiagCode::NarrowingViolated, Range,
                     strfmt("narrowing violated: unique access to `%s` is "
                            "collectively performed by %s instances along "
                            "the unscheduled %s dimension",
                            Path.str().c_str(), Remaining.str().c_str(),
                            axisName(A)))
              .note(strfmt("schedule over %s first (sched(%s) ...)",
                           axisName(A), axisName(A)));
          return false;
        }
      }
    }
    unsigned OwnerOps = Root.OwnerExec.numOps();
    const auto &Ops = CurExec.ops();
    for (unsigned I = OwnerOps; I < Ops.size(); ++I) {
      if (Ops[I].Kind != ExecOpKind::Forall)
        continue;
      // Extent-1 foralls have a single instance and need no selection.
      if (Ops[I].Extent && Nat::proveEq(Ops[I].Extent, Nat::lit(1)))
        continue;
      bool Discharged = false;
      for (const PlaceStep &S : Path.Steps)
        if (S.Kind == PlaceStepKind::Select && S.ExecOpsBegin <= I &&
            I < S.ExecOpsEnd) {
          Discharged = true;
          break;
        }
      if (!Discharged) {
        Diags
            .error(DiagCode::NarrowingViolated, Range,
                   strfmt("narrowing violated: unique access to `%s` is "
                          "shared by all instances of `forall(%s)`",
                          Path.str().c_str(), axisName(Ops[I].Ax)))
            .note(strfmt("each of the %s instances at this level of the "
                         "execution hierarchy would gain unique access to "
                         "the same memory; select a distinct part per "
                         "instance",
                         Ops[I].Extent ? Ops[I].Extent.str().c_str() : "?"));
        return false;
      }
    }
    return true;
  }

  /// Steps 2 and 3: conflicts with recorded accesses and active borrows.
  bool conflictCheck(const PlacePath &Path, Ownership Mode,
                     SourceRange Range) {
    for (const AccessRecord &R : Accesses) {
      if (Mode == Ownership::Shrd && R.Mode == Ownership::Shrd)
        continue;
      PlaceRelation Rel = comparePlaces(Path, R.Path);
      if (Rel == PlaceRelation::Disjoint)
        continue;
      if (Rel == PlaceRelation::Equal && !R.IsBorrow)
        continue; // same per-instance access set; ordered by program order
      if (Rel == PlaceRelation::Equal && R.IsBorrow &&
          ExecResource::equal(R.Exec, CurExec) &&
          !(Mode == Ownership::Uniq || R.Mode == Ownership::Uniq))
        continue;
      if (R.IsBorrow) {
        Diags
            .error(DiagCode::ConflictingBorrow, Range,
                   strfmt("cannot access `%s` while `%s` is borrowed%s",
                          Path.str().c_str(), R.Path.str().c_str(),
                          R.Mode == Ownership::Uniq ? " uniquely" : ""))
            .note(R.Range, "borrow occurs here");
        return false;
      }
      Diags
          .error(DiagCode::ConflictingMemoryAccess, Range,
                 "conflicting memory access")
          .note(R.Range, strfmt("cannot select memory because of a "
                                "conflicting prior selection here: `%s`",
                                R.Path.str().c_str()));
      return false;
    }
    return true;
  }

  void recordAccess(PlacePath Path, Ownership Mode, SourceRange Range,
                    bool IsBorrow, bool StatementTemporary) {
    AccessRecord R;
    R.Exec = CurExec;
    R.Path = std::move(Path);
    R.Mode = Mode;
    R.Range = Range;
    R.IsBorrow = IsBorrow;
    R.StatementTemporary = StatementTemporary;
    R.ScopeDepth = Scopes.size();
    Accesses.push_back(std::move(R));
  }

  //===--------------------------------------------------------------------===//
  // Place typing (Fig. 3 / T-Read / T-Write)
  //===--------------------------------------------------------------------===//

  struct PlaceResult {
    TypeRef Ty;
    PlacePath Path;
    const VarInfo *Root = nullptr;
    bool ThroughSharedRef = false; // any deref of a non-unique reference
    bool ThroughBroadcast = false; // any repeat view in the chain
  };

  /// Flattens the place into root-to-leaf order.
  static std::vector<const PlaceExpr *> placeChain(const PlaceExpr &P) {
    std::vector<const PlaceExpr *> Chain;
    for (const PlaceExpr *Cur = &P; Cur; Cur = basePlace(Cur))
      Chain.push_back(Cur);
    std::reverse(Chain.begin(), Chain.end());
    return Chain;
  }

  /// Inserts the implicit dereference steps the surface syntax omits
  /// (views/selections/indices apply through references and boxes, as in
  /// `input.group_by_tile::<32,32>` where input is a reference).
  bool autoDeref(PlaceResult &R, SourceRange Range) {
    while (true) {
      if (const auto *Ref = dyn_cast_if_present<RefType>(R.Ty.get())) {
        if (!checkDerefContext(Ref->Mem, R.Path, Range))
          return false;
        if (Ref->Own == Ownership::Shrd)
          R.ThroughSharedRef = true;
        R.Path.Steps.push_back(PlaceStep::deref());
        R.Ty = Ref->Pointee;
        continue;
      }
      if (const auto *Box = dyn_cast_if_present<BoxType>(R.Ty.get())) {
        if (!checkDerefContext(Box->Mem, R.Path, Range))
          return false;
        R.Path.Steps.push_back(PlaceStep::deref());
        R.Ty = Box->Elem;
        continue;
      }
      return true;
    }
  }

  /// The separated-memories check of Section 3.4: dereferencing requires
  /// the matching execution context.
  bool checkDerefContext(const Memory &Mem, const PlacePath &Path,
                         SourceRange Range) {
    bool OnGpu = CurExec.isGpu();
    if (Mem.Kind == MemoryKind::CpuMem && OnGpu) {
      Diags
          .error(DiagCode::CannotDereference, Range,
                 strfmt("cannot dereference `%s` pointing to `cpu.mem`",
                        Path.str().c_str()))
          .note(strfmt("executed by `%s`", CurExec.str().c_str()))
          .note("dereferencing pointer in `cpu.mem` memory");
      return false;
    }
    if (Mem.isGpu() && !OnGpu) {
      Diags
          .error(DiagCode::CannotDereference, Range,
                 strfmt("cannot dereference `%s` pointing to `%s` on the CPU",
                        Path.str().c_str(), Mem.str().c_str()))
          .note("GPU memory is only accessible from GPU code");
      return false;
    }
    return true;
  }

  /// Types a place expression, building the resolved path. Does not record
  /// an access; the callers decide the mode (read/write/borrow).
  std::optional<PlaceResult> typePlace(const PlaceExpr &P) {
    std::vector<const PlaceExpr *> Chain = placeChain(P);
    PlaceResult R;

    for (const PlaceExpr *StepExpr : Chain) {
      switch (StepExpr->kind()) {
      case ExprKind::PlaceVar: {
        const auto *V = cast<PlaceVar>(StepExpr);
        VarInfo *I = lookup(V->Name);
        if (!I) {
          Diags.error(DiagCode::UnknownVariable, V->Range,
                      strfmt("unknown variable `%s`", V->Name.c_str()));
          return std::nullopt;
        }
        if (I->IsExecVar) {
          Diags.error(DiagCode::MismatchedTypes, V->Range,
                      strfmt("`%s` is an execution resource, not a value",
                             V->Name.c_str()));
          return std::nullopt;
        }
        if (I->Moved) {
          Diags
              .error(DiagCode::UseOfMovedValue, V->Range,
                     strfmt("use of moved value `%s`", V->Name.c_str()))
              .note("ownership was transferred earlier; copying is only "
                    "allowed for copyable data types");
          return std::nullopt;
        }
        if (I->IsNatVar) {
          // Loop variables read as i32 values.
          R.Ty = makeScalar(ScalarKind::I32);
          R.Path.Root = V->Name;
          R.Path.RootBindingId = I->BindingId;
          R.Root = I;
          break;
        }
        R.Ty = I->Ty;
        R.Path.Root = V->Name;
        R.Path.RootBindingId = I->BindingId;
        R.Root = I;
        break;
      }
      case ExprKind::PlaceProj: {
        const auto *Proj = cast<PlaceProj>(StepExpr);
        if (!autoDeref(R, Proj->Range))
          return std::nullopt;
        const auto *T = dyn_cast_if_present<TupleType>(R.Ty.get());
        if (!T || T->Elems.size() < 2) {
          Diags.error(DiagCode::NotATuple, Proj->Range,
                      strfmt("`%s` is not a tuple",
                             R.Path.str().c_str()));
          return std::nullopt;
        }
        R.Ty = T->Elems[Proj->Which];
        R.Path.Steps.push_back(PlaceStep::proj(Proj->Which));
        break;
      }
      case ExprKind::PlaceDeref: {
        const auto *D = cast<PlaceDeref>(StepExpr);
        if (const auto *Ref = dyn_cast_if_present<RefType>(R.Ty.get())) {
          if (!checkDerefContext(Ref->Mem, R.Path, D->Range))
            return std::nullopt;
          if (Ref->Own == Ownership::Shrd)
            R.ThroughSharedRef = true;
          R.Ty = Ref->Pointee;
          R.Path.Steps.push_back(PlaceStep::deref());
          break;
        }
        if (const auto *Box = dyn_cast_if_present<BoxType>(R.Ty.get())) {
          if (!checkDerefContext(Box->Mem, R.Path, D->Range))
            return std::nullopt;
          R.Ty = Box->Elem;
          R.Path.Steps.push_back(PlaceStep::deref());
          break;
        }
        Diags.error(DiagCode::NotAReference, D->Range,
                    strfmt("cannot dereference non-reference `%s`",
                           R.Path.str().c_str()));
        return std::nullopt;
      }
      case ExprKind::PlaceIndex: {
        const auto *Idx = cast<PlaceIndex>(StepExpr);
        if (!autoDeref(R, Idx->Range))
          return std::nullopt;
        TypeRef Elem;
        Nat Size;
        if (const auto *A = dyn_cast_if_present<ArrayType>(R.Ty.get())) {
          Elem = A->Elem;
          Size = A->Size;
        } else if (const auto *A =
                       dyn_cast_if_present<ArrayViewType>(R.Ty.get())) {
          Elem = A->Elem;
          Size = A->Size;
        } else {
          Diags.error(DiagCode::NotAnArray, Idx->Range,
                      strfmt("`%s` is not an array", R.Path.str().c_str()));
          return std::nullopt;
        }
        // Type the index expression (records reads of loop vars etc.).
        TypeRef IdxTy = checkExpr(*Idx->Index);
        if (IdxTy && !isIntegerType(IdxTy)) {
          Diags.error(DiagCode::MismatchedTypes, Idx->Index->Range,
                      strfmt("array index must be an integer, found `%s`",
                             IdxTy->str().c_str()));
          return std::nullopt;
        }
        Nat IdxNat = resolveNat(exprToNat(*Idx->Index));
        if (IdxNat) {
          // Conservative bounds check: substitute loop maxima.
          Nat MaxIdx = substituteLoopMaxima(IdxNat);
          auto InBounds = Nat::proveLt(MaxIdx, Size);
          if (!InBounds || !*InBounds) {
            Diags
                .error(DiagCode::NatCannotProve, Idx->Range,
                       strfmt("cannot prove index `%s` within array bound "
                              "`%s`",
                              IdxNat.str().c_str(), Size.str().c_str()))
                .note("indices must be statically provable in range");
            return std::nullopt;
          }
        }
        R.Ty = Elem;
        R.Path.Steps.push_back(
            PlaceStep::index(IdxNat, exprToString(*Idx->Index)));
        break;
      }
      case ExprKind::PlaceSelect: {
        const auto *Sel = cast<PlaceSelect>(StepExpr);
        if (!autoDeref(R, Sel->Range))
          return std::nullopt;
        VarInfo *ExecVar = lookup(Sel->ExecName);
        if (!ExecVar || !ExecVar->IsExecVar) {
          Diags.error(DiagCode::UnknownVariable, Sel->Range,
                      strfmt("`%s` is not an execution resource in scope",
                             Sel->ExecName.c_str()));
          return std::nullopt;
        }
        if (ExecVar->SchedAxes.empty()) {
          Diags.error(DiagCode::SelectShapeMismatch, Sel->Range,
                      strfmt("cannot select with `%s`: it was not bound by "
                             "sched",
                             Sel->ExecName.c_str()));
          return std::nullopt;
        }
        if (!ExecResource::isPrefixOf(ExecVar->Exec, CurExec)) {
          Diags.error(DiagCode::SelectShapeMismatch, Sel->Range,
                      strfmt("`%s` does not execute this code",
                             Sel->ExecName.c_str()));
          return std::nullopt;
        }
        // Consume one array dimension per sched axis, checking extents.
        for (size_t K = 0; K != ExecVar->SchedAxes.size(); ++K) {
          TypeRef Elem;
          Nat Size;
          if (const auto *A = dyn_cast_if_present<ArrayType>(R.Ty.get())) {
            Elem = A->Elem;
            Size = A->Size;
          } else if (const auto *A =
                         dyn_cast_if_present<ArrayViewType>(R.Ty.get())) {
            Elem = A->Elem;
            Size = A->Size;
          } else {
            Diags.error(DiagCode::SelectShapeMismatch, Sel->Range,
                        strfmt("selection by `%s` needs %zu array "
                               "dimensions, found `%s`",
                               Sel->ExecName.c_str(),
                               ExecVar->SchedAxes.size(),
                               R.Ty ? R.Ty->str().c_str() : "<error>"));
            return std::nullopt;
          }
          const Nat &Expected = ExecVar->SelectExtents[K];
          if (!Nat::proveEq(Size, Expected)) {
            Diags
                .error(DiagCode::SelectShapeMismatch, Sel->Range,
                       strfmt("selection by `%s` along %s expects %s "
                              "elements, found %s",
                              Sel->ExecName.c_str(),
                              axisName(ExecVar->SchedAxes[K]),
                              Expected.str().c_str(), Size.str().c_str()))
                .note("the execution resource must consist of as many "
                      "sub-resources as there are array elements");
            return std::nullopt;
          }
          R.Ty = Elem;
        }
        Info.SelectAxes[Sel] = ExecVar->SchedAxes;
        Info.SelectStage[Sel] =
            ExecVar->OpsBegin < ExecVar->Exec.ops().size()
                ? ExecVar->Exec.ops()[ExecVar->OpsBegin].Stage
                : 0;
        R.Path.Steps.push_back(
            PlaceStep::select(Sel->ExecName, ExecVar->Exec.str(),
                              ExecVar->OpsBegin, ExecVar->OpsEnd));
        break;
      }
      case ExprKind::PlaceView: {
        const auto *View = cast<PlaceView>(StepExpr);
        if (!autoDeref(R, View->Range))
          return std::nullopt;
        std::string Err;
        std::vector<Nat> ViewArgs;
        ViewArgs.reserve(View->NatArgs.size());
        for (const Nat &A : View->NatArgs)
          ViewArgs.push_back(resolveNat(A));
        auto Chain = Views.resolve(View->ViewName, ViewArgs, &Err);
        if (!Chain) {
          Diags.error(DiagCode::UnknownView, View->Range, Err);
          return std::nullopt;
        }
        TypeRef Out = ViewRegistry::applyChainToType(*Chain, R.Ty, &Err);
        if (!Out) {
          Diags.error(DiagCode::ViewSideConditionFailed, View->Range, Err);
          return std::nullopt;
        }
        Info.Views[View] = *Chain;
        for (const auto &Prim : *Chain)
          if (Prim.isBroadcasting())
            R.ThroughBroadcast = true;
        R.Ty = Out;
        R.Path.Steps.push_back(PlaceStep::view(viewChainStr(*Chain)));
        break;
      }
      default:
        assert(false && "not a place expression");
        return std::nullopt;
      }
    }
    return R;
  }

  /// Reads a place as an rvalue (T-Read-By-Copy / move).
  TypeRef readPlace(const PlaceExpr &P) {
    auto R = typePlace(P);
    if (!R)
      return nullptr;
    if (!R->Ty)
      return nullptr;
    if (R->Root->IsNatVar)
      return R->Ty; // loop counters are pure values

    if (!R->Ty->isCopyable()) {
      // Moving is only allowed for whole variables.
      if (!R->Path.Steps.empty()) {
        Diags
            .error(DiagCode::CannotMoveOut, P.Range,
                   strfmt("cannot move out of `%s`", R->Path.str().c_str()))
            .note("only whole variables can be moved; borrow instead");
        return nullptr;
      }
      if (!conflictCheck(R->Path, Ownership::Uniq, P.Range))
        return nullptr;
      VarInfo *I = lookup(R->Path.Root);
      assert(I && "root variable disappeared");
      I->Moved = true;
      return R->Ty;
    }
    if (!conflictCheck(R->Path, Ownership::Shrd, P.Range))
      return nullptr;
    recordAccess(R->Path, Ownership::Shrd, P.Range, /*IsBorrow=*/false,
                 /*StatementTemporary=*/false);
    return R->Ty;
  }

  /// Writes to a place (T-Write).
  bool writePlace(const PlaceExpr &P, const TypeRef &ValueTy,
                  SourceRange Range) {
    auto R = typePlace(P);
    if (!R)
      return false;
    if (R->Root->IsNatVar || R->Root->IsExecVar) {
      Diags.error(DiagCode::CannotAssign, Range,
                  strfmt("cannot assign to `%s`", R->Path.Root.c_str()));
      return false;
    }
    if (R->ThroughSharedRef) {
      Diags
          .error(DiagCode::SharedWriteRejected, Range,
                 strfmt("cannot write to `%s` through a shared reference",
                        R->Path.str().c_str()))
          .note("only unique references (&uniq) permit writing");
      return false;
    }
    if (R->ThroughBroadcast) {
      Diags
          .error(DiagCode::SharedWriteRejected, Range,
                 strfmt("cannot write to `%s` through a broadcasting view",
                        R->Path.str().c_str()))
          .note("repeat views alias every copy onto the same memory");
      return false;
    }
    if (ValueTy && R->Ty && !DataType::equal(R->Ty, ValueTy)) {
      Diags.error(DiagCode::MismatchedTypes, Range,
                  strfmt("mismatched types: expected `%s`, found `%s`",
                         R->Ty->str().c_str(), ValueTy->str().c_str()));
      return false;
    }
    if (!narrowingCheck(R->Path, *R->Root, Range))
      return false;
    if (!conflictCheck(R->Path, Ownership::Uniq, Range))
      return false;
    recordAccess(R->Path, Ownership::Uniq, Range, /*IsBorrow=*/false,
                 /*StatementTemporary=*/false);
    return true;
  }

  /// &p / &uniq p.
  TypeRef borrowPlace(const BorrowExpr &B, bool StatementTemporary) {
    auto R = typePlace(*B.Place);
    if (!R || !R->Ty)
      return nullptr;
    if (B.Own == Ownership::Uniq && R->ThroughSharedRef) {
      Diags.error(DiagCode::SharedWriteRejected, B.Range,
                  strfmt("cannot borrow `%s` uniquely through a shared "
                         "reference",
                         R->Path.str().c_str()));
      return nullptr;
    }
    if (B.Own == Ownership::Uniq &&
        !narrowingCheck(R->Path, *R->Root, B.Range))
      return nullptr;
    if (!conflictCheck(R->Path, B.Own, B.Range))
      return nullptr;

    // Memory space of the borrowed place: unwrap boxes; otherwise the
    // variable's own storage (CPU stack/heap or GPU shared allocation).
    Memory Mem = Memory::cpuMem();
    TypeRef Pointee = R->Ty;
    if (const auto *Box = dyn_cast<BoxType>(R->Ty.get())) {
      Mem = Box->Mem;
      Pointee = Box->Elem;
    } else if (CurExec.isGpu()) {
      Mem = Memory::gpuShared();
    }
    recordAccess(R->Path, B.Own, B.Range, /*IsBorrow=*/true,
                 StatementTemporary);
    return makeRef(B.Own, Mem, Pointee);
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  TypeRef checkExpr(Expr &E) {
    TypeRef Ty = checkExprImpl(E);
    E.Ty = Ty;
    return Ty;
  }

  TypeRef checkExprImpl(Expr &E) {
    switch (E.kind()) {
    case ExprKind::PlaceVar:
    case ExprKind::PlaceProj:
    case ExprKind::PlaceDeref:
    case ExprKind::PlaceIndex:
    case ExprKind::PlaceSelect:
    case ExprKind::PlaceView:
      return readPlace(*cast<PlaceExpr>(&E));

    case ExprKind::Literal: {
      const auto *L = cast<LiteralExpr>(&E);
      return makeScalar(L->Scalar);
    }

    case ExprKind::Binary: {
      auto *B = cast<BinaryExpr>(&E);
      TypeRef L = checkExpr(*B->Lhs);
      TypeRef R = checkExpr(*B->Rhs);
      if (!L || !R)
        return nullptr;
      switch (B->Op) {
      case BinOpKind::Add:
      case BinOpKind::Sub:
      case BinOpKind::Mul:
      case BinOpKind::Div:
      case BinOpKind::Mod:
        if (!isNumericType(L) || !DataType::equal(L, R)) {
          Diags.error(DiagCode::MismatchedTypes, E.Range,
                      strfmt("mismatched operand types `%s` and `%s`",
                             L->str().c_str(), R->str().c_str()));
          return nullptr;
        }
        return L;
      case BinOpKind::Eq:
      case BinOpKind::Ne:
      case BinOpKind::Lt:
      case BinOpKind::Le:
      case BinOpKind::Gt:
      case BinOpKind::Ge:
        if (!DataType::equal(L, R)) {
          Diags.error(DiagCode::MismatchedTypes, E.Range,
                      strfmt("mismatched operand types `%s` and `%s`",
                             L->str().c_str(), R->str().c_str()));
          return nullptr;
        }
        return makeScalar(ScalarKind::Bool);
      case BinOpKind::And:
      case BinOpKind::Or: {
        TypeRef BoolTy = makeScalar(ScalarKind::Bool);
        if (!DataType::equal(L, BoolTy) || !DataType::equal(R, BoolTy)) {
          Diags.error(DiagCode::MismatchedTypes, E.Range,
                      "logical operators require bool operands");
          return nullptr;
        }
        return BoolTy;
      }
      }
      return nullptr;
    }

    case ExprKind::Unary: {
      auto *U = cast<UnaryExpr>(&E);
      TypeRef S = checkExpr(*U->Sub);
      if (!S)
        return nullptr;
      if (U->Op == UnOpKind::Neg && !isNumericType(S)) {
        Diags.error(DiagCode::MismatchedTypes, E.Range,
                    "negation requires a numeric operand");
        return nullptr;
      }
      if (U->Op == UnOpKind::Not &&
          !DataType::equal(S, makeScalar(ScalarKind::Bool))) {
        Diags.error(DiagCode::MismatchedTypes, E.Range,
                    "logical not requires a bool operand");
        return nullptr;
      }
      return S;
    }

    case ExprKind::Borrow:
      return borrowPlace(*cast<BorrowExpr>(&E), /*StatementTemporary=*/true);

    case ExprKind::Let: {
      auto *L = cast<LetExpr>(&E);
      bool InitIsBorrow = isa<BorrowExpr>(L->Init.get());
      TypeRef InitTy =
          InitIsBorrow
              ? borrowPlace(*cast<BorrowExpr>(L->Init.get()),
                            /*StatementTemporary=*/false)
              : checkExpr(*L->Init);
      if (InitIsBorrow)
        L->Init->Ty = InitTy;
      if (!InitTy)
        return nullptr;
      if (L->Annotation && !DataType::equal(L->Annotation, InitTy)) {
        Diags.error(DiagCode::MismatchedTypes, E.Range,
                    strfmt("mismatched types: expected `%s`, found `%s`",
                           L->Annotation->str().c_str(),
                           InitTy->str().c_str()));
        return nullptr;
      }
      VarInfo V;
      V.Name = L->Name;
      V.Ty = L->Annotation ? L->Annotation : InitTy;
      V.OwnerExec = CurExec;
      bind(std::move(V));
      return makeUnit();
    }

    case ExprKind::Assign: {
      auto *A = cast<AssignExpr>(&E);
      // T-Write: the term is typed first, then the place (the paper's
      // "conflicting prior selection" points at the right-hand side).
      TypeRef ValTy = checkExpr(*A->Rhs);
      if (!ValTy)
        return nullptr;
      if (!writePlace(*A->Lhs, ValTy, E.Range))
        return nullptr;
      A->Lhs->Ty = ValTy;
      return makeUnit();
    }

    case ExprKind::Block: {
      auto *B = cast<BlockExpr>(&E);
      pushScope();
      for (ExprPtr &S : B->Stmts) {
        checkExpr(*S);
        // Statement-temporary borrows (call arguments) expire here.
        std::erase_if(Accesses, [](const AccessRecord &R) {
          return R.IsBorrow && R.StatementTemporary;
        });
      }
      popScope();
      return makeUnit();
    }

    case ExprKind::Call:
      return checkCall(*cast<CallExpr>(&E));

    case ExprKind::Alloc: {
      const auto *A = cast<AllocExpr>(&E);
      if (A->Mem.Kind == MemoryKind::GpuShared) {
        if (!CurExec.isGpu() || CurExec.currentStage() != 1) {
          Diags
              .error(DiagCode::WrongExecutionContext, E.Range,
                     "gpu.shared memory must be allocated at block level")
              .note(strfmt("executed by `%s`", CurExec.str().c_str()));
          return nullptr;
        }
        return A->AllocTy;
      }
      if (A->Mem.Kind == MemoryKind::CpuMem) {
        if (!CurExec.isCpu()) {
          Diags.error(DiagCode::WrongExecutionContext, E.Range,
                      "cpu.mem must be allocated on the CPU");
          return nullptr;
        }
        return makeBox(A->AllocTy, Memory::cpuMem());
      }
      Diags.error(DiagCode::WrongExecutionContext, E.Range,
                  strfmt("cannot alloc in memory space `%s` directly; use "
                         "GpuGlobal::alloc_copy",
                         A->Mem.str().c_str()));
      return nullptr;
    }

    case ExprKind::ArrayInit: {
      auto *A = cast<ArrayInitExpr>(&E);
      TypeRef Elem = checkExpr(*A->Elem);
      if (!Elem)
        return nullptr;
      return makeArray(Elem, A->Count);
    }

    case ExprKind::ForEach: {
      auto *F = cast<ForEachExpr>(&E);
      // The collection is iterated by shared reference (elements are
      // copied out), not moved.
      TypeRef CollTy;
      if (auto *P = dyn_cast<PlaceExpr>(F->Collection.get())) {
        auto Res = typePlace(*P);
        if (!Res)
          return nullptr;
        if (!conflictCheck(Res->Path, Ownership::Shrd,
                           F->Collection->Range))
          return nullptr;
        recordAccess(Res->Path, Ownership::Shrd, F->Collection->Range,
                     /*IsBorrow=*/false, /*StatementTemporary=*/false);
        CollTy = Res->Ty;
        F->Collection->Ty = CollTy;
      } else {
        CollTy = checkExpr(*F->Collection);
      }
      if (!CollTy)
        return nullptr;
      TypeRef Elem;
      if (const auto *Arr = dyn_cast<ArrayType>(CollTy.get()))
        Elem = Arr->Elem;
      else if (const auto *Arr = dyn_cast<ArrayViewType>(CollTy.get()))
        Elem = Arr->Elem;
      else {
        Diags.error(DiagCode::NotAnArray, F->Collection->Range,
                    "for-each requires an array collection");
        return nullptr;
      }
      pushScope();
      VarInfo V;
      V.Name = F->Var;
      V.Ty = Elem;
      V.OwnerExec = CurExec;
      bind(std::move(V));
      checkExpr(*F->Body);
      popScope();
      return makeUnit();
    }

    case ExprKind::ForNat: {
      auto *F = cast<ForNatExpr>(&E);
      Nat Lo = resolveNat(F->Lo);
      Nat Hi = resolveNat(F->Hi);
      auto UpperOk = Nat::proveLe(Lo, Hi);
      if (!UpperOk || !*UpperOk) {
        Diags.error(DiagCode::NatCannotProve, E.Range,
                    strfmt("cannot prove loop range [%s..%s] non-empty",
                           F->Lo.str().c_str(), F->Hi.str().c_str()));
        return nullptr;
      }
      // Loops whose body synchronizes or splits the execution hierarchy
      // are unrolled iteration by iteration (the range is statically
      // evaluated, Fig. 5): split positions like n/2^i become concrete.
      if (containsSyncOrSplit(*F->Body) && Lo.isLit() && Hi.isLit() &&
          Hi.litValue() - Lo.litValue() <= 64) {
        for (long long IterV = Lo.litValue(); IterV < Hi.litValue();
             ++IterV) {
          unsigned ErrsBefore = Diags.errorCount();
          pushScope();
          VarInfo V;
          V.Name = F->Var;
          V.IsNatVar = true;
          V.LoopLo = Lo;
          V.LoopHi = Hi;
          V.ConstVal = Nat::lit(IterV);
          V.OwnerExec = CurExec;
          bind(std::move(V));
          checkExpr(*F->Body);
          popScope();
          if (Diags.errorCount() != ErrsBefore)
            break; // avoid repeating the same diagnostics per iteration
        }
        return makeUnit();
      }
      pushScope();
      VarInfo V;
      V.Name = F->Var;
      V.IsNatVar = true;
      V.LoopLo = Lo;
      V.LoopHi = Hi;
      V.OwnerExec = CurExec;
      bind(std::move(V));
      checkExpr(*F->Body);
      popScope();
      return makeUnit();
    }

    case ExprKind::Sched:
      return checkSched(*cast<SchedExpr>(&E));

    case ExprKind::Split:
      return checkSplit(*cast<SplitExpr>(&E));

    case ExprKind::Sync:
      return checkSync(E);
    }
    return nullptr;
  }

  static bool containsSyncOrSplit(Expr &E) {
    if (isa<SyncExpr>(&E) || isa<SplitExpr>(&E))
      return true;
    bool Found = false;
    forEachChild(E, [&](Expr &C) { Found = Found || containsSyncOrSplit(C); });
    return Found;
  }

  //===--------------------------------------------------------------------===//
  // Scheduling primitives
  //===--------------------------------------------------------------------===//

  TypeRef checkSched(SchedExpr &S) {
    VarInfo *Target = lookup(S.Target);
    if (!Target || !Target->IsExecVar) {
      Diags.error(DiagCode::UnknownVariable, S.Range,
                  strfmt("`%s` is not an execution resource in scope",
                         S.Target.c_str()));
      return nullptr;
    }
    if (!ExecResource::equal(Target->Exec, CurExec)) {
      Diags
          .error(DiagCode::WrongExecutionContext, S.Range,
                 strfmt("cannot schedule over `%s` here", S.Target.c_str()))
          .note(strfmt("this code is executed by `%s`, not `%s`",
                       CurExec.str().c_str(), Target->Exec.str().c_str()));
      return nullptr;
    }
    if (S.Axes.empty()) {
      Diags.error(DiagCode::ParseBadDim, S.Range,
                  "sched requires at least one axis");
      return nullptr;
    }

    ExecResource Child = Target->Exec;
    std::vector<Nat> Extents;
    for (Axis A : S.Axes) {
      std::string Err;
      Nat Extent = Child.remainingExtent(Child.currentStage(), A);
      auto Next = Child.forall(A, &Err);
      if (!Next) {
        DiagCode Code = Child.currentStage() > 1
                            ? DiagCode::SchedOverThread
                            : DiagCode::SchedOverMissingDim;
        Diags.error(Code, S.Range, Err);
        return nullptr;
      }
      Extents.push_back(Extent);
      Child = *Next;
    }
    Info.SchedExec.insert_or_assign(&S, Child);

    pushScope();
    VarInfo Binder;
    Binder.Name = S.Binder;
    Binder.IsExecVar = true;
    Binder.Exec = Child;
    Binder.OpsBegin = Target->Exec.numOps();
    Binder.OpsEnd = Child.numOps();
    Binder.SchedAxes = S.Axes;
    Binder.SelectExtents = std::move(Extents);
    Binder.OwnerExec = Target->Exec;
    bind(std::move(Binder));

    ExecResource Saved = CurExec;
    CurExec = Child;
    checkExpr(*S.Body);
    CurExec = Saved;
    popScope();
    return makeUnit();
  }

  TypeRef checkSplit(SplitExpr &S) {
    VarInfo *Target = lookup(S.Target);
    if (!Target || !Target->IsExecVar) {
      Diags.error(DiagCode::UnknownVariable, S.Range,
                  strfmt("`%s` is not an execution resource in scope",
                         S.Target.c_str()));
      return nullptr;
    }
    if (!ExecResource::equal(Target->Exec, CurExec)) {
      Diags.error(DiagCode::WrongExecutionContext, S.Range,
                  strfmt("cannot split `%s` here", S.Target.c_str()));
      return nullptr;
    }
    std::string Err;
    Nat Position = resolveNat(S.Position);
    auto Fst = Target->Exec.split(S.SplitAxis, Position, true, &Err);
    if (!Fst) {
      Diags.error(DiagCode::SplitOutOfBounds, S.Range, Err);
      return nullptr;
    }
    auto Snd = Target->Exec.split(S.SplitAxis, Position, false, &Err);
    assert(Snd && "fst split succeeded but snd failed");
    Info.SplitFstExec.insert_or_assign(&S, *Fst);
    Info.SplitSndExec.insert_or_assign(&S, *Snd);

    for (int Arm = 0; Arm != 2; ++Arm) {
      pushScope();
      VarInfo Binder;
      Binder.Name = Arm == 0 ? S.FstName : S.SndName;
      Binder.IsExecVar = true;
      Binder.Exec = Arm == 0 ? *Fst : *Snd;
      Binder.OpsBegin = Target->Exec.numOps();
      Binder.OpsEnd = Binder.Exec.numOps();
      Binder.OwnerExec = Target->Exec;
      bind(std::move(Binder));

      ExecResource Saved = CurExec;
      CurExec = Arm == 0 ? *Fst : *Snd;
      checkExpr(Arm == 0 ? *S.FstBody : *S.SndBody);
      CurExec = Saved;
      popScope();
    }
    return makeUnit();
  }

  TypeRef checkSync(Expr &E) {
    switch (CurExec.syncLegality()) {
    case ExecResource::SyncLegality::Ok:
      break;
    case ExecResource::SyncLegality::NotInBlock:
      Diags
          .error(DiagCode::BarrierNotAllowed, E.Range,
                 "barrier not allowed here")
          .note("`sync` synchronizes the threads of a single block; "
                "schedule over blocks first");
      return nullptr;
    case ExecResource::SyncLegality::InSplit:
      Diags
          .error(DiagCode::BarrierNotAllowed, E.Range,
                 "barrier not allowed here")
          .note("the block is split here; `sync` would not be performed by "
                "all threads in the block");
      return nullptr;
    }
    // Release the recorded accesses of this block's threads: memory
    // accesses before the barrier cannot conflict with accesses after it.
    ExecResource Block = CurExec.blockPrefix();
    std::erase_if(Accesses, [&](const AccessRecord &R) {
      return !R.IsBorrow && ExecResource::isPrefixOf(Block, R.Exec);
    });
    return makeUnit();
  }

  //===--------------------------------------------------------------------===//
  // Calls: builtins, user functions, kernel launches
  //===--------------------------------------------------------------------===//

  /// Structural match binding bare nat variables of the callee signature.
  bool unifyNat(const Nat &Declared, const Nat &Actual,
                std::map<std::string, Nat> &Binding) {
    if (Declared.kind() == NatKind::Var) {
      auto It = Binding.find(Declared.varName());
      if (It == Binding.end()) {
        Binding[Declared.varName()] = Actual;
        return true;
      }
      return Nat::proveEq(It->second, Actual);
    }
    Nat Substituted = Declared.substitute(Binding);
    std::vector<std::string> Free;
    Substituted.collectVars(Free);
    bool Unbound = false;
    for (const std::string &V : Free)
      if (!Binding.count(V) && !lookup(V))
        Unbound = true;
    if (Unbound)
      return true; // defer; final proveEq pass will catch mismatches
    return Nat::proveEq(Substituted, Actual);
  }

  bool unifyType(const TypeRef &Declared, const TypeRef &Actual,
                 TypeSubst &Subst) {
    if (!Declared || !Actual)
      return false;
    if (const auto *TV = dyn_cast<TypeVarType>(Declared.get())) {
      auto It = Subst.Types.find(TV->Name);
      if (It == Subst.Types.end()) {
        Subst.Types[TV->Name] = Actual;
        return true;
      }
      return DataType::equal(It->second, Actual);
    }
    if (Declared->kind() != Actual->kind())
      return false;
    switch (Declared->kind()) {
    case TypeKind::Scalar:
      return cast<ScalarType>(Declared.get())->Scalar ==
             cast<ScalarType>(Actual.get())->Scalar;
    case TypeKind::Tuple: {
      const auto *DT = cast<TupleType>(Declared.get());
      const auto *AT = cast<TupleType>(Actual.get());
      if (DT->Elems.size() != AT->Elems.size())
        return false;
      for (size_t I = 0; I != DT->Elems.size(); ++I)
        if (!unifyType(DT->Elems[I], AT->Elems[I], Subst))
          return false;
      return true;
    }
    case TypeKind::Array: {
      const auto *DA = cast<ArrayType>(Declared.get());
      const auto *AA = cast<ArrayType>(Actual.get());
      return unifyNat(DA->Size, AA->Size, Subst.Nats) &&
             unifyType(DA->Elem, AA->Elem, Subst);
    }
    case TypeKind::ArrayView: {
      const auto *DA = cast<ArrayViewType>(Declared.get());
      const auto *AA = cast<ArrayViewType>(Actual.get());
      return unifyNat(DA->Size, AA->Size, Subst.Nats) &&
             unifyType(DA->Elem, AA->Elem, Subst);
    }
    case TypeKind::Ref: {
      const auto *DR = cast<RefType>(Declared.get());
      const auto *AR = cast<RefType>(Actual.get());
      if (DR->Own != AR->Own)
        return false;
      if (DR->Mem.isVar()) {
        auto It = Subst.Mems.find(DR->Mem.Name);
        if (It == Subst.Mems.end())
          Subst.Mems[DR->Mem.Name] = AR->Mem;
        else if (!(It->second == AR->Mem))
          return false;
      } else if (!(DR->Mem == AR->Mem)) {
        return false;
      }
      return unifyType(DR->Pointee, AR->Pointee, Subst);
    }
    case TypeKind::Box: {
      const auto *DB = cast<BoxType>(Declared.get());
      const auto *AB = cast<BoxType>(Actual.get());
      if (DB->Mem.isVar()) {
        auto It = Subst.Mems.find(DB->Mem.Name);
        if (It == Subst.Mems.end())
          Subst.Mems[DB->Mem.Name] = AB->Mem;
        else if (!(It->second == AB->Mem))
          return false;
      } else if (!(DB->Mem == AB->Mem)) {
        return false;
      }
      return unifyType(DB->Elem, AB->Elem, Subst);
    }
    case TypeKind::TypeVar:
      return false; // handled above
    }
    return false;
  }

  TypeRef checkCall(CallExpr &C) {
    // Type arguments first (they record reads/borrows).
    std::vector<TypeRef> ArgTys;
    ArgTys.reserve(C.Args.size());
    for (ExprPtr &A : C.Args) {
      ArgTys.push_back(checkExpr(*A));
      if (!ArgTys.back())
        return nullptr;
    }

    if (isBuiltinName(C.Callee))
      return checkBuiltinCall(C, ArgTys);

    const FnDef *Callee = Mod->findFn(C.Callee);
    if (!Callee) {
      Diags.error(DiagCode::UnknownFunction, C.Range,
                  strfmt("unknown function `%s`", C.Callee.c_str()));
      return nullptr;
    }
    if (Callee->Params.size() != C.Args.size()) {
      Diags.error(DiagCode::WrongArgCount, C.Range,
                  strfmt("`%s` expects %zu arguments, found %zu",
                         C.Callee.c_str(), Callee->Params.size(),
                         C.Args.size()));
      return nullptr;
    }

    TypeSubst Subst;
    if (!C.IsLaunch && !C.Generics.empty()) {
      if (C.Generics.size() != Callee->Generics.size()) {
        Diags.error(DiagCode::WrongGenericArgCount, C.Range,
                    strfmt("`%s` expects %zu generic arguments, found %zu",
                           C.Callee.c_str(), Callee->Generics.size(),
                           C.Generics.size()));
        return nullptr;
      }
      for (size_t I = 0; I != C.Generics.size(); ++I) {
        const GenericParam &P = Callee->Generics[I];
        const GenericArg &G = C.Generics[I];
        // Bare identifiers parse as nats; reinterpret by declared kind.
        switch (P.Kind) {
        case ParamKind::Nat:
          if (G.Kind != ParamKind::Nat) {
            Diags.error(DiagCode::MismatchedTypes, C.Range,
                        strfmt("generic argument %zu of `%s` must be a nat",
                               I + 1, C.Callee.c_str()));
            return nullptr;
          }
          Subst.Nats[P.Name] = G.N;
          break;
        case ParamKind::Memory:
          if (G.Kind == ParamKind::Memory)
            Subst.Mems[P.Name] = G.M;
          else if (G.Kind == ParamKind::Nat && G.N.kind() == NatKind::Var)
            Subst.Mems[P.Name] = Memory::var(G.N.varName());
          else {
            Diags.error(DiagCode::MismatchedTypes, C.Range,
                        strfmt("generic argument %zu of `%s` must be a "
                               "memory space",
                               I + 1, C.Callee.c_str()));
            return nullptr;
          }
          break;
        case ParamKind::DataType:
          if (G.Kind == ParamKind::DataType)
            Subst.Types[P.Name] = G.T;
          else if (G.Kind == ParamKind::Nat && G.N.kind() == NatKind::Var)
            Subst.Types[P.Name] = makeTypeVar(G.N.varName());
          else {
            Diags.error(DiagCode::MismatchedTypes, C.Range,
                        strfmt("generic argument %zu of `%s` must be a data "
                               "type",
                               I + 1, C.Callee.c_str()));
            return nullptr;
          }
          break;
        }
      }
    }

    if (C.IsLaunch) {
      if (!CurExec.isCpu()) {
        Diags.error(DiagCode::WrongExecutionContext, C.Range,
                    "kernels can only be launched from the CPU");
        return nullptr;
      }
      if (!Callee->isGpuFn()) {
        Diags.error(DiagCode::WrongExecutionContext, C.Range,
                    strfmt("`%s` is not a GPU grid function",
                           C.Callee.c_str()));
        return nullptr;
      }
      // Unify launch dims against the declared grid, then parameters
      // against arguments (Section 3.5: assumptions become checkable).
      for (Axis A : {Axis::X, Axis::Y, Axis::Z}) {
        bool DeclHasG = Callee->Exec.GridDim.hasAxis(A);
        bool DeclHasB = Callee->Exec.BlockDim.hasAxis(A);
        if (DeclHasG != C.LaunchGrid.hasAxis(A) ||
            DeclHasB != C.LaunchBlock.hasAxis(A)) {
          Diags
              .error(DiagCode::LaunchConfigMismatch, C.Range,
                     "mismatched launch configuration")
              .note(strfmt("`%s` expects grid `gpu.grid<%s, %s>`",
                           C.Callee.c_str(),
                           Callee->Exec.GridDim.str().c_str(),
                           Callee->Exec.BlockDim.str().c_str()));
          return nullptr;
        }
        if (DeclHasG &&
            !unifyNat(Callee->Exec.GridDim.extent(A), C.LaunchGrid.extent(A),
                      Subst.Nats)) {
          Diags
              .error(DiagCode::LaunchConfigMismatch, C.Range,
                     "mismatched launch configuration")
              .note(strfmt("grid extent %s: expected `%s`, found `%s`",
                           axisName(A),
                           Callee->Exec.GridDim.extent(A).str().c_str(),
                           C.LaunchGrid.extent(A).str().c_str()));
          return nullptr;
        }
        if (DeclHasB && !unifyNat(Callee->Exec.BlockDim.extent(A),
                                  C.LaunchBlock.extent(A), Subst.Nats)) {
          Diags
              .error(DiagCode::LaunchConfigMismatch, C.Range,
                     "mismatched launch configuration")
              .note(strfmt("block extent %s: expected `%s`, found `%s`",
                           axisName(A),
                           Callee->Exec.BlockDim.extent(A).str().c_str(),
                           C.LaunchBlock.extent(A).str().c_str()));
          return nullptr;
        }
      }
    } else {
      // Plain call: the callee's exec level must match ours.
      auto Level = CurExec.level();
      ExecLevel DeclaredLevel = Callee->Exec.substitute(Subst.Nats);
      if (!Level || !(DeclaredLevel == *Level)) {
        Diags
            .error(DiagCode::WrongExecutionContext, C.Range,
                   strfmt("`%s` cannot be called from this execution "
                          "context",
                          C.Callee.c_str()))
            .note(strfmt("function expects `%s`, but this code is executed "
                         "by `%s`",
                         Callee->Exec.str().c_str(), CurExec.str().c_str()));
        return nullptr;
      }
    }

    // Unify parameter types with argument types (binds remaining nats).
    for (size_t I = 0; I != C.Args.size(); ++I) {
      TypeRef Declared = substituteType(Callee->Params[I].Ty, Subst);
      if (!unifyType(Declared, ArgTys[I], Subst)) {
        Diags
            .error(DiagCode::MismatchedTypes, C.Args[I]->Range,
                   "mismatched types")
            .note(strfmt("expected `%s`, found `%s`",
                         substituteType(Declared, Subst)->str().c_str(),
                         ArgTys[I]->str().c_str()));
        return nullptr;
      }
    }
    // Final pass: every parameter and launch dim must now prove equal.
    for (size_t I = 0; I != C.Args.size(); ++I) {
      TypeRef Declared = substituteType(Callee->Params[I].Ty, Subst);
      if (!DataType::equal(Declared, ArgTys[I])) {
        Diags
            .error(DiagCode::MismatchedTypes, C.Args[I]->Range,
                   "mismatched types")
            .note(strfmt("expected `%s`, found `%s`",
                         Declared->str().c_str(),
                         ArgTys[I]->str().c_str()));
        return nullptr;
      }
    }
    if (C.IsLaunch) {
      for (Axis A : {Axis::X, Axis::Y, Axis::Z}) {
        if (Callee->Exec.GridDim.hasAxis(A)) {
          Nat D = Callee->Exec.GridDim.extent(A).substitute(Subst.Nats);
          if (!Nat::proveEq(D, C.LaunchGrid.extent(A))) {
            Diags
                .error(DiagCode::LaunchConfigMismatch, C.Range,
                       "mismatched launch configuration")
                .note(strfmt("grid extent %s: expected `%s`, found `%s`",
                             axisName(A), D.str().c_str(),
                             C.LaunchGrid.extent(A).str().c_str()));
            return nullptr;
          }
        }
        if (Callee->Exec.BlockDim.hasAxis(A)) {
          Nat D = Callee->Exec.BlockDim.extent(A).substitute(Subst.Nats);
          if (!Nat::proveEq(D, C.LaunchBlock.extent(A))) {
            Diags
                .error(DiagCode::LaunchConfigMismatch, C.Range,
                       "mismatched launch configuration")
                .note(strfmt("block extent %s: expected `%s`, found `%s`",
                             axisName(A), D.str().c_str(),
                             C.LaunchBlock.extent(A).str().c_str()));
            return nullptr;
          }
        }
      }
    }
    return substituteType(Callee->RetTy ? Callee->RetTy : makeUnit(), Subst);
  }

  static bool isBuiltinName(const std::string &Name) {
    return Name == "CpuHeap::new" || Name == "GpuGlobal::alloc_copy" ||
           Name == "copy_mem_to_host" || Name == "copy_to_gpu";
  }

  /// Builtin host API (Section 3.4). Diagnostics are emitted for misused
  /// builtins; returns the result type or null.
  TypeRef checkBuiltinCall(CallExpr &C, const std::vector<TypeRef> &ArgTys) {
    auto RequireCpu = [&]() {
      if (CurExec.isCpu())
        return true;
      Diags.error(DiagCode::WrongExecutionContext, C.Range,
                  strfmt("`%s` is a host function and cannot run on the GPU",
                         C.Callee.c_str()));
      return false;
    };
    auto ArgCount = [&](size_t N) {
      if (C.Args.size() == N)
        return true;
      Diags.error(DiagCode::WrongArgCount, C.Range,
                  strfmt("`%s` expects %zu arguments, found %zu",
                         C.Callee.c_str(), N, C.Args.size()));
      return false;
    };

    if (C.Callee == "CpuHeap::new") {
      if (!RequireCpu() || !ArgCount(1))
        return nullptr;
      return makeBox(ArgTys[0], Memory::cpuMem());
    }
    if (C.Callee == "GpuGlobal::alloc_copy") {
      if (!RequireCpu() || !ArgCount(1))
        return nullptr;
      const auto *Ref = dyn_cast<RefType>(ArgTys[0].get());
      if (!Ref || Ref->Mem.Kind != MemoryKind::CpuMem) {
        Diags
            .error(DiagCode::MismatchedTypes, C.Args[0]->Range,
                   "mismatched types")
            .note(strfmt("expected reference to `cpu.mem`, found `%s`",
                         ArgTys[0]->str().c_str()));
        return nullptr;
      }
      return makeBox(Ref->Pointee, Memory::gpuGlobal());
    }
    if (C.Callee == "copy_mem_to_host" || C.Callee == "copy_to_gpu") {
      if (!RequireCpu() || !ArgCount(2))
        return nullptr;
      bool ToHost = C.Callee == "copy_mem_to_host";
      MemoryKind WantDst = ToHost ? MemoryKind::CpuMem
                                  : MemoryKind::GpuGlobal;
      MemoryKind WantSrc = ToHost ? MemoryKind::GpuGlobal
                                  : MemoryKind::CpuMem;
      const auto *Dst = dyn_cast<RefType>(ArgTys[0].get());
      const auto *Src = dyn_cast<RefType>(ArgTys[1].get());
      // The Section 2.3 bug class: both arguments are references, but the
      // memory spaces are the wrong way around (swapped cudaMemcpy
      // arguments). Report it as a transfer-direction error, not a generic
      // type mismatch.
      if (Dst && Src && Dst->Mem.Kind == WantSrc && Src->Mem.Kind == WantDst) {
        Diags
            .error(DiagCode::TransferDirectionMismatch, C.Range,
                   strfmt("arguments to `%s` are swapped", C.Callee.c_str()))
            .note(C.Args[0]->Range,
                  strfmt("destination must live in `%s`, found `%s`",
                         Memory(WantDst).str().c_str(),
                         Dst->Mem.str().c_str()))
            .note(strfmt("`%s` copies %s; pass the %s buffer first",
                         C.Callee.c_str(),
                         ToHost ? "gpu.global -> cpu.mem"
                                : "cpu.mem -> gpu.global",
                         ToHost ? "host" : "device"));
        return nullptr;
      }
      if (!Dst || Dst->Mem.Kind != WantDst || Dst->Own != Ownership::Uniq) {
        Diags
            .error(DiagCode::MismatchedTypes, C.Args[0]->Range,
                   "mismatched types")
            .note(strfmt("expected unique reference to `%s`, found `%s`",
                         Memory(WantDst).str().c_str(),
                         ArgTys[0]->str().c_str()));
        return nullptr;
      }
      if (!Src || Src->Mem.Kind != WantSrc) {
        Diags
            .error(DiagCode::MismatchedTypes, C.Args[1]->Range,
                   "mismatched types")
            .note(strfmt("expected reference to `%s`, found `%s`",
                         Memory(WantSrc).str().c_str(),
                         ArgTys[1]->str().c_str()));
        return nullptr;
      }
      // Element-count agreement via the Nat solver: same element type but
      // unprovably-equal sizes is the out-of-bounds memcpy of Section 2.3.
      const auto *DstArr = dyn_cast<ArrayType>(Dst->Pointee.get());
      const auto *SrcArr = dyn_cast<ArrayType>(Src->Pointee.get());
      if (DstArr && SrcArr && DataType::equal(DstArr->Elem, SrcArr->Elem) &&
          !Nat::proveEq(DstArr->Size, SrcArr->Size)) {
        Diags
            .error(DiagCode::TransferSizeMismatch, C.Range,
                   strfmt("cannot transfer `%s` elements into a buffer of "
                          "`%s`",
                          SrcArr->Size.str().c_str(),
                          DstArr->Size.str().c_str()))
            .note("both sides of a transfer must have a provably equal "
                  "element count");
        return nullptr;
      }
      if (!DataType::equal(Dst->Pointee, Src->Pointee)) {
        Diags
            .error(DiagCode::MismatchedTypes, C.Range, "mismatched types")
            .note(strfmt("cannot copy `%s` into `%s`",
                         Src->Pointee->str().c_str(),
                         Dst->Pointee->str().c_str()));
        return nullptr;
      }
      return makeUnit();
    }
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Items
  //===--------------------------------------------------------------------===//

  void checkFn(FnDef &Fn) {
    CurFn = &Fn;
    Accesses.clear();
    pushScope();

    // The function's execution resource.
    ExecResource Root =
        Fn.Exec.Kind == ExecLevelKind::GpuGrid
            ? ExecResource::gpuGrid(Fn.ExecName, Fn.Exec.GridDim,
                                    Fn.Exec.BlockDim)
            : ExecResource::cpuThread();
    if (Fn.Exec.Kind == ExecLevelKind::GpuBlock ||
        Fn.Exec.Kind == ExecLevelKind::GpuThread) {
      // Block/thread functions are checked as if executed by a generic
      // grid narrowed appropriately; modelled by a one-block grid here.
      Root = ExecResource::gpuGrid(Fn.ExecName, Dim::makeX(Nat::lit(1)),
                                   Fn.Exec.BlockDim);
      if (auto B = Root.forall(Axis::X))
        Root = *B;
    }
    CurExec = Root;

    VarInfo ExecBinder;
    ExecBinder.Name = Fn.ExecName;
    ExecBinder.IsExecVar = true;
    ExecBinder.Exec = Root;
    ExecBinder.OwnerExec = Root;
    bind(std::move(ExecBinder));

    for (const FnParam &P : Fn.Params) {
      VarInfo V;
      V.Name = P.Name;
      V.Ty = P.Ty;
      V.OwnerExec = Root;
      bind(std::move(V));
    }

    if (Fn.Body)
      checkExpr(*Fn.Body);
    popScope();
    CurFn = nullptr;
  }
};

TypeChecker::TypeChecker(const SourceManager &SM, DiagnosticEngine &Diags)
    : P(std::make_unique<Impl>(SM, Diags, Info)) {}

TypeChecker::~TypeChecker() = default;

bool TypeChecker::check(Module &M) {
  unsigned Before = P->Diags.errorCount();
  P->Mod = &M;
  P->Views.addModuleViews(M);

  // Duplicate definitions.
  std::map<std::string, const FnDef *> Seen;
  for (const auto &Fn : M.Fns) {
    auto [It, Inserted] = Seen.try_emplace(Fn->Name, Fn.get());
    if (!Inserted)
      P->Diags.error(DiagCode::Redefinition, Fn->Range,
                     strfmt("redefinition of function `%s`",
                            Fn->Name.c_str()));
  }

  for (auto &Fn : M.Fns)
    P->checkFn(*Fn);
  return P->Diags.errorCount() == Before;
}
