//===- views/View.cpp -------------------------------------------------------===//

#include "views/View.h"

#include "support/StringUtils.h"

#include <cassert>
#include <sstream>

using namespace descend;

std::string View::str() const {
  switch (Kind) {
  case ViewKind::Group:
    return "group::<" + Arg.simplified().str() + ">";
  case ViewKind::SplitView:
    return "split::<" + Arg.simplified().str() + ">";
  case ViewKind::Transpose:
    return "transpose";
  case ViewKind::Reverse:
    return "reverse";
  case ViewKind::Map:
    return "map(" + viewChainStr(Sub) + ")";
  case ViewKind::Repeat:
    return "repeat::<" + Arg.simplified().str() + ">";
  }
  return "<view>";
}

bool View::isBroadcasting() const {
  if (Kind == ViewKind::Repeat)
    return true;
  for (const View &S : Sub)
    if (S.isBroadcasting())
      return true;
  return false;
}

std::string descend::viewChainStr(const ViewChain &Chain) {
  std::string Out;
  for (size_t I = 0; I != Chain.size(); ++I) {
    if (I)
      Out += ".";
    Out += Chain[I].str();
  }
  return Out;
}

void ViewRegistry::addModuleViews(const Module &M) {
  for (const auto &V : M.Views)
    UserViews[V->Name] = V.get();
}

bool ViewRegistry::isKnownView(const std::string &Name) const {
  if (Name == "group" || Name == "split" || Name == "transpose" ||
      Name == "reverse" || Name == "rev" || Name == "map" ||
      Name == "repeat")
    return true;
  return UserViews.count(Name) != 0;
}

std::optional<ViewChain>
ViewRegistry::resolve(const std::string &Name, const std::vector<Nat> &NatArgs,
                      std::string *Err) const {
  auto Fail = [&](std::string Msg) -> std::optional<ViewChain> {
    if (Err)
      *Err = std::move(Msg);
    return std::nullopt;
  };

  if (Name == "group" || Name == "split") {
    if (NatArgs.size() != 1)
      return Fail(strfmt("view '%s' takes exactly one size argument",
                         Name.c_str()));
    return ViewChain{Name == "group" ? View::group(NatArgs[0])
                                     : View::splitAt(NatArgs[0])};
  }
  if (Name == "repeat") {
    if (NatArgs.size() != 1)
      return Fail("view 'repeat' takes exactly one size argument");
    return ViewChain{View::repeat(NatArgs[0])};
  }
  if (Name == "transpose" || Name == "reverse" || Name == "rev") {
    if (!NatArgs.empty())
      return Fail(strfmt("view '%s' takes no size arguments", Name.c_str()));
    return ViewChain{Name == "transpose" ? View::transpose()
                                         : View::reverse()};
  }
  if (Name == "map")
    return Fail("'map' requires a view argument and only occurs inside "
                "view definitions");

  auto It = UserViews.find(Name);
  if (It == UserViews.end())
    return Fail(strfmt("unknown view '%s'", Name.c_str()));
  const ViewDef &Def = *It->second;
  if (Def.Generics.size() != NatArgs.size())
    return Fail(strfmt("view '%s' expects %zu size arguments, got %zu",
                       Name.c_str(), Def.Generics.size(), NatArgs.size()));
  std::map<std::string, Nat> Subst;
  for (size_t I = 0; I != NatArgs.size(); ++I)
    Subst[Def.Generics[I].Name] = NatArgs[I];
  return resolveSteps(Def.Body, Subst, Err);
}

std::optional<ViewChain>
ViewRegistry::resolveSteps(const std::vector<ViewStep> &Steps,
                           const std::map<std::string, Nat> &NatSubst,
                           std::string *Err) const {
  ViewChain Out;
  for (const ViewStep &S : Steps) {
    std::vector<Nat> Args;
    Args.reserve(S.NatArgs.size());
    for (const Nat &N : S.NatArgs)
      Args.push_back(N.substitute(NatSubst));

    if (S.Name == "map") {
      if (S.ViewArgs.size() != 1) {
        if (Err)
          *Err = "'map' takes exactly one view argument";
        return std::nullopt;
      }
      auto Sub = resolveSteps(S.ViewArgs[0], NatSubst, Err);
      if (!Sub)
        return std::nullopt;
      Out.push_back(View::map(std::move(*Sub)));
      continue;
    }
    if (!S.ViewArgs.empty()) {
      if (Err)
        *Err = strfmt("view '%s' takes no view arguments", S.Name.c_str());
      return std::nullopt;
    }
    auto Resolved = resolve(S.Name, Args, Err);
    if (!Resolved)
      return std::nullopt;
    Out.insert(Out.end(), Resolved->begin(), Resolved->end());
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Shape checking
//===----------------------------------------------------------------------===//

namespace {
/// Views apply uniformly to arrays and array views; the result is always an
/// array view. Extracts (elem, size) or fails.
bool arrayParts(const TypeRef &T, TypeRef &Elem, Nat &Size) {
  if (const auto *A = dyn_cast<ArrayType>(T.get())) {
    Elem = A->Elem;
    Size = A->Size;
    return true;
  }
  if (const auto *A = dyn_cast<ArrayViewType>(T.get())) {
    Elem = A->Elem;
    Size = A->Size;
    return true;
  }
  return false;
}
} // namespace

TypeRef ViewRegistry::applyToType(const View &V, const TypeRef &In,
                                  std::string *Err) {
  auto Fail = [&](std::string Msg) -> TypeRef {
    if (Err)
      *Err = std::move(Msg);
    return nullptr;
  };

  TypeRef Elem;
  Nat Size;
  if (!arrayParts(In, Elem, Size))
    return Fail(strfmt("view '%s' applied to non-array type %s",
                       V.str().c_str(), In ? In->str().c_str() : "<null>"));

  switch (V.Kind) {
  case ViewKind::Group: {
    // group<k, n, d>: [[d; n]] -> [[ [[d; k]]; n/k]] where n % k == 0.
    if (!V.Arg.isLit()) {
      // Symbolic k: require provable divisibility via normalization of
      // n % k == 0.
      Nat Rem = Nat::mod(Size, V.Arg);
      if (!Nat::proveEq(Rem, Nat::lit(0)))
        return Fail(strfmt("cannot prove %s %% %s == 0 required by group",
                           Size.str().c_str(), V.Arg.str().c_str()));
    } else {
      auto Divides = Nat::proveDivides(V.Arg.litValue(), Size);
      if (!Divides || !*Divides)
        return Fail(strfmt("cannot prove %s %% %s == 0 required by group",
                           Size.str().c_str(), V.Arg.str().c_str()));
    }
    Nat Count = Nat::div(Size, V.Arg).simplified();
    return makeArrayView(makeArrayView(Elem, V.Arg), Count);
  }
  case ViewKind::SplitView: {
    // split<k, n, d>: [[d; n]] -> ([[d; k]], [[d; n-k]]) where n >= k.
    auto InBounds = Nat::proveLe(V.Arg, Size);
    if (!InBounds || !*InBounds)
      return Fail(strfmt("cannot prove %s <= %s required by split",
                         V.Arg.str().c_str(), Size.str().c_str()));
    Nat SndSize = Nat::sub(Size, V.Arg).simplified();
    return makeTuple({makeArrayView(Elem, V.Arg),
                      makeArrayView(Elem, SndSize)});
  }
  case ViewKind::Transpose: {
    TypeRef InnerElem;
    Nat InnerSize;
    if (!arrayParts(Elem, InnerElem, InnerSize))
      return Fail(strfmt("transpose requires a two-dimensional array, got %s",
                         In->str().c_str()));
    return makeArrayView(makeArrayView(InnerElem, Size), InnerSize);
  }
  case ViewKind::Reverse:
    return makeArrayView(Elem, Size);
  case ViewKind::Map: {
    TypeRef MappedElem = applyChainToType(V.Sub, Elem, Err);
    if (!MappedElem)
      return nullptr;
    return makeArrayView(MappedElem, Size);
  }
  case ViewKind::Repeat:
    return makeArrayView(makeArrayView(Elem, Size), V.Arg);
  }
  return Fail("unknown view kind");
}

TypeRef ViewRegistry::applyChainToType(const ViewChain &Chain, TypeRef In,
                                       std::string *Err) {
  for (const View &V : Chain) {
    In = applyToType(V, In, Err);
    if (!In)
      return nullptr;
  }
  return In;
}
