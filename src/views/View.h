//===- views/View.h - Memory views (Listing 3) ------------------*- C++ -*-===//
//
// Part of the Descend reproduction. Views reshape arrays or reorder their
// elements without changing the underlying memory (Section 3.2):
//
//   split<k, n, d>([[d; n]])     -> ([[d; k]], [[d; n-k]])   where n >= k
//   group<k, n, d>([[d; n]])     -> [[ [[d; k]]; n/k]]       where n % k == 0
//   transpose<m, n, d>([[ [[d; n]]; m]]) -> [[ [[d; m]]; n]]
//   reverse<n, d>([[d; n]])      -> [[d; n]]
//   map<..>(v, [[ [[d1; m]]; n]]) -> [[ [[d2; m]]; n]]
//
// Composite views (`view` items) expand into chains of these primitives.
// Each primitive is an *injective* remapping of indices, which is the
// foundation of the safety argument: identical view chains accessed through
// distinct selections touch disjoint memory.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_VIEWS_VIEW_H
#define DESCEND_VIEWS_VIEW_H

#include "ast/Item.h"
#include "ast/Type.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace descend {

enum class ViewKind { Group, SplitView, Transpose, Reverse, Map, Repeat };

/// A fully instantiated primitive view. Map carries its argument chain.
struct View {
  ViewKind Kind = ViewKind::Transpose;
  Nat Arg;               // Group/SplitView parameter k
  std::vector<View> Sub; // Map's view argument

  static View group(Nat K) {
    View V;
    V.Kind = ViewKind::Group;
    V.Arg = std::move(K);
    return V;
  }
  static View splitAt(Nat K) {
    View V;
    V.Kind = ViewKind::SplitView;
    V.Arg = std::move(K);
    return V;
  }
  static View transpose() {
    View V;
    V.Kind = ViewKind::Transpose;
    return V;
  }
  static View reverse() {
    View V;
    V.Kind = ViewKind::Reverse;
    return V;
  }
  static View map(std::vector<View> Sub) {
    View V;
    V.Kind = ViewKind::Map;
    V.Sub = std::move(Sub);
    return V;
  }
  /// repeat::<r> — r broadcast copies of the array. Read-only: repeating is
  /// not injective, so writes through it are rejected by the checker.
  static View repeat(Nat R) {
    View V;
    V.Kind = ViewKind::Repeat;
    V.Arg = std::move(R);
    return V;
  }

  /// True if the view (or a nested map argument) broadcasts elements.
  bool isBroadcasting() const;

  /// Canonical rendering, e.g. "group::<32>" or "map(transpose)". Used both
  /// for diagnostics and as the syntactic comparison key in borrow checking.
  std::string str() const;
};

using ViewChain = std::vector<View>;

std::string viewChainStr(const ViewChain &Chain);

/// Resolves view names against the builtin catalog and user `view` items,
/// expanding composites into primitive chains with nat arguments
/// substituted.
class ViewRegistry {
public:
  ViewRegistry() = default;

  /// Registers all `view` items of a module (later lookups see them).
  void addModuleViews(const Module &M);

  /// True if \p Name denotes a known (builtin or user) view.
  bool isKnownView(const std::string &Name) const;

  /// Expands `Name::<NatArgs>` into primitives. Returns nullopt and sets
  /// \p Err on arity mismatch or unknown names.
  std::optional<ViewChain> resolve(const std::string &Name,
                                   const std::vector<Nat> &NatArgs,
                                   std::string *Err = nullptr) const;

  /// Applies one primitive view to an array type, checking the side
  /// conditions with the nat prover. Returns the result type or null with
  /// \p Err set. \p In must be an array or array-view type (split yields a
  /// tuple of views).
  static TypeRef applyToType(const View &V, const TypeRef &In,
                             std::string *Err);

  /// Applies a whole chain.
  static TypeRef applyChainToType(const ViewChain &Chain, TypeRef In,
                                  std::string *Err);

private:
  std::optional<ViewChain>
  resolveSteps(const std::vector<ViewStep> &Steps,
               const std::map<std::string, Nat> &NatSubst,
               std::string *Err) const;

  std::map<std::string, const ViewDef *> UserViews;
};

} // namespace descend

#endif // DESCEND_VIEWS_VIEW_H
