//===- views/IndexSpace.cpp -------------------------------------------------===//

#include "views/IndexSpace.h"

#include "support/StringUtils.h"

#include <cassert>
#include <sstream>

using namespace descend;

std::string descend::indexPlaceholder(unsigned I) {
  return "$" + std::to_string(I);
}

IndexSpace IndexSpace::fromDims(std::vector<Nat> Dims) {
  IndexSpace S;
  S.OrigDims = Dims;
  S.LogicalDims = std::move(Dims);
  S.Phys.reserve(S.OrigDims.size());
  for (unsigned I = 0; I != S.OrigDims.size(); ++I)
    S.Phys.push_back(Nat::var(indexPlaceholder(I)));
  return S;
}

void IndexSpace::renamePlaceholders(const std::map<std::string, Nat> &Subst) {
  for (Nat &P : Phys)
    P = P.substitute(Subst);
}

bool IndexSpace::applyView(const View &V, std::string *Err) {
  return applyViewAt(V, 0, Err);
}

bool IndexSpace::applyViewAt(const View &V, unsigned Depth, std::string *Err) {
  auto Fail = [&](std::string Msg) {
    if (Err)
      *Err = std::move(Msg);
    return false;
  };
  if (Depth >= LogicalDims.size())
    return Fail(strfmt("view '%s' applied beyond the array rank",
                       V.str().c_str()));

  switch (V.Kind) {
  case ViewKind::Group: {
    // dims[D] -> (dims[D]/k, k); $D -> $D*k + $(D+1); shift the rest up.
    Nat K = V.Arg;
    Nat N = LogicalDims[Depth];
    std::map<std::string, Nat> Subst;
    Subst[indexPlaceholder(Depth)] =
        Nat::var(indexPlaceholder(Depth)) * K +
        Nat::var(indexPlaceholder(Depth + 1));
    for (unsigned I = Depth + 1; I < LogicalDims.size(); ++I)
      Subst[indexPlaceholder(I)] = Nat::var(indexPlaceholder(I + 1));
    renamePlaceholders(Subst);
    LogicalDims[Depth] = Nat::div(N, K).simplified();
    LogicalDims.insert(LogicalDims.begin() + Depth + 1, K);
    return true;
  }
  case ViewKind::SplitView:
    return Fail("split views require an immediate .fst/.snd projection");
  case ViewKind::Transpose: {
    if (Depth + 1 >= LogicalDims.size())
      return Fail("transpose requires a two-dimensional array");
    std::map<std::string, Nat> Subst;
    Subst[indexPlaceholder(Depth)] = Nat::var(indexPlaceholder(Depth + 1));
    Subst[indexPlaceholder(Depth + 1)] = Nat::var(indexPlaceholder(Depth));
    renamePlaceholders(Subst);
    std::swap(LogicalDims[Depth], LogicalDims[Depth + 1]);
    return true;
  }
  case ViewKind::Reverse: {
    std::map<std::string, Nat> Subst;
    Subst[indexPlaceholder(Depth)] =
        Nat::sub(Nat::sub(LogicalDims[Depth], Nat::lit(1)),
                 Nat::var(indexPlaceholder(Depth)));
    renamePlaceholders(Subst);
    return true;
  }
  case ViewKind::Map: {
    for (const View &SubView : V.Sub)
      if (!applyViewAt(SubView, Depth + 1, Err))
        return false;
    return true;
  }
  case ViewKind::Repeat: {
    // A broadcast dimension: the new coordinate does not reach the
    // physical index, so binding it later simply drops it.
    std::map<std::string, Nat> Subst;
    for (unsigned I = Depth; I < LogicalDims.size(); ++I)
      Subst[indexPlaceholder(I)] = Nat::var(indexPlaceholder(I + 1));
    renamePlaceholders(Subst);
    LogicalDims.insert(LogicalDims.begin() + Depth, V.Arg);
    return true;
  }
  }
  return Fail("unknown view kind");
}

bool IndexSpace::takeSplitPart(Nat K, bool TakeFst, std::string *Err) {
  if (LogicalDims.empty()) {
    if (Err)
      *Err = "split applied to a scalar";
    return false;
  }
  if (TakeFst) {
    LogicalDims[0] = std::move(K);
    return true;
  }
  std::map<std::string, Nat> Subst;
  Subst[indexPlaceholder(0)] = Nat::var(indexPlaceholder(0)) + K;
  renamePlaceholders(Subst);
  LogicalDims[0] = Nat::sub(LogicalDims[0], K).simplified();
  return true;
}

bool IndexSpace::bindOuter(const Nat &Coord, std::string *Err) {
  if (LogicalDims.empty()) {
    if (Err)
      *Err = "index applied to a scalar";
    return false;
  }
  std::map<std::string, Nat> Subst;
  Subst[indexPlaceholder(0)] = Coord;
  for (unsigned I = 1; I < LogicalDims.size(); ++I)
    Subst[indexPlaceholder(I)] = Nat::var(indexPlaceholder(I - 1));
  renamePlaceholders(Subst);
  LogicalDims.erase(LogicalDims.begin());
  return true;
}

Nat IndexSpace::flatten(std::string *Err) const {
  if (!LogicalDims.empty()) {
    if (Err)
      *Err = strfmt("access does not reach a scalar element; %u dimensions "
                    "remain",
                    rank());
    return Nat();
  }
  return flattenOrigin();
}

Nat IndexSpace::flattenOrigin() const {
  // Row-major: flat = sum_i Phys[i] * prod_{j>i} OrigDims[j]. Unbound
  // placeholders (remaining logical dims) are taken at their origin, i.e.
  // substituted with 0.
  std::map<std::string, Nat> Zeros;
  for (unsigned I = 0; I < LogicalDims.size(); ++I)
    Zeros[indexPlaceholder(I)] = Nat::lit(0);

  Nat Flat = Nat::lit(0);
  Nat Stride = Nat::lit(1);
  for (unsigned I = OrigDims.size(); I-- > 0;) {
    Nat P = Zeros.empty() ? Phys[I] : Phys[I].substitute(Zeros);
    Flat = Flat + P * Stride;
    Stride = Stride * OrigDims[I];
  }
  return Flat.simplified();
}

std::string IndexSpace::debugString() const {
  std::ostringstream OS;
  OS << "logical [";
  for (size_t I = 0; I != LogicalDims.size(); ++I) {
    if (I)
      OS << ", ";
    OS << LogicalDims[I].str();
  }
  OS << "] phys (";
  for (size_t I = 0; I != Phys.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Phys[I].simplified().str();
  }
  OS << ")";
  return OS.str();
}
