//===- views/IndexSpace.h - View index lowering -----------------*- C++ -*-===//
//
// Part of the Descend reproduction. Compiles a chain of views, selections
// and indexings into a flat memory index expression, as described in
// Section 5: "Each view takes the previous index and transforms it until
// the resulting index expresses a combination of all views".
//
// The state is a symbolic mapping from the current *logical* multi-index
// (placeholder variables $0, $1, ...) to the *physical* multi-index of the
// original array nest. Applying a view rewrites the mapping; binding a
// coordinate (a selection's blockIdx/threadIdx or an explicit index)
// consumes the outermost logical dimension. When every dimension is bound,
// flatten() produces the row-major flat index, normalized by the nat
// simplifier so that generated code carries no view overhead.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_VIEWS_INDEXSPACE_H
#define DESCEND_VIEWS_INDEXSPACE_H

#include "views/View.h"

#include <string>
#include <vector>

namespace descend {

class IndexSpace {
public:
  /// Identity mapping over a physical array nest with the given dimension
  /// sizes (outermost first).
  static IndexSpace fromDims(std::vector<Nat> Dims);

  /// Number of not-yet-bound logical dimensions.
  unsigned rank() const { return LogicalDims.size(); }

  /// Size of logical dimension \p I (0 = outermost).
  const Nat &logicalDim(unsigned I) const { return LogicalDims[I]; }

  /// Applies \p V at the outermost dimension. Split views must go through
  /// takeSplitPart instead. Returns false and sets \p Err on shape errors.
  bool applyView(const View &V, std::string *Err);

  /// split::<k>.fst / .snd — narrows the outermost dimension.
  bool takeSplitPart(Nat K, bool TakeFst, std::string *Err);

  /// Substitutes \p Coord for the outermost logical dimension.
  bool bindOuter(const Nat &Coord, std::string *Err);

  /// Row-major flat index; requires rank() == 0.
  Nat flatten(std::string *Err) const;

  /// Flat offset of the element at logical index (0, ..., 0) plus the
  /// remaining logical extent — used when whole sub-arrays are accessed.
  Nat flattenOrigin() const;

  std::string debugString() const;

private:
  bool applyViewAt(const View &V, unsigned Depth, std::string *Err);
  void renamePlaceholders(const std::map<std::string, Nat> &Subst);

  std::vector<Nat> OrigDims;
  std::vector<Nat> LogicalDims;
  std::vector<Nat> Phys; // one entry per original dimension
};

/// Placeholder variable name for logical dimension \p I.
std::string indexPlaceholder(unsigned I);

} // namespace descend

#endif // DESCEND_VIEWS_INDEXSPACE_H
