//===- ast/Expr.cpp - Term utilities and printing --------------------------===//

#include "ast/Expr.h"

#include "ast/Item.h"

#include <cassert>
#include <sstream>

using namespace descend;

//===----------------------------------------------------------------------===//
// Places
//===----------------------------------------------------------------------===//

const PlaceExpr *descend::basePlace(const PlaceExpr *P) {
  switch (P->kind()) {
  case ExprKind::PlaceVar:
    return nullptr;
  case ExprKind::PlaceProj:
    return cast<PlaceProj>(P)->Base.get();
  case ExprKind::PlaceDeref:
    return cast<PlaceDeref>(P)->Base.get();
  case ExprKind::PlaceIndex:
    return cast<PlaceIndex>(P)->Base.get();
  case ExprKind::PlaceSelect:
    return cast<PlaceSelect>(P)->Base.get();
  case ExprKind::PlaceView:
    return cast<PlaceView>(P)->Base.get();
  default:
    assert(false && "not a place expression");
    return nullptr;
  }
}

PlaceExpr *descend::basePlace(PlaceExpr *P) {
  return const_cast<PlaceExpr *>(
      basePlace(static_cast<const PlaceExpr *>(P)));
}

const std::string &PlaceExpr::rootVar() const {
  const PlaceExpr *P = this;
  while (const PlaceExpr *Base = basePlace(P))
    P = Base;
  return cast<PlaceVar>(P)->Name;
}

std::string PlaceExpr::str() const { return exprToString(*this); }

//===----------------------------------------------------------------------===//
// Literals
//===----------------------------------------------------------------------===//

ExprPtr LiteralExpr::makeInt(long long V, ScalarKind K) {
  auto E = std::make_unique<LiteralExpr>(K);
  E->IntValue = V;
  return E;
}

ExprPtr LiteralExpr::makeFloat(double V, ScalarKind K) {
  auto E = std::make_unique<LiteralExpr>(K);
  E->FloatValue = V;
  return E;
}

ExprPtr LiteralExpr::makeBool(bool V) {
  auto E = std::make_unique<LiteralExpr>(ScalarKind::Bool);
  E->BoolValue = V;
  return E;
}

ExprPtr LiteralExpr::makeUnit() {
  return std::make_unique<LiteralExpr>(ScalarKind::Unit);
}

const char *descend::binOpSpelling(BinOpKind K) {
  switch (K) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Div:
    return "/";
  case BinOpKind::Mod:
    return "%";
  case BinOpKind::Eq:
    return "==";
  case BinOpKind::Ne:
    return "!=";
  case BinOpKind::Lt:
    return "<";
  case BinOpKind::Le:
    return "<=";
  case BinOpKind::Gt:
    return ">";
  case BinOpKind::Ge:
    return ">=";
  case BinOpKind::And:
    return "&&";
  case BinOpKind::Or:
    return "||";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Traversal
//===----------------------------------------------------------------------===//

void descend::forEachChild(Expr &E, const std::function<void(Expr &)> &Fn) {
  switch (E.kind()) {
  case ExprKind::PlaceVar:
  case ExprKind::Literal:
  case ExprKind::Sync:
  case ExprKind::Alloc:
    return;
  case ExprKind::PlaceProj:
    Fn(*cast<PlaceProj>(&E)->Base);
    return;
  case ExprKind::PlaceDeref:
    Fn(*cast<PlaceDeref>(&E)->Base);
    return;
  case ExprKind::PlaceIndex: {
    auto *P = cast<PlaceIndex>(&E);
    Fn(*P->Base);
    Fn(*P->Index);
    return;
  }
  case ExprKind::PlaceSelect:
    Fn(*cast<PlaceSelect>(&E)->Base);
    return;
  case ExprKind::PlaceView:
    Fn(*cast<PlaceView>(&E)->Base);
    return;
  case ExprKind::Binary: {
    auto *B = cast<BinaryExpr>(&E);
    Fn(*B->Lhs);
    Fn(*B->Rhs);
    return;
  }
  case ExprKind::Unary:
    Fn(*cast<UnaryExpr>(&E)->Sub);
    return;
  case ExprKind::Let:
    Fn(*cast<LetExpr>(&E)->Init);
    return;
  case ExprKind::Assign: {
    auto *A = cast<AssignExpr>(&E);
    Fn(*A->Lhs);
    Fn(*A->Rhs);
    return;
  }
  case ExprKind::Borrow:
    Fn(*cast<BorrowExpr>(&E)->Place);
    return;
  case ExprKind::Block:
    for (const ExprPtr &S : cast<BlockExpr>(&E)->Stmts)
      Fn(*S);
    return;
  case ExprKind::Call:
    for (const ExprPtr &A : cast<CallExpr>(&E)->Args)
      Fn(*A);
    return;
  case ExprKind::ArrayInit:
    Fn(*cast<ArrayInitExpr>(&E)->Elem);
    return;
  case ExprKind::ForEach: {
    auto *F = cast<ForEachExpr>(&E);
    Fn(*F->Collection);
    Fn(*F->Body);
    return;
  }
  case ExprKind::ForNat:
    Fn(*cast<ForNatExpr>(&E)->Body);
    return;
  case ExprKind::Sched:
    Fn(*cast<SchedExpr>(&E)->Body);
    return;
  case ExprKind::Split: {
    auto *S = cast<SplitExpr>(&E);
    Fn(*S->FstBody);
    Fn(*S->SndBody);
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {
void printExpr(const Expr &E, std::ostringstream &OS) {
  switch (E.kind()) {
  case ExprKind::PlaceVar:
    OS << cast<PlaceVar>(&E)->Name;
    return;
  case ExprKind::PlaceProj: {
    const auto *P = cast<PlaceProj>(&E);
    printExpr(*P->Base, OS);
    OS << (P->Which == 0 ? ".fst" : ".snd");
    return;
  }
  case ExprKind::PlaceDeref: {
    OS << "(*";
    printExpr(*cast<PlaceDeref>(&E)->Base, OS);
    OS << ")";
    return;
  }
  case ExprKind::PlaceIndex: {
    const auto *P = cast<PlaceIndex>(&E);
    printExpr(*P->Base, OS);
    OS << "[";
    printExpr(*P->Index, OS);
    OS << "]";
    return;
  }
  case ExprKind::PlaceSelect: {
    const auto *P = cast<PlaceSelect>(&E);
    printExpr(*P->Base, OS);
    OS << "[[" << P->ExecName << "]]";
    return;
  }
  case ExprKind::PlaceView: {
    const auto *P = cast<PlaceView>(&E);
    printExpr(*P->Base, OS);
    OS << "." << P->ViewName;
    if (!P->NatArgs.empty()) {
      OS << "::<";
      for (size_t I = 0; I != P->NatArgs.size(); ++I) {
        if (I)
          OS << ", ";
        OS << P->NatArgs[I].str();
      }
      OS << ">";
    }
    return;
  }
  case ExprKind::Literal: {
    const auto *L = cast<LiteralExpr>(&E);
    switch (L->Scalar) {
    case ScalarKind::Bool:
      OS << (L->BoolValue ? "true" : "false");
      return;
    case ScalarKind::F32:
    case ScalarKind::F64: {
      std::string S = std::to_string(L->FloatValue);
      OS << S;
      if (L->Scalar == ScalarKind::F32)
        OS << "f32";
      return;
    }
    case ScalarKind::Unit:
      OS << "()";
      return;
    default:
      OS << L->IntValue;
      return;
    }
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    OS << "(";
    printExpr(*B->Lhs, OS);
    OS << " " << binOpSpelling(B->Op) << " ";
    printExpr(*B->Rhs, OS);
    OS << ")";
    return;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    OS << (U->Op == UnOpKind::Neg ? "-" : "!");
    printExpr(*U->Sub, OS);
    return;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(&E);
    OS << "let " << L->Name;
    if (L->Annotation)
      OS << ": " << L->Annotation->str();
    OS << " = ";
    printExpr(*L->Init, OS);
    return;
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(&E);
    printExpr(*A->Lhs, OS);
    OS << " = ";
    printExpr(*A->Rhs, OS);
    return;
  }
  case ExprKind::Borrow: {
    const auto *B = cast<BorrowExpr>(&E);
    OS << "&";
    if (B->Own == Ownership::Uniq)
      OS << "uniq ";
    printExpr(*B->Place, OS);
    return;
  }
  case ExprKind::Block: {
    const auto *B = cast<BlockExpr>(&E);
    OS << "{ ";
    for (const ExprPtr &S : B->Stmts) {
      printExpr(*S, OS);
      OS << "; ";
    }
    OS << "}";
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    OS << C->Callee;
    if (C->IsLaunch)
      OS << "::<<<" << C->LaunchGrid.str() << ", " << C->LaunchBlock.str()
         << ">>>";
    else if (!C->Generics.empty()) {
      OS << "::<";
      for (size_t I = 0; I != C->Generics.size(); ++I) {
        if (I)
          OS << ", ";
        const GenericArg &G = C->Generics[I];
        switch (G.Kind) {
        case ParamKind::Nat:
          OS << G.N.str();
          break;
        case ParamKind::Memory:
          OS << G.M.str();
          break;
        case ParamKind::DataType:
          OS << G.T->str();
          break;
        }
      }
      OS << ">";
    }
    OS << "(";
    for (size_t I = 0; I != C->Args.size(); ++I) {
      if (I)
        OS << ", ";
      printExpr(*C->Args[I], OS);
    }
    OS << ")";
    return;
  }
  case ExprKind::Alloc: {
    const auto *A = cast<AllocExpr>(&E);
    OS << "alloc::<" << A->Mem.str() << ", " << A->AllocTy->str() << ">()";
    return;
  }
  case ExprKind::ForEach: {
    const auto *F = cast<ForEachExpr>(&E);
    OS << "for " << F->Var << " in ";
    printExpr(*F->Collection, OS);
    OS << " ";
    printExpr(*F->Body, OS);
    return;
  }
  case ExprKind::ForNat: {
    const auto *F = cast<ForNatExpr>(&E);
    OS << "for " << F->Var << " in [" << F->Lo.str() << ".." << F->Hi.str()
       << "] ";
    printExpr(*F->Body, OS);
    return;
  }
  case ExprKind::Sched: {
    const auto *S = cast<SchedExpr>(&E);
    OS << "sched(";
    for (size_t I = 0; I != S->Axes.size(); ++I) {
      if (I)
        OS << ",";
      OS << axisName(S->Axes[I]);
    }
    OS << ") " << S->Binder << " in " << S->Target << " ";
    printExpr(*S->Body, OS);
    return;
  }
  case ExprKind::Split: {
    const auto *S = cast<SplitExpr>(&E);
    OS << "split(" << axisName(S->SplitAxis) << ") " << S->Target << " at "
       << S->Position.str() << " { " << S->FstName << " => ";
    printExpr(*S->FstBody, OS);
    OS << ", " << S->SndName << " => ";
    printExpr(*S->SndBody, OS);
    OS << " }";
    return;
  }
  case ExprKind::ArrayInit: {
    const auto *A = cast<ArrayInitExpr>(&E);
    OS << "[";
    printExpr(*A->Elem, OS);
    OS << "; " << A->Count.str() << "]";
    return;
  }
  case ExprKind::Sync:
    OS << "sync";
    return;
  }
}
} // namespace

std::string descend::exprToString(const Expr &E) {
  std::ostringstream OS;
  printExpr(E, OS);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// FnDef
//===----------------------------------------------------------------------===//

std::string FnDef::signature() const {
  std::ostringstream OS;
  OS << "fn " << Name;
  if (!Generics.empty()) {
    OS << "<";
    for (size_t I = 0; I != Generics.size(); ++I) {
      if (I)
        OS << ", ";
      OS << Generics[I].Name << ": " << paramKindName(Generics[I].Kind);
    }
    OS << ">";
  }
  OS << "(";
  for (size_t I = 0; I != Params.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Params[I].Name << ": " << Params[I].Ty->str();
  }
  OS << ") -[" << ExecName << ": " << Exec.str() << "]-> "
     << (RetTy ? RetTy->str() : "()");
  return OS.str();
}
