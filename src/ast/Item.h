//===- ast/Item.h - Top-level Descend items ---------------------*- C++ -*-===//
//
// Part of the Descend reproduction. Top-level declarations: polymorphic
// functions (Fig. 6 function types, with the execution-resource annotation
// above the arrow) and composite view definitions such as
//
//   view group_by_row<row_size: nat, num_rows: nat> =
//     group::<row_size/num_rows>.map(transpose)
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_AST_ITEM_H
#define DESCEND_AST_ITEM_H

#include "ast/Expr.h"

#include <memory>
#include <string>
#include <vector>

namespace descend {

/// <x : κ> — a generic parameter of kind nat, mem or dty.
struct GenericParam {
  std::string Name;
  ParamKind Kind = ParamKind::Nat;
  SourceRange Range;
};

struct FnParam {
  std::string Name;
  TypeRef Ty;
  SourceRange Range;
};

/// fn f<X: κ, ...>(x: δ, ...) -[e: ε]-> δ { body }
class FnDef {
public:
  std::string Name;
  std::vector<GenericParam> Generics;
  std::vector<FnParam> Params;
  /// The name binding the execution resource inside the body (e.g. "grid").
  std::string ExecName;
  ExecLevel Exec;
  TypeRef RetTy;
  ExprPtr Body; // a BlockExpr; may be null for declarations
  SourceRange Range;

  bool isGpuFn() const { return Exec.Kind == ExecLevelKind::GpuGrid; }
  bool isCpuFn() const { return Exec.Kind == ExecLevelKind::CpuThread; }

  /// Function signature rendered in surface syntax (diagnostics).
  std::string signature() const;
};

/// One step in a composite view body: a named view with nat arguments and
/// (for `map`) nested view arguments.
struct ViewStep {
  std::string Name;
  std::vector<Nat> NatArgs;
  std::vector<std::vector<ViewStep>> ViewArgs; // each arg is a view chain
  SourceRange Range;
};

/// view v<x: nat, ...> = step.step...
class ViewDef {
public:
  std::string Name;
  std::vector<GenericParam> Generics;
  std::vector<ViewStep> Body;
  SourceRange Range;
};

/// A parsed compilation unit.
class Module {
public:
  std::vector<std::unique_ptr<FnDef>> Fns;
  std::vector<std::unique_ptr<ViewDef>> Views;

  const FnDef *findFn(const std::string &Name) const {
    for (const auto &F : Fns)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }
  const ViewDef *findView(const std::string &Name) const {
    for (const auto &V : Views)
      if (V->Name == Name)
        return V.get();
    return nullptr;
  }
};

} // namespace descend

#endif // DESCEND_AST_ITEM_H
