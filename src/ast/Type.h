//===- ast/Type.h - Descend types, memories, exec levels --------*- C++ -*-===//
//
// Part of the Descend reproduction. Implements the type syntax of Fig. 6:
//
//   δ ::= i32 | f64 | ... | unit            scalar types
//       | (δ1, ..., δn)                     tuple types
//       | [δ; η] | [[δ; η]]                 array (view) types
//       | &[uniq] µ δ                       reference types
//       | δ @ µ                             boxed types
//       | x                                 type variables
//
//   µ ::= cpu.mem | gpu.global | gpu.shared | m        memories
//   ε ::= cpu.Thread | gpu.Grid d d | gpu.Block d | gpu.Thread   exec levels
//
// and the dimension syntax of Fig. 2 (XYZ<η,η,η>, XY<η,η>, ..., X<η>).
//
// Types are immutable and shared (TypeRef). Equality is structural with
// Nat::proveEq deciding size equality, which is what makes launch
// configuration checking with polymorphic sizes work (Section 3.5).
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_AST_TYPE_H
#define DESCEND_AST_TYPE_H

#include "nat/Nat.h"
#include "support/Casting.h"

#include <cassert>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace descend {

//===----------------------------------------------------------------------===//
// Memory spaces (µ)
//===----------------------------------------------------------------------===//

enum class MemoryKind { CpuMem, GpuGlobal, GpuShared, Var };

/// A memory space annotation. Var is a memory polymorphism variable (m).
struct Memory {
  MemoryKind Kind = MemoryKind::CpuMem;
  std::string Name; // only for Var

  Memory() = default;
  explicit Memory(MemoryKind Kind) : Kind(Kind) {}
  static Memory cpuMem() { return Memory(MemoryKind::CpuMem); }
  static Memory gpuGlobal() { return Memory(MemoryKind::GpuGlobal); }
  static Memory gpuShared() { return Memory(MemoryKind::GpuShared); }
  static Memory var(std::string Name) {
    Memory M(MemoryKind::Var);
    M.Name = std::move(Name);
    return M;
  }

  bool isVar() const { return Kind == MemoryKind::Var; }
  bool isGpu() const {
    return Kind == MemoryKind::GpuGlobal || Kind == MemoryKind::GpuShared;
  }
  bool isCpu() const { return Kind == MemoryKind::CpuMem; }

  std::string str() const;

  friend bool operator==(const Memory &A, const Memory &B) {
    return A.Kind == B.Kind && A.Name == B.Name;
  }
};

//===----------------------------------------------------------------------===//
// Dimensions (d) and axes
//===----------------------------------------------------------------------===//

enum class Axis { X, Y, Z };

const char *axisName(Axis A);

/// A 1-, 2- or 3-dimensional shape. Fig. 2: the dimension *kind* (XY vs XYZ
/// vs X, ...) is part of the type so that scheduling over a missing
/// dimension is a static error. Missing axes hold a null Nat.
struct Dim {
  Nat X, Y, Z; // null when the axis is absent

  Dim() = default;

  static Dim makeX(Nat N) {
    Dim D;
    D.X = std::move(N);
    return D;
  }
  static Dim makeXY(Nat NX, Nat NY) {
    Dim D;
    D.X = std::move(NX);
    D.Y = std::move(NY);
    return D;
  }
  static Dim makeXYZ(Nat NX, Nat NY, Nat NZ) {
    Dim D;
    D.X = std::move(NX);
    D.Y = std::move(NY);
    D.Z = std::move(NZ);
    return D;
  }

  bool hasAxis(Axis A) const {
    switch (A) {
    case Axis::X:
      return !X.isNull();
    case Axis::Y:
      return !Y.isNull();
    case Axis::Z:
      return !Z.isNull();
    }
    return false;
  }

  Nat extent(Axis A) const {
    switch (A) {
    case Axis::X:
      return X;
    case Axis::Y:
      return Y;
    case Axis::Z:
      return Z;
    }
    return Nat();
  }

  void setExtent(Axis A, Nat N) {
    switch (A) {
    case Axis::X:
      X = std::move(N);
      return;
    case Axis::Y:
      Y = std::move(N);
      return;
    case Axis::Z:
      Z = std::move(N);
      return;
    }
  }

  unsigned rank() const {
    return (hasAxis(Axis::X) ? 1 : 0) + (hasAxis(Axis::Y) ? 1 : 0) +
           (hasAxis(Axis::Z) ? 1 : 0);
  }

  /// Total number of elements (product of present extents, 1 if empty).
  Nat total() const;

  /// Renders Fig. 2 notation, e.g. "XY<64, 64>".
  std::string str() const;

  Dim substitute(const std::map<std::string, Nat> &Subst) const;

  friend bool operator==(const Dim &A, const Dim &B);
};

//===----------------------------------------------------------------------===//
// Execution levels (ε)
//===----------------------------------------------------------------------===//

enum class ExecLevelKind { CpuThread, GpuGrid, GpuBlock, GpuThread };

/// The execution level a function is annotated with (above the arrow in
/// Fig. 6). GpuGrid carries the grid-of-blocks and threads-per-block dims;
/// GpuBlock carries its thread dim.
struct ExecLevel {
  ExecLevelKind Kind = ExecLevelKind::CpuThread;
  Dim GridDim;   // blocks in the grid (GpuGrid only)
  Dim BlockDim;  // threads per block (GpuGrid and GpuBlock)

  static ExecLevel cpuThread() { return ExecLevel{}; }
  static ExecLevel gpuGrid(Dim Grid, Dim Block) {
    ExecLevel E;
    E.Kind = ExecLevelKind::GpuGrid;
    E.GridDim = std::move(Grid);
    E.BlockDim = std::move(Block);
    return E;
  }
  static ExecLevel gpuBlock(Dim Block) {
    ExecLevel E;
    E.Kind = ExecLevelKind::GpuBlock;
    E.BlockDim = std::move(Block);
    return E;
  }
  static ExecLevel gpuThread() {
    ExecLevel E;
    E.Kind = ExecLevelKind::GpuThread;
    return E;
  }

  bool isGpu() const { return Kind != ExecLevelKind::CpuThread; }
  std::string str() const;
  ExecLevel substitute(const std::map<std::string, Nat> &Subst) const;

  friend bool operator==(const ExecLevel &A, const ExecLevel &B);
};

bool operator==(const Dim &A, const Dim &B);
bool operator==(const ExecLevel &A, const ExecLevel &B);

//===----------------------------------------------------------------------===//
// Data types (δ)
//===----------------------------------------------------------------------===//

enum class TypeKind { Scalar, Tuple, Array, ArrayView, Ref, Box, TypeVar };

enum class ScalarKind { I32, I64, U32, U64, F32, F64, Bool, Unit };

const char *scalarKindName(ScalarKind K);

enum class Ownership { Shrd, Uniq };

class DataType;
using TypeRef = std::shared_ptr<const DataType>;

/// Base of the immutable data-type hierarchy. Construct via the factory
/// functions below (makeScalar, makeArray, ...).
class DataType {
public:
  explicit DataType(TypeKind Kind) : Kind(Kind) {}
  virtual ~DataType() = default;

  TypeKind kind() const { return Kind; }

  /// Structural equality; array sizes compare via Nat::proveEq.
  static bool equal(const TypeRef &A, const TypeRef &B);

  /// Human-readable rendering using the paper's surface syntax.
  std::string str() const;

  /// Copyable per Rust semantics: scalars, shared references and tuples of
  /// copyables copy; arrays, boxes, view arrays and unique references move.
  bool isCopyable() const;

  /// True if the type contains no type/memory/nat variables.
  bool isConcrete() const;

private:
  TypeKind Kind;
};

class ScalarType : public DataType {
public:
  ScalarKind Scalar;

  explicit ScalarType(ScalarKind S) : DataType(TypeKind::Scalar), Scalar(S) {}
  static bool classof(const DataType *T) {
    return T->kind() == TypeKind::Scalar;
  }
};

class TupleType : public DataType {
public:
  std::vector<TypeRef> Elems;

  explicit TupleType(std::vector<TypeRef> Elems)
      : DataType(TypeKind::Tuple), Elems(std::move(Elems)) {}
  static bool classof(const DataType *T) {
    return T->kind() == TypeKind::Tuple;
  }
};

/// [δ; η] — a contiguous array of η elements.
class ArrayType : public DataType {
public:
  TypeRef Elem;
  Nat Size;

  ArrayType(TypeRef Elem, Nat Size)
      : DataType(TypeKind::Array), Elem(std::move(Elem)),
        Size(std::move(Size)) {}
  static bool classof(const DataType *T) {
    return T->kind() == TypeKind::Array;
  }
};

/// [[δ; η]] — an array reshaped by views; not necessarily contiguous.
class ArrayViewType : public DataType {
public:
  TypeRef Elem;
  Nat Size;

  ArrayViewType(TypeRef Elem, Nat Size)
      : DataType(TypeKind::ArrayView), Elem(std::move(Elem)),
        Size(std::move(Size)) {}
  static bool classof(const DataType *T) {
    return T->kind() == TypeKind::ArrayView;
  }
};

/// &[uniq] µ δ — reference with ownership qualifier and memory annotation.
class RefType : public DataType {
public:
  Ownership Own;
  Memory Mem;
  TypeRef Pointee;

  RefType(Ownership Own, Memory Mem, TypeRef Pointee)
      : DataType(TypeKind::Ref), Own(Own), Mem(std::move(Mem)),
        Pointee(std::move(Pointee)) {}
  static bool classof(const DataType *T) { return T->kind() == TypeKind::Ref; }
};

/// δ @ µ — a smartly-managed allocation living in memory space µ.
class BoxType : public DataType {
public:
  TypeRef Elem;
  Memory Mem;

  BoxType(TypeRef Elem, Memory Mem)
      : DataType(TypeKind::Box), Elem(std::move(Elem)), Mem(std::move(Mem)) {}
  static bool classof(const DataType *T) { return T->kind() == TypeKind::Box; }
};

class TypeVarType : public DataType {
public:
  std::string Name;

  explicit TypeVarType(std::string Name)
      : DataType(TypeKind::TypeVar), Name(std::move(Name)) {}
  static bool classof(const DataType *T) {
    return T->kind() == TypeKind::TypeVar;
  }
};

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

TypeRef makeScalar(ScalarKind K);
TypeRef makeUnit();
TypeRef makeTuple(std::vector<TypeRef> Elems);
TypeRef makeArray(TypeRef Elem, Nat Size);
TypeRef makeArrayView(TypeRef Elem, Nat Size);
TypeRef makeRef(Ownership Own, Memory Mem, TypeRef Pointee);
TypeRef makeBox(TypeRef Elem, Memory Mem);
TypeRef makeTypeVar(std::string Name);

/// Substitution of nat / memory / type variables (function instantiation).
struct TypeSubst {
  std::map<std::string, Nat> Nats;
  std::map<std::string, Memory> Mems;
  std::map<std::string, TypeRef> Types;

  bool empty() const {
    return Nats.empty() && Mems.empty() && Types.empty();
  }
};

TypeRef substituteType(const TypeRef &T, const TypeSubst &Subst);
Memory substituteMemory(const Memory &M, const TypeSubst &Subst);

//===----------------------------------------------------------------------===//
// Kinds (κ) for generic parameters
//===----------------------------------------------------------------------===//

enum class ParamKind { Nat, Memory, DataType };

const char *paramKindName(ParamKind K);

} // namespace descend

#endif // DESCEND_AST_TYPE_H
