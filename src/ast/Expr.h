//===- ast/Expr.h - Descend terms (Fig. 5) ----------------------*- C++ -*-===//
//
// Part of the Descend reproduction. Implements the term syntax of Fig. 5:
//
//   t ::= p                               place expression
//       | let x : δ = t                   definition
//       | p = t                           assignment
//       | &[uniq] p                       (unique) borrow
//       | { t }                           block
//       | f::<η, µ, δ>(t)                 function application
//       | for x in t { t }                for-each loop
//       | for n in rn { t }               for-nat loop
//       | sched([X|Y|Z]) x in e { t }     schedule computation
//       | split([X|Y|Z]) e at η {...}     split execution resource
//       | sync                            barrier synchronization
//
// plus literals and arithmetic needed by real programs, the alloc
// intrinsic of Section 3.4, and kernel launches f::<<<d, d>>>(...) of
// Section 3.5. Place expressions (Fig. 3) form a sub-hierarchy of Expr so
// they can appear both as terms and as assignment targets.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_AST_EXPR_H
#define DESCEND_AST_EXPR_H

#include "ast/Type.h"
#include "support/SourceLocation.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace descend {

enum class ExprKind {
  // Place expressions (Fig. 3). Keep contiguous: classof relies on range.
  PlaceVar,
  PlaceProj,
  PlaceDeref,
  PlaceIndex,
  PlaceSelect,
  PlaceView,
  // Other terms.
  Literal,
  Binary,
  Unary,
  Let,
  Assign,
  Borrow,
  Block,
  Call,
  Alloc,
  ArrayInit,
  ForEach,
  ForNat,
  Sched,
  Split,
  Sync,
};

class Expr;
class PlaceExpr;
using ExprPtr = std::unique_ptr<Expr>;
using PlacePtr = std::unique_ptr<PlaceExpr>;

/// Base class of all terms. Carries the source range and, after type
/// checking, the inferred type.
class Expr {
public:
  explicit Expr(ExprKind Kind) : Kind(Kind) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return Kind; }

  SourceRange Range;
  /// Filled in by the type checker.
  TypeRef Ty;

private:
  ExprKind Kind;
};

//===----------------------------------------------------------------------===//
// Place expressions (Fig. 3)
//===----------------------------------------------------------------------===//

/// p ::= x | p.fst | p.snd | *p | p[t] | p[[e]] | p.v::<η>(v)
class PlaceExpr : public Expr {
public:
  using Expr::Expr;
  static bool classof(const Expr *E) {
    return E->kind() >= ExprKind::PlaceVar && E->kind() <= ExprKind::PlaceView;
  }

  /// The root variable of this place (walks through base places).
  const std::string &rootVar() const;

  /// Renders the paper's place-expression syntax.
  std::string str() const;
};

class PlaceVar : public PlaceExpr {
public:
  std::string Name;

  explicit PlaceVar(std::string Name)
      : PlaceExpr(ExprKind::PlaceVar), Name(std::move(Name)) {}
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::PlaceVar;
  }
};

/// p.fst / p.snd — tuple projection.
class PlaceProj : public PlaceExpr {
public:
  PlacePtr Base;
  unsigned Which; // 0 == fst, 1 == snd

  PlaceProj(PlacePtr Base, unsigned Which)
      : PlaceExpr(ExprKind::PlaceProj), Base(std::move(Base)), Which(Which) {}
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::PlaceProj;
  }
};

/// *p — dereference.
class PlaceDeref : public PlaceExpr {
public:
  PlacePtr Base;

  explicit PlaceDeref(PlacePtr Base)
      : PlaceExpr(ExprKind::PlaceDeref), Base(std::move(Base)) {}
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::PlaceDeref;
  }
};

/// p[t] — indexing with a term (loop variable or literal).
class PlaceIndex : public PlaceExpr {
public:
  PlacePtr Base;
  ExprPtr Index;

  PlaceIndex(PlacePtr Base, ExprPtr Index)
      : PlaceExpr(ExprKind::PlaceIndex), Base(std::move(Base)),
        Index(std::move(Index)) {}
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::PlaceIndex;
  }
};

/// p[[e]] — selection of this execution resource's part of an array.
class PlaceSelect : public PlaceExpr {
public:
  PlacePtr Base;
  std::string ExecName;

  PlaceSelect(PlacePtr Base, std::string ExecName)
      : PlaceExpr(ExprKind::PlaceSelect), Base(std::move(Base)),
        ExecName(std::move(ExecName)) {}
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::PlaceSelect;
  }
};

/// p.v::<η,...> — view application; `v` may itself take view arguments
/// (map). The view name is resolved against builtins and `view` items.
class PlaceView : public PlaceExpr {
public:
  PlacePtr Base;
  std::string ViewName;
  std::vector<Nat> NatArgs;

  PlaceView(PlacePtr Base, std::string ViewName, std::vector<Nat> NatArgs)
      : PlaceExpr(ExprKind::PlaceView), Base(std::move(Base)),
        ViewName(std::move(ViewName)), NatArgs(std::move(NatArgs)) {}
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::PlaceView;
  }
};

/// Base place of any non-variable place expression, null for PlaceVar.
const PlaceExpr *basePlace(const PlaceExpr *P);
PlaceExpr *basePlace(PlaceExpr *P);

//===----------------------------------------------------------------------===//
// Literals and operators
//===----------------------------------------------------------------------===//

class LiteralExpr : public Expr {
public:
  ScalarKind Scalar;
  long long IntValue = 0;
  double FloatValue = 0.0;
  bool BoolValue = false;

  static ExprPtr makeInt(long long V, ScalarKind K = ScalarKind::I32);
  static ExprPtr makeFloat(double V, ScalarKind K = ScalarKind::F64);
  static ExprPtr makeBool(bool V);
  static ExprPtr makeUnit();

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Literal; }

  explicit LiteralExpr(ScalarKind K) : Expr(ExprKind::Literal), Scalar(K) {}
};

enum class BinOpKind {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

const char *binOpSpelling(BinOpKind K);

class BinaryExpr : public Expr {
public:
  BinOpKind Op;
  ExprPtr Lhs, Rhs;

  BinaryExpr(BinOpKind Op, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(ExprKind::Binary), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }
};

enum class UnOpKind { Neg, Not };

class UnaryExpr : public Expr {
public:
  UnOpKind Op;
  ExprPtr Sub;

  UnaryExpr(UnOpKind Op, ExprPtr Sub)
      : Expr(ExprKind::Unary), Op(Op), Sub(std::move(Sub)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }
};

//===----------------------------------------------------------------------===//
// Bindings, assignment, borrows, blocks
//===----------------------------------------------------------------------===//

/// let x [: δ] = t
class LetExpr : public Expr {
public:
  std::string Name;
  TypeRef Annotation; // may be null
  ExprPtr Init;

  LetExpr(std::string Name, TypeRef Annotation, ExprPtr Init)
      : Expr(ExprKind::Let), Name(std::move(Name)),
        Annotation(std::move(Annotation)), Init(std::move(Init)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Let; }
};

/// p = t
class AssignExpr : public Expr {
public:
  PlacePtr Lhs;
  ExprPtr Rhs;

  AssignExpr(PlacePtr Lhs, ExprPtr Rhs)
      : Expr(ExprKind::Assign), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Assign; }
};

/// &[uniq] p
class BorrowExpr : public Expr {
public:
  Ownership Own;
  PlacePtr Place;

  BorrowExpr(Ownership Own, PlacePtr Place)
      : Expr(ExprKind::Borrow), Own(Own), Place(std::move(Place)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Borrow; }
};

/// { t; t; ... } — introduces a scope.
class BlockExpr : public Expr {
public:
  std::vector<ExprPtr> Stmts;

  explicit BlockExpr(std::vector<ExprPtr> Stmts)
      : Expr(ExprKind::Block), Stmts(std::move(Stmts)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Block; }
};

//===----------------------------------------------------------------------===//
// Calls, launches, allocation
//===----------------------------------------------------------------------===//

/// A generic argument at a call site: exactly one member is active,
/// matching the declared kind of the corresponding generic parameter.
struct GenericArg {
  ParamKind Kind = ParamKind::Nat;
  Nat N;
  Memory M;
  TypeRef T;

  static GenericArg nat(Nat V) {
    GenericArg A;
    A.Kind = ParamKind::Nat;
    A.N = std::move(V);
    return A;
  }
  static GenericArg memory(Memory V) {
    GenericArg A;
    A.Kind = ParamKind::Memory;
    A.M = std::move(V);
    return A;
  }
  static GenericArg type(TypeRef V) {
    GenericArg A;
    A.Kind = ParamKind::DataType;
    A.T = std::move(V);
    return A;
  }
};

/// f::<η, µ, δ>(t, ...) — also used for builtin path functions such as
/// CpuHeap::new and GpuGlobal::alloc_copy. When IsLaunch is set this is a
/// kernel launch f::<<<GridDim, BlockDim>>>(...) per Section 3.5.
class CallExpr : public Expr {
public:
  std::string Callee;
  std::vector<GenericArg> Generics;
  std::vector<ExprPtr> Args;
  bool IsLaunch = false;
  Dim LaunchGrid, LaunchBlock;

  CallExpr(std::string Callee, std::vector<GenericArg> Generics,
           std::vector<ExprPtr> Args)
      : Expr(ExprKind::Call), Callee(std::move(Callee)),
        Generics(std::move(Generics)), Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }
};

/// alloc::<µ, δ>() — allocates (shared) memory at the current exec level.
class AllocExpr : public Expr {
public:
  Memory Mem;
  TypeRef AllocTy;

  AllocExpr(Memory Mem, TypeRef AllocTy)
      : Expr(ExprKind::Alloc), Mem(std::move(Mem)),
        AllocTy(std::move(AllocTy)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Alloc; }
};

/// [t; η] — array-repeat initializer, e.g. CpuHeap::new([0; n]).
class ArrayInitExpr : public Expr {
public:
  ExprPtr Elem;
  Nat Count;

  ArrayInitExpr(ExprPtr Elem, Nat Count)
      : Expr(ExprKind::ArrayInit), Elem(std::move(Elem)),
        Count(std::move(Count)) {}
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ArrayInit;
  }
};

//===----------------------------------------------------------------------===//
// Loops
//===----------------------------------------------------------------------===//

/// for x in t { t } — iterates over a collection.
class ForEachExpr : public Expr {
public:
  std::string Var;
  ExprPtr Collection;
  ExprPtr Body;

  ForEachExpr(std::string Var, ExprPtr Collection, ExprPtr Body)
      : Expr(ExprKind::ForEach), Var(std::move(Var)),
        Collection(std::move(Collection)), Body(std::move(Body)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::ForEach; }
};

/// for i in [lo..hi] { t } — statically evaluated range of naturals.
class ForNatExpr : public Expr {
public:
  std::string Var;
  Nat Lo, Hi;
  ExprPtr Body;

  ForNatExpr(std::string Var, Nat Lo, Nat Hi, ExprPtr Body)
      : Expr(ExprKind::ForNat), Var(std::move(Var)), Lo(std::move(Lo)),
        Hi(std::move(Hi)), Body(std::move(Body)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::ForNat; }
};

//===----------------------------------------------------------------------===//
// Scheduling primitives
//===----------------------------------------------------------------------===//

/// sched(A1, A2) x in e { t } — schedules the body over all sub-execution
/// resources of e along the listed axes, binding each as x.
class SchedExpr : public Expr {
public:
  std::vector<Axis> Axes;
  std::string Binder;
  std::string Target; // the enclosing execution resource variable
  ExprPtr Body;

  SchedExpr(std::vector<Axis> Axes, std::string Binder, std::string Target,
            ExprPtr Body)
      : Expr(ExprKind::Sched), Axes(std::move(Axes)),
        Binder(std::move(Binder)), Target(std::move(Target)),
        Body(std::move(Body)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Sched; }
};

/// split(A) e at η { x1 => { t }, x2 => { t } } — splits e into two
/// independent parts at position η along axis A.
class SplitExpr : public Expr {
public:
  Axis SplitAxis;
  std::string Target;
  Nat Position;
  std::string FstName, SndName;
  ExprPtr FstBody, SndBody;

  SplitExpr(Axis SplitAxis, std::string Target, Nat Position,
            std::string FstName, ExprPtr FstBody, std::string SndName,
            ExprPtr SndBody)
      : Expr(ExprKind::Split), SplitAxis(SplitAxis), Target(std::move(Target)),
        Position(std::move(Position)), FstName(std::move(FstName)),
        SndName(std::move(SndName)), FstBody(std::move(FstBody)),
        SndBody(std::move(SndBody)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Split; }
};

/// sync — block-wide barrier.
class SyncExpr : public Expr {
public:
  SyncExpr() : Expr(ExprKind::Sync) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Sync; }
};

//===----------------------------------------------------------------------===//
// Traversal helper
//===----------------------------------------------------------------------===//

/// Invokes \p Fn on every direct child of \p E (pre-order building block).
void forEachChild(Expr &E, const std::function<void(Expr &)> &Fn);

/// Renders any expression with the surface syntax (used in diagnostics and
/// --emit=ast).
std::string exprToString(const Expr &E);

} // namespace descend

#endif // DESCEND_AST_EXPR_H
