//===- ast/Type.cpp - Type equality, printing, substitution ---------------===//

#include "ast/Type.h"

#include <sstream>

using namespace descend;

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

std::string Memory::str() const {
  switch (Kind) {
  case MemoryKind::CpuMem:
    return "cpu.mem";
  case MemoryKind::GpuGlobal:
    return "gpu.global";
  case MemoryKind::GpuShared:
    return "gpu.shared";
  case MemoryKind::Var:
    return Name;
  }
  return "<memory>";
}

//===----------------------------------------------------------------------===//
// Axes and dimensions
//===----------------------------------------------------------------------===//

const char *descend::axisName(Axis A) {
  switch (A) {
  case Axis::X:
    return "X";
  case Axis::Y:
    return "Y";
  case Axis::Z:
    return "Z";
  }
  return "?";
}

Nat Dim::total() const {
  Nat T = Nat::lit(1);
  for (Axis A : {Axis::X, Axis::Y, Axis::Z})
    if (hasAxis(A))
      T = T * extent(A);
  return T;
}

std::string Dim::str() const {
  std::string Axes;
  std::vector<std::string> Extents;
  for (Axis A : {Axis::X, Axis::Y, Axis::Z})
    if (hasAxis(A)) {
      Axes += axisName(A);
      Extents.push_back(extent(A).str());
    }
  if (Axes.empty())
    return "<empty-dim>";
  std::string Out = Axes + "<";
  for (size_t I = 0; I != Extents.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Extents[I];
  }
  Out += ">";
  return Out;
}

Dim Dim::substitute(const std::map<std::string, Nat> &Subst) const {
  Dim Out;
  for (Axis A : {Axis::X, Axis::Y, Axis::Z})
    if (hasAxis(A))
      Out.setExtent(A, extent(A).substitute(Subst));
  return Out;
}

bool descend::operator==(const Dim &A, const Dim &B) {
  for (Axis Ax : {Axis::X, Axis::Y, Axis::Z}) {
    if (A.hasAxis(Ax) != B.hasAxis(Ax))
      return false;
    if (A.hasAxis(Ax) && !Nat::proveEq(A.extent(Ax), B.extent(Ax)))
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// ExecLevel
//===----------------------------------------------------------------------===//

std::string ExecLevel::str() const {
  switch (Kind) {
  case ExecLevelKind::CpuThread:
    return "cpu.thread";
  case ExecLevelKind::GpuGrid:
    return "gpu.grid<" + GridDim.str() + ", " + BlockDim.str() + ">";
  case ExecLevelKind::GpuBlock:
    return "gpu.block<" + BlockDim.str() + ">";
  case ExecLevelKind::GpuThread:
    return "gpu.thread";
  }
  return "<exec>";
}

ExecLevel ExecLevel::substitute(const std::map<std::string, Nat> &Subst) const {
  ExecLevel Out = *this;
  Out.GridDim = GridDim.substitute(Subst);
  Out.BlockDim = BlockDim.substitute(Subst);
  return Out;
}

bool descend::operator==(const ExecLevel &A, const ExecLevel &B) {
  return A.Kind == B.Kind && A.GridDim == B.GridDim && A.BlockDim == B.BlockDim;
}

//===----------------------------------------------------------------------===//
// Scalars / kinds
//===----------------------------------------------------------------------===//

const char *descend::scalarKindName(ScalarKind K) {
  switch (K) {
  case ScalarKind::I32:
    return "i32";
  case ScalarKind::I64:
    return "i64";
  case ScalarKind::U32:
    return "u32";
  case ScalarKind::U64:
    return "u64";
  case ScalarKind::F32:
    return "f32";
  case ScalarKind::F64:
    return "f64";
  case ScalarKind::Bool:
    return "bool";
  case ScalarKind::Unit:
    return "unit";
  }
  return "<scalar>";
}

const char *descend::paramKindName(ParamKind K) {
  switch (K) {
  case ParamKind::Nat:
    return "nat";
  case ParamKind::Memory:
    return "mem";
  case ParamKind::DataType:
    return "dty";
  }
  return "<kind>";
}

//===----------------------------------------------------------------------===//
// DataType
//===----------------------------------------------------------------------===//

bool DataType::equal(const TypeRef &A, const TypeRef &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B)
    return false;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TypeKind::Scalar:
    return cast<ScalarType>(A.get())->Scalar ==
           cast<ScalarType>(B.get())->Scalar;
  case TypeKind::Tuple: {
    const auto *TA = cast<TupleType>(A.get());
    const auto *TB = cast<TupleType>(B.get());
    if (TA->Elems.size() != TB->Elems.size())
      return false;
    for (size_t I = 0; I != TA->Elems.size(); ++I)
      if (!equal(TA->Elems[I], TB->Elems[I]))
        return false;
    return true;
  }
  case TypeKind::Array: {
    const auto *TA = cast<ArrayType>(A.get());
    const auto *TB = cast<ArrayType>(B.get());
    return Nat::proveEq(TA->Size, TB->Size) && equal(TA->Elem, TB->Elem);
  }
  case TypeKind::ArrayView: {
    const auto *TA = cast<ArrayViewType>(A.get());
    const auto *TB = cast<ArrayViewType>(B.get());
    return Nat::proveEq(TA->Size, TB->Size) && equal(TA->Elem, TB->Elem);
  }
  case TypeKind::Ref: {
    const auto *TA = cast<RefType>(A.get());
    const auto *TB = cast<RefType>(B.get());
    return TA->Own == TB->Own && TA->Mem == TB->Mem &&
           equal(TA->Pointee, TB->Pointee);
  }
  case TypeKind::Box: {
    const auto *TA = cast<BoxType>(A.get());
    const auto *TB = cast<BoxType>(B.get());
    return TA->Mem == TB->Mem && equal(TA->Elem, TB->Elem);
  }
  case TypeKind::TypeVar:
    return cast<TypeVarType>(A.get())->Name == cast<TypeVarType>(B.get())->Name;
  }
  return false;
}

std::string DataType::str() const {
  switch (kind()) {
  case TypeKind::Scalar:
    return scalarKindName(cast<ScalarType>(this)->Scalar);
  case TypeKind::Tuple: {
    const auto *T = cast<TupleType>(this);
    std::string Out = "(";
    for (size_t I = 0; I != T->Elems.size(); ++I) {
      if (I)
        Out += ", ";
      Out += T->Elems[I]->str();
    }
    return Out + ")";
  }
  case TypeKind::Array: {
    const auto *T = cast<ArrayType>(this);
    return "[" + T->Elem->str() + "; " + T->Size.str() + "]";
  }
  case TypeKind::ArrayView: {
    const auto *T = cast<ArrayViewType>(this);
    return "[[" + T->Elem->str() + "; " + T->Size.str() + "]]";
  }
  case TypeKind::Ref: {
    const auto *T = cast<RefType>(this);
    std::string Out = "&";
    if (T->Own == Ownership::Uniq)
      Out += "uniq ";
    else
      Out += " ";
    Out += T->Mem.str() + " " + T->Pointee->str();
    return Out;
  }
  case TypeKind::Box: {
    const auto *T = cast<BoxType>(this);
    return T->Elem->str() + " @ " + T->Mem.str();
  }
  case TypeKind::TypeVar:
    return cast<TypeVarType>(this)->Name;
  }
  return "<type>";
}

bool DataType::isCopyable() const {
  switch (kind()) {
  case TypeKind::Scalar:
    return true;
  case TypeKind::Tuple: {
    for (const TypeRef &E : cast<TupleType>(this)->Elems)
      if (!E->isCopyable())
        return false;
    return true;
  }
  case TypeKind::Ref:
    return cast<RefType>(this)->Own == Ownership::Shrd;
  case TypeKind::Array:
  case TypeKind::ArrayView:
  case TypeKind::Box:
  case TypeKind::TypeVar:
    return false;
  }
  return false;
}

bool DataType::isConcrete() const {
  switch (kind()) {
  case TypeKind::Scalar:
    return true;
  case TypeKind::Tuple: {
    for (const TypeRef &E : cast<TupleType>(this)->Elems)
      if (!E->isConcrete())
        return false;
    return true;
  }
  case TypeKind::Array: {
    const auto *T = cast<ArrayType>(this);
    std::vector<std::string> Vars;
    T->Size.collectVars(Vars);
    return Vars.empty() && T->Elem->isConcrete();
  }
  case TypeKind::ArrayView: {
    const auto *T = cast<ArrayViewType>(this);
    std::vector<std::string> Vars;
    T->Size.collectVars(Vars);
    return Vars.empty() && T->Elem->isConcrete();
  }
  case TypeKind::Ref: {
    const auto *T = cast<RefType>(this);
    return !T->Mem.isVar() && T->Pointee->isConcrete();
  }
  case TypeKind::Box: {
    const auto *T = cast<BoxType>(this);
    return !T->Mem.isVar() && T->Elem->isConcrete();
  }
  case TypeKind::TypeVar:
    return false;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

TypeRef descend::makeScalar(ScalarKind K) {
  return std::make_shared<ScalarType>(K);
}

TypeRef descend::makeUnit() { return makeScalar(ScalarKind::Unit); }

TypeRef descend::makeTuple(std::vector<TypeRef> Elems) {
  return std::make_shared<TupleType>(std::move(Elems));
}

TypeRef descend::makeArray(TypeRef Elem, Nat Size) {
  return std::make_shared<ArrayType>(std::move(Elem), std::move(Size));
}

TypeRef descend::makeArrayView(TypeRef Elem, Nat Size) {
  return std::make_shared<ArrayViewType>(std::move(Elem), std::move(Size));
}

TypeRef descend::makeRef(Ownership Own, Memory Mem, TypeRef Pointee) {
  return std::make_shared<RefType>(Own, std::move(Mem), std::move(Pointee));
}

TypeRef descend::makeBox(TypeRef Elem, Memory Mem) {
  return std::make_shared<BoxType>(std::move(Elem), std::move(Mem));
}

TypeRef descend::makeTypeVar(std::string Name) {
  return std::make_shared<TypeVarType>(std::move(Name));
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

Memory descend::substituteMemory(const Memory &M, const TypeSubst &Subst) {
  if (!M.isVar())
    return M;
  auto It = Subst.Mems.find(M.Name);
  return It == Subst.Mems.end() ? M : It->second;
}

TypeRef descend::substituteType(const TypeRef &T, const TypeSubst &Subst) {
  if (!T || Subst.empty())
    return T;
  switch (T->kind()) {
  case TypeKind::Scalar:
    return T;
  case TypeKind::Tuple: {
    const auto *TT = cast<TupleType>(T.get());
    std::vector<TypeRef> Elems;
    Elems.reserve(TT->Elems.size());
    for (const TypeRef &E : TT->Elems)
      Elems.push_back(substituteType(E, Subst));
    return makeTuple(std::move(Elems));
  }
  case TypeKind::Array: {
    const auto *TA = cast<ArrayType>(T.get());
    return makeArray(substituteType(TA->Elem, Subst),
                     TA->Size.substitute(Subst.Nats));
  }
  case TypeKind::ArrayView: {
    const auto *TA = cast<ArrayViewType>(T.get());
    return makeArrayView(substituteType(TA->Elem, Subst),
                         TA->Size.substitute(Subst.Nats));
  }
  case TypeKind::Ref: {
    const auto *TR = cast<RefType>(T.get());
    return makeRef(TR->Own, substituteMemory(TR->Mem, Subst),
                   substituteType(TR->Pointee, Subst));
  }
  case TypeKind::Box: {
    const auto *TB = cast<BoxType>(T.get());
    return makeBox(substituteType(TB->Elem, Subst),
                   substituteMemory(TB->Mem, Subst));
  }
  case TypeKind::TypeVar: {
    const auto *TV = cast<TypeVarType>(T.get());
    auto It = Subst.Types.find(TV->Name);
    return It == Subst.Types.end() ? T : It->second;
  }
  }
  return T;
}
