//===- sim/Fault.cpp - Sticky errors and deterministic fault injection ----===//
//
// Implementation of the DESCEND_FAULTS parser and the FaultInjector
// singleton. Parsing is strict in the same way detail::parseWorkerCount
// is strict: a malformed plan is rejected as a whole (with a one-time
// warning when it came from the environment), never partially applied.
//
//===----------------------------------------------------------------------===//

#include "sim/Fault.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace descend {
namespace sim {

const char *errorCodeName(ErrorCode E) {
  switch (E) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::KernelTrap:
    return "kernel_trap";
  case ErrorCode::KernelTimeout:
    return "kernel_timeout";
  case ErrorCode::AllocFailed:
    return "alloc_failed";
  case ErrorCode::CopyFailed:
    return "copy_failed";
  case ErrorCode::EventDropped:
    return "event_dropped";
  case ErrorCode::StreamPoisoned:
    return "stream_poisoned";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// FaultPlan parsing
//===----------------------------------------------------------------------===//

namespace {

/// Strictly parses a 1-based positive ordinal: decimal digits only, no
/// sign, no whitespace, no trailing garbage, fits uint64, nonzero.
bool parseOrdinal(const std::string &S, uint64_t &Out) {
  if (S.empty() || S[0] < '0' || S[0] > '9')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno == ERANGE || End != S.c_str() + S.size() || V == 0)
    return false;
  Out = V;
  return true;
}

void splitOn(const std::string &S, char Sep, std::vector<std::string> &Out) {
  size_t Pos = 0;
  while (true) {
    size_t Next = S.find(Sep, Pos);
    if (Next == std::string::npos) {
      Out.push_back(S.substr(Pos));
      return;
    }
    Out.push_back(S.substr(Pos, Next - Pos));
    Pos = Next + 1;
  }
}

bool setErr(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

} // namespace

bool FaultPlan::parse(const std::string &Text, FaultPlan &Out,
                      std::string *Err) {
  FaultPlan P;
  if (Text.empty()) {
    Out = P;
    return true;
  }

  std::vector<std::string> Clauses;
  splitOn(Text, ',', Clauses);
  for (const std::string &Clause : Clauses) {
    std::vector<std::string> Parts; // colon-separated fields
    splitOn(Clause, ':', Parts);
    const std::string &Key = Parts[0];

    if (Key == "alloc") {
      // alloc:N
      if (Parts.size() != 2 || !parseOrdinal(Parts[1], P.AllocFailAt))
        return setErr(Err, "bad clause '" + Clause + "' (want alloc:N)");
    } else if (Key == "trap") {
      // trap:launch=N
      if (Parts.size() != 2 || Parts[1].rfind("launch=", 0) != 0 ||
          !parseOrdinal(Parts[1].substr(7), P.TrapAtLaunch))
        return setErr(Err, "bad clause '" + Clause + "' (want trap:launch=N)");
    } else if (Key == "delay") {
      // delay:worker=K:ms=M
      if (Parts.size() != 3 || Parts[1].rfind("worker=", 0) != 0 ||
          Parts[2].rfind("ms=", 0) != 0 ||
          !parseOrdinal(Parts[1].substr(7), P.DelayWorker) ||
          !parseOrdinal(Parts[2].substr(3), P.DelayMs))
        return setErr(Err,
                      "bad clause '" + Clause + "' (want delay:worker=K:ms=M)");
    } else if (Key == "drop") {
      // drop:event=N
      if (Parts.size() != 2 || Parts[1].rfind("event=", 0) != 0 ||
          !parseOrdinal(Parts[1].substr(6), P.DropEventAt))
        return setErr(Err, "bad clause '" + Clause + "' (want drop:event=N)");
    } else if (Key == "compile") {
      // compile:fail=N
      if (Parts.size() != 2 || Parts[1].rfind("fail=", 0) != 0 ||
          !parseOrdinal(Parts[1].substr(5), P.CompileFailAt))
        return setErr(Err, "bad clause '" + Clause + "' (want compile:fail=N)");
    } else {
      return setErr(Err, "unknown fault kind '" + Key + "' in '" + Clause +
                             "'");
    }
  }
  Out = P;
  return true;
}

std::string FaultPlan::str() const {
  if (!armed())
    return "off";
  std::string S;
  auto Append = [&S](const std::string &Clause) {
    if (!S.empty())
      S += ',';
    S += Clause;
  };
  if (AllocFailAt)
    Append("alloc:" + std::to_string(AllocFailAt));
  if (TrapAtLaunch)
    Append("trap:launch=" + std::to_string(TrapAtLaunch));
  if (DelayWorker)
    Append("delay:worker=" + std::to_string(DelayWorker) +
           ":ms=" + std::to_string(DelayMs));
  if (DropEventAt)
    Append("drop:event=" + std::to_string(DropEventAt));
  if (CompileFailAt)
    Append("compile:fail=" + std::to_string(CompileFailAt));
  return S;
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

FaultInjector::FaultInjector() {
  const char *Env = std::getenv("DESCEND_FAULTS");
  if (!Env || !*Env)
    return;
  FaultPlan P;
  std::string Err;
  if (!FaultPlan::parse(Env, P, &Err)) {
    std::fprintf(stderr,
                 "descend: warning: ignoring invalid DESCEND_FAULTS=\"%s\": "
                 "%s\n",
                 Env, Err.c_str());
    return;
  }
  Plan = P;
  Armed.store(P.armed(), std::memory_order_relaxed);
}

FaultInjector &FaultInjector::global() {
  static FaultInjector I;
  return I;
}

void FaultInjector::setPlanForTest(const FaultPlan &P) {
  std::lock_guard<std::mutex> L(PlanM);
  Plan = P;
  AllocSeen.store(0, std::memory_order_relaxed);
  LaunchSeen.store(0, std::memory_order_relaxed);
  EventSeen.store(0, std::memory_order_relaxed);
  CompileSeen.store(0, std::memory_order_relaxed);
  Armed.store(P.armed(), std::memory_order_relaxed);
}

FaultPlan FaultInjector::plan() const {
  std::lock_guard<std::mutex> L(PlanM);
  return Plan;
}

bool FaultInjector::shouldFailAlloc() {
  if (!armed())
    return false;
  FaultPlan P = plan();
  if (!P.AllocFailAt)
    return false;
  return AllocSeen.fetch_add(1, std::memory_order_relaxed) + 1 ==
         P.AllocFailAt;
}

bool FaultInjector::shouldTrapLaunch() {
  if (!armed())
    return false;
  FaultPlan P = plan();
  if (!P.TrapAtLaunch)
    return false;
  return LaunchSeen.fetch_add(1, std::memory_order_relaxed) + 1 ==
         P.TrapAtLaunch;
}

bool FaultInjector::shouldDelayWorker(uint64_t WorkerOrdinal,
                                      uint64_t &DelayMsOut) {
  if (!armed())
    return false;
  FaultPlan P = plan();
  if (!P.DelayWorker || WorkerOrdinal != P.DelayWorker)
    return false;
  DelayMsOut = P.DelayMs;
  return true;
}

bool FaultInjector::shouldDropEvent() {
  if (!armed())
    return false;
  FaultPlan P = plan();
  if (!P.DropEventAt)
    return false;
  return EventSeen.fetch_add(1, std::memory_order_relaxed) + 1 ==
         P.DropEventAt;
}

bool FaultInjector::shouldFailCompile() {
  if (!armed())
    return false;
  FaultPlan P = plan();
  if (!P.CompileFailAt)
    return false;
  return CompileSeen.fetch_add(1, std::memory_order_relaxed) + 1 ==
         P.CompileFailAt;
}

} // namespace sim
} // namespace descend
