//===- sim/Sim.cpp - Simulator implementation -------------------------------===//

#include "sim/Sim.h"

#include "obs/Trace.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace descend::sim;

//===----------------------------------------------------------------------===//
// Worker pool
//===----------------------------------------------------------------------===//

std::byte *detail::threadArena(size_t Bytes) {
  thread_local std::vector<std::byte> Arena;
  if (Arena.size() < Bytes)
    Arena.resize(Bytes);
  return Arena.data();
}

/// One unit of pool work: either the block-items of a parallelFor (Body
/// set, borrowed from the caller's frame — the job completes before
/// parallelFor returns) or a one-off submitted task (Task set).
struct detail::WorkerPool::Job {
  const std::function<void(unsigned)> *Body = nullptr;
  std::function<void()> Task;
  unsigned NumItems = 0;
  unsigned Chunk = 1;
  std::atomic<unsigned> Next{0};      // next unclaimed item
  std::atomic<unsigned> Remaining{0}; // items not yet finished
  std::mutex DoneM;
  std::condition_variable DoneCV;
  bool Done = false;

  void runItem(unsigned I) {
    if (Body)
      (*Body)(I);
    else
      Task();
  }
};

detail::WorkerPool::WorkerPool(unsigned ThreadCount) {
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I != ThreadCount; ++I)
    Workers.emplace_back([this, I] { workerLoop(I + 1); });
}

detail::WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> G(M);
    Stopping = true;
  }
  WorkCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void detail::WorkerPool::removeFromQueue(const std::shared_ptr<Job> &J) {
  std::lock_guard<std::mutex> G(M);
  auto It = std::find(Queue.begin(), Queue.end(), J);
  if (It != Queue.end())
    Queue.erase(It);
}

/// Claims one run of items from \p J and executes it. Returns false when
/// nothing was left to claim. The last finisher signals completion.
bool detail::WorkerPool::claimAndRun(Job &J) {
  const unsigned Begin = J.Next.fetch_add(J.Chunk, std::memory_order_relaxed);
  if (Begin >= J.NumItems)
    return false;
  const unsigned End = std::min(Begin + J.Chunk, J.NumItems);
  std::string SpanArgs;
  if (obs::TraceCollector::global().enabled()) [[unlikely]]
    SpanArgs = descend::strfmt("{\"items\":%u}", End - Begin);
  obs::Span PoolSpan("pool", J.Body ? "blocks" : "task", std::move(SpanArgs));
  for (unsigned I = Begin; I != End; ++I)
    J.runItem(I);
  const unsigned Ran = End - Begin;
  if (J.Remaining.fetch_sub(Ran, std::memory_order_acq_rel) == Ran) {
    std::lock_guard<std::mutex> G(J.DoneM);
    J.Done = true;
    J.DoneCV.notify_all();
  }
  return true;
}

void detail::WorkerPool::workerLoop(unsigned Ordinal) {
  std::unique_lock<std::mutex> L(M);
  while (true) {
    WorkCV.wait(L, [&] { return Stopping || !Queue.empty(); });
    if (Queue.empty()) {
      if (Stopping)
        return; // drained: queued work always finishes before teardown
      continue;
    }
    std::shared_ptr<Job> J = Queue.front();
    L.unlock();
    // Fault injection: `delay:worker=K:ms=M` stalls worker K before each
    // work batch — the deterministic stand-in for a descheduled or slow
    // worker that the TSan stress run leans on.
    uint64_t DelayMs = 0;
    if (FaultInjector::global().armed() &&
        FaultInjector::global().shouldDelayWorker(Ordinal, DelayMs))
      [[unlikely]]
      std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    if (!claimAndRun(*J))
      removeFromQueue(J); // exhausted; stop offering it to workers
    L.lock();
  }
}

void detail::WorkerPool::parallelFor(
    unsigned NumItems, unsigned Chunk,
    const std::function<void(unsigned)> &Body) {
  if (NumItems == 0)
    return;
  auto J = std::make_shared<Job>();
  J->Body = &Body;
  J->NumItems = NumItems;
  J->Chunk = std::max(1u, Chunk);
  J->Remaining.store(NumItems, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> G(M);
    Queue.push_back(J);
  }
  // Wake at most one worker per claimable chunk beyond the caller's own.
  const unsigned Chunks = (NumItems + J->Chunk - 1) / J->Chunk;
  if (Chunks > 1 && threadCount() > 0) {
    const unsigned Wake = std::min(threadCount(), Chunks - 1);
    if (Wake >= threadCount())
      WorkCV.notify_all();
    else
      for (unsigned I = 0; I != Wake; ++I)
        WorkCV.notify_one();
  }
  // The caller participates: small launches usually finish right here,
  // without paying for a worker wake-up at all.
  while (claimAndRun(*J))
    ;
  removeFromQueue(J);
  std::unique_lock<std::mutex> L(J->DoneM);
  J->DoneCV.wait(L, [&] { return J->Done; });
}

void detail::WorkerPool::submit(std::function<void()> Task) {
  assert(threadCount() > 0 && "submit() needs at least one pool worker");
  auto J = std::make_shared<Job>();
  J->Task = std::move(Task);
  J->NumItems = 1;
  J->Remaining.store(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> G(M);
    Queue.push_back(J);
  }
  WorkCV.notify_one();
}

std::string RaceReport::str() const {
  return descend::strfmt(
      "data race on buffer %u offset %zu: block %u thread %u (%s, phase %u) "
      "vs block %u thread %u (%s, phase %u)",
      BufferId, Offset, BlockA, ThreadA, WriteA ? "write" : "read", PhaseA,
      BlockB, ThreadB, WriteB ? "write" : "read", PhaseB);
}

std::string BoundsReport::str() const {
  return descend::strfmt(
      "out-of-bounds access on buffer %u: offset %zu, size %zu", BufferId,
      Offset, Size);
}

bool detail::parseWatchdogConfig(const char *Text,
                                 GpuDevice::WatchdogConfig &Out,
                                 std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (!Text)
    return Fail("null watchdog config");
  GpuDevice::WatchdogConfig W;
  bool SawSteps = false, SawMs = false;
  const std::string S(Text);
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t End = S.find(',', Pos);
    if (End == std::string::npos)
      End = S.size();
    const std::string Clause = S.substr(Pos, End - Pos);
    uint64_t *Target = nullptr;
    std::string Num;
    if (Clause.rfind("steps=", 0) == 0 && !SawSteps) {
      Target = &W.StepBudget;
      SawSteps = true;
      Num = Clause.substr(6);
    } else if (Clause.rfind("ms=", 0) == 0 && !SawMs) {
      Target = &W.LaunchTimeoutMs;
      SawMs = true;
      Num = Clause.substr(3);
    } else {
      return Fail("bad clause '" + Clause + "' (want steps=N and/or ms=M)");
    }
    // Same strictness as parseWorkerCount: digits only, nonzero, in
    // range — a typo disables nothing and enables nothing.
    if (Num.empty() || Num[0] < '0' || Num[0] > '9')
      return Fail("bad number in '" + Clause + "'");
    errno = 0;
    char *NumEnd = nullptr;
    unsigned long long V = std::strtoull(Num.c_str(), &NumEnd, 10);
    if (errno == ERANGE || NumEnd != Num.c_str() + Num.size() || V == 0)
      return Fail("bad number in '" + Clause + "'");
    *Target = V;
    Pos = End + 1;
  }
  Out = W;
  return true;
}

GpuDevice::GpuDevice() {
  // DESCEND_WATCHDOG seeds the default limits machine-wide (parsed once,
  // with a one-time warning on garbage — all-or-nothing, like
  // DESCEND_WORKERS); setWatchdog overrides per device.
  static const WatchdogConfig EnvWd = [] {
    WatchdogConfig W;
    const char *Text = std::getenv("DESCEND_WATCHDOG");
    if (!Text || !*Text)
      return W;
    std::string Err;
    if (!detail::parseWatchdogConfig(Text, W, &Err)) {
      std::fprintf(stderr,
                   "descend: warning: ignoring invalid DESCEND_WATCHDOG="
                   "\"%s\": %s\n",
                   Text, Err.c_str());
      W = WatchdogConfig();
    }
    return W;
  }();
  WdStepBudget.store(EnvWd.StepBudget, std::memory_order_relaxed);
  WdTimeoutMs.store(EnvWd.LaunchTimeoutMs, std::memory_order_relaxed);
}

void GpuDevice::setWatchdog(WatchdogConfig W) {
  deviceSynchronize(); // no in-flight launch straddles the change
  WdStepBudget.store(W.StepBudget, std::memory_order_relaxed);
  WdTimeoutMs.store(W.LaunchTimeoutMs, std::memory_order_relaxed);
}

GpuDevice::WatchdogConfig GpuDevice::watchdog() const {
  WatchdogConfig W;
  W.StepBudget = WdStepBudget.load(std::memory_order_relaxed);
  W.LaunchTimeoutMs = WdTimeoutMs.load(std::memory_order_relaxed);
  return W;
}

ErrorCode GpuDevice::getLastError(std::string *MsgOut) const {
  std::lock_guard<std::mutex> G(ErrM);
  if (MsgOut)
    *MsgOut = ErrMsg;
  return Err;
}

ErrorCode GpuDevice::peekLastError(std::string *MsgOut) const {
  return getLastError(MsgOut);
}

void GpuDevice::setDeviceError(ErrorCode Code, const std::string &Msg) {
  {
    std::lock_guard<std::mutex> G(ErrM);
    if (Err == ErrorCode::Ok) { // first error wins; later ones only bump
      Err = Code;               // the sequence below
      ErrMsg = Msg;
      HasErr.store(true, std::memory_order_release);
    }
  }
  ErrSeq.fetch_add(1, std::memory_order_acq_rel);
  if (obs::TraceCollector::global().enabled()) [[unlikely]]
    obs::TraceCollector::global().addInstant("error", errorCodeName(Code));
}

void GpuDevice::reset() {
  deviceSynchronize();
  {
    std::lock_guard<std::mutex> G(ErrM);
    Err = ErrorCode::Ok;
    ErrMsg.clear();
    HasErr.store(false, std::memory_order_release);
  }
  clearLogs();
  resetStats();
  std::lock_guard<std::mutex> G(PoolM);
  Pool.reset(); // recreated lazily at the next parallel launch
}

GpuDevice::~GpuDevice() {
  // Streams created against this device must have been destroyed (each
  // synchronizes on destruction); drain any still-pending work before the
  // pool goes away.
  deviceSynchronize();
}

unsigned detail::parseWorkerCount(const char *Text, std::string *Warning) {
  if (!Text)
    return 0; // unset: no override, no warning
  errno = 0;
  char *End = nullptr;
  const long V = std::strtol(Text, &End, 10);
  // strtol silently skips leading whitespace; a worker count with stray
  // whitespace is treated as malformed, like any other garbage.
  if (std::isspace(static_cast<unsigned char>(Text[0])) || End == Text ||
      *End != '\0') {
    if (Warning)
      *Warning = descend::strfmt(
          "DESCEND_WORKERS=\"%s\" is not a number; using the default worker "
          "count",
          Text);
    return 0;
  }
  if (errno == ERANGE || V <= 0 || V > MaxWorkerOverride) {
    if (Warning)
      *Warning = descend::strfmt(
          "DESCEND_WORKERS=\"%s\" is out of range (want 1..%ld); using the "
          "default worker count",
          Text, MaxWorkerOverride);
    return 0;
  }
  return static_cast<unsigned>(V);
}

unsigned GpuDevice::effectiveWorkers() const {
  if (RaceDetection)
    return 1;
  if (Workers != 0)
    return Workers;
  // DESCEND_WORKERS pins the default machine-wide (run_benches.sh stamps
  // it into the BENCH_*.json provenance, making numbers comparable
  // across machines); otherwise use the hardware concurrency. Garbage,
  // zero or out-of-range values fall back to the default with a one-time
  // stderr warning instead of being silently misparsed.
  static const unsigned EnvWorkers = [] {
    std::string Warning;
    unsigned N = detail::parseWorkerCount(std::getenv("DESCEND_WORKERS"),
                                          &Warning);
    if (!Warning.empty())
      std::fprintf(stderr, "descend: warning: %s\n", Warning.c_str());
    return N;
  }();
  if (EnvWorkers != 0)
    return EnvWorkers;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

void GpuDevice::setWorkers(unsigned N) {
  if (Workers == N)
    return;
  deviceSynchronize();
  Workers = N;
  Pool.reset(); // recreated lazily at the new size
}

detail::WorkerPool &GpuDevice::pool() {
  // Streams reach this from several host threads and from pool workers;
  // the mutex makes the lazy creation race-free. Resizing happens only in
  // setWorkers (host-side, quiescent) — never here, where a pending
  // stream operation may be the caller.
  std::lock_guard<std::mutex> G(PoolM);
  if (!Pool)
    Pool = std::make_unique<detail::WorkerPool>(effectiveWorkers());
  return *Pool;
}

void GpuDevice::asyncOpEnd() {
  if (PendingOps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> G(SyncM);
    SyncCV.notify_all();
  }
}

void GpuDevice::deviceSynchronize() {
  std::unique_lock<std::mutex> L(SyncM);
  SyncCV.wait(L, [&] { return PendingOps.load(std::memory_order_acquire) ==
                              0; });
}

std::byte *GpuDevice::allocRaw(size_t Bytes, unsigned &IdOut) {
  // Fault injection: `alloc:N` fails the N-th device allocation — the
  // deterministic stand-in for device-memory exhaustion. The failure is
  // sticky (CUDA: an allocation failure poisons the context) and
  // surfaces as a structured DeviceError.
  FaultInjector &FI = FaultInjector::global();
  if (FI.armed() && FI.shouldFailAlloc()) [[unlikely]] {
    const std::string Msg = descend::strfmt(
        "device allocation of %zu bytes failed (fault injection, alloc:%llu)",
        Bytes, static_cast<unsigned long long>(FI.plan().AllocFailAt));
    setDeviceError(ErrorCode::AllocFailed, Msg);
    throw DeviceError(ErrorCode::AllocFailed, Msg);
  }
  auto Mem = std::make_unique<std::byte[]>(Bytes);
  std::memset(Mem.get(), 0, Bytes);
  // Several host threads may serve requests against one device (each
  // with its own stream); allocation is off the launch hot path, so a
  // mutex keeps the bookkeeping safe. Handed-out pointers are stable —
  // the vector owns unique_ptrs, not the arrays themselves.
  std::lock_guard<std::mutex> G(AllocM);
  Allocations.push_back(std::move(Mem));
  AllocationSizes.push_back(Bytes);
  IdOut = Allocations.size(); // ids start at 1
  assert(IdOut < detail::FirstSharedBufferId &&
         "global buffer ids overran the reserved shared-memory id range");
  return Allocations.back().get();
}

void GpuDevice::logAccess(const BlockCtx &B, unsigned BufferId, size_t Offset,
                          bool Write) {
  detail::Access A;
  A.BufferId = BufferId;
  A.Offset = Offset;
  A.Block = B.linear();
  A.Thread = B.CurThread;
  A.Phase = static_cast<uint16_t>(B.CurPhase);
  A.Write = Write;
  AccessLog.push_back(A);
}

void GpuDevice::logBounds(unsigned BufferId, size_t Offset, size_t Size) {
  BoundsReport R;
  R.BufferId = BufferId;
  R.Offset = Offset;
  R.Size = Size;
  // Unlike race logging, bounds checking does not force sequential
  // execution, so violating blocks may report from pool workers.
  std::lock_guard<std::mutex> G(BoundsM);
  BoundsViolations.push_back(R);
}

void GpuDevice::clearLogs() {
  AccessLog.clear();
  BoundsViolations.clear();
}

void GpuDevice::setCounters(bool On) {
  // Quiesce first so no in-flight launch straddles the transition (the
  // flag is read once per launch in detail::runBlocks).
  deviceSynchronize();
  CountersOn.store(On, std::memory_order_relaxed);
}

LaunchStats GpuDevice::lastLaunchStats() const {
  std::lock_guard<std::mutex> G(StatsM);
  return LastLaunch;
}

LaunchStats GpuDevice::totalStats() const {
  std::lock_guard<std::mutex> G(StatsM);
  return Total;
}

std::vector<LaunchStats> GpuDevice::launchLog() const {
  std::lock_guard<std::mutex> G(StatsM);
  return LaunchLog;
}

uint64_t GpuDevice::droppedLaunchStats() const {
  std::lock_guard<std::mutex> G(StatsM);
  return DroppedLaunches;
}

void GpuDevice::resetStats() {
  std::lock_guard<std::mutex> G(StatsM);
  LastLaunch = LaunchStats();
  Total = LaunchStats();
  LaunchLog.clear();
  DroppedLaunches = 0;
}

void GpuDevice::recordLaunchStats(LaunchStats LS) {
  std::lock_guard<std::mutex> G(StatsM);
  Total.merge(LS);
  if (LaunchLog.size() < MaxLaunchLog)
    LaunchLog.push_back(LS);
  else
    ++DroppedLaunches; // counts still land in Total above
  LastLaunch = std::move(LS);
}

void GpuDevice::labelLastLaunch(const std::string &Name) {
  std::lock_guard<std::mutex> G(StatsM);
  LastLaunch.Label = Name;
  if (!LaunchLog.empty())
    LaunchLog.back().Label = Name;
}

void GpuDevice::noteLaunchTraps(uint64_t N) {
  if (N == 0)
    return;
  std::lock_guard<std::mutex> G(StatsM);
  LastLaunch.Traps += N;
  Total.Traps += N;
  if (!LaunchLog.empty())
    LaunchLog.back().Traps += N;
}

std::vector<RaceReport> GpuDevice::findRaces() const {
  std::vector<detail::Access> Log = AccessLog;
  std::sort(Log.begin(), Log.end(),
            [](const detail::Access &A, const detail::Access &B) {
              if (A.BufferId != B.BufferId)
                return A.BufferId < B.BufferId;
              return A.Offset < B.Offset;
            });

  std::vector<RaceReport> Reports;
  size_t I = 0;
  while (I < Log.size()) {
    size_t J = I;
    while (J < Log.size() && Log[J].BufferId == Log[I].BufferId &&
           Log[J].Offset == Log[I].Offset)
      ++J;
    // Scan the group [I, J) for one representative conflict.
    bool Found = false;
    for (size_t A = I; A != J && !Found; ++A) {
      if (!Log[A].Write)
        continue; // at least one access must be a write
      for (size_t B = I; B != J && !Found; ++B) {
        if (A == B)
          continue;
        bool SameThread =
            Log[A].Block == Log[B].Block && Log[A].Thread == Log[B].Thread;
        if (SameThread)
          continue;
        bool Conflict;
        if (Log[A].Block != Log[B].Block) {
          // No ordering between blocks within one kernel.
          Conflict = true;
        } else {
          // Same block: phases are ordered by the barrier.
          Conflict = Log[A].Phase == Log[B].Phase;
        }
        if (!Conflict)
          continue;
        RaceReport R;
        R.BufferId = Log[A].BufferId;
        R.Offset = Log[A].Offset;
        R.BlockA = Log[A].Block;
        R.ThreadA = Log[A].Thread;
        R.PhaseA = Log[A].Phase;
        R.WriteA = Log[A].Write;
        R.BlockB = Log[B].Block;
        R.ThreadB = Log[B].Thread;
        R.PhaseB = Log[B].Phase;
        R.WriteB = Log[B].Write;
        Reports.push_back(R);
        Found = true;
      }
    }
    I = J;
  }
  return Reports;
}

//===----------------------------------------------------------------------===//
// Phase programs
//===----------------------------------------------------------------------===//

PhaseProgram &PhaseProgram::straightBlock(BlockPhase Fn) {
  Node N;
  N.Fn = std::move(Fn);
  (OpenBodies.empty() ? Nodes : OpenBodies.back()).push_back(std::move(N));
  return *this;
}

PhaseProgram &PhaseProgram::loopBegin(unsigned Slot, Bound Lo, Bound Hi) {
  assert(Slot < BlockCtx::MaxLoopSlots && "loop slot out of range");
  Node N;
  N.Slot = Slot;
  N.Lo = std::move(Lo);
  N.Hi = std::move(Hi);
  OpenHeaders.push_back(std::move(N));
  OpenBodies.emplace_back();
  return *this;
}

PhaseProgram &PhaseProgram::loopBegin(unsigned Slot, long long Lo,
                                      long long Hi) {
  return loopBegin(
      Slot, [Lo](const BlockCtx &) { return Lo; },
      [Hi](const BlockCtx &) { return Hi; });
}

PhaseProgram &PhaseProgram::loopEnd() {
  assert(!OpenHeaders.empty() && "loopEnd() without matching loopBegin()");
  Node N = std::move(OpenHeaders.back());
  OpenHeaders.pop_back();
  N.Body = std::move(OpenBodies.back());
  OpenBodies.pop_back();
  (OpenBodies.empty() ? Nodes : OpenBodies.back()).push_back(std::move(N));
  return *this;
}

const std::vector<PhaseProgram::Node> &PhaseProgram::nodes() const {
  assert(OpenHeaders.empty() && "program has an unclosed loopBegin()");
  return Nodes;
}

namespace {

/// Static phases in a node list: the counter slot count (loop bodies
/// count once, not once per iteration).
unsigned staticPhaseCount(const std::vector<PhaseProgram::Node> &Nodes) {
  unsigned N = 0;
  for (const PhaseProgram::Node &Node : Nodes)
    N += Node.Fn ? 1 : staticPhaseCount(Node.Body);
  return N;
}

/// \p PhaseIdx is the *dynamic* phase counter (increments across loop
/// iterations — the ordering the race detector keys on); \p StaticBase is
/// the pre-order tree position perf counters key on, so a loop's phases
/// accumulate into stable slots across iterations. Static ids are only
/// maintained when counters are on.
void runProgramNodes(const std::vector<PhaseProgram::Node> &Nodes,
                     BlockCtx &B, unsigned &PhaseIdx, unsigned StaticBase) {
  const bool Count = B.Counters != nullptr;
  unsigned StaticId = StaticBase;
  for (const PhaseProgram::Node &N : Nodes) {
    // Watchdog cancellation points: before each phase and each loop
    // iteration — the phase boundaries, where no barrier is mid-flight.
    // Counter bookkeeping of a cancelled launch is abandoned with it.
    if (B.cancelled()) [[unlikely]]
      return;
    if (N.Fn) {
      B.CurPhase = PhaseIdx++;
      if (Count) [[unlikely]]
        B.Counters->beginPhase(StaticId++);
      N.Fn(B);
      continue;
    }
    const long long Lo = N.Lo(B), Hi = N.Hi(B);
    for (long long V = Lo; V < Hi; ++V) {
      if (B.cancelled()) [[unlikely]]
        return;
      B.LoopVars[N.Slot] = V;
      runProgramNodes(N.Body, B, PhaseIdx, StaticId);
    }
    if (Count) [[unlikely]]
      StaticId += staticPhaseCount(N.Body);
  }
}

} // namespace

void descend::sim::launchProgram(GpuDevice &Dev, Dim3 Grid, Dim3 Block,
                                 size_t SharedBytes,
                                 const PhaseProgram &Prog) {
  detail::runBlocks(Dev, Grid, Block, SharedBytes, [&](BlockCtx &B) {
    unsigned PhaseIdx = 0;
    runProgramNodes(Prog.nodes(), B, PhaseIdx, 0);
  });
}

void detail::runBlocks(GpuDevice &Dev, Dim3 Grid, Dim3 Block,
                       size_t SharedBytes,
                       const std::function<void(BlockCtx &)> &RunBlock) {
  const unsigned NumBlocks = Grid.total();
  if (NumBlocks == 0)
    return;
  // Fault injection: `trap:launch=N` traps the N-th launch whole — no
  // block runs, no buffer is touched, the device records a sticky
  // KernelTrap. Every launch path (generated C++, vm, handwritten)
  // funnels through here, so the ordinal is backend-independent.
  {
    FaultInjector &FI = FaultInjector::global();
    if (FI.armed() && FI.shouldTrapLaunch()) [[unlikely]] {
      Dev.setDeviceError(
          ErrorCode::KernelTrap,
          descend::strfmt("kernel trap: forced at launch %llu "
                          "(fault injection, trap:launch=%llu)",
                          static_cast<unsigned long long>(
                              FI.plan().TrapAtLaunch),
                          static_cast<unsigned long long>(
                              FI.plan().TrapAtLaunch)));
      return;
    }
  }
  const unsigned NumWorkers = std::min(Dev.effectiveWorkers(), NumBlocks);
  const size_t ArenaBytes = SharedBytes ? SharedBytes : 1;

  // Wall-clock watchdog: arm a per-launch deadline every block polls at
  // phase boundaries. Off (and free) unless a timeout is configured.
  const GpuDevice::WatchdogConfig Wd = Dev.watchdog();
  LaunchControl Ctl;
  if (Wd.LaunchTimeoutMs) {
    Ctl.HasDeadline = true;
    Ctl.Deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(Wd.LaunchTimeoutMs);
  }

  // Per-launch counters: blocks count into private BlockCounters and
  // merge here under MergeM. Every merge is a commutative sum, so totals
  // are bit-equal no matter how the pool distributed the blocks.
  const bool Count = Dev.countersEnabled();
  LaunchStats LS;
  std::mutex MergeM;
  size_t RaceLogBefore = 0;
  if (Count) [[unlikely]] {
    LS.Launches = 1;
    LS.Blocks = NumBlocks;
    LS.ThreadsPerBlock = Block.total();
    LS.ArenaBytesPerBlock = SharedBytes;
    LS.ArenaBytesTotal = static_cast<uint64_t>(SharedBytes) * NumBlocks;
    LS.Workers = NumWorkers;
    RaceLogBefore = Dev.accessLogSize();
  }

  auto RunOne = [&](unsigned Linear, std::byte *Arena) {
    BlockCtx B;
    B.X = Linear % Grid.X;
    B.Y = (Linear / Grid.X) % Grid.Y;
    B.Z = Linear / (Grid.X * Grid.Y);
    B.GridDim = Grid;
    B.BlockDim = Block;
    B.SharedArena = Arena;
    B.SharedBytes = SharedBytes;
    B.Dev = &Dev;
    // Shared arenas are per block instance: give each block its own
    // logical buffer id so the detector separates them.
    B.SharedBufferId = FirstSharedBufferId + Linear;
    if (Wd.LaunchTimeoutMs) {
      B.Ctl = &Ctl;
      if (Ctl.cancelled()) [[unlikely]]
        return; // watchdog fired: remaining blocks are dropped whole
    }
    if (SharedBytes)
      std::memset(Arena, 0, SharedBytes);
    if (!Count) {
      RunBlock(B);
      return;
    }
    obs::BlockCounters BC;
    B.Counters = &BC;
    RunBlock(B);
    BC.finish();
    std::lock_guard<std::mutex> G(MergeM);
    if (LS.Phases.size() < BC.phases().size())
      LS.Phases.resize(BC.phases().size());
    for (size_t I = 0; I < BC.phases().size(); ++I)
      LS.Phases[I] += BC.phases()[I];
  };

  {
    std::string SpanArgs;
    if (obs::TraceCollector::global().enabled()) [[unlikely]]
      SpanArgs = descend::strfmt(
          "{\"blocks\":%u,\"threads_per_block\":%u,\"workers\":%u}", NumBlocks,
          Block.total(), NumWorkers);
    obs::Span LaunchSpan("sim", "launch", std::move(SpanArgs));

    if (NumWorkers <= 1) {
      std::byte *Arena = threadArena(ArenaBytes);
      for (unsigned L = 0; L != NumBlocks; ++L)
        RunOne(L, Arena);
      if (Count) [[unlikely]]
        LS.ChunkClaims = 1; // the caller ran everything in one run
    } else {
      // Chunked claiming: around eight claims per worker amortizes the
      // atomic on large grids while keeping the tail balanced; small
      // grids fall back to one block per claim.
      const unsigned Chunk = std::max(1u, NumBlocks / (NumWorkers * 8));
      if (Count) [[unlikely]]
        LS.ChunkClaims = (NumBlocks + Chunk - 1) / Chunk;
      Dev.pool().parallelFor(NumBlocks, Chunk, [&](unsigned L) {
        RunOne(L, threadArena(ArenaBytes));
      });
    }
  }

  if (Wd.LaunchTimeoutMs && Ctl.Cancel.load(std::memory_order_relaxed))
    Dev.setDeviceError(
        ErrorCode::KernelTimeout,
        descend::strfmt("kernel timeout: launch exceeded the %llu ms "
                        "watchdog budget and was cancelled at a phase "
                        "boundary",
                        static_cast<unsigned long long>(Wd.LaunchTimeoutMs)));

  if (Count) [[unlikely]] {
    // Only race detection grows the access log, and it forces sequential
    // execution, so this delta is deterministic (and 0 when detection is
    // off).
    LS.RaceLogEntries = Dev.accessLogSize() - RaceLogBefore;
    Dev.recordLaunchStats(std::move(LS));
  }
}

//===----------------------------------------------------------------------===//
// Events
//===----------------------------------------------------------------------===//

/// Marks generation \p Gen complete and fires every waiter whose target
/// it satisfies. Callbacks run outside the event mutex — a waiter may
/// resubmit a stream pump, which takes other locks.
void detail::signalEventGen(const std::shared_ptr<EventState> &St,
                            uint64_t Gen) {
  std::vector<std::function<void()>> Due;
  {
    std::lock_guard<std::mutex> G(St->M);
    St->Completed = std::max(St->Completed, Gen);
    for (size_t I = 0; I != St->Waiters.size();) {
      if (St->Waiters[I].first <= St->Completed) {
        Due.push_back(std::move(St->Waiters[I].second));
        St->Waiters.erase(St->Waiters.begin() + I);
      } else {
        ++I;
      }
    }
    St->CV.notify_all();
  }
  for (std::function<void()> &Fn : Due)
    Fn();
}

/// Record-and-signal in one step: what a captured record node does at
/// replay time (the generation is minted when the node runs, so every
/// replay re-arms the event afresh).
void detail::signalEventNow(const std::shared_ptr<EventState> &St) {
  uint64_t Gen;
  {
    std::lock_guard<std::mutex> G(St->M);
    Gen = ++St->Recorded;
  }
  signalEventGen(St, Gen);
}

bool Event::query() const {
  std::lock_guard<std::mutex> G(St->M);
  return St->Completed >= St->Recorded;
}

void Event::synchronize() const {
  std::unique_lock<std::mutex> L(St->M);
  const uint64_t Target = St->Recorded;
  St->CV.wait(L, [&] { return St->Completed >= Target; });
}

//===----------------------------------------------------------------------===//
// Launch graphs
//===----------------------------------------------------------------------===//

GraphExec Graph::instantiate() const {
  if (!D)
    throw std::logic_error("Graph::instantiate: empty graph handle");
  GraphExec E;
  E.D = D;
  return E;
}

const char *GraphExec::slotNameOr(unsigned Slot, const char *Fallback) const {
  auto It = D->SlotNames.find(Slot);
  return It != D->SlotNames.end() && !It->second.empty() ? It->second.c_str()
                                                         : Fallback;
}

void GraphExec::bind(unsigned Slot, void *Ptr, size_t Bytes,
                     const char *Name) {
  if (!D)
    throw std::logic_error("GraphExec::bind: graph not instantiated");
  const char *Bind = Name ? Name : "?";
  auto It = D->SlotBytes.find(Slot);
  if (It == D->SlotBytes.end())
    throw std::invalid_argument(descend::strfmt(
        "graph slot %u: not declared by the capture (binding `%s`)", Slot,
        Bind));
  if (It->second != Bytes)
    throw std::invalid_argument(descend::strfmt(
        "graph slot %u (`%s`): bound %zu bytes from `%s`, captured %zu",
        Slot, slotNameOr(Slot, "?"), Bytes, Bind, It->second));
  Bound[Slot] = Ptr;
}

void *GraphExec::slotPtr(unsigned Slot) const {
  auto It = Bound.find(Slot);
  assert(It != Bound.end() && "graph slot unbound (launch() validates)");
  return It->second;
}

void GraphExec::launch(Stream &S) const {
  if (!D)
    throw std::logic_error("GraphExec::launch: graph not instantiated");
  for (const auto &SB : D->SlotBytes)
    if (!Bound.count(SB.first))
      throw std::logic_error(descend::strfmt(
          "GraphExec::launch: slot %u (`%s`) is unbound — bind() every "
          "declared slot before launching",
          SB.first, slotNameOr(SB.first, "?")));
  // The whole captured sequence replays as ONE stream operation: a
  // serving loop pays a single enqueue per request instead of one per
  // transfer/launch. `this` must outlive the replay (generated drivers
  // synchronize before returning).
  const GraphExec *Self = this;
  S.enqueue([Self] {
    std::string SpanArgs;
    if (obs::TraceCollector::global().enabled()) [[unlikely]]
      SpanArgs = descend::strfmt("{\"ops\":%zu}", Self->D->Nodes.size());
    obs::Span ReplaySpan("stream", "graphReplay", std::move(SpanArgs));
    for (const std::function<void(const GraphExec &)> &Node : Self->D->Nodes)
      Node(*Self);
  });
}

//===----------------------------------------------------------------------===//
// Streams
//===----------------------------------------------------------------------===//

void Stream::poison(ErrorCode Code, const std::string &Msg) {
  std::lock_guard<std::mutex> G(M);
  if (PoisonedFlag.load(std::memory_order_relaxed))
    return; // first error wins
  PoisonCode = Code;
  PoisonMsg = Msg;
  PoisonedFlag.store(true, std::memory_order_release);
}

ErrorCode Stream::error(std::string *MsgOut) const {
  if (!PoisonedFlag.load(std::memory_order_acquire))
    return ErrorCode::Ok;
  std::lock_guard<std::mutex> G(M);
  if (MsgOut)
    *MsgOut = PoisonMsg;
  return PoisonCode;
}

void Stream::failFastIfPoisoned(const char *What) const {
  if (!PoisonedFlag.load(std::memory_order_acquire)) [[likely]]
    return;
  std::string Msg;
  const ErrorCode Code = error(&Msg);
  throw DeviceError(Code,
                    descend::strfmt("Stream::%s: stream poisoned by earlier "
                                    "%s: %s",
                                    What, errorCodeName(Code), Msg.c_str()));
}

void Stream::runOpObservingErrors(const std::function<void()> &Op) {
  // Attribution rule: the operation in flight when a device error
  // appeared is the operation that carried it — exactly one stream
  // poisons per deterministic injected fault, and a healthy sibling
  // stream with nothing in flight stays healthy.
  const uint64_t Seq0 = Dev->errorSeq();
  Op();
  if (Dev->errorSeq() != Seq0) [[unlikely]] {
    std::string Msg;
    const ErrorCode Code = Dev->getLastError(&Msg);
    if (Code != ErrorCode::Ok)
      poison(Code, Msg);
  }
}

void Stream::enqueue(std::function<void()> Op) {
  failFastIfPoisoned("enqueue");
  // Capture records instead of executing — also on sequential devices,
  // so a captured graph is identical no matter the worker count.
  if (InCapture) {
    CapNodes.push_back(
        [Fn = std::move(Op)](const GraphExec &) { Fn(); });
    return;
  }
  // Sequential devices (including race detection, which forces one
  // worker) execute immediately: deterministic, in order, on the calling
  // thread — the behaviour the race-detector fixtures pin down.
  if (Dev->effectiveWorkers() <= 1) {
    runOpObservingErrors(Op);
    return;
  }
  Dev->asyncOpBegin();
  bool StartPump = false;
  {
    std::lock_guard<std::mutex> G(M);
    Ops.push_back(OpItem{std::move(Op), nullptr, 0});
    if (!Running) {
      Running = true;
      StartPump = true;
    }
  }
  if (StartPump)
    Dev->pool().submit([this] { pump(); });
}

void Stream::pump() {
  for (;;) {
    std::function<void()> Op;
    std::shared_ptr<detail::EventState> WaitSt;
    uint64_t WaitTarget = 0;
    {
      std::lock_guard<std::mutex> G(M);
      if (Ops.empty()) {
        Running = false;
        CV.notify_all();
        return;
      }
      OpItem &Front = Ops.front();
      if (Front.Fn) {
        Op = std::move(Front.Fn);
        Ops.pop_front();
      } else {
        // Event-wait marker: peek without popping — if the event is not
        // done we park, and the marker must still be at the front when
        // the waiter callback resubmits this pump.
        WaitSt = Front.WaitSt;
        WaitTarget = Front.WaitTarget;
      }
    }
    if (Op) {
      runOpObservingErrors(Op);
      Dev->asyncOpEnd();
      continue;
    }
    // Never hold the stream mutex while taking the event mutex.
    {
      std::unique_lock<std::mutex> EL(WaitSt->M);
      if (WaitSt->Completed < WaitTarget) {
        // Park: re-arm the pump from the event's completion callback
        // instead of blocking this pool worker. Running stays true, so
        // synchronize() keeps blocking and no second pump starts.
        GpuDevice *D = Dev;
        Stream *Self = this;
        WaitSt->Waiters.emplace_back(
            WaitTarget, [D, Self] { D->pool().submit([Self] { Self->pump(); }); });
        return;
      }
    }
    // Satisfied: consume the marker and continue draining.
    if (obs::TraceCollector::global().enabled()) [[unlikely]]
      obs::TraceCollector::global().addInstant("stream", "eventWait");
    {
      std::lock_guard<std::mutex> G(M);
      assert(!Ops.empty() && !Ops.front().Fn &&
             "wait marker vanished while the pump held it");
      Ops.pop_front();
    }
    Dev->asyncOpEnd();
  }
}

void Stream::launch(Dim3 Grid, Dim3 Block, size_t SharedBytes,
                    PhaseProgram Prog) {
  Prog.nodes(); // structural check (every loopBegin closed) at enqueue
  auto P = std::make_shared<const PhaseProgram>(std::move(Prog));
  GpuDevice *D = Dev;
  enqueue([D, Grid, Block, SharedBytes, P] {
    obs::Span LaunchSpan("stream", "launch");
    launchProgram(*D, Grid, Block, SharedBytes, *P);
  });
}

void Stream::record(Event &E) {
  failFastIfPoisoned("record");
  std::shared_ptr<detail::EventState> St = E.St;
  if (InCapture) {
    // The generation is minted when the node *runs*: each replay re-arms
    // the event afresh. Recording at capture time would leave the event
    // permanently "pending" between capture and first replay.
    captureNode([St](const GraphExec &) { detail::signalEventNow(St); });
    return;
  }
  uint64_t Gen;
  {
    std::lock_guard<std::mutex> G(St->M);
    Gen = ++St->Recorded;
  }
  // Everything enqueued so far is ordered before this closure within the
  // stream, so signalling here is exactly "all prior work done".
  // Sequential devices run it immediately: the event completes inline.
  GpuDevice *D = Dev;
  enqueue([St, Gen, D] {
    // Fault injection: `drop:event=N` models a lost completion
    // interrupt. The device records a sticky EventDropped (poisoning
    // this stream), but the generation still completes — a detected,
    // reported fault must never become an undetectable hang.
    FaultInjector &FI = FaultInjector::global();
    if (FI.armed() && FI.shouldDropEvent()) [[unlikely]]
      D->setDeviceError(
          ErrorCode::EventDropped,
          descend::strfmt("event signal dropped (fault injection, "
                          "drop:event=%llu); generation completed anyway to "
                          "avoid a hang",
                          static_cast<unsigned long long>(
                              FI.plan().DropEventAt)));
    if (obs::TraceCollector::global().enabled()) [[unlikely]]
      obs::TraceCollector::global().addInstant("stream", "eventRecord");
    detail::signalEventGen(St, Gen);
  });
}

void Stream::wait(Event &E) {
  failFastIfPoisoned("wait");
  std::shared_ptr<detail::EventState> St = E.St;
  if (InCapture) {
    // Replay-time blocking wait: the replaying pump worker waits on the
    // event CV. (Captured graphs replay as one node sequence; a parked
    // resumption point inside the sequence has nothing to resume into.)
    captureNode([St](const GraphExec &) {
      std::unique_lock<std::mutex> L(St->M);
      const uint64_t Target = St->Recorded;
      St->CV.wait(L, [&] { return St->Completed >= Target; });
    });
    return;
  }
  uint64_t Target;
  {
    std::lock_guard<std::mutex> G(St->M);
    Target = St->Recorded;
  }
  if (Target == 0)
    return; // waiting on a never-recorded event is a no-op (CUDA)
  if (Dev->effectiveWorkers() <= 1) {
    // Sequential devices execute inline, so anything this stream enqueues
    // next runs on the calling thread — block it here. (The recorder may
    // live on a multi-worker device; the CV handles that.)
    std::unique_lock<std::mutex> L(St->M);
    St->CV.wait(L, [&] { return St->Completed >= Target; });
    return;
  }
  Dev->asyncOpBegin();
  bool StartPump = false;
  {
    std::lock_guard<std::mutex> G(M);
    Ops.push_back(OpItem{nullptr, std::move(St), Target});
    if (!Running) {
      Running = true;
      StartPump = true;
    }
  }
  if (StartPump)
    Dev->pool().submit([this] { pump(); });
}

bool Stream::query() {
  failFastIfPoisoned("query");
  std::lock_guard<std::mutex> G(M);
  return Ops.empty() && !Running;
}

void Stream::synchronize() {
  // Stream operations are typically a few microseconds; spin briefly on
  // the atomic Running flag before sleeping so short tails — a graph
  // replay, a single launch — skip the futex sleep/wake round trip.
  // Completion is confirmed under M, which the pump held when it cleared
  // the flag, so the op's side effects happen-before we return.
  for (int Spin = 0; Spin != 16384; ++Spin) {
    if (!Running.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> G(M);
      if (Ops.empty() && !Running)
        return;
    }
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }
  std::unique_lock<std::mutex> L(M);
  CV.wait(L, [&] { return Ops.empty() && !Running; });
}

void Stream::beginCapture() {
  if (InCapture)
    throw std::logic_error("Stream::beginCapture: already capturing");
  InCapture = true;
  CapNodes.clear();
  CapSlots.clear();
  CapSlotNames.clear();
}

Graph Stream::endCapture() {
  if (!InCapture)
    throw std::logic_error("Stream::endCapture: no capture in progress");
  InCapture = false;
  auto D = std::make_shared<Graph::Data>();
  D->Nodes = std::move(CapNodes);
  D->SlotBytes = std::move(CapSlots);
  D->SlotNames = std::move(CapSlotNames);
  CapNodes.clear();
  CapSlots.clear();
  CapSlotNames.clear();
  return Graph(std::move(D));
}

void Stream::captureNode(std::function<void(const GraphExec &)> Fn) {
  if (!InCapture)
    throw std::logic_error("Stream::captureNode: not capturing");
  CapNodes.push_back(std::move(Fn));
}

void Stream::declareCaptureSlot(unsigned Slot, size_t Bytes,
                                const std::string &Name) {
  if (!InCapture)
    throw std::logic_error("Stream::declareCaptureSlot: not capturing");
  if (!Name.empty())
    CapSlotNames.emplace(Slot, Name); // first declaration names the slot
  auto It = CapSlots.find(Slot);
  if (It == CapSlots.end()) {
    CapSlots[Slot] = Bytes;
    return;
  }
  if (It->second != Bytes)
    throw std::invalid_argument(descend::strfmt(
        "graph slot %u: declared %zu bytes, previously %zu", Slot, Bytes,
        It->second));
}
