//===- sim/Sim.cpp - Simulator implementation -------------------------------===//

#include "sim/Sim.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <thread>

using namespace descend::sim;

std::string RaceReport::str() const {
  return descend::strfmt(
      "data race on buffer %u offset %zu: block %u thread %u (%s, phase %u) "
      "vs block %u thread %u (%s, phase %u)",
      BufferId, Offset, BlockA, ThreadA, WriteA ? "write" : "read", PhaseA,
      BlockB, ThreadB, WriteB ? "write" : "read", PhaseB);
}

std::string BoundsReport::str() const {
  return descend::strfmt(
      "out-of-bounds access on buffer %u: offset %zu, size %zu", BufferId,
      Offset, Size);
}

GpuDevice::GpuDevice() = default;
GpuDevice::~GpuDevice() = default;

unsigned GpuDevice::effectiveWorkers() const {
  if (RaceDetection)
    return 1;
  if (Workers != 0)
    return Workers;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

std::byte *GpuDevice::allocRaw(size_t Bytes, unsigned &IdOut) {
  auto Mem = std::make_unique<std::byte[]>(Bytes);
  std::memset(Mem.get(), 0, Bytes);
  Allocations.push_back(std::move(Mem));
  AllocationSizes.push_back(Bytes);
  IdOut = Allocations.size(); // ids start at 1; 0+ reserved for shared
  return Allocations.back().get();
}

void GpuDevice::logAccess(const BlockCtx &B, unsigned BufferId, size_t Offset,
                          bool Write) {
  detail::Access A;
  A.BufferId = BufferId;
  A.Offset = Offset;
  A.Block = B.linear();
  A.Thread = B.CurThread;
  A.Phase = static_cast<uint16_t>(B.CurPhase);
  A.Write = Write;
  AccessLog.push_back(A);
}

void GpuDevice::logBounds(unsigned BufferId, size_t Offset, size_t Size) {
  BoundsReport R;
  R.BufferId = BufferId;
  R.Offset = Offset;
  R.Size = Size;
  BoundsViolations.push_back(R);
}

void GpuDevice::clearLogs() {
  AccessLog.clear();
  BoundsViolations.clear();
}

std::vector<RaceReport> GpuDevice::findRaces() const {
  std::vector<detail::Access> Log = AccessLog;
  std::sort(Log.begin(), Log.end(),
            [](const detail::Access &A, const detail::Access &B) {
              if (A.BufferId != B.BufferId)
                return A.BufferId < B.BufferId;
              return A.Offset < B.Offset;
            });

  std::vector<RaceReport> Reports;
  size_t I = 0;
  while (I < Log.size()) {
    size_t J = I;
    while (J < Log.size() && Log[J].BufferId == Log[I].BufferId &&
           Log[J].Offset == Log[I].Offset)
      ++J;
    // Scan the group [I, J) for one representative conflict.
    bool Found = false;
    for (size_t A = I; A != J && !Found; ++A) {
      if (!Log[A].Write)
        continue; // at least one access must be a write
      for (size_t B = I; B != J && !Found; ++B) {
        if (A == B)
          continue;
        bool SameThread =
            Log[A].Block == Log[B].Block && Log[A].Thread == Log[B].Thread;
        if (SameThread)
          continue;
        bool Conflict;
        if (Log[A].Block != Log[B].Block) {
          // No ordering between blocks within one kernel.
          Conflict = true;
        } else {
          // Same block: phases are ordered by the barrier.
          Conflict = Log[A].Phase == Log[B].Phase;
        }
        if (!Conflict)
          continue;
        RaceReport R;
        R.BufferId = Log[A].BufferId;
        R.Offset = Log[A].Offset;
        R.BlockA = Log[A].Block;
        R.ThreadA = Log[A].Thread;
        R.PhaseA = Log[A].Phase;
        R.WriteA = Log[A].Write;
        R.BlockB = Log[B].Block;
        R.ThreadB = Log[B].Thread;
        R.PhaseB = Log[B].Phase;
        R.WriteB = Log[B].Write;
        Reports.push_back(R);
        Found = true;
      }
    }
    I = J;
  }
  return Reports;
}

//===----------------------------------------------------------------------===//
// Phase programs
//===----------------------------------------------------------------------===//

PhaseProgram &PhaseProgram::straightBlock(BlockPhase Fn) {
  Node N;
  N.Fn = std::move(Fn);
  (OpenBodies.empty() ? Nodes : OpenBodies.back()).push_back(std::move(N));
  return *this;
}

PhaseProgram &PhaseProgram::loopBegin(unsigned Slot, Bound Lo, Bound Hi) {
  assert(Slot < BlockCtx::MaxLoopSlots && "loop slot out of range");
  Node N;
  N.Slot = Slot;
  N.Lo = std::move(Lo);
  N.Hi = std::move(Hi);
  OpenHeaders.push_back(std::move(N));
  OpenBodies.emplace_back();
  return *this;
}

PhaseProgram &PhaseProgram::loopBegin(unsigned Slot, long long Lo,
                                      long long Hi) {
  return loopBegin(
      Slot, [Lo](const BlockCtx &) { return Lo; },
      [Hi](const BlockCtx &) { return Hi; });
}

PhaseProgram &PhaseProgram::loopEnd() {
  assert(!OpenHeaders.empty() && "loopEnd() without matching loopBegin()");
  Node N = std::move(OpenHeaders.back());
  OpenHeaders.pop_back();
  N.Body = std::move(OpenBodies.back());
  OpenBodies.pop_back();
  (OpenBodies.empty() ? Nodes : OpenBodies.back()).push_back(std::move(N));
  return *this;
}

const std::vector<PhaseProgram::Node> &PhaseProgram::nodes() const {
  assert(OpenHeaders.empty() && "program has an unclosed loopBegin()");
  return Nodes;
}

namespace {

void runProgramNodes(const std::vector<PhaseProgram::Node> &Nodes,
                     BlockCtx &B, unsigned &PhaseIdx) {
  for (const PhaseProgram::Node &N : Nodes) {
    if (N.Fn) {
      B.CurPhase = PhaseIdx++;
      N.Fn(B);
      continue;
    }
    const long long Lo = N.Lo(B), Hi = N.Hi(B);
    for (long long V = Lo; V < Hi; ++V) {
      B.LoopVars[N.Slot] = V;
      runProgramNodes(N.Body, B, PhaseIdx);
    }
  }
}

} // namespace

void descend::sim::launchProgram(GpuDevice &Dev, Dim3 Grid, Dim3 Block,
                                 size_t SharedBytes,
                                 const PhaseProgram &Prog) {
  detail::runBlocks(Dev, Grid, Block, SharedBytes, [&](BlockCtx &B) {
    unsigned PhaseIdx = 0;
    runProgramNodes(Prog.nodes(), B, PhaseIdx);
  });
}

void detail::runBlocks(GpuDevice &Dev, Dim3 Grid, Dim3 Block,
                       size_t SharedBytes,
                       const std::function<void(BlockCtx &)> &RunBlock) {
  const unsigned NumBlocks = Grid.total();
  const unsigned NumWorkers = std::min(Dev.effectiveWorkers(), NumBlocks);

  auto RunOne = [&](unsigned Linear, std::byte *Arena) {
    BlockCtx B;
    B.X = Linear % Grid.X;
    B.Y = (Linear / Grid.X) % Grid.Y;
    B.Z = Linear / (Grid.X * Grid.Y);
    B.GridDim = Grid;
    B.BlockDim = Block;
    B.SharedArena = Arena;
    B.SharedBytes = SharedBytes;
    B.Dev = &Dev;
    // Shared arenas are per block instance: give each block its own
    // logical buffer id so the detector separates them.
    B.SharedBufferId = 1000000000u + Linear;
    if (SharedBytes)
      std::memset(Arena, 0, SharedBytes);
    RunBlock(B);
  };

  if (NumWorkers <= 1) {
    std::vector<std::byte> Arena(SharedBytes ? SharedBytes : 1);
    for (unsigned L = 0; L != NumBlocks; ++L)
      RunOne(L, Arena.data());
    return;
  }

  std::atomic<unsigned> Next{0};
  std::vector<std::thread> Pool;
  Pool.reserve(NumWorkers);
  for (unsigned W = 0; W != NumWorkers; ++W)
    Pool.emplace_back([&]() {
      std::vector<std::byte> Arena(SharedBytes ? SharedBytes : 1);
      while (true) {
        unsigned L = Next.fetch_add(1, std::memory_order_relaxed);
        if (L >= NumBlocks)
          return;
        RunOne(L, Arena.data());
      }
    });
  for (std::thread &T : Pool)
    T.join();
}
