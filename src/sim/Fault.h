//===- sim/Fault.h - Sticky errors and deterministic fault injection -*- C++ -*-===//
//
// Part of the Descend reproduction. This header defines the runtime's
// failure contract — the piece of the reliability story that the type
// system cannot cover. It has three halves:
//
//  * ErrorCode / DeviceError: the CUDA-style sticky error model. A kernel
//    trap, failed allocation, failed async copy, dropped event or watchdog
//    timeout records a device-level ErrorCode on the GpuDevice and poisons
//    the sim::Stream that carried the failing operation. Every subsequent
//    host-side operation on the poisoned stream fails fast with the
//    *original* error (first error wins), `getLastError`/`peekLastError`
//    expose it, and `GpuDevice::reset()` is the only way back to a healthy
//    device. Generated hostgen drivers surface the state as a structured
//    `rt::Error` (an alias of DeviceError) instead of leaking
//    half-completed buffers.
//
//  * FaultPlan: a deterministic fault-injection plan, parsed strictly from
//    the DESCEND_FAULTS environment variable. The grammar is a
//    comma-separated list of injection clauses:
//
//        alloc:N              fail the N-th device allocation (1-based)
//        trap:launch=N        force a kernel trap at the N-th launch
//        delay:worker=K:ms=M  delay pool worker K by M ms per work batch
//        drop:event=N         drop (and convert to a sticky error) the
//                             N-th stream event signal
//        compile:fail=N       make the N-th compile request fail with a
//                             transient, retryable diagnostic
//        e.g. DESCEND_FAULTS=alloc:3,trap:launch=5,delay:worker=2:ms=10
//
//    Parsing follows the same strictness discipline as
//    detail::parseWorkerCount: malformed input is rejected as a whole
//    (with a one-time stderr warning when it came from the environment)
//    rather than partially applied, so a typo can never half-inject.
//
//  * FaultInjector: the process-wide singleton the runtime seams query.
//    Each clause has an atomic trigger counter, so "the N-th allocation"
//    is exact and race-free even when allocations happen on pool workers.
//    Tests install plans directly via setPlanForTest (which also resets
//    the counters); production code never pays more than one relaxed
//    atomic load per seam when no plan is armed.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_SIM_FAULT_H
#define DESCEND_SIM_FAULT_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace descend {
namespace sim {

//===----------------------------------------------------------------------===//
// Sticky error codes
//===----------------------------------------------------------------------===//

/// Device-level error classification, modeled on cudaError_t's sticky
/// subset: once a device records one of these (other than Ok) every
/// subsequent query returns it until GpuDevice::reset().
enum class ErrorCode : uint8_t {
  Ok = 0,
  KernelTrap,    ///< a kernel body trapped (OOB access, div by zero, ...)
  KernelTimeout, ///< the watchdog cancelled a runaway launch
  AllocFailed,   ///< device allocation failed (real or injected)
  CopyFailed,    ///< a host<->device copy failed after enqueue
  EventDropped,  ///< an event signal was dropped (injected seam)
  StreamPoisoned ///< operation refused because the stream already failed
};

/// Stable lowercase name of an error code ("kernel_trap", ...). Used in
/// exception texts, trace events and the descendd METRICS line.
const char *errorCodeName(ErrorCode E);

/// The structured exception every host-facing failure surfaces as.
/// Carries the machine-readable code alongside the human text; hostgen
/// drivers and rt:: helpers throw exactly this type (aliased as
/// rt::Error) so callers can switch on `code()` instead of parsing text.
class DeviceError : public std::runtime_error {
public:
  DeviceError(ErrorCode Code, const std::string &What)
      : std::runtime_error(What), Code(Code) {}

  ErrorCode code() const { return Code; }

private:
  ErrorCode Code;
};

//===----------------------------------------------------------------------===//
// Fault plans
//===----------------------------------------------------------------------===//

/// One deterministic injection plan. Value 0 means "clause not armed";
/// all trigger ordinals are 1-based ("the N-th occurrence").
struct FaultPlan {
  uint64_t AllocFailAt = 0;   ///< alloc:N
  uint64_t TrapAtLaunch = 0;  ///< trap:launch=N
  uint64_t DelayWorker = 0;   ///< delay:worker=K (1-based worker ordinal)
  uint64_t DelayMs = 0;       ///< delay:worker=K:ms=M
  uint64_t DropEventAt = 0;   ///< drop:event=N
  uint64_t CompileFailAt = 0; ///< compile:fail=N

  bool armed() const {
    return AllocFailAt || TrapAtLaunch || DelayWorker || DropEventAt ||
           CompileFailAt;
  }

  /// Strictly parses \p Text (the DESCEND_FAULTS grammar above) into
  /// \p Out. Returns false — leaving \p Out untouched — on any malformed
  /// clause, unknown key, duplicate clause, zero ordinal or trailing
  /// garbage, setting \p Err to a diagnostic. The empty string parses to
  /// an unarmed plan.
  static bool parse(const std::string &Text, FaultPlan &Out,
                    std::string *Err = nullptr);

  /// Canonical textual form (round-trips through parse); "off" when
  /// unarmed. Stamped into bench provenance and trace metadata.
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// The injector singleton
//===----------------------------------------------------------------------===//

/// Process-wide fault injector. The runtime seams (allocRaw, runBlocks,
/// worker loop, Stream::record, CompileService::doCompile) call the
/// should*() probes; each probe advances its own atomic occurrence
/// counter and fires exactly once, on the configured ordinal.
class FaultInjector {
public:
  /// The singleton. First use parses DESCEND_FAULTS (strictly, with a
  /// one-time stderr warning on malformed input, which then counts as
  /// unset — never a partial plan).
  static FaultInjector &global();

  /// True when any clause is armed. One relaxed load; the fast path for
  /// every seam.
  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// Installs \p P and resets every occurrence counter. Tests use this;
  /// it is also how `--no-faults` style call sites disarm injection.
  void setPlanForTest(const FaultPlan &P);

  /// The currently armed plan (copy).
  FaultPlan plan() const;

  // Probes — each returns true exactly when the current occurrence
  // matches the armed ordinal.
  bool shouldFailAlloc();
  bool shouldTrapLaunch();
  /// \p WorkerOrdinal is 1-based; on a hit sets \p DelayMsOut.
  bool shouldDelayWorker(uint64_t WorkerOrdinal, uint64_t &DelayMsOut);
  bool shouldDropEvent();
  bool shouldFailCompile();

private:
  FaultInjector();

  std::atomic<bool> Armed{false};
  FaultPlan Plan; // written only under setPlanForTest / ctor
  mutable std::mutex PlanM;

  std::atomic<uint64_t> AllocSeen{0};
  std::atomic<uint64_t> LaunchSeen{0};
  std::atomic<uint64_t> EventSeen{0};
  std::atomic<uint64_t> CompileSeen{0};
};

} // namespace sim
} // namespace descend

#endif // DESCEND_SIM_FAULT_H
