//===- sim/Sim.h - Phase-structured GPU execution simulator -----*- C++ -*-===//
//
// Part of the Descend reproduction. This is the substrate substituting for
// the paper's CUDA/Tesla-P100 testbed (see DESIGN.md): a CUDA-like
// execution model on the host CPU.
//
// Execution model:
//  * A launch runs a grid of independent blocks; blocks are distributed
//    over a persistent worker pool owned by the device (they may not
//    synchronize with each other, exactly as in CUDA). Workers park on a
//    condition variable between launches and claim *runs* of blocks per
//    atomic claim, so a launch costs a wake-up, not a thread spawn, and
//    large grids do not serialize on one counter.
//  * A kernel is a *phase program*: a sequence of phases and host-side
//    loops over phases (PhaseProgram, the runtime mirror of the
//    compiler's phase-program IR). A phase runs for every thread of a
//    block before the next phase starts, so a phase boundary is a
//    __syncthreads() barrier; a loop node binds a per-block loop
//    variable (BlockCtx::loopVar) and runs its children once per
//    iteration. Descend only admits structured barriers (sync at block
//    scope), so every well-typed Descend program maps onto this
//    representation; handwritten kernels are written in the same style
//    through the variadic launchPhases, mirroring how __syncthreads()
//    partitions a CUDA kernel.
//  * Shared memory is a per-block arena living across the block's phases;
//    each executing thread caches one arena across launches.
//  * Streams (class Stream) enqueue launches and host<->device copies
//    asynchronously, in order per stream, overlapping across streams on
//    the same pool — the CUDA async-launch model. The default,
//    stream-less entry points stay synchronous and bit-identical.
//  * Events (class Event, the cudaEvent_t analogue) let streams fan out
//    and rejoin: Stream::record snapshots "everything enqueued so far",
//    Stream::wait orders a stream after that snapshot without draining
//    the device. A waiting stream *parks* (its pump re-arms from the
//    event's completion callback) instead of blocking a pool worker.
//  * Launch graphs (Graph / GraphExec, the cudaGraph analogue): a
//    stream's transfer/launch/event sequence recorded once between
//    beginCapture()/endCapture(), instantiated, rebound to fresh host
//    buffers per request (GraphExec::bind) and replayed as ONE stream
//    operation — the per-op enqueue cost of a serving loop collapses to
//    a single enqueue per request.
//
// Observability (both off by default; the hot path pays one predicted
// branch):
//  * Race detection logs (buffer, offset, mode, thread, phase) accesses and
//    reports CUDA-model races: same offset, >=1 write, different threads,
//    and either different blocks (no ordering at all) or the same block in
//    the same phase (no barrier in between).
//  * Bounds checking records out-of-range accesses instead of corrupting
//    memory (used to demonstrate the Section 2.3 launch-size bug).
//
// Failure semantics (sim/Fault.h): a kernel trap, failed allocation,
// dropped event signal or watchdog timeout records a sticky device-level
// ErrorCode (first error wins) and poisons the sim::Stream that carried
// the failing operation — subsequent host-side calls on that stream fail
// fast with the original error, and GpuDevice::reset() is the only way
// back to a healthy device. DESCEND_FAULTS injects exactly these
// failures deterministically; DESCEND_WATCHDOG (or setWatchdog) arms a
// per-launch wall-clock timeout whose cancel flag every block observes
// at phase boundaries, plus a vm instruction budget.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_SIM_SIM_H
#define DESCEND_SIM_SIM_H

#include "obs/Counters.h"
#include "sim/Fault.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace descend::sim {

/// Per-launch perf counters (defined in obs/Counters.h; the simulator
/// fills them, GpuDevice::lastLaunchStats() and friends expose them).
using LaunchStats = obs::LaunchStats;

struct Dim3 {
  unsigned X = 1, Y = 1, Z = 1;
  unsigned total() const { return X * Y * Z; }
};

/// One recorded data race.
struct RaceReport {
  unsigned BufferId = 0;
  size_t Offset = 0;
  unsigned BlockA = 0, ThreadA = 0, PhaseA = 0;
  unsigned BlockB = 0, ThreadB = 0, PhaseB = 0;
  bool WriteA = false, WriteB = false;
  std::string str() const;
};

struct BoundsReport {
  unsigned BufferId = 0;
  size_t Offset = 0;
  size_t Size = 0;
  std::string str() const;
};

namespace detail {
struct Access {
  unsigned BufferId;
  uint64_t Offset;
  unsigned Block;
  unsigned Thread;
  uint16_t Phase;
  bool Write;
};

/// First logical buffer id of the per-block shared-memory range. Global
/// buffer ids grow upward from 1 and GpuDevice::allocRaw asserts they
/// never reach this base, so shared and global accesses can never alias
/// in the race detector's log, no matter how long the device lives.
constexpr unsigned FirstSharedBufferId = 0x80000000u;

/// The calling thread's cached scratch arena, grown to at least \p Bytes.
/// One arena per OS thread, reused across launches: block execution pays
/// no allocator traffic after warm-up.
std::byte *threadArena(size_t Bytes);

/// Strictly parses a DESCEND_WORKERS-style worker-count override.
/// Returns the count for a well-formed positive integer within
/// [1, MaxWorkerOverride]; returns 0 (meaning "use the default") for
/// null, empty, non-numeric, trailing-garbage, zero, negative or
/// out-of-range text, filling \p Warning (when non-null and the text was
/// present but unusable) with a one-line explanation for stderr.
constexpr long MaxWorkerOverride = 4096;
unsigned parseWorkerCount(const char *Text, std::string *Warning = nullptr);

/// Shared state of an Event: generation counters plus parked waiters.
/// `Recorded` counts record() calls (the generation a wait targets);
/// `Completed` is the highest generation whose recorded work has
/// executed. Waiters are (target generation, callback) pairs fired — in
/// registration order, outside the lock — once Completed reaches their
/// target; parked stream pumps re-arm through them.
struct EventState {
  std::mutex M;
  std::condition_variable CV;
  uint64_t Recorded = 0;
  uint64_t Completed = 0;
  std::vector<std::pair<uint64_t, std::function<void()>>> Waiters;
};

/// Marks \p Gen complete on \p St and fires every due waiter (outside
/// the event lock).
void signalEventGen(const std::shared_ptr<EventState> &St, uint64_t Gen);
/// Records-and-completes a fresh generation in one step (graph replay:
/// a captured record re-records at replay time).
void signalEventNow(const std::shared_ptr<EventState> &St);

/// Per-launch cancellation state for the wall-clock watchdog. Blocks
/// poll cancelled() at phase boundaries — the only points where stopping
/// is well-defined (no thread is mid-phase, so no barrier is torn). The
/// first poller past the deadline trips the flag for every block;
/// runBlocks converts the trip into a KernelTimeout sticky device error
/// once the launch drains. One steady_clock read per phase boundary,
/// paid only when a timeout is armed.
struct LaunchControl {
  std::atomic<bool> Cancel{false};
  std::chrono::steady_clock::time_point Deadline{};
  bool HasDeadline = false;

  bool cancelled() {
    if (Cancel.load(std::memory_order_relaxed))
      return true;
    if (HasDeadline && std::chrono::steady_clock::now() >= Deadline) {
      Cancel.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
};

/// A persistent pool of worker threads parked on a condition variable.
/// Owned by a GpuDevice, created lazily at the first parallel launch and
/// torn down with the device (or when setWorkers resizes it).
///
/// Work comes in two shapes: parallelFor distributes the blocks of one
/// launch (the calling thread participates, so small grids finish without
/// waiting for a wake-up), and submit runs a one-off task on some worker
/// (the sequencers of asynchronous streams). Items of a parallelFor are
/// claimed in runs of Chunk per atomic fetch_add; callers scale Chunk to
/// the grid so a launch costs a handful of claims per worker instead of
/// one per block.
class WorkerPool {
public:
  explicit WorkerPool(unsigned ThreadCount);
  ~WorkerPool();
  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Runs Body(I) for every I in [0, NumItems), distributing runs of
  /// Chunk items over the pool. The calling thread claims chunks too;
  /// returns once every item has finished.
  void parallelFor(unsigned NumItems, unsigned Chunk,
                   const std::function<void(unsigned)> &Body);

  /// Enqueues \p Task to run asynchronously on some pool worker.
  void submit(std::function<void()> Task);

private:
  struct Job;
  /// \p Ordinal is the worker's 1-based index — the `delay:worker=K`
  /// fault-injection clause keys on it.
  void workerLoop(unsigned Ordinal);
  bool claimAndRun(Job &J);
  void removeFromQueue(const std::shared_ptr<Job> &J);

  std::mutex M;
  std::condition_variable WorkCV;
  std::deque<std::shared_ptr<Job>> Queue; // jobs with unclaimed items
  bool Stopping = false;
  std::vector<std::thread> Workers;
};
} // namespace detail

class GpuDevice;

/// Per-block execution context: block coordinates, dims, the shared-memory
/// arena and the logging position (updated per thread/phase; block-local,
/// so parallel block execution stays race-free).
struct BlockCtx {
  unsigned X = 0, Y = 0, Z = 0; // blockIdx
  Dim3 GridDim, BlockDim;
  std::byte *SharedArena = nullptr;
  size_t SharedBytes = 0;
  GpuDevice *Dev = nullptr;
  unsigned SharedBufferId = 0; // logical id for race logging
  unsigned CurThread = 0;      // linear id of the executing thread
  unsigned CurPhase = 0;

  /// Per-block perf counters; null (and free apart from the predicted
  /// branch per access) unless GpuDevice::setCounters(true). Block-local
  /// like everything else here, so counting needs no synchronization.
  obs::BlockCounters *Counters = nullptr;

  /// Wall-clock watchdog control of the enclosing launch; null unless a
  /// launch timeout is armed. Kernels poll cancelled() at phase
  /// boundaries (launchPhases and runProgramNodes do it for them).
  detail::LaunchControl *Ctl = nullptr;
  bool cancelled() const { return Ctl && Ctl->cancelled(); }

  /// Host-side phase-loop variables (PhaseProgram loop nodes), one slot
  /// per nesting level. Block-local, so parallel block execution may sit
  /// at different iterations.
  static constexpr unsigned MaxLoopSlots = 16;
  long long LoopVars[MaxLoopSlots] = {};
  long long loopVar(unsigned Slot) const { return LoopVars[Slot]; }

  unsigned linear() const { return (Z * GridDim.Y + Y) * GridDim.X + X; }

  /// Raw typed view into the shared arena at byte offset \p Offset.
  template <typename T> T *shared(size_t Offset) const {
    return reinterpret_cast<T *>(SharedArena + Offset);
  }

  // Logged shared-memory access; see class GpuDevice for the global side.
  template <typename T> T sharedLoad(size_t Base, size_t I) const;
  template <typename T> void sharedStore(size_t Base, size_t I, T V) const;

  // Wide (two-element) access at elements I and I+1, fused by the
  // vectorize schedule pass into ONE issued transaction: a single counter
  // tick at the first element's byte offset, both elements race-logged.
  template <typename T>
  void sharedLoad2(size_t Base, size_t I, T &V0, T &V1) const;
  template <typename T>
  void sharedStore2(size_t Base, size_t I, T V0, T V1) const;
};

/// Thread coordinates within a block.
struct ThreadCtx {
  unsigned X = 0, Y = 0, Z = 0; // threadIdx
};

/// Simulated device: owns global-memory buffers, the persistent worker
/// pool block execution runs on, and the observability state. Launches
/// from the host are synchronous; streams (class Stream) overlap
/// independent work on the same pool.
class GpuDevice {
public:
  GpuDevice();
  ~GpuDevice();

  template <typename T> class Buffer;

  /// Allocates a zero-initialized global buffer of \p Count elements.
  template <typename T> Buffer<T> alloc(size_t Count);

  /// Enables the dynamic race detector. Forces sequential block execution
  /// so the log is deterministic.
  void setRaceDetection(bool On) { RaceDetection = On; }
  bool raceDetection() const { return RaceDetection; }

  void setBoundsChecking(bool On) { BoundsChecking = On; }
  bool boundsChecking() const { return BoundsChecking; }

  /// Enables per-launch perf counters (obs::LaunchStats). Orthogonal to
  /// race detection and composable with it: under race detection the
  /// sequential schedule makes even the execution-shape fields
  /// deterministic. Synchronizes the device first so no launch straddles
  /// the transition. Host-side API, like setWorkers.
  void setCounters(bool On);
  bool countersEnabled() const {
    return CountersOn.load(std::memory_order_relaxed);
  }

  /// Stats of the most recent counted launch (value-copied under the
  /// stats lock; empty before the first counted launch).
  LaunchStats lastLaunchStats() const;
  /// Accumulated stats over every counted launch since resetStats().
  LaunchStats totalStats() const;
  /// Every counted launch in completion order (capped; see
  /// droppedLaunchStats), labels included once labelLastLaunch ran.
  std::vector<LaunchStats> launchLog() const;
  /// Launches not logged because the log hit its cap (their counts are
  /// still in totalStats()).
  uint64_t droppedLaunchStats() const;
  void resetStats();

  // Internal: launcher/interpreter hooks on the stats log.
  void recordLaunchStats(LaunchStats LS);
  /// Tags the most recent counted launch with a kernel name (the vm
  /// interpreter knows it; generated C++ code does not).
  void labelLastLaunch(const std::string &Name);
  /// Adds vm-kernel trap counts to the most recent counted launch.
  void noteLaunchTraps(uint64_t N);
  size_t accessLogSize() const { return AccessLog.size(); }

  /// Worker threads for block execution; 0 = the DESCEND_WORKERS
  /// environment variable if set, else hardware concurrency.
  /// Synchronizes the device and tears down the current pool; the next
  /// parallel launch recreates it at the new size. Host-side API — must
  /// not be called from inside stream operations.
  void setWorkers(unsigned N);
  unsigned effectiveWorkers() const;

  /// The device's persistent worker pool, created lazily at the
  /// effective worker count. Internal: launches reach it through
  /// detail::runBlocks and streams through their sequencer tasks.
  detail::WorkerPool &pool();

  /// Blocks until every operation enqueued on any of this device's
  /// streams has executed (cudaDeviceSynchronize).
  void deviceSynchronize();

  // Sticky errors (see sim/Fault.h) ----------------------------------

  /// The first device-level error since construction (or the last
  /// reset()); Ok while healthy, with \p MsgOut (when non-null) set to
  /// the original diagnostic. Sticky: unlike cudaGetLastError this does
  /// NOT clear — reset() is the only way back to Ok.
  ErrorCode getLastError(std::string *MsgOut = nullptr) const;
  /// Alias of getLastError (CUDA exposes both; ours are equally sticky).
  ErrorCode peekLastError(std::string *MsgOut = nullptr) const;
  /// True once any device error was recorded. One relaxed load.
  bool poisoned() const { return HasErr.load(std::memory_order_acquire); }

  /// Internal: records \p Code / \p Msg. The first error wins (later
  /// calls keep the original text but still bump errorSeq so in-flight
  /// streams observe them) and emits an "error" trace instant.
  void setDeviceError(ErrorCode Code, const std::string &Msg);
  /// Internal: monotone error-observation counter. A stream snapshots it
  /// around each operation to attribute a device error to the operation
  /// that was in flight when the error appeared.
  uint64_t errorSeq() const { return ErrSeq.load(std::memory_order_acquire); }

  /// The cudaDeviceReset analogue and the only path from poisoned back
  /// to healthy: drains the device, clears the sticky error, the stats
  /// and the logs, and tears down the worker pool (recreated lazily).
  /// Buffers stay allocated but their contents are unspecified; streams
  /// that were poisoned before the reset stay poisoned — create fresh
  /// ones.
  void reset();

  // Watchdogs --------------------------------------------------------

  struct WatchdogConfig {
    uint64_t StepBudget = 0;      ///< vm instructions per launch; 0 = off
    uint64_t LaunchTimeoutMs = 0; ///< wall-clock ms per launch; 0 = off
  };
  /// Installs watchdog limits (the DESCEND_WATCHDOG environment
  /// variable, e.g. "steps=1000000,ms=2000", seeds the default).
  /// Synchronizes first so no in-flight launch straddles the change.
  void setWatchdog(WatchdogConfig W);
  WatchdogConfig watchdog() const;

  // Internal: stream-operation accounting (see class Stream).
  void asyncOpBegin() { PendingOps.fetch_add(1, std::memory_order_relaxed); }
  void asyncOpEnd();

  /// Analyzes the logged accesses of the last launch. One report per
  /// conflicting (buffer, offset) pair.
  std::vector<RaceReport> findRaces() const;
  const std::vector<BoundsReport> &boundsViolations() const {
    return BoundsViolations;
  }
  void clearLogs();

  // Internal: used by accessors and the launcher.
  void logAccess(const BlockCtx &B, unsigned BufferId, size_t Offset,
                 bool Write);
  void logBounds(unsigned BufferId, size_t Offset, size_t Size);
  std::byte *allocRaw(size_t Bytes, unsigned &IdOut);

private:
  bool RaceDetection = false;
  bool BoundsChecking = false;
  std::atomic<bool> CountersOn{false}; // read by concurrent launches
  unsigned Workers = 0;

  static constexpr size_t MaxLaunchLog = 65536;
  mutable std::mutex StatsM;
  LaunchStats LastLaunch;
  LaunchStats Total;
  std::vector<LaunchStats> LaunchLog;
  uint64_t DroppedLaunches = 0;

  // Sticky error state: first error wins; HasErr is the lock-free
  // poisoned() probe, ErrSeq the per-operation attribution counter.
  mutable std::mutex ErrM;
  ErrorCode Err = ErrorCode::Ok; // guarded by ErrM
  std::string ErrMsg;            // guarded by ErrM
  std::atomic<bool> HasErr{false};
  std::atomic<uint64_t> ErrSeq{0};

  // Watchdog limits; atomics because launches on pool workers read them.
  std::atomic<uint64_t> WdStepBudget{0};
  std::atomic<uint64_t> WdTimeoutMs{0};

  std::unique_ptr<detail::WorkerPool> Pool;
  std::mutex PoolM; // guards lazy pool creation
  std::atomic<unsigned> PendingOps{0};
  std::mutex SyncM;
  std::condition_variable SyncCV;
  std::mutex BoundsM; // bounds logging may run from parallel blocks
  std::mutex AllocM;  // host threads may allocate concurrently

  std::vector<std::unique_ptr<std::byte[]>> Allocations;
  std::vector<size_t> AllocationSizes;
  std::vector<detail::Access> AccessLog;
  std::vector<BoundsReport> BoundsViolations;
};

/// Typed handle to a global buffer. Copyable; does not own the memory.
template <typename T> class GpuDevice::Buffer {
public:
  Buffer() = default;

  size_t size() const { return Count; }
  unsigned id() const { return Id; }

  /// Host-side unchecked access (initialization and verification).
  T *data() { return Data; }
  const T *data() const { return Data; }

  /// Device-side access from inside a kernel phase. Counters tick before
  /// the bounds check, mirroring the race log: the access was *issued*
  /// whether or not it lands.
  T load(const BlockCtx &B, size_t I) const {
    if (B.Counters) [[unlikely]]
      B.Counters->countGlobal(/*Write=*/false);
    if (Dev->raceDetection()) [[unlikely]]
      Dev->logAccess(B, Id, I, /*Write=*/false);
    if (Dev->boundsChecking()) [[unlikely]] {
      if (I >= Count) {
        Dev->logBounds(Id, I, Count);
        return T{};
      }
    }
    return Data[I];
  }
  void store(const BlockCtx &B, size_t I, T Value) const {
    if (B.Counters) [[unlikely]]
      B.Counters->countGlobal(/*Write=*/true);
    if (Dev->raceDetection()) [[unlikely]]
      Dev->logAccess(B, Id, I, /*Write=*/true);
    if (Dev->boundsChecking()) [[unlikely]] {
      if (I >= Count) {
        Dev->logBounds(Id, I, Count);
        return;
      }
    }
    Data[I] = Value;
  }

  /// Wide (two-element) access at elements I and I+1, fused by the
  /// vectorize schedule pass into ONE issued transaction: a single
  /// counter tick, but both elements race-logged and bounds-checked.
  void load2(const BlockCtx &B, size_t I, T &V0, T &V1) const {
    if (B.Counters) [[unlikely]]
      B.Counters->countGlobal(/*Write=*/false);
    if (Dev->raceDetection()) [[unlikely]] {
      Dev->logAccess(B, Id, I, /*Write=*/false);
      Dev->logAccess(B, Id, I + 1, /*Write=*/false);
    }
    if (Dev->boundsChecking()) [[unlikely]] {
      if (I + 1 >= Count) {
        Dev->logBounds(Id, I + 1, Count);
        V0 = V1 = T{};
        return;
      }
    }
    V0 = Data[I];
    V1 = Data[I + 1];
  }
  void store2(const BlockCtx &B, size_t I, T V0, T V1) const {
    if (B.Counters) [[unlikely]]
      B.Counters->countGlobal(/*Write=*/true);
    if (Dev->raceDetection()) [[unlikely]] {
      Dev->logAccess(B, Id, I, /*Write=*/true);
      Dev->logAccess(B, Id, I + 1, /*Write=*/true);
    }
    if (Dev->boundsChecking()) [[unlikely]] {
      if (I + 1 >= Count) {
        Dev->logBounds(Id, I + 1, Count);
        return;
      }
    }
    Data[I] = V0;
    Data[I + 1] = V1;
  }

private:
  friend class GpuDevice;
  Buffer(GpuDevice *Dev, T *Data, size_t Count, unsigned Id)
      : Dev(Dev), Data(Data), Count(Count), Id(Id) {}

  GpuDevice *Dev = nullptr;
  T *Data = nullptr;
  size_t Count = 0;
  unsigned Id = 0;
};

template <typename T> GpuDevice::Buffer<T> GpuDevice::alloc(size_t Count) {
  unsigned Id = 0;
  std::byte *Raw = allocRaw(Count * sizeof(T), Id);
  return Buffer<T>(this, reinterpret_cast<T *>(Raw), Count, Id);
}

template <typename T>
T BlockCtx::sharedLoad(size_t Base, size_t I) const {
  if (Counters) [[unlikely]]
    Counters->countShared(Base + I * sizeof(T), /*Write=*/false, CurThread);
  if (Dev->raceDetection()) [[unlikely]]
    Dev->logAccess(*this, SharedBufferId, Base + I * sizeof(T), false);
  return shared<T>(Base)[I];
}

template <typename T>
void BlockCtx::sharedStore(size_t Base, size_t I, T V) const {
  if (Counters) [[unlikely]]
    Counters->countShared(Base + I * sizeof(T), /*Write=*/true, CurThread);
  if (Dev->raceDetection()) [[unlikely]]
    Dev->logAccess(*this, SharedBufferId, Base + I * sizeof(T), true);
  shared<T>(Base)[I] = V;
}

template <typename T>
void BlockCtx::sharedLoad2(size_t Base, size_t I, T &V0, T &V1) const {
  if (Counters) [[unlikely]]
    Counters->countShared(Base + I * sizeof(T), /*Write=*/false, CurThread);
  if (Dev->raceDetection()) [[unlikely]] {
    Dev->logAccess(*this, SharedBufferId, Base + I * sizeof(T), false);
    Dev->logAccess(*this, SharedBufferId, Base + (I + 1) * sizeof(T), false);
  }
  V0 = shared<T>(Base)[I];
  V1 = shared<T>(Base)[I + 1];
}

template <typename T>
void BlockCtx::sharedStore2(size_t Base, size_t I, T V0, T V1) const {
  if (Counters) [[unlikely]]
    Counters->countShared(Base + I * sizeof(T), /*Write=*/true, CurThread);
  if (Dev->raceDetection()) [[unlikely]] {
    Dev->logAccess(*this, SharedBufferId, Base + I * sizeof(T), true);
    Dev->logAccess(*this, SharedBufferId, Base + (I + 1) * sizeof(T), true);
  }
  shared<T>(Base)[I] = V0;
  shared<T>(Base)[I + 1] = V1;
}

namespace detail {
/// Runs \p RunBlock once per block of the grid, distributing chunked runs
/// of blocks over the device's persistent worker pool and providing each
/// call with a zeroed per-thread shared arena. Sequential (and exactly
/// deterministic) when the device's effective worker count is 1.
void runBlocks(GpuDevice &Dev, Dim3 Grid, Dim3 Block, size_t SharedBytes,
               const std::function<void(BlockCtx &)> &RunBlock);

/// Strictly parses a DESCEND_WATCHDOG value ("steps=N", "ms=M", or both
/// comma-separated, each at most once, N/M positive). Returns false —
/// leaving \p Out untouched, \p Err set — on any malformed or unknown
/// clause, same all-or-nothing discipline as FaultPlan::parse.
bool parseWatchdogConfig(const char *Text, GpuDevice::WatchdogConfig &Out,
                         std::string *Err = nullptr);
} // namespace detail

/// A phase program: the host-side runtime mirror of the compiler's
/// phase-program IR (codegen/PhaseIR.h). Straight nodes are phases run
/// over every thread of a block; loop nodes bind a per-block loop
/// variable slot and run their children once per iteration, so a kernel
/// with a sync-containing loop is a constant number of phase lambdas plus
/// loop structure instead of one lambda per unrolled iteration.
///
/// Built once per launch with the fluent builder (generated code calls
/// straight()/loopBegin()/loopEnd() in emission order), then executed by
/// launchProgram.
class PhaseProgram {
public:
  /// A stored phase runs once per block execution with the thread loop
  /// inside (see straight()).
  using BlockPhase = std::function<void(BlockCtx &)>;
  /// Loop bounds are evaluated per entry, per block: they may read outer
  /// loop variables through the BlockCtx.
  using Bound = std::function<long long(const BlockCtx &)>;

  struct Node {
    BlockPhase Fn; // straight phase; null for loop nodes
    unsigned Slot = 0;
    Bound Lo, Hi; // half-open [Lo..Hi)
    std::vector<Node> Body;
  };

  /// Appends a phase to the innermost open loop (or the top level).
  /// \p Fn is a per-thread callable phase(BlockCtx&, ThreadCtx&); the
  /// thread loop is wrapped around it *before* type erasure, so the
  /// per-thread calls stay direct (inlinable) and only one erased call is
  /// paid per phase per block — the launchPhases fast path, preserved.
  template <typename ThreadFn> PhaseProgram &straight(ThreadFn Fn) {
    return straightBlock([Fn = std::move(Fn)](BlockCtx &B) mutable {
      const Dim3 Block = B.BlockDim;
      ThreadCtx T;
      for (T.Z = 0; T.Z != Block.Z; ++T.Z)
        for (T.Y = 0; T.Y != Block.Y; ++T.Y)
          for (T.X = 0; T.X != Block.X; ++T.X) {
            B.CurThread = (T.Z * Block.Y + T.Y) * Block.X + T.X;
            Fn(B, T);
          }
    });
  }

  /// Appends a phase that drives the block itself (the thread loop, if
  /// any, is the callee's business).
  PhaseProgram &straightBlock(BlockPhase Fn);

  /// Opens a loop over BlockCtx::loopVar(\p Slot); nodes appended until
  /// the matching loopEnd() run once per iteration.
  PhaseProgram &loopBegin(unsigned Slot, Bound Lo, Bound Hi);
  /// Convenience overload for literal bounds.
  PhaseProgram &loopBegin(unsigned Slot, long long Lo, long long Hi);
  PhaseProgram &loopEnd();

  /// The completed program (every loopBegin matched by a loopEnd).
  const std::vector<Node> &nodes() const;

private:
  std::vector<Node> Nodes;           // completed top-level nodes
  std::vector<Node> OpenHeaders;     // loop nodes under construction
  std::vector<std::vector<Node>> OpenBodies; // their pending children
};

/// Launches a phase program: within each block the program's nodes run in
/// order — every phase over all threads before the next node starts (the
/// __syncthreads() barrier), loop bodies once per iteration with the loop
/// variable bound in the BlockCtx.
void launchProgram(GpuDevice &Dev, Dim3 Grid, Dim3 Block, size_t SharedBytes,
                   const PhaseProgram &Prog);

class Stream;
class GraphExec;

/// The cudaEvent_t analogue: a reusable marker streams record and wait
/// on. Copying an Event copies the handle, not the state — all copies
/// observe the same record/complete history. Recording again *re-arms*
/// the event (a new generation); query()/synchronize()/wait target the
/// latest record at the time of the call, matching CUDA semantics.
class Event {
public:
  Event() : St(std::make_shared<detail::EventState>()) {}

  /// True when everything captured by the latest record() has executed.
  /// Never-recorded events are trivially complete.
  bool query() const;

  /// Blocks the calling host thread until query() is true.
  void synchronize() const;

private:
  friend class Stream;
  std::shared_ptr<detail::EventState> St;
};

/// An immutable captured operation sequence (the cudaGraph analogue):
/// the transfers, launches and event edges a stream recorded between
/// beginCapture() and endCapture(), plus the host-buffer slots the
/// capture declared (slot -> byte size). instantiate() yields the
/// executable form.
class Graph {
public:
  Graph() = default;

  /// Number of captured operations (0 for an empty/default graph).
  size_t opCount() const { return D ? D->Nodes.size() : 0; }
  /// Number of declared host-buffer slots.
  size_t slotCount() const { return D ? D->SlotBytes.size() : 0; }

  /// The executable form: shares this graph's immutable nodes and adds a
  /// mutable slot-pointer table (bind). Throws on an empty graph handle.
  GraphExec instantiate() const;

private:
  friend class Stream;
  friend class GraphExec;
  struct Data {
    std::vector<std::function<void(const GraphExec &)>> Nodes;
    std::map<unsigned, size_t> SlotBytes;
    /// Host-variable names the capture declared per slot (may be empty
    /// for handwritten captures); bind/launch diagnostics use them.
    std::map<unsigned, std::string> SlotNames;
  };
  explicit Graph(std::shared_ptr<const Data> D) : D(std::move(D)) {}
  std::shared_ptr<const Data> D;
};

/// An instantiated launch graph: immutable captured nodes plus the
/// per-instance host-buffer bindings. bind() rebinds a slot to fresh
/// host memory (size-checked against the capture), launch() replays the
/// whole sequence as ONE stream operation. The GraphExec must stay alive
/// until the replaying stream synchronizes (generated graph drivers
/// join before returning).
class GraphExec {
public:
  GraphExec() = default;

  /// False for a default-constructed handle (the generated drivers'
  /// capture-on-first-call check).
  bool instantiated() const { return static_cast<bool>(D); }
  size_t opCount() const { return D ? D->Nodes.size() : 0; }

  /// Binds \p Bytes of host memory at \p Ptr to \p Slot. Throws on an
  /// unknown slot or a size differing from the captured declaration —
  /// the same eager validation the rt:: copies perform. \p Name (when
  /// non-null) is the host variable being bound; diagnostics name it
  /// alongside the slot's captured name.
  void bind(unsigned Slot, void *Ptr, size_t Bytes,
            const char *Name = nullptr);

  /// Convenience overload for anything with data()/size() (e.g.
  /// rt::HostBuffer): binds the buffer's storage.
  template <typename BufT>
  void bind(unsigned Slot, BufT &Buffer, const char *Name = nullptr) {
    bind(Slot, const_cast<void *>(static_cast<const void *>(Buffer.data())),
         Buffer.size() * sizeof(*Buffer.data()), Name);
  }

  /// The memory currently bound to \p Slot (replay-time use by captured
  /// transfer nodes; launch() guarantees every slot is bound).
  void *slotPtr(unsigned Slot) const;

  /// Replays the captured sequence on \p S as a single enqueued
  /// operation. Throws when any declared slot is unbound.
  void launch(Stream &S) const;

private:
  friend class Graph;

  /// The captured host-variable name of \p Slot, or \p Fallback when the
  /// capture recorded none (handwritten captures).
  const char *slotNameOr(unsigned Slot, const char *Fallback) const;

  std::shared_ptr<const Graph::Data> D;
  std::map<unsigned, void *> Bound;
};

/// A CUDA-style stream: kernel launches and host<->device copies enqueue
/// asynchronously and execute *in order within the stream* on the
/// device's worker pool; independent streams overlap. synchronize()
/// joins one stream, GpuDevice::deviceSynchronize() joins them all, and
/// the destructor synchronizes, so enqueued closures may safely capture
/// state that outlives the stream object.
///
/// On a single-worker device — including whenever race detection is
/// enabled, which forces one worker — enqueued work runs immediately on
/// the calling thread: execution stays sequential and deterministic, and
/// findRaces() sees exactly the log a synchronous launch produces.
///
/// Capture (beginCapture/endCapture) is a host-thread activity: begin,
/// the captured operations and end must all come from the thread driving
/// the stream, and while capturing, enqueue/record/wait *record* instead
/// of executing — also on single-worker devices, so a captured graph is
/// identical no matter the worker count.
class Stream {
public:
  explicit Stream(GpuDevice &Dev) : Dev(&Dev) {}
  ~Stream() { synchronize(); }
  Stream(const Stream &) = delete;
  Stream &operator=(const Stream &) = delete;

  GpuDevice &device() const { return *Dev; }

  /// Enqueues an arbitrary host-side operation (a copy, a launch wrapped
  /// in a closure, ...). The operation must not throw; anything it
  /// captures must stay alive until the stream is synchronized. Runs
  /// immediately when the device executes sequentially; records a graph
  /// node while capturing.
  void enqueue(std::function<void()> Op);

  /// Enqueues a phase-program launch (the stream-side launchProgram).
  void launch(Dim3 Grid, Dim3 Block, size_t SharedBytes, PhaseProgram Prog);

  /// Records \p E: the event completes once everything enqueued on this
  /// stream so far has executed (cudaEventRecord). Re-recording re-arms
  /// the event with a new generation.
  void record(Event &E);

  /// Orders everything enqueued on this stream *after* this call behind
  /// the latest record() of \p E (cudaStreamWaitEvent) — without
  /// draining the device: the stream parks until the event fires.
  /// Waiting on a never-recorded event is a no-op (CUDA semantics).
  void wait(Event &E);

  /// Non-blocking completion probe: true when every operation enqueued
  /// so far has executed (cudaStreamQuery). Throws the original
  /// DeviceError when the stream is poisoned.
  bool query();

  /// Blocks until every operation enqueued so far has executed. Never
  /// throws (the destructor relies on it); a poisoned stream still
  /// drains the operations accepted before the failure.
  void synchronize();

  // Sticky stream errors ---------------------------------------------

  /// The stream's sticky error: Ok while healthy; after a failure, the
  /// original device error the stream's operation carried (\p MsgOut
  /// gets the original diagnostic). Poisoning is permanent for the
  /// stream's lifetime — GpuDevice::reset() heals the device, not
  /// existing streams.
  ErrorCode error(std::string *MsgOut = nullptr) const;

  /// Internal: marks this stream failed with \p Code / \p Msg (first
  /// error wins). The pump calls it when a device error surfaces while
  /// one of this stream's operations is in flight.
  void poison(ErrorCode Code, const std::string &Msg);

  // Graph capture ----------------------------------------------------

  /// Enters capture mode: subsequent enqueue/record/wait calls record
  /// graph nodes instead of executing. Throws if already capturing.
  void beginCapture();

  /// Ends capture mode and returns the immutable captured graph.
  /// Throws without a matching beginCapture().
  Graph endCapture();

  /// True between beginCapture() and endCapture().
  bool capturing() const { return InCapture; }

  /// Records a replay-aware node (rt:: capture helpers: transfer nodes
  /// that read their host pointer from the GraphExec's slot table at
  /// replay time). Throws outside capture mode.
  void captureNode(std::function<void(const GraphExec &)> Fn);

  /// Declares host-buffer slot \p Slot with \p Bytes bytes. Re-declaring
  /// with the same size is idempotent; a size mismatch throws. \p Name
  /// (when non-empty) records the host variable the slot stands for, so
  /// bind/launch diagnostics can name it.
  void declareCaptureSlot(unsigned Slot, size_t Bytes,
                          const std::string &Name = std::string());

private:
  void pump(); // drains Ops in order; runs on a pool worker

  /// Throws the stream's original DeviceError when poisoned; the
  /// fail-fast guard at the top of every mutating entry point.
  void failFastIfPoisoned(const char *What) const;

  /// Runs \p Op and poisons this stream if a device error surfaced
  /// while it ran (errorSeq attribution).
  void runOpObservingErrors(const std::function<void()> &Op);

  /// One queued stream operation: a closure to run, or — when Fn is
  /// null — an event-wait marker the pump parks on.
  struct OpItem {
    std::function<void()> Fn;
    std::shared_ptr<detail::EventState> WaitSt;
    uint64_t WaitTarget = 0;
  };

  GpuDevice *Dev;
  mutable std::mutex M;
  std::condition_variable CV;
  std::deque<OpItem> Ops;

  // Sticky poison state: the flag is the lock-free fast path; code and
  // message are guarded by M.
  std::atomic<bool> PoisonedFlag{false};
  ErrorCode PoisonCode = ErrorCode::Ok;
  std::string PoisonMsg;
  /// A pump task is active (or parked on an event). Written under M;
  /// atomic so synchronize() can spin on it locklessly before falling
  /// back to the condition variable (completion is still confirmed
  /// under M, which provides the happens-before for the op's effects).
  std::atomic<bool> Running{false};

  // Capture state; touched only by the host thread driving the stream.
  bool InCapture = false;
  std::vector<std::function<void(const GraphExec &)>> CapNodes;
  std::map<unsigned, size_t> CapSlots;
  std::map<unsigned, std::string> CapSlotNames;
};

/// Launches a straight-line phase-structured kernel: each Phase must be
/// callable as phase(BlockCtx&, ThreadCtx&). Within a block, every phase
/// runs over all threads before the next one starts (the __syncthreads()
/// barrier). The phase calls are direct (no type erasure), which keeps
/// handwritten baseline kernels and loop-free generated kernels on the
/// fastest path; kernels with host-side loop structure go through
/// PhaseProgram / launchProgram instead.
template <typename... Phases>
void launchPhases(GpuDevice &Dev, Dim3 Grid, Dim3 Block, size_t SharedBytes,
                  Phases &&...PhaseFns) {
  detail::runBlocks(Dev, Grid, Block, SharedBytes, [&](BlockCtx &B) {
    unsigned PhaseIdx = 0;
    auto RunPhase = [&](auto &&Phase) {
      // Watchdog cancellation point: a phase boundary is the only place
      // a block may stop without tearing a barrier.
      if (B.cancelled()) [[unlikely]]
        return;
      B.CurPhase = PhaseIdx;
      if (B.Counters) [[unlikely]]
        B.Counters->beginPhase(PhaseIdx);
      ThreadCtx T;
      for (T.Z = 0; T.Z != Block.Z; ++T.Z)
        for (T.Y = 0; T.Y != Block.Y; ++T.Y)
          for (T.X = 0; T.X != Block.X; ++T.X) {
            B.CurThread = (T.Z * Block.Y + T.Y) * Block.X + T.X;
            Phase(B, T);
          }
      ++PhaseIdx;
    };
    (RunPhase(PhaseFns), ...);
  });
}

} // namespace descend::sim

#endif // DESCEND_SIM_SIM_H
