//===- hostgen/HostGen.h - Host-program code generation ---------*- C++ -*-===//
//
// Part of the Descend reproduction. Lowers the *host* side of a Descend
// program (Sections 2.3 / 3.4 / 3.5): `cpu.thread` functions that allocate
// heap and device memory, transfer data between cpu.mem and gpu.global and
// launch kernels with an explicit execution configuration. Where the type
// checker proves the transfers and launches correct, this layer turns the
// proven program into a runnable driver:
//
//   sim        C++ against runtime/HostRuntime.h + sim/Sim.h —
//              rt::HostBuffer allocations, rt::allocCopy / rt::copyToHost
//              transfers, and direct calls of the generated simulator
//              kernels in the same header.
//   simStream  the asynchronous overload of the same driver, taking a
//              sim::Stream instead of a device: transfers enqueue through
//              rt::*Async, launches enqueue as stream operations, and a
//              stream synchronize is inserted before any statement that
//              touches host memory (and before returning), so results are
//              bit-identical to the synchronous driver while consecutive
//              device operations pipeline with a single join.
//   simGraph   the graph-mode overload (sim::Stream + sim::GraphExec):
//              the driver's leading run of device operations — transfers
//              touching only host-buffer *parameters* plus launches over
//              the buffers those transfers produced — is captured into a
//              launch graph on the first call and *replayed* as one
//              stream operation on every call, with the parameter buffers
//              rebound per call (GraphExec::bind); any trailing host
//              statements emit in stream form. Programs whose shape
//              doesn't fit (no capturable prefix, or later statements
//              reaching into capture-produced buffers) fall back to the
//              plain stream body — emission is total.
//   cuda       CUDA runtime API host code — std::vector staging,
//              cudaMalloc / cudaMemcpy with statically computed byte
//              counts, real kernel<<<grid, block>>> launches and cudaFree
//              cleanup.
//
// A host function named `main` is emitted under the name `run` (plus the
// invocation's function suffix), which is the entry point tests and
// examples drive; every other host function keeps its own name so host
// functions can call each other.
//
// The emitters are deliberately structural: they only accept the host
// fragment of the language (lets, builtin allocation/transfer calls,
// launches, for-nat loops, scalar arithmetic and host-array assignment)
// and fail with a descriptive error otherwise — device-only constructs
// never reach them in type-checked modules.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_HOSTGEN_HOSTGEN_H
#define DESCEND_HOSTGEN_HOSTGEN_H

#include "ast/Item.h"

#include <string>

namespace descend {
namespace hostgen {

/// Which host substrate to emit for. SimStream emits the asynchronous
/// sim::Stream overload of the sim driver; SimGraph the capture/replay
/// overload (the sim backend emits all three).
enum class HostTarget { Sim, SimStream, SimGraph, Cuda };

/// Result of emitting one host function.
struct HostGenResult {
  bool Ok = false;
  std::string Code;  // one complete C++ function definition
  std::string Error; // set when !Ok
};

/// True when the module contains at least one cpu.thread function with a
/// body (i.e. the program has a host side worth emitting).
bool hasHostFns(const Module &M);

/// The C++ name \p Fn is emitted under: `main` becomes `run`, every other
/// function keeps its name; \p FnSuffix is appended in both cases (the
/// same suffix the kernel emitters use, so launches resolve).
std::string hostFnEmitName(const FnDef &Fn, const std::string &FnSuffix);

/// Emits \p Fn (a cpu.thread function of \p M, which must have passed the
/// type checker) as a host driver for \p Target.
HostGenResult emitHostFn(const Module &M, const FnDef &Fn, HostTarget Target,
                         const std::string &FnSuffix);

} // namespace hostgen
} // namespace descend

#endif // DESCEND_HOSTGEN_HOSTGEN_H
