//===- hostgen/HostGen.cpp - Host-program code generation --------------------===//

#include "hostgen/HostGen.h"

#include "codegen/Lowerer.h" // cppScalarType, floatLiteral, arrayNest, containsPow
#include "support/StringUtils.h"

#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

using namespace descend;
using namespace descend::hostgen;

namespace {

using codegen::arrayNest;
using codegen::containsPow;
using codegen::cppScalarType;
using codegen::floatLiteral;

/// What a host variable is, as far as the emitter cares.
struct HostVar {
  enum Kind { HostBuf, DevBuf, Scalar, LoopVar } K = Scalar;
  ScalarKind Elem = ScalarKind::F64;
  Nat Count;         // HostBuf / DevBuf: element count
  bool IsParam = false;
  bool Shared = false; // HostBuf: bound through a shared reference
};

class Emitter {
public:
  Emitter(const Module &M, const FnDef &Fn, HostTarget T,
          const std::string &FnSuffix)
      : M(M), Fn(Fn), T(T),
        Stream(T == HostTarget::SimStream || T == HostTarget::SimGraph),
        Graph(T == HostTarget::SimGraph), FnSuffix(FnSuffix) {}

  HostGenResult run();

private:
  const Module &M;
  const FnDef &Fn;
  HostTarget T;
  /// Emitting an asynchronous sim::Stream-taking overload: device
  /// operations enqueue, host-touching statements synchronize first.
  /// (The graph overload reuses all of this machinery for its
  /// non-captured tail.)
  bool Stream;
  /// Emitting the graph-mode overload: capture the leading device-op run
  /// on the first call, replay + rebind afterwards.
  bool Graph;
  const std::string &FnSuffix;

  std::ostringstream OS;
  std::string Error;
  unsigned Depth = 1;

  /// Stream mode: operations are enqueued but not yet joined; the next
  /// statement that touches host memory must synchronize first.
  bool PendingAsync = false;

  /// Stream mode: how many host-memory-touch points have been emitted so
  /// far. Loop emission snapshots this to detect bodies that touch host
  /// memory (see emitForNat's back-edge join).
  unsigned HostTouches = 0;

  bool isSim() const { return T != HostTarget::Cuda; }

  /// Stream mode: joins the stream before a host-memory-touching
  /// statement (no-op otherwise). Every join is followed by a
  /// rt::checkDevice so a sticky device error surfaces as a structured
  /// rt::Error at the join instead of the driver returning half-done.
  void syncIfPending() {
    if (!Stream)
      return;
    ++HostTouches;
    if (!PendingAsync)
      return;
    indent();
    OS << "_stream.synchronize();\n";
    indent();
    OS << "descend::rt::checkDevice(_dev, \"stream synchronize\");\n";
    PendingAsync = false;
  }

  std::vector<std::map<std::string, HostVar>> Scopes;
  /// Device buffers allocated at function scope, in allocation order
  /// (cuda: released with cudaFree before returning).
  std::vector<std::string> DeviceBufs;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  void indent() {
    for (unsigned I = 0; I != Depth; ++I)
      OS << "  ";
  }

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  void bind(const std::string &Name, HostVar V) {
    Scopes.back()[Name] = std::move(V);
  }

  const HostVar *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It)
      if (auto Found = It->find(Name); Found != It->end())
        return &Found->second;
    return nullptr;
  }

  /// Spelling of a Nat as C++ (sizes are simplified first; unfolded pow
  /// has no C++ spelling and is rejected).
  std::optional<std::string> natCpp(const Nat &N) {
    Nat S = N.simplified();
    if (containsPow(S)) {
      fail("size expression `" + S.str() + "` contains an unfolded power");
      return std::nullopt;
    }
    return S.str();
  }

  /// The C++ expression denoting the raw host storage of \p Name for a
  /// cudaMemcpy argument (locals are std::vectors, parameters raw
  /// pointers).
  std::string hostRaw(const std::string &Name, const HostVar &V) const {
    return V.IsParam ? Name : Name + ".data()";
  }

  std::optional<std::string> exprCpp(const Expr &E);
  std::optional<std::string> placeCpp(const PlaceExpr &P);
  std::string argVar(const Expr &E);

  bool emitSignature();
  bool emitBlock(const BlockExpr &Blk);
  bool emitStmt(const Expr &E);
  bool emitLet(const LetExpr &L);
  bool emitAllocCall(const CallExpr &C, const std::string &Let);
  bool emitCall(const CallExpr &C);
  bool emitLaunch(const CallExpr &C);
  bool emitForNat(const ForNatExpr &F);

  // Graph mode ---------------------------------------------------------

  /// Host-buffer slot of host variable \p Name, assigned in first-use
  /// order during capture emission (also the bind emission order).
  unsigned graphSlot(const std::string &Name) {
    auto It = GraphSlots.find(Name);
    if (It != GraphSlots.end())
      return It->second;
    unsigned Slot = static_cast<unsigned>(GraphSlots.size());
    GraphSlots[Name] = Slot;
    SlotBinds.emplace_back(Slot, Name);
    return Slot;
  }

  bool captureStmtOk(const Expr &E, std::set<std::string> &Locals);
  size_t scanCapturePrefix(const BlockExpr &Blk);
  bool emitCaptureStmt(const Expr &E);
  bool emitGraphBody(const BlockExpr &Blk, size_t Prefix);

  std::map<std::string, unsigned> GraphSlots;
  std::vector<std::pair<unsigned, std::string>> SlotBinds;
};

/// True when \p E (or anything nested in it) names one of \p Names.
/// Conservative: used to reject graph capture when post-capture host code
/// reaches into a capture-produced device buffer.
bool mentionsAny(const Expr &E, const std::set<std::string> &Names) {
  if (const auto *V = dyn_cast<PlaceVar>(&E))
    if (Names.count(V->Name))
      return true;
  bool Found = false;
  forEachChild(const_cast<Expr &>(E), [&](Expr &C) {
    if (!Found && mentionsAny(C, Names))
      Found = true;
  });
  return Found;
}

/// Root variable name of a borrow / place argument; empty for anything
/// else (the callers report the error with context).
std::string Emitter::argVar(const Expr &E) {
  const Expr *Inner = &E;
  if (const auto *B = dyn_cast<BorrowExpr>(Inner))
    Inner = B->Place.get();
  if (const auto *P = dyn_cast<PlaceExpr>(Inner))
    return P->rootVar();
  return "";
}

std::optional<std::string> Emitter::placeCpp(const PlaceExpr &P) {
  // Flatten root-to-leaf.
  std::vector<const PlaceExpr *> Chain;
  for (const PlaceExpr *Cur = &P; Cur; Cur = basePlace(Cur))
    Chain.push_back(Cur);
  std::reverse(Chain.begin(), Chain.end());

  std::string S;
  for (const PlaceExpr *Step : Chain) {
    switch (Step->kind()) {
    case ExprKind::PlaceVar: {
      const auto *V = cast<PlaceVar>(Step);
      if (!lookup(V->Name)) {
        fail("unknown host variable `" + V->Name + "`");
        return std::nullopt;
      }
      S = V->Name;
      break;
    }
    case ExprKind::PlaceDeref:
      // Buffers index directly in both targets (HostBuffer::operator[],
      // raw pointers, std::vector); the deref is implicit.
      break;
    case ExprKind::PlaceIndex: {
      const auto *Idx = cast<PlaceIndex>(Step);
      auto I = exprCpp(*Idx->Index);
      if (!I)
        return std::nullopt;
      S += "[" + *I + "]";
      break;
    }
    default:
      fail("place `" + P.str() + "` is not addressable in host code");
      return std::nullopt;
    }
  }
  return S;
}

std::optional<std::string> Emitter::exprCpp(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Literal: {
    const auto *L = cast<LiteralExpr>(&E);
    switch (L->Scalar) {
    case ScalarKind::F32:
    case ScalarKind::F64:
      return floatLiteral(L->FloatValue, L->Scalar);
    case ScalarKind::Bool:
      return std::string(L->BoolValue ? "true" : "false");
    default:
      return std::to_string(L->IntValue);
    }
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    auto L = exprCpp(*B->Lhs);
    auto R = exprCpp(*B->Rhs);
    if (!L || !R)
      return std::nullopt;
    return "(" + *L + " " + binOpSpelling(B->Op) + " " + *R + ")";
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    auto S = exprCpp(*U->Sub);
    if (!S)
      return std::nullopt;
    return std::string(U->Op == UnOpKind::Neg ? "-" : "!") + *S;
  }
  case ExprKind::PlaceVar:
  case ExprKind::PlaceDeref:
  case ExprKind::PlaceIndex:
    return placeCpp(*cast<PlaceExpr>(&E));
  default:
    fail("unsupported host expression: " + exprToString(E));
    return std::nullopt;
  }
}

bool Emitter::emitSignature() {
  if (Fn.RetTy && !DataType::equal(Fn.RetTy, makeUnit()))
    return fail("host functions must return (), `" + Fn.Name + "` returns `" +
                Fn.RetTy->str() + "`");

  OS << "/// " << Fn.signature() << "\n";
  OS << (isSim() ? "inline void " : "void ")
     << hostFnEmitName(Fn, FnSuffix) << "(";
  bool First = true;
  auto Sep = [&]() {
    if (!First)
      OS << ",\n    ";
    else if (isSim())
      OS << ",\n    "; // after the device/stream argument
    First = false;
  };
  if (Stream) {
    OS << "descend::sim::Stream &_stream";
    if (Graph)
      OS << ",\n    descend::sim::GraphExec &_graph";
  } else if (isSim()) {
    OS << "descend::sim::GpuDevice &_dev";
  }

  for (const FnParam &P : Fn.Params) {
    HostVar V;
    V.IsParam = true;
    if (const auto *Ref = dyn_cast<RefType>(P.Ty.get())) {
      std::vector<Nat> Dims;
      ScalarKind Elem = ScalarKind::F64;
      if (!arrayNest(Ref->Pointee, Dims, Elem))
        return fail("unsupported host parameter type `" + P.Ty->str() + "`");
      Nat Count = Nat::lit(1);
      for (const Nat &D : Dims)
        Count = Count * D;
      V.Elem = Elem;
      V.Count = Count.simplified();
      V.Shared = Ref->Own == Ownership::Shrd;
      if (Ref->Mem.Kind == MemoryKind::CpuMem) {
        V.K = HostVar::HostBuf;
        Sep();
        if (isSim())
          OS << (V.Shared ? "const descend::rt::HostBuffer<"
                          : "descend::rt::HostBuffer<")
             << cppScalarType(Elem) << "> &" << P.Name;
        else
          OS << (V.Shared ? "const " : "") << cppScalarType(Elem) << " *"
             << P.Name;
      } else if (Ref->Mem.Kind == MemoryKind::GpuGlobal) {
        V.K = HostVar::DevBuf;
        Sep();
        if (isSim())
          OS << "descend::sim::GpuDevice::Buffer<" << cppScalarType(Elem)
             << "> " << P.Name;
        else
          OS << (V.Shared ? "const " : "") << cppScalarType(Elem) << " *"
             << P.Name;
      } else {
        return fail("unsupported host parameter memory `" +
                    Ref->Mem.str() + "`");
      }
    } else if (const auto *S = dyn_cast<ScalarType>(P.Ty.get())) {
      V.K = HostVar::Scalar;
      V.Elem = S->Scalar;
      Sep();
      OS << cppScalarType(S->Scalar) << " " << P.Name;
    } else {
      return fail("unsupported host parameter type `" + P.Ty->str() + "`");
    }
    bind(P.Name, std::move(V));
  }
  OS << ") {\n";
  if (Stream) {
    // Enqueued launches capture the device by reference; the frame stays
    // alive because stream drivers synchronize before returning.
    indent();
    OS << "descend::sim::GpuDevice &_dev = _stream.device();\n";
    indent();
    OS << "(void)_dev;\n";
  }
  return true;
}

bool Emitter::emitBlock(const BlockExpr &Blk) {
  for (const ExprPtr &S : Blk.Stmts)
    if (!emitStmt(*S))
      return false;
  return true;
}

bool Emitter::emitStmt(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Let:
    return emitLet(*cast<LetExpr>(&E));
  case ExprKind::Call:
    return emitCall(*cast<CallExpr>(&E));
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(&E);
    syncIfPending(); // assignment may read/write host buffers
    auto L = placeCpp(*A->Lhs);
    auto R = exprCpp(*A->Rhs);
    if (!L || !R)
      return false;
    indent();
    OS << *L << " = " << *R << ";\n";
    return true;
  }
  case ExprKind::ForNat:
    syncIfPending(); // the loop body may read host buffers
    return emitForNat(*cast<ForNatExpr>(&E));
  case ExprKind::Block: {
    indent();
    OS << "{\n";
    ++Depth;
    pushScope();
    bool Ok = emitBlock(*cast<BlockExpr>(&E));
    popScope();
    --Depth;
    indent();
    OS << "}\n";
    return Ok;
  }
  default:
    return fail("unsupported host statement: " + exprToString(E));
  }
}

bool Emitter::emitForNat(const ForNatExpr &F) {
  auto Lo = natCpp(F.Lo);
  auto Hi = natCpp(F.Hi);
  if (!Lo || !Hi)
    return false;
  indent();
  OS << "for (long long " << F.Var << " = " << *Lo << "; " << F.Var << " != "
     << *Hi << "; ++" << F.Var << ") {\n";
  ++Depth;
  pushScope();
  HostVar V;
  V.K = HostVar::LoopVar;
  V.Elem = ScalarKind::I64;
  bind(F.Var, std::move(V));
  const unsigned TouchesBefore = HostTouches;
  bool Ok = F.Body->kind() == ExprKind::Block
                ? emitBlock(*cast<BlockExpr>(F.Body.get()))
                : emitStmt(*F.Body);
  // Stream mode back edge: a body that both touches host memory and
  // leaves operations pending would race with its own next iteration
  // (the per-statement sync points were emitted against the *first*
  // iteration's pending state). Join at the end of each iteration. A
  // body with no host-touch points safely carries its pending
  // operations across the back edge — the stream keeps them in order.
  if (Ok && Stream && PendingAsync && HostTouches != TouchesBefore) {
    indent();
    OS << "_stream.synchronize();\n";
    indent();
    OS << "descend::rt::checkDevice(_dev, \"stream synchronize\");\n";
    PendingAsync = false;
  }
  popScope();
  --Depth;
  indent();
  OS << "}\n";
  return Ok;
}

bool Emitter::emitLet(const LetExpr &L) {
  if (const auto *C = dyn_cast<CallExpr>(L.Init.get()))
    if (C->Callee == "CpuHeap::new" || C->Callee == "GpuGlobal::alloc_copy")
      return emitAllocCall(*C, L.Name);
  if (const auto *A = dyn_cast<AllocExpr>(L.Init.get())) {
    // alloc::<cpu.mem, [T; n]>() — zero-initialized host heap array.
    std::vector<Nat> Dims;
    ScalarKind Elem = ScalarKind::F64;
    if (A->Mem.Kind != MemoryKind::CpuMem ||
        !arrayNest(A->AllocTy, Dims, Elem))
      return fail("unsupported host allocation: " + exprToString(*L.Init));
    Nat Count = Nat::lit(1);
    for (const Nat &D : Dims)
      Count = Count * D;
    auto N = natCpp(Count);
    if (!N)
      return false;
    indent();
    if (isSim())
      OS << "descend::rt::HostBuffer<" << cppScalarType(Elem) << "> "
         << L.Name << "(" << *N << ", " << cppScalarType(Elem) << "{});\n";
    else
      OS << "std::vector<" << cppScalarType(Elem) << "> " << L.Name << "("
         << *N << ", " << cppScalarType(Elem) << "{});\n";
    HostVar V;
    V.K = HostVar::HostBuf;
    V.Elem = Elem;
    V.Count = Count.simplified();
    bind(L.Name, std::move(V));
    return true;
  }
  // Scalar let.
  syncIfPending(); // the initializer may read host buffers
  auto Init = exprCpp(*L.Init);
  if (!Init)
    return false;
  ScalarKind Elem = ScalarKind::F64;
  if (const auto *S = dyn_cast_if_present<ScalarType>(
          (L.Annotation ? L.Annotation : L.Init->Ty).get()))
    Elem = S->Scalar;
  else if (const auto *Lit = dyn_cast<LiteralExpr>(L.Init.get()))
    Elem = Lit->Scalar;
  indent();
  OS << cppScalarType(Elem) << " " << L.Name << " = " << *Init << ";\n";
  HostVar V;
  V.K = HostVar::Scalar;
  V.Elem = Elem;
  bind(L.Name, std::move(V));
  return true;
}

bool Emitter::emitAllocCall(const CallExpr &C, const std::string &Let) {
  if (C.Callee == "CpuHeap::new") {
    const auto *Init = dyn_cast<ArrayInitExpr>(C.Args.empty()
                                                   ? nullptr
                                                   : C.Args[0].get());
    if (!Init)
      return fail("CpuHeap::new expects an array initializer `[v; n]`");
    ScalarKind Elem = ScalarKind::F64;
    if (const auto *S =
            dyn_cast_if_present<ScalarType>(Init->Elem->Ty.get()))
      Elem = S->Scalar;
    else if (const auto *Lit = dyn_cast<LiteralExpr>(Init->Elem.get()))
      Elem = Lit->Scalar;
    auto Fill = exprCpp(*Init->Elem);
    auto N = natCpp(Init->Count);
    if (!Fill || !N)
      return false;
    indent();
    if (isSim())
      OS << "descend::rt::HostBuffer<" << cppScalarType(Elem) << "> " << Let
         << "(" << *N << ", " << *Fill << ");\n";
    else
      OS << "std::vector<" << cppScalarType(Elem) << "> " << Let << "(" << *N
         << ", " << *Fill << ");\n";
    HostVar V;
    V.K = HostVar::HostBuf;
    V.Elem = Elem;
    V.Count = Init->Count.simplified();
    bind(Let, std::move(V));
    return true;
  }

  // GpuGlobal::alloc_copy(&host_buf).
  std::string Src = argVar(*C.Args[0]);
  const HostVar *SrcVar = Src.empty() ? nullptr : lookup(Src);
  if (!SrcVar || SrcVar->K != HostVar::HostBuf)
    return fail("GpuGlobal::alloc_copy expects a reference to a host "
                "buffer variable");
  const char *CT = cppScalarType(SrcVar->Elem);
  indent();
  if (isSim()) {
    if (Stream) {
      OS << "auto " << Let << " = descend::rt::allocCopyAsync(_stream, "
         << Src << ");\n";
      PendingAsync = true;
    } else {
      OS << "auto " << Let << " = descend::rt::allocCopy(_dev, " << Src
         << ");\n";
    }
  } else {
    auto N = natCpp(SrcVar->Count);
    if (!N)
      return false;
    if (Scopes.size() > 1)
      return fail("device allocations must happen at host-function scope "
                  "(needed for cudaFree cleanup)");
    OS << CT << " *" << Let << " = nullptr;\n";
    indent();
    OS << "cudaMalloc(&" << Let << ", sizeof(" << CT << ") * (" << *N
       << "));\n";
    indent();
    OS << "cudaMemcpy(" << Let << ", " << hostRaw(Src, *SrcVar) << ", sizeof("
       << CT << ") * (" << *N << "), cudaMemcpyHostToDevice);\n";
    DeviceBufs.push_back(Let);
  }
  HostVar V;
  V.K = HostVar::DevBuf;
  V.Elem = SrcVar->Elem;
  V.Count = SrcVar->Count;
  bind(Let, std::move(V));
  return true;
}

bool Emitter::emitCall(const CallExpr &C) {
  if (C.IsLaunch)
    return emitLaunch(C);

  if (C.Callee == "copy_mem_to_host" || C.Callee == "copy_to_gpu") {
    bool ToHost = C.Callee == "copy_mem_to_host";
    std::string Dst = argVar(*C.Args[0]);
    std::string Src = argVar(*C.Args[1]);
    const HostVar *DstVar = Dst.empty() ? nullptr : lookup(Dst);
    const HostVar *SrcVar = Src.empty() ? nullptr : lookup(Src);
    if (!DstVar || !SrcVar)
      return fail("`" + C.Callee + "` expects buffer variable references");
    indent();
    if (isSim()) {
      // Pass the host-program variable names through so a size-mismatch
      // rt::Error names the offending buffers, not just the counts.
      if (Stream) {
        OS << (ToHost ? "descend::rt::copyToHostAsync(_stream, "
                      : "descend::rt::copyToGpuAsync(_stream, ")
           << Dst << ", " << Src << ", \"" << Dst << "\", \"" << Src
           << "\");\n";
        PendingAsync = true;
      } else {
        OS << (ToHost ? "descend::rt::copyToHost("
                      : "descend::rt::copyToGpu(")
           << Dst << ", " << Src << ", \"" << Dst << "\", \"" << Src
           << "\");\n";
      }
      return true;
    }
    const HostVar &HostSide = ToHost ? *DstVar : *SrcVar;
    const char *CT = cppScalarType(HostSide.Elem);
    auto N = natCpp(HostSide.Count);
    if (!N)
      return false;
    if (ToHost)
      OS << "cudaMemcpy(" << hostRaw(Dst, *DstVar) << ", " << Src
         << ", sizeof(" << CT << ") * (" << *N
         << "), cudaMemcpyDeviceToHost);\n";
    else
      OS << "cudaMemcpy(" << Dst << ", " << hostRaw(Src, *SrcVar)
         << ", sizeof(" << CT << ") * (" << *N
         << "), cudaMemcpyHostToDevice);\n";
    return true;
  }

  // Plain call of another host function. Stream mode threads the stream
  // through, joining the caller's pending operations first (the callee
  // may touch host memory in its first statement without a sync of its
  // own); a callee with pending operations joins them before returning,
  // so the caller resumes with a quiet stream either way.
  if (const FnDef *Callee = M.findFn(C.Callee); Callee && Callee->isCpuFn()) {
    syncIfPending();
    std::vector<std::string> Args;
    for (const ExprPtr &A : C.Args) {
      std::string Name = argVar(*A);
      if (!Name.empty()) {
        const HostVar *V = lookup(Name);
        if (!V)
          return fail("unknown host variable `" + Name + "`");
        // Cuda locals are std::vectors but host parameters are raw
        // pointers; decay at the call boundary.
        Args.push_back(T == HostTarget::Cuda && V->K == HostVar::HostBuf
                           ? hostRaw(Name, *V)
                           : Name);
        continue;
      }
      auto S = exprCpp(*A);
      if (!S)
        return false;
      Args.push_back(*S);
    }
    indent();
    OS << hostFnEmitName(*Callee, FnSuffix) << "(";
    if (isSim())
      OS << (Stream ? "_stream" : "_dev") << (Args.empty() ? "" : ", ");
    for (size_t I = 0; I != Args.size(); ++I)
      OS << (I ? ", " : "") << Args[I];
    OS << ");\n";
    PendingAsync = false;
    return true;
  }
  return fail("unsupported host call: " + C.Callee);
}

bool Emitter::emitLaunch(const CallExpr &C) {
  std::vector<std::string> Args;
  for (const ExprPtr &A : C.Args) {
    std::string Name = argVar(*A);
    if (Name.empty() || !lookup(Name))
      return fail("kernel launch arguments must be buffer variable "
                  "references");
    Args.push_back(Name);
  }
  indent();
  if (isSim()) {
    // The generated simulator kernel lives in the same emitted namespace;
    // its signature already encodes the (statically checked) launch
    // configuration. Stream mode enqueues the same call as a stream
    // operation (buffer handles captured by value, the device by
    // reference — the frame outlives the operation because stream
    // drivers synchronize before returning).
    if (Stream) {
      OS << "_stream.enqueue([=, &_dev] { " << C.Callee << FnSuffix
         << "(_dev";
      for (const std::string &A : Args)
        OS << ", " << A;
      OS << "); });\n";
      PendingAsync = true;
      return true;
    }
    OS << C.Callee << FnSuffix << "(_dev";
    for (const std::string &A : Args)
      OS << ", " << A;
    OS << ");\n";
    // Synchronous launches complete before returning; surface a sticky
    // device error (trap, timeout) here as a structured rt::Error
    // instead of silently running the rest of the driver on a poisoned
    // device.
    indent();
    OS << "descend::rt::checkDevice(_dev, \"launch " << C.Callee << "\");\n";
    return true;
  }
  auto DimOf = [&](const Dim &D) -> std::optional<std::string> {
    // Each extent lands in its own axis slot (a Y-only grid is
    // dim3(1, n, 1)); absent axes default to 1.
    std::string Parts[3] = {"1", "1", "1"};
    for (Axis A : {Axis::X, Axis::Y, Axis::Z}) {
      if (!D.hasAxis(A))
        continue;
      auto S = natCpp(D.extent(A));
      if (!S)
        return std::nullopt;
      Parts[static_cast<unsigned>(A)] = *S;
    }
    return "dim3(" + Parts[0] + ", " + Parts[1] + ", " + Parts[2] + ")";
  };
  auto Grid = DimOf(C.LaunchGrid);
  auto Block = DimOf(C.LaunchBlock);
  if (!Grid || !Block)
    return false;
  OS << C.Callee << FnSuffix << "<<<" << *Grid << ", " << *Block << ">>>(";
  for (size_t I = 0; I != Args.size(); ++I)
    OS << (I ? ", " : "") << Args[I];
  OS << ");\n";
  indent();
  OS << "cudaDeviceSynchronize();\n";
  return true;
}

//===----------------------------------------------------------------------===//
// Graph mode: capture-prefix analysis and emission
//===----------------------------------------------------------------------===//

/// Is \p E a top-level statement the graph overload can capture? The
/// capturable shapes are exactly the device-op run a serving loop repeats
/// per request:
///   * `let d = GpuGlobal::alloc_copy(&h)` with `h` a host-buffer
///     *parameter* (the rebindable per-request data); `d` becomes a
///     capture-local,
///   * `copy_mem_to_host` / `copy_to_gpu` between a host-buffer parameter
///     and a capture-local device buffer,
///   * launches whose arguments are all capture-locals (a device-buffer
///     parameter would replay the first call's buffer forever).
bool Emitter::captureStmtOk(const Expr &E, std::set<std::string> &Locals) {
  if (const auto *L = dyn_cast<LetExpr>(&E)) {
    const auto *C = dyn_cast<CallExpr>(L->Init.get());
    if (!C || C->Callee != "GpuGlobal::alloc_copy" || C->Args.size() != 1)
      return false;
    std::string Src = argVar(*C->Args[0]);
    const HostVar *V = Src.empty() ? nullptr : lookup(Src);
    if (!V || V->K != HostVar::HostBuf || !V->IsParam)
      return false;
    Locals.insert(L->Name);
    return true;
  }
  const auto *C = dyn_cast<CallExpr>(&E);
  if (!C)
    return false;
  if (C->IsLaunch) {
    if (C->Args.empty())
      return false;
    for (const ExprPtr &A : C->Args) {
      std::string Name = argVar(*A);
      if (Name.empty() || !Locals.count(Name))
        return false;
    }
    return true;
  }
  if (C->Callee == "copy_mem_to_host" || C->Callee == "copy_to_gpu") {
    if (C->Args.size() != 2)
      return false;
    const bool ToHost = C->Callee == "copy_mem_to_host";
    std::string Dst = argVar(*C->Args[0]);
    std::string Src = argVar(*C->Args[1]);
    const std::string &Host = ToHost ? Dst : Src;
    const std::string &Device = ToHost ? Src : Dst;
    const HostVar *HV = Host.empty() ? nullptr : lookup(Host);
    return HV && HV->K == HostVar::HostBuf && HV->IsParam &&
           Locals.count(Device) != 0;
  }
  return false;
}

/// Length of the maximal capturable leading run of \p Blk's top-level
/// statements, or 0 when the program can't use capture at all (including
/// when a post-prefix statement reaches into a capture-local: those live
/// inside the first-call capture block and replay frozen, so any later
/// mention would change meaning — fall back entirely).
size_t Emitter::scanCapturePrefix(const BlockExpr &Blk) {
  std::set<std::string> Locals;
  size_t Prefix = 0;
  while (Prefix != Blk.Stmts.size() &&
         captureStmtOk(*Blk.Stmts[Prefix], Locals))
    ++Prefix;
  if (Prefix == 0)
    return 0;
  for (size_t I = Prefix; I != Blk.Stmts.size(); ++I)
    if (mentionsAny(*Blk.Stmts[I], Locals))
      return 0;
  return Prefix;
}

/// Emits one capturable prefix statement in capture form: transfers go
/// through the rt::*Capture helpers (slot-based, rebindable at replay);
/// launches emit exactly the stream-mode enqueue — enqueue-during-capture
/// records the closure as a graph node.
bool Emitter::emitCaptureStmt(const Expr &E) {
  if (const auto *L = dyn_cast<LetExpr>(&E)) {
    const auto *C = cast<CallExpr>(L->Init.get());
    std::string Src = argVar(*C->Args[0]);
    const HostVar *SrcVar = lookup(Src);
    indent();
    OS << "auto " << L->Name << " = descend::rt::allocCopyCapture<"
       << cppScalarType(SrcVar->Elem) << ">(_stream, " << graphSlot(Src)
       << ", " << Src << ".size(), \"" << Src << "\");\n";
    HostVar V;
    V.K = HostVar::DevBuf;
    V.Elem = SrcVar->Elem;
    V.Count = SrcVar->Count;
    bind(L->Name, std::move(V));
    return true;
  }
  const auto *C = cast<CallExpr>(&E);
  if (C->IsLaunch)
    return emitLaunch(*C);
  const bool ToHost = C->Callee == "copy_mem_to_host";
  std::string Dst = argVar(*C->Args[0]);
  std::string Src = argVar(*C->Args[1]);
  indent();
  if (ToHost)
    OS << "descend::rt::copyToHostCapture(_stream, " << graphSlot(Dst)
       << ", " << Src << ", \"" << Dst << "\");\n";
  else
    OS << "descend::rt::copyToGpuCapture(_stream, " << graphSlot(Src)
       << ", " << Dst << ", \"" << Src << "\");\n";
  return true;
}

/// The graph overload's body: capture the prefix once (first call),
/// rebind the host-buffer slots to this call's parameters, replay the
/// whole prefix as one stream operation, then emit the non-captured tail
/// in plain stream form.
bool Emitter::emitGraphBody(const BlockExpr &Blk, size_t Prefix) {
  indent();
  OS << "if (!_graph.instantiated()) {\n";
  ++Depth;
  indent();
  OS << "_stream.beginCapture();\n";
  for (size_t I = 0; I != Prefix; ++I)
    if (!emitCaptureStmt(*Blk.Stmts[I]))
      return false;
  indent();
  OS << "_graph = _stream.endCapture().instantiate();\n";
  --Depth;
  indent();
  OS << "}\n";
  PendingAsync = false; // capture records; nothing actually enqueued
  for (const auto &SB : SlotBinds) {
    indent();
    OS << "_graph.bind(" << SB.first << ", " << SB.second << ", \""
       << SB.second << "\");\n";
  }
  indent();
  OS << "_graph.launch(_stream);\n";
  PendingAsync = true; // the replay is one pending stream operation
  for (size_t I = Prefix; I != Blk.Stmts.size(); ++I)
    if (!emitStmt(*Blk.Stmts[I]))
      return false;
  return true;
}

HostGenResult Emitter::run() {
  HostGenResult R;
  pushScope();
  bool Ok = emitSignature();
  if (Ok && Fn.Body) {
    const auto &Blk = *cast<BlockExpr>(Fn.Body.get());
    const size_t Prefix = Graph ? scanCapturePrefix(Blk) : 0;
    if (Graph && Prefix == 0) {
      // Shape doesn't fit capture: the graph overload degrades to the
      // plain stream body (emission is total, never a compile failure).
      indent();
      OS << "(void)_graph;\n";
    }
    Ok = Prefix > 0 ? emitGraphBody(Blk, Prefix) : emitBlock(Blk);
  }
  if (Ok && T == HostTarget::Cuda)
    for (const std::string &Buf : DeviceBufs) {
      indent();
      OS << "cudaFree(" << Buf << ");\n";
    }
  // Stream drivers join before returning: enqueued operations may borrow
  // this frame's locals, and the caller observes the same state as after
  // the synchronous driver.
  if (Ok)
    syncIfPending();
  OS << "}\n";
  popScope();
  if (!Ok) {
    R.Error = Error.empty() ? "host emission failed" : Error;
    return R;
  }
  R.Ok = true;
  R.Code = OS.str();
  return R;
}

} // namespace

bool hostgen::hasHostFns(const Module &M) {
  for (const auto &Fn : M.Fns)
    if (Fn->isCpuFn() && Fn->Body)
      return true;
  return false;
}

std::string hostgen::hostFnEmitName(const FnDef &Fn,
                                    const std::string &FnSuffix) {
  return (Fn.Name == "main" ? "run" : Fn.Name) + FnSuffix;
}

HostGenResult hostgen::emitHostFn(const Module &M, const FnDef &Fn,
                                  HostTarget Target,
                                  const std::string &FnSuffix) {
  if (!Fn.isCpuFn()) {
    HostGenResult R;
    R.Error = "`" + Fn.Name + "` is not a cpu.thread function";
    return R;
  }
  return Emitter(M, Fn, Target, FnSuffix).run();
}
