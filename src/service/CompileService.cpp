//===- service/CompileService.cpp - Long-lived compile service --------------===//

#include "service/CompileService.h"

#include "driver/Pipeline.h"
#include "obs/Trace.h"
#include "sim/Fault.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <optional>

using namespace descend;
using namespace descend::service;

double LatencyHistogram::bucketUpperMs(size_t I) {
  if (I + 1 >= NumBuckets)
    return std::numeric_limits<double>::infinity();
  return 0.25 * static_cast<double>(1ull << I);
}

void LatencyHistogram::record(double Ms) {
  size_t I = 0;
  while (I + 1 < NumBuckets && Ms >= bucketUpperMs(I))
    ++I;
  ++Counts[I];
  ++Total;
  SumMs += Ms;
  if (Ms > MaxMs)
    MaxMs = Ms;
}

double LatencyHistogram::quantileUpperMs(double Q) const {
  if (Total == 0)
    return 0.0;
  // Nearest-rank: the smallest value with at least ceil(Q * Total)
  // observations at or below it.
  uint64_t Rank = static_cast<uint64_t>(std::ceil(Q * Total));
  if (Rank < 1)
    Rank = 1;
  if (Rank > Total)
    Rank = Total;
  uint64_t Seen = 0;
  for (size_t I = 0; I < NumBuckets; ++I) {
    Seen += Counts[I];
    if (Seen >= Rank)
      return I + 1 < NumBuckets ? bucketUpperMs(I) : MaxMs;
  }
  return MaxMs;
}

CompileService::CompileService(size_t Capacity)
    : Capacity(Capacity ? Capacity : 1) {}

std::string CompileService::makeKey(const CompileRequest &Req) {
  // Collision-proof: the full source text is part of the key (the LRU
  // bounds memory, so there is no need to risk a hash collision serving
  // the wrong artifact). std::map keeps the defines sorted.
  std::string Key = Req.Backend;
  Key += '\x1f';
  Key += Req.FnSuffix;
  Key += '\x1f';
  for (const auto &[Name, Value] : Req.Defines) {
    Key += Name;
    Key += '=';
    Key += std::to_string(Value);
    Key += ';';
  }
  Key += '\x1f';
  Key += Req.Passes.cacheKey();
  Key += '\x1f';
  Key += Req.Source;
  return Key;
}

CompileReply CompileService::doCompile(const CompileRequest &Req) {
  CompileReply Rep;
  // Deterministic fault seam (DESCEND_FAULTS compile:fail=N): the N-th
  // cold compile fails transiently, exactly once — what descendd's
  // retry-with-backoff is tested against. Ahead of the real work so the
  // failure is cheap and the ordinal deterministic.
  if (sim::FaultInjector::global().armed() &&
      sim::FaultInjector::global().shouldFailCompile()) {
    Rep.Transient = true;
    Rep.Diagnostics = "transient compile failure (fault injection, "
                      "compile:fail)";
    return Rep;
  }
  try {
    CompilerInvocation Inv;
    Inv.BufferName = Req.BufferName;
    Inv.Defines = Req.Defines;
    Inv.BackendName = Req.Backend;
    Inv.FnSuffix = Req.FnSuffix;
    Inv.Passes = Req.Passes;
    // The vm backend's executable artifact comes from vm::compile — run
    // the pipeline to typecheck and compile once, instead of letting
    // emit() compile for the listing and then compiling again.
    bool IsVm = Req.Backend == "vm";
    Inv.RunUntil = IsVm ? Stage::Typecheck : Stage::Codegen;

    Session S(Inv);
    CompileResult R = S.run(Req.Source);
    if (!R.Ok) {
      Rep.Diagnostics = S.renderDiagnostics();
      if (Rep.Diagnostics.empty())
        Rep.Diagnostics = "compilation failed (no diagnostics rendered)";
      return Rep;
    }
    if (IsVm) {
      vm::CompileVmResult C = vm::compile(*S.module(), Req.Passes);
      if (!C.Ok) {
        Rep.Diagnostics = "vm: " + C.Error;
        return Rep;
      }
      Rep.Program = C.Program;
      Rep.Artifact = vm::disassemble(*C.Program);
    } else {
      Rep.Artifact = R.Artifact;
    }
    Rep.Ok = true;
  } catch (const std::exception &E) {
    Rep.Ok = false;
    Rep.Program.reset();
    Rep.Diagnostics =
        std::string("internal error while serving compile request: ") +
        E.what();
  } catch (...) {
    Rep.Ok = false;
    Rep.Program.reset();
    Rep.Diagnostics = "internal error while serving compile request";
  }
  return Rep;
}

CompileReply CompileService::compile(const CompileRequest &Req) {
  auto T0 = std::chrono::steady_clock::now();
  auto Elapsed = [&T0] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - T0)
        .count();
  };

  // Stamps the reply's latency into the histogram and emits one trace
  // span per request, named after how it was served.
  auto Finish = [&](CompileReply Rep, const char *How) {
    Rep.CompileMs = Elapsed();
    {
      std::lock_guard<std::mutex> G(M);
      Latency.record(Rep.CompileMs);
    }
    if (obs::TraceCollector::global().enabled()) [[unlikely]]
      obs::TraceCollector::global().addComplete(
          "compile", How, T0, std::chrono::steady_clock::now(),
          "{\"backend\":\"" + Req.Backend + "\"}");
    return Rep;
  };

  const std::string Key = makeKey(Req);
  std::shared_future<CompileReply> Wait;
  std::promise<CompileReply> Mine;
  bool Owner = false;
  std::optional<CompileReply> HitRep;

  {
    std::lock_guard<std::mutex> G(M);
    if (auto It = Cache.find(Key); It != Cache.end()) {
      Lru.splice(Lru.begin(), Lru, It->second); // refresh recency
      ++Stats.Hits;
      HitRep = It->second->second;
      HitRep->CacheHit = true;
    } else if (auto IfIt = InFlight.find(Key); IfIt != InFlight.end()) {
      ++Stats.Coalesced;
      Wait = IfIt->second;
    } else {
      Owner = true;
      InFlight.emplace(Key, Mine.get_future().share());
      Stats.InFlight = InFlight.size();
    }
  }

  if (HitRep)
    return Finish(std::move(*HitRep), "hit");

  if (!Owner) {
    // An identical compile is running; its result serves this request
    // too (but it is not a cache hit — the latency is a cold compile's).
    CompileReply Rep = Wait.get();
    Rep.CacheHit = false;
    return Finish(std::move(Rep), "coalesced");
  }

  CompileReply Rep = doCompile(Req); // outside the lock; never throws

  {
    std::lock_guard<std::mutex> G(M);
    InFlight.erase(Key);
    Stats.InFlight = InFlight.size();
    if (Rep.Ok) {
      ++Stats.Misses;
      Lru.emplace_front(Key, Rep);
      Cache[Key] = Lru.begin();
      while (Lru.size() > Capacity) {
        Cache.erase(Lru.back().first);
        Lru.pop_back();
        ++Stats.Evictions;
      }
    } else {
      // Failures are never cached: a later identical request recompiles
      // (the source may race with a fix) and the cache never serves a
      // poisoned entry.
      ++Stats.Failures;
    }
    Stats.Entries = Lru.size();
  }

  Mine.set_value(Rep); // always reached: doCompile never throws
  Rep.CacheHit = false;
  const char *How = Rep.Ok ? "miss" : "fail";
  return Finish(std::move(Rep), How);
}

ServiceStats CompileService::stats() const {
  std::lock_guard<std::mutex> G(M);
  return Stats;
}

LatencyHistogram CompileService::latency() const {
  std::lock_guard<std::mutex> G(M);
  return Latency;
}

void CompileService::clear() {
  std::lock_guard<std::mutex> G(M);
  Lru.clear();
  Cache.clear();
  Stats.Entries = 0;
}
