//===- service/CompileService.h - Long-lived compile service ----*- C++ -*-===//
//
// Part of the Descend reproduction. A thread-safe, long-lived front end
// for serving compile requests: each request carries source text, `-D`
// nat bindings and a backend name; replies carry the textual artifact
// and — for the vm backend — the directly executable CompiledProgram.
// Successful results are cached in an LRU keyed by (backend, fn-suffix,
// sorted defines, schedule passes, full source text), so re-requesting a
// kernel at the same specialization is a cache probe instead of a
// recompile, and requesting the same source at a different `-D` binding
// or schedule-pass configuration is a distinct entry — the autotuner
// leans on this to sweep tile sizes and pass configs. Identical requests arriving concurrently are coalesced onto one
// compilation (the others wait for its result).
//
// Error discipline: malformed or hostile sources produce a reply with
// structured diagnostics; failures are never cached (they do not poison
// the cache) and nothing ever throws across compile(). This is the
// engine behind the `descendd` tool and the serving-loop rows of
// bench_throughput.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_SERVICE_COMPILESERVICE_H
#define DESCEND_SERVICE_COMPILESERVICE_H

#include "vm/Bytecode.h"

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace descend {
namespace service {

struct CompileRequest {
  std::string Source;
  std::map<std::string, long long> Defines; ///< -D nat bindings
  std::string Backend = "vm";
  std::string FnSuffix;
  std::string BufferName = "<service>"; ///< diagnostics point here
  kir::PassConfig Passes; ///< opt-in schedule passes; part of the cache key
};

struct CompileReply {
  bool Ok = false;
  bool CacheHit = false; ///< served from the LRU without compiling
  double CompileMs = 0.0; ///< wall-clock serve time of this request

  /// Failure was environmental (resource pressure, injected fault), not
  /// a property of the source: retrying the identical request may
  /// succeed. Source diagnostics keep this false — retrying a parse
  /// error is pointless. descendd's bounded retry keys off this.
  bool Transient = false;

  /// Rendered diagnostics when !Ok. Never empty on failure.
  std::string Diagnostics;

  /// The backend's textual artifact (vm: the disassembly listing).
  std::string Artifact;

  /// The executable artifact (vm backend only). Immutable and shared:
  /// concurrent callers may launch it on their own devices.
  std::shared_ptr<const vm::CompiledProgram> Program;
};

struct ServiceStats {
  uint64_t Hits = 0;      ///< served from cache
  uint64_t Misses = 0;    ///< compiled successfully (cold)
  uint64_t Coalesced = 0; ///< waited on an identical in-flight compile
  uint64_t Failures = 0;  ///< requests that produced diagnostics
  uint64_t Evictions = 0; ///< entries dropped by the LRU policy
  size_t Entries = 0;     ///< current cache size
  size_t InFlight = 0;    ///< compiles running right now
};

/// Serve-latency histogram over every finished request (hits included —
/// the distribution's bimodality IS the cache story). Log2 buckets in
/// milliseconds: bucket I covers [upper(I-1), upper(I)) with
/// upper(I) = 0.25 * 2^I, and the last bucket is open-ended.
struct LatencyHistogram {
  static constexpr size_t NumBuckets = 12;
  uint64_t Counts[NumBuckets] = {};
  uint64_t Total = 0;
  double MaxMs = 0.0;
  double SumMs = 0.0;

  /// Upper bound of bucket \p I in ms (infinity for the last).
  static double bucketUpperMs(size_t I);
  void record(double Ms);
  /// Upper bound of the bucket holding quantile \p Q in [0,1] — a
  /// conservative p50/p95 estimate; 0 when empty.
  double quantileUpperMs(double Q) const;
};

/// The long-lived compile front end. All public members are thread-safe;
/// compilation itself runs outside the cache lock, so concurrent
/// requests for different keys compile in parallel.
class CompileService {
public:
  /// \p Capacity: maximum cached artifacts before LRU eviction.
  explicit CompileService(size_t Capacity = 64);

  /// Serves one request. Never throws; every failure mode (parse errors,
  /// type errors, unknown backend, internal faults) is a reply with
  /// Diagnostics set.
  CompileReply compile(const CompileRequest &Req);

  ServiceStats stats() const;

  /// Snapshot of the serve-latency histogram (descendd METRICS).
  LatencyHistogram latency() const;

  /// Drops every cached artifact (stats keep accumulating).
  void clear();

private:
  CompileReply doCompile(const CompileRequest &Req);
  static std::string makeKey(const CompileRequest &Req);

  const size_t Capacity;

  mutable std::mutex M;
  /// LRU list, most recent first; the map points into it.
  std::list<std::pair<std::string, CompileReply>> Lru;
  std::unordered_map<
      std::string,
      std::list<std::pair<std::string, CompileReply>>::iterator>
      Cache;
  /// Identical requests currently compiling, for coalescing.
  std::unordered_map<std::string, std::shared_future<CompileReply>> InFlight;
  ServiceStats Stats;
  LatencyHistogram Latency;
};

} // namespace service
} // namespace descend

#endif // DESCEND_SERVICE_COMPILESERVICE_H
