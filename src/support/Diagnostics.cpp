//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/SourceManager.h"

#include <sstream>

using namespace descend;

const char *descend::diagCodeHeadline(DiagCode Code) {
  switch (Code) {
  case DiagCode::LexUnknownCharacter:
    return "unknown character";
  case DiagCode::LexUnterminatedComment:
    return "unterminated block comment";
  case DiagCode::LexBadNumber:
    return "malformed numeric literal";
  case DiagCode::ParseExpected:
    return "expected token";
  case DiagCode::ParseUnexpectedToken:
    return "unexpected token";
  case DiagCode::ParseBadType:
    return "malformed type";
  case DiagCode::ParseBadDim:
    return "malformed dimension";
  case DiagCode::UnknownVariable:
    return "unknown variable";
  case DiagCode::UnknownFunction:
    return "unknown function";
  case DiagCode::UnknownView:
    return "unknown view";
  case DiagCode::Redefinition:
    return "redefinition";
  case DiagCode::MismatchedTypes:
    return "mismatched types";
  case DiagCode::WrongArgCount:
    return "wrong number of arguments";
  case DiagCode::WrongGenericArgCount:
    return "wrong number of generic arguments";
  case DiagCode::NotAnArray:
    return "expression is not an array";
  case DiagCode::NotATuple:
    return "expression is not a tuple";
  case DiagCode::NotAReference:
    return "expression is not a reference";
  case DiagCode::CannotAssign:
    return "cannot assign";
  case DiagCode::UseOfMovedValue:
    return "use of moved value";
  case DiagCode::CannotMoveOut:
    return "cannot move out of this place";
  case DiagCode::CannotDereference:
    return "cannot dereference";
  case DiagCode::WrongExecutionContext:
    return "wrong execution context";
  case DiagCode::ConflictingMemoryAccess:
    return "conflicting memory access";
  case DiagCode::ConflictingBorrow:
    return "conflicting borrow";
  case DiagCode::NarrowingViolated:
    return "narrowing violated";
  case DiagCode::SharedWriteRejected:
    return "cannot write through shared access";
  case DiagCode::BarrierNotAllowed:
    return "barrier not allowed here";
  case DiagCode::BarrierMissing:
    return "missing barrier synchronization";
  case DiagCode::SchedOverMissingDim:
    return "cannot schedule over missing dimension";
  case DiagCode::SchedOverThread:
    return "cannot schedule inside a single thread";
  case DiagCode::SplitOutOfBounds:
    return "split position out of bounds";
  case DiagCode::LaunchConfigMismatch:
    return "mismatched launch configuration";
  case DiagCode::SelectShapeMismatch:
    return "selection does not match execution resource shape";
  case DiagCode::TransferDirectionMismatch:
    return "mismatched transfer direction";
  case DiagCode::TransferSizeMismatch:
    return "mismatched transfer size";
  case DiagCode::ViewSideConditionFailed:
    return "view side condition not satisfied";
  case DiagCode::ViewShapeMismatch:
    return "view applied to incompatible shape";
  case DiagCode::NatCannotProve:
    return "cannot statically prove size constraint";
  case DiagCode::UnknownBackend:
    return "unknown code-generation backend";
  case DiagCode::BackendFailed:
    return "code generation failed";
  }
  return "unknown diagnostic";
}

Diagnostic &DiagnosticEngine::report(DiagSeverity Severity, DiagCode Code,
                                     SourceRange Range, std::string Message) {
  Diagnostic D;
  D.Severity = Severity;
  D.Code = Code;
  D.Range = Range;
  D.Message = std::move(Message);
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(std::move(D));
  return Diags.back();
}

bool DiagnosticEngine::contains(DiagCode Code) const {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

static const char *severityLabel(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

/// Appends a "LINE | source" snippet with caret underlining for \p Range.
static void renderSnippet(const SourceManager &SM, SourceRange Range,
                          char Marker, std::ostringstream &OS) {
  if (!Range.isValid())
    return;
  PresumedLoc P = SM.presumed(Range.Begin);
  std::string_view Line = SM.lineContaining(Range.Begin);
  std::string LineNo = std::to_string(P.Line);
  std::string Gutter(LineNo.size(), ' ');

  OS << Gutter << "--> " << P.BufferName << ":" << P.Line << ":" << P.Column
     << "\n";
  OS << Gutter << " |\n";
  OS << LineNo << " | " << Line << "\n";
  OS << Gutter << " | ";
  unsigned Col = P.Column; // 1-based
  for (unsigned I = 1; I < Col; ++I)
    OS << ' ';
  // Underline up to the end of the range if it is on the same line,
  // otherwise underline to end of line.
  uint32_t Len = 1;
  if (Range.End.isValid() && Range.End.Offset > Range.Begin.Offset)
    Len = Range.End.Offset - Range.Begin.Offset;
  uint32_t Remaining = Line.size() >= (Col - 1) ? Line.size() - (Col - 1) : 1;
  if (Len > Remaining)
    Len = Remaining ? Remaining : 1;
  for (uint32_t I = 0; I != Len; ++I)
    OS << Marker;
  OS << "\n";
}

std::string DiagnosticEngine::render(const Diagnostic &D) const {
  std::ostringstream OS;
  OS << severityLabel(D.Severity) << ": " << D.Message << "\n";
  renderSnippet(SM, D.Range, '^', OS);
  for (const DiagNote &N : D.Notes) {
    if (N.Range.isValid()) {
      renderSnippet(SM, N.Range, '-', OS);
      OS << "  = note: " << N.Message << "\n";
    } else {
      OS << "  = note: " << N.Message << "\n";
    }
  }
  return OS.str();
}

std::string DiagnosticEngine::renderAll() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << render(D) << "\n";
  return OS.str();
}
