//===- support/Diagnostics.h - Compiler diagnostics -------------*- C++ -*-===//
//
// Part of the Descend reproduction. User-facing errors (malformed or unsafe
// programs) are recoverable and flow through the DiagnosticEngine; internal
// invariant violations use assert/llvm-style unreachable instead.
//
// The renderer produces Rust-style messages matching the shape of the error
// listings in the paper (Section 2), e.g. "error: conflicting memory access"
// with a source snippet and caret markers.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_SUPPORT_DIAGNOSTICS_H
#define DESCEND_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace descend {

class SourceManager;

enum class DiagSeverity { Note, Warning, Error };

/// Stable identifiers for every diagnostic the compiler can emit. Tests match
/// on these codes rather than on message text.
enum class DiagCode {
  // Lexer.
  LexUnknownCharacter,
  LexUnterminatedComment,
  LexBadNumber,
  // Parser.
  ParseExpected,
  ParseUnexpectedToken,
  ParseBadType,
  ParseBadDim,
  // Name resolution / typing.
  UnknownVariable,
  UnknownFunction,
  UnknownView,
  Redefinition,
  MismatchedTypes,
  WrongArgCount,
  WrongGenericArgCount,
  NotAnArray,
  NotATuple,
  NotAReference,
  CannotAssign,
  UseOfMovedValue,
  CannotMoveOut,
  CannotDereference,
  WrongExecutionContext,
  // Borrowing / access safety.
  ConflictingMemoryAccess,
  ConflictingBorrow,
  NarrowingViolated,
  SharedWriteRejected,
  // Exec resources / scheduling.
  BarrierNotAllowed,
  BarrierMissing,
  SchedOverMissingDim,
  SchedOverThread,
  SplitOutOfBounds,
  LaunchConfigMismatch,
  SelectShapeMismatch,
  // Host programs (Sections 2.3 / 3.4): CPU<->GPU transfer checking.
  TransferDirectionMismatch,
  TransferSizeMismatch,
  // Views.
  ViewSideConditionFailed,
  ViewShapeMismatch,
  // Nat solving.
  NatCannotProve,
  // Driver / pipeline.
  UnknownBackend,
  BackendFailed,
};

/// Returns the canonical headline for \p Code, e.g. "conflicting memory
/// access". Individual reports may append detail after the headline.
const char *diagCodeHeadline(DiagCode Code);

/// A secondary message attached to a primary diagnostic, optionally pointing
/// at its own source range.
struct DiagNote {
  SourceRange Range;
  std::string Message;
};

struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  DiagCode Code = DiagCode::ParseExpected;
  SourceRange Range;
  std::string Message;
  std::vector<DiagNote> Notes;

  Diagnostic &note(SourceRange R, std::string Msg) {
    Notes.push_back(DiagNote{R, std::move(Msg)});
    return *this;
  }
  Diagnostic &note(std::string Msg) {
    Notes.push_back(DiagNote{SourceRange(), std::move(Msg)});
    return *this;
  }
};

/// Collects diagnostics during a compilation. Rendering is separate so tests
/// can assert on structured diagnostics without string matching.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceManager &SM) : SM(SM) {}

  /// Reports a new diagnostic; returns a reference for attaching notes. The
  /// reference is invalidated by the next report() call.
  Diagnostic &report(DiagSeverity Severity, DiagCode Code, SourceRange Range,
                     std::string Message);

  Diagnostic &error(DiagCode Code, SourceRange Range, std::string Message) {
    return report(DiagSeverity::Error, Code, Range, std::move(Message));
  }
  Diagnostic &warning(DiagCode Code, SourceRange Range, std::string Message) {
    return report(DiagSeverity::Warning, Code, Range, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// True if any collected diagnostic carries \p Code.
  bool contains(DiagCode Code) const;

  /// Renders one diagnostic in Rust-style format with source snippets.
  std::string render(const Diagnostic &D) const;

  /// Renders every collected diagnostic, separated by blank lines.
  std::string renderAll() const;

  const SourceManager &sourceManager() const { return SM; }

private:
  const SourceManager &SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace descend

#endif // DESCEND_SUPPORT_DIAGNOSTICS_H
