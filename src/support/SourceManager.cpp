//===- support/SourceManager.cpp ------------------------------------------===//

#include "support/SourceManager.h"

#include <algorithm>
#include <cassert>

using namespace descend;

uint32_t SourceManager::addBuffer(std::string Name, std::string Text) {
  Buffer B;
  B.Name = std::move(Name);
  B.Text = std::move(Text);
  B.LineStarts.push_back(0);
  for (uint32_t I = 0, E = B.Text.size(); I != E; ++I)
    if (B.Text[I] == '\n')
      B.LineStarts.push_back(I + 1);
  Buffers.push_back(std::move(B));
  return Buffers.size(); // ids are 1-based
}

const SourceManager::Buffer &SourceManager::buffer(uint32_t BufferId) const {
  assert(BufferId >= 1 && BufferId <= Buffers.size() && "invalid buffer id");
  return Buffers[BufferId - 1];
}

std::string_view SourceManager::bufferText(uint32_t BufferId) const {
  return buffer(BufferId).Text;
}

std::string_view SourceManager::bufferName(uint32_t BufferId) const {
  return buffer(BufferId).Name;
}

PresumedLoc SourceManager::presumed(SourceLoc Loc) const {
  assert(Loc.isValid() && "presumed() on invalid location");
  const Buffer &B = buffer(Loc.BufferId);
  auto It = std::upper_bound(B.LineStarts.begin(), B.LineStarts.end(),
                             Loc.Offset);
  unsigned Line = It - B.LineStarts.begin(); // 1-based
  uint32_t LineStart = B.LineStarts[Line - 1];
  PresumedLoc P;
  P.BufferName = B.Name;
  P.Line = Line;
  P.Column = Loc.Offset - LineStart + 1;
  return P;
}

std::string_view SourceManager::lineContaining(SourceLoc Loc) const {
  assert(Loc.isValid() && "lineContaining() on invalid location");
  const Buffer &B = buffer(Loc.BufferId);
  PresumedLoc P = presumed(Loc);
  uint32_t Start = B.LineStarts[P.Line - 1];
  uint32_t End = P.Line < B.LineStarts.size() ? B.LineStarts[P.Line] - 1
                                              : B.Text.size();
  if (End > Start && B.Text[End - 1] == '\r')
    --End;
  return std::string_view(B.Text).substr(Start, End - Start);
}
