//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the Descend reproduction.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_SUPPORT_STRINGUTILS_H
#define DESCEND_SUPPORT_STRINGUTILS_H

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace descend {

/// printf-style formatting into a std::string.
std::string strfmt(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins the elements of \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Renders each element with operator<< and joins with \p Sep.
template <typename Range>
std::string joinMapped(const Range &Xs, std::string_view Sep) {
  std::ostringstream OS;
  bool First = true;
  for (const auto &X : Xs) {
    if (!First)
      OS << Sep;
    First = false;
    OS << X;
  }
  return OS.str();
}

/// Replaces every occurrence of \p From in \p S by \p To.
std::string replaceAll(std::string S, std::string_view From,
                       std::string_view To);

/// Splits \p S at \p Sep (no empty-token suppression).
std::vector<std::string> split(std::string_view S, char Sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view S);

} // namespace descend

#endif // DESCEND_SUPPORT_STRINGUTILS_H
