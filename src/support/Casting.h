//===- support/Casting.h - LLVM-style RTTI helpers --------------*- C++ -*-===//
//
// Part of the Descend reproduction. Lightweight reimplementation of LLVM's
// isa<>/cast<>/dyn_cast<> templates (llvm/Support/Casting.h) for class
// hierarchies that expose a `classof(const Base *)` predicate.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_SUPPORT_CASTING_H
#define DESCEND_SUPPORT_CASTING_H

#include <cassert>
#include <memory>
#include <type_traits>

namespace descend {

/// Returns true if \p Val is an instance of \p To (or of one of the listed
/// types when multiple are given). \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename Second, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<Second, Rest...>(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Null-tolerant variants.
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace descend

#endif // DESCEND_SUPPORT_CASTING_H
