//===- support/SourceManager.h - Owns source buffers ------------*- C++ -*-===//
//
// Part of the Descend reproduction. Holds all source text handed to the
// compiler and resolves SourceLocs into human-readable line/column pairs.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_SUPPORT_SOURCEMANAGER_H
#define DESCEND_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLocation.h"

#include <string>
#include <string_view>
#include <vector>

namespace descend {

/// A resolved line/column position (1-based) inside a named buffer.
struct PresumedLoc {
  std::string_view BufferName;
  unsigned Line = 0;
  unsigned Column = 0;
};

/// Owns source buffers and maps offsets to lines. Buffer ids start at 1;
/// id 0 is reserved for the invalid location.
class SourceManager {
public:
  /// Copies \p Text into a new buffer and returns its id.
  uint32_t addBuffer(std::string Name, std::string Text);

  /// Full text of buffer \p BufferId.
  std::string_view bufferText(uint32_t BufferId) const;

  /// Name the buffer was registered under.
  std::string_view bufferName(uint32_t BufferId) const;

  /// Resolves \p Loc to 1-based line/column. \p Loc must be valid.
  PresumedLoc presumed(SourceLoc Loc) const;

  /// The full source line (without trailing newline) containing \p Loc.
  std::string_view lineContaining(SourceLoc Loc) const;

  unsigned numBuffers() const { return Buffers.size(); }

private:
  struct Buffer {
    std::string Name;
    std::string Text;
    std::vector<uint32_t> LineStarts; // offsets of each line start
  };

  const Buffer &buffer(uint32_t BufferId) const;

  std::vector<Buffer> Buffers;
};

} // namespace descend

#endif // DESCEND_SUPPORT_SOURCEMANAGER_H
