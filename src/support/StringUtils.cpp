//===- support/StringUtils.cpp --------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace descend;

std::string descend::strfmt(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Needed > 0) {
    Out.resize(Needed);
    std::vsnprintf(Out.data(), Needed + 1, Fmt, Args);
  }
  va_end(Args);
  return Out;
}

std::string descend::join(const std::vector<std::string> &Parts,
                          std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I)
      Out.append(Sep);
    Out.append(Parts[I]);
  }
  return Out;
}

std::string descend::replaceAll(std::string S, std::string_view From,
                                std::string_view To) {
  if (From.empty())
    return S;
  size_t Pos = 0;
  while ((Pos = S.find(From, Pos)) != std::string::npos) {
    S.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return S;
}

std::vector<std::string> descend::split(std::string_view S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Out.emplace_back(S.substr(Start));
      return Out;
    }
    Out.emplace_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view descend::trim(std::string_view S) {
  auto IsSpace = [](char C) {
    return C == ' ' || C == '\t' || C == '\n' || C == '\r';
  };
  while (!S.empty() && IsSpace(S.front()))
    S.remove_prefix(1);
  while (!S.empty() && IsSpace(S.back()))
    S.remove_suffix(1);
  return S;
}
