//===- support/SourceLocation.h - Source positions and ranges ---*- C++ -*-===//
//
// Part of the Descend reproduction. Byte-offset based source locations,
// resolved to line/column by the SourceManager.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_SUPPORT_SOURCELOCATION_H
#define DESCEND_SUPPORT_SOURCELOCATION_H

#include <cstdint>

namespace descend {

/// A position in a source buffer, identified by buffer id and byte offset.
/// The invalid location is {0, 0} with Valid == false.
struct SourceLoc {
  uint32_t BufferId = 0;
  uint32_t Offset = 0;
  bool Valid = false;

  SourceLoc() = default;
  SourceLoc(uint32_t BufferId, uint32_t Offset)
      : BufferId(BufferId), Offset(Offset), Valid(true) {}

  bool isValid() const { return Valid; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.BufferId == B.BufferId && A.Offset == B.Offset &&
           A.Valid == B.Valid;
  }
};

/// A half-open range [Begin, End) in a single source buffer.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}
  explicit SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}

  bool isValid() const { return Begin.isValid(); }

  /// Smallest range covering both \p A and \p B (must share a buffer).
  static SourceRange merge(SourceRange A, SourceRange B) {
    if (!A.isValid())
      return B;
    if (!B.isValid())
      return A;
    SourceRange R;
    R.Begin = A.Begin.Offset <= B.Begin.Offset ? A.Begin : B.Begin;
    R.End = A.End.Offset >= B.End.Offset ? A.End : B.End;
    return R;
  }
};

} // namespace descend

#endif // DESCEND_SUPPORT_SOURCELOCATION_H
