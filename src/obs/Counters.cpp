//===- obs/Counters.cpp - Simulator performance counters ------------------===//

#include "obs/Counters.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace descend::obs {

PhaseCounters &PhaseCounters::operator+=(const PhaseCounters &O) {
  GlobalLoads += O.GlobalLoads;
  GlobalStores += O.GlobalStores;
  SharedLoads += O.SharedLoads;
  SharedStores += O.SharedStores;
  SharedTransactions += O.SharedTransactions;
  BankConflicts += O.BankConflicts;
  Barriers += O.Barriers;
  return *this;
}

namespace {
template <typename Fn>
uint64_t sumPhases(const std::vector<PhaseCounters> &Phases, Fn Field) {
  uint64_t N = 0;
  for (const PhaseCounters &P : Phases)
    N += Field(P);
  return N;
}
} // namespace

uint64_t LaunchStats::globalLoads() const {
  return sumPhases(Phases, [](const PhaseCounters &P) { return P.GlobalLoads; });
}
uint64_t LaunchStats::globalStores() const {
  return sumPhases(Phases,
                   [](const PhaseCounters &P) { return P.GlobalStores; });
}
uint64_t LaunchStats::sharedLoads() const {
  return sumPhases(Phases, [](const PhaseCounters &P) { return P.SharedLoads; });
}
uint64_t LaunchStats::sharedStores() const {
  return sumPhases(Phases,
                   [](const PhaseCounters &P) { return P.SharedStores; });
}
uint64_t LaunchStats::sharedTransactions() const {
  return sumPhases(Phases,
                   [](const PhaseCounters &P) { return P.SharedTransactions; });
}
uint64_t LaunchStats::bankConflicts() const {
  return sumPhases(Phases,
                   [](const PhaseCounters &P) { return P.BankConflicts; });
}
uint64_t LaunchStats::barriers() const {
  return sumPhases(Phases, [](const PhaseCounters &P) { return P.Barriers; });
}

void LaunchStats::merge(const LaunchStats &O) {
  if (Label.empty())
    Label = O.Label;
  Launches += O.Launches;
  Blocks += O.Blocks;
  ThreadsPerBlock = std::max(ThreadsPerBlock, O.ThreadsPerBlock);
  ArenaBytesPerBlock = std::max(ArenaBytesPerBlock, O.ArenaBytesPerBlock);
  ArenaBytesTotal += O.ArenaBytesTotal;
  Traps += O.Traps;
  RaceLogEntries += O.RaceLogEntries;
  if (Phases.size() < O.Phases.size())
    Phases.resize(O.Phases.size());
  for (size_t I = 0; I < O.Phases.size(); ++I)
    Phases[I] += O.Phases[I];
  ChunkClaims += O.ChunkClaims;
  Workers = std::max(Workers, O.Workers);
}

std::string LaunchStats::str() const {
  char Buf[256];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf),
                "%s: launches=%" PRIu64 " blocks=%" PRIu64
                " threads/block=%" PRIu64 " arena=%" PRIu64 " B/block\n",
                Label.empty() ? "<kernel>" : Label.c_str(), Launches, Blocks,
                ThreadsPerBlock, ArenaBytesPerBlock);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  global: %" PRIu64 " loads, %" PRIu64 " stores\n",
                globalLoads(), globalStores());
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  shared: %" PRIu64 " loads, %" PRIu64 " stores, %" PRIu64
                " transactions, %" PRIu64 " bank conflicts\n",
                sharedLoads(), sharedStores(), sharedTransactions(),
                bankConflicts());
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  barriers=%" PRIu64 " traps=%" PRIu64
                " race-log=%" PRIu64 " claims=%" PRIu64 " workers=%" PRIu64
                "\n",
                barriers(), Traps, RaceLogEntries, ChunkClaims, Workers);
  Out += Buf;
  for (size_t I = 0; I < Phases.size(); ++I) {
    const PhaseCounters &P = Phases[I];
    if (P.empty())
      continue;
    std::snprintf(Buf, sizeof(Buf),
                  "  phase %zu: global %" PRIu64 "/%" PRIu64 " shared %" PRIu64
                  "/%" PRIu64 " conflicts=%" PRIu64 " barriers=%" PRIu64 "\n",
                  I, P.GlobalLoads, P.GlobalStores, P.SharedLoads,
                  P.SharedStores, P.BankConflicts, P.Barriers);
    Out += Buf;
  }
  return Out;
}

std::string LaunchStats::json() const {
  char Buf[512];
  std::string Out = "{";
  // Labels come from kernel names in user source: escape conservatively.
  Out += "\"label\":\"";
  for (char C : Label) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if ((unsigned char)C < 0x20)
      C = '?';
    Out += C;
  }
  Out += "\",";
  std::snprintf(
      Buf, sizeof(Buf),
      "\"launches\":%" PRIu64 ",\"blocks\":%" PRIu64
      ",\"threads_per_block\":%" PRIu64 ",\"arena_bytes_per_block\":%" PRIu64
      ",\"arena_bytes_total\":%" PRIu64 ",\"global_loads\":%" PRIu64
      ",\"global_stores\":%" PRIu64 ",\"shared_loads\":%" PRIu64
      ",\"shared_stores\":%" PRIu64 ",\"shared_transactions\":%" PRIu64
      ",\"bank_conflicts\":%" PRIu64 ",\"barriers\":%" PRIu64
      ",\"traps\":%" PRIu64 ",\"race_log_entries\":%" PRIu64
      ",\"chunk_claims\":%" PRIu64 ",\"workers\":%" PRIu64 ",\"phases\":[",
      Launches, Blocks, ThreadsPerBlock, ArenaBytesPerBlock, ArenaBytesTotal,
      globalLoads(), globalStores(), sharedLoads(), sharedStores(),
      sharedTransactions(), bankConflicts(), barriers(), Traps, RaceLogEntries,
      ChunkClaims, Workers);
  Out += Buf;
  for (size_t I = 0; I < Phases.size(); ++I) {
    const PhaseCounters &P = Phases[I];
    std::snprintf(Buf, sizeof(Buf),
                  "%s{\"global_loads\":%" PRIu64 ",\"global_stores\":%" PRIu64
                  ",\"shared_loads\":%" PRIu64 ",\"shared_stores\":%" PRIu64
                  ",\"shared_transactions\":%" PRIu64
                  ",\"bank_conflicts\":%" PRIu64 ",\"barriers\":%" PRIu64 "}",
                  I ? "," : "", P.GlobalLoads, P.GlobalStores, P.SharedLoads,
                  P.SharedStores, P.SharedTransactions, P.BankConflicts,
                  P.Barriers);
    Out += Buf;
  }
  Out += "]}";
  return Out;
}

void BlockCounters::beginPhase(unsigned StaticPhase) {
  flushWarp();
  LastThread = ~0u;
  CurWarp = ~0u;
  Seq = 0;
  if (Phases.size() <= StaticPhase)
    Phases.resize(StaticPhase + 1);
  CurPhase = StaticPhase;
  ++Phases[CurPhase].Barriers;
}

void BlockCounters::countShared(size_t ByteOffset, bool Write,
                                unsigned Thread) {
  PhaseCounters &P = Phases[CurPhase];
  if (Write)
    ++P.SharedStores;
  else
    ++P.SharedLoads;
  if (Thread != LastThread) {
    Seq = 0;
    unsigned Warp = Thread / 32;
    if (Warp != CurWarp) {
      flushWarp();
      CurWarp = Warp;
    }
    LastThread = Thread;
  }
  if (Seq >= OrdinalWords.size())
    OrdinalWords.emplace_back();
  OrdinalWords[Seq].push_back(static_cast<uint32_t>(ByteOffset / 4));
  ++Seq;
}

void BlockCounters::flushWarp() {
  PhaseCounters &P = Phases[CurPhase];
  for (std::vector<uint32_t> &Words : OrdinalWords) {
    if (Words.empty())
      continue;
    // Distinct words per bank; quadratic in the warp width (<= 32).
    uint32_t PerBank[32] = {};
    for (size_t I = 0; I < Words.size(); ++I) {
      bool Seen = false;
      for (size_t J = 0; J < I && !Seen; ++J)
        Seen = Words[J] == Words[I];
      if (!Seen)
        ++PerBank[Words[I] % 32];
    }
    uint64_t Transactions = 1;
    for (uint32_t N : PerBank)
      Transactions = std::max<uint64_t>(Transactions, N);
    P.SharedTransactions += Transactions;
    P.BankConflicts += Transactions - 1;
    Words.clear();
  }
}

} // namespace descend::obs
