//===- obs/Trace.cpp - Chrome-trace-event JSON exporter -------------------===//

#include "obs/Trace.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace descend::obs {

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if ((unsigned char)C < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

uint32_t threadId() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

} // namespace

bool parseTraceEnv(const char *Env, std::string *PathOut,
                   std::string *Warning) {
  if (Warning)
    Warning->clear();
  if (!Env)
    return false; // unset: off, silently
  std::string V(Env);
  bool Garbage = V.empty();
  for (char C : V)
    if (std::isspace((unsigned char)C) || std::iscntrl((unsigned char)C))
      Garbage = true;
  if (Garbage) {
    if (Warning)
      *Warning = "descend: warning: ignoring invalid DESCEND_TRACE value '" +
                 V + "' (want 0/off, 1/on, or a file path); tracing is off";
    return false;
  }
  if (V == "0" || V == "off")
    return false; // explicit off, silently
  if (PathOut)
    *PathOut = (V == "1" || V == "on") ? DefaultTracePath : V;
  return true;
}

TraceCollector &TraceCollector::global() {
  static TraceCollector G;
  return G;
}

TraceCollector::TraceCollector() : Epoch(std::chrono::steady_clock::now()) {
  std::string EnvPath, Warning;
  if (parseTraceEnv(std::getenv("DESCEND_TRACE"), &EnvPath, &Warning)) {
    Path = EnvPath;
    Enabled.store(true, std::memory_order_relaxed);
  } else if (!Warning.empty()) {
    std::fprintf(stderr, "%s\n", Warning.c_str());
  }
}

void TraceCollector::enable(std::string P) {
  std::lock_guard<std::mutex> L(M);
  Path = std::move(P);
  Enabled.store(true, std::memory_order_relaxed);
}

void TraceCollector::disable() {
  Enabled.store(false, std::memory_order_relaxed);
}

void TraceCollector::addComplete(const char *Cat, const char *Name,
                                 std::chrono::steady_clock::time_point Begin,
                                 std::chrono::steady_clock::time_point End,
                                 std::string ArgsJson) {
  if (!enabled())
    return; // callers guard for speed; the API is safe without it
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Ph = 'X';
  E.Tid = threadId();
  E.ArgsJson = std::move(ArgsJson);
  std::lock_guard<std::mutex> L(M);
  E.TsUs = std::chrono::duration<double, std::micro>(Begin - Epoch).count();
  E.DurUs = std::chrono::duration<double, std::micro>(End - Begin).count();
  Events.push_back(std::move(E));
}

void TraceCollector::addInstant(const char *Cat, const char *Name,
                                std::string ArgsJson) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Ph = 'i';
  E.Tid = threadId();
  E.ArgsJson = std::move(ArgsJson);
  std::lock_guard<std::mutex> L(M);
  E.TsUs = std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - Epoch)
               .count();
  Events.push_back(std::move(E));
}

std::string TraceCollector::renderJson() const {
  std::lock_guard<std::mutex> L(M);
  std::string Out = "{\"traceEvents\":[";
  char Buf[128];
  for (size_t I = 0; I < Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    if (I)
      Out += ',';
    Out += "{\"name\":\"" + jsonEscape(E.Name) + "\",\"cat\":\"" +
           jsonEscape(E.Cat) + "\",\"ph\":\"";
    Out += E.Ph;
    Out += "\",";
    if (E.Ph == 'X')
      std::snprintf(Buf, sizeof(Buf), "\"ts\":%.3f,\"dur\":%.3f,", E.TsUs,
                    E.DurUs);
    else
      // Instant events need a scope; "t" (thread) keeps them local.
      std::snprintf(Buf, sizeof(Buf), "\"ts\":%.3f,\"s\":\"t\",", E.TsUs);
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf), "\"pid\":1,\"tid\":%u", E.Tid);
    Out += Buf;
    if (!E.ArgsJson.empty())
      Out += ",\"args\":" + E.ArgsJson;
    Out += '}';
  }
  Out += "],\"displayTimeUnit\":\"ms\"}";
  return Out;
}

bool TraceCollector::writeTo(const std::string &P) const {
  std::string Doc = renderJson();
  std::FILE *F = std::fopen(P.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "descend: warning: cannot write trace file '%s'\n",
                 P.c_str());
    return false;
  }
  bool Ok = std::fwrite(Doc.data(), 1, Doc.size(), F) == Doc.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok)
    std::fprintf(stderr, "descend: warning: short write on trace file '%s'\n",
                 P.c_str());
  return Ok;
}

void TraceCollector::flush() {
  if (!enabled())
    return;
  std::string P;
  {
    std::lock_guard<std::mutex> L(M);
    if (Events.empty())
      return;
    P = Path;
  }
  writeTo(P);
}

void TraceCollector::resetForTest() {
  std::lock_guard<std::mutex> L(M);
  Enabled.store(false, std::memory_order_relaxed);
  Events.clear();
  Path = DefaultTracePath;
}

size_t TraceCollector::eventCount() const {
  std::lock_guard<std::mutex> L(M);
  return Events.size();
}

} // namespace descend::obs
