//===- obs/Counters.h - Simulator performance counters ----------*- C++ -*-===//
//
// Part of the Descend reproduction. The counter half of the observability
// subsystem: what a kernel *did* — memory accesses per phase, barrier
// executions, a shared-memory bank-conflict model — as opposed to how
// long it took. The timing half lives in obs/Trace.h.
//
// Collection is strictly per block: the simulator gives every executing
// block a private BlockCounters (reached through BlockCtx::Counters, null
// when counters are off, so the hot path pays one predicted branch per
// access). At block exit the simulator merges the block's counters into
// the launch's LaunchStats under a mutex. Every merge is a commutative
// sum, so the totals are bit-identical no matter how blocks were
// distributed over workers — the property tests/obs_test.cpp pins.
//
// The bank-conflict model (the classic 32-bank, 4-byte-word shared
// memory): threads are grouped into warps of 32 by their linear id, and
// the k-th shared access of each thread in a warp is treated as one warp
// access (straight-line phase bodies execute the same access sequence per
// thread, so ordinal k identifies "the same instruction"). For each such
// group, accesses to the same word broadcast for free, while distinct
// words in one bank serialize: the group costs max-over-banks(distinct
// words in bank) transactions, and everything beyond the first
// transaction counts as a bank conflict. 8-byte elements therefore pay
// the familiar 2-way conflict of double-precision shared accesses.
//
// Phase identity is *static*: phase bodies inside a host-side phase loop
// accumulate into one slot across iterations (slot = pre-order position
// of the phase in the program tree), so a kernel's profile has as many
// rows as its source has barrier-delimited sections, not one row per
// dynamic iteration.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_OBS_COUNTERS_H
#define DESCEND_OBS_COUNTERS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace descend::obs {

/// Counters of one static phase (barrier-delimited section), summed over
/// every execution of that phase across all blocks of a launch.
struct PhaseCounters {
  uint64_t GlobalLoads = 0;
  uint64_t GlobalStores = 0;
  uint64_t SharedLoads = 0;
  uint64_t SharedStores = 0;
  /// Serialized shared-memory transactions under the 32-bank model (one
  /// per warp access group when conflict-free).
  uint64_t SharedTransactions = 0;
  /// Transactions beyond the first per warp access group — the cycles a
  /// real GPU would stall on.
  uint64_t BankConflicts = 0;
  /// Executions of this phase (each phase boundary is one barrier).
  uint64_t Barriers = 0;

  PhaseCounters &operator+=(const PhaseCounters &O);
  friend bool operator==(const PhaseCounters &,
                         const PhaseCounters &) = default;
  bool empty() const {
    return !(GlobalLoads | GlobalStores | SharedLoads | SharedStores |
             SharedTransactions | BankConflicts | Barriers);
  }
};

/// Everything counted for one launch (sim::LaunchStats is an alias).
/// merge() additionally lets stats accumulate across launches.
struct LaunchStats {
  /// Kernel name when the launcher knows it (the vm interpreter and the
  /// stats log label launches; generated C++ launches stay unlabeled).
  std::string Label;

  uint64_t Launches = 0; ///< 1 per launch; >1 after merge()
  uint64_t Blocks = 0;
  uint64_t ThreadsPerBlock = 0;
  uint64_t ArenaBytesPerBlock = 0; ///< shared + per-thread spill arena
  uint64_t ArenaBytesTotal = 0;    ///< ArenaBytesPerBlock * Blocks
  uint64_t Traps = 0;              ///< vm kernel faults (generated C++: 0)
  uint64_t RaceLogEntries = 0;     ///< race-detector accesses logged
  std::vector<PhaseCounters> Phases; ///< by static phase id

  // Execution-shape facts. These legitimately vary with the worker count
  // (chunking policy) and are therefore EXCLUDED from operator==, which
  // compares only the deterministic kernel-behaviour counters above.
  uint64_t ChunkClaims = 0; ///< pool claims that ran blocks
  uint64_t Workers = 0;     ///< workers the launch ran on

  // Totals over all phases.
  uint64_t globalLoads() const;
  uint64_t globalStores() const;
  uint64_t sharedLoads() const;
  uint64_t sharedStores() const;
  uint64_t sharedTransactions() const;
  uint64_t bankConflicts() const;
  uint64_t barriers() const;

  /// Accumulates \p O: counts sum, per-launch shape facts (threads per
  /// block, arena per block, workers) keep the maximum.
  void merge(const LaunchStats &O);

  /// Deterministic-counter equality: Label, ChunkClaims and Workers are
  /// excluded (see above). This is the relation obs_test pins across the
  /// sim-generated / vm-interpreted / graph-replay execution paths and
  /// across worker counts.
  friend bool operator==(const LaunchStats &A, const LaunchStats &B) {
    return A.Launches == B.Launches && A.Blocks == B.Blocks &&
           A.ThreadsPerBlock == B.ThreadsPerBlock &&
           A.ArenaBytesPerBlock == B.ArenaBytesPerBlock &&
           A.ArenaBytesTotal == B.ArenaBytesTotal && A.Traps == B.Traps &&
           A.RaceLogEntries == B.RaceLogEntries && A.Phases == B.Phases;
  }

  /// Multi-line human report (descendc --kernel-stats).
  std::string str() const;
  /// One JSON object (descendc --kernel-stats=json, BENCH_*.json rows).
  std::string json() const;
};

/// Per-block counter collection. Owned by the launcher, reached through
/// BlockCtx::Counters from the access hooks; strictly block-local, so no
/// synchronization is needed until the final merge.
class BlockCounters {
public:
  BlockCounters() { Phases.resize(1); }

  /// Enters static phase \p StaticPhase: flushes the pending warp group
  /// of the previous phase and counts one barrier.
  void beginPhase(unsigned StaticPhase);

  void countGlobal(bool Write) {
    if (Write)
      ++Phases[CurPhase].GlobalStores;
    else
      ++Phases[CurPhase].GlobalLoads;
  }

  /// Counts a shared-memory access at byte offset \p ByteOffset in the
  /// block's arena by the thread with linear id \p Thread, feeding the
  /// bank-conflict model.
  void countShared(size_t ByteOffset, bool Write, unsigned Thread);

  /// Flushes the trailing warp group; call once after the block's last
  /// phase ran.
  void finish() { flushWarp(); }

  const std::vector<PhaseCounters> &phases() const { return Phases; }

private:
  void flushWarp();

  std::vector<PhaseCounters> Phases;
  unsigned CurPhase = 0;
  // Bank-model state for the (current phase, current warp) group: the
  // 4-byte word index of every access, per per-thread ordinal.
  std::vector<std::vector<uint32_t>> OrdinalWords;
  unsigned LastThread = ~0u;
  unsigned CurWarp = ~0u;
  unsigned Seq = 0; ///< the executing thread's next shared-access ordinal
};

} // namespace descend::obs

#endif // DESCEND_OBS_COUNTERS_H
