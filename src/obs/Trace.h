//===- obs/Trace.h - Chrome-trace-event JSON exporter -----------*- C++ -*-===//
//
// The timing half of the observability subsystem: a process-wide
// collector of Chrome trace events (the JSON format chrome://tracing and
// Perfetto load) with spans for pipeline stages, simulator launches,
// stream ops, worker-pool activity and compile-service requests.
//
// Tracing is off by default and costs one relaxed atomic load per
// potential span while off. It turns on either programmatically
// (TraceCollector::global().enable(path) — descendc --trace-json=<file>)
// or through the DESCEND_TRACE environment variable, parsed with the
// same strictness discipline as DESCEND_WORKERS (parseTraceEnv below):
// unset / "0" / "off" disable silently, "1" / "on" enable with the
// default output path, any other clean token is the output path itself,
// and garbage (empty, whitespace, control characters) disables tracing
// with a one-time stderr warning instead of guessing. The collector
// writes its file when flushed explicitly or from its destructor at
// process exit, so env-driven binaries need no cooperation.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_OBS_TRACE_H
#define DESCEND_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace descend::obs {

/// One Chrome trace event. Complete events ("ph":"X") have a duration;
/// instant events ("ph":"i") mark a point in time.
struct TraceEvent {
  std::string Name;
  std::string Cat;
  char Ph = 'X';
  double TsUs = 0;  ///< microseconds since the collector's epoch
  double DurUs = 0; ///< complete events only
  uint32_t Tid = 0;
  std::string ArgsJson; ///< pre-rendered JSON object body, may be empty
};

/// Strict DESCEND_TRACE parser (the DESCEND_WORKERS discipline).
/// Returns true when tracing should be on, with *PathOut set to the
/// output file. On garbage input returns false and, when \p Warning is
/// non-null, fills it with a one-line diagnostic (empty on clean input).
bool parseTraceEnv(const char *Env, std::string *PathOut,
                   std::string *Warning);

/// Default output path used by DESCEND_TRACE=1/on.
inline constexpr const char *DefaultTracePath = "descend_trace.json";

class TraceCollector {
public:
  /// The process-wide collector. First use parses DESCEND_TRACE.
  static TraceCollector &global();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Turns tracing on and (re)targets the output file. Overrides any
  /// DESCEND_TRACE setting.
  void enable(std::string Path);
  void disable();

  void addComplete(const char *Cat, const char *Name,
                   std::chrono::steady_clock::time_point Begin,
                   std::chrono::steady_clock::time_point End,
                   std::string ArgsJson = {});
  void addInstant(const char *Cat, const char *Name,
                  std::string ArgsJson = {});

  /// Renders the full {"traceEvents":[...]} document.
  std::string renderJson() const;

  /// Writes renderJson() to \p Path; returns false (and warns on stderr)
  /// on I/O failure.
  bool writeTo(const std::string &Path) const;

  /// Writes to the configured path if tracing is enabled and any events
  /// were collected. Safe to call repeatedly; the destructor calls it.
  void flush();

  /// Test hook: drops all collected events and the enabled state.
  void resetForTest();

  size_t eventCount() const;
  const std::string &path() const { return Path; }

  ~TraceCollector() { flush(); }

private:
  TraceCollector();

  std::atomic<bool> Enabled{false};
  mutable std::mutex M;
  std::string Path = DefaultTracePath;
  std::vector<TraceEvent> Events;
  std::chrono::steady_clock::time_point Epoch;
};

/// RAII span: records a complete event over its lifetime. Cheap when
/// tracing is off (one relaxed load in the constructor, one in the
/// destructor). \p Cat and \p Name must outlive the span (string
/// literals in practice).
class Span {
public:
  Span(const char *Cat, const char *Name, std::string ArgsJson = {})
      : Cat(Cat), Name(Name), Args(std::move(ArgsJson)),
        Live(TraceCollector::global().enabled()) {
    if (Live)
      Begin = std::chrono::steady_clock::now();
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span() {
    if (Live && TraceCollector::global().enabled())
      TraceCollector::global().addComplete(
          Cat, Name, Begin, std::chrono::steady_clock::now(),
          std::move(Args));
  }

private:
  const char *Cat;
  const char *Name;
  std::string Args;
  bool Live;
  std::chrono::steady_clock::time_point Begin;
};

} // namespace descend::obs

#endif // DESCEND_OBS_TRACE_H
