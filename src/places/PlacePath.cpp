//===- places/PlacePath.cpp -------------------------------------------------===//

#include "places/PlacePath.h"

#include <sstream>

using namespace descend;

std::string PlacePath::str() const {
  std::ostringstream OS;
  OS << Root;
  for (const PlaceStep &S : Steps) {
    switch (S.Kind) {
    case PlaceStepKind::Proj:
      OS << (S.Which == 0 ? ".fst" : ".snd");
      break;
    case PlaceStepKind::Deref: {
      std::string Inner = OS.str();
      OS.str("");
      OS << "(*" << Inner << ")";
      break;
    }
    case PlaceStepKind::Index:
      OS << "[" << (S.Index ? S.Index.str() : S.IndexKey) << "]";
      break;
    case PlaceStepKind::Select:
      OS << "[[" << S.ExecVar << "]]";
      break;
    case PlaceStepKind::View:
      OS << "." << S.ViewKey;
      break;
    }
  }
  return OS.str();
}

bool descend::provablyDistinct(const Nat &L, const Nat &R) {
  if (!L || !R)
    return false;
  Nat Diff = Nat::sub(L, R).simplified();
  if (Diff.isLit())
    return Diff.litValue() != 0;
  auto Lt = Nat::proveLt(L, R);
  if (Lt && *Lt)
    return true;
  auto Gt = Nat::proveLt(R, L);
  return Gt && *Gt;
}

namespace {
/// Step equality: both denote the same sub-place for the same execution
/// instance.
bool stepsEqual(const PlaceStep &A, const PlaceStep &B) {
  if (A.Kind != B.Kind)
    return false;
  switch (A.Kind) {
  case PlaceStepKind::Proj:
    return A.Which == B.Which;
  case PlaceStepKind::Deref:
    return true;
  case PlaceStepKind::Index:
    if (A.Index && B.Index)
      return Nat::proveEq(A.Index, B.Index);
    return !A.IndexKey.empty() && A.IndexKey == B.IndexKey;
  case PlaceStepKind::Select:
    // Selections denote the coordinates of the selecting execution
    // resource: two selections agree only if they are by the *same*
    // resource. Binders from different split arms overlap even though the
    // resources are disjoint thread sets (both enumerate the same array).
    return !A.ExecKey.empty() ? A.ExecKey == B.ExecKey
                              : A.ExecVar == B.ExecVar;
  case PlaceStepKind::View:
    return A.ViewKey == B.ViewKey;
  }
  return false;
}

/// Disjointness of the first differing step pair.
bool stepsDisjoint(const PlaceStep &A, const PlaceStep &B) {
  if (A.Kind != B.Kind)
    return false;
  switch (A.Kind) {
  case PlaceStepKind::Proj:
    // Projections of a tuple refer to non-overlapping regions; in
    // particular split::<k>.fst and .snd partition the array.
    return A.Which != B.Which;
  case PlaceStepKind::Index:
    return provablyDistinct(A.Index, B.Index);
  default:
    return false;
  }
}
} // namespace

PlaceRelation descend::comparePlaces(const PlacePath &A, const PlacePath &B) {
  if (A.Root != B.Root || A.RootBindingId != B.RootBindingId)
    return PlaceRelation::Disjoint;

  size_t N = std::min(A.Steps.size(), B.Steps.size());
  for (size_t I = 0; I != N; ++I) {
    if (stepsEqual(A.Steps[I], B.Steps[I]))
      continue;
    if (stepsDisjoint(A.Steps[I], B.Steps[I]))
      return PlaceRelation::Disjoint;
    return PlaceRelation::Overlap;
  }
  if (A.Steps.size() == B.Steps.size())
    return PlaceRelation::Equal;
  // One is a strict prefix: the whole array overlaps each of its parts.
  return PlaceRelation::Overlap;
}
