//===- places/PlacePath.h - Resolved place expressions ----------*- C++ -*-===//
//
// Part of the Descend reproduction. A PlacePath is the type checker's
// resolved form of a place expression (Fig. 3): a root binding plus a
// sequence of steps. Paths are compared *syntactically* to decide whether
// two accesses may touch the same memory (Section 3.2):
//
//   "For checking that a place expression is accessed exclusively,
//    Descend, like Rust, compares the differences between place
//    expressions syntactically."
//
// Every view is an injective index remapping (see views/) and every select
// partitions an array over an execution resource, so:
//   * identical paths denote identical per-instance access sets,
//   * paths diverging at fst/snd, at provably distinct indices, or at
//     selections by disjoint execution resources are disjoint,
//   * anything else conservatively overlaps.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_PLACES_PLACEPATH_H
#define DESCEND_PLACES_PLACEPATH_H

#include "nat/Nat.h"

#include <string>
#include <vector>

namespace descend {

enum class PlaceStepKind { Proj, Deref, Index, Select, View };

struct PlaceStep {
  PlaceStepKind Kind = PlaceStepKind::Deref;
  unsigned Which = 0;   // Proj: 0 == fst, 1 == snd
  Nat Index;            // Index: static or loop-var index, null if dynamic
  std::string IndexKey; // Index: canonical spelling (for dynamic indices)
  std::string ExecVar;  // Select: name of the selecting execution resource
  std::string ExecKey;  // Select: canonical form of the resource (identity)
  unsigned ExecOpsBegin = 0; // Select: forall ops this selection discharges
  unsigned ExecOpsEnd = 0;
  std::string ViewKey;  // View: canonical primitive-chain spelling

  static PlaceStep proj(unsigned Which) {
    PlaceStep S;
    S.Kind = PlaceStepKind::Proj;
    S.Which = Which;
    return S;
  }
  static PlaceStep deref() {
    PlaceStep S;
    S.Kind = PlaceStepKind::Deref;
    return S;
  }
  static PlaceStep index(Nat N, std::string Key) {
    PlaceStep S;
    S.Kind = PlaceStepKind::Index;
    S.Index = std::move(N);
    S.IndexKey = std::move(Key);
    return S;
  }
  static PlaceStep select(std::string ExecVar, std::string ExecKey,
                          unsigned OpsBegin, unsigned OpsEnd) {
    PlaceStep S;
    S.Kind = PlaceStepKind::Select;
    S.ExecVar = std::move(ExecVar);
    S.ExecKey = std::move(ExecKey);
    S.ExecOpsBegin = OpsBegin;
    S.ExecOpsEnd = OpsEnd;
    return S;
  }
  static PlaceStep view(std::string Key) {
    PlaceStep S;
    S.Kind = PlaceStepKind::View;
    S.ViewKey = std::move(Key);
    return S;
  }
};

struct PlacePath {
  std::string Root;
  unsigned RootBindingId = 0; // disambiguates shadowed bindings
  std::vector<PlaceStep> Steps;

  /// Renders in the paper's surface syntax, e.g. "arr.rev[[thread]]".
  std::string str() const;
};

enum class PlaceRelation {
  Disjoint, ///< provably never the same memory
  Equal,    ///< identical access set (per execution instance)
  Overlap   ///< may alias; conservative default
};

/// Syntactic comparison per Section 3.2.
PlaceRelation comparePlaces(const PlacePath &A, const PlacePath &B);

/// True when L and R provably differ for every variable assignment
/// (difference is a non-zero constant, or one is provably less).
bool provablyDistinct(const Nat &L, const Nat &R);

} // namespace descend

#endif // DESCEND_PLACES_PLACEPATH_H
