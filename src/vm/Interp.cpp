//===- vm/Interp.cpp - Bytecode interpreter over the simulator --------------===//

#include "vm/Interp.h"

#include "ast/Expr.h" // BinOpKind / UnOpKind (host expressions)

#include <atomic>
#include <cstring>
#include <mutex>

using namespace descend;
using namespace descend::vm;

namespace {

//===----------------------------------------------------------------------===//
// Typed element access on raw buffer bytes
//===----------------------------------------------------------------------===//

Value loadElem(const std::byte *Base, ScalarKind K, size_t I) {
  Value V;
  switch (K) {
  case ScalarKind::I32: {
    int32_t X;
    std::memcpy(&X, Base + I * 4, 4);
    V.I = X;
    break;
  }
  case ScalarKind::U32: {
    uint32_t X;
    std::memcpy(&X, Base + I * 4, 4);
    V.I = X;
    break;
  }
  case ScalarKind::I64:
  case ScalarKind::U64:
    std::memcpy(&V.I, Base + I * 8, 8);
    break;
  case ScalarKind::F32: {
    float X;
    std::memcpy(&X, Base + I * 4, 4);
    V.F = static_cast<double>(X);
    break;
  }
  case ScalarKind::F64:
    std::memcpy(&V.F, Base + I * 8, 8);
    break;
  case ScalarKind::Bool:
    V.I = static_cast<unsigned char>(Base[I]) ? 1 : 0;
    break;
  case ScalarKind::Unit:
    V.I = 0;
    break;
  }
  return V;
}

void storeElem(std::byte *Base, ScalarKind K, size_t I, Value V) {
  switch (K) {
  case ScalarKind::I32: {
    int32_t X = static_cast<int32_t>(V.I);
    std::memcpy(Base + I * 4, &X, 4);
    break;
  }
  case ScalarKind::U32: {
    uint32_t X = static_cast<uint32_t>(V.I);
    std::memcpy(Base + I * 4, &X, 4);
    break;
  }
  case ScalarKind::I64:
  case ScalarKind::U64:
    std::memcpy(Base + I * 8, &V.I, 8);
    break;
  case ScalarKind::F32: {
    float X = static_cast<float>(V.F);
    std::memcpy(Base + I * 4, &X, 4);
    break;
  }
  case ScalarKind::F64:
    std::memcpy(Base + I * 8, &V.F, 8);
    break;
  case ScalarKind::Bool:
    Base[I] = static_cast<std::byte>(V.I ? 1 : 0);
    break;
  case ScalarKind::Unit:
    break;
  }
}

bool isFloatKind(ScalarKind K) {
  return K == ScalarKind::F32 || K == ScalarKind::F64;
}

//===----------------------------------------------------------------------===//
// Kernel execution
//===----------------------------------------------------------------------===//

/// First kernel fault of a launch. Pool workers set the flag and stop;
/// the host thread reads the message after launchProgram returns (by
/// then every worker has synchronized, so Msg is stable).
struct TrapState {
  std::atomic<bool> Tripped{false};
  std::mutex M;
  std::string Msg;
  bool Timedout = false; ///< first fault was a step-budget expiry

  void trip(const std::string &S, bool Timeout = false) {
    std::lock_guard<std::mutex> G(M);
    if (!Tripped.load(std::memory_order_relaxed)) {
      Msg = S;
      Timedout = Timeout;
    }
    Tripped.store(true, std::memory_order_release);
  }
  bool tripped() const { return Tripped.load(std::memory_order_relaxed); }
};

struct KernelEnv {
  const VmKernel &K;
  const std::vector<DevBuf> &Bufs;
  TrapState &Trap;
  uint64_t StepBudget = 0; ///< per-thread instruction cap (0 = unlimited)
};

/// Runs one code object for the current thread. Returns false if a trap
/// tripped (the caller abandons the launch). \p RetOut receives the
/// RetVal result for bound programs.
bool execCode(const Code &C, KernelEnv &E, sim::BlockCtx &B,
              const sim::ThreadCtx &T, std::vector<Value> &R,
              long long *RetOut) {
  const Instr *Ins = C.Instrs.data();
  const size_t N = C.Instrs.size();
  size_t PC = 0;

  auto Trap = [&](const std::string &Msg) {
    E.Trap.trip("in kernel `" + E.K.Name + "`: " + Msg);
    return false;
  };

  // The watchdog step budget: each thread's run of a code object may
  // retire at most Budget instructions. An infinite Jmp loop trips here
  // instead of hanging the pool worker forever.
  const uint64_t Budget = E.StepBudget;
  uint64_t Steps = 0;

  while (PC < N) {
    if (Budget && ++Steps > Budget) [[unlikely]] {
      E.Trap.trip("in kernel `" + E.K.Name + "`: step budget of " +
                      std::to_string(Budget) +
                      " instructions exceeded (watchdog steps=" +
                      std::to_string(Budget) + "); launch cancelled",
                  /*Timeout=*/true);
      return false;
    }
    const Instr &I = Ins[PC++];
    switch (I.K) {
    case Op::Const:
      R[I.A] = C.Consts[I.Imm];
      break;
    case Op::Coord: {
      long long V = 0;
      switch (I.Imm) {
      case 0: V = B.X; break;
      case 1: V = B.Y; break;
      case 2: V = B.Z; break;
      case 3: V = T.X; break;
      case 4: V = T.Y; break;
      case 5: V = T.Z; break;
      default: V = B.CurThread; break;
      }
      R[I.A].I = V;
      break;
    }
    case Op::Slot:
      R[I.A].I = B.loopVar(static_cast<unsigned>(I.Imm));
      break;
    case Op::Move:
      R[I.A] = R[I.B];
      break;

    case Op::LoadGlobal:
    case Op::StoreGlobal: {
      const DevBuf &D = E.Bufs[I.Imm];
      const bool Write = I.K == Op::StoreGlobal;
      long long Idx = R[I.B].I;
      // Replicates GpuDevice::Buffer<T>::load/store: count and log
      // first, then bounds-check. A negative index wraps to a huge
      // size_t exactly like the size_t parameter of Buffer::load would.
      if (B.Counters) [[unlikely]]
        B.Counters->countGlobal(Write);
      if (B.Dev->raceDetection()) [[unlikely]]
        B.Dev->logAccess(B, D.Id, static_cast<size_t>(Idx), Write);
      if (Idx < 0 || static_cast<size_t>(Idx) >= D.Count) {
        if (B.Dev->boundsChecking()) {
          B.Dev->logBounds(D.Id, static_cast<size_t>(Idx), D.Count);
          if (!Write)
            R[I.A] = Value{}; // Buffer::load returns T{} on OOB
          break;
        }
        // The generated C++ would fault undefined here; trap instead.
        return Trap("global buffer `" + E.K.Params[I.Imm].Name +
                    "` index " + std::to_string(Idx) +
                    " out of range [0, " + std::to_string(D.Count) + ")");
      }
      ScalarKind EK = static_cast<ScalarKind>(I.C);
      if (Write)
        storeElem(D.Data, EK, static_cast<size_t>(Idx), R[I.A]);
      else
        R[I.A] = loadElem(D.Data, EK, static_cast<size_t>(Idx));
      break;
    }

    case Op::LoadGlobal2:
    case Op::StoreGlobal2: {
      const DevBuf &D = E.Bufs[I.Imm];
      const bool Write = I.K == Op::StoreGlobal2;
      long long Idx = R[I.B].I;
      // Replicates Buffer<T>::load2/store2: ONE counted transaction for
      // the fused pair, both elements race-logged, bounds through Idx+1.
      if (B.Counters) [[unlikely]]
        B.Counters->countGlobal(Write);
      if (B.Dev->raceDetection()) [[unlikely]] {
        B.Dev->logAccess(B, D.Id, static_cast<size_t>(Idx), Write);
        B.Dev->logAccess(B, D.Id, static_cast<size_t>(Idx) + 1, Write);
      }
      if (Idx < 0 || static_cast<size_t>(Idx) + 1 >= D.Count) {
        if (B.Dev->boundsChecking()) {
          B.Dev->logBounds(D.Id, static_cast<size_t>(Idx) + 1, D.Count);
          if (!Write)
            R[I.A] = R[I.A + 1] = Value{};
          break;
        }
        return Trap("global buffer `" + E.K.Params[I.Imm].Name +
                    "` wide index " + std::to_string(Idx) +
                    " out of range [0, " + std::to_string(D.Count) + ")");
      }
      ScalarKind EK = static_cast<ScalarKind>(I.C);
      if (Write) {
        storeElem(D.Data, EK, static_cast<size_t>(Idx), R[I.A]);
        storeElem(D.Data, EK, static_cast<size_t>(Idx) + 1, R[I.A + 1]);
      } else {
        R[I.A] = loadElem(D.Data, EK, static_cast<size_t>(Idx));
        R[I.A + 1] = loadElem(D.Data, EK, static_cast<size_t>(Idx) + 1);
      }
      break;
    }

    case Op::LoadShared:
    case Op::StoreShared:
    case Op::LoadArena:
    case Op::StoreArena: {
      const bool Write = I.K == Op::StoreShared || I.K == Op::StoreArena;
      const bool Arena = I.K == Op::LoadArena || I.K == Op::StoreArena;
      ScalarKind EK = static_cast<ScalarKind>(I.C);
      const size_t ES = scalarSize(EK);
      long long Idx = R[I.B].I;
      size_t Base = static_cast<size_t>(I.Imm) + (Arena ? E.K.LocalsBase : 0);
      size_t Off = Base + static_cast<size_t>(Idx) * ES;
      // sharedLoad/sharedStore count and log the byte offset; arena
      // (spill) slots are per-thread-private and stay uncounted and
      // unlogged, like BlockCtx::shared.
      if (!Arena && B.Counters) [[unlikely]]
        B.Counters->countShared(Off, Write, B.CurThread);
      if (!Arena && B.Dev->raceDetection()) [[unlikely]]
        B.Dev->logAccess(B, B.SharedBufferId, Off, Write);
      if (Idx < 0 || Off + ES > B.SharedBytes || Off < Base)
        return Trap(std::string(Arena ? "arena" : "shared") +
                    " access at byte " + std::to_string(Off) +
                    " outside the block arena of " +
                    std::to_string(B.SharedBytes) + " bytes");
      if (Write)
        storeElem(B.SharedArena + Off, EK, 0, R[I.A]);
      else
        R[I.A] = loadElem(B.SharedArena + Off, EK, 0);
      break;
    }

    case Op::LoadShared2:
    case Op::StoreShared2: {
      const bool Write = I.K == Op::StoreShared2;
      ScalarKind EK = static_cast<ScalarKind>(I.C);
      const size_t ES = scalarSize(EK);
      long long Idx = R[I.B].I;
      size_t Base = static_cast<size_t>(I.Imm);
      size_t Off = Base + static_cast<size_t>(Idx) * ES;
      // Replicates sharedLoad2/sharedStore2: ONE counted transaction at
      // the first element's byte offset, both elements race-logged.
      if (B.Counters) [[unlikely]]
        B.Counters->countShared(Off, Write, B.CurThread);
      if (B.Dev->raceDetection()) [[unlikely]] {
        B.Dev->logAccess(B, B.SharedBufferId, Off, Write);
        B.Dev->logAccess(B, B.SharedBufferId, Off + ES, Write);
      }
      if (Idx < 0 || Off + 2 * ES > B.SharedBytes || Off < Base)
        return Trap("shared wide access at byte " + std::to_string(Off) +
                    " outside the block arena of " +
                    std::to_string(B.SharedBytes) + " bytes");
      if (Write) {
        storeElem(B.SharedArena + Off, EK, 0, R[I.A]);
        storeElem(B.SharedArena + Off + ES, EK, 0, R[I.A + 1]);
      } else {
        R[I.A] = loadElem(B.SharedArena + Off, EK, 0);
        R[I.A + 1] = loadElem(B.SharedArena + Off + ES, EK, 0);
      }
      break;
    }

#define INT_BIN(OPNAME, EXPR)                                                  \
  case Op::OPNAME: {                                                           \
    long long L = R[I.B].I, Rr = R[I.C].I;                                     \
    (void)L;                                                                   \
    (void)Rr;                                                                  \
    R[I.A].I = (EXPR);                                                         \
    break;                                                                     \
  }
      INT_BIN(AddI, L + Rr)
      INT_BIN(SubI, L - Rr)
      INT_BIN(MulI, L * Rr)
    case Op::DivI: {
      if (R[I.C].I == 0)
        return Trap("integer division by zero");
      R[I.A].I = R[I.B].I / R[I.C].I;
      break;
    }
    case Op::ModI: {
      if (R[I.C].I == 0)
        return Trap("integer modulo by zero");
      R[I.A].I = R[I.B].I % R[I.C].I;
      break;
    }
    case Op::PowI: {
      long long Bv = R[I.B].I, Ev = R[I.C].I;
      if (Ev < 0)
        return Trap("negative exponent in nat power");
      long long Acc = 1;
      for (long long K2 = 0; K2 != Ev; ++K2)
        Acc *= Bv;
      R[I.A].I = Acc;
      break;
    }

#define F64_BIN(OPNAME, OP)                                                    \
  case Op::OPNAME:                                                             \
    R[I.A].F = R[I.B].F OP R[I.C].F;                                           \
    break;
      F64_BIN(AddF, +)
      F64_BIN(SubF, -)
      F64_BIN(MulF, *)
      F64_BIN(DivF, /)

#define F32_BIN(OPNAME, OP)                                                    \
  case Op::OPNAME:                                                             \
    R[I.A].F = static_cast<double>(static_cast<float>(R[I.B].F)                \
                                       OP static_cast<float>(R[I.C].F));       \
    break;
      F32_BIN(AddF32, +)
      F32_BIN(SubF32, -)
      F32_BIN(MulF32, *)
      F32_BIN(DivF32, /)

#define CMP_I(OPNAME, OP)                                                      \
  case Op::OPNAME:                                                             \
    R[I.A].I = R[I.B].I OP R[I.C].I ? 1 : 0;                                   \
    break;
      CMP_I(LtI, <)
      CMP_I(LeI, <=)
      CMP_I(GtI, >)
      CMP_I(GeI, >=)
      CMP_I(EqI, ==)
      CMP_I(NeI, !=)

#define CMP_F(OPNAME, OP)                                                      \
  case Op::OPNAME:                                                             \
    R[I.A].I = R[I.B].F OP R[I.C].F ? 1 : 0;                                   \
    break;
      CMP_F(LtF, <)
      CMP_F(LeF, <=)
      CMP_F(GtF, >)
      CMP_F(GeF, >=)
      CMP_F(EqF, ==)
      CMP_F(NeF, !=)

    case Op::AndI:
      R[I.A].I = (R[I.B].I != 0 && R[I.C].I != 0) ? 1 : 0;
      break;
    case Op::OrI:
      R[I.A].I = (R[I.B].I != 0 || R[I.C].I != 0) ? 1 : 0;
      break;
    case Op::NotI:
      R[I.A].I = R[I.B].I == 0 ? 1 : 0;
      break;
    case Op::NegI:
      R[I.A].I = -R[I.B].I;
      break;
    case Op::NegF:
      R[I.A].F = -R[I.B].F;
      break;
    case Op::NegF32:
      R[I.A].F = static_cast<double>(-static_cast<float>(R[I.B].F));
      break;
    case Op::I2F:
      R[I.A].F = static_cast<double>(R[I.B].I);
      break;
    case Op::F2I:
      R[I.A].I = static_cast<long long>(R[I.B].F);
      break;
    case Op::F2F32:
      R[I.A].F = static_cast<double>(static_cast<float>(R[I.B].F));
      break;

    case Op::Jmp:
      PC = static_cast<size_t>(I.Imm);
      break;
    case Op::Jz:
      if (R[I.A].I == 0)
        PC = static_cast<size_t>(I.Imm);
      break;
    case Op::Ret:
      return true;
    case Op::RetVal:
      if (RetOut)
        *RetOut = R[I.A].I;
      return true;
    default:
      // Unreachable after validateKernel, but bytecode that dodged
      // validation (or a latent compiler bug) must trap, not fall into
      // undefined behavior.
      return Trap("invalid opcode " +
                  std::to_string(static_cast<unsigned>(I.K)) + " at pc " +
                  std::to_string(PC - 1) + " (corrupted bytecode?)");
    }
  }
  return true; // fell off the end: treated like Ret
}

#undef INT_BIN
#undef F64_BIN
#undef F32_BIN
#undef CMP_I
#undef CMP_F

//===----------------------------------------------------------------------===//
// Bytecode validation
//===----------------------------------------------------------------------===//

constexpr unsigned NumOps = static_cast<unsigned>(Op::RetVal) + 1;

/// Checks every instruction of \p C against its register file, constant
/// pool, jump range and the kernel's parameter schema. Returns the first
/// problem as text, empty when clean.
std::string validateCode(const Code &C, const VmKernel &K,
                         const char *What) {
  const size_t N = C.Instrs.size();
  for (size_t PC = 0; PC != N; ++PC) {
    const Instr &I = C.Instrs[PC];
    const unsigned OpV = static_cast<unsigned>(I.K);
    auto Bad = [&](const std::string &Why) {
      return std::string(What) + " of kernel `" + K.Name + "`, pc " +
             std::to_string(PC) + " (" +
             (OpV < NumOps ? opName(I.K) : "invalid") + "): " + Why;
    };
    if (OpV >= NumOps)
      return Bad("opcode " + std::to_string(OpV) + " out of range");

    // Register operands. Wide ops implicitly touch r[A+1].
    const bool Wide = I.K == Op::LoadGlobal2 || I.K == Op::StoreGlobal2 ||
                      I.K == Op::LoadShared2 || I.K == Op::StoreShared2;
    auto RegOk = [&](uint16_t Rg, bool WidePair = false) {
      return static_cast<unsigned>(Rg) + (WidePair ? 1u : 0u) < C.NumRegs;
    };
    auto ElemKindOk = [&] {
      return I.C <= static_cast<uint16_t>(ScalarKind::Unit);
    };
    auto JumpOk = [&] {
      // pc == Instrs.size() is a valid landing spot: the loop exits.
      return I.Imm >= 0 && static_cast<size_t>(I.Imm) <= N;
    };

    switch (I.K) {
    case Op::Const:
      if (!RegOk(I.A))
        return Bad("register r" + std::to_string(I.A) + " out of range (" +
                   std::to_string(C.NumRegs) + " registers)");
      if (I.Imm < 0 || static_cast<size_t>(I.Imm) >= C.Consts.size())
        return Bad("constant index " + std::to_string(I.Imm) +
                   " out of range (pool holds " +
                   std::to_string(C.Consts.size()) + ")");
      break;
    case Op::Coord:
      if (!RegOk(I.A))
        return Bad("register out of range");
      break;
    case Op::Slot:
      if (!RegOk(I.A))
        return Bad("register out of range");
      if (I.Imm < 0 ||
          static_cast<unsigned>(I.Imm) >= sim::BlockCtx::MaxLoopSlots)
        return Bad("loop slot " + std::to_string(I.Imm) +
                   " out of range (max " +
                   std::to_string(sim::BlockCtx::MaxLoopSlots) + ")");
      break;
    case Op::Move:
      if (!RegOk(I.A) || !RegOk(I.B))
        return Bad("register out of range");
      break;
    case Op::LoadGlobal:
    case Op::StoreGlobal:
    case Op::LoadGlobal2:
    case Op::StoreGlobal2:
      if (!RegOk(I.A, Wide) || !RegOk(I.B))
        return Bad("register out of range");
      if (I.Imm < 0 || static_cast<size_t>(I.Imm) >= K.Params.size())
        return Bad("buffer index " + std::to_string(I.Imm) +
                   " out of range (kernel has " +
                   std::to_string(K.Params.size()) + " parameters)");
      if (!ElemKindOk())
        return Bad("invalid element kind " + std::to_string(I.C));
      break;
    case Op::LoadShared:
    case Op::StoreShared:
    case Op::LoadArena:
    case Op::StoreArena:
    case Op::LoadShared2:
    case Op::StoreShared2:
      if (!RegOk(I.A, Wide) || !RegOk(I.B))
        return Bad("register out of range");
      if (I.Imm < 0)
        return Bad("negative shared-memory base offset " +
                   std::to_string(I.Imm));
      if (!ElemKindOk())
        return Bad("invalid element kind " + std::to_string(I.C));
      break;
    case Op::AddI:
    case Op::SubI:
    case Op::MulI:
    case Op::DivI:
    case Op::ModI:
    case Op::PowI:
    case Op::AddF:
    case Op::SubF:
    case Op::MulF:
    case Op::DivF:
    case Op::AddF32:
    case Op::SubF32:
    case Op::MulF32:
    case Op::DivF32:
    case Op::LtI:
    case Op::LeI:
    case Op::GtI:
    case Op::GeI:
    case Op::EqI:
    case Op::NeI:
    case Op::LtF:
    case Op::LeF:
    case Op::GtF:
    case Op::GeF:
    case Op::EqF:
    case Op::NeF:
    case Op::AndI:
    case Op::OrI:
      if (!RegOk(I.A) || !RegOk(I.B) || !RegOk(I.C))
        return Bad("register out of range");
      break;
    case Op::NotI:
    case Op::NegI:
    case Op::NegF:
    case Op::NegF32:
    case Op::I2F:
    case Op::F2I:
    case Op::F2F32:
      if (!RegOk(I.A) || !RegOk(I.B))
        return Bad("register out of range");
      break;
    case Op::Jmp:
      if (!JumpOk())
        return Bad("jump target " + std::to_string(I.Imm) +
                   " out of range [0, " + std::to_string(N) + "]");
      break;
    case Op::Jz:
      if (!RegOk(I.A))
        return Bad("register out of range");
      if (!JumpOk())
        return Bad("jump target " + std::to_string(I.Imm) +
                   " out of range [0, " + std::to_string(N) + "]");
      break;
    case Op::Ret:
      break;
    case Op::RetVal:
      if (!RegOk(I.A))
        return Bad("register out of range");
      break;
    }
  }
  return {};
}

std::string validateNodes(const std::vector<VmNode> &Nodes,
                          const VmKernel &K) {
  for (const VmNode &Nd : Nodes) {
    if (Nd.K == VmNode::Straight) {
      if (std::string E = validateCode(Nd.Body, K, "phase body");
          !E.empty())
        return E;
      continue;
    }
    if (Nd.Slot >= sim::BlockCtx::MaxLoopSlots)
      return "loop node of kernel `" + K.Name + "` uses slot " +
             std::to_string(Nd.Slot) + " (max " +
             std::to_string(sim::BlockCtx::MaxLoopSlots) + ")";
    if (std::string E = validateCode(Nd.Lo, K, "loop lower bound");
        !E.empty())
      return E;
    if (std::string E = validateCode(Nd.Hi, K, "loop upper bound");
        !E.empty())
      return E;
    if (std::string E = validateNodes(Nd.Children, K); !E.empty())
      return E;
  }
  return {};
}

long long evalBound(const Code &C, KernelEnv &E, const sim::BlockCtx &B) {
  if (E.Trap.tripped())
    return 0; // drains the remaining phase structure quickly
  std::vector<Value> R(C.NumRegs);
  long long Out = 0;
  sim::ThreadCtx T;
  execCode(C, E, const_cast<sim::BlockCtx &>(B), T, R, &Out);
  return E.Trap.tripped() ? 0 : Out;
}

void buildProgram(sim::PhaseProgram &Prog, const std::vector<VmNode> &Nodes,
                  KernelEnv &Env, sim::Dim3 Block) {
  for (const VmNode &N : Nodes) {
    if (N.K == VmNode::Straight) {
      const Code &Body = N.Body;
      // NOTE: the node's std::function is shared across parallel block
      // executions — all per-invocation state (the register file, the
      // thread loop) must live inside the call, never in the capture.
      Prog.straightBlock([&Env, &Body, Block](sim::BlockCtx &B) {
        if (Env.Trap.tripped())
          return;
        std::vector<Value> R(Body.NumRegs);
        sim::ThreadCtx T;
        for (T.Z = 0; T.Z < Block.Z; ++T.Z)
          for (T.Y = 0; T.Y < Block.Y; ++T.Y)
            for (T.X = 0; T.X < Block.X; ++T.X) {
              B.CurThread = (T.Z * Block.Y + T.Y) * Block.X + T.X;
              if (!execCode(Body, Env, B, T, R, nullptr))
                return;
            }
      });
      continue;
    }
    Prog.loopBegin(
        N.Slot,
        [&Env, &C = N.Lo](const sim::BlockCtx &B) {
          return evalBound(C, Env, B);
        },
        [&Env, &C = N.Hi](const sim::BlockCtx &B) {
          return evalBound(C, Env, B);
        });
    buildProgram(Prog, N.Children, Env, Block);
    Prog.loopEnd();
  }
}

//===----------------------------------------------------------------------===//
// Host execution
//===----------------------------------------------------------------------===//

/// Internal host-side failure; converted to a RunStatus at the public
/// entry point, never propagated past it.
struct HostError {
  std::string Msg;
};

[[noreturn]] void hostFail(std::string Msg) { throw HostError{std::move(Msg)}; }

struct HostEnv {
  sim::GpuDevice &Dev;
  const CompiledProgram &P;
};

long long asI(Value V, ScalarKind K) {
  return isFloatKind(K) ? static_cast<long long>(V.F) : V.I;
}
double asF(Value V, ScalarKind K) {
  return isFloatKind(K) ? V.F : static_cast<double>(V.I);
}

/// Re-classifies \p V (of kind \p From) as kind \p To with C++ cast
/// semantics; final storage narrowing (i32, f32 payloads) happens in
/// storeElem.
Value convertValue(Value V, ScalarKind From, ScalarKind To) {
  Value Out;
  if (isFloatKind(To)) {
    Out.F = asF(V, From);
    if (To == ScalarKind::F32)
      Out.F = static_cast<double>(static_cast<float>(Out.F));
  } else {
    Out.I = asI(V, From);
  }
  return Out;
}

Value evalHost(const HostExpr &E, const std::vector<HostVal> &Frame) {
  switch (E.K) {
  case HostExpr::Lit:
    return E.LitV;
  case HostExpr::Slot: {
    const HostVal &S = Frame[E.SlotIdx];
    if (S.K != HostVal::Scalar)
      hostFail("host expression reads a non-scalar frame slot");
    return S.V;
  }
  case HostExpr::Index: {
    const HostVal &S = Frame[E.SlotIdx];
    if (S.K != HostVal::Array || !S.Arr)
      hostFail("host expression indexes a non-array frame slot");
    Value IV = evalHost(*E.L, Frame);
    long long I = asI(IV, E.L->Ty);
    if (I < 0 || static_cast<size_t>(I) >= S.Arr->Count)
      hostFail("host array index " + std::to_string(I) +
               " out of range [0, " + std::to_string(S.Arr->Count) + ")");
    return loadElem(S.Arr->Bytes.data(), S.Arr->Elem,
                    static_cast<size_t>(I));
  }
  case HostExpr::Binary: {
    Value L = evalHost(*E.L, Frame);
    Value R = evalHost(*E.R, Frame);
    ScalarKind LK = E.L->Ty, RK = E.R->Ty;
    auto BO = static_cast<BinOpKind>(E.BO);
    Value Out;
    switch (BO) {
    case BinOpKind::And:
      Out.I = (asI(L, LK) != 0 && asI(R, RK) != 0) ? 1 : 0;
      return Out;
    case BinOpKind::Or:
      Out.I = (asI(L, LK) != 0 || asI(R, RK) != 0) ? 1 : 0;
      return Out;
    default:
      break;
    }
    bool FloatOp = isFloatKind(LK) || isFloatKind(RK);
    bool Cmp = BO == BinOpKind::Eq || BO == BinOpKind::Ne ||
               BO == BinOpKind::Lt || BO == BinOpKind::Le ||
               BO == BinOpKind::Gt || BO == BinOpKind::Ge;
    if (Cmp) {
      bool B2;
      if (FloatOp) {
        double A = asF(L, LK), C = asF(R, RK);
        B2 = BO == BinOpKind::Eq   ? A == C
             : BO == BinOpKind::Ne ? A != C
             : BO == BinOpKind::Lt ? A < C
             : BO == BinOpKind::Le ? A <= C
             : BO == BinOpKind::Gt ? A > C
                                   : A >= C;
      } else {
        long long A = asI(L, LK), C = asI(R, RK);
        B2 = BO == BinOpKind::Eq   ? A == C
             : BO == BinOpKind::Ne ? A != C
             : BO == BinOpKind::Lt ? A < C
             : BO == BinOpKind::Le ? A <= C
             : BO == BinOpKind::Gt ? A > C
                                   : A >= C;
      }
      Out.I = B2 ? 1 : 0;
      return Out;
    }
    if (FloatOp) {
      bool Narrow = E.Ty == ScalarKind::F32;
      double A = asF(L, LK), C = asF(R, RK);
      if (Narrow) {
        float Af = static_cast<float>(A), Cf = static_cast<float>(C);
        float X = BO == BinOpKind::Add   ? Af + Cf
                  : BO == BinOpKind::Sub ? Af - Cf
                  : BO == BinOpKind::Mul ? Af * Cf
                  : BO == BinOpKind::Div
                      ? Af / Cf
                      : (hostFail("float modulo in host code"), 0.0f);
        Out.F = static_cast<double>(X);
      } else {
        Out.F = BO == BinOpKind::Add   ? A + C
                : BO == BinOpKind::Sub ? A - C
                : BO == BinOpKind::Mul ? A * C
                : BO == BinOpKind::Div
                    ? A / C
                    : (hostFail("float modulo in host code"), 0.0);
      }
      return Out;
    }
    long long A = asI(L, LK), C = asI(R, RK);
    if ((BO == BinOpKind::Div || BO == BinOpKind::Mod) && C == 0)
      hostFail("integer division by zero in host code");
    Out.I = BO == BinOpKind::Add   ? A + C
            : BO == BinOpKind::Sub ? A - C
            : BO == BinOpKind::Mul ? A * C
            : BO == BinOpKind::Div ? A / C
                                   : A % C;
    return Out;
  }
  case HostExpr::Unary: {
    Value S = evalHost(*E.L, Frame);
    Value Out;
    if (static_cast<UnOpKind>(E.UO) == UnOpKind::Not) {
      Out.I = asI(S, E.L->Ty) == 0 ? 1 : 0;
      return Out;
    }
    if (isFloatKind(E.L->Ty)) {
      Out.F = -asF(S, E.L->Ty);
      if (E.L->Ty == ScalarKind::F32)
        Out.F = static_cast<double>(-static_cast<float>(S.F));
    } else {
      Out.I = -asI(S, E.L->Ty);
    }
    return Out;
  }
  }
  hostFail("unhandled host expression kind");
}

void execHostFn(HostEnv &E, const HostFnIR &Fn, std::vector<HostVal> Args,
                unsigned Depth);

void execHostStmts(HostEnv &E, const std::vector<HostStmt> &Stmts,
                   std::vector<HostVal> &Frame, unsigned Depth) {
  for (const HostStmt &S : Stmts) {
    switch (S.K) {
    case HostStmt::AllocHost: {
      auto Arr = std::make_shared<HostArray>();
      Arr->Elem = S.Elem;
      Arr->Count = S.Count;
      Arr->Bytes.resize(S.Count * scalarSize(S.Elem));
      Value Fill = convertValue(evalHost(*S.Fill, Frame), S.Fill->Ty, S.Elem);
      for (size_t I = 0; I != S.Count; ++I)
        storeElem(Arr->Bytes.data(), S.Elem, I, Fill);
      Frame[S.Dst] = HostVal::array(std::move(Arr));
      break;
    }
    case HostStmt::AllocCopy: {
      const HostVal &Src = Frame[S.Src];
      if (Src.K != HostVal::Array || !Src.Arr)
        hostFail("alloc_copy source is not a host array");
      DevBuf D = allocDev(E.Dev, Src.Arr->Elem, Src.Arr->Count);
      std::memcpy(D.Data, Src.Arr->Bytes.data(), Src.Arr->Bytes.size());
      Frame[S.Dst] = HostVal::dev(D);
      break;
    }
    case HostStmt::CopyToHost: {
      const HostVal &Dst = Frame[S.Dst];
      const HostVal &Src = Frame[S.Src];
      if (Dst.K != HostVal::Array || !Dst.Arr || Src.K != HostVal::Dev)
        hostFail("copy_mem_to_host: arguments have the wrong kinds");
      if (Dst.Arr->Count != Src.DevB.Count ||
          Dst.Arr->Elem != Src.DevB.Elem)
        hostFail("copy_mem_to_host: size mismatch"); // same text as rt::
      std::memcpy(Dst.Arr->Bytes.data(), Src.DevB.Data,
                  Dst.Arr->Bytes.size());
      break;
    }
    case HostStmt::CopyToGpu: {
      const HostVal &Dst = Frame[S.Dst];
      const HostVal &Src = Frame[S.Src];
      if (Dst.K != HostVal::Dev || Src.K != HostVal::Array || !Src.Arr)
        hostFail("copy_to_gpu: arguments have the wrong kinds");
      if (Dst.DevB.Count != Src.Arr->Count ||
          Dst.DevB.Elem != Src.Arr->Elem)
        hostFail("copy_to_gpu: size mismatch"); // same text as rt::
      std::memcpy(Dst.DevB.Data, Src.Arr->Bytes.data(),
                  Src.Arr->Bytes.size());
      break;
    }
    case HostStmt::Launch: {
      const VmKernel &K = E.P.Kernels[S.KernelIdx];
      std::vector<DevBuf> Bufs;
      for (unsigned Slot : S.ArgSlots) {
        if (Frame[Slot].K != HostVal::Dev)
          hostFail("launch argument is not a device buffer");
        Bufs.push_back(Frame[Slot].DevB);
      }
      RunStatus St = launchKernel(E.Dev, K, Bufs);
      if (!St.Ok)
        hostFail(St.Error);
      break;
    }
    case HostStmt::LetScalar:
    case HostStmt::Assign: {
      if (S.K == HostStmt::Assign && S.Idx) {
        HostVal &Dst = Frame[S.Dst];
        if (Dst.K != HostVal::Array || !Dst.Arr)
          hostFail("indexed assignment into a non-array slot");
        long long I = asI(evalHost(*S.Idx, Frame), S.Idx->Ty);
        if (I < 0 || static_cast<size_t>(I) >= Dst.Arr->Count)
          hostFail("host array index " + std::to_string(I) +
                   " out of range [0, " + std::to_string(Dst.Arr->Count) +
                   ")");
        Value V =
            convertValue(evalHost(*S.Fill, Frame), S.Fill->Ty, Dst.Arr->Elem);
        storeElem(Dst.Arr->Bytes.data(), Dst.Arr->Elem,
                  static_cast<size_t>(I), V);
        break;
      }
      Value V = convertValue(evalHost(*S.Fill, Frame), S.Fill->Ty, S.Elem);
      Frame[S.Dst] = HostVal::scalar(S.Elem, V);
      break;
    }
    case HostStmt::ForNat: {
      // Same trip semantics as the generated `for (V = Lo; V != Hi; ++V)`.
      for (long long V = S.Lo; V != S.Hi; ++V) {
        Value IV;
        IV.I = V;
        Frame[S.Dst] = HostVal::scalar(ScalarKind::I64, IV);
        execHostStmts(E, S.Body, Frame, Depth);
      }
      break;
    }
    case HostStmt::Call: {
      const HostFnIR &Callee = E.P.HostFns[S.CalleeIdx];
      std::vector<HostVal> Args;
      for (unsigned Slot : S.ArgSlots)
        Args.push_back(Frame[Slot]);
      execHostFn(E, Callee, std::move(Args), Depth + 1);
      break;
    }
    }
  }
}

void execHostFn(HostEnv &E, const HostFnIR &Fn, std::vector<HostVal> Args,
                unsigned Depth) {
  if (Depth > 64)
    hostFail("host call depth exceeds 64 (runaway recursion?)");
  if (Args.size() != Fn.Params.size())
    hostFail("host `" + Fn.Name + "` expects " +
             std::to_string(Fn.Params.size()) + " arguments, got " +
             std::to_string(Args.size()));
  for (size_t I = 0; I != Args.size(); ++I) {
    const HostFnIR::Param &P = Fn.Params[I];
    const HostVal &A = Args[I];
    switch (P.K) {
    case HostFnIR::Param::HostArr:
      if (A.K != HostVal::Array || !A.Arr || A.Arr->Elem != P.Elem ||
          A.Arr->Count != P.Count)
        hostFail("argument " + std::to_string(I) + " of host `" + Fn.Name +
                 "` must be a host array of " + std::to_string(P.Count) +
                 " x " + scalarKindName(P.Elem));
      break;
    case HostFnIR::Param::DevArr:
      if (A.K != HostVal::Dev || A.DevB.Elem != P.Elem ||
          A.DevB.Count != P.Count)
        hostFail("argument " + std::to_string(I) + " of host `" + Fn.Name +
                 "` must be a device buffer of " + std::to_string(P.Count) +
                 " x " + scalarKindName(P.Elem));
      break;
    case HostFnIR::Param::Scalar:
      if (A.K != HostVal::Scalar)
        hostFail("argument " + std::to_string(I) + " of host `" + Fn.Name +
                 "` must be a scalar");
      break;
    }
  }
  std::vector<HostVal> Frame(Fn.NumSlots);
  for (size_t I = 0; I != Args.size(); ++I)
    Frame[I] = std::move(Args[I]);
  execHostStmts(E, Fn.Body, Frame, Depth);
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

DevBuf vm::allocDev(sim::GpuDevice &Dev, ScalarKind Elem, size_t Count) {
  DevBuf D;
  D.Elem = Elem;
  D.Count = Count;
  D.Data = Dev.allocRaw(Count * scalarSize(Elem), D.Id);
  return D;
}

std::shared_ptr<HostArray> vm::makeHostArray(ScalarKind Elem, size_t Count,
                                             double Fill) {
  auto Arr = std::make_shared<HostArray>();
  Arr->Elem = Elem;
  Arr->Count = Count;
  Arr->Bytes.resize(Count * scalarSize(Elem));
  Value V;
  if (isFloatKind(Elem))
    V.F = Elem == ScalarKind::F32
              ? static_cast<double>(static_cast<float>(Fill))
              : Fill;
  else
    V.I = static_cast<long long>(Fill);
  for (size_t I = 0; I != Count; ++I)
    storeElem(Arr->Bytes.data(), Elem, I, V);
  return Arr;
}

RunStatus vm::validateKernel(const VmKernel &K) {
  if (std::string E = validateNodes(K.Nodes, K); !E.empty())
    return {false, "invalid bytecode: " + E};
  return {};
}

RunStatus vm::launchKernel(sim::GpuDevice &Dev, const VmKernel &K,
                           const std::vector<DevBuf> &Args) {
  // CUDA sticky-error semantics: a poisoned device rejects every launch
  // with the original error until GpuDevice::reset().
  if (Dev.poisoned()) {
    std::string Msg;
    sim::ErrorCode Code = Dev.getLastError(&Msg);
    return {false, "kernel `" + K.Name + "` not launched: device in error "
                   "state (" +
                       sim::errorCodeName(Code) + "): " + Msg};
  }
  if (Args.size() != K.Params.size())
    return {false, "kernel `" + K.Name + "` expects " +
                       std::to_string(K.Params.size()) + " buffers, got " +
                       std::to_string(Args.size())};
  for (size_t I = 0; I != Args.size(); ++I)
    if (Args[I].Elem != K.Params[I].Elem ||
        Args[I].Count != K.Params[I].Count)
      return {false, "kernel `" + K.Name + "` argument `" +
                         K.Params[I].Name + "` must be " +
                         std::to_string(K.Params[I].Count) + " x " +
                         scalarKindName(K.Params[I].Elem)};

  if (RunStatus V = validateKernel(K); !V.Ok)
    return V;

  TrapState Trap;
  KernelEnv Env{K, Args, Trap, Dev.watchdog().StepBudget};
  const uint64_t Seq0 = Dev.errorSeq();
  sim::PhaseProgram Prog;
  buildProgram(Prog, K.Nodes, Env, K.Block);
  // Synchronous, like every generated sim launch; phase numbering and
  // loopVar slots are maintained by launchProgram itself.
  sim::launchProgram(Dev, K.Grid, K.Block, K.ArenaBytes, Prog);
  if (Dev.countersEnabled()) {
    // Unlike generated C++ launches, the interpreter knows the kernel's
    // name and whether it faulted: tag the launch it just recorded.
    Dev.labelLastLaunch(K.Name);
    if (Trap.tripped())
      Dev.noteLaunchTraps(1);
  }
  if (Trap.tripped()) {
    // Workers have synchronized by now, so Msg/Timedout are stable. The
    // trap becomes the device's sticky error, like a CUDA kernel fault.
    Dev.setDeviceError(Trap.Timedout ? sim::ErrorCode::KernelTimeout
                                     : sim::ErrorCode::KernelTrap,
                       Trap.Msg);
    return {false, Trap.Msg};
  }
  if (Dev.errorSeq() != Seq0) {
    // The launch machinery itself failed under us (injected launch trap,
    // wall-clock watchdog): report the device's error, not success.
    std::string Msg;
    sim::ErrorCode Code = Dev.getLastError(&Msg);
    return {false, std::string(sim::errorCodeName(Code)) + ": " + Msg};
  }
  return {};
}

RunStatus vm::runHostFn(sim::GpuDevice &Dev, const CompiledProgram &P,
                        const HostFnIR &Fn, std::vector<HostVal> Args) {
  try {
    HostEnv E{Dev, P};
    execHostFn(E, Fn, std::move(Args), 0);
    return {};
  } catch (const HostError &H) {
    return {false, "in host `" + Fn.Name + "`: " + H.Msg};
  } catch (const std::exception &Ex) {
    return {false, std::string("internal error in host execution: ") +
                       Ex.what()};
  } catch (...) {
    return {false, "internal error in host execution"};
  }
}
