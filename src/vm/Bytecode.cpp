//===- vm/Bytecode.cpp - KIR -> bytecode compilation -------------------------===//
//
// The vm backend's compiler half: lowers every GPU kernel with the shared
// Lowerer (exactly like the sim backend, so geometry, arena layout and
// phase structure agree bit for bit with the generated headers), then
// translates each phase body / loop bound from typed kernel IR into
// register bytecode, and each cpu.thread function into the host-statement
// IR. Everything a launch needs is resolved here; the interpreter never
// sees a Nat or an AST node.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include "ast/Item.h"
#include "codegen/Lowerer.h"
#include "kir/KIR.h"

#include <cstring>
#include <limits>
#include <map>
#include <sstream>

using namespace descend;
using namespace descend::vm;

namespace {

/// Compile-time class of a register: which union member it holds and at
/// what precision arithmetic on it happens.
enum class VK { I64, F32, F64 };

VK vkOf(ScalarKind K) {
  switch (K) {
  case ScalarKind::F32:
    return VK::F32;
  case ScalarKind::F64:
    return VK::F64;
  default:
    return VK::I64;
  }
}

/// One enclosing PhaseLoop binding visible to the code being compiled.
struct LoopBinding {
  std::string Var;
  unsigned Slot;
};

/// Builds one Code object (a phase body or a loop bound). Registers are
/// SSA-ish: every value lands in a fresh register except named locals,
/// which keep one mutable register for their whole scope (Assign and the
/// For increment write through it).
class CodeBuilder {
public:
  CodeBuilder(const std::vector<LoopBinding> &Enclosing,
              const std::map<std::string, unsigned> &ParamIdx,
              bool AllowCoords)
      : Enclosing(Enclosing), ParamIdx(ParamIdx), AllowCoords(AllowCoords) {
    Scopes.emplace_back();
  }

  bool run(const std::vector<kir::Stmt> &Stmts, Code &Out) {
    if (!compileStmts(Stmts))
      return false;
    emit(Op::Ret, 0, 0, 0, 0);
    return finish(Out);
  }

  bool runBound(const Nat &N, Code &Out) {
    int R = compileNat(N);
    if (R < 0)
      return false;
    emit(Op::RetVal, static_cast<uint16_t>(R), 0, 0, 0);
    return finish(Out);
  }

  const std::string &error() const { return Err; }

private:
  struct LocalVar {
    int Reg = -1;
    VK Kind = VK::I64;
  };

  Code C;
  std::string Err;
  unsigned NextReg = 0;
  std::vector<std::map<std::string, LocalVar>> Scopes;
  const std::vector<LoopBinding> &Enclosing;
  const std::map<std::string, unsigned> &ParamIdx;
  bool AllowCoords;

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  int newReg() {
    if (NextReg > std::numeric_limits<uint16_t>::max()) {
      fail("phase body needs more than 65536 registers");
      return -1;
    }
    return static_cast<int>(NextReg++);
  }

  void emit(Op K, uint16_t A, uint16_t B, uint16_t CC, int32_t Imm) {
    C.Instrs.push_back(Instr{K, A, B, CC, Imm});
  }

  bool finish(Code &Out) {
    if (!Err.empty())
      return false;
    C.NumRegs = NextReg;
    Out = std::move(C);
    return true;
  }

  int addConst(Value V) {
    C.Consts.push_back(V);
    return static_cast<int>(C.Consts.size() - 1);
  }

  int constI(long long V) {
    int R = newReg();
    if (R < 0)
      return -1;
    Value CV;
    CV.I = V;
    emit(Op::Const, static_cast<uint16_t>(R), 0, 0, addConst(CV));
    return R;
  }

  int constF(double V) {
    int R = newReg();
    if (R < 0)
      return -1;
    Value CV;
    CV.F = V;
    emit(Op::Const, static_cast<uint16_t>(R), 0, 0, addConst(CV));
    return R;
  }

  LocalVar *lookupLocal(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It)
      if (auto Found = It->find(Name); Found != It->end())
        return &Found->second;
    return nullptr;
  }

  /// Coordinate index of a lowering variable, or -1.
  static int coordIndex(const std::string &Name) {
    static const char *Coords[7] = {"_bx", "_by", "_bz", "_tx",
                                    "_ty", "_tz", "_lin"};
    for (int I = 0; I != 7; ++I)
      if (Name == Coords[I])
        return I;
    return -1;
  }

  /// Compiles a Nat to an i64 register. Variables resolve, innermost
  /// first: local registers (LetIndex / For), enclosing PhaseLoop slots,
  /// then coordinates — the same visibility the printed C++ has.
  int compileNat(const Nat &N) {
    if (N.isNull()) {
      fail("null nat expression");
      return -1;
    }
    switch (N.kind()) {
    case NatKind::Lit:
      return constI(N.litValue());
    case NatKind::Var: {
      const std::string &Name = N.varName();
      if (const LocalVar *L = lookupLocal(Name)) {
        if (L->Kind != VK::I64) {
          fail("nat variable `" + Name + "` is bound to a non-integer local");
          return -1;
        }
        return L->Reg;
      }
      for (auto It = Enclosing.rbegin(); It != Enclosing.rend(); ++It)
        if (It->Var == Name) {
          int R = newReg();
          if (R < 0)
            return -1;
          emit(Op::Slot, static_cast<uint16_t>(R), 0, 0,
               static_cast<int32_t>(It->Slot));
          return R;
        }
      if (int CI = coordIndex(Name); CI >= 0) {
        if (!AllowCoords) {
          fail("coordinate `" + Name + "` used in a host-side loop bound");
          return -1;
        }
        int R = newReg();
        if (R < 0)
          return -1;
        emit(Op::Coord, static_cast<uint16_t>(R), 0, 0, CI);
        return R;
      }
      fail("unbound nat variable `" + Name + "` (pass -D to instantiate)");
      return -1;
    }
    case NatKind::Add:
    case NatKind::Sub:
    case NatKind::Mul:
    case NatKind::Div:
    case NatKind::Mod:
    case NatKind::Pow: {
      int L = compileNat(N.lhs());
      int R = compileNat(N.rhs());
      if (L < 0 || R < 0)
        return -1;
      Op O;
      switch (N.kind()) {
      case NatKind::Add:
        O = Op::AddI;
        break;
      case NatKind::Sub:
        O = Op::SubI;
        break;
      case NatKind::Mul:
        O = Op::MulI;
        break;
      case NatKind::Div:
        O = Op::DivI;
        break;
      case NatKind::Mod:
        O = Op::ModI;
        break;
      default:
        O = Op::PowI;
        break;
      }
      int D = newReg();
      if (D < 0)
        return -1;
      emit(O, static_cast<uint16_t>(D), static_cast<uint16_t>(L),
           static_cast<uint16_t>(R), 0);
      return D;
    }
    }
    fail("unhandled nat kind");
    return -1;
  }

  /// Inserts the conversion instructions turning \p R (kind \p From) into
  /// kind \p To with C++ cast semantics: int -> float narrows through
  /// `float` when the target is f32, float -> int truncates.
  int convert(int R, VK From, VK To) {
    if (R < 0 || From == To)
      return R;
    // F32 registers hold their value as an exact double, so widening to
    // F64 is a re-classification, not an instruction.
    if (From == VK::F32 && To == VK::F64)
      return R;
    int D = newReg();
    if (D < 0)
      return -1;
    if (From == VK::I64) {
      emit(Op::I2F, static_cast<uint16_t>(D), static_cast<uint16_t>(R), 0, 0);
      if (To == VK::F32) {
        int D2 = newReg();
        if (D2 < 0)
          return -1;
        emit(Op::F2F32, static_cast<uint16_t>(D2), static_cast<uint16_t>(D),
             0, 0);
        return D2;
      }
      return D;
    }
    if (To == VK::I64) {
      emit(Op::F2I, static_cast<uint16_t>(D), static_cast<uint16_t>(R), 0, 0);
      return D;
    }
    // F64 -> F32.
    emit(Op::F2F32, static_cast<uint16_t>(D), static_cast<uint16_t>(R), 0, 0);
    return D;
  }

  static VK promote(VK A, VK B) {
    if (A == VK::F64 || B == VK::F64)
      return VK::F64;
    if (A == VK::F32 || B == VK::F32)
      return VK::F32;
    return VK::I64;
  }

  struct RV {
    int Reg = -1;
    VK Kind = VK::I64;
    bool ok() const { return Reg >= 0; }
  };

  int memByteBase(const kir::MemRef &Ref) {
    if (Ref.ByteBase >
        static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
      fail("arena offset of `" + Ref.Name + "` exceeds the bytecode range");
      return -1;
    }
    return static_cast<int>(Ref.ByteBase);
  }

  RV compileLoad(const kir::MemRef &Ref, const Nat &Index) {
    int Idx = compileNat(Index);
    int D = newReg();
    if (Idx < 0 || D < 0)
      return {};
    uint16_t EK = static_cast<uint16_t>(Ref.Elem);
    switch (Ref.Space) {
    case kir::MemSpace::Global: {
      auto It = ParamIdx.find(Ref.Name);
      if (It == ParamIdx.end()) {
        fail("unknown global buffer `" + Ref.Name + "`");
        return {};
      }
      emit(Op::LoadGlobal, static_cast<uint16_t>(D),
           static_cast<uint16_t>(Idx), EK, static_cast<int32_t>(It->second));
      break;
    }
    case kir::MemSpace::Shared: {
      int Base = memByteBase(Ref);
      if (Base < 0)
        return {};
      emit(Op::LoadShared, static_cast<uint16_t>(D),
           static_cast<uint16_t>(Idx), EK, Base);
      break;
    }
    case kir::MemSpace::Arena: {
      int Base = memByteBase(Ref);
      if (Base < 0)
        return {};
      emit(Op::LoadArena, static_cast<uint16_t>(D),
           static_cast<uint16_t>(Idx), EK, Base);
      break;
    }
    }
    return {D, vkOf(Ref.Elem)};
  }

  bool compileStore(const kir::MemRef &Ref, const Nat &Index,
                    const kir::Expr &Value) {
    int Idx = compileNat(Index);
    RV V = compileExpr(Value);
    if (Idx < 0 || !V.ok())
      return false;
    int R = convert(V.Reg, V.Kind, vkOf(Ref.Elem));
    if (R < 0)
      return false;
    uint16_t EK = static_cast<uint16_t>(Ref.Elem);
    switch (Ref.Space) {
    case kir::MemSpace::Global: {
      auto It = ParamIdx.find(Ref.Name);
      if (It == ParamIdx.end())
        return fail("unknown global buffer `" + Ref.Name + "`");
      emit(Op::StoreGlobal, static_cast<uint16_t>(R),
           static_cast<uint16_t>(Idx), EK, static_cast<int32_t>(It->second));
      return true;
    }
    case kir::MemSpace::Shared: {
      int Base = memByteBase(Ref);
      if (Base < 0)
        return false;
      emit(Op::StoreShared, static_cast<uint16_t>(R),
           static_cast<uint16_t>(Idx), EK, Base);
      return true;
    }
    case kir::MemSpace::Arena: {
      int Base = memByteBase(Ref);
      if (Base < 0)
        return false;
      emit(Op::StoreArena, static_cast<uint16_t>(R),
           static_cast<uint16_t>(Idx), EK, Base);
      return true;
    }
    }
    return fail("unhandled memory space");
  }

  /// Wide (two-element) load: r[D], r[D+1] = buf[idx], buf[idx+1] as one
  /// issued transaction. Returns the first register (second is D+1) or -1.
  int compileLoad2(const kir::MemRef &Ref, const Nat &Index) {
    int Idx = compileNat(Index);
    int D0 = newReg();
    int D1 = newReg(); // adjacent by construction
    if (Idx < 0 || D0 < 0 || D1 < 0)
      return -1;
    uint16_t EK = static_cast<uint16_t>(Ref.Elem);
    switch (Ref.Space) {
    case kir::MemSpace::Global: {
      auto It = ParamIdx.find(Ref.Name);
      if (It == ParamIdx.end()) {
        fail("unknown global buffer `" + Ref.Name + "`");
        return -1;
      }
      emit(Op::LoadGlobal2, static_cast<uint16_t>(D0),
           static_cast<uint16_t>(Idx), EK, static_cast<int32_t>(It->second));
      return D0;
    }
    case kir::MemSpace::Shared: {
      int Base = memByteBase(Ref);
      if (Base < 0)
        return -1;
      emit(Op::LoadShared2, static_cast<uint16_t>(D0),
           static_cast<uint16_t>(Idx), EK, Base);
      return D0;
    }
    case kir::MemSpace::Arena:
      break;
    }
    fail("wide access to the per-thread arena");
    return -1;
  }

  bool compileStore2(const kir::MemRef &Ref, const Nat &Index,
                     const kir::Expr &V0, const kir::Expr &V1) {
    int Idx = compileNat(Index);
    RV A = compileExpr(V0);
    RV B = compileExpr(V1);
    if (Idx < 0 || !A.ok() || !B.ok())
      return false;
    int R0 = convert(A.Reg, A.Kind, vkOf(Ref.Elem));
    int R1 = convert(B.Reg, B.Kind, vkOf(Ref.Elem));
    // The wide-store operands live in adjacent registers (A, A+1).
    int D0 = newReg();
    int D1 = newReg();
    if (R0 < 0 || R1 < 0 || D0 < 0 || D1 < 0)
      return false;
    emit(Op::Move, static_cast<uint16_t>(D0), static_cast<uint16_t>(R0), 0, 0);
    emit(Op::Move, static_cast<uint16_t>(D1), static_cast<uint16_t>(R1), 0, 0);
    uint16_t EK = static_cast<uint16_t>(Ref.Elem);
    switch (Ref.Space) {
    case kir::MemSpace::Global: {
      auto It = ParamIdx.find(Ref.Name);
      if (It == ParamIdx.end())
        return fail("unknown global buffer `" + Ref.Name + "`");
      emit(Op::StoreGlobal2, static_cast<uint16_t>(D0),
           static_cast<uint16_t>(Idx), EK, static_cast<int32_t>(It->second));
      return true;
    }
    case kir::MemSpace::Shared: {
      int Base = memByteBase(Ref);
      if (Base < 0)
        return false;
      emit(Op::StoreShared2, static_cast<uint16_t>(D0),
           static_cast<uint16_t>(Idx), EK, Base);
      return true;
    }
    case kir::MemSpace::Arena:
      break;
    }
    return fail("wide access to the per-thread arena");
  }

  RV compileExpr(const kir::Expr &E) {
    switch (E.K) {
    case kir::ExprKind::NatVal:
      return {compileNat(E.N), VK::I64};
    case kir::ExprKind::IntLit:
      return {constI(E.IntVal), VK::I64};
    case kir::ExprKind::FloatLit: {
      VK K = vkOf(E.Scalar);
      double V = K == VK::F32 ? static_cast<double>(
                                    static_cast<float>(E.FloatVal))
                              : E.FloatVal;
      return {constF(V), K};
    }
    case kir::ExprKind::BoolLit:
      return {constI(E.BoolVal ? 1 : 0), VK::I64};
    case kir::ExprKind::UnitLit:
      return {constI(0), VK::I64};
    case kir::ExprKind::VarRef: {
      const LocalVar *L = lookupLocal(E.Name);
      if (!L) {
        fail("reference to undefined local `" + E.Name + "`");
        return {};
      }
      return {L->Reg, L->Kind};
    }
    case kir::ExprKind::Load:
      return compileLoad(E.Ref, E.Index);
    case kir::ExprKind::Binary:
      return compileBinary(E);
    case kir::ExprKind::Unary: {
      RV S = compileExpr(*E.Sub);
      if (!S.ok())
        return {};
      int D = newReg();
      if (D < 0)
        return {};
      if (E.UO == kir::UnOp::Not) {
        int R = convert(S.Reg, S.Kind, VK::I64);
        emit(Op::NotI, static_cast<uint16_t>(D), static_cast<uint16_t>(R), 0,
             0);
        return {D, VK::I64};
      }
      Op O = S.Kind == VK::I64
                 ? Op::NegI
                 : (S.Kind == VK::F32 ? Op::NegF32 : Op::NegF);
      emit(O, static_cast<uint16_t>(D), static_cast<uint16_t>(S.Reg), 0, 0);
      return {D, S.Kind};
    }
    }
    fail("unhandled expression kind");
    return {};
  }

  RV compileBinary(const kir::Expr &E) {
    RV L = compileExpr(*E.Lhs);
    RV R = compileExpr(*E.Rhs);
    if (!L.ok() || !R.ok())
      return {};

    using kir::BinOp;
    if (E.BO == BinOp::And || E.BO == BinOp::Or) {
      int LR = convert(L.Reg, L.Kind, VK::I64);
      int RR = convert(R.Reg, R.Kind, VK::I64);
      int D = newReg();
      if (LR < 0 || RR < 0 || D < 0)
        return {};
      emit(E.BO == BinOp::And ? Op::AndI : Op::OrI, static_cast<uint16_t>(D),
           static_cast<uint16_t>(LR), static_cast<uint16_t>(RR), 0);
      return {D, VK::I64};
    }

    bool IsCmp = E.BO == BinOp::Eq || E.BO == BinOp::Ne ||
                 E.BO == BinOp::Lt || E.BO == BinOp::Le ||
                 E.BO == BinOp::Gt || E.BO == BinOp::Ge;
    VK K = promote(L.Kind, R.Kind);
    // Comparisons of mixed int/float promote the int side; f32 values are
    // exact doubles, so the double comparison matches the float one.
    VK OpK = IsCmp && K == VK::F32 ? VK::F64 : K;
    int LR = convert(L.Reg, L.Kind, IsCmp ? OpK : K);
    int RR = convert(R.Reg, R.Kind, IsCmp ? OpK : K);
    int D = newReg();
    if (LR < 0 || RR < 0 || D < 0)
      return {};

    Op O;
    bool F = (IsCmp ? OpK : K) != VK::I64;
    switch (E.BO) {
    case BinOp::Add:
      O = K == VK::I64 ? Op::AddI : (K == VK::F32 ? Op::AddF32 : Op::AddF);
      break;
    case BinOp::Sub:
      O = K == VK::I64 ? Op::SubI : (K == VK::F32 ? Op::SubF32 : Op::SubF);
      break;
    case BinOp::Mul:
      O = K == VK::I64 ? Op::MulI : (K == VK::F32 ? Op::MulF32 : Op::MulF);
      break;
    case BinOp::Div:
      O = K == VK::I64 ? Op::DivI : (K == VK::F32 ? Op::DivF32 : Op::DivF);
      break;
    case BinOp::Mod:
      if (K != VK::I64) {
        fail("floating-point modulo is not supported in kernel code");
        return {};
      }
      O = Op::ModI;
      break;
    case BinOp::Eq:
      O = F ? Op::EqF : Op::EqI;
      break;
    case BinOp::Ne:
      O = F ? Op::NeF : Op::NeI;
      break;
    case BinOp::Lt:
      O = F ? Op::LtF : Op::LtI;
      break;
    case BinOp::Le:
      O = F ? Op::LeF : Op::LeI;
      break;
    case BinOp::Gt:
      O = F ? Op::GtF : Op::GtI;
      break;
    case BinOp::Ge:
      O = F ? Op::GeF : Op::GeI;
      break;
    default:
      fail("unhandled binary operator");
      return {};
    }
    emit(O, static_cast<uint16_t>(D), static_cast<uint16_t>(LR),
         static_cast<uint16_t>(RR), 0);
    return {D, IsCmp ? VK::I64 : K};
  }

  /// Binds \p Name to a fresh mutable register holding \p V.
  bool bindLocal(const std::string &Name, RV V, VK DeclKind) {
    int R = convert(V.Reg, V.Kind, DeclKind);
    int Slot = newReg();
    if (R < 0 || Slot < 0)
      return false;
    emit(Op::Move, static_cast<uint16_t>(Slot), static_cast<uint16_t>(R), 0,
         0);
    Scopes.back()[Name] = LocalVar{Slot, DeclKind};
    return true;
  }

  bool compileStmts(const std::vector<kir::Stmt> &Stmts) {
    for (const kir::Stmt &S : Stmts)
      if (!compileStmt(S))
        return false;
    return true;
  }

  bool compileStmt(const kir::Stmt &S) {
    switch (S.K) {
    case kir::StmtKind::Let: {
      if (S.Width == 2) {
        if (!S.Value || S.Value->K != kir::ExprKind::Load || S.Name2.empty())
          return fail("wide let `" + S.Name + "` that is not a two-target "
                      "load");
        int D0 = compileLoad2(S.Value->Ref, S.Value->Index);
        if (D0 < 0)
          return false;
        VK K = vkOf(S.Value->Ref.Elem);
        return bindLocal(S.Name, RV{D0, K}, vkOf(S.Elem)) &&
               bindLocal(S.Name2, RV{D0 + 1, K}, vkOf(S.Elem));
      }
      RV V = compileExpr(*S.Value);
      if (!V.ok())
        return false;
      return bindLocal(S.Name, V, vkOf(S.Elem));
    }
    case kir::StmtKind::LetIndex: {
      int R = compileNat(S.Index);
      if (R < 0)
        return false;
      return bindLocal(S.Name, RV{R, VK::I64}, VK::I64);
    }
    case kir::StmtKind::Assign: {
      LocalVar *L = lookupLocal(S.Name);
      if (!L)
        return fail("assignment to undefined local `" + S.Name + "`");
      RV V = compileExpr(*S.Value);
      if (!V.ok())
        return false;
      int R = convert(V.Reg, V.Kind, L->Kind);
      if (R < 0)
        return false;
      emit(Op::Move, static_cast<uint16_t>(L->Reg), static_cast<uint16_t>(R),
           0, 0);
      return true;
    }
    case kir::StmtKind::Store:
      if (S.Width == 2) {
        if (!S.Value || !S.Value2)
          return fail("wide store without both values");
        return compileStore2(S.Ref, S.Index, *S.Value, *S.Value2);
      }
      return compileStore(S.Ref, S.Index, *S.Value);
    case kir::StmtKind::If: {
      int L = compileNat(S.CondL);
      int R = compileNat(S.CondR);
      int Cond = newReg();
      if (L < 0 || R < 0 || Cond < 0)
        return false;
      emit(Op::LtI, static_cast<uint16_t>(Cond), static_cast<uint16_t>(L),
           static_cast<uint16_t>(R), 0);
      size_t JzAt = C.Instrs.size();
      emit(Op::Jz, static_cast<uint16_t>(Cond), 0, 0, 0);
      Scopes.emplace_back();
      bool Ok = compileStmts(S.Then);
      Scopes.pop_back();
      if (!Ok)
        return false;
      if (!S.Else.empty()) {
        size_t JmpAt = C.Instrs.size();
        emit(Op::Jmp, 0, 0, 0, 0);
        C.Instrs[JzAt].Imm = static_cast<int32_t>(C.Instrs.size());
        Scopes.emplace_back();
        Ok = compileStmts(S.Else);
        Scopes.pop_back();
        if (!Ok)
          return false;
        C.Instrs[JmpAt].Imm = static_cast<int32_t>(C.Instrs.size());
      } else {
        C.Instrs[JzAt].Imm = static_cast<int32_t>(C.Instrs.size());
      }
      return true;
    }
    case kir::StmtKind::For: {
      Scopes.emplace_back();
      int Lo = compileNat(S.Lo);
      if (Lo < 0)
        return false;
      if (!bindLocal(S.Name, RV{Lo, VK::I64}, VK::I64))
        return false;
      int Var = lookupLocal(S.Name)->Reg;
      int Hi = compileNat(S.Hi); // loop-invariant: hoisted
      int One = constI(1);
      int Cond = newReg();
      if (Hi < 0 || One < 0 || Cond < 0)
        return false;
      size_t Top = C.Instrs.size();
      emit(Op::LtI, static_cast<uint16_t>(Cond), static_cast<uint16_t>(Var),
           static_cast<uint16_t>(Hi), 0);
      size_t JzAt = C.Instrs.size();
      emit(Op::Jz, static_cast<uint16_t>(Cond), 0, 0, 0);
      bool Ok = compileStmts(S.Body);
      if (!Ok)
        return false;
      emit(Op::AddI, static_cast<uint16_t>(Var), static_cast<uint16_t>(Var),
           static_cast<uint16_t>(One), 0);
      emit(Op::Jmp, 0, 0, 0, static_cast<int32_t>(Top));
      C.Instrs[JzAt].Imm = static_cast<int32_t>(C.Instrs.size());
      Scopes.pop_back();
      return true;
    }
    case kir::StmtKind::Barrier:
      // Sim-target phase bodies never contain barriers: the phase boundary
      // is the barrier. Reaching one means the IR is malformed.
      return fail("barrier statement inside a phase body");
    }
    return fail("unhandled statement kind");
  }
};

//===----------------------------------------------------------------------===//
// Kernel compilation
//===----------------------------------------------------------------------===//

bool compileNodes(const std::vector<codegen::PhaseNode> &Nodes,
                  std::vector<LoopBinding> &Enclosing,
                  const std::map<std::string, unsigned> &ParamIdx,
                  std::vector<VmNode> &Out, unsigned &StraightPhases,
                  std::string &Err) {
  for (const codegen::PhaseNode &N : Nodes) {
    VmNode V;
    if (N.K == codegen::PhaseNode::Straight) {
      V.K = VmNode::Straight;
      CodeBuilder B(Enclosing, ParamIdx, /*AllowCoords=*/true);
      if (!B.run(N.Body, V.Body)) {
        Err = B.error();
        return false;
      }
      ++StraightPhases;
      Out.push_back(std::move(V));
      continue;
    }
    V.K = VmNode::Loop;
    V.Slot = N.Slot;
    {
      CodeBuilder BL(Enclosing, ParamIdx, /*AllowCoords=*/false);
      if (!BL.runBound(N.Lo, V.Lo)) {
        Err = BL.error();
        return false;
      }
      CodeBuilder BH(Enclosing, ParamIdx, /*AllowCoords=*/false);
      if (!BH.runBound(N.Hi, V.Hi)) {
        Err = BH.error();
        return false;
      }
    }
    Enclosing.push_back(LoopBinding{N.Var, N.Slot});
    bool Ok = compileNodes(N.Children, Enclosing, ParamIdx, V.Children,
                           StraightPhases, Err);
    Enclosing.pop_back();
    if (!Ok)
      return false;
    Out.push_back(std::move(V));
  }
  return true;
}

bool compileKernel(const Module &M, const FnDef &Fn,
                   const kir::PassConfig &Passes, VmKernel &K,
                   std::string &Err) {
  codegen::Lowerer L(M, codegen::LowerTarget::Sim, Passes);
  if (!L.runKernel(Fn)) {
    Err = "while lowering `" + Fn.Name + "`: " + L.Error;
    return false;
  }
  if (L.Program.maxLoopDepth() > sim::BlockCtx::MaxLoopSlots) {
    Err = "while lowering `" + Fn.Name + "`: phase loops nest deeper than "
          "the simulator's " +
          std::to_string(sim::BlockCtx::MaxLoopSlots) + " slots";
    return false;
  }

  K.Name = Fn.Name;
  auto DimOf = [&](const Dim &D, sim::Dim3 &Out) -> bool {
    auto Get = [&](Axis A, unsigned &V) -> bool {
      if (!D.hasAxis(A)) {
        V = 1;
        return true;
      }
      auto E = D.extent(A).simplified().evaluate({});
      if (!E) {
        Err = "launch dimension `" + D.extent(A).str() + "` of `" + Fn.Name +
              "` is not instantiated (pass -D)";
        return false;
      }
      V = static_cast<unsigned>(*E);
      return true;
    };
    return Get(Axis::X, Out.X) && Get(Axis::Y, Out.Y) && Get(Axis::Z, Out.Z);
  };
  if (!DimOf(Fn.Exec.GridDim, K.Grid) || !DimOf(Fn.Exec.BlockDim, K.Block))
    return false;

  unsigned Threads = K.Block.total();
  K.SharedBytes = L.SharedBytes;
  K.LocalsBase = (L.SharedBytes + 7) & ~size_t(7);
  K.ArenaBytes = K.LocalsBase + L.LocalBytesPerThread * Threads;

  std::map<std::string, unsigned> ParamIdx;
  for (const FnParam &P : Fn.Params) {
    const auto *Ref = dyn_cast<RefType>(P.Ty.get());
    std::vector<Nat> Dims;
    ScalarKind Elem = ScalarKind::F64;
    if (!Ref || !codegen::arrayNest(Ref->Pointee, Dims, Elem)) {
      Err = "unsupported kernel parameter type `" + P.Ty->str() + "` of `" +
            Fn.Name + "`";
      return false;
    }
    Nat Count = Nat::lit(1);
    for (const Nat &D : Dims)
      Count = Count * D;
    auto CV = Count.simplified().evaluate({});
    if (!CV) {
      Err = "parameter `" + P.Name + "` of `" + Fn.Name + "` has size `" +
            Count.simplified().str() + "` that is not instantiated (pass -D)";
      return false;
    }
    VmKernel::Param KP;
    KP.Name = P.Name;
    KP.Elem = Elem;
    KP.Count = static_cast<size_t>(*CV);
    ParamIdx[P.Name] = static_cast<unsigned>(K.Params.size());
    K.Params.push_back(std::move(KP));
  }

  std::vector<LoopBinding> Enclosing;
  std::string NodeErr;
  if (!compileNodes(L.Program.Nodes, Enclosing, ParamIdx, K.Nodes,
                    K.StraightPhases, NodeErr)) {
    Err = "while compiling `" + Fn.Name + "`: " + NodeErr;
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Host-function compilation
//===----------------------------------------------------------------------===//

/// The same promotion lattice CodeBuilder applies to kernel expressions,
/// shared with the host compiler.
VK promoteVK(VK A, VK B) {
  if (A == VK::F64 || B == VK::F64)
    return VK::F64;
  if (A == VK::F32 || B == VK::F32)
    return VK::F32;
  return VK::I64;
}

/// Compiles the hostgen-accepted host fragment (see hostgen/HostGen.cpp —
/// the generated C++ this must agree with) into HostStmt trees. Same
/// acceptance rules, same diagnostics style; sizes must be instantiated
/// because there is no later compiler to defer to.
class HostCompiler {
public:
  HostCompiler(const Module &M, const FnDef &Fn,
               const std::vector<VmKernel> &Kernels,
               const std::map<std::string, unsigned> &HostIdx)
      : M(M), Fn(Fn), Kernels(Kernels), HostIdx(HostIdx) {}

  bool run(HostFnIR &Out, std::string &Err);

private:
  struct HVar {
    HostFnIR::Param::Kind K = HostFnIR::Param::Scalar;
    bool LoopVar = false;
    ScalarKind Elem = ScalarKind::F64;
    size_t Count = 0;
    unsigned Slot = 0;
  };

  const Module &M;
  const FnDef &Fn;
  const std::vector<VmKernel> &Kernels;
  const std::map<std::string, unsigned> &HostIdx;

  HostFnIR R;
  std::string Error;
  std::vector<std::map<std::string, HVar>> Scopes;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  unsigned newSlot() { return R.NumSlots++; }

  void bind(const std::string &Name, HVar V) { Scopes.back()[Name] = V; }

  const HVar *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It)
      if (auto Found = It->find(Name); Found != It->end())
        return &Found->second;
    return nullptr;
  }

  std::optional<size_t> natSize(const Nat &N, const char *What) {
    auto V = N.simplified().evaluate({});
    if (!V || *V < 0) {
      fail(std::string(What) + " `" + N.simplified().str() +
           "` is not instantiated (pass -D)");
      return std::nullopt;
    }
    return static_cast<size_t>(*V);
  }

  static std::string argVar(const Expr &E) {
    const Expr *Inner = &E;
    if (const auto *B = dyn_cast<BorrowExpr>(Inner))
      Inner = B->Place.get();
    if (const auto *P = dyn_cast<PlaceExpr>(Inner))
      return P->rootVar();
    return "";
  }

  std::unique_ptr<HostExpr> compileExpr(const Expr &E);
  std::unique_ptr<HostExpr> compilePlaceRead(const PlaceExpr &P);
  bool compilePlaceTarget(const PlaceExpr &P, unsigned &Slot,
                          std::unique_ptr<HostExpr> &Idx, ScalarKind &Elem);

  bool compileParams();
  bool compileBlock(const BlockExpr &Blk, std::vector<HostStmt> &Out);
  bool compileStmt(const Expr &E, std::vector<HostStmt> &Out);
  bool compileLet(const LetExpr &L, std::vector<HostStmt> &Out);
  bool compileAllocCall(const CallExpr &C, const std::string &Let,
                        std::vector<HostStmt> &Out);
  bool compileCall(const CallExpr &C, std::vector<HostStmt> &Out);
  bool compileLaunch(const CallExpr &C, std::vector<HostStmt> &Out);
  bool compileForNat(const ForNatExpr &F, std::vector<HostStmt> &Out);
};

bool HostCompiler::compileParams() {
  if (Fn.RetTy && !DataType::equal(Fn.RetTy, makeUnit()))
    return fail("host functions must return (), `" + Fn.Name + "` returns `" +
                Fn.RetTy->str() + "`");
  for (const FnParam &P : Fn.Params) {
    HostFnIR::Param FP;
    FP.Name = P.Name;
    HVar V;
    if (const auto *Ref = dyn_cast<RefType>(P.Ty.get())) {
      std::vector<Nat> Dims;
      ScalarKind Elem = ScalarKind::F64;
      if (!codegen::arrayNest(Ref->Pointee, Dims, Elem))
        return fail("unsupported host parameter type `" + P.Ty->str() + "`");
      Nat Count = Nat::lit(1);
      for (const Nat &D : Dims)
        Count = Count * D;
      auto N = natSize(Count, "host parameter size");
      if (!N)
        return false;
      FP.Elem = Elem;
      FP.Count = *N;
      if (Ref->Mem.Kind == MemoryKind::CpuMem) {
        FP.K = HostFnIR::Param::HostArr;
      } else if (Ref->Mem.Kind == MemoryKind::GpuGlobal) {
        FP.K = HostFnIR::Param::DevArr;
      } else {
        return fail("unsupported host parameter memory `" + Ref->Mem.str() +
                    "`");
      }
      V.K = FP.K;
      V.Elem = Elem;
      V.Count = *N;
    } else if (const auto *S = dyn_cast<ScalarType>(P.Ty.get())) {
      FP.K = HostFnIR::Param::Scalar;
      FP.Elem = S->Scalar;
      V.K = HostFnIR::Param::Scalar;
      V.Elem = S->Scalar;
    } else {
      return fail("unsupported host parameter type `" + P.Ty->str() + "`");
    }
    V.Slot = newSlot();
    bind(P.Name, V);
    R.Params.push_back(std::move(FP));
  }
  return true;
}

std::unique_ptr<HostExpr> HostCompiler::compilePlaceRead(const PlaceExpr &P) {
  // Flatten root-to-leaf, exactly like hostgen's placeCpp.
  std::vector<const PlaceExpr *> Chain;
  for (const PlaceExpr *Cur = &P; Cur; Cur = basePlace(Cur))
    Chain.push_back(Cur);
  std::reverse(Chain.begin(), Chain.end());

  const HVar *Root = nullptr;
  std::unique_ptr<HostExpr> Idx;
  for (const PlaceExpr *Step : Chain) {
    switch (Step->kind()) {
    case ExprKind::PlaceVar: {
      const auto *V = cast<PlaceVar>(Step);
      Root = lookup(V->Name);
      if (!Root) {
        fail("unknown host variable `" + V->Name + "`");
        return nullptr;
      }
      break;
    }
    case ExprKind::PlaceDeref:
      break; // buffers index directly; the deref is implicit
    case ExprKind::PlaceIndex: {
      if (Idx) {
        fail("place `" + P.str() + "` indexes more than one dimension");
        return nullptr;
      }
      Idx = compileExpr(*cast<PlaceIndex>(Step)->Index);
      if (!Idx)
        return nullptr;
      break;
    }
    default:
      fail("place `" + P.str() + "` is not addressable in host code");
      return nullptr;
    }
  }
  auto E = std::make_unique<HostExpr>();
  if (Idx) {
    if (Root->K != HostFnIR::Param::HostArr) {
      fail("place `" + P.str() + "` indexes a non-host-memory buffer");
      return nullptr;
    }
    E->K = HostExpr::Index;
    E->Ty = Root->Elem;
    E->SlotIdx = Root->Slot;
    E->L = std::move(Idx);
    return E;
  }
  if (Root->K != HostFnIR::Param::Scalar) {
    fail("place `" + P.str() + "` reads a whole buffer as a scalar");
    return nullptr;
  }
  E->K = HostExpr::Slot;
  E->Ty = Root->LoopVar ? ScalarKind::I64 : Root->Elem;
  E->SlotIdx = Root->Slot;
  return E;
}

std::unique_ptr<HostExpr> HostCompiler::compileExpr(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Literal: {
    const auto *L = cast<LiteralExpr>(&E);
    auto X = std::make_unique<HostExpr>();
    X->K = HostExpr::Lit;
    X->Ty = L->Scalar;
    switch (L->Scalar) {
    case ScalarKind::F32:
      X->LitV.F = static_cast<double>(static_cast<float>(L->FloatValue));
      break;
    case ScalarKind::F64:
      X->LitV.F = L->FloatValue;
      break;
    case ScalarKind::Bool:
      X->LitV.I = L->BoolValue ? 1 : 0;
      break;
    default:
      X->LitV.I = L->IntValue;
      break;
    }
    return X;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    auto L = compileExpr(*B->Lhs);
    auto R2 = compileExpr(*B->Rhs);
    if (!L || !R2)
      return nullptr;
    auto X = std::make_unique<HostExpr>();
    X->K = HostExpr::Binary;
    X->BO = static_cast<int>(B->Op);
    bool IsCmp = B->Op == BinOpKind::Eq || B->Op == BinOpKind::Ne ||
                 B->Op == BinOpKind::Lt || B->Op == BinOpKind::Le ||
                 B->Op == BinOpKind::Gt || B->Op == BinOpKind::Ge ||
                 B->Op == BinOpKind::And || B->Op == BinOpKind::Or;
    VK K = promoteVK(vkOf(L->Ty), vkOf(R2->Ty));
    X->Ty = IsCmp ? ScalarKind::Bool
                  : (K == VK::F64 ? ScalarKind::F64
                                  : (K == VK::F32 ? ScalarKind::F32
                                                  : ScalarKind::I64));
    X->L = std::move(L);
    X->R = std::move(R2);
    return X;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    auto S = compileExpr(*U->Sub);
    if (!S)
      return nullptr;
    auto X = std::make_unique<HostExpr>();
    X->K = HostExpr::Unary;
    X->UO = static_cast<int>(U->Op);
    X->Ty = U->Op == UnOpKind::Not ? ScalarKind::Bool : S->Ty;
    X->L = std::move(S);
    return X;
  }
  case ExprKind::PlaceVar:
  case ExprKind::PlaceDeref:
  case ExprKind::PlaceIndex:
    return compilePlaceRead(*cast<PlaceExpr>(&E));
  default:
    fail("unsupported host expression: " + exprToString(E));
    return nullptr;
  }
}

bool HostCompiler::compilePlaceTarget(const PlaceExpr &P, unsigned &Slot,
                                      std::unique_ptr<HostExpr> &Idx,
                                      ScalarKind &Elem) {
  std::vector<const PlaceExpr *> Chain;
  for (const PlaceExpr *Cur = &P; Cur; Cur = basePlace(Cur))
    Chain.push_back(Cur);
  std::reverse(Chain.begin(), Chain.end());

  const HVar *Root = nullptr;
  for (const PlaceExpr *Step : Chain) {
    switch (Step->kind()) {
    case ExprKind::PlaceVar: {
      const auto *V = cast<PlaceVar>(Step);
      Root = lookup(V->Name);
      if (!Root)
        return fail("unknown host variable `" + V->Name + "`");
      break;
    }
    case ExprKind::PlaceDeref:
      break;
    case ExprKind::PlaceIndex: {
      if (Idx)
        return fail("place `" + P.str() +
                    "` indexes more than one dimension");
      Idx = compileExpr(*cast<PlaceIndex>(Step)->Index);
      if (!Idx)
        return false;
      break;
    }
    default:
      return fail("place `" + P.str() + "` is not addressable in host code");
    }
  }
  if (Idx) {
    if (Root->K != HostFnIR::Param::HostArr)
      return fail("assignment target `" + P.str() +
                  "` is not a host-memory buffer");
  } else {
    if (Root->K != HostFnIR::Param::Scalar)
      return fail("assignment target `" + P.str() + "` is not a scalar");
  }
  Slot = Root->Slot;
  Elem = Root->LoopVar && !Idx ? ScalarKind::I64 : Root->Elem;
  return true;
}

bool HostCompiler::compileLet(const LetExpr &L, std::vector<HostStmt> &Out) {
  if (const auto *C = dyn_cast<CallExpr>(L.Init.get()))
    if (C->Callee == "CpuHeap::new" || C->Callee == "GpuGlobal::alloc_copy")
      return compileAllocCall(*C, L.Name, Out);
  if (const auto *A = dyn_cast<AllocExpr>(L.Init.get())) {
    // alloc::<cpu.mem, [T; n]>() — zero-initialized host heap array.
    std::vector<Nat> Dims;
    ScalarKind Elem = ScalarKind::F64;
    if (A->Mem.Kind != MemoryKind::CpuMem ||
        !codegen::arrayNest(A->AllocTy, Dims, Elem))
      return fail("unsupported host allocation: " + exprToString(*L.Init));
    Nat Count = Nat::lit(1);
    for (const Nat &D : Dims)
      Count = Count * D;
    auto N = natSize(Count, "host array size");
    if (!N)
      return false;
    HostStmt S;
    S.K = HostStmt::AllocHost;
    S.Elem = Elem;
    S.Count = *N;
    S.Fill = std::make_unique<HostExpr>();
    S.Fill->K = HostExpr::Lit;
    S.Fill->Ty = Elem;
    if (vkOf(Elem) == VK::I64)
      S.Fill->LitV.I = 0;
    else
      S.Fill->LitV.F = 0.0;
    HVar V;
    V.K = HostFnIR::Param::HostArr;
    V.Elem = Elem;
    V.Count = *N;
    V.Slot = newSlot();
    S.Dst = V.Slot;
    bind(L.Name, V);
    Out.push_back(std::move(S));
    return true;
  }

  // Scalar let.
  auto Init = compileExpr(*L.Init);
  if (!Init)
    return false;
  ScalarKind Elem = ScalarKind::F64;
  if (const auto *S = dyn_cast_if_present<ScalarType>(
          (L.Annotation ? L.Annotation : L.Init->Ty).get()))
    Elem = S->Scalar;
  else if (const auto *Lit = dyn_cast<LiteralExpr>(L.Init.get()))
    Elem = Lit->Scalar;
  HostStmt S;
  S.K = HostStmt::LetScalar;
  S.Elem = Elem;
  S.Fill = std::move(Init);
  HVar V;
  V.K = HostFnIR::Param::Scalar;
  V.Elem = Elem;
  V.Slot = newSlot();
  S.Dst = V.Slot;
  bind(L.Name, V);
  Out.push_back(std::move(S));
  return true;
}

bool HostCompiler::compileAllocCall(const CallExpr &C, const std::string &Let,
                                    std::vector<HostStmt> &Out) {
  if (C.Callee == "CpuHeap::new") {
    const auto *Init = dyn_cast<ArrayInitExpr>(
        C.Args.empty() ? nullptr : C.Args[0].get());
    if (!Init)
      return fail("CpuHeap::new expects an array initializer `[v; n]`");
    ScalarKind Elem = ScalarKind::F64;
    if (const auto *S = dyn_cast_if_present<ScalarType>(Init->Elem->Ty.get()))
      Elem = S->Scalar;
    else if (const auto *Lit = dyn_cast<LiteralExpr>(Init->Elem.get()))
      Elem = Lit->Scalar;
    auto Fill = compileExpr(*Init->Elem);
    auto N = natSize(Init->Count, "host array size");
    if (!Fill || !N)
      return false;
    HostStmt S;
    S.K = HostStmt::AllocHost;
    S.Elem = Elem;
    S.Count = *N;
    S.Fill = std::move(Fill);
    HVar V;
    V.K = HostFnIR::Param::HostArr;
    V.Elem = Elem;
    V.Count = *N;
    V.Slot = newSlot();
    S.Dst = V.Slot;
    bind(Let, V);
    Out.push_back(std::move(S));
    return true;
  }

  // GpuGlobal::alloc_copy(&host_buf).
  std::string Src = C.Args.empty() ? "" : argVar(*C.Args[0]);
  const HVar *SrcVar = Src.empty() ? nullptr : lookup(Src);
  if (!SrcVar || SrcVar->K != HostFnIR::Param::HostArr)
    return fail("GpuGlobal::alloc_copy expects a reference to a host buffer "
                "variable");
  HostStmt S;
  S.K = HostStmt::AllocCopy;
  S.Src = SrcVar->Slot;
  S.Elem = SrcVar->Elem;
  S.Count = SrcVar->Count;
  HVar V;
  V.K = HostFnIR::Param::DevArr;
  V.Elem = SrcVar->Elem;
  V.Count = SrcVar->Count;
  V.Slot = newSlot();
  S.Dst = V.Slot;
  bind(Let, V);
  Out.push_back(std::move(S));
  return true;
}

bool HostCompiler::compileLaunch(const CallExpr &C,
                                 std::vector<HostStmt> &Out) {
  HostStmt S;
  S.K = HostStmt::Launch;
  unsigned KI = 0;
  for (; KI != Kernels.size(); ++KI)
    if (Kernels[KI].Name == C.Callee)
      break;
  if (KI == Kernels.size())
    return fail("launch of unknown kernel `" + C.Callee + "`");
  S.KernelIdx = KI;
  for (const ExprPtr &A : C.Args) {
    std::string Name = argVar(*A);
    const HVar *V = Name.empty() ? nullptr : lookup(Name);
    if (!V)
      return fail("kernel launch arguments must be buffer variable "
                  "references");
    if (V->K != HostFnIR::Param::DevArr)
      return fail("kernel launch argument `" + Name +
                  "` is not a device buffer");
    S.ArgSlots.push_back(V->Slot);
  }
  Out.push_back(std::move(S));
  return true;
}

bool HostCompiler::compileCall(const CallExpr &C, std::vector<HostStmt> &Out) {
  if (C.IsLaunch)
    return compileLaunch(C, Out);

  if (C.Callee == "copy_mem_to_host" || C.Callee == "copy_to_gpu") {
    bool ToHost = C.Callee == "copy_mem_to_host";
    if (C.Args.size() != 2)
      return fail("`" + C.Callee + "` expects two arguments");
    std::string Dst = argVar(*C.Args[0]);
    std::string Src = argVar(*C.Args[1]);
    const HVar *DstVar = Dst.empty() ? nullptr : lookup(Dst);
    const HVar *SrcVar = Src.empty() ? nullptr : lookup(Src);
    if (!DstVar || !SrcVar)
      return fail("`" + C.Callee + "` expects buffer variable references");
    auto KindOk = [&](const HVar *V, bool WantHost) {
      return V->K == (WantHost ? HostFnIR::Param::HostArr
                               : HostFnIR::Param::DevArr);
    };
    if (!KindOk(DstVar, ToHost) || !KindOk(SrcVar, !ToHost))
      return fail("`" + C.Callee + "`: arguments have the wrong memory "
                  "spaces");
    HostStmt S;
    S.K = ToHost ? HostStmt::CopyToHost : HostStmt::CopyToGpu;
    S.Dst = DstVar->Slot;
    S.Src = SrcVar->Slot;
    Out.push_back(std::move(S));
    return true;
  }

  // Plain call of another host function.
  if (const FnDef *Callee = M.findFn(C.Callee);
      Callee && Callee->isCpuFn()) {
    auto It = HostIdx.find(C.Callee);
    if (It == HostIdx.end())
      return fail("host call of `" + C.Callee + "` which has no body");
    HostStmt S;
    S.K = HostStmt::Call;
    S.CalleeIdx = It->second;
    for (const ExprPtr &A : C.Args) {
      std::string Name = argVar(*A);
      const HVar *V = Name.empty() ? nullptr : lookup(Name);
      if (!V)
        return fail("host call arguments must be variable references in the "
                    "vm backend");
      S.ArgSlots.push_back(V->Slot);
    }
    Out.push_back(std::move(S));
    return true;
  }
  return fail("unsupported host call: " + C.Callee);
}

bool HostCompiler::compileForNat(const ForNatExpr &F,
                                 std::vector<HostStmt> &Out) {
  auto Lo = F.Lo.simplified().evaluate({});
  auto Hi = F.Hi.simplified().evaluate({});
  if (!Lo || !Hi)
    return fail("for-nat bounds `[" + F.Lo.simplified().str() + ".." +
                F.Hi.simplified().str() +
                "]` are not instantiated (pass -D)");
  HostStmt S;
  S.K = HostStmt::ForNat;
  S.Lo = *Lo;
  S.Hi = *Hi;
  Scopes.emplace_back();
  HVar V;
  V.K = HostFnIR::Param::Scalar;
  V.LoopVar = true;
  V.Elem = ScalarKind::I64;
  V.Slot = newSlot();
  S.Dst = V.Slot;
  bind(F.Var, V);
  bool Ok = F.Body->kind() == ExprKind::Block
                ? compileBlock(*cast<BlockExpr>(F.Body.get()), S.Body)
                : compileStmt(*F.Body, S.Body);
  Scopes.pop_back();
  if (!Ok)
    return false;
  Out.push_back(std::move(S));
  return true;
}

bool HostCompiler::compileStmt(const Expr &E, std::vector<HostStmt> &Out) {
  switch (E.kind()) {
  case ExprKind::Let:
    return compileLet(*cast<LetExpr>(&E), Out);
  case ExprKind::Call:
    return compileCall(*cast<CallExpr>(&E), Out);
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(&E);
    HostStmt S;
    S.K = HostStmt::Assign;
    if (!compilePlaceTarget(*A->Lhs, S.Dst, S.Idx, S.Elem))
      return false;
    S.Fill = compileExpr(*A->Rhs);
    if (!S.Fill)
      return false;
    Out.push_back(std::move(S));
    return true;
  }
  case ExprKind::ForNat:
    return compileForNat(*cast<ForNatExpr>(&E), Out);
  case ExprKind::Block: {
    Scopes.emplace_back();
    bool Ok = compileBlock(*cast<BlockExpr>(&E), Out);
    Scopes.pop_back();
    return Ok;
  }
  default:
    return fail("unsupported host statement: " + exprToString(E));
  }
}

bool HostCompiler::compileBlock(const BlockExpr &Blk,
                                std::vector<HostStmt> &Out) {
  for (const ExprPtr &S : Blk.Stmts)
    if (!compileStmt(*S, Out))
      return false;
  return true;
}

bool HostCompiler::run(HostFnIR &Out, std::string &Err) {
  R.Name = Fn.Name;
  Scopes.emplace_back();
  bool Ok = compileParams();
  if (Ok && Fn.Body)
    Ok = compileBlock(*cast<BlockExpr>(Fn.Body.get()), R.Body);
  Scopes.pop_back();
  if (!Ok) {
    Err = "while compiling host `" + Fn.Name + "`: " +
          (Error.empty() ? "host compilation failed" : Error);
    return false;
  }
  Out = std::move(R);
  return true;
}

//===----------------------------------------------------------------------===//
// Disassembly
//===----------------------------------------------------------------------===//

void disasmCode(std::ostringstream &OS, const Code &C, const char *Indent) {
  for (size_t I = 0; I != C.Instrs.size(); ++I) {
    const Instr &In = C.Instrs[I];
    OS << Indent << I << ": " << opName(In.K);
    if (In.K == Op::Jmp) {
      OS << " -> " << In.Imm << "\n";
      continue;
    }
    if (In.K == Op::Ret) {
      OS << "\n";
      continue;
    }
    OS << " r" << In.A;
    switch (In.K) {
    case Op::Const:
      OS << ", const[" << In.Imm << "]";
      break;
    case Op::Coord:
    case Op::Slot:
      OS << ", " << In.Imm;
      break;
    case Op::Jz:
      OS << " -> " << In.Imm;
      break;
    case Op::Move:
    case Op::NotI:
    case Op::NegI:
    case Op::NegF:
    case Op::NegF32:
    case Op::I2F:
    case Op::F2I:
    case Op::F2F32:
      OS << ", r" << In.B;
      break;
    case Op::LoadGlobal:
    case Op::StoreGlobal:
      OS << ", r" << In.B << ", param[" << In.Imm << "]";
      break;
    case Op::LoadGlobal2:
    case Op::StoreGlobal2:
      OS << ":r" << (In.A + 1) << ", r" << In.B << ", param[" << In.Imm
         << "]";
      break;
    case Op::LoadShared:
    case Op::StoreShared:
    case Op::LoadArena:
    case Op::StoreArena:
      OS << ", r" << In.B << ", base=" << In.Imm;
      break;
    case Op::LoadShared2:
    case Op::StoreShared2:
      OS << ":r" << (In.A + 1) << ", r" << In.B << ", base=" << In.Imm;
      break;
    case Op::Ret:
    case Op::RetVal:
      break;
    default:
      OS << ", r" << In.B << ", r" << In.C;
      break;
    }
    OS << "\n";
  }
}

void disasmNodes(std::ostringstream &OS, const std::vector<VmNode> &Nodes,
                 unsigned Depth, unsigned &Phase) {
  std::string Ind(Depth * 2 + 2, ' ');
  for (const VmNode &N : Nodes) {
    if (N.K == VmNode::Straight) {
      OS << Ind << "phase #" << Phase++ << " (" << N.Body.Instrs.size()
         << " instrs, " << N.Body.NumRegs << " regs)\n";
      disasmCode(OS, N.Body, (Ind + "  ").c_str());
      continue;
    }
    OS << Ind << "loop slot " << N.Slot << "\n";
    disasmNodes(OS, N.Children, Depth + 1, Phase);
  }
}

const char *hostStmtName(HostStmt::Kind K) {
  switch (K) {
  case HostStmt::AllocHost:
    return "alloc-host";
  case HostStmt::AllocCopy:
    return "alloc-copy";
  case HostStmt::CopyToHost:
    return "copy-to-host";
  case HostStmt::CopyToGpu:
    return "copy-to-gpu";
  case HostStmt::Launch:
    return "launch";
  case HostStmt::LetScalar:
    return "let-scalar";
  case HostStmt::Assign:
    return "assign";
  case HostStmt::ForNat:
    return "for-nat";
  case HostStmt::Call:
    return "call";
  }
  return "?";
}

void disasmHostStmts(std::ostringstream &OS, const std::vector<HostStmt> &B,
                     unsigned Depth) {
  std::string Ind(Depth * 2 + 2, ' ');
  for (const HostStmt &S : B) {
    OS << Ind << hostStmtName(S.K);
    switch (S.K) {
    case HostStmt::AllocHost:
      OS << " slot " << S.Dst << " (" << S.Count << " x "
         << scalarKindName(S.Elem) << ")";
      break;
    case HostStmt::AllocCopy:
    case HostStmt::CopyToHost:
    case HostStmt::CopyToGpu:
      OS << " slot " << S.Dst << " <- slot " << S.Src;
      break;
    case HostStmt::Launch:
      OS << " kernel[" << S.KernelIdx << "] args";
      for (unsigned A : S.ArgSlots)
        OS << " " << A;
      break;
    case HostStmt::LetScalar:
    case HostStmt::Assign:
      OS << " slot " << S.Dst;
      break;
    case HostStmt::ForNat:
      OS << " slot " << S.Dst << " in [" << S.Lo << ".." << S.Hi << ")";
      break;
    case HostStmt::Call:
      OS << " hostfn[" << S.CalleeIdx << "] args";
      for (unsigned A : S.ArgSlots)
        OS << " " << A;
      break;
    }
    OS << "\n";
    if (S.K == HostStmt::ForNat)
      disasmHostStmts(OS, S.Body, Depth + 1);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

const char *vm::opName(Op O) {
  switch (O) {
  case Op::Const: return "const";
  case Op::Coord: return "coord";
  case Op::Slot: return "slot";
  case Op::Move: return "move";
  case Op::LoadGlobal: return "ld.g";
  case Op::StoreGlobal: return "st.g";
  case Op::LoadShared: return "ld.s";
  case Op::StoreShared: return "st.s";
  case Op::LoadArena: return "ld.a";
  case Op::StoreArena: return "st.a";
  case Op::LoadGlobal2: return "ld.g2";
  case Op::StoreGlobal2: return "st.g2";
  case Op::LoadShared2: return "ld.s2";
  case Op::StoreShared2: return "st.s2";
  case Op::AddI: return "add.i";
  case Op::SubI: return "sub.i";
  case Op::MulI: return "mul.i";
  case Op::DivI: return "div.i";
  case Op::ModI: return "mod.i";
  case Op::PowI: return "pow.i";
  case Op::AddF: return "add.f";
  case Op::SubF: return "sub.f";
  case Op::MulF: return "mul.f";
  case Op::DivF: return "div.f";
  case Op::AddF32: return "add.f32";
  case Op::SubF32: return "sub.f32";
  case Op::MulF32: return "mul.f32";
  case Op::DivF32: return "div.f32";
  case Op::LtI: return "lt.i";
  case Op::LeI: return "le.i";
  case Op::GtI: return "gt.i";
  case Op::GeI: return "ge.i";
  case Op::EqI: return "eq.i";
  case Op::NeI: return "ne.i";
  case Op::LtF: return "lt.f";
  case Op::LeF: return "le.f";
  case Op::GtF: return "gt.f";
  case Op::GeF: return "ge.f";
  case Op::EqF: return "eq.f";
  case Op::NeF: return "ne.f";
  case Op::AndI: return "and";
  case Op::OrI: return "or";
  case Op::NotI: return "not";
  case Op::NegI: return "neg.i";
  case Op::NegF: return "neg.f";
  case Op::NegF32: return "neg.f32";
  case Op::I2F: return "i2f";
  case Op::F2I: return "f2i";
  case Op::F2F32: return "f2f32";
  case Op::Jmp: return "jmp";
  case Op::Jz: return "jz";
  case Op::Ret: return "ret";
  case Op::RetVal: return "retval";
  }
  return "?";
}

size_t vm::scalarSize(ScalarKind K) {
  switch (K) {
  case ScalarKind::I32:
  case ScalarKind::U32:
  case ScalarKind::F32:
    return 4;
  case ScalarKind::I64:
  case ScalarKind::U64:
  case ScalarKind::F64:
    return 8;
  case ScalarKind::Bool:
    return 1;
  case ScalarKind::Unit:
    return 0;
  }
  return 0;
}

const VmKernel *CompiledProgram::findKernel(const std::string &Name) const {
  for (const VmKernel &K : Kernels)
    if (K.Name == Name)
      return &K;
  return nullptr;
}

const HostFnIR *CompiledProgram::findHostFn(const std::string &Name) const {
  for (const HostFnIR &F : HostFns)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

CompileVmResult vm::compile(const Module &M, const kir::PassConfig &Passes) {
  CompileVmResult R;
  try {
    auto P = std::make_shared<CompiledProgram>();
    for (const auto &FnPtr : M.Fns) {
      const FnDef &Fn = *FnPtr;
      if (!Fn.isGpuFn())
        continue;
      VmKernel K;
      if (!compileKernel(M, Fn, Passes, K, R.Error))
        return R;
      P->Kernels.push_back(std::move(K));
    }
    std::map<std::string, unsigned> HostIdx;
    for (const auto &FnPtr : M.Fns)
      if (FnPtr->isCpuFn() && FnPtr->Body)
        HostIdx[FnPtr->Name] = static_cast<unsigned>(HostIdx.size());
    for (const auto &FnPtr : M.Fns) {
      const FnDef &Fn = *FnPtr;
      if (!Fn.isCpuFn() || !Fn.Body)
        continue;
      HostFnIR F;
      if (!HostCompiler(M, Fn, P->Kernels, HostIdx).run(F, R.Error))
        return R;
      P->HostFns.push_back(std::move(F));
    }
    R.Ok = true;
    R.Program = std::move(P);
  } catch (const std::exception &E) {
    R.Ok = false;
    R.Program.reset();
    R.Error = std::string("internal error during vm compilation: ") +
              E.what();
  } catch (...) {
    R.Ok = false;
    R.Program.reset();
    R.Error = "internal error during vm compilation";
  }
  return R;
}

std::string vm::disassemble(const CompiledProgram &P) {
  std::ostringstream OS;
  OS << "// vm bytecode listing (descendc --emit=vm)\n";
  for (const VmKernel &K : P.Kernels) {
    OS << "\nkernel " << K.Name << " grid(" << K.Grid.X << ", " << K.Grid.Y
       << ", " << K.Grid.Z << ") block(" << K.Block.X << ", " << K.Block.Y
       << ", " << K.Block.Z << ")\n";
    OS << "  shared " << K.SharedBytes << " B, locals base " << K.LocalsBase
       << ", arena " << K.ArenaBytes << " B\n";
    for (size_t I = 0; I != K.Params.size(); ++I)
      OS << "  param[" << I << "] " << K.Params[I].Name << ": ["
         << scalarKindName(K.Params[I].Elem) << "; " << K.Params[I].Count
         << "]\n";
    unsigned Phase = 0;
    disasmNodes(OS, K.Nodes, 0, Phase);
  }
  for (const HostFnIR &F : P.HostFns) {
    OS << "\nhost " << F.Name << " (" << F.NumSlots << " slots)\n";
    for (size_t I = 0; I != F.Params.size(); ++I) {
      OS << "  param[" << I << "] " << F.Params[I].Name << ": ";
      switch (F.Params[I].K) {
      case HostFnIR::Param::HostArr:
        OS << "host [" << scalarKindName(F.Params[I].Elem) << "; "
           << F.Params[I].Count << "]";
        break;
      case HostFnIR::Param::DevArr:
        OS << "device [" << scalarKindName(F.Params[I].Elem) << "; "
           << F.Params[I].Count << "]";
        break;
      case HostFnIR::Param::Scalar:
        OS << scalarKindName(F.Params[I].Elem);
        break;
      }
      OS << "\n";
    }
    disasmHostStmts(OS, F.Body, 0);
  }
  return OS.str();
}
