//===- vm/Interp.h - Bytecode interpreter over the simulator ----*- C++ -*-===//
//
// Part of the Descend reproduction. Executes CompiledProgram artifacts
// (vm/Bytecode.h) on a sim::GpuDevice: launchKernel builds a
// sim::PhaseProgram whose phase bodies run the bytecode dispatch loop
// per thread, so compiled-from-source kernels ride the same persistent
// worker pool, phase barriers, loopVar slots, shared/arena memory and
// race/bounds observability as the build-time-generated C++ — with zero
// C++ compilation at runtime. runHostFn tree-walks a compiled
// cpu.thread function (allocations, transfers, launches, scalar code)
// on the calling thread.
//
// Error discipline: kernel runtime faults (division by zero, arena or
// shared accesses outside the block's allocation, out-of-range global
// accesses with bounds checking off) trip a shared trap flag and halt
// the launch — they never throw on pool workers. A tripped trap is also
// recorded as the device's sticky error (sim::ErrorCode::KernelTrap, or
// KernelTimeout when the watchdog step budget expired), so subsequent
// launches fail fast until GpuDevice::reset(). Bytecode is structurally
// validated before every launch (validateKernel): truncated or
// bit-flipped artifacts and out-of-range register indices produce a
// RunStatus error, never undefined behavior. Host-side faults surface
// as a RunStatus error; nothing escapes these entry points as an
// exception.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_VM_INTERP_H
#define DESCEND_VM_INTERP_H

#include "vm/Bytecode.h"

#include <memory>
#include <string>
#include <vector>

namespace descend {
namespace vm {

/// Untyped handle to a device-global buffer allocated on a GpuDevice.
/// Copyable; copies alias the same memory (like GpuDevice::Buffer).
struct DevBuf {
  ScalarKind Elem = ScalarKind::F64;
  std::byte *Data = nullptr;
  size_t Count = 0;
  unsigned Id = 0; ///< race/bounds logging id (allocRaw)
};

/// Allocates a zero-initialized device buffer (GpuDevice::alloc, minus
/// the compile-time element type).
DevBuf allocDev(sim::GpuDevice &Dev, ScalarKind Elem, size_t Count);

/// A host-heap array (rt::HostBuffer minus the compile-time element
/// type). Shared by pointer across host frames — parameter passing has
/// `HostBuffer<T>&` semantics.
struct HostArray {
  ScalarKind Elem = ScalarKind::F64;
  size_t Count = 0;
  std::vector<std::byte> Bytes;
};

/// One host frame slot: empty, a scalar, a host array, or a device
/// buffer.
struct HostVal {
  enum Kind { None, Scalar, Array, Dev } K = None;
  ScalarKind SK = ScalarKind::F64; ///< Scalar element kind
  Value V{};                       ///< Scalar payload
  std::shared_ptr<HostArray> Arr;  ///< Array payload
  DevBuf DevB;                     ///< Dev payload

  static HostVal scalar(ScalarKind SK, Value V) {
    HostVal H;
    H.K = Scalar;
    H.SK = SK;
    H.V = V;
    return H;
  }
  static HostVal array(std::shared_ptr<HostArray> A) {
    HostVal H;
    H.K = Array;
    H.Arr = std::move(A);
    return H;
  }
  static HostVal dev(DevBuf D) {
    HostVal H;
    H.K = Dev;
    H.DevB = D;
    return H;
  }
};

/// Allocates a host array of \p Count elements, every element set to
/// \p Fill (interpreted per \p Elem).
std::shared_ptr<HostArray> makeHostArray(ScalarKind Elem, size_t Count,
                                         double Fill);

struct RunStatus {
  bool Ok = true;
  std::string Error;
};

/// Structural validation of every code object in \p K: opcode in range,
/// register / constant-pool / jump-target / buffer / loop-slot indices
/// in bounds, element kinds valid. Returns a failing RunStatus naming
/// the first malformed instruction — the interpreter's defense against
/// truncated or bit-flipped bytecode reaching the unchecked dispatch
/// loop. launchKernel runs this before executing anything.
RunStatus validateKernel(const VmKernel &K);

/// Launches \p K on \p Dev with one device buffer per kernel parameter.
/// Synchronous (like the generated sim launches); honors the device's
/// race-detection and bounds-checking modes. Argument arity, element
/// kinds and counts are validated against the kernel's parameter schema,
/// and the bytecode itself through validateKernel. Fails fast (without
/// launching) while the device carries a sticky error; a kernel trap
/// poisons the device in turn. When the device watchdog configures a
/// step budget (DESCEND_WATCHDOG steps=N), each thread's phase body may
/// execute at most N instructions before the launch is cancelled as a
/// KernelTimeout.
RunStatus launchKernel(sim::GpuDevice &Dev, const VmKernel &K,
                       const std::vector<DevBuf> &Args);

/// Runs host function \p Fn of \p P with \p Args bound to its
/// parameters (validated against the parameter schema). Array arguments
/// are shared, so caller-held HostVals observe all writes; scalars pass
/// by value. Never throws.
RunStatus runHostFn(sim::GpuDevice &Dev, const CompiledProgram &P,
                    const HostFnIR &Fn, std::vector<HostVal> Args);

} // namespace vm
} // namespace descend

#endif // DESCEND_VM_INTERP_H
