//===- vm/Bytecode.h - KIR bytecode artifacts -------------------*- C++ -*-===//
//
// Part of the Descend reproduction. The `vm` backend makes kernels
// *directly executable*: instead of printing KIR as C++ for a build-time
// compiler, vm::compile() translates every lowered kernel of a module
// into a compact register-style bytecode — a flat instruction vector with
// a constant pool per phase body, mirroring the phase-program tree
// (codegen/PhaseIR.h) node for node — plus a small host-statement IR for
// the module's cpu.thread functions. The result is a self-contained,
// immutable CompiledProgram artifact: it holds no pointers into the
// Module it was compiled from, so a compile service can cache and share
// it across threads, and the interpreter (vm/Interp.h) can launch it on
// any sim::GpuDevice with zero C++ compilation in the loop.
//
// Every Nat is resolved at compile time: literals fold into the constant
// pool, coordinate variables (_bx/_tx/.../_lin) become Coord
// instructions, enclosing PhaseLoop variables become Slot reads
// (BlockCtx::loopVar), and hoisted index lets (LetIndex) become ordinary
// i64 registers — the same resolution the C++ printers perform, but into
// instructions instead of text.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_VM_BYTECODE_H
#define DESCEND_VM_BYTECODE_H

#include "ast/Type.h" // ScalarKind
#include "kir/Schedule.h" // kir::PassConfig
#include "nat/Nat.h"
#include "sim/Sim.h" // sim::Dim3

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace descend {

class Module;

namespace vm {

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

/// Opcode of one bytecode instruction. Arithmetic comes in an integer
/// (i64), a double, and a float-precision variant: the float variants
/// round through `float` exactly like the generated C++ computing in
/// `float` registers, so f32 kernels stay bit-identical to the compiled
/// sim headers.
enum class Op : uint8_t {
  Const,  ///< r[A] = Consts[Imm]
  Coord,  ///< r[A] = coordinate Imm (0 _bx, 1 _by, 2 _bz, 3 _tx, 4 _ty,
          ///<                        5 _tz, 6 _lin)
  Slot,   ///< r[A] = BlockCtx::loopVar(Imm)
  Move,   ///< r[A] = r[B]

  LoadGlobal,  ///< r[A] = buffers[Imm].load(_b, r[B]); elem kind in C
  StoreGlobal, ///< buffers[Imm].store(_b, r[B], r[A])
  LoadShared,  ///< r[A] = _b.sharedLoad<C>(Imm, r[B])
  StoreShared, ///< _b.sharedStore<C>(Imm, r[B], r[A])
  LoadArena,   ///< r[A] = _b.shared<C>(_locals_base + Imm)[r[B]] (unlogged)
  StoreArena,  ///< _b.shared<C>(_locals_base + Imm)[r[B]] = r[A]

  // Wide (two-element) accesses from the vectorize schedule pass: one
  // issued transaction covering elements r[B] and r[B]+1. The second
  // register is implicitly A+1 (the compiler allocates them adjacent).
  LoadGlobal2,  ///< r[A], r[A+1] = buffers[Imm].load2(_b, r[B]); elem in C
  StoreGlobal2, ///< buffers[Imm].store2(_b, r[B], r[A], r[A+1])
  LoadShared2,  ///< r[A], r[A+1] = _b.sharedLoad2<C>(Imm, r[B])
  StoreShared2, ///< _b.sharedStore2<C>(Imm, r[B], r[A], r[A+1])

  AddI, SubI, MulI, DivI, ModI, PowI, ///< r[A] = r[B] op r[C] (i64)
  AddF, SubF, MulF, DivF,             ///< r[A] = r[B] op r[C] (double)
  AddF32, SubF32, MulF32, DivF32,     ///< same at float precision

  LtI, LeI, GtI, GeI, EqI, NeI, ///< r[A] = r[B] cmp r[C] (i64 -> 0/1)
  LtF, LeF, GtF, GeF, EqF, NeF, ///< same over doubles

  AndI, OrI, NotI, ///< logical, eager (KIR expressions are effect-free)
  NegI, NegF, NegF32,
  I2F,   ///< r[A] = (double)r[B].I
  F2I,   ///< r[A] = (long long)r[B].F
  F2F32, ///< r[A] = (double)(float)r[B].F — narrow after f32 arithmetic

  Jmp,    ///< pc = Imm
  Jz,     ///< if (r[A].I == 0) pc = Imm
  Ret,    ///< end of a phase body
  RetVal, ///< end of a bound program; result is r[A].I
};

const char *opName(Op O);

/// One register value. The statically inferred kind of each register
/// (integer vs floating) picks the union member; there are no runtime
/// type tags.
union Value {
  long long I;
  double F;
};

struct Instr {
  Op K = Op::Ret;
  uint16_t A = 0, B = 0, C = 0;
  int32_t Imm = 0;
};

/// One executable code object: a phase body or a loop-bound program.
struct Code {
  std::vector<Instr> Instrs;
  std::vector<Value> Consts;
  unsigned NumRegs = 0;
};

//===----------------------------------------------------------------------===//
// Kernels
//===----------------------------------------------------------------------===//

/// The bytecode mirror of one PhaseNode: straight nodes carry a phase
/// body, loop nodes carry a loopVar slot, two bound programs and their
/// children.
struct VmNode {
  enum Kind { Straight, Loop } K = Straight;
  Code Body;         // Straight
  unsigned Slot = 0; // Loop
  Code Lo, Hi;       // Loop: RetVal programs over the BlockCtx
  std::vector<VmNode> Children;
};

/// One compiled kernel: concrete launch geometry, arena layout, parameter
/// schema, and the bytecode phase tree. Fully resolved — launching needs
/// only a device and one buffer binding per parameter.
struct VmKernel {
  std::string Name;
  sim::Dim3 Grid, Block;
  size_t SharedBytes = 0; ///< raw shared allocations
  size_t LocalsBase = 0;  ///< 8-aligned shared total (arena spill base)
  size_t ArenaBytes = 0;  ///< LocalsBase + per-thread spill * threads

  struct Param {
    std::string Name;
    ScalarKind Elem = ScalarKind::F64;
    size_t Count = 0; ///< element count the kernel was instantiated for
  };
  std::vector<Param> Params;

  std::vector<VmNode> Nodes;
  unsigned StraightPhases = 0;
};

//===----------------------------------------------------------------------===//
// Host-program IR
//===----------------------------------------------------------------------===//

/// A host-side scalar expression, compiled from the structural host
/// fragment (hostgen's accepted language): literals, frame slots, host
/// array indexing and arithmetic.
struct HostExpr {
  enum Kind { Lit, Slot, Index, Binary, Unary } K = Lit;
  ScalarKind Ty = ScalarKind::F64; ///< result kind
  Value LitV{};                    ///< Lit
  unsigned SlotIdx = 0;            ///< Slot: scalar / loop var; Index: array
  std::unique_ptr<HostExpr> L, R;  ///< Binary; Unary/Index use L
  int BO = 0;                      ///< Binary: BinOpKind as int
  int UO = 0;                      ///< Unary: UnOpKind as int
};

/// One statement of a compiled host function. Slot indices refer to the
/// function's frame (parameters first, then locals in definition order).
struct HostStmt {
  enum Kind {
    AllocHost,  ///< frame[Dst] = host array (Count x Elem, filled with Fill)
    AllocCopy,  ///< frame[Dst] = device buffer copied from host frame[Src]
    CopyToHost, ///< host frame[Dst] <- device frame[Src] (checked sizes)
    CopyToGpu,  ///< device frame[Dst] <- host frame[Src]
    Launch,     ///< launch Kernels[KernelIdx] with device buffers ArgSlots
    LetScalar,  ///< frame[Dst] = eval(Fill)
    Assign,     ///< frame[Dst][eval(Idx)] = eval(Fill); scalar slot if !Idx
    ForNat,     ///< for frame[Dst] in [Lo..Hi) run Body
    Call,       ///< HostFns[CalleeIdx](frame[ArgSlots]...)
  } K = LetScalar;

  unsigned Dst = 0, Src = 0;
  ScalarKind Elem = ScalarKind::F64;
  size_t Count = 0;              // AllocHost
  std::unique_ptr<HostExpr> Fill; // AllocHost fill / LetScalar / Assign value
  std::unique_ptr<HostExpr> Idx;  // Assign index (null: scalar target)
  unsigned KernelIdx = 0;
  std::vector<unsigned> ArgSlots; // Launch / Call
  unsigned CalleeIdx = 0;         // Call
  long long Lo = 0, Hi = 0;       // ForNat (bounds are instantiated nats)
  std::vector<HostStmt> Body;     // ForNat
};

/// One compiled cpu.thread function.
struct HostFnIR {
  std::string Name; ///< source name (`main` stays `main` here)

  struct Param {
    enum Kind { HostArr, DevArr, Scalar } K = HostArr;
    std::string Name;
    ScalarKind Elem = ScalarKind::F64;
    size_t Count = 0; ///< HostArr / DevArr element count
  };
  std::vector<Param> Params;

  unsigned NumSlots = 0; ///< frame size (params occupy slots 0..N-1)
  std::vector<HostStmt> Body;
};

//===----------------------------------------------------------------------===//
// The compiled artifact
//===----------------------------------------------------------------------===//

/// The self-contained executable artifact of one module: every GPU kernel
/// as bytecode, every host function as host IR. Immutable after compile;
/// safe to share across threads (the compile service caches shared_ptrs
/// to it).
struct CompiledProgram {
  std::vector<VmKernel> Kernels;
  std::vector<HostFnIR> HostFns;

  const VmKernel *findKernel(const std::string &Name) const;
  const HostFnIR *findHostFn(const std::string &Name) const;
};

struct CompileVmResult {
  bool Ok = false;
  std::shared_ptr<const CompiledProgram> Program;
  std::string Error; // set when !Ok
};

/// Compiles every GPU kernel and host function of \p M (which must have
/// passed the type checker, with all nats instantiated) into bytecode.
/// Never throws: malformed or uninstantiated modules produce an error
/// result. \p Passes selects the opt-in schedule passes to run over the
/// lowered kernel IR before bytecode generation (none by default).
CompileVmResult compile(const Module &M, const kir::PassConfig &Passes = {});

/// Human-readable listing of a compiled program (the `--emit=vm`
/// artifact): per kernel the geometry, parameters and a disassembly of
/// every phase body; per host function its statement tree.
std::string disassemble(const CompiledProgram &P);

/// Element size of a scalar kind in both the vm's buffers and the
/// generated C++ (same layout).
size_t scalarSize(ScalarKind K);

} // namespace vm
} // namespace descend

#endif // DESCEND_VM_BYTECODE_H
